(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (§5) at reproduction scale.

     dune exec bench/main.exe                   # everything, full scale
     dune exec bench/main.exe -- --quick        # smaller datasets
     dune exec bench/main.exe -- fig13 table2   # selected experiments
     dune exec bench/main.exe -- --out data/    # also write CSV series

   Experiments: fig12 sec52 fig13 fig14 fig15 fig16 fig17 table2
   table2b ablation micro perf cluster concurrency telemetry (micro =
   Bechamel microbenchmarks of the algorithm kernels; table2b,
   ablation, perf, cluster, concurrency and telemetry go beyond the
   paper — cluster measures the replicated store of DESIGN.md §12,
   concurrency the event-driven server core of §13 under 1/100/1000
   keep-alive clients, telemetry the workload-drift observatory of
   §15: a skewed Zipf stream raises the drift score and an observed-
   weight re-plan lowers the access-weighted recreation cost).

   Absolute numbers differ from the paper (its datasets are 100k
   versions of ~350 MB; ours are laptop-scale — see DESIGN.md §2);
   the *shape* of each result is what is reproduced, and each section
   prints the shape expectation it is checked against. *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng
module Stats = Versioning_util.Stats
module Zipf = Versioning_util.Zipf
module Pool = Versioning_util.Pool
module Line_diff = Versioning_delta.Line_diff
module Compress = Versioning_delta.Compress
module Repo = Versioning_store.Repo
module Backend = Versioning_store.Backend
module Replicated = Versioning_store.Replicated
module Content_hash = Versioning_store.Content_hash
module Server = Versioning_store.Server
module Client = Versioning_store.Client
module Fsutil = Versioning_util.Fsutil
module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Telemetry = Versioning_obs.Telemetry
module Timeseries = Versioning_obs.Timeseries
module Alerts = Versioning_obs.Alerts

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Optional CSV sink: every experiment also writes its data series
   under the --out directory, one file per figure panel, for
   re-plotting. Writes go through the store's atomic write path so an
   interrupted run never leaves a half-written series behind. *)
let csv_dir : string option ref = ref None

let csv_write name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (String.concat "," header ^ "\n");
      List.iter
        (fun row -> Buffer.add_string buf (String.concat "," row ^ "\n"))
        rows;
      match
        Fsutil.write_file_atomic ~fsync:false ~site:"bench.csv" path
          (Buffer.contents buf)
      with
      | Ok () -> ()
      | Error e -> Printf.eprintf "csv %s: %s\n%!" path e

(* ---- BENCH_2.json: the machine-readable run record ---- *)

let exp_timings : (string * float) list ref = ref []

type graph_run = { gjobs : int; gversions : int; gedges : int; gwall : float }

let graph_runs : graph_run list ref = ref []

type checkout_run = {
  cmode : string; (* "cache_on" | "cache_off" *)
  caccesses : int;
  cwall : float;
  chits : int;
  cpartial : int;
  cmisses : int;
}

let checkout_runs : checkout_run list ref = ref []

type cluster_run = {
  kmembers : int;
  kdown : int;  (* members simulated unreachable during the run *)
  kreplicas : int;
  kblobs : int;
  kreads : int;
  kput_wall : float;
  kget_wall : float;
}

let cluster_runs : cluster_run list ref = ref []

type concurrency_run = {
  qclients : int;
  qrequests : int;
  qwall : float;
  qp50_ms : float;
  qp99_ms : float;
  qrps : float;
  qreused : float;  (* keep-alive reuse counter delta over the run *)
}

let concurrency_runs : concurrency_run list ref = ref []

type reuse_run = { rmode : string; rops : int; rwall : float; rops_per_s : float }

let reuse_runs : reuse_run list ref = ref []

type telemetry_run = {
  tversions : int;
  taccesses : int;
  tdrift : float;  (* ledger drift score after the skewed stream *)
  tuniform_weighted : float;  (* access-weighted Σ recreation, uniform plan *)
  tobserved_weighted : float;  (* same, after --weights observed re-plan *)
  tsaving : float;
}

let telemetry_runs : telemetry_run list ref = ref []

type timeseries_run = {
  zseries : int;
  zticks : int;
  zrecord_wall : float;
  zrecords_per_s : float;
  zquery_wall : float;
  zrender_bytes : int;
  zroundtrip_ok : bool;
  zalert_evals : int;
  zalert_wall : float;
}

let timeseries_runs : timeseries_run list ref = ref []

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"

(* Run provenance for the bench record: the commit the numbers were
   measured at — the same stamp /health and `dsvc metrics --json`
   carry, so bench records and live processes are diffable. *)
let git_rev () = Versioning_util.Build_info.git_rev ()

let emit_bench_json path ~quick ~jobs =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let comma_sep f = function
    | [] -> ()
    | x :: tl ->
        f x;
        List.iter (fun y -> add ","; f y) tl
  in
  add "{\n";
  add "  \"schema\": \"dsvc-bench/2\",\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"ncores\": %d,\n" (Pool.recommended_jobs ());
  (* Provenance + observability snapshot: which commit and DSVC_JOBS
     setting produced these numbers, and (when DSVC_OBS is on) the
     counters behind them, so regressions can be diffed run-to-run. *)
  add "  \"meta\": {\n";
  add "    \"git_rev\": \"%s\",\n" (Metrics.json_escape (git_rev ()));
  add "    \"ocaml\": \"%s\",\n"
    (Metrics.json_escape Versioning_util.Build_info.ocaml_version);
  add "    \"dsvc_jobs_env\": \"%s\",\n"
    (Metrics.json_escape
       (Option.value (Sys.getenv_opt "DSVC_JOBS") ~default:""));
  add "    \"dsvc_obs\": %b,\n" (Obs.enabled ());
  add "    \"obs_counters\": {";
  comma_sep
    (fun (k, v) ->
      add "\n      \"%s\": %s" (Metrics.json_escape k) (json_float v))
    (Metrics.snapshot_values ());
  add "\n    }\n";
  add "  },\n";
  add "  \"experiments\": [";
  comma_sep
    (fun (name, t) -> add "\n    {\"name\": \"%s\", \"wall_s\": %s}" name (json_float t))
    (List.rev !exp_timings);
  add "\n  ],\n";
  add "  \"graph_construction\": [";
  comma_sep
    (fun r ->
      let rate =
        if r.gwall > 0.0 then float_of_int r.gedges /. r.gwall else 0.0
      in
      add
        "\n    {\"jobs\": %d, \"versions\": %d, \"edges\": %d, \"wall_s\": %s, \
         \"edges_per_s\": %s}"
        r.gjobs r.gversions r.gedges (json_float r.gwall) (json_float rate))
    (List.rev !graph_runs);
  add "\n  ],\n";
  add "  \"checkout\": [";
  comma_sep
    (fun c ->
      let mean_us =
        if c.caccesses > 0 then c.cwall /. float_of_int c.caccesses *. 1e6
        else 0.0
      in
      add
        "\n    {\"mode\": \"%s\", \"accesses\": %d, \"wall_s\": %s, \
         \"mean_us\": %s, \"hits\": %d, \"partial_hits\": %d, \"misses\": %d}"
        c.cmode c.caccesses (json_float c.cwall) (json_float mean_us) c.chits
        c.cpartial c.cmisses)
    (List.rev !checkout_runs);
  add "\n  ],\n";
  (* Rows lead with "members", not "name", so the --check baseline
     scanner cannot mistake them for experiment entries. *)
  add "  \"cluster\": [";
  comma_sep
    (fun k ->
      let rate =
        if k.kget_wall > 0.0 then float_of_int k.kreads /. k.kget_wall else 0.0
      in
      add
        "\n    {\"members\": %d, \"down\": %d, \"replicas\": %d, \"blobs\": %d, \
         \"reads\": %d, \"put_wall_s\": %s, \"get_wall_s\": %s, \
         \"reads_per_s\": %s}"
        k.kmembers k.kdown k.kreplicas k.kblobs k.kreads
        (json_float k.kput_wall) (json_float k.kget_wall) (json_float rate))
    (List.rev !cluster_runs);
  add "\n  ],\n";
  (* Rows lead with "clients" / "mode" for the same scanner-safety
     reason as the cluster rows above. *)
  add "  \"concurrency\": [";
  comma_sep
    (fun q ->
      add
        "\n    {\"clients\": %d, \"requests\": %d, \"wall_s\": %s, \
         \"p50_ms\": %s, \"p99_ms\": %s, \"requests_per_s\": %s, \
         \"keepalive_reuse\": %s}"
        q.qclients q.qrequests (json_float q.qwall) (json_float q.qp50_ms)
        (json_float q.qp99_ms) (json_float q.qrps) (json_float q.qreused))
    (List.rev !concurrency_runs);
  add "\n  ],\n";
  (* Rows lead with "versions" for the same scanner-safety reason. *)
  add "  \"telemetry\": [";
  comma_sep
    (fun t ->
      add
        "\n    {\"versions\": %d, \"accesses\": %d, \"drift\": %s, \
         \"uniform_weighted\": %s, \"observed_weighted\": %s, \"saving\": %s}"
        t.tversions t.taccesses (json_float t.tdrift)
        (json_float t.tuniform_weighted)
        (json_float t.tobserved_weighted)
        (json_float t.tsaving))
    (List.rev !telemetry_runs);
  add "\n  ],\n";
  (* Rows lead with "series" for the same scanner-safety reason. *)
  add "  \"timeseries\": [";
  comma_sep
    (fun z ->
      add
        "\n    {\"series\": %d, \"ticks\": %d, \"record_wall_s\": %s, \
         \"records_per_s\": %s, \"query_wall_s\": %s, \"render_bytes\": %d, \
         \"roundtrip_ok\": %b, \"alert_evals\": %d, \"alert_wall_s\": %s}"
        z.zseries z.zticks (json_float z.zrecord_wall)
        (json_float z.zrecords_per_s)
        (json_float z.zquery_wall) z.zrender_bytes z.zroundtrip_ok
        z.zalert_evals (json_float z.zalert_wall))
    (List.rev !timeseries_runs);
  add "\n  ],\n";
  add "  \"connection_reuse\": [";
  comma_sep
    (fun r ->
      add "\n    {\"mode\": \"%s\", \"ops\": %d, \"wall_s\": %s, \"ops_per_s\": %s}"
        r.rmode r.rops (json_float r.rwall) (json_float r.rops_per_s))
    (List.rev !reuse_runs);
  add "\n  ]\n}\n";
  match
    Fsutil.write_file_atomic ~fsync:false ~site:"bench.json" path
      (Buffer.contents buf)
  with
  | Ok () -> Printf.printf "\nwrote %s\n" path
  | Error e -> Printf.eprintf "bench json %s: %s\n%!" path e

(* Minimal scan of a checked-in bench JSON for its per-experiment
   wall-clocks. Keyed on the exact [emit_bench_json] output: only
   experiment entries start with [{"name": ...] (graph_construction
   uses "jobs", checkout uses "mode"), so splitting on '{' and
   pattern-matching each chunk is enough — no JSON parser needed. *)
let parse_baseline_experiments content =
  String.split_on_char '{' content
  |> List.filter_map (fun chunk ->
         match
           Scanf.sscanf chunk " \"name\": %S, \"wall_s\": %f" (fun n w -> (n, w))
         with
         | pair -> Some pair
         | exception Scanf.Scan_failure _ -> None
         | exception End_of_file -> None
         | exception Failure _ -> None)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let ok = function Ok v -> v | Error e -> failwith e

let base_and_spt g =
  (ok (Solver.min_storage_tree g), ok (Spt.solve g))

(* ------------------------------------------------------------------ *)
(* Figure 12: dataset properties and delta-size distribution.          *)
(* ------------------------------------------------------------------ *)

let fig12 datasets =
  header "Figure 12: dataset properties and normalized delta sizes";
  Printf.printf "%-28s %10s %10s %10s %10s\n" "" "DC" "LC" "BF" "LF";
  let cell fmt v = Printf.sprintf fmt v in
  let rows = ref [] in
  let add name values = rows := (name, values) :: !rows in
  let per_ds = List.map (fun (d : Recipes.dataset) ->
      let g = d.aux in
      let base, spt = base_and_spt g in
      (d, base, spt))
      datasets
  in
  add "Number of versions"
    (List.map (fun (d, _, _) ->
         cell "%d" (Aux_graph.n_versions d.Recipes.aux)) per_ds);
  add "Number of deltas"
    (List.map (fun ((d : Recipes.dataset), _, _) -> cell "%d" d.n_deltas) per_ds);
  add "Average version size (KB)"
    (List.map (fun ((d : Recipes.dataset), _, _) ->
         cell "%.2f" (d.avg_version_size /. 1024.)) per_ds);
  add "MCA storage (KB)"
    (List.map (fun (_, base, _) ->
         cell "%.1f" (Storage_graph.storage_cost base /. 1024.)) per_ds);
  add "MCA sum recreation (KB)"
    (List.map (fun (_, base, _) ->
         cell "%.0f" (Storage_graph.sum_recreation base /. 1024.)) per_ds);
  add "MCA max recreation (KB)"
    (List.map (fun (_, base, _) ->
         cell "%.1f" (Storage_graph.max_recreation base /. 1024.)) per_ds);
  add "SPT storage (KB)"
    (List.map (fun (_, _, spt) ->
         cell "%.1f" (Storage_graph.storage_cost spt /. 1024.)) per_ds);
  add "SPT sum recreation (KB)"
    (List.map (fun (_, _, spt) ->
         cell "%.0f" (Storage_graph.sum_recreation spt /. 1024.)) per_ds);
  add "SPT max recreation (KB)"
    (List.map (fun (_, _, spt) ->
         cell "%.1f" (Storage_graph.max_recreation spt /. 1024.)) per_ds);
  List.iter
    (fun (name, values) ->
      Printf.printf "%-28s %10s %10s %10s %10s\n" name
        (List.nth values 0) (List.nth values 1) (List.nth values 2)
        (List.nth values 3))
    (List.rev !rows);
  subheader "normalized delta sizes (delta / avg version size)";
  List.iter
    (fun ((d : Recipes.dataset), _, _) ->
      let normalized =
        Array.map (fun s -> s /. d.avg_version_size) d.delta_sizes
      in
      let s = Stats.summarize normalized in
      Printf.printf "%-4s min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f\n"
        d.id s.Stats.min s.Stats.q1 s.Stats.median s.Stats.q3 s.Stats.max
        s.Stats.mean)
    per_ds;
  print_endline
    "\nshape check: SPT storage = SPT sum recreation (everything\n\
     materialized); MCA storage is a small fraction of SPT storage while\n\
     its recreation costs are far larger; most normalized deltas are well\n\
     below 1."

(* ------------------------------------------------------------------ *)
(* Section 5.2: comparison with SVN- and Git-style storage.            *)
(* ------------------------------------------------------------------ *)

let sec52 (lf : Recipes.dataset) =
  header "Section 5.2: SVN vs Git vs gzip vs MCA on the LF dataset";
  let contents = Option.get lf.contents in
  let n = Aux_graph.n_versions lf.aux in
  (* gzip-the-files baseline: every version compressed in full. *)
  let (gzip_bytes, gzip_t) =
    time (fun () ->
        let total = ref 0 in
        for v = 1 to n do
          total := !total + String.length (Compress.lz77 contents.(v))
        done;
        !total)
  in
  (* SVN skip-deltas: deltas computed directly from contents along the
     skip-base chain (SVN does not consult similarity). *)
  let (svn_bytes, svn_t) =
    time (fun () ->
        let total = ref (String.length contents.(1)) in
        for p = 1 to n - 1 do
          let base = Skip_delta.skip_base p + 1 and v = p + 1 in
          let d = Line_diff.diff contents.(base) contents.(v) in
          total := !total + Line_diff.size d
        done;
        !total)
  in
  (* GitH repack over the revealed graph. *)
  let (gith_sg, gith_t) =
    time (fun () -> ok (Gith.solve lf.aux ~window:50 ~max_depth:50))
  in
  (* MCA. *)
  let (mca_sg, mca_t) = time (fun () -> ok (Mca.solve lf.aux)) in
  Printf.printf "%-34s %14s %10s\n" "approach" "storage bytes" "time (s)";
  Printf.printf "%-34s %14d %10.2f\n" "gzip every version" gzip_bytes gzip_t;
  Printf.printf "%-34s %14d %10.2f\n" "SVN skip-deltas" svn_bytes svn_t;
  Printf.printf "%-34s %14.0f %10.2f\n" "GitH repack (w=50,d=50)"
    (Storage_graph.storage_cost gith_sg) gith_t;
  Printf.printf "%-34s %14.0f %10.2f\n" "MCA (this paper)"
    (Storage_graph.storage_cost mca_sg) mca_t;
  print_endline
    "\nshape check: MCA < GitH << gzip-everything, and SVN's skip-deltas\n\
     waste storage relative to similarity-aware plans (the paper: SVN\n\
     8.5 GB vs Git 202 MB vs MCA 159 MB)."

(* ------------------------------------------------------------------ *)
(* Figures 13-15: tradeoff sweeps.                                     *)
(* ------------------------------------------------------------------ *)

type point = { label : string; storage : float; sum_r : float; max_r : float }

let point label sg =
  {
    label;
    storage = Storage_graph.storage_cost sg;
    sum_r = Storage_graph.sum_recreation sg;
    max_r = Storage_graph.max_recreation sg;
  }

let sweep_lmg g base spt factors =
  let cmin = Storage_graph.storage_cost base in
  List.map
    (fun f ->
      point
        (Printf.sprintf "LMG %.2fx" f)
        (Lmg.solve g ~base ~spt ~budget:(f *. cmin) ()))
    factors

let sweep_mp g spt factors =
  let dist_max = Storage_graph.max_recreation spt in
  List.filter_map
    (fun f ->
      match Mp.solve g ~theta:(f *. dist_max) with
      | { Mp.tree = Some sg; _ } -> Some (point (Printf.sprintf "MP %.2fx" f) sg)
      | { Mp.tree = None; _ } -> None)
    factors

let sweep_last g base alphas =
  List.map
    (fun a -> point (Printf.sprintf "LAST a=%.2f" a) (Last.solve g ~base ~alpha:a))
    alphas

let sweep_gith g windows_depths =
  List.filter_map
    (fun (w, d) ->
      match Gith.solve g ~window:w ~max_depth:d with
      | Ok sg ->
          let wname = if w <= 0 then "inf" else string_of_int w in
          Some (point (Printf.sprintf "GitH w=%s d=%d" wname d) sg)
      | Error _ -> None)
    windows_depths

let print_points ?csv ~value ~value_name points =
  Printf.printf "%-16s %14s %14s\n" "config" "storage" value_name;
  List.iter
    (fun p -> Printf.printf "%-16s %14.0f %14.0f\n" p.label p.storage (value p))
    points;
  match csv with
  | None -> ()
  | Some name ->
      csv_write name
        [ "config"; "storage"; "sum_recreation"; "max_recreation" ]
        (List.map
           (fun p ->
             [
               p.label;
               Printf.sprintf "%.0f" p.storage;
               Printf.sprintf "%.0f" p.sum_r;
               Printf.sprintf "%.0f" p.max_r;
             ])
           points)

let fig13 datasets =
  header
    "Figure 13: directed case - storage vs sum of recreation costs";
  List.iter
    (fun (d : Recipes.dataset) ->
      let g = d.aux in
      let base, spt = base_and_spt g in
      subheader
        (Printf.sprintf
           "dataset %s   [min storage (MCA) = %.0f, min sumR (SPT) = %.0f]"
           d.id
           (Storage_graph.storage_cost base)
           (Storage_graph.sum_recreation spt));
      let pts =
        sweep_lmg g base spt [ 1.05; 1.1; 1.25; 1.5; 2.0; 3.0 ]
        @ sweep_mp g spt [ 1.0; 1.25; 1.5; 2.0; 3.0; 5.0 ]
        @ sweep_last g base [ 1.25; 1.5; 2.0; 3.0; 5.0 ]
        @ sweep_gith g [ (0, 10); (0, 50); (10, 50); (50, 50) ]
      in
      print_points ~csv:("fig13_" ^ d.id) ~value:(fun p -> p.sum_r)
        ~value_name:"sum recreation" pts)
    datasets;
  print_endline
    "\nshape check: small storage premiums over MCA collapse sum recreation\n\
     toward the SPT bound; LMG dominates the frontier with LAST close;\n\
     GitH reaches good recreation but at materially higher storage."

let fig14 datasets =
  header "Figure 14: directed case - storage vs max recreation cost";
  List.iter
    (fun (d : Recipes.dataset) ->
      let g = d.aux in
      let base, spt = base_and_spt g in
      subheader
        (Printf.sprintf
           "dataset %s   [min storage (MCA) = %.0f, min maxR (SPT) = %.0f]"
           d.id
           (Storage_graph.storage_cost base)
           (Storage_graph.max_recreation spt));
      let pts =
        sweep_lmg g base spt [ 1.05; 1.1; 1.25; 1.5; 2.0; 3.0 ]
        @ sweep_mp g spt [ 1.0; 1.25; 1.5; 2.0; 3.0; 5.0 ]
        @ sweep_last g base [ 1.25; 1.5; 2.0; 3.0; 5.0 ]
      in
      print_points ~csv:("fig14_" ^ d.id) ~value:(fun p -> p.max_r)
        ~value_name:"max recreation" pts)
    datasets;
  print_endline
    "\nshape check: MP traces the best storage-vs-maxR frontier; LMG and\n\
     LAST plateau (they optimize storage or sum, and one deep version\n\
     does not move those objectives)."

let fig15 datasets =
  header "Figure 15: undirected case";
  List.iter
    (fun (d : Recipes.dataset) ->
      let du = Recipes.undirected d in
      let g = du.aux in
      let base, spt = base_and_spt g in
      subheader
        (Printf.sprintf
           "dataset %s (undirected)  [MST = %.0f, min sumR = %.0f]" d.id
           (Storage_graph.storage_cost base)
           (Storage_graph.sum_recreation spt));
      let pts =
        sweep_lmg g base spt [ 1.05; 1.1; 1.25; 1.5; 2.0; 3.0 ]
        @ sweep_mp g spt [ 1.0; 1.25; 1.5; 2.0; 3.0 ]
        @ sweep_last g base [ 1.25; 1.5; 2.0; 3.0 ]
      in
      print_points ~csv:("fig15_" ^ d.id) ~value:(fun p -> p.sum_r)
        ~value_name:"sum recreation" pts;
      Printf.printf "\n(maxR view, as in Figure 15d)\n";
      print_points ~value:(fun p -> p.max_r) ~value_name:"max recreation" pts)
    datasets;
  print_endline
    "\nshape check: same dominance pattern as the directed case - LMG best\n\
     on sumR, MP best on maxR - now starting from Prim's MST."

(* ------------------------------------------------------------------ *)
(* Figure 16: workload-aware LMG.                                      *)
(* ------------------------------------------------------------------ *)

let fig16 datasets seed =
  header "Figure 16: workload-aware optimization (Zipf(2) access)";
  List.iter
    (fun (d : Recipes.dataset) ->
      let g = d.aux in
      let n = Aux_graph.n_versions g in
      let base, spt = base_and_spt g in
      let cmin = Storage_graph.storage_cost base in
      (* Zipf(2) access frequencies over a random version order. *)
      let rng = Prng.create ~seed in
      let zipf = Zipf.create ~n ~exponent:2.0 in
      let masses = Zipf.masses zipf in
      let order = Array.init n (fun i -> i) in
      Prng.shuffle rng order;
      let freqs = Array.make (n + 1) 0.0 in
      for i = 0 to n - 1 do
        freqs.(order.(i) + 1) <- masses.(i) *. 100_000.0
      done;
      subheader (Printf.sprintf "dataset %s" d.id);
      Printf.printf "%-12s %14s %18s %18s\n" "budget" "storage"
        "LMG weighted R" "LMG-W weighted R";
      let rows = ref [] in
      List.iter
        (fun f ->
          let budget = f *. cmin in
          let blind = Lmg.solve g ~base ~spt ~budget () in
          let aware = Lmg.solve g ~base ~spt ~budget ~freqs () in
          let wb = Storage_graph.weighted_recreation blind ~freqs in
          let wa = Storage_graph.weighted_recreation aware ~freqs in
          rows :=
            [
              Printf.sprintf "%.2f" f;
              Printf.sprintf "%.0f" budget;
              Printf.sprintf "%.0f" wb;
              Printf.sprintf "%.0f" wa;
            ]
            :: !rows;
          Printf.printf "%-12s %14.0f %18.0f %18.0f\n"
            (Printf.sprintf "%.2fx" f)
            budget wb wa)
        [ 1.1; 1.25; 1.5; 2.0; 3.0 ];
      csv_write ("fig16_" ^ d.id)
        [ "budget_factor"; "budget"; "lmg_weighted_r"; "lmgw_weighted_r" ]
        (List.rev !rows))
    datasets;
  print_endline
    "\nshape check: the workload-aware column is never worse, with the\n\
     largest gains at tight budgets; how much a given dataset benefits\n\
     depends on where the hot versions land (the paper saw large gains\n\
     on DC and little on LF; the skew itself is random here)."

(* ------------------------------------------------------------------ *)
(* Figure 17: running time of LMG.                                     *)
(* ------------------------------------------------------------------ *)

let fig17 ~quick seed =
  header "Figure 17: LMG running time vs number of versions";
  let sizes =
    if quick then [ 250; 500; 1000; 2000 ] else [ 500; 1000; 2000; 4000; 8000; 16000 ]
  in
  let max_n = List.fold_left max 0 sizes in
  let mk_history kind n rng =
    match kind with
    | `DC -> History_gen.generate (History_gen.flat_params ~n_commits:n) rng
    | `LC -> History_gen.generate (History_gen.linear_params ~n_commits:n) rng
  in
  List.iter
    (fun symmetric ->
      subheader (if symmetric then "undirected" else "directed");
      Printf.printf "%-10s %16s %16s %16s %16s\n" "versions" "LMG DC (s)"
        "total DC (s)" "LMG LC (s)" "total LC (s)";
      let csv_rows = ref [] in
      let rng = Prng.create ~seed:(seed + if symmetric then 1 else 0) in
      let params =
        { Cost_gen.default_params with symmetric; max_hops = 5; reveal_cap = 12 }
      in
      let big_dc = Cost_gen.generate (mk_history `DC max_n rng) params rng in
      let big_lc = Cost_gen.generate (mk_history `LC max_n rng) params rng in
      List.iter
        (fun n ->
          let run big =
            let sub = Subgraph.bfs_sample big ~n rng in
            let (inputs, prep_t) =
              time (fun () -> base_and_spt sub)
            in
            let base, spt = inputs in
            let budget = 3.0 *. Storage_graph.storage_cost base in
            let (_, lmg_t) =
              time (fun () -> Lmg.solve sub ~base ~spt ~budget ())
            in
            (lmg_t, prep_t +. lmg_t)
          in
          let dc_lmg, dc_total = run big_dc in
          let lc_lmg, lc_total = run big_lc in
          csv_rows :=
            List.map (Printf.sprintf "%.3f")
              [ float_of_int n; dc_lmg; dc_total; lc_lmg; lc_total ]
            :: !csv_rows;
          Printf.printf "%-10d %16.3f %16.3f %16.3f %16.3f\n" n dc_lmg dc_total
            lc_lmg lc_total)
        sizes;
      csv_write
        (if symmetric then "fig17_undirected" else "fig17_directed")
        [ "versions"; "lmg_dc_s"; "total_dc_s"; "lmg_lc_s"; "total_lc_s" ]
        (List.rev !csv_rows))
    [ false; true ];
  print_endline
    "\nshape check: LMG grows roughly quadratically but stays tractable at\n\
     thousands of versions; total time is dominated by MST/MCA+SPT\n\
     preparation at small n and by LMG itself at large n; DC costs more\n\
     than LC at equal n (denser candidate sets, smaller deltas)."

(* ------------------------------------------------------------------ *)
(* Table 2: ILP (exact) vs MP on small all-pairs datasets.             *)
(* ------------------------------------------------------------------ *)

let table2 ~quick seed =
  header "Table 2: exact (ILP-equivalent B&B) vs MP, max-recreation bound";
  let sizes = if quick then [ 10; 15 ] else [ 15; 25; 50 ] in
  List.iter
    (fun n ->
      let rng = Prng.create ~seed:(seed + n) in
      let history =
        History_gen.generate
          {
            History_gen.n_commits = n;
            branch_interval = 3;
            branch_probability = 0.5;
            branch_limit = 2;
            branch_length = 3;
            merge_probability = 0.2;
          }
          rng
      in
      let data =
        Dataset_gen.generate ~name:"t2" history
          {
            Dataset_gen.default_params with
            initial_rows = 60;
            initial_cols = 6;
            edit_intensity = 0.08;
            max_hops = 2;
            (* contents only; graph rebuilt below *)
          }
          rng
      in
      let g =
        Dataset_gen.all_pairs_aux ~contents:data.Dataset_gen.contents
          ~mode:Dataset_gen.Line_directed
      in
      let dist = Spt.distances g in
      let maxd = Array.fold_left Float.max 0.0 dist in
      Printf.printf "\nv%d (theta in KB, storage in KB):\n" n;
      Printf.printf "%-10s" "theta";
      let thetas = List.map (fun f -> f *. maxd) [ 1.0; 1.1; 1.25; 1.5; 2.0 ] in
      List.iter (fun t -> Printf.printf "%10.2f" (t /. 1024.)) thetas;
      Printf.printf "\n%-10s" "ILP";
      let budget = if quick then 200_000 else 2_000_000 in
      let time_budget = if quick then 5.0 else 45.0 in
      let exact_results =
        List.map
          (fun theta ->
            Exact.solve_p6 g ~theta ~node_budget:budget ~time_budget ())
          thetas
      in
      List.iter
        (fun (r : Exact.result) ->
          match r.tree with
          | Some sg ->
              Printf.printf "%9.2f%s"
                (Storage_graph.storage_cost sg /. 1024.)
                (if r.optimal then " " else "*")
          | None -> Printf.printf "%10s" "-")
        exact_results;
      Printf.printf "\n%-10s" "MP";
      List.iter
        (fun theta ->
          match Mp.solve g ~theta with
          | { Mp.tree = Some sg; _ } ->
              Printf.printf "%9.2f " (Storage_graph.storage_cost sg /. 1024.)
          | { Mp.tree = None; _ } -> Printf.printf "%10s" "-")
        thetas;
      print_newline ())
    sizes;
  print_endline
    "\n(* = node budget exhausted; best incumbent reported, as the paper\n\
     reports Gurobi's best-found on unfinished runs)\n\
     shape check: MP tracks the exact optimum closely, from above; both\n\
     decrease as theta loosens."

(* ------------------------------------------------------------------ *)
(* Table 2b (extension): exact vs LMG on the sum-recreation side.      *)
(* ------------------------------------------------------------------ *)

let table2b ~quick seed =
  header
    "Table 2b (extension): exact (B&B) vs LMG, storage-bounded sum recreation";
  let sizes = if quick then [ 8; 12 ] else [ 10; 15; 20 ] in
  List.iter
    (fun n ->
      let rng = Prng.create ~seed:(seed + n + 1000) in
      let history =
        History_gen.generate
          {
            History_gen.n_commits = n;
            branch_interval = 3;
            branch_probability = 0.5;
            branch_limit = 2;
            branch_length = 3;
            merge_probability = 0.2;
          }
          rng
      in
      let data =
        Dataset_gen.generate ~name:"t2b" history
          {
            Dataset_gen.default_params with
            initial_rows = 40;
            initial_cols = 5;
            edit_intensity = 0.08;
            max_hops = 2;
          }
          rng
      in
      let g =
        Dataset_gen.all_pairs_aux ~contents:data.Dataset_gen.contents
          ~mode:Dataset_gen.Line_directed
      in
      let base, spt = base_and_spt g in
      let cmin = Storage_graph.storage_cost base in
      Printf.printf "\nv%d (budget as xMCA, sumR in KB):\n" n;
      let factors = [ 1.05; 1.1; 1.25; 1.5; 2.0 ] in
      Printf.printf "%-10s" "budget";
      List.iter (fun f -> Printf.printf "%10.2f" f) factors;
      Printf.printf "\n%-10s" "ILP";
      List.iter
        (fun f ->
          let r =
            Exact.solve_p3 g ~budget:(f *. cmin)
              ~node_budget:(if quick then 150_000 else 1_000_000)
              ~time_budget:(if quick then 4.0 else 30.0)
              ()
          in
          match r.Exact.tree with
          | Some sg ->
              Printf.printf "%9.2f%s"
                (Storage_graph.sum_recreation sg /. 1024.)
                (if r.Exact.optimal then " " else "*")
          | None -> Printf.printf "%10s" "-")
        factors;
      Printf.printf "\n%-10s" "LMG";
      List.iter
        (fun f ->
          let sg = Lmg.solve g ~base ~spt ~budget:(f *. cmin) () in
          Printf.printf "%9.2f " (Storage_graph.sum_recreation sg /. 1024.))
        factors;
      print_newline ())
    sizes;
  print_endline
    "\n(* = search budget exhausted; incumbent reported)\n\
     \ shape check: LMG tracks the exact optimum from above, with the gap\n\
     \ widest at tight budgets - consistent with the paper's expectation\n\
     \ that the average-recreation problems are the easier ones."

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's figures.                               *)
(* ------------------------------------------------------------------ *)

let ablation ~quick seed =
  header "Ablations: scale, revealing policy, GitH depth bias, delta variants";

  (* A. The MCA-vs-SPT recreation gap grows with the number of
     versions. The paper's 100k-version datasets show a 340x gap in
     sum recreation; at reproduction scale the gap is smaller. This
     ablation verifies the trend that extrapolates to the paper's
     regime: deeper histories -> disproportionately worse MCA
     recreation. *)
  subheader "A. recreation gap vs number of versions (chain-heavy history)";
  Printf.printf "%-10s %14s %14s %16s\n" "versions" "sumR MCA/SPT"
    "maxR MCA/SPT" "storage SPT/MCA";
  let sizes = if quick then [ 250; 1000; 4000 ] else [ 250; 1000; 4000; 16000 ] in
  List.iter
    (fun n ->
      let rng = Prng.create ~seed:(seed + n) in
      let history =
        History_gen.generate (History_gen.linear_params ~n_commits:n) rng
      in
      let g =
        Cost_gen.generate history
          {
            Cost_gen.default_params with
            delta_per_hop = 60.0;
            (* small deltas: chains are cheap to store, dear to replay *)
            max_hops = 4;
            reveal_cap = 10;
          }
          rng
      in
      let base, spt = base_and_spt g in
      Printf.printf "%-10d %14.1f %14.1f %16.1f\n" n
        (Storage_graph.sum_recreation base /. Storage_graph.sum_recreation spt)
        (Storage_graph.max_recreation base /. Storage_graph.max_recreation spt)
        (Storage_graph.storage_cost spt /. Storage_graph.storage_cost base))
    sizes;
  print_endline
    "expectation: every ratio grows with n - the tradeoff the paper\n\
     studies becomes more extreme with scale.";

  (* B. Revealing policy: how much does computing more ∆ entries help?
     (§2.1 discusses that computing all pairwise deltas is infeasible
     and hop-based revealing is the practical middle ground.) *)
  subheader "B. revealed-entry budget (hop radius) vs solution quality";
  Printf.printf "%-10s %12s %14s %16s\n" "max_hops" "deltas" "MCA storage"
    "LMG@1.5x sumR";
  let rng0 = Prng.create ~seed:(seed + 7) in
  let history =
    History_gen.generate
      (History_gen.flat_params ~n_commits:(if quick then 150 else 400))
      rng0
  in
  let tg_rng = Prng.create ~seed:(seed + 8) in
  let data_for hops =
    let rng = Prng.copy tg_rng in
    Dataset_gen.generate history
      {
        Dataset_gen.default_params with
        initial_rows = 80;
        edit_intensity = 0.02;
        max_hops = hops;
        reveal_cap = 1000;
      }
      rng
  in
  List.iter
    (fun hops ->
      let d = data_for hops in
      let g = d.Dataset_gen.aux in
      let base, spt = base_and_spt g in
      let budget = 1.5 *. Storage_graph.storage_cost base in
      let lmg = Lmg.solve g ~base ~spt ~budget () in
      Printf.printf "%-10d %12d %14.0f %16.0f\n" hops d.Dataset_gen.n_deltas
        (Storage_graph.storage_cost base)
        (Storage_graph.sum_recreation lmg))
    [ 1; 2; 4; 8 ];
  print_endline
    "expectation: more revealed entries monotonically improve minimum\n\
     storage, with diminishing returns - missing distant redundancies\n\
     costs little once nearby deltas are known.";

  (* C. GitH's depth bias (Appendix A: the denominator was a later
     addition to git). *)
  subheader "C. GitH depth bias on/off";
  Printf.printf "%-22s %14s %16s %12s\n" "variant" "storage" "sum recreation"
    "max depth";
  let rng = Prng.create ~seed:(seed + 9) in
  let history =
    History_gen.generate
      (History_gen.flat_params ~n_commits:(if quick then 200 else 600))
      rng
  in
  let g = Cost_gen.generate history Cost_gen.default_params rng in
  List.iter
    (fun (name, bias) ->
      match Gith.solve ~depth_bias:bias g ~window:10 ~max_depth:20 with
      | Ok sg ->
          let max_depth = ref 0 in
          for v = 1 to Aux_graph.n_versions g do
            max_depth := max !max_depth (Storage_graph.depth sg v)
          done;
          Printf.printf "%-22s %14.0f %16.0f %12d\n" name
            (Storage_graph.storage_cost sg)
            (Storage_graph.sum_recreation sg)
            !max_depth
      | Error e -> Printf.printf "%-22s failed: %s\n" name e)
    [ ("with depth bias", true); ("raw delta (old git)", false) ];
  print_endline
    "expectation: the bias trades a little storage for shallower\n\
     chains and lower recreation cost - why git added it.";

  (* D. Delta mechanisms (§2.1's variants) on the same version pairs. *)
  subheader "D. delta variants: line vs cell vs xor (+compression)";
  let rng = Prng.create ~seed:(seed + 11) in
  let tg = Table_gen.create rng in
  let a = Table_gen.fresh_table tg ~rows:300 ~cols:8 in
  let b =
    Table_gen.apply tg a
      [
        Table_gen.Modify_cells { fraction = 0.02 };
        Table_gen.Add_rows { at = 10; count = 5 };
      ]
  in
  let ca = Versioning_delta.Csv.print a and cb = Versioning_delta.Csv.print b in
  let module D = Versioning_delta.Delta in
  Printf.printf "%-28s %10s\n" "mechanism" "bytes";
  Printf.printf "%-28s %10d\n" "full version"
    (String.length cb);
  List.iter
    (fun (name, d) ->
      Printf.printf "%-28s %10.0f\n" name (D.storage_cost d))
    [
      ("line diff", D.line_delta ca cb);
      ("line diff + lz77", D.line_delta ~compress:true ca cb);
      ("cell-level delta", D.cell_delta a b);
      ("cell delta + lz77", D.cell_delta ~compress:true a b);
      ("xor", D.xor_delta ca cb);
      ("xor + rle/lz77", D.xor_delta ~compress:true ca cb);
    ];
  print_endline
    "expectation: cell deltas < line deltas for sparse tabular edits;\n\
     raw xor is near the full size once rows shift (alignment breaks),\n\
     so it relies on compression; every delta beats re-storing the\n\
     version.";

  (* E. Chunk-level dedup (Venti / Kulkarni et al., §6 related work)
     vs the paper's delta plans on the same collection. *)
  subheader "E. content-defined-chunk dedup vs delta plans";
  let rng = Prng.create ~seed:(seed + 13) in
  let history =
    History_gen.generate
      (History_gen.flat_params ~n_commits:(if quick then 120 else 400))
      rng
  in
  let d =
    Dataset_gen.generate ~name:"dedup" history
      {
        Dataset_gen.default_params with
        initial_rows = 150;
        edit_intensity = 0.02;
        max_hops = 3;
        reveal_cap = 12;
      }
      rng
  in
  let n = Aux_graph.n_versions d.Dataset_gen.aux in
  let raw = ref 0 in
  let store = Versioning_delta.Chunker.store_create () in
  for v = 1 to n do
    raw := !raw + String.length d.Dataset_gen.contents.(v);
    ignore (Versioning_delta.Chunker.store_add store d.Dataset_gen.contents.(v))
  done;
  let base, spt = base_and_spt d.Dataset_gen.aux in
  Printf.printf "%-32s %14s\n" "strategy" "bytes";
  Printf.printf "%-32s %14d\n" "store every version raw" !raw;
  Printf.printf "%-32s %14d (%d chunks)\n" "CDC dedup (Venti-style)"
    (Versioning_delta.Chunker.store_bytes store)
    (Versioning_delta.Chunker.store_chunks store);
  Printf.printf "%-32s %14.0f\n" "MCA delta plan" (Storage_graph.storage_cost base);
  Printf.printf "%-32s %14.0f\n" "LMG 1.5x delta plan"
    (Storage_graph.storage_cost
       (Lmg.solve d.Dataset_gen.aux ~base ~spt
          ~budget:(1.5 *. Storage_graph.storage_cost base)
          ()));
  print_endline
    "expectation: dedup removes whole-block duplication (far below raw)\n\
     but delta plans capture sub-block redundancy and win - at the cost\n\
     of recreation chains, which is exactly the paper's tradeoff; dedup\n\
     has O(1)-depth retrieval instead.";

  (* F. Reveal policies on fork collections (§2.1: which ∆ entries to
     compute when there is no derivation graph to follow). *)
  subheader "F. reveal policy on forks: size threshold vs MinHash vs all pairs";
  Printf.printf "%-34s %10s %14s %14s\n" "policy" "deltas" "MCA storage"
    "gen time (s)";
  let n_forks = if quick then 40 else 100 in
  List.iter
    (fun (label, reveal) ->
      let rng = Prng.create ~seed:(seed + 17) in
      let (f, t) =
        time (fun () ->
            Fork_gen.generate
              {
                Fork_gen.default_params with
                n_forks;
                base_rows = 150;
                reveal;
              }
              rng)
      in
      let base, _ = base_and_spt f.Fork_gen.aux in
      Printf.printf "%-34s %10d %14.0f %14.2f\n" label f.Fork_gen.n_deltas
        (Storage_graph.storage_cost base)
        t)
    [
      ("size threshold (paper)", Fork_gen.Size_threshold 1500.0);
      ( "MinHash resemblance (top 6)",
        Fork_gen.Resemblance { threshold = 0.2; per_fork_cap = 6 } );
      ("all pairs (upper bound)", Fork_gen.All_pairs);
    ];
  print_endline
    "expectation: resemblance revealing needs far fewer computed deltas\n\
     to get near the all-pairs MCA optimum; the size threshold is\n\
     cheaper to evaluate but blunter.";

  (* G. Cache-aware retrieval: the Figure 16 motivation carried one
     step further - a hot-version cache changes what a plan costs. *)
  subheader "G. retrieval cost under an LRU materialization cache";
  let rng = Prng.create ~seed:(seed + 19) in
  let history =
    History_gen.generate
      (History_gen.flat_params ~n_commits:(if quick then 150 else 400))
      rng
  in
  let g = Cost_gen.generate history Cost_gen.default_params rng in
  let base, spt = base_and_spt g in
  let lmg =
    Lmg.solve g ~base ~spt ~budget:(1.5 *. Storage_graph.storage_cost base) ()
  in
  let stream =
    Retrieval_sim.zipf_stream ~n_versions:(Aux_graph.n_versions g)
      ~length:(if quick then 2000 else 10000)
      ~exponent:2.0 rng
  in
  Printf.printf "%-22s %16s %16s %16s\n" "plan \\ cache slots" "0" "8" "64";
  List.iter
    (fun (label, sg) ->
      let cost slots =
        (Retrieval_sim.run sg ~cache_slots:slots ~accesses:stream)
          .Retrieval_sim.total_cost
      in
      Printf.printf "%-22s %16.0f %16.0f %16.0f\n" label (cost 0) (cost 8)
        (cost 64))
    [ ("MCA", base); ("LMG 1.5x", lmg); ("SPT", spt) ];
  print_endline
    "expectation: with no cache the plans order as their sum-recreation\n\
     costs; a modest cache compresses the gap dramatically on skewed\n\
     workloads (hot chains are paid once) - motivation for the paper's\n\
     adaptive/workload-aware future work."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the algorithm kernels.                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Microbenchmarks (Bechamel): algorithm kernels, n=400 versions";
  let rng = Prng.create ~seed:31415 in
  let history = History_gen.generate (History_gen.flat_params ~n_commits:400) rng in
  let g =
    Cost_gen.generate history
      { Cost_gen.default_params with max_hops = 5; reveal_cap = 12 }
      rng
  in
  let base, spt = base_and_spt g in
  let budget = 2.0 *. Storage_graph.storage_cost base in
  let theta = 3.0 *. Storage_graph.max_recreation spt in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"mca" (Staged.stage (fun () -> ok (Mca.solve g)));
      Test.make ~name:"spt" (Staged.stage (fun () -> ok (Spt.solve g)));
      Test.make ~name:"lmg"
        (Staged.stage (fun () -> Lmg.solve g ~base ~spt ~budget ()));
      Test.make ~name:"mp" (Staged.stage (fun () -> Mp.solve g ~theta));
      Test.make ~name:"last"
        (Staged.stage (fun () -> Last.solve g ~base ~alpha:2.0));
      Test.make ~name:"gith"
        (Staged.stage (fun () -> ok (Gith.solve g ~window:10 ~max_depth:50)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let raw =
    benchmark (Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests)
  in
  let results = analyze raw in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-24s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-24s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Perf: the multicore pipeline and the checkout cache, measured.      *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let perf ~quick ~jobs seed =
  header "Perf: parallel graph construction and checkout chain cache";
  let ncores = Pool.recommended_jobs () in
  (* Graph construction (the ⟨Δ,Φ⟩ reveal — the pipeline's dominant
     cost) at jobs ∈ {1, --jobs, ncores}. Each run regenerates the
     same history from the same seed, so the work is identical and
     only the domain count varies. *)
  let job_list = List.sort_uniq compare [ 1; jobs; ncores ] in
  let n = if quick then 300 else 1200 in
  let params = { Cost_gen.default_params with max_hops = 5; reveal_cap = 12 } in
  subheader
    (Printf.sprintf "aux-graph construction, %d versions (ncores=%d)" n ncores);
  Printf.printf "%-8s %10s %12s %14s\n" "jobs" "edges" "wall (s)" "edges/s";
  List.iter
    (fun j ->
      let rng = Prng.create ~seed:(seed + 23) in
      let history =
        History_gen.generate (History_gen.flat_params ~n_commits:n) rng
      in
      let (g, t) = time (fun () -> Cost_gen.generate ~jobs:j history params rng) in
      let edges = Versioning_graph.Digraph.n_edges (Aux_graph.graph g) in
      graph_runs := { gjobs = j; gversions = n; gedges = edges; gwall = t } :: !graph_runs;
      Printf.printf "%-8d %10d %12.3f %14.0f\n" j edges t
        (if t > 0.0 then float_of_int edges /. t else 0.0))
    job_list;
  (* Checkout latency against a real on-disk repository whose versions
     sit on commit-order delta chains, replaying a Zipf stream with
     the materialization cache off and then on (cold in both modes:
     re-enabling starts from an empty table). *)
  let nv = if quick then 60 else 150 in
  let len = if quick then 400 else 2000 in
  subheader
    (Printf.sprintf "checkout latency, %d chained versions, %d accesses" nv len);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsvc_bench_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let repo = ok (Repo.init ~path:dir) in
  let rng = Prng.create ~seed:(seed + 29) in
  let history =
    History_gen.generate (History_gen.linear_params ~n_commits:nv) rng
  in
  let data =
    Dataset_gen.generate ~name:"perf" history
      { Dataset_gen.default_params with initial_rows = 80; max_hops = 1 }
      rng
  in
  let entries =
    List.init nv (fun i ->
        let v = i + 1 in
        ( Printf.sprintf "v%d" v,
          (if v = 1 then [] else [ v - 1 ]),
          data.Dataset_gen.contents.(v) ))
  in
  let _ids = ok (Repo.import_versions repo entries) in
  let stream =
    Array.of_list
      (Retrieval_sim.zipf_stream ~n_versions:nv ~length:len ~exponent:2.0 rng)
  in
  Printf.printf "%-10s %12s %12s %8s %10s %8s\n" "cache" "wall (s)" "mean (us)"
    "hits" "partial" "misses";
  let measure cmode slots =
    Repo.set_cache_slots repo slots;
    let s0 = Repo.cache_stats repo in
    let ((), t) =
      time (fun () -> Array.iter (fun v -> ignore (ok (Repo.checkout repo v))) stream)
    in
    let s1 = Repo.cache_stats repo in
    let run =
      {
        cmode;
        caccesses = Array.length stream;
        cwall = t;
        chits = s1.Repo.hits - s0.Repo.hits;
        cpartial = s1.Repo.partial_hits - s0.Repo.partial_hits;
        cmisses = s1.Repo.misses - s0.Repo.misses;
      }
    in
    checkout_runs := run :: !checkout_runs;
    Printf.printf "%-10s %12.3f %12.1f %8d %10d %8d\n"
      (if slots = 0 then "off" else Printf.sprintf "on (%d)" slots)
      t
      (t /. float_of_int (Array.length stream) *. 1e6)
      run.chits run.cpartial run.cmisses
  in
  measure "cache_off" 0;
  measure "cache_on" Repo.default_cache_slots;
  Repo.close repo;
  rm_rf dir;
  print_endline
    "\nshape check: construction wall-clock falls as jobs grow (on a\n\
     multi-core runner) with identical edge counts; cached checkout is\n\
     far below uncached on a skewed stream (hot chains are replayed\n\
     once, then served or extended from the cache)."

(* ------------------------------------------------------------------ *)
(* cluster: price of replication in the sharded store (DESIGN.md §12). *)
(* ------------------------------------------------------------------ *)

(* In-process [Replicated] views over memory backends — no sockets, so
   the measured delta between member counts is the cost of quorum
   placement, digest verification and handoff bookkeeping themselves.
   The fourth row repeats the 3-member run with one peer returning
   errors: every put must still reach quorum via hinted handoff and
   every read must fail over, with zero client-visible failures. *)
let cluster ~quick seed =
  header "cluster: replicated store put/get throughput (in-process)";
  let blobs = if quick then 150 else 600 in
  let reads = if quick then 1500 else 6000 in
  let contents =
    Array.init blobs (fun i ->
        let n = 64 + ((i * 37) mod 192) in
        String.init n (fun j ->
            Char.chr (32 + (((i * 31) + (j * 7)) mod 95))))
  in
  let digests = Array.map Content_hash.hex contents in
  let stream =
    Array.of_list
      (Retrieval_sim.zipf_stream ~n_versions:blobs ~length:reads ~exponent:1.2
         (Prng.create ~seed:(seed + 32)))
  in
  Printf.printf "%d blobs, %d Zipf reads per configuration\n\n" blobs reads;
  Printf.printf "%-10s %6s %10s %12s %12s %12s\n" "members" "down" "replicas"
    "put (s)" "get (s)" "reads/s";
  let rows = [ (1, 0); (2, 0); (3, 0); (3, 1) ] in
  List.iter
    (fun (m, down) ->
      let name i = Printf.sprintf "node-%d" i in
      let unreachable = Printf.sprintf "%s unreachable" in
      let mk i =
        (* the down member is never self: a peer that errors on every
           op, exercising handoff on puts and failover on reads *)
        if i >= m - down then
          ( name i,
            {
              (Backend.memory ()) with
              Backend.name = name i;
              put = (fun ~digest:_ _ -> Error (unreachable (name i)));
              get = (fun ~digest:_ -> Error (unreachable (name i)));
              mem = (fun ~digest:_ -> false);
              list = (fun () -> []);
              ping = (fun () -> Error (unreachable (name i)));
            } )
        else (name i, Backend.memory ())
      in
      let backends = List.init m mk in
      let t =
        Replicated.create ~replicas:2 ~self:(name 0)
          ~self_backend:(List.assoc (name 0) backends)
          ~peers:(List.filter (fun (n, _) -> n <> name 0) backends)
          ()
      in
      let ((), put_wall) =
        time (fun () ->
            Array.iteri
              (fun i content -> ok (Replicated.put t ~digest:digests.(i) content))
              contents)
      in
      let ((), get_wall) =
        time (fun () ->
            Array.iter
              (fun v ->
                let i = v - 1 in
                let got = ok (Replicated.get t ~digest:digests.(i)) in
                if got <> contents.(i) then
                  failwith (Printf.sprintf "cluster bench: blob %d corrupt" i))
              stream)
      in
      cluster_runs :=
        {
          kmembers = m;
          kdown = down;
          kreplicas = Replicated.replicas t;
          kblobs = blobs;
          kreads = reads;
          kput_wall = put_wall;
          kget_wall = get_wall;
        }
        :: !cluster_runs;
      Printf.printf "%-10d %6d %10d %12.3f %12.3f %12.0f\n" m down
        (Replicated.replicas t) put_wall get_wall
        (if get_wall > 0.0 then float_of_int reads /. get_wall else 0.0))
    rows;
  print_endline
    "\nshape check: puts slow with member count (quorum fan-out) while\n\
     reads stay near single-member speed (served by the first healthy\n\
     owner); the degraded row completes with zero failed operations\n\
     (handoff covers the dead owner's writes, failover its reads)."

(* ------------------------------------------------------------------ *)
(* concurrency: the event-driven server core under keep-alive load.   *)
(* ------------------------------------------------------------------ *)

(* A real server (event loop, keep-alive, pipelined parsing) on an
   ephemeral port, hammered by N concurrent clients each holding one
   persistent connection — the reuse counter delta proves no
   per-request connection setup happened. The second half prices
   connection reuse for cluster replication traffic: the same blob
   put/get work over one-connection-per-request ("cold") versus a
   kept-alive client ("reused"). *)
let concurrency ~quick seed =
  ignore seed;
  header "concurrency: event-loop server under keep-alive load";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsvc_bench_conc_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"seed" "alpha\nbeta\ngamma") in
  let port_box = ref None in
  let pm = Mutex.create () and pc = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        match
          Server.serve repo ~port:0 ~max_connections:2048 ~idle_timeout:120.0
            ~on_listen:(fun p ->
              Mutex.lock pm;
              port_box := Some p;
              Condition.signal pc;
              Mutex.unlock pm)
            ()
        with
        | Ok () -> ()
        | Error e -> Printf.eprintf "concurrency bench server: %s\n%!" e)
      ()
  in
  Mutex.lock pm;
  while !port_box = None do
    Condition.wait pc pm
  done;
  let port = Option.get !port_box in
  Mutex.unlock pm;
  let reuse_counter () =
    let prefix = "dsvc_server_keepalive_reuse_total" in
    let plen = String.length prefix in
    List.fold_left
      (fun acc (k, v) ->
        if String.length k >= plen && String.sub k 0 plen = prefix then
          acc +. v
        else acc)
      0.0 (Metrics.snapshot_values ())
  in
  (* One keep-alive request/response on an already-open connection. *)
  let request_once ic oc =
    output_string oc "GET /stats HTTP/1.1\r\nHost: bench\r\n\r\n";
    flush oc;
    let line () =
      match input_line ic with
      | l ->
          if String.length l > 0 && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
      | exception End_of_file -> failwith "server closed connection"
    in
    let status = line () in
    if String.length status < 12 || String.sub status 9 3 <> "200" then
      failwith ("unexpected response: " ^ status);
    let cl = ref 0 in
    let rec headers () =
      let l = line () in
      if l <> "" then begin
        (match String.index_opt l ':' with
        | Some i when String.lowercase_ascii (String.sub l 0 i) = "content-length"
          ->
            cl :=
              Option.value
                (int_of_string_opt
                   (String.trim (String.sub l (i + 1) (String.length l - i - 1))))
                ~default:0
        | _ -> ());
        headers ()
      end
    in
    headers ();
    if !cl > 0 then ignore (really_input_string ic !cl)
  in
  subheader "keep-alive latency/throughput by client count";
  Printf.printf "%-10s %10s %12s %10s %10s %12s %10s\n" "clients" "requests"
    "wall (s)" "p50 (ms)" "p99 (ms)" "req/s" "reused";
  let levels = if quick then [ 1; 10; 50 ] else [ 1; 100; 1000 ] in
  let run_level clients =
    let per_client = max 1 ((if quick then 600 else 4000) / clients) in
    let total = clients * per_client in
    let lats = Array.make total 0.0 in
    (* Barrier: every client connects before anyone sends, so the
       level really is N concurrent connections. *)
    let ready = ref 0 and go = ref false in
    let bm = Mutex.create () and bc = Condition.create () in
    let client_thread idx =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      Mutex.lock bm;
      incr ready;
      Condition.broadcast bc;
      while not !go do
        Condition.wait bc bm
      done;
      Mutex.unlock bm;
      for i = 0 to per_client - 1 do
        let t0 = Unix.gettimeofday () in
        request_once ic oc;
        lats.((idx * per_client) + i) <- Unix.gettimeofday () -. t0
      done;
      (try Unix.close sock with Unix.Unix_error _ -> ())
    in
    let reuse0 = reuse_counter () in
    let threads = List.init clients (fun i -> Thread.create client_thread i) in
    Mutex.lock bm;
    while !ready < clients do
      Condition.wait bc bm
    done;
    go := true;
    Condition.broadcast bc;
    Mutex.unlock bm;
    let ((), wall) = time (fun () -> List.iter Thread.join threads) in
    let reused = reuse_counter () -. reuse0 in
    Array.sort compare lats;
    let pct q =
      lats.(min (total - 1) (int_of_float (float_of_int total *. q))) *. 1000.0
    in
    let rps = if wall > 0.0 then float_of_int total /. wall else 0.0 in
    concurrency_runs :=
      {
        qclients = clients;
        qrequests = total;
        qwall = wall;
        qp50_ms = pct 0.50;
        qp99_ms = pct 0.99;
        qrps = rps;
        qreused = reused;
      }
      :: !concurrency_runs;
    Printf.printf "%-10d %10d %12.3f %10.3f %10.3f %12.0f %10.0f\n" clients
      total wall (pct 0.50) (pct 0.99) rps reused
  in
  List.iter run_level levels;
  (* ---- cold vs reused connections for blob replication traffic ---- *)
  subheader "connection reuse: blob put/get, cold vs kept-alive";
  Printf.printf "%-10s %8s %12s %12s\n" "mode" "ops" "wall (s)" "ops/s";
  let nblobs = if quick then 40 else 150 in
  let contents =
    Array.init nblobs (fun i ->
        let n = 256 + ((i * 53) mod 512) in
        String.init n (fun j -> Char.chr (32 + (((i * 17) + (j * 5)) mod 95))))
  in
  let digests = Array.map Content_hash.hex contents in
  let run_mode mode keepalive =
    let client = Client.connect ~keepalive ~host:"127.0.0.1" ~port () in
    let ((), wall) =
      time (fun () ->
          Array.iteri
            (fun i c -> ok (Client.put_blob client ~digest:digests.(i) c))
            contents;
          Array.iteri
            (fun i d ->
              if ok (Client.get_blob client d) <> contents.(i) then
                failwith "concurrency bench: blob roundtrip mismatch")
            digests)
    in
    Client.close client;
    let ops = 2 * nblobs in
    let rate = if wall > 0.0 then float_of_int ops /. wall else 0.0 in
    reuse_runs :=
      { rmode = mode; rops = ops; rwall = wall; rops_per_s = rate }
      :: !reuse_runs;
    Printf.printf "%-10s %8d %12.3f %12.0f\n" mode ops wall rate
  in
  run_mode "cold" false;
  (* deletes make the kept-alive run re-put the same blobs (identical
     work) instead of hitting the store's dedup fast path *)
  let cleanup = Client.connect ~host:"127.0.0.1" ~port () in
  Array.iter (fun d -> Client.delete_blob cleanup d) digests;
  Client.close cleanup;
  run_mode "reused" true;
  (* Signal-driven shutdown, exactly as an operator would stop it; the
     flight ring is cleared first so the bench does not leave a
     post-mortem dump in the working directory. *)
  Versioning_obs.Flight.reset ();
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join server;
  Repo.close repo;
  rm_rf dir;
  print_endline
    "\nshape check: p50 stays flat from 1 to N clients (requests\n\
     pipeline through the loop; handler work is serialized), p99 grows\n\
     with queueing; the reused column equals requests minus\n\
     connections, proving keep-alive carried the load; kept-alive blob\n\
     replication beats cold reconnect-per-request."

(* ------------------------------------------------------------------ *)
(* telemetry: workload drift and observed-weight re-planning (§15).    *)
(* ------------------------------------------------------------------ *)

(* The drift observatory end to end: plan a chained repository under
   the uniform-access assumption, replay a heavily skewed Zipf
   checkout stream with the observability gate on, and measure how far
   the ledger says the plan has drifted — then re-plan with
   [--weights observed] at the same budget and price both plans under
   the observed access distribution. *)
let telemetry ~quick seed =
  header "telemetry: cost-model drift under a skewed checkout workload";
  let nv = if quick then 20 else 40 in
  let len = if quick then 200 else 800 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsvc_bench_obs_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let repo = ok (Repo.init ~path:dir) in
  let rng = Prng.create ~seed:(seed + 37) in
  let history =
    History_gen.generate (History_gen.linear_params ~n_commits:nv) rng
  in
  let data =
    Dataset_gen.generate ~name:"telemetry" history
      { Dataset_gen.default_params with initial_rows = 80; max_hops = 1 }
      rng
  in
  let entries =
    List.init nv (fun i ->
        let v = i + 1 in
        ( Printf.sprintf "v%d" v,
          (if v = 1 then [] else [ v - 1 ]),
          data.Dataset_gen.contents.(v) ))
  in
  ignore (ok (Repo.import_versions repo entries));
  (* balanced=1.5 leaves LMG slack to re-allocate toward hot versions;
     at the MCA minimum there is nothing an observed re-plan could
     move, so the comparison would be vacuous *)
  ignore (ok (Repo.optimize repo ~check:false (Repo.Budgeted_sum 1.5)));
  let stream =
    Retrieval_sim.zipf_stream ~n_versions:nv ~length:len ~exponent:2.0 rng
  in
  subheader
    (Printf.sprintf
       "%d chained versions, %d Zipf(2.0) checkouts, budget 1.5x min storage"
       nv len);
  Obs.with_enabled true (fun () ->
      List.iter (fun v -> ignore (ok (Repo.checkout repo v))) stream);
  (* access-weighted Σ recreation of the current plan under the
     ledger's decayed frequencies — the quantity advise prices *)
  let weighted_recreation () =
    let tel = Repo.telemetry repo in
    let costs = Repo.predicted_costs repo in
    let total =
      List.fold_left (fun a (v, _) -> a +. Telemetry.freq_of tel v) 0.0 costs
    in
    if total <= 0.0 then 0.0
    else
      List.fold_left
        (fun a (v, phi) -> a +. (Telemetry.freq_of tel v /. total *. phi))
        0.0 costs
  in
  let drift = Repo.drift_score repo in
  let uniform_weighted = weighted_recreation () in
  ignore
    (ok
       (Repo.optimize repo ~check:false ~weights:Repo.Observed
          (Repo.Budgeted_sum 1.5)));
  let observed_weighted = weighted_recreation () in
  let saving =
    if uniform_weighted > 0.0 then 1.0 -. (observed_weighted /. uniform_weighted)
    else 0.0
  in
  Printf.printf "%-24s %12s\n" "" "value";
  Printf.printf "%-24s %12.3f\n" "drift score" drift;
  Printf.printf "%-24s %12.0f\n" "weighted Phi (uniform)" uniform_weighted;
  Printf.printf "%-24s %12.0f\n" "weighted Phi (observed)" observed_weighted;
  Printf.printf "%-24s %11.1f%%\n" "saving" (100.0 *. saving);
  telemetry_runs :=
    {
      tversions = nv;
      taccesses = len;
      tdrift = drift;
      tuniform_weighted = uniform_weighted;
      tobserved_weighted = observed_weighted;
      tsaving = saving;
    }
    :: !telemetry_runs;
  csv_write "telemetry"
    [ "versions"; "accesses"; "drift"; "uniform_weighted"; "observed_weighted" ]
    [
      [
        string_of_int nv;
        string_of_int len;
        Printf.sprintf "%.4f" drift;
        Printf.sprintf "%.0f" uniform_weighted;
        Printf.sprintf "%.0f" observed_weighted;
      ];
    ];
  Repo.close repo;
  rm_rf dir;
  print_endline
    "\nshape check: the drift score rises well above 0 on a Zipf(2.0)\n\
     stream (a uniform workload scores 0), and re-optimizing with\n\
     --weights observed lowers the access-weighted recreation cost at\n\
     the same storage budget."

(* ------------------------------------------------------------------ *)
(* timeseries: sampling ring throughput and persistence (§16).          *)
(* ------------------------------------------------------------------ *)

(* The cluster-health observatory's hot paths in isolation: record
   cost per sample across many series (every reactor tick pays this,
   so it must stay far below the sampling step), query cost across all
   three downsampling tiers, the render/parse persistence roundtrip,
   and the alert engine's evaluation cost over a populated ring. *)
let timeseries_bench ~quick () =
  header "timeseries: metric ring throughput, downsampling, alert evaluation";
  let nseries = if quick then 32 else 128 in
  let ticks = if quick then 2_000 else 10_000 in
  let names =
    Array.init nseries (fun i -> Printf.sprintf "bench_metric_%03d" i)
  in
  let ts = Timeseries.create ~step:1.0 ~cap:360 () in
  let (), record_wall =
    time (fun () ->
        for tick = 0 to ticks - 1 do
          let now = float_of_int tick in
          Array.iteri
            (fun i name ->
              Timeseries.record ts ~now ~metric:name
                (float_of_int ((tick + i) mod 97)))
            names
        done)
  in
  let records = nseries * ticks in
  let records_per_s =
    if record_wall > 0.0 then float_of_int records /. record_wall else 0.0
  in
  (* Three spans per series, one per downsampling tier: 60 s hits the
     fine tier, 1 h the x10 tier, 10 h the x100 tier. *)
  let now = float_of_int ticks in
  let (), query_wall =
    time (fun () ->
        Array.iter
          (fun name ->
            List.iter
              (fun span ->
                ignore
                  (Timeseries.query ts ~metric:name ~since:(now -. span) ~now ()))
              [ 60.0; 3600.0; 36000.0 ])
          names)
  in
  let rendered = Timeseries.render ts in
  let roundtrip_ok =
    match Timeseries.parse rendered with
    | Ok ts' -> Timeseries.equal ts ts'
    | Error _ -> false
  in
  (* Alert engine over a flapping scrape-up SLI: every eval reads the
     short and long burn windows plus the threshold rules. *)
  let alerts = Alerts.create ~rules:(Alerts.default_rules ()) in
  let evals = if quick then 500 else 2_000 in
  for tick = 0 to evals - 1 do
    Timeseries.record ts
      ~now:(float_of_int tick)
      ~metric:"sli:scrape_up"
      (if tick mod 7 = 0 then 0.5 else 1.0)
  done;
  let (), alert_wall =
    time (fun () ->
        for tick = 0 to evals - 1 do
          Alerts.eval alerts ~ts ~now:(float_of_int tick)
        done)
  in
  Printf.printf "%-28s %12s\n" "" "value";
  Printf.printf "%-28s %12d\n" "series x ticks" records;
  Printf.printf "%-28s %12.0f\n" "records/s" records_per_s;
  Printf.printf "%-28s %12.3f\n" "query wall (s)" query_wall;
  Printf.printf "%-28s %12d\n" "render bytes" (String.length rendered);
  Printf.printf "%-28s %12s\n" "roundtrip"
    (if roundtrip_ok then "ok" else "FAILED");
  Printf.printf "%-28s %12.1f\n" "alert evals/ms"
    (if alert_wall > 0.0 then float_of_int evals /. alert_wall /. 1000.0
     else 0.0);
  timeseries_runs :=
    {
      zseries = nseries;
      zticks = ticks;
      zrecord_wall = record_wall;
      zrecords_per_s = records_per_s;
      zquery_wall = query_wall;
      zrender_bytes = String.length rendered;
      zroundtrip_ok = roundtrip_ok;
      zalert_evals = evals;
      zalert_wall = alert_wall;
    }
    :: !timeseries_runs;
  csv_write "timeseries"
    [ "series"; "ticks"; "record_wall_s"; "records_per_s"; "query_wall_s" ]
    [
      [
        string_of_int nseries;
        string_of_int ticks;
        Printf.sprintf "%.4f" record_wall;
        Printf.sprintf "%.0f" records_per_s;
        Printf.sprintf "%.4f" query_wall;
      ];
    ];
  print_endline
    "\nshape check: the ring is bounded (render size stays fixed once\n\
     every tier is full), parse o render is the identity, and one\n\
     record is orders of magnitude cheaper than any plausible sampling\n\
     step.";
  if not roundtrip_ok then failwith "timeseries render/parse roundtrip failed"

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* --out DIR: also write every figure's data series as CSV *)
  let rec find_opt_arg name = function
    | flag :: v :: _ when flag = name -> Some v
    | _ :: tl -> find_opt_arg name tl
    | [] -> None
  in
  csv_dir := find_opt_arg "--out" args;
  let jobs =
    match find_opt_arg "--jobs" args with
    | None -> Pool.default_jobs ()
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> n
        | _ ->
            prerr_endline "--jobs needs a positive integer";
            exit 2)
  in
  let bench_out =
    Option.value (find_opt_arg "--bench-out" args) ~default:"BENCH_2.json"
  in
  (* --check: compare this run's per-experiment wall-clocks against a
     checked-in baseline; exit 3 (after writing bench_out) when any
     experiment exceeds baseline * (1 + tolerance). The baseline is
     read up front because bench_out may be the same file. *)
  let check = List.mem "--check" args in
  let baseline_path =
    Option.value (find_opt_arg "--baseline" args) ~default:"BENCH_2.json"
  in
  let tolerance =
    match find_opt_arg "--tolerance" args with
    | None -> 0.5
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f >= 0.0 -> f
        | _ ->
            prerr_endline "--tolerance needs a non-negative float";
            exit 2)
  in
  let baseline =
    if not check then []
    else
      match Fsutil.read_file baseline_path with
      | Ok content -> parse_baseline_experiments content
      | Error e ->
          Printf.eprintf "bench --check: cannot read baseline %s: %s\n%!"
            baseline_path e;
          exit 2
  in
  let selected =
    let rec drop_opts = function
      | ("--out" | "--jobs" | "--bench-out" | "--baseline" | "--tolerance")
        :: _ :: tl ->
          drop_opts tl
      | x :: tl -> x :: drop_opts tl
      | [] -> []
    in
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (drop_opts args)
  in
  let want name = selected = [] || List.mem name selected in
  (* Every experiment's wall-clock lands in BENCH_2.json. *)
  let run_exp name f =
    if want name then begin
      let ((), t) = time f in
      exp_timings := (name, t) :: !exp_timings
    end
  in
  let scale = if quick then Recipes.Quick else Recipes.Full in
  let seed = 42 in
  Printf.printf "dataset-versioning experiment harness (%s scale, jobs=%d)\n"
    (if quick then "quick" else "full")
    jobs;
  let datasets =
    if want "fig12" || want "sec52" || want "fig13" || want "fig14"
       || want "fig15" || want "fig16"
    then begin
      let (ds, t) = time (fun () -> Recipes.all ~scale ~seed ()) in
      Printf.printf "generated DC/LC/BF/LF in %.1fs\n" t;
      ds
    end
    else []
  in
  let find id = List.find (fun (d : Recipes.dataset) -> d.id = id) datasets in
  run_exp "fig12" (fun () -> fig12 datasets);
  run_exp "sec52" (fun () -> sec52 (find "LF"));
  run_exp "fig13" (fun () -> fig13 datasets);
  run_exp "fig14" (fun () -> fig14 [ find "DC"; find "LF" ]);
  run_exp "fig15" (fun () -> fig15 [ find "DC"; find "LC"; find "BF" ]);
  run_exp "fig16" (fun () -> fig16 [ find "DC"; find "LF" ] seed);
  run_exp "fig17" (fun () -> fig17 ~quick seed);
  run_exp "table2" (fun () -> table2 ~quick seed);
  run_exp "table2b" (fun () -> table2b ~quick seed);
  run_exp "ablation" (fun () -> ablation ~quick seed);
  run_exp "micro" (fun () -> micro ());
  run_exp "perf" (fun () -> perf ~quick ~jobs seed);
  run_exp "cluster" (fun () -> cluster ~quick seed);
  run_exp "concurrency" (fun () -> concurrency ~quick seed);
  run_exp "telemetry" (fun () -> telemetry ~quick seed);
  run_exp "timeseries" (fun () -> timeseries_bench ~quick ());
  emit_bench_json bench_out ~quick ~jobs;
  if check then begin
    let timings = List.rev !exp_timings in
    let compared =
      List.filter (fun (n, _) -> List.mem_assoc n baseline) timings
    in
    let regressions =
      List.filter_map
        (fun (name, t) ->
          match List.assoc_opt name baseline with
          | Some base when base > 0.0 && t > base *. (1.0 +. tolerance) ->
              Some (name, base, t)
          | _ -> None)
        timings
    in
    Printf.printf
      "\nbench --check: %d experiment(s) compared against %s (tolerance \
       +%.0f%%)\n"
      (List.length compared) baseline_path (100.0 *. tolerance);
    if regressions = [] then print_endline "bench --check: no regressions"
    else begin
      List.iter
        (fun (name, base, t) ->
          (* GitHub Actions annotation syntax; harmless noise elsewhere *)
          Printf.printf
            "::warning title=bench regression::%s took %.3fs vs baseline \
             %.3fs (+%.0f%%)\n"
            name t base
            (100.0 *. ((t /. base) -. 1.0)))
        regressions;
      exit 3
    end
  end;
  print_endline "\ndone."
