(* dsvc — dataset version control: the Git/SVN-like command-line
   interface over Versioning_store.Repo. *)

open Cmdliner
module Repo = Versioning_store.Repo
module Fsutil = Versioning_util.Fsutil
module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Telemetry = Versioning_obs.Telemetry
module Trace = Versioning_obs.Trace
module Context = Versioning_obs.Context
module Flight = Versioning_obs.Flight
module Timeseries = Versioning_obs.Timeseries
module Logctx = Versioning_obs.Logctx

(* If DSVC_TRACE=file.json is set, dump the span ring as Chrome
   trace_event JSON when the process exits (load the file in
   chrome://tracing or Perfetto). The obs library never touches disk
   itself; the write goes through Fsutil here. *)
let dump_trace () =
  match Obs.trace_path () with
  | Some path when Trace.span_count () > 0 -> (
      match Fsutil.write_file path (Trace.to_chrome_json ()) with
      | Ok () -> Printf.eprintf "dsvc: wrote trace to %s\n" path
      | Error e -> Printf.eprintf "dsvc: cannot write trace %s: %s\n" path e)
  | _ -> ()

(* The flight recorder (DESIGN.md §11) stays in memory until a
   post-mortem needs it: a crash, a served repository's SIGTERM, or an
   explicit `dsvc flight-dump`. Normal exits write nothing. *)
let dump_flight ~reason =
  if Flight.event_count () > 0 then begin
    let path = Flight.default_path () in
    match Fsutil.write_file path (Flight.to_json ()) with
    | Ok () ->
        Printf.eprintf "dsvc: wrote flight record (%s) to %s\n" reason path
    | Error e ->
        Printf.eprintf "dsvc: cannot write flight record %s: %s\n" path e
  end

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "dsvc: %s\n" e;
      exit 1

let repo_dir =
  let doc = "Repository directory." in
  Arg.(value & opt string "." & info [ "C"; "repo" ] ~docv:"DIR" ~doc)

let open_repo dir =
  let repo = or_die (Repo.open_repo ~path:dir) in
  (* Close at process exit, whatever the command: the workload
     telemetry ledger is persisted by [Repo.close] (only when the
     observability gate is on), and a second close is a no-op. *)
  at_exit (fun () -> Repo.close repo);
  repo

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

(* -- init -- *)

let init_cmd =
  let run dir =
    let _repo = or_die (Repo.init ~path:dir) in
    Printf.printf "Initialized empty dsvc repository in %s/.dsvc\n" dir
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create an empty repository")
    Term.(const run $ repo_dir)

(* -- commit -- *)

let commit_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Dataset file to commit.")
  in
  let message =
    Arg.(value & opt string "" & info [ "m"; "message" ] ~docv:"MSG" ~doc:"Commit message.")
  in
  let parents =
    Arg.(
      value
      & opt (list int) []
      & info [ "p"; "parents" ] ~docv:"IDS"
          ~doc:"Explicit parent versions (two ids record a merge).")
  in
  let run dir file message parents =
    let repo = open_repo dir in
    let content = or_die (read_file file) in
    let parents = if parents = [] then None else Some parents in
    let id = or_die (Repo.commit repo ~message ?parents content) in
    Printf.printf "[%s] version %d (%d bytes)\n"
      (Repo.current_branch repo)
      id (String.length content)
  in
  Cmd.v
    (Cmd.info "commit" ~doc:"Record a new version of a dataset")
    Term.(const run $ repo_dir $ file $ message $ parents)

(* -- checkout -- *)

let checkout_cmd =
  let version =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"VERSION" ~doc:"Version id.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run dir version output =
    let repo = open_repo dir in
    let content = or_die (Repo.checkout repo version) in
    match output with
    | None -> print_string content
    | Some path ->
        or_die (Fsutil.write_file path content);
        Printf.printf "version %d -> %s (%d bytes)\n" version path
          (String.length content)
  in
  Cmd.v
    (Cmd.info "checkout" ~doc:"Reconstruct a version")
    Term.(const run $ repo_dir $ version $ output)

(* -- log -- *)

let log_cmd =
  let run dir =
    let repo = open_repo dir in
    List.iter
      (fun (c : Repo.commit_info) ->
        let parents =
          match c.parents with
          | [] -> "(root)"
          | ps -> String.concat ", " (List.map string_of_int ps)
        in
        Printf.printf "version %d  <- %s\n    %s\n" c.id parents
          (if c.message = "" then "(no message)" else c.message))
      (Repo.log repo)
  in
  Cmd.v (Cmd.info "log" ~doc:"List versions, newest first") Term.(const run $ repo_dir)

(* -- branch -- *)

let branch_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Branch to create (omit to list).")
  in
  let at =
    Arg.(value & opt (some int) None & info [ "at" ] ~docv:"VERSION" ~doc:"Branch point.")
  in
  let run dir name at =
    let repo = open_repo dir in
    match name with
    | None ->
        List.iter
          (fun (n, v) ->
            let marker = if n = Repo.current_branch repo then "*" else " " in
            Printf.printf "%s %s -> version %d\n" marker n v)
          (Repo.branches repo)
    | Some name ->
        or_die (Repo.create_branch repo name ?at ());
        Printf.printf "Created and switched to branch %s\n" name
  in
  Cmd.v
    (Cmd.info "branch" ~doc:"List branches or create one")
    Term.(const run $ repo_dir $ name_arg $ at)

let switch_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Branch name.")
  in
  let run dir name =
    let repo = open_repo dir in
    or_die (Repo.switch repo name);
    Printf.printf "Switched to branch %s\n" name
  in
  Cmd.v (Cmd.info "switch" ~doc:"Switch branches") Term.(const run $ repo_dir $ name_arg)

(* -- directory datasets -- *)

let commit_dir_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Dataset directory to commit as one version.")
  in
  let message =
    Arg.(value & opt string "" & info [ "m"; "message" ] ~docv:"MSG" ~doc:"Commit message.")
  in
  let run repo_path dataset_dir message =
    let repo = open_repo repo_path in
    let entries = or_die (Versioning_store.Archive.of_directory dataset_dir) in
    let archive = or_die (Versioning_store.Archive.pack entries) in
    let id = or_die (Repo.commit repo ~message archive) in
    Printf.printf "[%s] version %d (%d files, %d bytes)\n"
      (Repo.current_branch repo)
      id (List.length entries) (String.length archive)
  in
  Cmd.v
    (Cmd.info "commit-dir" ~doc:"Record a directory tree as one version")
    Term.(const run $ repo_dir $ dir_arg $ message)

let checkout_dir_cmd =
  let version =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"VERSION" ~doc:"Version id.")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run repo_path version out =
    let repo = open_repo repo_path in
    let archive = or_die (Repo.checkout repo version) in
    let entries = or_die (Versioning_store.Archive.unpack archive) in
    or_die (Versioning_store.Archive.to_directory out entries);
    Printf.printf "version %d -> %s (%d files)\n" version out
      (List.length entries)
  in
  Cmd.v
    (Cmd.info "checkout-dir" ~doc:"Reconstruct a directory-tree version")
    Term.(const run $ repo_dir $ version $ out)

(* -- tag / diff / verify -- *)

let tag_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Tag to create (omit to list).")
  in
  let at =
    Arg.(value & opt (some int) None & info [ "at" ] ~docv:"VERSION" ~doc:"Version to tag.")
  in
  let run dir name at =
    let repo = open_repo dir in
    match name with
    | None ->
        List.iter
          (fun (n, v) -> Printf.printf "%s -> version %d\n" n v)
          (Repo.tags repo)
    | Some name ->
        or_die (Repo.tag repo name ?at ());
        Printf.printf "Tagged version %d as %s\n"
          (Option.get (Repo.resolve repo name))
          name
  in
  Cmd.v
    (Cmd.info "tag" ~doc:"List tags or create one")
    Term.(const run $ repo_dir $ name_arg $ at)

let diff_cmd =
  let from_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FROM" ~doc:"Version, tag or branch.")
  in
  let to_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TO" ~doc:"Version, tag or branch.")
  in
  let run dir from_name to_name =
    let repo = open_repo dir in
    let resolve name =
      match Repo.resolve repo name with
      | Some v -> v
      | None ->
          Printf.eprintf "dsvc: cannot resolve %s\n" name;
          exit 1
    in
    print_string (or_die (Repo.diff repo (resolve from_name) (resolve to_name)))
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Show the delta between two versions")
    Term.(const run $ repo_dir $ from_arg $ to_arg)

let verify_cmd =
  let run dir =
    let repo = open_repo dir in
    match Repo.verify repo with
    | Ok () -> print_endline "repository is consistent"
    | Error problems ->
        List.iter (Printf.eprintf "dsvc: %s\n") problems;
        exit 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check repository integrity")
    Term.(const run $ repo_dir)

(* Cluster flags shared by serve, fsck, and remote: a comma-separated
   peer list, the replication factor, and this node's own ring name
   (host:port as peers address it; defaults to the bind address). *)
let peers_arg =
  Arg.(
    value
    & opt (list ~sep:',' string) []
    & info [ "peers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Run as a cluster node replicating blobs to these peers \
           (host:port, comma separated). Without it, single-node \
           behaviour is unchanged.")

let replicas_arg =
  Arg.(
    value & opt int 2
    & info [ "replicas" ] ~docv:"R"
        ~doc:"Copies of every blob across the cluster (cluster mode).")

let self_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "self" ] ~docv:"HOST:PORT"
        ~doc:
          "This node's name on the ring, as the peers address it \
           (default: the bind host:port). All nodes must agree on the \
           member list or ring epochs diverge.")

(* The node's local shard plus the replicated quorum view over it —
   what cluster serve plugs into the repo and fsck checks against. *)
let build_cluster ~dir ~self ~peers ~replicas =
  let module VS = Versioning_store in
  let local_store =
    or_die (VS.Object_store.create ~dir:(Repo.objects_dir dir))
  in
  let peer_clients =
    List.map
      (fun ep ->
        let host, port = or_die (VS.Cluster_client.parse_endpoint ep) in
        let c = VS.Client.connect ~timeout:5.0 ~retries:2 ~host ~port () in
        (VS.Client.endpoint c, c))
      peers
  in
  let replicated =
    VS.Replicated.create ~replicas ~self
      ~self_backend:(VS.Object_store.backend local_store)
      ~peers:(List.map (fun (n, c) -> (n, VS.Client.backend c)) peer_clients)
      ()
  in
  { VS.Server.local_store; replicated; peer_clients }

let fsck_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Attempt recovery: restore metadata from backup, quarantine \
             corrupt objects, re-materialize versions with broken delta \
             chains, and resolve any interrupted optimize.")
  in
  let run dir repair peers replicas self =
    let result =
      if peers = [] then or_die (Repo.fsck ~path:dir ~repair)
      else begin
        (* Cluster fsck: check against the replicated view, so blobs
           this node holds only remotely (its peers' shards) count as
           present. The node must not be serving (repo lock). *)
        let self =
          match self with
          | Some s -> s
          | None ->
              Printf.eprintf "dsvc: fsck --peers requires --self\n";
              exit 2
        in
        let cluster = build_cluster ~dir ~self ~peers ~replicas in
        let store =
          Versioning_store.Object_store.of_backend
            (Versioning_store.Replicated.backend
               cluster.Versioning_store.Server.replicated)
        in
        or_die (Repo.fsck_with ~store ~path:dir ~repair)
      end
    in
    List.iter (Printf.printf "fsck: %s\n") result.Repo.actions;
    match result.Repo.problems with
    | [] -> print_endline "repository is consistent"
    | problems ->
        List.iter (Printf.eprintf "dsvc: %s\n") problems;
        if repair then
          Printf.eprintf "dsvc: repair could not fix every problem\n"
        else
          Printf.eprintf "dsvc: run `dsvc fsck --repair` to attempt recovery\n";
        exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Check repository integrity and optionally repair damage")
    Term.(const run $ repo_dir $ repair $ peers_arg $ replicas_arg $ self_arg)

(* -- stats -- *)

let print_stats (s : Repo.stats) =
  Printf.printf "versions:        %d\n" s.n_versions;
  Printf.printf "materialized:    %d\n" s.n_full;
  Printf.printf "delta-stored:    %d\n" s.n_delta;
  Printf.printf "storage bytes:   %d\n" s.storage_bytes;
  Printf.printf "longest chain:   %d deltas\n" s.max_chain;
  Printf.printf "sum recreation:  %.0f bytes\n" s.sum_recreation_bytes;
  Printf.printf "max recreation:  %.0f bytes\n" s.max_recreation_bytes

let stats_cmd =
  let run dir =
    let repo = open_repo dir in
    print_stats (Repo.stats repo)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show storage/recreation statistics")
    Term.(const run $ repo_dir)

(* -- serve -- *)

let serve_cmd =
  let port =
    Arg.(value & opt int 8077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")
  in
  let max_requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N" ~doc:"Stop after N requests (for scripting/tests).")
  in
  let run dir port host max_requests peers replicas self =
    (* Access-log lines (one per request, with request/trace id) are
       emitted at Info. *)
    Logs.set_level (Some Logs.Info);
    if peers = [] then begin
      let repo = open_repo dir in
      or_die (Versioning_store.Server.serve repo ~port ~host ?max_requests ())
    end
    else begin
      let self =
        match self with
        | Some s -> s
        | None -> Printf.sprintf "%s:%d" host port
      in
      let cluster = build_cluster ~dir ~self ~peers ~replicas in
      let store =
        Versioning_store.Object_store.of_backend
          (Versioning_store.Replicated.backend
             cluster.Versioning_store.Server.replicated)
      in
      let repo = or_die (Repo.open_with ~store ~path:dir) in
      or_die
        (Versioning_store.Server.serve ~cluster repo ~port ~host ?max_requests
           ())
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the repository over HTTP (the paper's client-server mode)")
    Term.(
      const run $ repo_dir $ port $ host $ max_requests $ peers_arg
      $ replicas_arg $ self_arg)

(* -- export-graph -- *)

let export_graph_cmd =
  let output =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output path for the dsvc-graph file.")
  in
  let hops =
    Arg.(value & opt int 3 & info [ "hops" ] ~docv:"N" ~doc:"Reveal deltas within N hops.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Write Graphviz DOT instead of the dsvc-graph format.")
  in
  let run dir output hops dot =
    let repo = open_repo dir in
    let g, _ = or_die (Repo.reveal_graph repo ~max_hops:hops ()) in
    if dot then begin
      or_die (Fsutil.write_file output (Versioning_core.Dot.of_aux_graph g));
      Printf.printf "wrote DOT graph to %s\n" output
    end
    else begin
      or_die (Versioning_core.Graph_io.save g ~path:output);
      Printf.printf
        "wrote %d-version instance (%d edges) to %s\n"
        (Versioning_core.Aux_graph.n_versions g)
        (Versioning_graph.Digraph.n_edges (Versioning_core.Aux_graph.graph g))
        output
    end
  in
  Cmd.v
    (Cmd.info "export-graph"
       ~doc:"Export the repository's revealed cost graph for offline analysis")
    Term.(const run $ repo_dir $ output $ hops $ dot)

(* -- optimize -- *)

let optimize_cmd =
  let strategy =
    let conv_strategy s =
      match String.split_on_char '=' s with
      | [ "min-storage" ] -> Ok Repo.Min_storage
      | [ "min-recreation" ] -> Ok Repo.Min_recreation
      | [ "balanced"; f ] | [ "budgeted-sum"; f ] -> (
          match float_of_string_opt f with
          | Some f when f >= 1.0 -> Ok (Repo.Budgeted_sum f)
          | _ -> Error (`Msg "balanced=FACTOR needs FACTOR >= 1"))
      | [ "bounded-max"; f ] -> (
          match float_of_string_opt f with
          | Some f when f >= 1.0 -> Ok (Repo.Bounded_max f)
          | _ -> Error (`Msg "bounded-max=FACTOR needs FACTOR >= 1"))
      | [ "git" ] -> Ok (Repo.Git_window (10, 50))
      | [ "svn" ] -> Ok Repo.Svn_skip
      | _ ->
          Error
            (`Msg
              "expected min-storage | min-recreation | balanced=F | \
               bounded-max=F | git | svn")
    in
    let pp ppf = function
      | Repo.Min_storage -> Format.fprintf ppf "min-storage"
      | Repo.Min_recreation -> Format.fprintf ppf "min-recreation"
      | Repo.Budgeted_sum f -> Format.fprintf ppf "balanced=%g" f
      | Repo.Bounded_max f -> Format.fprintf ppf "bounded-max=%g" f
      | Repo.Git_window _ -> Format.fprintf ppf "git"
      | Repo.Svn_skip -> Format.fprintf ppf "svn"
    in
    Arg.conv (conv_strategy, pp)
  in
  let strat =
    Arg.(
      value
      & opt strategy (Repo.Budgeted_sum 1.5)
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Storage plan: min-storage (MCA), min-recreation (SPT), \
             balanced=F (LMG, budget F x minimum), bounded-max=F (MP, \
             bound F x optimum), git (GitH), svn (skip-deltas).")
  in
  let hops =
    Arg.(value & opt int 3 & info [ "hops" ] ~docv:"N" ~doc:"Reveal deltas within N hops.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Versioning_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the diff/re-plan phases (default the \
             DSVC_JOBS environment variable, or 1). The resulting plan is \
             identical for every N.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check-solutions" ]
          ~doc:
            "Independently verify the solver's plan (spanning \
             arborescence over revealed edges, Lemma 1 cost \
             accounting) before rewriting any object; refuse to \
             optimize if verification fails.")
  in
  let weights =
    let conv_weights s =
      match String.lowercase_ascii s with
      | "uniform" -> Ok Repo.Uniform
      | "observed" -> Ok Repo.Observed
      | _ -> Error (`Msg "expected uniform | observed")
    in
    let pp ppf = function
      | Repo.Uniform -> Format.fprintf ppf "uniform"
      | Repo.Observed -> Format.fprintf ppf "observed"
    in
    Arg.(
      value
      & opt (Arg.conv (conv_weights, pp)) Repo.Uniform
      & info [ "weights" ] ~docv:"MODE"
          ~doc:
            "Version weighting for the balanced (LMG) strategy: uniform \
             (every version equally likely — the paper's default model) \
             or observed (the telemetry ledger's decayed access \
             frequencies weight each version's recreation cost, the \
             workload-aware objective of the paper's Figure 16). With an \
             empty ledger or any other strategy, observed falls back to \
             the uniform plan.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a per-phase time/allocation breakdown (graph \
             construction, solve, materialization, ...) after the \
             repack. Implies observability for this run; the chosen \
             plan is unaffected.")
  in
  let print_profile aggs =
    if aggs = [] then print_endline "profile: no spans recorded"
    else begin
      Printf.printf "%-30s %7s %11s %11s %12s\n" "phase" "count" "total (s)"
        "mean (ms)" "alloc (MB)";
      List.iter
        (fun (a : Trace.agg) ->
          Printf.printf "%-30s %7d %11.4f %11.3f %12.2f\n" a.Trace.agg_name
            a.Trace.count a.Trace.total_s
            (1000.0 *. a.Trace.total_s /. float_of_int (max 1 a.Trace.count))
            (a.Trace.total_alloc /. 1048576.0))
        aggs
    end
  in
  let run dir strat hops jobs check weights profile =
    let repo = open_repo dir in
    let work () =
      or_die (Repo.optimize repo ~max_hops:hops ~jobs ~check ~weights strat)
    in
    let stats =
      if profile then
        Obs.with_enabled true (fun () ->
            let stats = work () in
            print_profile (Trace.summarize ());
            print_newline ();
            stats)
      else work ()
    in
    if check then print_endline "solution verified (arborescence + Lemma 1)";
    print_stats stats
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Re-plan version storage with one of the paper's algorithms")
    Term.(const run $ repo_dir $ strat $ hops $ jobs $ check $ weights $ profile)

(* -- advise: read-only re-optimization recommendation -- *)

let advise_cmd =
  let hops =
    Arg.(value & opt int 3 & info [ "hops" ] ~docv:"N" ~doc:"Reveal deltas within N hops.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Versioning_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for the reveal phase.")
  in
  let threshold =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~docv:"D"
          ~doc:
            "Drift score above which a re-plan is worth recommending \
             (0 = workload matches the uniform planning assumption).")
  in
  let k =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"How many mispriced versions to list.")
  in
  let run dir hops jobs threshold k =
    let repo = open_repo dir in
    let (a : Repo.advice) =
      or_die (Repo.advise repo ~max_hops:hops ~jobs ~threshold ~k ())
    in
    Printf.printf "drift %.3f (threshold %.2f, %d ledger accesses)\n" a.a_drift
      a.a_threshold a.a_events;
    if a.a_top <> [] then begin
      print_newline ();
      Printf.printf "%-8s %8s %14s %16s\n" "version" "share" "phi (bytes)"
        "drift term";
      List.iter
        (fun (d : Repo.drifted) ->
          Printf.printf "%-8d %7.1f%% %14.0f %16.0f\n" d.d_version
            (100.0 *. d.d_share) d.d_phi d.d_contribution)
        a.a_top;
      print_newline ()
    end;
    Printf.printf
      "weighted recreation: current plan %.0f, observed-weight re-plan %.0f \
       (saving %.1f%%)\n"
      a.a_current_weighted a.a_candidate_weighted (100.0 *. a.a_saving);
    if a.a_recommend then
      print_endline
        "recommendation: re-plan for this workload — dsvc optimize \
         --strategy balanced=1.5 --weights observed"
    else print_endline "recommendation: keep the current plan"
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Score workload drift against the current storage plan and say \
          whether an observed-weight re-optimization would pay off \
          (read-only: no object is rewritten)")
    Term.(const run $ repo_dir $ hops $ jobs $ threshold $ k)

(* -- top: the ledger's live text view -- *)

let top_cmd =
  let percentile xs p =
    match xs with
    | [] -> 0.0
    | xs ->
        let a = Array.of_list xs in
        Array.sort compare a;
        let i =
          int_of_float (Float.ceil (p *. float_of_int (Array.length a))) - 1
        in
        a.(max 0 (min (Array.length a - 1) i))
  in
  let k =
    Arg.(
      value & opt int 10
      & info [ "n" ] ~docv:"K" ~doc:"How many hot versions to show.")
  in
  let run dir k =
    let repo = open_repo dir in
    let t = Repo.telemetry repo in
    if Telemetry.is_empty t then
      print_endline
        "telemetry: ledger is empty — run some checkouts first (observed \
         recreation costs additionally need DSVC_OBS=on)"
    else begin
      let entries = Telemetry.entries t in
      let checkouts =
        List.fold_left (fun n (_, e) -> n + e.Telemetry.checkouts) 0 entries
      in
      let hits =
        List.fold_left (fun n (_, e) -> n + e.Telemetry.cache_hits) 0 entries
      in
      Printf.printf
        "events %d   versions %d   cache-hit %.1f%%   drift %.3f\n\n"
        (Telemetry.events t) (List.length entries)
        (100.0 *. float_of_int hits /. float_of_int (max 1 checkouts))
        (Repo.drift_score repo);
      let phi = Repo.predicted_costs repo in
      let total_freq =
        List.fold_left (fun s (v, _) -> s +. Telemetry.freq_of t v) 0.0 entries
      in
      Printf.printf "%-4s %8s %7s %10s %6s %13s %13s  %s\n" "rank" "version"
        "share" "checkouts" "hits" "obs (bytes)" "pred (bytes)" "trace";
      List.iteri
        (fun i (v, (e : Telemetry.entry)) ->
          let share =
            if total_freq > 0.0 then Telemetry.freq_of t v /. total_freq
            else 0.0
          in
          let obs_mean =
            if e.observations > 0 then
              e.bytes /. float_of_int e.observations
            else 0.0
          in
          Printf.printf "%-4d %8d %6.1f%% %10d %6d %13.0f %13.0f  %s\n"
            (i + 1) v (100.0 *. share) e.checkouts e.cache_hits obs_mean
            (Option.value (List.assoc_opt v phi) ~default:0.0)
            (if e.exemplar = "" then "-" else e.exemplar))
        (Telemetry.hot t ~k);
      match Telemetry.samples t with
      | [] ->
          print_endline
            "\nno recreation samples yet (cost observation needs DSVC_OBS=on)"
      | ss ->
          let col f = List.map f ss in
          let secs = col (fun (s : Telemetry.sample) -> s.s_seconds) in
          let obs = col (fun (s : Telemetry.sample) -> s.s_bytes) in
          let pred = col (fun (s : Telemetry.sample) -> s.s_predicted) in
          Printf.printf
            "\nrecreation over the last %d samples:\n\
            \  wall-clock  p50 %8.3f ms   p99 %8.3f ms\n\
            \  observed    p50 %8.0f B    p99 %8.0f B\n\
            \  predicted   p50 %8.0f B    p99 %8.0f B\n"
            (List.length ss)
            (1000.0 *. percentile secs 0.5)
            (1000.0 *. percentile secs 0.99)
            (percentile obs 0.5) (percentile obs 0.99) (percentile pred 0.5)
            (percentile pred 0.99)
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Show the workload telemetry ledger: hot versions, cache hit \
          ratio, observed vs predicted recreation cost, and the drift \
          score")
    Term.(const run $ repo_dir $ k)

(* -- metrics -- *)

let metrics_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(value & opt int 8077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the JSON exposition instead of Prometheus text.")
  in
  let local =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:
            "Print this process's own metric registry instead of \
             querying a server (only interesting under DSVC_OBS=on).")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Scrape GET /metrics/cluster instead: the whole cluster's \
             samples through one node, each labelled with its origin \
             peer.")
  in
  let run host port json local cluster =
    if local then
      print_string
        (if json then Versioning_store.Server.metrics_json_with_meta ()
         else Metrics.to_prometheus ())
    else begin
      let client = Versioning_store.Client.connect ~host ~port () in
      let path = if cluster then "/metrics/cluster" else "/metrics" in
      let query = if json && not cluster then [ ("format", "json") ] else [] in
      match
        Versioning_store.Client.request client ~meth:"GET" ~path ~query ()
      with
      | Ok (200, body) -> print_string body
      | Ok (status, body) ->
          Printf.eprintf "dsvc: server returned %d: %s\n" status body;
          exit 1
      | Error e ->
          Printf.eprintf "dsvc: %s\n" e;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Fetch a served repository's /metrics exposition")
    Term.(const run $ host $ port $ json $ local $ cluster)

(* -- dash: live cluster-health TUI -- *)

let dash_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(value & opt int 8077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render one frame and exit (no screen clearing) — what \
                scripts and the CI smoke test use.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let run host port once interval =
    let module C = Versioning_store.Client in
    let client = C.connect ~host ~port () in
    let fetch path query =
      match C.request client ~meth:"GET" ~path ~query () with
      | Ok (200, body) -> Some body
      | Ok _ | Error _ -> None
    in
    let lines = function
      | None -> []
      | Some body ->
          String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
    in
    (* One sampled series -> (sparkline of bucket averages, last value).
       GET /timeseries?metric=… lines are `time count avg min max last`. *)
    let series_cell metric =
      match fetch "/timeseries" [ ("metric", metric) ] with
      | None -> None
      | Some body ->
          let values =
            List.filter_map
              (fun l ->
                match String.split_on_char ' ' l with
                | [ _; _; avg; _; _; _ ] -> float_of_string_opt avg
                | _ -> None)
              (lines (Some body))
          in
          if values = [] then None
          else
            Some
              ( Timeseries.sparkline values,
                List.nth values (List.length values - 1) )
    in
    let render () =
      let b = Buffer.create 4096 in
      let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      add "dsvc dash — %s:%d\n\n" host port;
      (match fetch "/health" [] with
      | None -> add "health: UNREACHABLE\n"
      | Some body ->
          add "health:\n";
          List.iter (fun l -> add "  %s\n" l) (lines (Some body)));
      add "\nalerts:\n";
      (match fetch "/alerts" [] with
      | None -> add "  (unavailable)\n"
      | Some body ->
          let ls = lines (Some body) in
          if ls = [] then add "  (none)\n"
          else
            List.iter
              (fun l ->
                let mark =
                  let has needle =
                    let nl = String.length needle and ll = String.length l in
                    let rec go i =
                      i + nl <= ll && (String.sub l i nl = needle || go (i + 1))
                    in
                    go 0
                  in
                  if has " firing" then "!! "
                  else if has " pending" then " ~ "
                  else "   "
                in
                add "  %s%s\n" mark l)
              ls);
      add "\nseries:\n";
      let names =
        match fetch "/timeseries" [] with
        | None -> []
        | Some body -> lines (Some body)
      in
      let interesting n =
        let prefix p =
          String.length n >= String.length p && String.sub n 0 (String.length p) = p
        in
        prefix "sli:" || prefix "dsvc_cluster_hint_queue_depth"
        || prefix "dsvc_cluster_hint_oldest_age_seconds"
      in
      let shown = List.filter interesting names in
      if shown = [] then add "  (no samples yet)\n"
      else
        List.iter
          (fun n ->
            match series_cell n with
            | None -> ()
            | Some (spark, last) -> add "  %-44s %s last=%.4g\n" n spark last)
          shown;
      (match fetch "/metrics/cluster" [] with
      | None -> ()
      | Some body ->
          let ups =
            List.filter_map
              (fun l ->
                let p = "dsvc_cluster_scrape_up{" in
                let pl = String.length p in
                if String.length l > pl && String.sub l 0 pl = p then
                  Some (String.sub l pl (String.length l - pl))
                else None)
              (lines (Some body))
          in
          if ups <> [] then begin
            add "\ncluster scrape:\n";
            List.iter (fun l -> add "  %s\n" l) ups
          end);
      Buffer.contents b
    in
    if once then print_string (render ())
    else begin
      (try
         while true do
           let frame = render () in
           (* clear + home, then the frame: one write per refresh *)
           Printf.printf "\x1b[2J\x1b[H%s%!" frame;
           Unix.sleepf interval
         done
       with Sys.Break -> ());
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "dash"
       ~doc:
         "Live cluster-health dashboard over a served repository: \
          sparklines of the sampled SLI series, firing alerts, per-peer \
          replication health, and the cluster-wide scrape-up view")
    Term.(const run $ host $ port $ once $ interval)

(* -- remote (HTTP client) -- *)

let remote_cmd =
  let url_args =
    let host =
      Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
    in
    let port =
      Arg.(value & opt int 8077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
    in
    (host, port)
  in
  let host, port = url_args in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:"One of: log, checkout NAME [FILE], commit FILE [MSG],                 stats, optimize STRATEGY, verify, health, anti-entropy.")
  in
  let rest = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS") in
  let run host port action rest peers =
    let module C = Versioning_store.Client in
    let module CC = Versioning_store.Cluster_client in
    (* With --peers the client fails over across the listed endpoints
       (transport errors only); host/port become the first endpoint. *)
    let cluster =
      or_die (CC.connect (Printf.sprintf "%s:%d" host port :: peers))
    in
    let client = Versioning_store.Client.connect ~host ~port () in
    let use_cluster = peers <> [] in
    match (action, rest) with
    | "health", [] ->
        List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
          (or_die (if use_cluster then CC.health cluster else C.health client))
    | "anti-entropy", [] ->
        List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
          (or_die
             (if use_cluster then CC.anti_entropy cluster
              else C.anti_entropy client))
    | _ when use_cluster -> (
        match (action, rest) with
        | "log", [] ->
            Printf.eprintf "dsvc remote: log is not available with --peers\n";
            exit 1
        | "checkout", [ name ] ->
            print_string (or_die (CC.checkout cluster name))
        | "checkout", [ name; file ] ->
            let content = or_die (CC.checkout cluster name) in
            or_die (Fsutil.write_file file content);
            Printf.printf "%s -> %s (%d bytes)\n" name file
              (String.length content)
        | "commit", file :: msg_parts ->
            let content = or_die (read_file file) in
            let message = String.concat " " msg_parts in
            let id = or_die (CC.commit cluster ~message content) in
            Printf.printf "committed as version %d\n" id
        | "stats", [] ->
            List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
              (or_die (CC.stats cluster))
        | "optimize", [ strategy ] ->
            List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
              (or_die (CC.optimize cluster strategy))
        | "verify", [] ->
            or_die (CC.verify cluster);
            print_endline "remote repository is consistent"
        | _ ->
            Printf.eprintf "dsvc remote: unknown action %s %s\n" action
              (String.concat " " rest);
            exit 1)
    | "log", [] ->
        List.iter
          (fun (id, parents, msg) ->
            Printf.printf "version %d  <- %s\n    %s\n" id
              (match parents with
              | [] -> "(root)"
              | ps -> String.concat ", " (List.map string_of_int ps))
              (if msg = "" then "(no message)" else msg))
          (or_die (C.versions client))
    | "checkout", [ name ] -> print_string (or_die (C.checkout client name))
    | "checkout", [ name; file ] ->
        let content = or_die (C.checkout client name) in
        or_die (Fsutil.write_file file content);
        Printf.printf "%s -> %s (%d bytes)\n" name file (String.length content)
    | "commit", (file :: msg_parts) ->
        let content = or_die (read_file file) in
        let message = String.concat " " msg_parts in
        let id = or_die (C.commit client ~message content) in
        Printf.printf "committed as version %d\n" id
    | "stats", [] ->
        List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
          (or_die (C.stats client))
    | "optimize", [ strategy ] ->
        List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v)
          (or_die (C.optimize client strategy))
    | "verify", [] ->
        or_die (C.verify client);
        print_endline "remote repository is consistent"
    | _ ->
        Printf.eprintf "dsvc remote: unknown action %s %s\n" action
          (String.concat " " rest);
        exit 1
  in
  Cmd.v
    (Cmd.info "remote" ~doc:"Operate on a served repository over HTTP")
    Term.(const run $ host $ port $ action $ rest $ peers_arg)

(* -- trace (run any subcommand traced) -- *)

(* lint: mutable-ok forward reference to the assembled command group,
   set once in [main] below so `dsvc trace` can re-enter the
   evaluator; never written again *)
let main_eval : (string array -> int) ref =
  ref (fun _ -> invalid_arg "dsvc: evaluator not initialized")

let print_span_tree spans =
  let module Ids = Set.Make (Int) in
  let ids =
    List.fold_left (fun s (sp : Trace.span) -> Ids.add sp.id s) Ids.empty spans
  in
  let by_start a b = compare a.Trace.start b.Trace.start in
  let children id =
    List.sort by_start
      (List.filter (fun (sp : Trace.span) -> sp.parent = Some id) spans)
  in
  (* Roots: no parent, or a parent that fell off the bounded ring. *)
  let roots =
    List.sort by_start
      (List.filter
         (fun (sp : Trace.span) ->
           match sp.parent with None -> true | Some p -> not (Ids.mem p ids))
         spans)
  in
  let rec print depth (sp : Trace.span) =
    Printf.printf "%s%-*s %9.3fms  %8.1fKB\n"
      (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      sp.name (1000.0 *. sp.dur) (sp.alloc /. 1024.0);
    List.iter (print (depth + 1)) (children sp.id)
  in
  List.iter (print 0) roots

let trace_cmd =
  let rest =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CMD"
          ~doc:
            "Subcommand to run traced, e.g. `dsvc trace optimize -- -s git`. \
             Put `--` before the subcommand's own flags.")
  in
  let run rest =
    match rest with
    | [] ->
        Printf.eprintf
          "dsvc trace: expected a subcommand to run, e.g. `dsvc trace \
           optimize -- -s git`\n";
        exit 124
    | "trace" :: _ ->
        Printf.eprintf "dsvc trace: cannot nest trace inside trace\n";
        exit 124
    | rest ->
        Obs.enable ();
        let ctx = Context.make ~sampled:true () in
        let code =
          Context.with_context ctx (fun () ->
              Trace.with_span "cli" (fun () ->
                  !main_eval (Array.of_list ("dsvc" :: rest))))
        in
        Printf.printf "\ntrace %s (request %s)\n" ctx.Context.trace_id
          ctx.Context.request_id;
        print_span_tree (Trace.spans ());
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run any dsvc subcommand with tracing forced on and print its span \
          tree (DSVC_TRACE=FILE additionally writes Chrome trace JSON)")
    Term.(const run $ rest)

(* -- flight-dump -- *)

let flight_dump_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(value & opt int 8077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write to FILE ('-' for stdout) instead of the default \
             DSVC_FLIGHT_PATH destination.")
  in
  let local =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:
            "Dump this process's own flight ring instead of querying a \
             server (mostly useful from tests/scripts).")
  in
  let run host port output local =
    let body =
      if local then Flight.to_json ()
      else begin
        let client = Versioning_store.Client.connect ~host ~port () in
        match
          Versioning_store.Client.request client ~meth:"GET" ~path:"/flight" ()
        with
        | Ok (200, body) -> body
        | Ok (status, body) ->
            Printf.eprintf "dsvc: server returned %d: %s\n" status body;
            exit 1
        | Error e ->
            Printf.eprintf "dsvc: %s\n" e;
            exit 1
      end
    in
    match output with
    | Some "-" -> print_string body
    | Some path ->
        or_die (Fsutil.write_file path body);
        Printf.printf "wrote flight record to %s\n" path
    | None ->
        let path = Flight.default_path () in
        or_die (Fsutil.write_file path body);
        Printf.printf "wrote flight record to %s\n" path
  in
  Cmd.v
    (Cmd.info "flight-dump"
       ~doc:
         "Dump the always-on flight recorder (a served repository's via \
          GET /flight, or this process's with --local)")
    Term.(const run $ host $ port $ output $ local)

let lint_cmd =
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to scan (default: lib bin bench test \
             tools, whichever exist).")
  in
  let config =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"FILE"
          ~doc:"Lint configuration (default: ./lint.toml when present).")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,text), $(b,json), or $(b,github) (CI \
             ::error annotations).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Also write the JSON report to FILE.")
  in
  let run paths config format json_out =
    let format =
      match Dsvc_lint.Lint_report.format_of_string format with
      | Some f -> f
      | None ->
          Printf.eprintf "dsvc: unknown lint format %S\n" format;
          exit 2
    in
    let paths =
      match paths with
      | [] ->
          List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test"; "tools" ]
      | ps -> ps
    in
    exit
      (Dsvc_lint.Lint_driver.run
         {
           Dsvc_lint.Lint_driver.config_path = config;
           format;
           json_out;
           paths;
         })
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run dsvc-lint, the repository's static invariant checker \
          (R1-R9: write confinement, unsafe indexing, domain spawns, \
          swallowed exceptions, nondeterminism, shared mutable state, \
          reactor blocking, lock discipline). Exit 0 when clean, 1 when \
          findings were reported, 2 on usage or configuration errors.")
    Term.(const run $ paths $ config $ format $ json_out)

let () =
  (* Correlated logging for every subcommand: retry warnings, fault
     injections, journal recovery etc. are stamped with the active
     request/trace id and mirrored into the flight ring. *)
  Logctx.install ();
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      Printf.eprintf "dsvc: fatal: %s\n%s" (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt);
      dump_flight ~reason:"crash");
  at_exit dump_trace;
  let info =
    Cmd.info "dsvc" ~version:"1.0.0"
      ~doc:"Dataset version control with a principled storage/recreation tradeoff"
  in
  let group =
    Cmd.group info
      [
        init_cmd;
        commit_cmd;
        checkout_cmd;
        commit_dir_cmd;
        checkout_dir_cmd;
        log_cmd;
        branch_cmd;
        switch_cmd;
        tag_cmd;
        diff_cmd;
        verify_cmd;
        fsck_cmd;
        stats_cmd;
        export_graph_cmd;
        serve_cmd;
        metrics_cmd;
        dash_cmd;
        remote_cmd;
        optimize_cmd;
        advise_cmd;
        top_cmd;
        trace_cmd;
        flight_dump_cmd;
        lint_cmd;
      ]
  in
  main_eval := (fun argv -> Cmd.eval ~argv group);
  exit (Cmd.eval group)
