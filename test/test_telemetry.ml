(* Workload telemetry (DESIGN.md §15): ledger persistence roundtrip,
   merge commutativity, fault injection at the ledger write site, the
   shared env-knob parser, and the end-to-end drift demo — a skewed
   workload pushes the drift score past the threshold, [advise]
   recommends a re-plan, and optimizing with observed weights strictly
   lowers the access-weighted recreation cost while staying
   Solution_check-valid ([optimize ~check] re-verifies the plan before
   rewriting anything). *)

open Versioning_store
module Obs = Versioning_obs.Obs
module Telemetry = Versioning_obs.Telemetry
module Faults = Versioning_util.Faults
module Prng = Versioning_util.Prng

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let temp_dir () =
  let path = Filename.temp_file "dsvc_tel" "" in
  Sys.remove path;
  path

(* ---- ledger generators ---- *)

type op = Bump of int * bool | Observe of int * int * int

let apply_op t = function
  | Bump (v, cached) -> Telemetry.bump_checkout t v ~cached
  | Observe (v, ms, bytes) ->
      Telemetry.bump_checkout t v ~cached:false;
      Telemetry.record_recreation t v
        ~seconds:(float_of_int ms /. 1000.0)
        ~bytes:(float_of_int bytes)
        ~predicted:(float_of_int ((bytes / 2) + 1))
        ~trace:(Printf.sprintf "t-%d" v) ()

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun v c -> Bump (v, c)) (int_range 1 40) bool);
        ( 1,
          map2
            (fun v (ms, bytes) -> Observe (v, ms, bytes))
            (int_range 1 40)
            (pair (int_range 0 5000) (int_range 0 100_000)) );
      ])

(* Small bounds so generation also exercises entry eviction and the
   sample-ring cap. *)
let ledger_of_ops ops =
  let t = Telemetry.create ~max_entries:16 ~ring:8 () in
  List.iter (apply_op t) ops;
  t

let gen_ledger = QCheck.Gen.(map ledger_of_ops (list_size (int_range 0 120) gen_op))

let arb_ledger = QCheck.make ~print:Telemetry.render gen_ledger

let qcheck_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse∘render ≡ id (hex floats)"
    arb_ledger (fun t ->
      match Telemetry.parse (Telemetry.render t) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok t' -> Telemetry.render t' = Telemetry.render t)

let qcheck_merge_commutes =
  QCheck.Test.make ~count:200 ~name:"merge commutes (byte-identical)"
    (QCheck.pair arb_ledger arb_ledger)
    (fun (a, b) ->
      Telemetry.render (Telemetry.merge a b)
      = Telemetry.render (Telemetry.merge b a))

let qcheck_merge_conserves =
  QCheck.Test.make ~count:200 ~name:"merge conserves events and checkouts"
    (QCheck.pair arb_ledger arb_ledger)
    (fun (a, b) ->
      let total t =
        List.fold_left
          (fun n (_, e) -> n + e.Telemetry.checkouts)
          0 (Telemetry.entries t)
      in
      let m = Telemetry.merge a b in
      Telemetry.events m = Telemetry.events a + Telemetry.events b
      (* entry eviction may drop cold versions, never invent them *)
      && total m <= total a + total b)

(* ---- bounded ledger behaviour ---- *)

let test_hot_and_eviction () =
  let t = Telemetry.create ~max_entries:4 ~ring:4 () in
  for v = 1 to 6 do
    for _ = 1 to v do
      Telemetry.bump_checkout t v ~cached:false
    done
  done;
  Alcotest.(check int) "entry count bounded" 4
    (List.length (Telemetry.entries t));
  (match Telemetry.hot t ~k:1 with
  | [ (6, _) ] -> ()
  | l ->
      Alcotest.failf "hottest should be version 6, got %s"
        (String.concat "," (List.map (fun (v, _) -> string_of_int v) l)));
  Alcotest.(check int) "events count every access" 21 (Telemetry.events t)

(* ---- the shared env parser (satellite: DSVC_* integer knobs) ---- *)

let test_env_int () =
  let name = "DSVC_TEST_ENV_INT" in
  let get ?max () = Obs.env_int name ?max ~default:7 in
  Unix.putenv name "";
  Alcotest.(check int) "blank -> default" 7 (get ());
  Unix.putenv name "12";
  Alcotest.(check int) "valid value" 12 (get ());
  Unix.putenv name "  12  ";
  Alcotest.(check int) "whitespace tolerated" 12 (get ());
  Unix.putenv name "garbage";
  Alcotest.(check int) "garbage -> default" 7 (get ());
  Unix.putenv name "0";
  Alcotest.(check int) "zero below default min -> default" 7 (get ());
  Unix.putenv name "-3";
  Alcotest.(check int) "negative -> default" 7 (get ());
  Unix.putenv name "99";
  Alcotest.(check int) "above max -> default" 7 (get ~max:50 ());
  Unix.putenv name "50";
  Alcotest.(check int) "at max accepted" 50 (get ~max:50 ());
  Unix.putenv name "0";
  Alcotest.(check int) "min:0 admits zero" 0
    (Obs.env_int name ~min:0 ~default:7);
  Unix.putenv name ""

(* ---- persistence through Repo ---- *)

let test_persistence_across_sessions () =
  let dir = temp_dir () in
  (let repo = ok (Repo.init ~path:dir) in
   let _ = ok (Repo.commit repo ~message:"a" "alpha\n") in
   let _ = ok (Repo.commit repo ~message:"b" "alpha\nbeta\n") in
   Obs.with_enabled true (fun () ->
       for _ = 1 to 3 do
         ignore (ok (Repo.checkout repo 1))
       done;
       Repo.close repo));
  (* second session merges the on-disk ledger, adds more accesses *)
  (let repo = ok (Repo.open_repo ~path:dir) in
   Obs.with_enabled true (fun () ->
       for _ = 1 to 2 do
         ignore (ok (Repo.checkout repo 1))
       done;
       ignore (ok (Repo.checkout repo 2));
       Repo.close repo));
  let repo = ok (Repo.open_repo ~path:dir) in
  let t = Repo.telemetry repo in
  let checkouts v =
    match Telemetry.entry t v with
    | Some e -> e.Telemetry.checkouts
    | None -> 0
  in
  Alcotest.(check int) "checkouts accumulate across sessions" 5 (checkouts 1);
  Alcotest.(check int) "second version counted too" 1 (checkouts 2);
  Alcotest.(check int) "events accumulate" 6 (Telemetry.events t);
  Repo.close repo

let test_save_fault_injected () =
  Faults.reset ();
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"a" "alpha\n") in
  let _ = ok (Repo.commit repo ~message:"b" "alpha\nbeta\n") in
  Obs.with_enabled true (fun () ->
      ignore (ok (Repo.checkout repo 2));
      Faults.arm ~site:"telemetry.save" (Faults.Fail "injected: disk full");
      (match Repo.flush_telemetry repo with
      | Ok () -> Alcotest.fail "flush must surface the injected failure"
      | Error _ -> ());
      (* a failed flush must not corrupt anything: no ledger file, and
         the repo itself still works *)
      Faults.reset ();
      ignore (ok (Repo.checkout repo 1));
      ok (Repo.flush_telemetry repo));
  Repo.close repo;
  let repo2 = ok (Repo.open_repo ~path:dir) in
  Alcotest.(check bool) "ledger persisted after the fault cleared" false
    (Telemetry.is_empty (Repo.telemetry repo2));
  (match Repo.verify repo2 with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "repo must still verify: %s" (String.concat "; " problems));
  Repo.close repo2

let test_corrupt_ledger_ignored () =
  let dir = temp_dir () in
  (let repo = ok (Repo.init ~path:dir) in
   let _ = ok (Repo.commit repo ~message:"a" "alpha\n") in
   Obs.with_enabled true (fun () ->
       ignore (ok (Repo.checkout repo 1));
       Repo.close repo));
  let ledger = Filename.concat (Filename.concat dir ".dsvc") "telemetry" in
  (* lint: raw-write-ok deliberately clobbering the ledger with garbage *)
  let oc = open_out_bin ledger in
  output_string oc "telemetry 1\nnot a ledger\n";
  close_out oc;
  (* a corrupt ledger is an observation casualty, never an open error *)
  let repo = ok (Repo.open_repo ~path:dir) in
  Alcotest.(check bool) "corrupt ledger ignored, repo opens" true
    (Telemetry.is_empty (Repo.telemetry repo));
  Repo.close repo

(* ---- planning isolation and the drift demo ---- *)

(* A 20-version linear history of small line mutations over a ~400
   line file: enough structure that LMG has real materialize-or-delta
   choices under a 1.5x budget. *)
let mk_history dir n =
  let repo = ok (Repo.init ~path:dir) in
  let rng = Prng.create ~seed:7 in
  let lines =
    Array.init 400 (fun i ->
        Printf.sprintf "line %d %d" i (Prng.int rng 1_000_000_000))
  in
  for _v = 1 to n do
    for _ = 1 to 12 do
      lines.(Prng.int rng (Array.length lines)) <-
        Printf.sprintf "line mut %d" (Prng.int rng 1_000_000_000)
    done;
    ignore
      (ok
         (Repo.commit repo ~message:"v"
            (String.concat "\n" (Array.to_list lines) ^ "\n")))
  done;
  repo

let test_ledger_never_feeds_uniform_plans () =
  let dir = temp_dir () in
  let repo = mk_history dir 12 in
  let _ = ok (Repo.optimize repo (Repo.Budgeted_sum 1.5)) in
  let plan0 = Repo.storage_parents repo in
  (* hammer the ledger with a skewed workload, gate off and on *)
  for _ = 1 to 25 do
    ignore (ok (Repo.checkout repo 2))
  done;
  Obs.with_enabled true (fun () ->
      for _ = 1 to 25 do
        ignore (ok (Repo.checkout repo 2))
      done);
  let _ = ok (Repo.optimize repo (Repo.Budgeted_sum 1.5)) in
  Alcotest.(check bool) "uniform plan identical under a hot ledger" true
    (Repo.storage_parents repo = plan0);
  Repo.close repo

let weighted freqs costs =
  List.fold_left (fun acc (v, phi) -> acc +. (freqs.(v) *. phi)) 0.0 costs

let test_drift_demo () =
  let dir = temp_dir () in
  let repo = mk_history dir 20 in
  let _ = ok (Repo.optimize repo ~check:true (Repo.Budgeted_sum 1.5)) in
  (* skewed workload: one deep version takes ~85% of the accesses *)
  Obs.with_enabled true (fun () ->
      for _ = 1 to 30 do
        ignore (ok (Repo.checkout repo 3))
      done;
      for _ = 1 to 5 do
        ignore (ok (Repo.checkout repo 20))
      done);
  let drift = Repo.drift_score repo in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.3f exceeds the 0.5 threshold" drift)
    true (drift > 0.5);
  let (a : Repo.advice) = ok (Repo.advise repo ()) in
  Alcotest.(check bool) "advise recommends a re-plan" true a.a_recommend;
  Alcotest.(check bool) "candidate strictly cheaper" true
    (a.a_candidate_weighted < a.a_current_weighted);
  (match a.a_top with
  | { Repo.d_version = 3; _ } :: _ -> ()
  | l ->
      Alcotest.failf "hot mispriced version should lead a_top, got [%s]"
        (String.concat ";"
           (List.map (fun d -> string_of_int d.Repo.d_version) l)));
  (* re-plan under observed weights: the plan must stay checker-valid
     (optimize ~check) and strictly lower the access-weighted cost *)
  let freqs =
    match Repo.observed_freqs repo with
    | Some f -> f
    | None -> Alcotest.fail "populated ledger must yield freqs"
  in
  let uniform_plan = Repo.predicted_costs repo in
  let _ =
    ok
      (Repo.optimize repo ~check:true ~weights:Repo.Observed
         (Repo.Budgeted_sum 1.5))
  in
  let observed_plan = Repo.predicted_costs repo in
  let wu = weighted freqs uniform_plan in
  let wo = weighted freqs observed_plan in
  Alcotest.(check bool)
    (Printf.sprintf "observed-weight plan cheaper for the workload (%.0f < %.0f)"
       wo wu)
    true (wo < wu);
  (* the gauges reach the registry once exported *)
  Obs.with_enabled true (fun () -> Repo.export_telemetry repo);
  let exposition = Versioning_obs.Metrics.to_prometheus () in
  let mem needle =
    let nl = String.length needle and el = String.length exposition in
    let rec go i =
      i + nl <= el && (String.sub exposition i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "drift gauge exported" true
    (mem "dsvc_store_drift_score");
  Alcotest.(check bool) "ledger gauges exported" true
    (mem "dsvc_obs_ledger_events");
  Repo.close repo

let suite =
  [
    Alcotest.test_case "hot ranking and eviction bound" `Quick
      test_hot_and_eviction;
    Alcotest.test_case "env_int validates DSVC_* knobs" `Quick test_env_int;
    Alcotest.test_case "ledger persists and merges across sessions" `Quick
      test_persistence_across_sessions;
    Alcotest.test_case "injected fault at telemetry.save" `Quick
      test_save_fault_injected;
    Alcotest.test_case "corrupt ledger never blocks open" `Quick
      test_corrupt_ledger_ignored;
    Alcotest.test_case "uniform plans ignore the ledger" `Slow
      test_ledger_never_feeds_uniform_plans;
    Alcotest.test_case "drift demo: skew, advise, observed re-plan" `Slow
      test_drift_demo;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_merge_commutes;
    QCheck_alcotest.to_alcotest qcheck_merge_conserves;
  ]
