(* LP export and the hop-cost variant. *)

open Versioning_core
module Prng = Versioning_util.Prng

(* ---- Ilp ---- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_lp_structure_p6 () =
  let g = Fixtures.figure1 () in
  let lp = Ilp.emit g (Solver.Min_storage_bounded_max_recreation 13000.0) in
  Alcotest.(check bool) "minimizes storage" true
    (contains ~needle:"Minimize" lp);
  (* objective carries every revealed delta cost *)
  Alcotest.(check bool) "edge var present" true (contains ~needle:"x_1_2" lp);
  Alcotest.(check bool) "materialization var present" true
    (contains ~needle:"x_0_1" lp);
  (* one parent constraint per version *)
  for j = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "parent constraint %d" j)
      true
      (contains ~needle:(Printf.sprintf "parent_%d:" j) lp)
  done;
  (* theta constraints *)
  Alcotest.(check bool) "theta rows" true (contains ~needle:"theta_5: r_5 <= 13000" lp);
  (* big-M is 2 theta, as the paper suggests *)
  Alcotest.(check (float 1e-9)) "big M" 26000.0
    (Ilp.big_m g (Solver.Min_storage_bounded_max_recreation 13000.0));
  Alcotest.(check bool) "binary section" true (contains ~needle:"Binary" lp);
  Alcotest.(check bool) "ends properly" true (contains ~needle:"End" lp)

let test_lp_objectives_per_problem () =
  let g = Fixtures.figure1 () in
  let p3 = Ilp.emit g (Solver.Min_sum_recreation_bounded_storage 13000.0) in
  Alcotest.(check bool) "p3 minimizes sum of r" true
    (contains ~needle:"obj: r_1 + r_2" p3);
  Alcotest.(check bool) "p3 storage bound" true (contains ~needle:"beta:" p3);
  let p4 = Ilp.emit g (Solver.Min_max_recreation_bounded_storage 13000.0) in
  Alcotest.(check bool) "p4 minimizes rmax" true (contains ~needle:"obj: rmax" p4);
  Alcotest.(check bool) "p4 defines rmax" true (contains ~needle:"maxdef_1" p4);
  let p5 = Ilp.emit g (Solver.Min_storage_bounded_sum_recreation 60000.0) in
  Alcotest.(check bool) "p5 sum-recreation bound" true
    (contains ~needle:"theta_sum:" p5);
  Alcotest.(check bool) "p5 minimizes storage" true
    (contains ~needle:"obj: 10000 x_0_1" p5);
  let p1 = Ilp.emit g Solver.Minimize_storage in
  Alcotest.(check bool) "p1 has no bound rows" true
    (not (contains ~needle:"theta" p1) && not (contains ~needle:"beta" p1));
  Alcotest.(check bool) "p2 rejected" true
    (match Ilp.emit g Solver.Minimize_recreation with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_lp_counts () =
  let rng = Prng.create ~seed:197 in
  let g = Fixtures.random_graph ~n_min:4 ~n_max:8 rng in
  let lp = Ilp.emit g (Solver.Min_storage_bounded_max_recreation 1000.0) in
  let count_lines pred =
    String.split_on_char '\n' lp |> List.filter pred |> List.length
  in
  let n = Aux_graph.n_versions g in
  let n_edges = Versioning_graph.Digraph.n_edges (Aux_graph.graph g) in
  Alcotest.(check int) "one rec row per edge"
    n_edges
    (count_lines (fun l -> contains ~needle:" rec_" ("\n" ^ l ^ "\n") || String.length l > 5 && String.sub l 0 5 = " rec_"));
  Alcotest.(check int) "one theta row per version" n
    (count_lines (fun l -> String.length l > 7 && String.sub l 0 7 = " theta_"))

(* ---- Hop_cost ---- *)

let test_hop_graph () =
  let g = Fixtures.figure1 () in
  let h = Hop_cost.of_aux g in
  Alcotest.(check int) "same versions" 5 (Aux_graph.n_versions h);
  Versioning_graph.Digraph.iter_edges (Aux_graph.graph h) (fun e ->
      Alcotest.(check (float 0.)) "phi = 1" 1.0 e.label.Aux_graph.phi);
  (* delta weights preserved *)
  match Aux_graph.delta h ~src:1 ~dst:3 with
  | Some w -> Alcotest.(check (float 0.)) "delta kept" 1000.0 w.Aux_graph.delta
  | None -> Alcotest.fail "edge lost"

let test_bounded_depth_zero () =
  let g = Fixtures.figure1 () in
  let sg = Fixtures.ok (Hop_cost.solve_bounded_depth g ~max_depth:0) in
  Alcotest.(check int) "no chains" 0 (Hop_cost.max_depth sg);
  (* all materialized: storage = sum of diagonals *)
  Alcotest.check Fixtures.float_eq "full materialization" 49720.0
    (Storage_graph.storage_cost sg)

let test_bounded_depth_decreasing_storage () =
  let rng = Prng.create ~seed:199 in
  for _ = 1 to 10 do
    let g = Fixtures.random_graph ~n_min:8 ~n_max:15 ~density:0.5 rng in
    let costs =
      List.filter_map
        (fun d ->
          match Hop_cost.solve_bounded_depth g ~max_depth:d with
          | Ok sg ->
              Alcotest.(check bool) "depth bound respected" true
                (Hop_cost.max_depth sg <= d);
              Some (Storage_graph.storage_cost sg)
          | Error _ -> None)
        [ 0; 1; 2; 4; 100 ]
    in
    (* looser depth never costs more storage under MP's greedy *)
    Alcotest.(check bool) "got solutions" true (List.length costs >= 2);
    let first = List.hd costs and last = List.nth costs (List.length costs - 1) in
    Alcotest.(check bool) "deep chains cheaper than materializing all" true
      (last <= first +. 1e-9)
  done

let test_depth_recosting () =
  (* the returned tree carries the ORIGINAL phi costs, not the hop
     costs *)
  let g = Fixtures.figure1 () in
  let sg = Fixtures.ok (Hop_cost.solve_bounded_depth g ~max_depth:1) in
  for v = 1 to 5 do
    if Storage_graph.parent sg v <> 0 then
      Alcotest.(check bool) "real phi on edges" true
        ((Storage_graph.edge_weight sg v).Aux_graph.phi > 1.0)
  done

let suite =
  [
    Alcotest.test_case "lp structure (P6)" `Quick test_lp_structure_p6;
    Alcotest.test_case "lp objectives per problem" `Quick
      test_lp_objectives_per_problem;
    Alcotest.test_case "lp row counts" `Quick test_lp_counts;
    Alcotest.test_case "hop graph" `Quick test_hop_graph;
    Alcotest.test_case "depth 0 = materialize all" `Quick
      test_bounded_depth_zero;
    Alcotest.test_case "bounded depth storage" `Quick
      test_bounded_depth_decreasing_storage;
    Alcotest.test_case "recosting to real phi" `Quick test_depth_recosting;
  ]
