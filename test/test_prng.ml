module Prng = Versioning_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then same := false
  done;
  Alcotest.(check bool) "different seeds differ" false !same

let test_copy_independent () =
  let a = Prng.create ~seed:7 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  let va = Prng.next_int64 a in
  let vb = Prng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  (* advancing the copy does not disturb the original *)
  let _ = Prng.next_int64 b in
  let a' = Prng.copy a in
  Alcotest.(check int64) "original unaffected" (Prng.next_int64 a)
    (Prng.next_int64 a')

let test_split () =
  let a = Prng.create ~seed:3 in
  let b = Prng.split a in
  (* The split stream differs from the parent's continuation. *)
  let pa = Prng.next_int64 a and pb = Prng.next_int64 b in
  Alcotest.(check bool) "split streams differ" true (pa <> pb)

let test_int_bounds () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in () =
  let rng = Prng.create ~seed:6 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let v = Prng.int_in rng 3 7 in
    Alcotest.(check bool) "in [3,7]" true (v >= 3 && v <= 7);
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Prng.create ~seed:10 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:11 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick () =
  let rng = Prng.create ~seed:12 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.pick rng arr in
    Alcotest.(check bool) "member" true (Array.mem v arr)
  done;
  Alcotest.check_raises "empty rejected" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick rng [||]))

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement rng 5 12 in
    Alcotest.(check int) "5 values" 5 (List.length s);
    Alcotest.(check int) "distinct" 5
      (List.length (List.sort_uniq compare s));
    List.iter
      (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 12))
      s;
    Alcotest.(check (list int)) "sorted" (List.sort compare s) s
  done;
  Alcotest.(check (list int)) "k = n is everything"
    [ 0; 1; 2 ]
    (Prng.sample_without_replacement rng 3 3)

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Prng.create ~seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "sample w/o replacement" `Quick
      test_sample_without_replacement;
    QCheck_alcotest.to_alcotest qcheck_int_uniformish;
  ]
