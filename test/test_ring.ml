(* Consistent-hash ring: determinism, placement, minimal disruption. *)

open Versioning_store

let digest_of s = Versioning_store.Content_hash.hex s

let test_deterministic () =
  (* same member set, any order → identical placement in any process *)
  let a = Ring.create ~members:[ "n1:1"; "n2:2"; "n3:3" ] () in
  let b = Ring.create ~members:[ "n3:3"; "n1:1"; "n2:2" ] () in
  Alcotest.(check string) "epochs agree" (Ring.epoch a) (Ring.epoch b);
  Alcotest.(check (list string)) "members sorted" (Ring.members a)
    (Ring.members b);
  for i = 0 to 49 do
    let d = digest_of (string_of_int i) in
    Alcotest.(check (list string))
      (Printf.sprintf "sequence %d" i)
      (Ring.sequence a d) (Ring.sequence b d)
  done

let test_owners_distinct () =
  let r = Ring.create ~members:[ "a"; "b"; "c"; "d" ] () in
  for i = 0 to 99 do
    let d = digest_of ("blob-" ^ string_of_int i) in
    let owners = Ring.owners r d ~n:3 in
    Alcotest.(check int) "three owners" 3 (List.length owners);
    Alcotest.(check int) "distinct" 3
      (List.length (List.sort_uniq compare owners));
    let seq = Ring.sequence r d in
    Alcotest.(check int) "sequence covers all members" 4 (List.length seq);
    Alcotest.(check (list string)) "owners prefix the sequence" owners
      (List.filteri (fun i _ -> i < 3) seq)
  done

let test_epoch_tracks_members () =
  let r1 = Ring.create ~members:[ "a"; "b" ] () in
  let r2 = Ring.create ~members:[ "a"; "b"; "c" ] () in
  Alcotest.(check bool) "epoch changes with membership" true
    (Ring.epoch r1 <> Ring.epoch r2);
  Alcotest.(check bool) "epoch is 16 hex chars" true
    (String.length (Ring.epoch r1) = 16)

let test_minimal_disruption () =
  (* removing one of four members must move only the digests it
     owned — everyone else's primary stays put *)
  let before = Ring.create ~members:[ "a"; "b"; "c"; "d" ] () in
  let after = Ring.create ~members:[ "a"; "b"; "c" ] () in
  let moved = ref 0 and total = 500 in
  for i = 0 to total - 1 do
    let d = digest_of ("key-" ^ string_of_int i) in
    let p_before = List.hd (Ring.owners before d ~n:1) in
    let p_after = List.hd (Ring.owners after d ~n:1) in
    if p_before <> p_after then begin
      incr moved;
      Alcotest.(check string)
        "only d's digests move" "d" p_before
    end
  done;
  Alcotest.(check bool) "d owned a nonzero share" true (!moved > 0);
  (* d held roughly a quarter; allow generous slack for hash variance *)
  Alcotest.(check bool)
    (Printf.sprintf "moved share bounded (%d/%d)" !moved total)
    true
    (!moved < total / 2)

let test_load_spread () =
  (* virtual nodes keep the primary-ownership split roughly even *)
  let members = [ "a"; "b"; "c" ] in
  let r = Ring.create ~members () in
  let counts = Hashtbl.create 3 in
  let total = 900 in
  for i = 0 to total - 1 do
    let p = List.hd (Ring.owners r (digest_of (string_of_int i)) ~n:1) in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  List.iter
    (fun m ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts m) in
      Alcotest.(check bool)
        (Printf.sprintf "%s holds a sane share (%d/%d)" m c total)
        true
        (c > total / 10 && c < 2 * total / 3))
    members

let test_single_member () =
  let r = Ring.create ~members:[ "solo" ] () in
  let d = digest_of "x" in
  Alcotest.(check (list string)) "solo owns everything" [ "solo" ]
    (Ring.sequence r d);
  Alcotest.(check (list string)) "owners clamp to member count" [ "solo" ]
    (Ring.owners r d ~n:3)

let suite =
  [
    Alcotest.test_case "deterministic across orderings" `Quick
      test_deterministic;
    Alcotest.test_case "owners distinct, prefix of sequence" `Quick
      test_owners_distinct;
    Alcotest.test_case "epoch tracks membership" `Quick
      test_epoch_tracks_members;
    Alcotest.test_case "minimal disruption on member loss" `Quick
      test_minimal_disruption;
    Alcotest.test_case "virtual nodes spread load" `Quick test_load_spread;
    Alcotest.test_case "single member ring" `Quick test_single_member;
  ]
