module Cell_diff = Versioning_delta.Cell_diff
module Csv = Versioning_delta.Csv
module Prng = Versioning_util.Prng

let t = Csv.parse

let check_roundtrip name a b =
  let d = Cell_diff.diff a b in
  Alcotest.(check bool) name true (Csv.equal (Cell_diff.apply a d) b);
  let d' = Cell_diff.decode (Cell_diff.encode d) in
  Alcotest.(check bool) (name ^ " (codec)") true
    (Csv.equal (Cell_diff.apply a d') b)

let test_identity () =
  let a = t "id,name\n1,x\n2,y" in
  check_roundtrip "identical tables" a a;
  Alcotest.(check int) "no cell edits" 0
    (Cell_diff.n_cell_edits (Cell_diff.diff a a))

let test_cell_edit () =
  let a = t "id,name,age\n1,alice,30\n2,bob,25" in
  let b = t "id,name,age\n1,alice,31\n2,bob,25" in
  check_roundtrip "single cell change" a b;
  let d = Cell_diff.diff a b in
  Alcotest.(check int) "one cell edit" 1 (Cell_diff.n_cell_edits d);
  (* on a non-trivial table, a cell patch is far smaller than
     re-recording the table (framing dominates only tiny tables) *)
  let rows =
    String.concat "\n"
      (List.init 40 (fun i -> Printf.sprintf "%d,user%d,%d" i i (20 + i)))
  in
  let big_a = t ("id,name,age\n" ^ rows) in
  let big_b =
    let copy = Array.map Array.copy big_a in
    copy.(1).(2) <- "99";
    copy
  in
  let big_d = Cell_diff.diff big_a big_b in
  Alcotest.(check bool) "compact" true
    (Cell_diff.size big_d < String.length (Csv.print big_b) / 4)

let test_row_ops () =
  let a = t "id,v\n1,a\n2,b\n3,c" in
  check_roundtrip "row deleted" a (t "id,v\n1,a\n3,c");
  check_roundtrip "row added" a (t "id,v\n1,a\n2,b\n9,z\n3,c");
  check_roundtrip "rows replaced" a (t "id,v\n7,q\n8,r\n9,s")

let test_column_add () =
  let a = t "id,name\n1,alice\n2,bob" in
  let b = t "id,name,city\n1,alice,nyc\n2,bob,la" in
  check_roundtrip "column added" a b;
  (* forward delta records the new column in full; the reverse records
     only the drop: asymmetry, as in the paper's directed case *)
  let fwd = Cell_diff.size (Cell_diff.diff a b) in
  let bwd = Cell_diff.size (Cell_diff.diff b a) in
  Alcotest.(check bool) "dropping is cheaper than adding" true (bwd < fwd)

let test_column_remove_and_rows () =
  let a = t "id,name,age,city\n1,a,30,x\n2,b,40,y\n3,c,50,z" in
  let b = t "id,name,city\n1,a,x\n3,c,z\n4,d,w" in
  check_roundtrip "column drop + row changes" a b

let test_column_reorder () =
  let a = t "x,y\n1,2\n3,4" in
  let b = t "y,x\n2,1\n4,3" in
  check_roundtrip "columns reordered" a b

let test_headerless_fallback () =
  (* ragged rows: no header alignment possible *)
  let a = [| [| "a"; "b" |]; [| "c" |] |] in
  let b = [| [| "a"; "b" |]; [| "d"; "e"; "f" |] |] in
  check_roundtrip "ragged tables fall back to row script" a b

let test_empty_tables () =
  check_roundtrip "empty to empty" [||] [||];
  check_roundtrip "empty to table" [||] (t "h\n1");
  check_roundtrip "table to empty" (t "h\n1") [||]

let test_apply_wrong_source () =
  (* the long untouched field makes the single-cell patch worthwhile,
     so the delta really does carry a column-indexed patch *)
  let blob = String.make 60 'z' in
  let a = t (Printf.sprintf "id,name,blob\n1,x,%s" blob) in
  let b = t (Printf.sprintf "id,name,blob\n1,y,%s" blob) in
  let d = Cell_diff.diff a b in
  Alcotest.(check int) "delta is a cell patch" 1 (Cell_diff.n_cell_edits d);
  (* a narrower table cannot satisfy the cell patch's column index *)
  let stranger = t "solo\n9" in
  Alcotest.(check bool) "apply to incompatible table fails" true
    (match Cell_diff.apply stranger d with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a delta with an explicit column order names its columns, so a
     source lacking them is rejected *)
  let ra = t "x,y\n1,2" and rb = t "y,x\n2,1" in
  let rd = Cell_diff.diff ra rb in
  Alcotest.(check bool) "missing named column rejected" true
    (match Cell_diff.apply (t "p,q\n1,2") rd with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_decode_malformed () =
  Alcotest.(check bool) "garbage rejected" true
    (match Cell_diff.decode "not a delta" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_random_roundtrips () =
  let rng = Prng.create ~seed:123 in
  for _ = 1 to 300 do
    let cols = 2 + Prng.int rng 4 in
    let mk rows =
      Array.init (rows + 1) (fun r ->
          if r = 0 then Array.init cols (fun c -> Printf.sprintf "c%d" c)
          else Array.init cols (fun _ -> Printf.sprintf "%d" (Prng.int rng 8)))
    in
    let a = mk (Prng.int rng 12) and b = mk (Prng.int rng 12) in
    let d = Cell_diff.diff a b in
    if not (Csv.equal (Cell_diff.apply a d) b) then
      Alcotest.fail "random roundtrip failed";
    let d' = Cell_diff.decode (Cell_diff.encode d) in
    if not (Csv.equal (Cell_diff.apply a d') b) then
      Alcotest.fail "random codec roundtrip failed"
  done

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "cell edit" `Quick test_cell_edit;
    Alcotest.test_case "row ops" `Quick test_row_ops;
    Alcotest.test_case "column add" `Quick test_column_add;
    Alcotest.test_case "column drop + rows" `Quick test_column_remove_and_rows;
    Alcotest.test_case "column reorder" `Quick test_column_reorder;
    Alcotest.test_case "headerless fallback" `Quick test_headerless_fallback;
    Alcotest.test_case "empty tables" `Quick test_empty_tables;
    Alcotest.test_case "wrong source" `Quick test_apply_wrong_source;
    Alcotest.test_case "decode malformed" `Quick test_decode_malformed;
    Alcotest.test_case "random roundtrips" `Quick test_random_roundtrips;
  ]
