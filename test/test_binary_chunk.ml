(* Binary_diff, Chunker, Varint. *)

module Binary_diff = Versioning_delta.Binary_diff
module Chunker = Versioning_delta.Chunker
module Varint = Versioning_delta.Varint
module Prng = Versioning_util.Prng

(* ---- Varint ---- *)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Varint.add buf n;
      let s = Buffer.contents buf in
      Alcotest.(check int) "size prediction" (String.length s) (Varint.size n);
      let v, p = Varint.read s 0 in
      Alcotest.(check int) "value" n v;
      Alcotest.(check int) "consumed all" (String.length s) p)
    [ 0; 1; 127; 128; 300; 16383; 16384; 1_000_000; max_int / 2 ]

let test_varint_errors () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint.add: negative")
    (fun () -> Varint.add (Buffer.create 1) (-1));
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated")
    (fun () -> ignore (Varint.read "\x80" 0))

(* ---- Binary_diff ---- *)

let rand_bytes rng n = String.init n (fun _ -> Char.chr (Prng.int rng 256))

let test_bindiff_identical () =
  let rng = Prng.create ~seed:151 in
  let doc = rand_bytes rng 1000 in
  let d = Binary_diff.diff doc doc in
  Alcotest.(check string) "roundtrip" doc (Binary_diff.apply doc d);
  Alcotest.(check (float 1e-9)) "pure copy" 1.0 (Binary_diff.copy_ratio d);
  Alcotest.(check bool) "tiny delta" true
    (Binary_diff.size d < String.length doc / 10)

let test_bindiff_insertion_shift () =
  (* unaligned insertion: line diffs handle this, and so must the
     block-hash differ via its rolling window *)
  let rng = Prng.create ~seed:157 in
  let a = rand_bytes rng 4000 in
  let b = String.sub a 0 1999 ^ "XYZ" ^ String.sub a 1999 (4000 - 1999) in
  let d = Binary_diff.diff a b in
  Alcotest.(check string) "roundtrip" b (Binary_diff.apply a d);
  Alcotest.(check bool) "mostly copied" true (Binary_diff.copy_ratio d > 0.9);
  Alcotest.(check bool) "delta small" true (Binary_diff.size d < 500)

let test_bindiff_block_move () =
  (* content moved wholesale: Myers-style diffs pay full price, the
     binary differ copies both halves *)
  let rng = Prng.create ~seed:163 in
  let x = rand_bytes rng 2000 and y = rand_bytes rng 2000 in
  let a = x ^ y and b = y ^ x in
  let d = Binary_diff.diff a b in
  Alcotest.(check string) "roundtrip" b (Binary_diff.apply a d);
  Alcotest.(check bool) "move detected" true (Binary_diff.copy_ratio d > 0.95)

let test_bindiff_disjoint () =
  let rng = Prng.create ~seed:167 in
  let a = rand_bytes rng 1000 and b = rand_bytes rng 1000 in
  let d = Binary_diff.diff a b in
  Alcotest.(check string) "roundtrip" b (Binary_diff.apply a d)

let test_bindiff_empty_and_small () =
  let d = Binary_diff.diff "" "" in
  Alcotest.(check string) "empty" "" (Binary_diff.apply "" d);
  let d = Binary_diff.diff "short" "other" in
  Alcotest.(check string) "below block size" "other"
    (Binary_diff.apply "short" d);
  let d = Binary_diff.diff "" "target" in
  Alcotest.(check string) "empty source" "target" (Binary_diff.apply "" d)

let test_bindiff_codec () =
  let rng = Prng.create ~seed:173 in
  let a = rand_bytes rng 3000 in
  let b = String.sub a 500 2000 ^ rand_bytes rng 100 in
  let d = Binary_diff.diff a b in
  let d' = Binary_diff.decode (Binary_diff.encode d) in
  Alcotest.(check string) "decoded applies" b (Binary_diff.apply a d');
  Alcotest.(check bool) "corrupt rejected" true
    (match Binary_diff.decode "Zjunk" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bindiff_bad_copy () =
  let rng = Prng.create ~seed:179 in
  let a = rand_bytes rng 500 in
  let b = a ^ a in
  let d = Binary_diff.diff a b in
  (* applying against a shorter source must fail *)
  Alcotest.(check bool) "bounds checked" true
    (match Binary_diff.apply "tiny" d with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_bindiff_roundtrip =
  let gen =
    QCheck.Gen.(
      let doc = map (fun l -> String.concat "" (List.map (String.make 1) l))
          (list_size (int_bound 2000) (map Char.chr (int_bound 255))) in
      pair doc doc)
  in
  QCheck.Test.make ~name:"binary diff roundtrip" ~count:200
    (QCheck.make ~print:(fun (a, b) -> String.escaped a ^ " / " ^ String.escaped b) gen)
    (fun (a, b) -> Binary_diff.apply a (Binary_diff.diff a b) = b)

(* ---- Chunker ---- *)

let test_chunk_coverage () =
  let rng = Prng.create ~seed:181 in
  for _ = 1 to 50 do
    let doc = rand_bytes rng (Prng.int rng 20_000) in
    let chunks = Chunker.chunk doc in
    (match Chunker.reassemble doc chunks with
    | Ok d -> Alcotest.(check int) "covers exactly" (String.length doc) (String.length d)
    | Error e -> Alcotest.fail e);
    List.iter
      (fun c ->
        Alcotest.(check bool) "length bounds" true
          (c.Chunker.length <= 4096
          && (c.Chunker.length >= 1)))
      chunks
  done

let test_chunk_stability_under_insertion () =
  (* inserting bytes near the front must not re-chunk the whole tail *)
  let rng = Prng.create ~seed:191 in
  let doc = rand_bytes rng 50_000 in
  let doc' = String.sub doc 0 100 ^ "INSERTED" ^ String.sub doc 100 (50_000 - 100) in
  let digests d =
    List.map (fun c -> c.Chunker.digest) (Chunker.chunk d)
  in
  let module SS = Set.Make (String) in
  let s1 = SS.of_list (digests doc) and s2 = SS.of_list (digests doc') in
  let shared = SS.cardinal (SS.inter s1 s2) in
  Alcotest.(check bool) "most chunks survive the shift" true
    (float_of_int shared > 0.8 *. float_of_int (SS.cardinal s1))

let test_chunk_validation () =
  Alcotest.(check bool) "bad sizes rejected" true
    (match Chunker.chunk ~min_size:8 "x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-pow2 avg rejected" true
    (match Chunker.chunk ~min_size:16 ~avg_size:300 ~max_size:1000 "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_store_dedup () =
  let store = Chunker.store_create () in
  let rng = Prng.create ~seed:193 in
  let base = rand_bytes rng 30_000 in
  let recipe1 = Chunker.store_add store base in
  let bytes_after_one = Chunker.store_bytes store in
  (* a near-duplicate adds only its changed chunks *)
  let variant = String.sub base 0 15_000 ^ "CHANGED" ^ String.sub base 15_000 15_000 in
  let recipe2 = Chunker.store_add store variant in
  let bytes_after_two = Chunker.store_bytes store in
  Alcotest.(check bool) "near-dup almost free" true
    (bytes_after_two - bytes_after_one < 10_000);
  (* both documents rebuild exactly *)
  Alcotest.(check string) "rebuild base" base
    (Result.get_ok (Chunker.store_get store recipe1));
  Alcotest.(check string) "rebuild variant" variant
    (Result.get_ok (Chunker.store_get store recipe2));
  (* identical re-add costs nothing *)
  let _ = Chunker.store_add store base in
  Alcotest.(check int) "idempotent" bytes_after_two (Chunker.store_bytes store);
  Alcotest.(check bool) "dedup ratio > 1" true
    (Chunker.dedup_ratio store ~originals:(3 * 30_000) > 1.0)

let test_store_missing_chunk () =
  let store = Chunker.store_create () in
  let fake = [ { Chunker.offset = 0; length = 4; digest = Digest.string "nope" } ] in
  match Chunker.store_get store fake with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing chunk must error"

let suite =
  [
    Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
    Alcotest.test_case "varint errors" `Quick test_varint_errors;
    Alcotest.test_case "bindiff identical" `Quick test_bindiff_identical;
    Alcotest.test_case "bindiff unaligned insert" `Quick
      test_bindiff_insertion_shift;
    Alcotest.test_case "bindiff block move" `Quick test_bindiff_block_move;
    Alcotest.test_case "bindiff disjoint" `Quick test_bindiff_disjoint;
    Alcotest.test_case "bindiff empty/small" `Quick test_bindiff_empty_and_small;
    Alcotest.test_case "bindiff codec" `Quick test_bindiff_codec;
    Alcotest.test_case "bindiff bounds" `Quick test_bindiff_bad_copy;
    QCheck_alcotest.to_alcotest qcheck_bindiff_roundtrip;
    Alcotest.test_case "chunk coverage" `Quick test_chunk_coverage;
    Alcotest.test_case "chunk stability" `Quick test_chunk_stability_under_insertion;
    Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
    Alcotest.test_case "store dedup" `Quick test_store_dedup;
    Alcotest.test_case "store missing chunk" `Quick test_store_missing_chunk;
  ]
