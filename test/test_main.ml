let () =
  Alcotest.run "dataset_versioning"
    [
      ("prng", Test_prng.suite);
      ("retry", Test_retry.suite);
      ("binary_heap", Test_heap.suite);
      ("union_find", Test_union_find.suite);
      ("zipf", Test_zipf.suite);
      ("stats", Test_stats.suite);
      ("pool", Test_pool.suite);
      ("digraph", Test_digraph.suite);
      ("myers", Test_myers.suite);
      ("line_diff", Test_line_diff.suite);
      ("cell_diff", Test_cell_diff.suite);
      ("xor_compress", Test_xor_compress.suite);
      ("csv_delta", Test_csv_delta.suite);
      ("aux_storage", Test_aux_storage.suite);
      ("trees", Test_trees.suite);
      ("heuristics", Test_heuristics.suite);
      ("exact_solver", Test_exact_solver.suite);
      ("workload", Test_workload.suite);
      ("store", Test_store.suite);
      ("online", Test_online.suite);
      ("binary_chunk", Test_binary_chunk.suite);
      ("ilp_hop", Test_ilp_hop.suite);
      ("store_extras", Test_store_extras.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite);
      ("paper_examples", Test_paper_examples.suite);
      ("archive", Test_archive.suite);
      ("exact_p3_io", Test_exact_p3_io.suite);
      ("server", Test_server.suite);
      ("edge_cases", Test_edge_cases.suite);
      ("metric_properties", Test_metric_properties.suite);
      ("client", Test_client.suite);
      ("robustness", Test_robustness.suite);
      ("lint", Test_lint.suite);
    ]
