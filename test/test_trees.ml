(* SPT, MST, MCA: optimality, determinism, and cross-validation
   against brute force. *)

open Versioning_core
module Prng = Versioning_util.Prng

(* ---- SPT ---- *)

let test_spt_figure1 () =
  let g = Fixtures.figure1 () in
  let spt = Fixtures.ok (Spt.solve g) in
  (* Direct checks of the shortest paths in Figure 3. *)
  Alcotest.check Fixtures.float_eq "R1" 10000.0 (Storage_graph.recreation_cost spt 1);
  (* V2: min(10100, 10000+200) = 10100 *)
  Alcotest.check Fixtures.float_eq "R2" 10100.0 (Storage_graph.recreation_cost spt 2);
  (* V5: min(10120, via V3 9700+550 = 10250, ...) = 10120 *)
  Alcotest.check Fixtures.float_eq "R5" 10120.0 (Storage_graph.recreation_cost spt 5);
  (* distances agree with the tree *)
  let dist = Spt.distances g in
  for v = 1 to 5 do
    Alcotest.check Fixtures.float_eq
      (Printf.sprintf "distance %d" v)
      dist.(v)
      (Storage_graph.recreation_cost spt v)
  done

let test_spt_lower_bounds_everything () =
  (* No solution can beat the SPT on any version's recreation cost. *)
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 40 do
    let g = Fixtures.random_graph ~n_min:3 ~n_max:8 rng in
    let dist = Spt.distances g in
    List.iter
      (fun sg ->
        for v = 1 to Aux_graph.n_versions g do
          Alcotest.(check bool) "spt is a lower bound" true
            (Storage_graph.recreation_cost sg v >= dist.(v) -. 1e-9)
        done)
      (List.filter_map
         (fun r -> match r with Ok sg -> Some sg | Error _ -> None)
         [ Mca.solve g; Gith.solve g ~window:5 ~max_depth:10 ])
  done

let test_spt_unreachable () =
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:1. ~phi:1.;
  (* version 2 has no in-edges at all *)
  let e = Fixtures.err (Spt.solve g) in
  Alcotest.(check string) "error names the version"
    "version 2 cannot be recreated from the root" e

(* ---- MST / MCA ---- *)

let brute_force_min_storage g =
  let n = Aux_graph.n_versions g in
  let best = ref infinity in
  let parents = Array.make (n + 1) 0 in
  let rec go v =
    if v > n then begin
      let choice = List.init n (fun i -> (parents.(i + 1), i + 1)) in
      match Storage_graph.of_parents g ~parents:choice with
      | Ok sg -> best := Float.min !best (Storage_graph.storage_cost sg)
      | Error _ -> ()
    end
    else
      for p = 0 to n do
        if p <> v then begin
          parents.(v) <- p;
          go (v + 1)
        end
      done
  in
  go 1;
  !best

let test_mca_brute_force () =
  let rng = Prng.create ~seed:17 in
  for _ = 1 to 60 do
    let g = Fixtures.random_graph ~n_min:2 ~n_max:6 rng in
    let sg = Fixtures.ok (Mca.solve g) in
    Fixtures.check_valid g sg;
    Alcotest.check Fixtures.float_eq "MCA optimal"
      (brute_force_min_storage g)
      (Storage_graph.storage_cost sg)
  done

let test_mca_figure1 () =
  let g = Fixtures.figure1 () in
  let sg = Fixtures.ok (Mca.solve g) in
  (* Figure 1(iii) is the minimum-storage solution: C = 11450. *)
  Alcotest.check Fixtures.float_eq "paper MCA cost" 11450.0
    (Storage_graph.storage_cost sg)

let test_mca_determinism () =
  let rng = Prng.create ~seed:23 in
  let g = Fixtures.random_graph ~n_min:5 ~n_max:10 rng in
  let a = Fixtures.ok (Mca.solve g) in
  let b = Fixtures.ok (Mca.solve g) in
  Alcotest.(check (list (pair int int))) "same tree"
    (Storage_graph.to_parents a) (Storage_graph.to_parents b)

let test_mca_unreachable () =
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:1. ~phi:1.;
  match Mca.solve g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unreachable error"

let test_mca_cycle_contraction () =
  (* Force a 2-cycle of cheap deltas plus expensive materializations:
     the naive greedy picks the cycle; Edmonds must contract it. *)
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:100. ~phi:100.;
  Aux_graph.add_materialization g ~version:2 ~delta:90. ~phi:90.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:1. ~phi:1.;
  Aux_graph.add_delta g ~src:2 ~dst:1 ~delta:1. ~phi:1.;
  let sg = Fixtures.ok (Mca.solve g) in
  (* Optimum: materialize 2 (90) + delta 2->1 (1) = 91. *)
  Alcotest.check Fixtures.float_eq "cycle resolved optimally" 91.0
    (Storage_graph.storage_cost sg)

let test_mca_nested_cycles () =
  (* A 3-cycle where every materialization is expensive. *)
  let g = Aux_graph.create ~n_versions:3 in
  List.iter
    (fun (v, c) -> Aux_graph.add_materialization g ~version:v ~delta:c ~phi:c)
    [ (1, 100.); (2, 101.); (3, 102.) ];
  List.iter
    (fun (s, d, c) -> Aux_graph.add_delta g ~src:s ~dst:d ~delta:c ~phi:c)
    [ (1, 2, 1.); (2, 3, 2.); (3, 1, 3.); (2, 1, 5.) ];
  let sg = Fixtures.ok (Mca.solve g) in
  (* materialize 1 (100) + 1->2 (1) + 2->3 (2) = 103 *)
  Alcotest.check Fixtures.float_eq "nested optimal" 103.0
    (Storage_graph.storage_cost sg);
  Alcotest.(check (list int)) "root choice" [ 1 ]
    (Storage_graph.materialized_versions sg)

let test_mst_prim_equals_kruskal () =
  let rng = Prng.create ~seed:29 in
  for _ = 1 to 60 do
    let g = Aux_graph.symmetrize (Fixtures.random_graph ~n_min:2 ~n_max:9 rng) in
    let p = Fixtures.ok (Mst.prim g) in
    let k = Fixtures.ok (Mst.kruskal g) in
    Fixtures.check_valid g p;
    Fixtures.check_valid g k;
    Alcotest.check Fixtures.float_eq "equal weight" (Mst.weight p) (Mst.weight k)
  done

let test_mst_undirected_equals_mca () =
  (* On a symmetric graph, the MCA weight can never beat the MST
     weight (any arborescence is a spanning tree). *)
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 30 do
    let g = Aux_graph.symmetrize (Fixtures.random_graph ~n_min:2 ~n_max:7 rng) in
    let mst = Fixtures.ok (Mst.prim g) in
    let mca = Fixtures.ok (Mca.solve g) in
    Alcotest.(check bool) "mst <= mca on symmetric" true
      (Mst.weight mst <= Mst.weight mca +. 1e-9);
    Alcotest.(check bool) "mca <= mst (it is a spanning tree too)" true
      (Mst.weight mca <= Mst.weight mst +. 1e-9)
  done

let test_mst_disconnected () =
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:1. ~phi:1.;
  (match Mst.prim g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "prim should fail");
  match Mst.kruskal g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kruskal should fail"

let suite =
  [
    Alcotest.test_case "spt figure 1" `Quick test_spt_figure1;
    Alcotest.test_case "spt lower-bounds everything" `Quick
      test_spt_lower_bounds_everything;
    Alcotest.test_case "spt unreachable" `Quick test_spt_unreachable;
    Alcotest.test_case "mca = brute force" `Quick test_mca_brute_force;
    Alcotest.test_case "mca figure 1" `Quick test_mca_figure1;
    Alcotest.test_case "mca determinism" `Quick test_mca_determinism;
    Alcotest.test_case "mca unreachable" `Quick test_mca_unreachable;
    Alcotest.test_case "mca cycle contraction" `Quick test_mca_cycle_contraction;
    Alcotest.test_case "mca nested cycles" `Quick test_mca_nested_cycles;
    Alcotest.test_case "prim = kruskal" `Quick test_mst_prim_equals_kruskal;
    Alcotest.test_case "mst = mca on symmetric" `Quick
      test_mst_undirected_equals_mca;
    Alcotest.test_case "mst disconnected" `Quick test_mst_disconnected;
  ]
