(* Kill-a-node chaos suite: three real `dsvc serve --peers` processes
   on loopback, a mixed workload driven through the failover client,
   SIGKILL of the primary mid-workload, rejoin, anti-entropy, and a
   replicated fsck of every node. The acceptance bar: zero failed
   client requests end to end, and the cluster's optimize produces the
   byte-identical storage plan a single-node repository computes for
   the same history. *)

open Versioning_store

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let dsvc_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dsvc.exe"

let temp_dir () =
  let path = Filename.temp_file "dsvc_chaos" "" in
  Sys.remove path;
  path

type node = {
  name : string;  (* host:port — the ring member name *)
  port : int;
  dir : string;
  peer_names : string list;
  log : string;
  mutable pid : int;
}

let mk_nodes () =
  (* three adjacent ports, offset by pid so parallel checkouts of the
     repo don't collide *)
  let base = 22100 + (Unix.getpid () mod 400 * 3) in
  let name i = Printf.sprintf "127.0.0.1:%d" (base + i) in
  List.init 3 (fun i ->
      let dir = temp_dir () in
      {
        name = name i;
        port = base + i;
        dir;
        peer_names = List.filter (( <> ) (name i)) (List.init 3 name);
        log = dir ^ ".log";
        pid = -1;
      })

let spawn node =
  let out =
    (* lint: raw-write-ok throwaway capture of a child server's
       stdout/stderr for failure diagnostics, not repository data *)
    Unix.openfile node.log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let argv =
    [|
      dsvc_exe; "serve"; "-C"; node.dir;
      "-p"; string_of_int node.port;
      "--peers"; String.concat "," node.peer_names;
      "--replicas"; "2";
    |]
  in
  node.pid <- Unix.create_process dsvc_exe argv Unix.stdin out out;
  Unix.close out

let node_client node =
  let _, port = ok (Cluster_client.parse_endpoint node.name) in
  Client.connect ~timeout:2.0 ~retries:1 ~host:"127.0.0.1" ~port ()

let tail_log node =
  match
    let ic = open_in_bin node.log in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s ->
      let n = String.length s in
      String.sub s (max 0 (n - 2000)) (min n 2000)
  | exception Sys_error _ -> "(no log)"

let wait_healthy node =
  let client = node_client node in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec poll () =
    match Client.health client with
    | Ok kv when List.assoc_opt "status" kv = Some "ok" -> ()
    | _ ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "node %s never became healthy; log tail:\n%s"
            node.name (tail_log node)
        else begin
          Unix.sleepf 0.1;
          poll ()
        end
  in
  poll ()

let sigkill node =
  Unix.kill node.pid Sys.sigkill;
  ignore (Unix.waitpid [] node.pid);
  node.pid <- -1

let sigterm node =
  if node.pid > 0 then begin
    Unix.kill node.pid Sys.sigterm;
    ignore (Unix.waitpid [] node.pid);
    node.pid <- -1
  end

let run_fsck node =
  let argv =
    [|
      dsvc_exe; "fsck"; "-C"; node.dir;
      "--peers"; String.concat "," node.peer_names;
      "--self"; node.name;
    |]
  in
  let out =
    (* lint: raw-write-ok same throwaway child-output capture as spawn *)
    Unix.openfile node.log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid = Unix.create_process dsvc_exe argv Unix.stdin out out in
  Unix.close out;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ ->
      Alcotest.failf "fsck on %s found problems; log tail:\n%s" node.name
        (tail_log node)

(* the versioned "dataset": linear history of a growing table *)
let content_of v =
  String.concat "\n"
    (List.init (40 + (8 * v)) (fun i ->
         Printf.sprintf "row %d,value %d,version %d" i ((i * 7) + v) v))

let test_chaos () =
  if not (Sys.file_exists dsvc_exe) then
    Alcotest.failf "dsvc binary not found at %s" dsvc_exe;
  let nodes = mk_nodes () in
  (* init via the CLI: an in-process [Repo.init] would keep the
     repository lock inside this test process and starve the server *)
  List.iter
    (fun n ->
      let pid =
        Unix.create_process dsvc_exe
          [| dsvc_exe; "init"; "-C"; n.dir |]
          Unix.stdin Unix.stdout Unix.stderr
      in
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.failf "dsvc init failed for %s" n.dir)
    nodes;
  let finally () =
    List.iter (fun n -> if n.pid > 0 then sigkill n) nodes;
    List.iter
      (fun n ->
        ignore
          (Sys.command
             (Printf.sprintf "rm -rf %s %s" (Filename.quote n.dir)
                (Filename.quote n.log))))
      nodes
  in
  Fun.protect ~finally @@ fun () ->
  (* a fast sampling step (inherited by the children) so the health
     observatory reacts within the test's timescale *)
  let old_step = Sys.getenv_opt "DSVC_TS_STEP" in
  Unix.putenv "DSVC_TS_STEP" "0.2";
  let restore_step () =
    Unix.putenv "DSVC_TS_STEP"
      (match old_step with Some s -> s | None -> "")
  in
  Fun.protect ~finally:restore_step @@ fun () ->
  List.iter spawn nodes;
  List.iter wait_healthy nodes;
  let cc = ok (Cluster_client.connect (List.map (fun n -> n.name) nodes)) in
  let failures = ref [] in
  let must label r =
    match r with
    | Ok v -> Some v
    | Error e ->
        failures := Printf.sprintf "%s: %s" label e :: !failures;
        None
  in
  (* ---- phase 1: all nodes up ---- *)
  for v = 1 to 4 do
    match
      must
        (Printf.sprintf "commit v%d" v)
        (Cluster_client.commit cc ~message:(Printf.sprintf "v%d" v)
           (content_of v))
    with
    | Some id -> Alcotest.(check int) "sequential ids" v id
    | None -> ()
  done;
  (match must "checkout v2 (all up)" (Cluster_client.checkout cc "2") with
  | Some got -> Alcotest.(check string) "v2 bytes" (content_of 2) got
  | None -> ());
  ignore (must "stats (all up)" (Cluster_client.stats cc));
  (* ---- chaos: SIGKILL the primary mid-workload ---- *)
  let primary = List.hd nodes in
  sigkill primary;
  for v = 5 to 7 do
    match
      must
        (Printf.sprintf "commit v%d (primary dead)" v)
        (Cluster_client.commit cc ~message:(Printf.sprintf "v%d" v)
           (content_of v))
    with
    | Some id -> Alcotest.(check int) "ids survive failover" v id
    | None -> ()
  done;
  List.iter
    (fun v ->
      match
        must
          (Printf.sprintf "checkout v%d (primary dead)" v)
          (Cluster_client.checkout cc (string_of_int v))
      with
      | Some got ->
          Alcotest.(check string)
            (Printf.sprintf "v%d bytes after failover" v)
            (content_of v) got
      | None -> ())
    [ 1; 5; 7 ];
  ignore (must "optimize (primary dead)" (Cluster_client.optimize cc "min-storage"));
  ignore (must "verify (primary dead)" (Cluster_client.verify cc));
  (* ---- cluster-wide scrape with the primary still dead: per-peer
     families from the live node, scrape_up 0 + an annotation for the
     dead one — partial results, never a failed request ---- *)
  (let scraper = List.nth nodes 1 in
   let other = List.nth nodes 2 in
   match
     must "cluster metrics scrape (primary dead)"
       (Client.request (node_client scraper) ~meth:"GET"
          ~path:"/metrics/cluster" ())
   with
   | None -> ()
   | Some (status, body) ->
       Alcotest.(check int) "scrape 200" 200 status;
       let contains needle =
         let nn = String.length needle and nb = String.length body in
         let rec go i =
           i + nn <= nb && (String.sub body i nn = needle || go (i + 1))
         in
         go 0
       in
       Alcotest.(check bool) "scraping node reports itself up" true
         (contains
            (Printf.sprintf "dsvc_cluster_scrape_up{peer=%S} 1" scraper.name));
       Alcotest.(check bool) "live peer reported up" true
         (contains
            (Printf.sprintf "dsvc_cluster_scrape_up{peer=%S} 1" other.name));
       Alcotest.(check bool) "dead primary reported down" true
         (contains
            (Printf.sprintf "dsvc_cluster_scrape_up{peer=%S} 0" primary.name));
       Alcotest.(check bool) "dead primary annotated" true
         (contains (Printf.sprintf "# peer %s unreachable" primary.name));
       Alcotest.(check bool) "live peer's families carry its label" true
         (contains
            (Printf.sprintf "dsvc_server_requests_total{peer=%S" other.name)));
  (* ---- the health observatory sees the outage (DESIGN.md §16):
     within a few sampling steps the scrape-up SLI drops below 1, the
     immediate cluster_scrape_up threshold fires, and the failover-era
     hints show up as replication-lag series ---- *)
  (let scraper = List.nth nodes 1 in
   let client = node_client scraper in
   let contains hay needle =
     let nn = String.length needle and nb = String.length hay in
     let rec go i = i + nn <= nb && (String.sub hay i nn = needle || go (i + 1)) in
     go 0
   in
   let deadline = Unix.gettimeofday () +. 10.0 in
   let rec poll_firing () =
     match Client.request client ~meth:"GET" ~path:"/alerts" () with
     | Ok (200, body) when contains body "cluster_scrape_up firing" -> body
     | _ when Unix.gettimeofday () > deadline ->
         Alcotest.failf
           "cluster_scrape_up never fired with the primary dead; log tail:\n%s"
           (tail_log scraper)
     | _ ->
         Unix.sleepf 0.2;
         poll_firing ()
   in
   ignore (poll_firing ());
   (match
      Client.request client ~meth:"GET" ~path:"/timeseries" ()
    with
   | Ok (200, body) ->
       Alcotest.(check bool) "sampled series exist" true
         (String.trim body <> "");
       Alcotest.(check bool) "scrape-up SLI series present" true
         (contains body "sli:scrape_up")
   | r ->
       Alcotest.failf "GET /timeseries failed: %s"
         (match r with
         | Ok (status, _) -> Printf.sprintf "HTTP %d" status
         | Error e -> e));
   (* Hints for the dead primary are parked on whichever survivor
      coordinated the failover-era commits, and the lag gauge reaches
      that node's ring one sampling step after its probe exports it —
      so poll both survivors rather than assuming the scraper. *)
   (let survivors = [ List.nth nodes 1; List.nth nodes 2 ] in
    let lag_deadline = Unix.gettimeofday () +. 10.0 in
    let has_lag n =
      match
        Client.request (node_client n) ~meth:"GET" ~path:"/timeseries" ()
      with
      | Ok (200, body) -> contains body "dsvc_cluster_hint_queue_depth"
      | _ -> false
    in
    let rec poll_lag () =
      if List.exists has_lag survivors then ()
      else if Unix.gettimeofday () > lag_deadline then
        Alcotest.fail
          "no survivor ever recorded a dsvc_cluster_hint_queue_depth series"
      else (
        Unix.sleepf 0.2;
        poll_lag ())
    in
    poll_lag ());
   (match
      Client.request client ~meth:"GET" ~path:"/timeseries"
        ~query:[ ("metric", "sli:scrape_up"); ("since", "60") ]
        ()
    with
   | Ok (200, body) ->
       Alcotest.(check bool) "scrape-up history non-empty" true
         (String.trim body <> "")
   | _ -> Alcotest.fail "GET /timeseries?metric=sli:scrape_up failed");
   (* the dashboard renders one frame off the same endpoints *)
   let dash_out = scraper.dir ^ ".dash" in
   let out =
     (* lint: raw-write-ok throwaway capture of the dash frame for
        failure diagnostics, not repository data *)
     Unix.openfile dash_out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
   in
   let pid =
     Unix.create_process dsvc_exe
       [|
         dsvc_exe; "dash"; "--host"; "127.0.0.1";
         "-p"; string_of_int scraper.port; "--once";
       |]
       Unix.stdin out out
   in
   Unix.close out;
   (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _ ->
       let frame =
         try
           let ic = open_in_bin dash_out in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         with
         (* lint: swallow-ok best-effort read of the failed dash
            frame for the failure message — the test fails either
            way on the next line *)
         | _ -> "(no output)"
       in
       Alcotest.failf "dsvc dash --once failed; output:\n%s" frame);
   Sys.remove dash_out);
  (* ---- determinism: the cluster's plan is byte-identical to a
     single-node repository given the same history ---- *)
  let reference = ok (Repo.init ~path:(temp_dir ())) in
  for v = 1 to 7 do
    ignore (ok (Repo.commit reference ~message:(Printf.sprintf "v%d" v) (content_of v)))
  done;
  ignore (ok (Repo.optimize reference (ok (Server.parse_strategy "min-storage"))));
  let s = Repo.stats reference in
  let expected =
    [
      ("versions", string_of_int s.Repo.n_versions);
      ("storage_bytes", string_of_int s.Repo.storage_bytes);
      ("materialized", string_of_int s.Repo.n_full);
      ("delta_stored", string_of_int s.Repo.n_delta);
      ("max_chain", string_of_int s.Repo.max_chain);
      ("sum_recreation", Printf.sprintf "%.0f" s.Repo.sum_recreation_bytes);
      ("max_recreation", Printf.sprintf "%.0f" s.Repo.max_recreation_bytes);
    ]
  in
  (match must "stats after optimize" (Cluster_client.stats cc) with
  | None -> ()
  | Some kv ->
      List.iter
        (fun (key, want) ->
          Alcotest.(check (option string))
            ("plan matches single-node: " ^ key)
            (Some want) (List.assoc_opt key kv))
        expected);
  (* ---- rejoin + anti-entropy ---- *)
  spawn primary;
  wait_healthy primary;
  (* a surviving node pushes current metadata and restores replication;
     its hint ledger (it handled the failover-era writes) drains here *)
  let survivor = List.nth nodes 1 in
  (match must "anti-entropy after rejoin" (Client.anti_entropy (node_client survivor)) with
  | None -> ()
  | Some kv ->
      Alcotest.(check (option string)) "sweep reports no failures" (Some "0")
        (List.assoc_opt "failed" kv));
  (* the rejoined node now answers for the full history through its
     replicated view, with adopted metadata *)
  (match must "checkout v7 on the rejoined node"
           (Client.checkout (node_client primary) "7")
  with
  | Some got -> Alcotest.(check string) "rejoined node serves v7" (content_of 7) got
  | None -> ());
  List.iter
    (fun n -> ignore (must ("verify on " ^ n.name) (Client.verify (node_client n))))
    nodes;
  Alcotest.(check (list string)) "zero failed client requests" []
    (List.rev !failures);
  (* ---- replicated fsck of every node (stopped node, live peers) ---- *)
  List.iter
    (fun n ->
      sigterm n;
      run_fsck n;
      spawn n;
      wait_healthy n)
    nodes;
  List.iter sigterm nodes

let suite = [ Alcotest.test_case "kill-a-node chaos" `Slow test_chaos ]
