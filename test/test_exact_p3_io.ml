(* Exact Problem 3 and graph serialization. *)

open Versioning_core
module Prng = Versioning_util.Prng

let test_p3_vs_brute_force () =
  let rng = Prng.create ~seed:251 in
  for _ = 1 to 30 do
    let g = Fixtures.random_graph ~n_min:2 ~n_max:5 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let cmin = Storage_graph.storage_cost base in
    let cmax = Storage_graph.storage_cost spt in
    let budget = cmin +. Prng.float rng (Float.max 1.0 (cmax -. cmin)) in
    let bf = Exact.brute_force_p3 g ~budget in
    let ex = Exact.solve_p3 g ~budget () in
    match (bf, ex.Exact.tree) with
    | Some b, Some e ->
        Alcotest.(check bool) "optimal" true ex.Exact.optimal;
        Alcotest.check Fixtures.float_eq "same optimum"
          (Storage_graph.sum_recreation b)
          (Storage_graph.sum_recreation e);
        Alcotest.(check bool) "budget respected" true
          (Storage_graph.storage_cost e <= budget +. 1e-6)
    | None, None -> ()
    | Some _, None -> Alcotest.fail "exact P3 missed a solution"
    | None, Some _ -> Alcotest.fail "exact P3 fabricated a solution"
  done

let test_p3_lower_bounds_lmg () =
  let rng = Prng.create ~seed:257 in
  for _ = 1 to 15 do
    let g = Fixtures.random_graph ~n_min:4 ~n_max:7 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let budget = 1.4 *. Storage_graph.storage_cost base in
    let lmg = Lmg.solve g ~base ~spt ~budget () in
    match (Exact.solve_p3 g ~budget ()).Exact.tree with
    | Some e ->
        Alcotest.(check bool) "exact <= LMG" true
          (Storage_graph.sum_recreation e
          <= Storage_graph.sum_recreation lmg +. 1e-6)
    | None -> Alcotest.fail "budget above MCA must be feasible"
  done

let test_p3_infeasible_budget () =
  let g = Fixtures.figure1 () in
  let r = Exact.solve_p3 g ~budget:100.0 () in
  Alcotest.(check bool) "no tree under impossible budget" true
    (r.Exact.tree = None)

let test_p3_node_budget () =
  let rng = Prng.create ~seed:263 in
  let g = Fixtures.random_graph ~n_min:9 ~n_max:12 ~density:0.8 rng in
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let budget = 2.0 *. Storage_graph.storage_cost base in
  let r = Exact.solve_p3 g ~budget ~node_budget:5 () in
  (* the search either proves optimality within 5 nodes (instant
     pruning against the LMG incumbent) or stops at the budget; either
     way the incumbent must be available and the node cap respected *)
  Alcotest.(check bool) "LMG incumbent survives" true (r.Exact.tree <> None);
  Alcotest.(check bool) "node cap respected" true (r.Exact.nodes <= 6)

(* ---- Graph_io ---- *)

let graph_equal a b =
  Graph_io.to_string a = Graph_io.to_string b

let test_io_roundtrip_figure1 () =
  let g = Fixtures.figure1 () in
  let g' = Fixtures.ok (Graph_io.of_string (Graph_io.to_string g)) in
  Alcotest.(check bool) "round trip" true (graph_equal g g');
  (* algorithms agree on both *)
  let a = Fixtures.ok (Mca.solve g) and b = Fixtures.ok (Mca.solve g') in
  Alcotest.(check (list (pair int int))) "same MCA"
    (Storage_graph.to_parents a) (Storage_graph.to_parents b)

let test_io_roundtrip_random () =
  let rng = Prng.create ~seed:269 in
  for _ = 1 to 30 do
    let g = Fixtures.random_graph ~n_min:2 ~n_max:12 rng in
    let g' = Fixtures.ok (Graph_io.of_string (Graph_io.to_string g)) in
    Alcotest.(check bool) "round trip" true (graph_equal g g')
  done

let test_io_exact_floats () =
  (* %h hex floats must round-trip non-representable decimals *)
  let g = Aux_graph.create ~n_versions:1 in
  Aux_graph.add_materialization g ~version:1 ~delta:0.1 ~phi:(1.0 /. 3.0);
  let g' = Fixtures.ok (Graph_io.of_string (Graph_io.to_string g)) in
  match Aux_graph.materialization g' 1 with
  | Some w ->
      Alcotest.(check (float 0.)) "delta exact" 0.1 w.Aux_graph.delta;
      Alcotest.(check (float 0.)) "phi exact" (1.0 /. 3.0) w.Aux_graph.phi
  | None -> Alcotest.fail "lost materialization"

let test_io_files () =
  let g = Fixtures.figure1 () in
  let path = Filename.temp_file "graph" ".dsvcg" in
  Fixtures.ok (Graph_io.save g ~path);
  let g' = Fixtures.ok (Graph_io.load ~path) in
  Alcotest.(check bool) "file round trip" true (graph_equal g g');
  Sys.remove path

let test_io_malformed () =
  List.iter
    (fun s ->
      match Graph_io.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s)
    [
      "";
      "garbage";
      "dsvc-graph 2 5\n";
      "dsvc-graph 1 x\n";
      "dsvc-graph 1 2\nm 5 1.0 1.0\n";
      (* version out of range *)
      "dsvc-graph 1 2\nd 1 1 1.0 1.0\n";
      (* self edge *)
      "dsvc-graph 1 2\nwhat 1 2\n";
    ]

let suite =
  [
    Alcotest.test_case "exact P3 = brute force" `Quick test_p3_vs_brute_force;
    Alcotest.test_case "exact P3 <= LMG" `Quick test_p3_lower_bounds_lmg;
    Alcotest.test_case "exact P3 infeasible" `Quick test_p3_infeasible_budget;
    Alcotest.test_case "exact P3 node budget" `Quick test_p3_node_budget;
    Alcotest.test_case "io roundtrip (figure 1)" `Quick
      test_io_roundtrip_figure1;
    Alcotest.test_case "io roundtrip (random)" `Quick test_io_roundtrip_random;
    Alcotest.test_case "io exact floats" `Quick test_io_exact_floats;
    Alcotest.test_case "io files" `Quick test_io_files;
    Alcotest.test_case "io malformed" `Quick test_io_malformed;
  ]
