module Uf = Versioning_util.Union_find
module Prng = Versioning_util.Prng

let test_singletons () =
  let uf = Uf.create 5 in
  Alcotest.(check int) "size" 5 (Uf.size uf);
  Alcotest.(check int) "sets" 5 (Uf.count_sets uf);
  for i = 0 to 4 do
    Alcotest.(check int) "own representative" i (Uf.find uf i);
    Alcotest.(check int) "set size 1" 1 (Uf.set_size uf i)
  done

let test_union_basic () =
  let uf = Uf.create 6 in
  Alcotest.(check bool) "first union merges" true (Uf.union uf 0 1);
  Alcotest.(check bool) "repeat union no-op" false (Uf.union uf 1 0);
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "not same" false (Uf.same uf 0 2);
  Alcotest.(check int) "sets decreased" 5 (Uf.count_sets uf);
  Alcotest.(check int) "merged size" 2 (Uf.set_size uf 0)

let test_transitivity () =
  let uf = Uf.create 8 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 1 2);
  Alcotest.(check bool) "0 ~ 3 transitively" true (Uf.same uf 0 3);
  Alcotest.(check int) "size 4" 4 (Uf.set_size uf 3)

let test_all_merged () =
  let uf = Uf.create 10 in
  for i = 1 to 9 do
    ignore (Uf.union uf 0 i)
  done;
  Alcotest.(check int) "one set" 1 (Uf.count_sets uf);
  Alcotest.(check int) "full size" 10 (Uf.set_size uf 7)

let qcheck_equivalence =
  (* union-find agrees with a naive equivalence closure *)
  QCheck.Test.make ~name:"union-find matches naive closure" ~count:200
    QCheck.(small_list (pair (int_bound 14) (int_bound 14)))
    (fun unions ->
      let n = 15 in
      let uf = Uf.create n in
      let naive = Array.init n (fun i -> i) in
      let naive_find i = naive.(i) in
      let naive_union a b =
        let ra = naive_find a and rb = naive_find b in
        if ra <> rb then
          Array.iteri (fun i r -> if r = rb then naive.(i) <- ra) naive
      in
      List.iter
        (fun (a, b) ->
          ignore (Uf.union uf a b);
          naive_union a b)
        unions;
      let okay = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Uf.same uf i j <> (naive_find i = naive_find j) then okay := false
        done
      done;
      !okay)

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union basics" `Quick test_union_basic;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    Alcotest.test_case "all merged" `Quick test_all_merged;
    QCheck_alcotest.to_alcotest qcheck_equivalence;
  ]
