(* Properties that hold on metric (triangle-inequality-respecting)
   instances — the realistic regime §3 argues deltas always live in.
   Instances: versions are points on a line; the delta between two
   versions is their distance (+1 byte of framing), a materialization
   is the distance from the empty version (origin) plus framing. *)

open Versioning_core
module Prng = Versioning_util.Prng

let metric_graph rng =
  let n = Prng.int_in rng 3 12 in
  let xs = Array.init (n + 1) (fun _ -> float_of_int (Prng.int_in rng 1 500)) in
  let g = Aux_graph.create ~n_versions:n in
  for v = 1 to n do
    let c = xs.(v) +. 1.0 in
    Aux_graph.add_materialization g ~version:v ~delta:c ~phi:c
  done;
  for s = 1 to n do
    for d = 1 to n do
      if s <> d then begin
        let c = Float.abs (xs.(s) -. xs.(d)) +. 1.0 in
        Aux_graph.add_delta g ~src:s ~dst:d ~delta:c ~phi:c
      end
    done
  done;
  g

let test_generator_is_metric () =
  let rng = Prng.create ~seed:281 in
  for _ = 1 to 50 do
    let g = metric_graph rng in
    match Aux_graph.triangle_violation g with
    | None -> ()
    | Some (p, q, w) ->
        Alcotest.failf "metric generator violated triangle at (%d,%d,%d)" p q w
  done

let test_violation_detected () =
  (* a delta wildly cheaper than the two-hop alternative's difference
     breaks the diagonal rule *)
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:1000. ~phi:1000.;
  Aux_graph.add_materialization g ~version:2 ~delta:1. ~phi:1.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:1. ~phi:1.;
  (* Δ22 = 1 < Δ11 - Δ12 = 999: versions 1 and 2 differ by one byte of
     delta yet their full sizes differ by 999 - impossible *)
  Alcotest.(check bool) "diagonal violation found" true
    (Aux_graph.triangle_violation g <> None);
  (* path-rule violation *)
  let g = Aux_graph.create ~n_versions:3 in
  for v = 1 to 3 do
    Aux_graph.add_materialization g ~version:v ~delta:100. ~phi:100.
  done;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:1. ~phi:1.;
  Aux_graph.add_delta g ~src:2 ~dst:3 ~delta:1. ~phi:1.;
  Aux_graph.add_delta g ~src:1 ~dst:3 ~delta:50. ~phi:50.;
  Alcotest.(check bool) "path violation found" true
    (Aux_graph.triangle_violation g <> None);
  (* Amusingly, the paper's own Figure 1 numbers (which Example 2
     admits are "fictitious and not the result of running any specific
     algorithm") violate the diagonal rule: Δ5,5 = 10120 exceeds
     Δ3,3 + Δ3,5 = 9900. The checker catches it. *)
  Alcotest.(check bool) "figure 1's fictitious numbers flagged" true
    (Aux_graph.triangle_violation (Fixtures.figure1 ()) <> None)

let test_spt_materializes_under_metric () =
  (* The diagonal triangle rule gives Φvv <= cost of any recreation
     path, so on fully-metric instances the SPT distance equals the
     materialization cost. *)
  let rng = Prng.create ~seed:283 in
  for _ = 1 to 30 do
    let g = metric_graph rng in
    let dist = Spt.distances g in
    for v = 1 to Aux_graph.n_versions g do
      let diag = (Option.get (Aux_graph.materialization g v)).Aux_graph.phi in
      Alcotest.(check (float 1e-6)) "spt = direct materialization" diag dist.(v)
    done
  done

let test_mca_storage_bounds_under_metric () =
  (* C(MCA) >= cheapest materialization (someone must be stored in
     full... in tree terms: the root child's edge is a materialization)
     and C(MCA) <= C(star from cheapest version). *)
  let rng = Prng.create ~seed:293 in
  for _ = 1 to 30 do
    let g = metric_graph rng in
    let n = Aux_graph.n_versions g in
    let mca = Fixtures.ok (Mca.solve g) in
    let cheapest = ref infinity in
    for v = 1 to n do
      let d = (Option.get (Aux_graph.materialization g v)).Aux_graph.delta in
      if d < !cheapest then cheapest := d
    done;
    Alcotest.(check bool) "at least one materialization's worth" true
      (Storage_graph.storage_cost mca >= !cheapest -. 1e-6);
    (* upper bound: star on the cheapest version *)
    let v_min = ref 1 in
    for v = 2 to n do
      let dv = (Option.get (Aux_graph.materialization g v)).Aux_graph.delta in
      let dm = (Option.get (Aux_graph.materialization g !v_min)).Aux_graph.delta in
      if dv < dm then v_min := v
    done;
    let star =
      List.init n (fun i ->
          let v = i + 1 in
          if v = !v_min then (0, v) else (!v_min, v))
    in
    let star_sg = Fixtures.ok (Storage_graph.of_parents g ~parents:star) in
    Alcotest.(check bool) "mca below the star" true
      (Storage_graph.storage_cost mca
      <= Storage_graph.storage_cost star_sg +. 1e-6)
  done

let test_heuristics_consistent_under_metric () =
  (* Sanity across the board on metric instances: every algorithm's
     solution is valid and its costs sit between the MCA and SPT
     extremes on the respective axes. *)
  let rng = Prng.create ~seed:307 in
  for _ = 1 to 20 do
    let g = metric_graph rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let budget = 1.3 *. Storage_graph.storage_cost base in
    let sols =
      [
        Lmg.solve g ~base ~spt ~budget ();
        Last.solve g ~base ~alpha:2.0;
        Fixtures.ok (Gith.solve g ~window:0 ~max_depth:10);
      ]
    in
    List.iter
      (fun sg ->
        Fixtures.check_valid g sg;
        Alcotest.(check bool) "storage >= MCA" true
          (Storage_graph.storage_cost sg
          >= Storage_graph.storage_cost base -. 1e-6);
        Alcotest.(check bool) "sumR >= SPT" true
          (Storage_graph.sum_recreation sg
          >= Storage_graph.sum_recreation spt -. 1e-6))
      sols
  done

let test_real_diffs_respect_triangle () =
  (* deltas computed from real contents (line diffs) satisfy the rules
     the paper assumes — at least on generated tabular data *)
  let rng = Prng.create ~seed:311 in
  let h =
    Versioning_workload.History_gen.generate
      (Versioning_workload.History_gen.flat_params ~n_commits:12)
      rng
  in
  let d =
    Versioning_workload.Dataset_gen.generate h
      {
        Versioning_workload.Dataset_gen.default_params with
        initial_rows = 30;
        initial_cols = 4;
      }
      rng
  in
  let g =
    Versioning_workload.Dataset_gen.all_pairs_aux
      ~contents:d.Versioning_workload.Dataset_gen.contents
      ~mode:Versioning_workload.Dataset_gen.Line_directed
  in
  (* Line diffs are not exactly a metric (encodings add framing), so
     allow detection but require that any violation is marginal:
     re-check with a 15% slack by scaling the deltas. *)
  match Aux_graph.triangle_violation g with
  | None -> ()
  | Some _ ->
      (* rebuild with slack: delta' = delta * 1.15 on one-hop legs is
         equivalent to allowing 15% framing overhead; simplest check:
         quantify the worst relative violation manually *)
      let dg = Aux_graph.graph g in
      let w = Hashtbl.create 256 in
      Versioning_graph.Digraph.iter_edges dg (fun e ->
          let key = if e.src = 0 then (e.dst, e.dst) else (e.src, e.dst) in
          if not (Hashtbl.mem w key) then
            Hashtbl.replace w key e.label.Aux_graph.delta);
      let worst = ref 1.0 in
      Hashtbl.iter
        (fun (p, q) d_pq ->
          if p <> q then
            Hashtbl.iter
              (fun (q', x) d_qx ->
                if q' = q && x <> p && x <> q then
                  match Hashtbl.find_opt w (p, x) with
                  | Some d_px when d_px > d_pq +. d_qx ->
                      worst := Float.max !worst (d_px /. (d_pq +. d_qx))
                  | _ -> ())
              w)
        w;
      Alcotest.(check bool) "violations within encoding overhead" true
        (!worst < 1.3)

let suite =
  [
    Alcotest.test_case "generator is metric" `Quick test_generator_is_metric;
    Alcotest.test_case "violations detected" `Quick test_violation_detected;
    Alcotest.test_case "spt materializes under metric" `Quick
      test_spt_materializes_under_metric;
    Alcotest.test_case "mca bounds under metric" `Quick
      test_mca_storage_bounds_under_metric;
    Alcotest.test_case "heuristics consistent under metric" `Quick
      test_heuristics_consistent_under_metric;
    Alcotest.test_case "real diffs near-metric" `Quick
      test_real_diffs_respect_triangle;
  ]
