(* Tags, diff, verify, bulk import, and on-disk compression framing. *)

open Versioning_store
module Line_diff = Versioning_delta.Line_diff

let temp_dir () =
  let path = Filename.temp_file "dsvc_extra" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "repo error: %s" e

let test_tags () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let v1 = ok (Repo.commit repo "one") in
  let _v2 = ok (Repo.commit repo "two") in
  ok (Repo.tag repo "v1.0" ~at:v1 ());
  ok (Repo.tag repo "latest" ());
  Alcotest.(check (list (pair string int))) "tags listed"
    [ ("latest", 2); ("v1.0", 1) ]
    (Repo.tags repo);
  (* tags survive reopen *)
  let repo2 = ok (Repo.open_repo ~path:(Repo.root repo)) in
  Alcotest.(check (option int)) "resolve tag" (Some 1)
    (Repo.resolve repo2 "v1.0");
  Alcotest.(check (option int)) "resolve branch" (Some 2)
    (Repo.resolve repo2 "main");
  Alcotest.(check (option int)) "resolve numeric" (Some 2)
    (Repo.resolve repo2 "2");
  Alcotest.(check (option int)) "unknown is None" None
    (Repo.resolve repo2 "nope");
  (* duplicates and unknown targets rejected *)
  (match Repo.tag repo2 "v1.0" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate tag");
  match Repo.tag repo2 "bad" ~at:99 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown version"

let test_diff () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let a = "x\ny\nz" and b = "x\nY\nz\nw" in
  let v1 = ok (Repo.commit repo a) in
  let v2 = ok (Repo.commit repo b) in
  let encoded = ok (Repo.diff repo v1 v2) in
  (* the emitted delta really transforms a into b *)
  Alcotest.(check string) "diff applies" b
    (Line_diff.apply a (Line_diff.decode encoded))

let test_verify_clean_and_corrupt () =
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo "alpha\nbeta\ngamma") in
  let _ = ok (Repo.commit repo "alpha\nbeta\ngamma\ndelta") in
  (match Repo.verify repo with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "clean repo flagged: %s" (String.concat "; " ps));
  (* corrupt an object on disk *)
  let objects = Filename.concat (Filename.concat dir ".dsvc") "objects" in
  let victim =
    Sys.readdir objects |> Array.to_list
    |> List.concat_map (fun p ->
           let d = Filename.concat objects p in
           if Sys.is_directory d then
             Sys.readdir d |> Array.to_list
             |> List.map (Filename.concat d)
           else [])
    |> List.hd
  in
  (* lint: raw-write-ok deliberately corrupts a stored object in place
     to exercise Repo.verify *)
  let oc = open_out_bin victim in
  output_string oc "Rcorrupted!";
  close_out oc;
  match Repo.verify repo with
  | Error problems ->
      Alcotest.(check bool) "corruption detected" true (problems <> [])
  | Ok () -> Alcotest.fail "corruption missed"

let test_import_versions () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let ids =
    ok
      (Repo.import_versions repo
         [
           ("root", [], "base content");
           ("child", [ 1 ], "base content\nplus");
           ("grandchild", [ 2 ], "base content\nplus\nmore");
           ("merge", [ 3; 1 ], "base content\nplus\nmore\nmerged");
         ])
  in
  Alcotest.(check (list int)) "sequential ids" [ 1; 2; 3; 4 ] ids;
  Alcotest.(check string) "contents round trip" "base content\nplus\nmore"
    (ok (Repo.checkout repo 3));
  Alcotest.(check (option int)) "branch advanced" (Some 4) (Repo.head repo);
  let info = Option.get (Repo.commit_info repo 4) in
  Alcotest.(check (list int)) "merge parents kept" [ 3; 1 ] info.Repo.parents;
  (* forward references are rejected *)
  match Repo.import_versions repo [ ("bad", [ 99 ], "x") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parent in batch"

let test_on_disk_compression () =
  let store = Result.get_ok (Object_store.create ~dir:(temp_dir ())) in
  let repetitive = String.concat "\n" (List.init 500 (fun _ -> "same line again")) in
  let digest = Result.get_ok (Object_store.put store repetitive) in
  Alcotest.(check string) "roundtrip through framing" repetitive
    (Result.get_ok (Object_store.get store digest));
  Alcotest.(check bool) "compressed on disk" true
    (Object_store.total_bytes store < String.length repetitive / 4)

let test_incompressible_stored_raw () =
  let store = Result.get_ok (Object_store.create ~dir:(temp_dir ())) in
  let rng = Versioning_util.Prng.create ~seed:211 in
  let noise = String.init 2000 (fun _ -> Char.chr (Versioning_util.Prng.int rng 256)) in
  let digest = Result.get_ok (Object_store.put store noise) in
  Alcotest.(check string) "roundtrip" noise
    (Result.get_ok (Object_store.get store digest));
  Alcotest.(check bool) "no blowup" true
    (Object_store.total_bytes store <= String.length noise + 1)

let suite =
  [
    Alcotest.test_case "tags" `Quick test_tags;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "verify clean + corrupt" `Quick
      test_verify_clean_and_corrupt;
    Alcotest.test_case "bulk import" `Quick test_import_versions;
    Alcotest.test_case "on-disk compression" `Quick test_on_disk_compression;
    Alcotest.test_case "incompressible raw" `Quick test_incompressible_stored_raw;
  ]
