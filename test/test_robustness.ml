(* Robustness: corrupted persistent state must surface as [Error]
   (or a detected verify failure), never as a crash or silent
   misbehaviour. *)

open Versioning_store
module Faults = Versioning_util.Faults
module Prng = Versioning_util.Prng

let temp_dir () =
  let path = Filename.temp_file "dsvc_rob" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let meta_path dir = Filename.concat (Filename.concat dir ".dsvc") "meta"

let mk_repo () =
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"one" "alpha\nbeta") in
  let _ = ok (Repo.commit repo ~message:"two" "alpha\nbeta\ngamma") in
  ok (Repo.tag repo "v1" ~at:1 ());
  dir

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  (* lint: raw-write-ok this helper deliberately clobbers store files
     with corrupt bytes; an atomic durable write would defeat the test *)
  let oc = open_out_bin p in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let test_meta_truncation () =
  (* every prefix-truncation of the metadata either loads (a prefix
     can be a valid file) or errors cleanly *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  for len = 0 to String.length meta - 1 do
    write_file (meta_path dir) (String.sub meta 0 len);
    match Repo.open_repo ~path:dir with
    | Ok repo ->
        (* a loadable prefix must still behave: log never raises *)
        ignore (Repo.log repo)
    | Error _ -> ()
  done

let test_meta_line_mutations () =
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let lines = String.split_on_char '\n' meta in
  let rng = Prng.create ~seed:331 in
  (* mutate each line in several ways *)
  List.iteri
    (fun i _ ->
      let mutate kind =
        let mutated =
          List.mapi
            (fun j l ->
              if i <> j then l
              else
                match kind with
                | `Garbage -> "!!garbage!!"
                | `Shuffle ->
                    let arr =
                      Array.of_seq (String.to_seq l)
                    in
                    Prng.shuffle rng arr;
                    String.of_seq (Array.to_seq arr)
                | `Double -> l ^ " " ^ l)
            lines
        in
        write_file (meta_path dir) (String.concat "\n" mutated);
        match Repo.open_repo ~path:dir with
        | Ok repo -> ignore (Repo.stats repo)
        | Error _ -> ()
      in
      mutate `Garbage;
      mutate `Shuffle;
      mutate `Double)
    lines;
  (* restore and confirm the original still loads *)
  write_file (meta_path dir) meta;
  ignore (ok (Repo.open_repo ~path:dir))

let test_dangling_stored_reference () =
  (* metadata referencing a nonexistent object: checkout errors,
     verify reports *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let bogus = String.make 32 'a' in
  let mutated =
    String.split_on_char '\n' meta
    |> List.map (fun l ->
           match String.split_on_char ' ' l with
           | [ "stored"; id; "full"; _ ] ->
               Printf.sprintf "stored %s full %s" id bogus
           | _ -> l)
    |> String.concat "\n"
  in
  write_file (meta_path dir) mutated;
  let repo = ok (Repo.open_repo ~path:dir) in
  (match Repo.checkout repo 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling object must fail checkout");
  match Repo.verify repo with
  | Error problems -> Alcotest.(check bool) "reported" true (problems <> [])
  | Ok () -> Alcotest.fail "verify must flag dangling objects"

let test_cyclic_stored_chain () =
  (* hand-corrupted metadata can make version 1 a delta of version 2
     and vice versa; checkout must detect the cycle *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let digest_of_stored l =
    match String.split_on_char ' ' l with
    | [ "stored"; _; "full"; d ] | [ "stored"; _; "delta"; _; d ] -> Some d
    | _ -> None
  in
  let some_digest =
    String.split_on_char '\n' meta |> List.filter_map digest_of_stored |> List.hd
  in
  let mutated =
    String.split_on_char '\n' meta
    |> List.filter (fun l ->
           match String.split_on_char ' ' l with
           | "stored" :: _ -> false
           | [ "end" ] | [ "" ] -> false
           | _ -> true)
    |> fun rest ->
    rest
    @ [
        Printf.sprintf "stored 1 delta 2 %s" some_digest;
        Printf.sprintf "stored 2 delta 1 %s" some_digest;
        "end";
        "";
      ]
    |> String.concat "\n"
  in
  write_file (meta_path dir) mutated;
  let repo = ok (Repo.open_repo ~path:dir) in
  (match Repo.checkout repo 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle must fail checkout");
  match Repo.verify repo with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verify must flag the cycle"

let test_archive_fuzz () =
  (* random byte flips in a packed archive never crash unpack *)
  let rng = Prng.create ~seed:337 in
  let entries =
    [
      { Archive.path = "a.csv"; content = "x,y\n1,2\n3,4" };
      { Archive.path = "dir/b"; content = String.make 64 'q' };
    ]
  in
  let packed = Result.get_ok (Archive.pack entries) in
  for _ = 1 to 500 do
    let b = Bytes.of_string packed in
    let pos = Prng.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Prng.int rng 256));
    match Archive.unpack (Bytes.to_string b) with
    | Ok entries' ->
        (* a lucky mutation may still parse; it must still be
           internally consistent *)
        ignore (Result.map (List.map (fun e -> e.Archive.path)) (Ok entries'))
    | Error _ -> ()
  done

let test_graph_io_fuzz () =
  let rng = Prng.create ~seed:347 in
  let g = Versioning_core.Graph_io.to_string (Fixtures.figure1 ()) in
  for _ = 1 to 500 do
    let b = Bytes.of_string g in
    let pos = Prng.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Prng.int rng 256));
    match Versioning_core.Graph_io.of_string (Bytes.to_string b) with
    | Ok g' -> ignore (Versioning_core.Aux_graph.n_versions g')
    | Error _ -> ()
  done

(* ---- fault injection ----

   These drive the crash-safety machinery end to end: injected write
   failures, torn metadata, crashes between optimize phases, and media
   corruption — each followed by recovery via [open_repo] / [fsck]. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let journal_path dir = Filename.concat (Filename.concat dir ".dsvc") "journal"

let object_path dir digest =
  Filename.concat
    (Filename.concat
       (Filename.concat (Filename.concat dir ".dsvc") "objects")
       (String.sub digest 0 2))
    (String.sub digest 2 30)

let flip_byte path pos =
  let b = Bytes.of_string (read_file path) in
  let pos = pos mod Bytes.length b in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  write_file path (Bytes.to_string b)

(* four versions with heavily shared lines, so commits delta-chain *)
let mk_chain_repo () =
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let base = List.init 30 (fun i -> Printf.sprintf "line %d" i) in
  let contents =
    List.init 4 (fun v ->
        String.concat "\n" (base @ [ Printf.sprintf "version %d" (v + 1) ]))
  in
  List.iter (fun c -> ignore (ok (Repo.commit repo c))) contents;
  (dir, repo, contents)

let check_contents dir expected =
  let repo = ok (Repo.open_repo ~path:dir) in
  List.iteri
    (fun i c ->
      Alcotest.(check string)
        (Printf.sprintf "version %d byte-identical" (i + 1))
        c
        (ok (Repo.checkout repo (i + 1))))
    expected

let test_commit_save_failure_rolls_back () =
  Faults.reset ();
  let dir, repo, _ = mk_chain_repo () in
  let head_before = Repo.head repo in
  let log_before = List.length (Repo.log repo) in
  Faults.arm ~site:"repo.save" (Faults.Fail "injected: disk full");
  (match Repo.commit repo ~message:"doomed" "entirely new content" with
  | Ok _ -> Alcotest.fail "commit must fail when the metadata save fails"
  | Error e -> Alcotest.(check bool) "error surfaced" true (contains e "disk full"));
  (* in-memory state rolled back: the failed commit left no trace *)
  Alcotest.(check (option int)) "head unchanged" head_before (Repo.head repo);
  Alcotest.(check int) "log unchanged" log_before (List.length (Repo.log repo));
  (* no temp file leaked next to the metadata *)
  let leaked =
    Sys.readdir (Filename.concat dir ".dsvc")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no temp files" [] leaked;
  (* the handle stays usable *)
  let id = ok (Repo.commit repo ~message:"after" "recovered content") in
  Alcotest.(check string) "later commit works" "recovered content"
    (ok (Repo.checkout repo id))

let test_torn_meta_write () =
  Faults.reset ();
  let dir, repo, contents = mk_chain_repo () in
  Faults.arm ~site:"repo.save" (Faults.Torn 0.5);
  (try
     ignore (Repo.commit repo ~message:"torn" "content lost to the crash");
     Alcotest.fail "torn write must simulate a crash"
   with Faults.Injected _ -> ());
  (* the on-disk metadata is now a prefix: it must refuse to load *)
  (match Repo.open_repo ~path:dir with
  | Ok _ -> Alcotest.fail "torn metadata must not load"
  | Error e ->
      Alcotest.(check bool) "detected as corrupt" true (contains e "corrupt"));
  (* fsck --repair falls back to the backup generation *)
  let result = ok (Repo.fsck ~path:dir ~repair:true) in
  Alcotest.(check bool) "backup restore reported" true
    (List.exists (fun a -> contains a "backup") result.Repo.actions);
  Alcotest.(check (list string)) "consistent after repair" []
    result.Repo.problems;
  (* every pre-crash version is back, byte-identical *)
  check_contents dir contents

let test_crash_between_optimize_phases () =
  Faults.reset ();
  let dir, repo, contents = mk_chain_repo () in
  Faults.arm ~site:"optimize.after_journal" Faults.Crash;
  (try
     ignore (Repo.optimize repo Repo.Min_storage);
     Alcotest.fail "injected crash must fire"
   with Faults.Injected _ -> ());
  (* killed between object-write and metadata-swap: journal on disk *)
  Alcotest.(check bool) "journal present" true
    (Sys.file_exists (journal_path dir));
  (* open_repo recovers the interrupted optimize *)
  let repo' = ok (Repo.open_repo ~path:dir) in
  (match Repo.verify repo' with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify after recovery: %s" (String.concat "; " ps));
  let result = ok (Repo.fsck ~path:dir ~repair:true) in
  Alcotest.(check (list string)) "fsck clean" [] result.Repo.problems;
  Alcotest.(check bool) "journal resolved" false
    (Sys.file_exists (journal_path dir));
  check_contents dir contents

let test_crash_before_journal_keeps_old_plan () =
  Faults.reset ();
  let dir, repo, contents = mk_chain_repo () in
  Faults.arm ~site:"optimize.after_objects" Faults.Crash;
  (try
     ignore (Repo.optimize repo Repo.Min_recreation);
     Alcotest.fail "injected crash must fire"
   with Faults.Injected _ -> ());
  (* no journal was written: the old metadata is authoritative and the
     new objects are strays *)
  Alcotest.(check bool) "no journal" false (Sys.file_exists (journal_path dir));
  let repo' = ok (Repo.open_repo ~path:dir) in
  (match Repo.verify repo' with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verify: %s" (String.concat "; " ps));
  let result = ok (Repo.fsck ~path:dir ~repair:true) in
  Alcotest.(check (list string)) "fsck clean" [] result.Repo.problems;
  check_contents dir contents

let test_corrupt_blob_detected_on_checkout () =
  Faults.reset ();
  let dir, repo, contents = mk_chain_repo () in
  ignore repo;
  (* version 1 is stored in full: flip one byte in the middle of its
     object file *)
  let digest = Content_hash.hex (List.hd contents) in
  flip_byte (object_path dir digest) 20;
  let repo = ok (Repo.open_repo ~path:dir) in
  (match Repo.checkout repo 1 with
  | Ok _ -> Alcotest.fail "corrupted blob must fail checkout"
  | Error e ->
      Alcotest.(check bool) "digest mismatch reported" true
        (contains e "corrupt" || contains e "digest"));
  (* verify and plain fsck both flag it *)
  (match Repo.verify repo with
  | Ok () -> Alcotest.fail "verify must flag corruption"
  | Error _ -> ());
  let result = ok (Repo.fsck ~path:dir ~repair:false) in
  Alcotest.(check bool) "fsck reports problems" true (result.Repo.problems <> [])

let test_repair_restores_all_versions () =
  Faults.reset ();
  let dir, repo, contents = mk_chain_repo () in
  (* remember the delta object version 2 is stored as before optimize *)
  let old_meta = read_file (meta_path dir) in
  let old_v2_digest =
    String.split_on_char '\n' old_meta
    |> List.find_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "stored"; "2"; "delta"; _; d ] | [ "stored"; "2"; "full"; d ] ->
               Some d
           | _ -> None)
    |> Option.get
  in
  (* crash after the metadata swap: journal still pending, old objects
     not yet collected *)
  Faults.arm ~site:"optimize.after_swap" Faults.Crash;
  (try
     ignore (Repo.optimize repo Repo.Min_recreation);
     Alcotest.fail "injected crash must fire"
   with Faults.Injected _ -> ());
  Alcotest.(check bool) "journal present" true
    (Sys.file_exists (journal_path dir));
  (* damage BOTH plans: version 3's full object (new plan) and version
     2's delta object (old plan) — neither plan alone reconstructs
     everything, but their union does *)
  flip_byte (object_path dir (Content_hash.hex (List.nth contents 2))) 25;
  flip_byte (object_path dir old_v2_digest) 3;
  (* open_repo can't roll forward or back; the journal is kept *)
  let repo' = ok (Repo.open_repo ~path:dir) in
  ignore repo';
  Alcotest.(check bool) "journal kept for repair" true
    (Sys.file_exists (journal_path dir));
  (* repair recovers every version across both plans *)
  let result = ok (Repo.fsck ~path:dir ~repair:true) in
  Alcotest.(check (list string)) "no problems after repair" []
    result.Repo.problems;
  Alcotest.(check bool) "corrupt objects quarantined" true
    (List.exists (fun a -> contains a "quarantined") result.Repo.actions);
  Alcotest.(check bool) "versions re-materialized" true
    (List.exists (fun a -> contains a "re-materialized") result.Repo.actions);
  Alcotest.(check bool) "journal resolved" false
    (Sys.file_exists (journal_path dir));
  check_contents dir contents

let test_lock_excludes_other_process () =
  let dir, repo, _ = mk_chain_repo () in
  ignore repo;
  (* this process holds the lock; a separate process must be refused.
     A spawned probe, not a fork: fork is unavailable once the domain
     pool has spawned, and POSIX record locks don't exclude within a
     process anyway. *)
  let probe =
    Filename.concat (Filename.dirname Sys.executable_name) "lock_probe.exe"
  in
  let pid =
    Unix.create_process probe [| probe; dir |] Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED 1 -> Alcotest.fail "second process acquired a held lock"
  | _, Unix.WEXITED 2 -> Alcotest.fail "open failed with the wrong error"
  | _ -> Alcotest.fail "probe died abnormally"

let test_ref_name_validation () =
  let _, repo, _ = mk_chain_repo () in
  (* names that would corrupt the line-oriented metadata are refused *)
  (match Repo.create_branch repo "bad name" () with
  | Error e -> Alcotest.(check bool) "space refused" true (contains e "invalid")
  | Ok () -> Alcotest.fail "branch name with a space must be refused");
  (match Repo.tag repo "bad\nname" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tag name with a newline must be refused");
  (match Repo.tag repo "" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty tag name must be refused");
  ok (Repo.create_branch repo "fine-name.1" ());
  Alcotest.(check string) "valid name accepted" "fine-name.1"
    (Repo.current_branch repo)

let suite =
  [
    Alcotest.test_case "meta truncation" `Quick test_meta_truncation;
    Alcotest.test_case "meta line mutations" `Quick test_meta_line_mutations;
    Alcotest.test_case "dangling object" `Quick test_dangling_stored_reference;
    Alcotest.test_case "cyclic stored chain" `Quick test_cyclic_stored_chain;
    Alcotest.test_case "archive fuzz" `Quick test_archive_fuzz;
    Alcotest.test_case "graph io fuzz" `Quick test_graph_io_fuzz;
    Alcotest.test_case "commit save failure rolls back" `Quick
      test_commit_save_failure_rolls_back;
    Alcotest.test_case "torn meta write" `Quick test_torn_meta_write;
    Alcotest.test_case "crash between optimize phases" `Quick
      test_crash_between_optimize_phases;
    Alcotest.test_case "crash before journal" `Quick
      test_crash_before_journal_keeps_old_plan;
    Alcotest.test_case "corrupt blob on checkout" `Quick
      test_corrupt_blob_detected_on_checkout;
    Alcotest.test_case "repair restores all versions" `Quick
      test_repair_restores_all_versions;
    Alcotest.test_case "lock excludes other process" `Quick
      test_lock_excludes_other_process;
    Alcotest.test_case "ref name validation" `Quick test_ref_name_validation;
  ]
