(* Robustness: corrupted persistent state must surface as [Error]
   (or a detected verify failure), never as a crash or silent
   misbehaviour. *)

open Versioning_store
module Prng = Versioning_util.Prng

let temp_dir () =
  let path = Filename.temp_file "dsvc_rob" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let meta_path dir = Filename.concat (Filename.concat dir ".dsvc") "meta"

let mk_repo () =
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"one" "alpha\nbeta") in
  let _ = ok (Repo.commit repo ~message:"two" "alpha\nbeta\ngamma") in
  ok (Repo.tag repo "v1" ~at:1 ());
  dir

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let test_meta_truncation () =
  (* every prefix-truncation of the metadata either loads (a prefix
     can be a valid file) or errors cleanly *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  for len = 0 to String.length meta - 1 do
    write_file (meta_path dir) (String.sub meta 0 len);
    match Repo.open_repo ~path:dir with
    | Ok repo ->
        (* a loadable prefix must still behave: log never raises *)
        ignore (Repo.log repo)
    | Error _ -> ()
  done

let test_meta_line_mutations () =
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let lines = String.split_on_char '\n' meta in
  let rng = Prng.create ~seed:331 in
  (* mutate each line in several ways *)
  List.iteri
    (fun i _ ->
      let mutate kind =
        let mutated =
          List.mapi
            (fun j l ->
              if i <> j then l
              else
                match kind with
                | `Garbage -> "!!garbage!!"
                | `Shuffle ->
                    let arr =
                      Array.of_seq (String.to_seq l)
                    in
                    Prng.shuffle rng arr;
                    String.of_seq (Array.to_seq arr)
                | `Double -> l ^ " " ^ l)
            lines
        in
        write_file (meta_path dir) (String.concat "\n" mutated);
        match Repo.open_repo ~path:dir with
        | Ok repo -> ignore (Repo.stats repo)
        | Error _ -> ()
      in
      mutate `Garbage;
      mutate `Shuffle;
      mutate `Double)
    lines;
  (* restore and confirm the original still loads *)
  write_file (meta_path dir) meta;
  ignore (ok (Repo.open_repo ~path:dir))

let test_dangling_stored_reference () =
  (* metadata referencing a nonexistent object: checkout errors,
     verify reports *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let bogus = String.make 32 'a' in
  let mutated =
    String.split_on_char '\n' meta
    |> List.map (fun l ->
           match String.split_on_char ' ' l with
           | [ "stored"; id; "full"; _ ] ->
               Printf.sprintf "stored %s full %s" id bogus
           | _ -> l)
    |> String.concat "\n"
  in
  write_file (meta_path dir) mutated;
  let repo = ok (Repo.open_repo ~path:dir) in
  (match Repo.checkout repo 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling object must fail checkout");
  match Repo.verify repo with
  | Error problems -> Alcotest.(check bool) "reported" true (problems <> [])
  | Ok () -> Alcotest.fail "verify must flag dangling objects"

let test_cyclic_stored_chain () =
  (* hand-corrupted metadata can make version 1 a delta of version 2
     and vice versa; checkout must detect the cycle *)
  let dir = mk_repo () in
  let meta = read_file (meta_path dir) in
  let digest_of_stored l =
    match String.split_on_char ' ' l with
    | [ "stored"; _; "full"; d ] | [ "stored"; _; "delta"; _; d ] -> Some d
    | _ -> None
  in
  let some_digest =
    String.split_on_char '\n' meta |> List.filter_map digest_of_stored |> List.hd
  in
  let mutated =
    String.split_on_char '\n' meta
    |> List.filter (fun l ->
           match String.split_on_char ' ' l with
           | "stored" :: _ -> false
           | _ -> true)
    |> fun rest ->
    rest
    @ [
        Printf.sprintf "stored 1 delta 2 %s" some_digest;
        Printf.sprintf "stored 2 delta 1 %s" some_digest;
      ]
    |> String.concat "\n"
  in
  write_file (meta_path dir) mutated;
  let repo = ok (Repo.open_repo ~path:dir) in
  (match Repo.checkout repo 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle must fail checkout");
  match Repo.verify repo with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verify must flag the cycle"

let test_archive_fuzz () =
  (* random byte flips in a packed archive never crash unpack *)
  let rng = Prng.create ~seed:337 in
  let entries =
    [
      { Archive.path = "a.csv"; content = "x,y\n1,2\n3,4" };
      { Archive.path = "dir/b"; content = String.make 64 'q' };
    ]
  in
  let packed = Result.get_ok (Archive.pack entries) in
  for _ = 1 to 500 do
    let b = Bytes.of_string packed in
    let pos = Prng.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Prng.int rng 256));
    match Archive.unpack (Bytes.to_string b) with
    | Ok entries' ->
        (* a lucky mutation may still parse; it must still be
           internally consistent *)
        ignore (Result.map (List.map (fun e -> e.Archive.path)) (Ok entries'))
    | Error _ -> ()
  done

let test_graph_io_fuzz () =
  let rng = Prng.create ~seed:347 in
  let g = Versioning_core.Graph_io.to_string (Fixtures.figure1 ()) in
  for _ = 1 to 500 do
    let b = Bytes.of_string g in
    let pos = Prng.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Prng.int rng 256));
    match Versioning_core.Graph_io.of_string (Bytes.to_string b) with
    | Ok g' -> ignore (Versioning_core.Aux_graph.n_versions g')
    | Error _ -> ()
  done

let suite =
  [
    Alcotest.test_case "meta truncation" `Quick test_meta_truncation;
    Alcotest.test_case "meta line mutations" `Quick test_meta_line_mutations;
    Alcotest.test_case "dangling object" `Quick test_dangling_stored_reference;
    Alcotest.test_case "cyclic stored chain" `Quick test_cyclic_stored_chain;
    Alcotest.test_case "archive fuzz" `Quick test_archive_fuzz;
    Alcotest.test_case "graph io fuzz" `Quick test_graph_io_fuzz;
  ]
