(* HTTP framing and the client-server interface. *)

open Versioning_store
module Faults = Versioning_util.Faults

let temp_dir () =
  let path = Filename.temp_file "dsvc_srv" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

(* ---- Http framing ---- *)

let parse s =
  let path = Filename.temp_file "req" ".txt" in
  (* lint: raw-write-ok scratch request fixture read straight back;
     durability is irrelevant *)
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr ic;
      Sys.remove path)
    (fun () -> Http.read_request ic)

let test_http_parse_get () =
  let req =
    ok (parse "GET /checkout/3?x=1&msg=hello%20world HTTP/1.1\r\nHost: h\r\n\r\n")
  in
  Alcotest.(check string) "method" "GET" req.Http.meth;
  Alcotest.(check string) "path" "/checkout/3" req.Http.path;
  Alcotest.(check (option string)) "query decode" (Some "hello world")
    (List.assoc_opt "msg" req.Http.query);
  Alcotest.(check string) "body empty" "" req.Http.body

let test_http_parse_post_body () =
  let req =
    ok
      (parse
         "POST /commit HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: t\r\n\r\nhello\nworld")
  in
  Alcotest.(check string) "body" "hello\nworld" req.Http.body;
  Alcotest.(check (option string)) "header lowered" (Some "t")
    (List.assoc_opt "content-type" req.Http.headers)

let test_http_malformed () =
  List.iter
    (fun s ->
      match parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      "";
      "NOT-A-REQUEST\r\n\r\n";
      "GET /x HTTP/1.1\r\nbadheader\r\n\r\n";
      "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
      "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
    ]

let test_percent_decode () =
  (* in a path a plus is a plus; only query strings read '+' as space *)
  Alcotest.(check string) "path plus preserved" "a+b" (Http.percent_decode "a+b");
  Alcotest.(check string) "query plus is space" "a b"
    (Http.percent_decode_query "a+b");
  Alcotest.(check string) "encoded space in path" "a b"
    (Http.percent_decode "a%20b");
  Alcotest.(check string) "hex" "a/b" (Http.percent_decode "a%2Fb");
  Alcotest.(check string) "malformed passthrough" "a%zqb"
    (Http.percent_decode "a%zqb");
  Alcotest.(check string) "trailing percent" "x%" (Http.percent_decode "x%")

(* ---- routing (pure, no sockets) ---- *)

let mk_request ?(meth = "GET") ?(query = []) ?(headers = []) ?(body = "") path =
  { Http.meth; path; query; headers; body; version = "HTTP/1.1" }

let mk_repo () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let _ = ok (Repo.commit repo ~message:"first" "alpha\nbeta") in
  let _ = ok (Repo.commit repo ~message:"second" "alpha\nbeta\ngamma") in
  repo

let test_route_versions () =
  let repo = mk_repo () in
  let r = Server.handle repo (mk_request "/versions") in
  Alcotest.(check int) "200" 200 r.Http.status;
  Alcotest.(check bool) "lists both" true
    (String.split_on_char '\n' r.Http.body
    |> List.exists (fun l -> l = "2 1 second"))

let test_route_checkout () =
  let repo = mk_repo () in
  let r = Server.handle repo (mk_request "/checkout/1") in
  Alcotest.(check string) "content" "alpha\nbeta" r.Http.body;
  let r = Server.handle repo (mk_request "/checkout/99") in
  Alcotest.(check int) "404 for unknown" 404 r.Http.status;
  (* by branch name *)
  let r = Server.handle repo (mk_request "/checkout/main") in
  Alcotest.(check string) "by branch" "alpha\nbeta\ngamma" r.Http.body

let test_route_commit () =
  let repo = mk_repo () in
  let r =
    Server.handle repo
      (mk_request ~meth:"POST"
         ~query:[ ("message", "third") ]
         ~body:"alpha\nbeta\ngamma\ndelta" "/commit")
  in
  Alcotest.(check int) "201" 201 r.Http.status;
  Alcotest.(check string) "returns id" "3" r.Http.body;
  Alcotest.(check string) "retrievable" "alpha\nbeta\ngamma\ndelta"
    (ok (Repo.checkout repo 3));
  (* bad parents *)
  let r =
    Server.handle repo
      (mk_request ~meth:"POST" ~query:[ ("parents", "x") ] ~body:"c" "/commit")
  in
  Alcotest.(check int) "400" 400 r.Http.status

let test_route_stats_optimize_verify () =
  let repo = mk_repo () in
  let r = Server.handle repo (mk_request "/stats") in
  Alcotest.(check bool) "stats body" true
    (String.length r.Http.body > 0 && r.Http.status = 200);
  let r =
    Server.handle repo
      (mk_request ~meth:"POST"
         ~query:[ ("strategy", "min-storage") ]
         "/optimize")
  in
  Alcotest.(check int) "optimize ok" 200 r.Http.status;
  let r =
    Server.handle repo
      (mk_request ~meth:"POST" ~query:[ ("strategy", "bogus") ] "/optimize")
  in
  Alcotest.(check int) "bad strategy" 400 r.Http.status;
  let r = Server.handle repo (mk_request "/verify") in
  Alcotest.(check string) "verify" "consistent\n" r.Http.body

let test_route_branches_tags_diff () =
  let repo = mk_repo () in
  let r =
    Server.handle repo (mk_request ~meth:"POST" ~query:[ ("at", "1") ] "/branch/exp")
  in
  Alcotest.(check int) "branch created" 200 r.Http.status;
  let r = Server.handle repo (mk_request "/branches") in
  Alcotest.(check bool) "branch listed" true
    (String.split_on_char '\n' r.Http.body
    |> List.exists (fun l -> l = "*exp 1"));
  let r = Server.handle repo (mk_request ~meth:"POST" "/tag/v1") in
  Alcotest.(check int) "tagged" 200 r.Http.status;
  let r = Server.handle repo (mk_request "/tags") in
  Alcotest.(check bool) "tag listed" true
    (String.split_on_char '\n' r.Http.body |> List.exists (fun l -> l = "v1 1"));
  let r = Server.handle repo (mk_request "/diff/1/2") in
  Alcotest.(check int) "diff ok" 200 r.Http.status;
  Alcotest.(check bool) "diff is a delta" true
    (String.length r.Http.body > 0);
  let r = Server.handle repo (mk_request "/nope") in
  Alcotest.(check int) "404 route" 404 r.Http.status;
  let r = Server.handle repo (mk_request ~meth:"PUT" "/versions") in
  Alcotest.(check bool) "404/405 for PUT" true
    (r.Http.status = 404 || r.Http.status = 405)

let test_error_status_mapping () =
  let repo = mk_repo () in
  (* naming something that doesn't exist is 404, not 409 *)
  let r = Server.handle repo (mk_request ~meth:"POST" "/switch/nosuch") in
  Alcotest.(check int) "unknown branch is 404" 404 r.Http.status;
  let r =
    Server.handle repo
      (mk_request ~meth:"POST" ~query:[ ("at", "99") ] "/tag/vx")
  in
  Alcotest.(check int) "unknown version is 404" 404 r.Http.status;
  let r =
    Server.handle repo
      (mk_request ~meth:"POST" ~query:[ ("parents", "99") ] ~body:"c" "/commit")
  in
  Alcotest.(check int) "unknown parent is 404" 404 r.Http.status;
  (* real conflicts stay 409 *)
  let _ = Server.handle repo (mk_request ~meth:"POST" "/tag/v1") in
  let r = Server.handle repo (mk_request ~meth:"POST" "/tag/v1") in
  Alcotest.(check int) "duplicate tag is 409" 409 r.Http.status;
  (* a name that would corrupt the metadata is refused, not stored *)
  let r = Server.handle repo (mk_request ~meth:"POST" "/tag/bad name") in
  Alcotest.(check int) "invalid name is 409" 409 r.Http.status

let test_raising_handler_yields_500 () =
  Faults.reset ();
  let repo = mk_repo () in
  (* an injected crash makes the optimize handler raise mid-request *)
  Faults.arm ~site:"optimize.after_objects" Faults.Crash;
  let r =
    Server.handle_safe repo
      (mk_request ~meth:"POST"
         ~query:[ ("strategy", "min-storage") ]
         "/optimize")
  in
  Faults.reset ();
  Alcotest.(check int) "500" 500 r.Http.status;
  Alcotest.(check bool) "error body" true
    (String.length r.Http.body > 0)

(* ---- GET /metrics ---- *)

let test_route_metrics () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Obs.with_enabled true @@ fun () ->
  Metrics.reset ();
  let repo = mk_repo () in
  (* drive every tier: server routing, checkout cache, store get/put,
     delta encode and both the MCA and SPT solvers *)
  let r = Server.handle_safe repo (mk_request "/checkout/1") in
  Alcotest.(check int) "checkout ok" 200 r.Http.status;
  let r =
    Server.handle_safe repo
      (mk_request ~meth:"POST" ~query:[ ("strategy", "min-storage") ] "/optimize")
  in
  Alcotest.(check int) "optimize mca ok" 200 r.Http.status;
  let r =
    Server.handle_safe repo
      (mk_request ~meth:"POST"
         ~query:[ ("strategy", "min-recreation") ]
         "/optimize")
  in
  Alcotest.(check int) "optimize spt ok" 200 r.Http.status;
  let r = Server.handle_safe repo (mk_request "/metrics") in
  Alcotest.(check int) "metrics 200" 200 r.Http.status;
  Alcotest.(check bool) "prometheus text body" true
    (contains r.Http.body "# TYPE dsvc_server_requests_total counter");
  Alcotest.(check bool) "request series present" true
    (contains r.Http.body "dsvc_server_requests_total{route=\"/checkout/:name\",status=\"200\"} 1");
  let families = Metrics.family_names () in
  List.iter
    (fun tier ->
      Alcotest.(check bool) (tier ^ " tier instrumented") true
        (List.exists
           (fun f ->
             String.length f >= String.length tier
             && String.sub f 0 (String.length tier) = tier)
           families))
    [ "dsvc_solver_"; "dsvc_delta_"; "dsvc_store_"; "dsvc_server_" ];
  Alcotest.(check bool)
    (Printf.sprintf "at least 20 distinct families (got %d)"
       (List.length families))
    true
    (List.length families >= 20);
  let r = Server.handle_safe repo (mk_request ~query:[ ("format", "json") ] "/metrics") in
  Alcotest.(check int) "json 200" 200 r.Http.status;
  Alcotest.(check bool) "json envelope" true
    (contains r.Http.body {|"metrics":[|});
  (* provenance meta block (same stamps as /health and the bench json) *)
  Alcotest.(check bool) "meta block leads" true
    (contains r.Http.body {|{"meta":{"git_rev":"|});
  Alcotest.(check bool) "meta has uptime" true
    (contains r.Http.body {|"uptime_s":|});
  Metrics.reset ()

(* ---- GET /metrics/cluster, single-node ---- *)

let test_route_metrics_cluster_single () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Obs.with_enabled true @@ fun () ->
  Metrics.reset ();
  let repo = mk_repo () in
  let r = Server.handle_safe repo (mk_request "/checkout/1") in
  Alcotest.(check int) "checkout ok" 200 r.Http.status;
  let r = Server.handle_safe repo (mk_request "/metrics/cluster") in
  Alcotest.(check int) "cluster scrape 200" 200 r.Http.status;
  (* without --peers the node scrapes itself under the "self" label *)
  Alcotest.(check bool) "self re-labelled" true
    (contains r.Http.body {|peer="self"|});
  Alcotest.(check bool) "self marked up" true
    (contains r.Http.body {|dsvc_cluster_scrape_up{peer="self"} 1|});
  (* samples with pre-existing labels get peer injected first *)
  Alcotest.(check bool) "peer label composes with route labels" true
    (contains r.Http.body {|dsvc_server_requests_total{peer="self",route=|});
  (* the repo-lock-holding request refreshed the telemetry gauges, so
     the lock-free scrape can serve the drift score *)
  Alcotest.(check bool) "drift gauge present" true
    (contains r.Http.body "dsvc_store_drift_score{");
  (* HELP/TYPE comments are dropped; only the scrape's own annotation
     comment survives *)
  Alcotest.(check bool) "family comments dropped" false
    (contains r.Http.body "# TYPE");
  Metrics.reset ()

(* ---- GET /metrics/cluster with unreachable peers and hostile
   peer names (DESIGN.md §16) ---- *)

let test_cluster_scrape_dead_peers_and_escaping () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Obs.with_enabled true @@ fun () ->
  Metrics.reset ();
  let repo = mk_repo () in
  ignore (Server.handle_safe repo (mk_request "/checkout/1"));
  (* a ring-member name is host:port in production, but nothing
     enforces that — the exposition must survive the worst case *)
  let self_name = {|se"lf\node|} in
  let dead name =
    (* nothing listens on the discard port: every scrape attempt fails *)
    (name, Client.connect ~timeout:0.5 ~retries:1 ~host:"127.0.0.1" ~port:9 ())
  in
  let evil_peer = "evil\"peer\\x\ny" in
  let cluster =
    {
      Server.local_store = Object_store.memory ();
      replicated =
        Replicated.create ~replicas:1 ~self:self_name
          ~self_backend:(Backend.memory ()) ~peers:[] ();
      peer_clients = [ dead "peer-b"; dead evil_peer ];
    }
  in
  let r = Server.handle_safe ~cluster repo (mk_request "/metrics/cluster") in
  Alcotest.(check int) "partial scrape still 200" 200 r.Http.status;
  let body = r.Http.body in
  (* Prometheus escaping, not OCaml %S: backslash and quote get a
     backslash prefix, a newline becomes backslash-n *)
  Alcotest.(check bool) "self label escaped per the exposition spec" true
    (contains body {|dsvc_cluster_scrape_up{peer="se\"lf\\node"} 1|});
  Alcotest.(check bool) "relabelled samples carry the escaped name" true
    (contains body {|dsvc_server_requests_total{peer="se\"lf\\node",route=|});
  Alcotest.(check bool) "no raw %S decimal escapes anywhere" false
    (contains body {|se\"lf\\node\255|} || contains body "peer=\"se\\\"lf\\\\node\\n");
  (* one scrape_up 0 line per dead peer, names escaped *)
  Alcotest.(check bool) "first dead peer reported down" true
    (contains body {|dsvc_cluster_scrape_up{peer="peer-b"} 0|});
  Alcotest.(check bool) "hostile dead peer reported down, escaped" true
    (contains body
       ("dsvc_cluster_scrape_up{peer=\"evil\\\"peer\\\\x\\ny\"} 0"));
  let scrape_up_lines =
    String.split_on_char '\n' body
    |> List.filter (fun l ->
           String.length l > 21 && String.sub l 0 21 = "dsvc_cluster_scrape_u")
  in
  Alcotest.(check int) "exactly one scrape_up line per node" 3
    (List.length scrape_up_lines);
  (* the body stays machine-parseable around the failures: every
     non-comment line is `name[{labels}] value` with a float value *)
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "unparseable sample line: %S" line
           | Some i -> (
               let v =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               match float_of_string_opt v with
               | Some _ -> ()
               | None -> Alcotest.failf "non-numeric sample value: %S" line));
  Metrics.reset ()

(* ---- GET /timeseries and GET /alerts ---- *)

let test_route_timeseries_and_alerts () =
  let module Timeseries = Versioning_obs.Timeseries in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let repo = mk_repo () in
  (* an un-sampled server answers with an empty listing, not an error *)
  let r = Server.handle_safe repo (mk_request "/timeseries") in
  Alcotest.(check int) "empty listing 200" 200 r.Http.status;
  Alcotest.(check string) "empty body" "" r.Http.body;
  let ts = Repo.timeseries repo in
  let now = Unix.gettimeofday () in
  Timeseries.record ts ~now ~metric:"sli:scrape_up" 1.0;
  Timeseries.record ts ~now ~metric:"other series" 3.5;
  let r = Server.handle_safe repo (mk_request "/timeseries") in
  Alcotest.(check string) "series listing, sorted" "other series\nsli:scrape_up\n"
    r.Http.body;
  let r =
    Server.handle_safe repo
      (mk_request ~query:[ ("metric", "sli:scrape_up"); ("since", "60") ]
         "/timeseries")
  in
  Alcotest.(check int) "series query 200" 200 r.Http.status;
  (match String.split_on_char '\n' (String.trim r.Http.body) with
  | [ line ] -> (
      match String.split_on_char ' ' line with
      | [ _time; count; avg; _min; _max; _last ] ->
          Alcotest.(check (option int)) "count column" (Some 1)
            (int_of_string_opt count);
          Alcotest.(check (option (float 1e-9))) "avg column" (Some 1.0)
            (float_of_string_opt avg)
      | cols -> Alcotest.failf "expected 6 columns, got %d" (List.length cols))
  | ls -> Alcotest.failf "expected one bucket line, got %d" (List.length ls));
  let r =
    Server.handle_safe repo
      (mk_request ~query:[ ("metric", "no such series") ] "/timeseries")
  in
  Alcotest.(check string) "unknown series is empty, not 404" "" r.Http.body;
  (* the alert engine answers even when the sampler never ran: every
     stock rule present, inactive *)
  let r = Server.handle_safe repo (mk_request "/alerts") in
  Alcotest.(check int) "alerts 200" 200 r.Http.status;
  Alcotest.(check bool) "stock rules listed" true
    (contains r.Http.body "cluster_scrape_up");
  Alcotest.(check bool) "quiet engine reports inactive" true
    (contains r.Http.body "inactive")

(* ---- the DSVC_OBS=0 kill switch and the sampler timer ---- *)

let with_env name v f =
  let old = Sys.getenv_opt name in
  Unix.putenv name v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some s -> s | None -> ""))
    f

(* Boot serve on the loop thread, give its reactor a few hundred
   milliseconds of idle time, then satisfy max_requests so it exits.
   A local socket helper because http_get is defined further down. *)
let serve_briefly repo ~port =
  let server =
    Thread.create
      (fun () -> ignore (Server.serve repo ~port ~max_requests:1 ()))
      ()
  in
  Unix.sleepf 0.5;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let oc = Unix.out_channel_of_descr sock in
      output_string oc "GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
      flush oc;
      let ic = Unix.in_channel_of_descr sock in
      try
        while true do
          ignore (input_char ic)
        done
      with End_of_file -> ());
  Thread.join server

let test_obs_off_never_arms_the_sampler () =
  let module Obs = Versioning_obs.Obs in
  let module Timeseries = Versioning_obs.Timeseries in
  let was_enabled = Obs.enabled () in
  Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
  (* a step far below the serve window: if the timer were armed the
     ring could not stay empty *)
  with_env "DSVC_TS_STEP" "0.05" @@ fun () ->
  with_env "DSVC_OBS" "0" @@ fun () ->
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"first" "alpha\nbeta") in
  serve_briefly repo ~port:(18501 + (Unix.getpid () mod 700));
  Alcotest.(check bool) "ring stayed empty" true
    (Timeseries.is_empty (Repo.timeseries repo));
  Repo.close repo;
  Alcotest.(check bool) "no timeseries ledger written" false
    (Sys.file_exists (Filename.concat (Filename.concat dir ".dsvc") "timeseries"))

let test_sampler_ticks_under_serve () =
  let module Obs = Versioning_obs.Obs in
  let module Timeseries = Versioning_obs.Timeseries in
  let was_enabled = Obs.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled was_enabled;
      Versioning_obs.Metrics.reset ())
    (fun () ->
      with_env "DSVC_TS_STEP" "0.05" @@ fun () ->
      with_env "DSVC_OBS" "1" @@ fun () ->
      let dir = temp_dir () in
      let repo = ok (Repo.init ~path:dir) in
      let _ = ok (Repo.commit repo ~message:"first" "alpha\nbeta") in
      serve_briefly repo ~port:(19201 + (Unix.getpid () mod 700));
      (* several 50 ms steps elapsed inside serve_briefly: the reactor
         timer must have sampled the registry into the ring *)
      Alcotest.(check bool) "sampler recorded series" false
        (Timeseries.is_empty (Repo.timeseries repo));
      (* the ring survives close/open through .dsvc/timeseries *)
      let names = Timeseries.metrics (Repo.timeseries repo) in
      Repo.close repo;
      Alcotest.(check bool) "ledger written on close" true
        (Sys.file_exists
           (Filename.concat (Filename.concat dir ".dsvc") "timeseries"));
      let repo2 = ok (Repo.open_repo ~path:dir) in
      Alcotest.(check (list string)) "series survive reopen" names
        (Timeseries.metrics (Repo.timeseries repo2));
      Repo.close repo2)

let test_timeseries_save_fault () =
  let module Obs = Versioning_obs.Obs in
  let module Timeseries = Versioning_obs.Timeseries in
  Faults.reset ();
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let _ = ok (Repo.commit repo ~message:"a" "alpha\n") in
  Obs.with_enabled true (fun () ->
      Timeseries.record (Repo.timeseries repo) ~now:100.0 ~metric:"m" 1.0;
      Faults.arm ~site:"timeseries.save" (Faults.Fail "injected: disk full");
      (match Repo.flush_timeseries repo with
      | Ok () -> Alcotest.fail "flush must surface the injected failure"
      | Error _ -> ());
      Faults.reset ();
      ok (Repo.flush_timeseries repo));
  Repo.close repo;
  (* the failed flush corrupted nothing: the repo reopens, verifies,
     and the ring from the successful flush is intact *)
  let repo2 = ok (Repo.open_repo ~path:dir) in
  (match Repo.verify repo2 with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "repo must still verify: %s" (String.concat "; " problems));
  Alcotest.(check (list string)) "ring recovered" [ "m" ]
    (Timeseries.metrics (Repo.timeseries repo2));
  Repo.close repo2

(* ---- end-to-end over a real socket ---- *)

let http_get host port path =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let oc = Unix.out_channel_of_descr sock in
      let ic = Unix.in_channel_of_descr sock in
      output_string oc
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
           path);
      flush oc;
      let buf = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)

let test_socket_end_to_end () =
  let repo = mk_repo () in
  let port = 18077 + (Unix.getpid () mod 1000) in
  let server = Thread.create (fun () ->
      ignore (Server.serve repo ~port ~max_requests:2 ()))
      ()
  in
  Unix.sleepf 0.2;
  let raw = http_get "127.0.0.1" port "/checkout/1" in
  Alcotest.(check bool) "status line" true
    (String.length raw > 12 && String.sub raw 0 12 = "HTTP/1.1 200");
  Alcotest.(check bool) "payload present" true
    (let n = String.length raw in
     n >= 10 && String.sub raw (n - 10) 10 = "alpha\nbeta");
  let raw = http_get "127.0.0.1" port "/stats" in
  Alcotest.(check bool) "second request ok" true
    (String.length raw > 12 && String.sub raw 0 12 = "HTTP/1.1 200");
  Thread.join server

let test_graceful_shutdown () =
  (* safety net: if the server isn't in its accept loop yet, a stray
     SIGTERM must not kill the test runner *)
  let old = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigterm old)
    (fun () ->
      (* earlier tests may have left sampled events in the flight ring;
         drop them so the signal-initiated shutdown below doesn't dump
         a post-mortem file into the test runner's cwd *)
      Versioning_obs.Flight.reset ();
      let repo = mk_repo () in
      let port = 17512 + (Unix.getpid () mod 900) in
      let finished = ref false in
      let _server =
        Thread.create
          (fun () ->
            ignore (Server.serve repo ~port ());
            finished := true)
          ()
      in
      Unix.sleepf 0.4;
      let attempts = ref 0 in
      while (not !finished) && !attempts < 20 do
        incr attempts;
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        Unix.sleepf 0.3
      done;
      Alcotest.(check bool) "server stopped gracefully" true !finished)

(* ---- request tracing across the client/server boundary ---- *)

module Obs = Versioning_obs.Obs
module Ctx = Versioning_obs.Context
module Trace = Versioning_obs.Trace
module Flight = Versioning_obs.Flight
module Logctx = Versioning_obs.Logctx

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The ISSUE's acceptance test: a traced client→server optimize yields
   one trace — client and server spans share the caller's trace id,
   the server span nests under the client's, and the access log line
   carries the client-sent request id. In-process threads share the
   span ring, so the "client" and "server" sides are both visible. *)
let test_trace_propagation_end_to_end () =
  Obs.with_enabled true @@ fun () ->
  let buf = Buffer.create 1024 in
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter Logs.nop_reporter;
      Logs.set_level (Some Logs.Warning);
      Flight.reset ())
  @@ fun () ->
  Trace.reset ();
  Flight.reset ();
  Logs.set_reporter (Logctx.reporter ~out:(Buffer.add_string buf) ());
  Logs.set_level (Some Logs.Info);
  let repo = mk_repo () in
  let port = 18200 + (Unix.getpid () mod 900) in
  let server =
    Thread.create
      (fun () -> ignore (Server.serve repo ~port ~max_requests:1 ()))
      ()
  in
  Unix.sleepf 0.2;
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  let ctx = Ctx.make ~sampled:false () in
  let stats =
    Ctx.with_context ctx (fun () -> Client.optimize client "min-storage")
  in
  Thread.join server;
  (match stats with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "optimize failed: %s" e);
  let spans = Trace.spans () in
  let find name = List.find_opt (fun s -> s.Trace.name = name) spans in
  let client_span =
    match find "client.request" with
    | Some s -> s
    | None -> Alcotest.fail "client.request span missing"
  in
  let server_span =
    match find "server.request" with
    | Some s -> s
    | None -> Alcotest.fail "server.request span missing"
  in
  Alcotest.(check bool) "optimize span present" true (find "optimize" <> None);
  Alcotest.(check (option string)) "client span carries the caller's trace id"
    (Some ctx.Ctx.trace_id) client_span.Trace.trace;
  Alcotest.(check (option string)) "server span joins the same trace"
    (Some ctx.Ctx.trace_id) server_span.Trace.trace;
  Alcotest.(check (option int)) "server span nests under the client span"
    (Some client_span.Trace.id) server_span.Trace.parent;
  let json = Trace.to_chrome_json () in
  Alcotest.(check bool) "chrome export carries the trace id" true
    (contains json ctx.Ctx.trace_id);
  let log = Buffer.contents buf in
  Alcotest.(check bool) "access log records the request" true
    (contains log "POST /optimize -> 200");
  Alcotest.(check bool) "access log carries the client request id" true
    (contains log ctx.Ctx.request_id)

let test_trace_endpoint_and_request_id_echo () =
  Obs.with_enabled true @@ fun () ->
  Trace.reset ();
  let repo = mk_repo () in
  let ctx = Ctx.make ~sampled:false () in
  let headers =
    [
      ("traceparent", Ctx.to_traceparent ~span:7 ctx);
      ("x-dsvc-request-id", ctx.Ctx.request_id);
    ]
  in
  let r = Server.handle_safe repo (mk_request ~headers "/checkout/1") in
  Alcotest.(check int) "200" 200 r.Http.status;
  Alcotest.(check (option string)) "request id echoed in a response header"
    (Some ctx.Ctx.request_id)
    (List.assoc_opt "X-Dsvc-Request-Id" r.Http.headers);
  let server_span =
    List.find (fun s -> s.Trace.name = "server.request") (Trace.spans ())
  in
  Alcotest.(check (option string)) "span joined the header's trace"
    (Some ctx.Ctx.trace_id) server_span.Trace.trace;
  Alcotest.(check (option int)) "span parented on the header's span id"
    (Some 7) server_span.Trace.parent;
  let r =
    Server.handle_safe repo (mk_request ("/trace/" ^ ctx.Ctx.request_id))
  in
  Alcotest.(check int) "/trace/:id answers" 200 r.Http.status;
  Alcotest.(check bool) "summary names the request" true
    (contains r.Http.body ctx.Ctx.request_id);
  Alcotest.(check bool) "summary names the route" true
    (contains r.Http.body "/checkout/:name");
  Alcotest.(check bool) "summary includes the server span" true
    (contains r.Http.body "server.request");
  let r = Server.handle_safe repo (mk_request "/trace/nosuch") in
  Alcotest.(check int) "unknown id is 404" 404 r.Http.status

(* With the gate off and the context unsampled, tracing must change
   nothing: plans stay byte-identical across identical repositories
   and neither the span ring nor the flight recorder sees an event. *)
let test_off_mode_is_silent () =
  Obs.with_enabled false @@ fun () ->
  Fun.protect ~finally:(fun () -> Flight.reset ()) @@ fun () ->
  Trace.reset ();
  Flight.reset ();
  let run () =
    let repo = mk_repo () in
    let ctx = Ctx.make ~sampled:false () in
    let headers = [ ("traceparent", Ctx.to_traceparent ctx) ] in
    let r =
      Server.handle_safe repo
        (mk_request ~headers ~meth:"POST"
           ~query:[ ("strategy", "min-storage") ]
           "/optimize")
    in
    Alcotest.(check int) "optimize ok" 200 r.Http.status;
    r.Http.body
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "plans byte-identical with tracing off" a b;
  Alcotest.(check int) "no spans recorded" 0 (Trace.span_count ());
  Alcotest.(check int) "no flight events" 0 (Flight.event_count ())

(* ---- /health and the peer blob routes (pure routing, no sockets) ---- *)

let kv_of body =
  String.split_on_char '\n' (String.trim body)
  |> List.filter_map (fun l ->
         match String.index_opt l ' ' with
         | Some i ->
             Some
               (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
         | None -> None)

let test_route_health () =
  let repo = mk_repo () in
  let r = Server.handle repo (mk_request "/health") in
  Alcotest.(check int) "200" 200 r.Http.status;
  let kv = kv_of r.Http.body in
  Alcotest.(check (option string)) "status" (Some "ok")
    (List.assoc_opt "status" kv);
  Alcotest.(check (option string)) "journal clean" (Some "clean")
    (List.assoc_opt "journal" kv);
  Alcotest.(check bool) "generation present" true
    (List.mem_assoc "generation" kv);
  (* build/process provenance (same stamps as metrics meta and bench) *)
  Alcotest.(check bool) "build rev present" true (List.mem_assoc "build" kv);
  Alcotest.(check (option string)) "compiler version" (Some Sys.ocaml_version)
    (List.assoc_opt "ocaml" kv);
  Alcotest.(check bool) "uptime present" true (List.mem_assoc "uptime_s" kv);
  (* single-node: no cluster fields *)
  Alcotest.(check bool) "no ring epoch without --peers" false
    (List.mem_assoc "ring_epoch" kv)

let test_blob_routes_roundtrip () =
  let repo = mk_repo () in
  let content = "blob payload\nwith lines" in
  let digest = Content_hash.hex content in
  (* store *)
  let r =
    Server.handle repo (mk_request ~meth:"POST" ~body:content ("/blob/" ^ digest))
  in
  Alcotest.(check int) "stored" 201 r.Http.status;
  (* digest mismatch is refused, not laundered *)
  let r =
    Server.handle repo (mk_request ~meth:"POST" ~body:"other" ("/blob/" ^ digest))
  in
  Alcotest.(check int) "mismatch rejected" 409 r.Http.status;
  (* malformed digests never reach the store *)
  let r = Server.handle repo (mk_request "/blob/nothex") in
  Alcotest.(check int) "bad digest is a 400" 400 r.Http.status;
  (* fetch + stat + list *)
  let r = Server.handle repo (mk_request ("/blob/" ^ digest)) in
  Alcotest.(check int) "found" 200 r.Http.status;
  (* blob responses stream: the body must be materialized *)
  Alcotest.(check int) "length known up front" (String.length content)
    (Http.body_length r);
  Alcotest.(check string) "bytes intact" content (ok (Http.response_body r));
  let r = Server.handle repo (mk_request ("/blob/" ^ digest ^ "/stat")) in
  Alcotest.(check int) "stat 200" 200 r.Http.status;
  let r = Server.handle repo (mk_request "/blobs") in
  Alcotest.(check bool) "listed" true
    (String.split_on_char '\n' r.Http.body
    |> List.exists (fun l ->
           match String.split_on_char ' ' l with
           | [ d; _size ] -> d = digest
           | _ -> false));
  (* delete *)
  let r = Server.handle repo (mk_request ~meth:"DELETE" ("/blob/" ^ digest)) in
  Alcotest.(check int) "deleted" 200 r.Http.status;
  let r = Server.handle repo (mk_request ("/blob/" ^ digest)) in
  Alcotest.(check int) "gone" 404 r.Http.status

let test_meta_sync_generation_gate () =
  let repo = mk_repo () in
  let exported = ok (Repo.export_meta repo) in
  (* replaying a node's own metadata is stale, not an error *)
  let r =
    Server.handle repo (mk_request ~meth:"POST" ~body:exported "/meta/sync")
  in
  Alcotest.(check int) "accepted" 200 r.Http.status;
  Alcotest.(check string) "own generation is stale" "stale\n" r.Http.body;
  (* garbage is refused *)
  let r =
    Server.handle repo (mk_request ~meth:"POST" ~body:"not metadata" "/meta/sync")
  in
  Alcotest.(check int) "garbage rejected" 409 r.Http.status;
  (* GET /meta serves the exact bytes *)
  let r = Server.handle repo (mk_request "/meta") in
  Alcotest.(check int) "meta served" 200 r.Http.status;
  Alcotest.(check string) "byte-exact" exported r.Http.body

let test_anti_entropy_requires_cluster () =
  let repo = mk_repo () in
  let r = Server.handle repo (mk_request ~meth:"POST" "/anti-entropy") in
  Alcotest.(check int) "409 without --peers" 409 r.Http.status

let suite =
  [
    Alcotest.test_case "http parse GET" `Quick test_http_parse_get;
    Alcotest.test_case "route /health" `Quick test_route_health;
    Alcotest.test_case "blob routes roundtrip" `Quick test_blob_routes_roundtrip;
    Alcotest.test_case "meta sync generation gate" `Quick
      test_meta_sync_generation_gate;
    Alcotest.test_case "anti-entropy needs cluster" `Quick
      test_anti_entropy_requires_cluster;
    Alcotest.test_case "http parse POST" `Quick test_http_parse_post_body;
    Alcotest.test_case "http malformed" `Quick test_http_malformed;
    Alcotest.test_case "percent decode" `Quick test_percent_decode;
    Alcotest.test_case "route /versions" `Quick test_route_versions;
    Alcotest.test_case "route /checkout" `Quick test_route_checkout;
    Alcotest.test_case "route /commit" `Quick test_route_commit;
    Alcotest.test_case "route stats/optimize/verify" `Quick
      test_route_stats_optimize_verify;
    Alcotest.test_case "route branches/tags/diff" `Quick
      test_route_branches_tags_diff;
    Alcotest.test_case "error status mapping" `Quick test_error_status_mapping;
    Alcotest.test_case "raising handler yields 500" `Quick
      test_raising_handler_yields_500;
    Alcotest.test_case "route /metrics" `Quick test_route_metrics;
    Alcotest.test_case "route /metrics/cluster single-node" `Quick
      test_route_metrics_cluster_single;
    Alcotest.test_case "cluster scrape: dead peers and label escaping" `Quick
      test_cluster_scrape_dead_peers_and_escaping;
    Alcotest.test_case "routes /timeseries and /alerts" `Quick
      test_route_timeseries_and_alerts;
    Alcotest.test_case "DSVC_OBS=0 never arms the sampler" `Quick
      test_obs_off_never_arms_the_sampler;
    Alcotest.test_case "sampler ticks under serve and persists" `Quick
      test_sampler_ticks_under_serve;
    Alcotest.test_case "injected fault at timeseries.save" `Quick
      test_timeseries_save_fault;
    Alcotest.test_case "socket end-to-end" `Quick test_socket_end_to_end;
    Alcotest.test_case "graceful shutdown" `Quick test_graceful_shutdown;
    Alcotest.test_case "trace propagation end-to-end" `Quick
      test_trace_propagation_end_to_end;
    Alcotest.test_case "trace endpoint and request id echo" `Quick
      test_trace_endpoint_and_request_id_echo;
    Alcotest.test_case "off mode is silent" `Quick test_off_mode_is_silent;
  ]
