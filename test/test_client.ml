(* The typed HTTP client against a live server thread. *)

open Versioning_store
module Faults = Versioning_util.Faults

let temp_dir () =
  let path = Filename.temp_file "dsvc_client" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let with_server k =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let _ = ok (Repo.commit repo ~message:"first" "alpha\nbeta") in
  let _ = ok (Repo.commit repo ~message:"second" "alpha\nbeta\ngamma") in
  let port = 19100 + (Unix.getpid () mod 800) in
  (* generous request budget; the server stops with the thread at join *)
  let server =
    Thread.create
      (fun () -> ignore (Server.serve repo ~port ~max_requests:32 ()))
      ()
  in
  Unix.sleepf 0.2;
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  let finally () =
    (* drain the remaining request budget so the thread exits *)
    let rec drain n =
      if n > 0 then begin
        (match Client.request client ~meth:"GET" ~path:"/stats" () with
        | Ok _ -> drain (n - 1)
        | Error _ -> ())
      end
    in
    drain 32;
    Thread.join server
  in
  Fun.protect ~finally (fun () -> k client repo)

let test_full_session () =
  with_server (fun client repo ->
      (* versions *)
      let vs = ok (Client.versions client) in
      Alcotest.(check int) "two versions" 2 (List.length vs);
      (match vs with
      | (id, parents, msg) :: _ ->
          Alcotest.(check int) "newest id" 2 id;
          Alcotest.(check (list int)) "parents" [ 1 ] parents;
          Alcotest.(check string) "message" "second" msg
      | [] -> Alcotest.fail "no versions");
      (* checkout *)
      Alcotest.(check string) "checkout" "alpha\nbeta"
        (ok (Client.checkout client "1"));
      (* commit through the wire, then read back locally *)
      let id =
        ok (Client.commit client ~message:"via http" "alpha\nbeta\ngamma\ndelta")
      in
      Alcotest.(check int) "new id" 3 id;
      Alcotest.(check string) "server stored it" "alpha\nbeta\ngamma\ndelta"
        (ok (Repo.checkout repo 3));
      (* tags and branches *)
      ok (Client.tag client "v1" ~at:1 ());
      Alcotest.(check string) "checkout by tag" "alpha\nbeta"
        (ok (Client.checkout client "v1"));
      ok (Client.branch client "exp" ~at:1 ());
      ok (Client.switch client "main");
      (* diff applies *)
      let d = ok (Client.diff client "1" "2") in
      Alcotest.(check string) "diff applies" "alpha\nbeta\ngamma"
        (Versioning_delta.Line_diff.apply "alpha\nbeta"
           (Versioning_delta.Line_diff.decode d));
      (* stats + optimize + verify *)
      let st = ok (Client.stats client) in
      Alcotest.(check (option string)) "stats versions" (Some "3")
        (List.assoc_opt "versions" st);
      let st = ok (Client.optimize client "min-storage") in
      Alcotest.(check bool) "optimize returns stats" true
        (List.mem_assoc "storage_bytes" st);
      ok (Client.verify client);
      (* errors surface *)
      (match Client.checkout client "99" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown version must error");
      match Client.optimize client "bogus" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad strategy must error")

let test_connection_refused () =
  let client = Client.connect ~host:"127.0.0.1" ~port:1 () in
  match Client.versions client with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must fail to connect"

let test_hostname_resolution () =
  with_server (fun _client _repo ->
      (* a DNS name, not an IP literal, must resolve via getaddrinfo *)
      let port = 19100 + (Unix.getpid () mod 800) in
      let named = Client.connect ~host:"localhost" ~port () in
      let st = ok (Client.stats named) in
      Alcotest.(check bool) "stats over resolved host" true
        (List.mem_assoc "versions" st))

let test_get_retries_dropped_connection () =
  Faults.reset ();
  with_server (fun client _repo ->
      (* the server drops the first response on the floor; the GET is
         idempotent, so the client silently retries and succeeds *)
      Faults.arm ~site:"http.write_response" Faults.Drop;
      let st = ok (Client.stats client) in
      Alcotest.(check bool) "retried to success" true
        (List.mem_assoc "versions" st);
      Alcotest.(check bool) "drop actually fired" true
        (Faults.hits ~site:"http.write_response" >= 1))

let test_post_not_retried_after_send () =
  Faults.reset ();
  with_server (fun client repo ->
      let before = List.length (Repo.log repo) in
      (* response dropped AFTER the server applied the commit: the
         client must surface the error, not retry (and double-commit) *)
      Faults.arm ~site:"http.write_response" Faults.Drop;
      (match Client.commit client ~message:"once" "fresh content" with
      | Ok _ -> Alcotest.fail "dropped response must surface as an error"
      | Error _ -> ());
      Alcotest.(check int) "commit applied exactly once" (before + 1)
        (List.length (Repo.log repo)))

let test_request_counters_by_status () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Obs.with_enabled true @@ fun () ->
  with_server (fun client _repo ->
      Metrics.reset ();
      (match Client.checkout client "1" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "checkout failed: %s" e);
      (match Client.checkout client "99" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown version must error");
      let text = Metrics.to_prometheus () in
      Alcotest.(check bool) "200s counted" true
        (contains text
           {|dsvc_client_requests_total{method="GET",status="200"} 1|});
      Alcotest.(check bool) "404s counted separately" true
        (contains text
           {|dsvc_client_requests_total{method="GET",status="404"} 1|});
      Metrics.reset ())

let suite =
  [
    Alcotest.test_case "full client session" `Quick test_full_session;
    Alcotest.test_case "connection refused" `Quick test_connection_refused;
    Alcotest.test_case "hostname resolution" `Quick test_hostname_resolution;
    Alcotest.test_case "GET retries dropped connection" `Quick
      test_get_retries_dropped_connection;
    Alcotest.test_case "POST not retried after send" `Quick
      test_post_not_retried_after_send;
    Alcotest.test_case "request counters by status" `Quick
      test_request_counters_by_status;
  ]
