(* Online storage decisions (the §7 future-work extension). *)

open Versioning_core
module Prng = Versioning_util.Prng

let w delta phi : Aux_graph.weight = { Aux_graph.delta; phi }

let test_first_version_materialized () =
  let t = Online.create Online.Min_delta in
  let v = Result.get_ok (Online.add_version t ~materialization:(w 100. 100.) ~candidates:[]) in
  Alcotest.(check int) "first id" 1 v;
  Alcotest.(check int) "materialized" 0 (Online.parent t 1);
  Alcotest.(check (float 0.)) "storage" 100. (Online.storage_cost t);
  Alcotest.(check (float 0.)) "recreation" 100. (Online.recreation_cost t 1)

let test_min_delta_policy () =
  let t = Online.create Online.Min_delta in
  let _ = Result.get_ok (Online.add_version t ~materialization:(w 100. 100.) ~candidates:[]) in
  let v2 =
    Result.get_ok
      (Online.add_version t ~materialization:(w 110. 110.)
         ~candidates:[ (1, w 5. 5.) ])
  in
  Alcotest.(check int) "delta chosen" 1 (Online.parent t v2);
  Alcotest.(check (float 0.)) "chain recreation" 105. (Online.recreation_cost t v2);
  (* a version whose delta candidates are all bigger than full
     materializes *)
  let v3 =
    Result.get_ok
      (Online.add_version t ~materialization:(w 50. 50.)
         ~candidates:[ (1, w 80. 80.); (2, w 60. 60.) ])
  in
  Alcotest.(check int) "materialization cheaper" 0 (Online.parent t v3)

let test_bounded_max_policy () =
  let theta = 120.0 in
  let t = Online.create (Online.Bounded_max theta) in
  let _ = Result.get_ok (Online.add_version t ~materialization:(w 100. 100.) ~candidates:[]) in
  (* chain grows while theta allows *)
  let v2 =
    Result.get_ok
      (Online.add_version t ~materialization:(w 100. 100.)
         ~candidates:[ (1, w 10. 10.) ])
  in
  Alcotest.(check int) "within theta: delta" 1 (Online.parent t v2);
  (* next delta would hit 100+10+15 > 120: materialize despite the
     cheap delta *)
  let v3 =
    Result.get_ok
      (Online.add_version t ~materialization:(w 100. 100.)
         ~candidates:[ (2, w 15. 15.) ])
  in
  Alcotest.(check int) "theta forces materialization" 0 (Online.parent t v3);
  Alcotest.(check bool) "bound holds" true (Online.max_recreation t <= theta)

let test_unknown_source () =
  let t = Online.create Online.Min_delta in
  match Online.add_version t ~materialization:(w 1. 1.) ~candidates:[ (7, w 1. 1.) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown source must fail"

let random_run policy rng n =
  let t = Online.create policy in
  for _ = 1 to n do
    let k = Online.n_versions t in
    let candidates =
      List.filter_map
        (fun src ->
          if Prng.bernoulli rng 0.5 then
            let c = float_of_int (Prng.int_in rng 1 40) in
            Some (src, w c c)
          else None)
        (List.init k (fun i -> i + 1))
    in
    let c = float_of_int (Prng.int_in rng 50 150) in
    match Online.add_version t ~materialization:(w c c) ~candidates with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "add_version: %s" e
  done;
  t

let test_snapshot_consistency () =
  let rng = Prng.create ~seed:131 in
  for _ = 1 to 20 do
    let t = random_run Online.Min_delta rng 25 in
    let sg = Online.to_storage_graph t in
    Alcotest.(check (float 1e-6)) "storage agrees"
      (Online.storage_cost t)
      (Storage_graph.storage_cost sg);
    for v = 1 to Online.n_versions t do
      Alcotest.(check (float 1e-6)) "recreation agrees"
        (Online.recreation_cost t v)
        (Storage_graph.recreation_cost sg v)
    done
  done

let test_online_vs_offline_drift () =
  let rng = Prng.create ~seed:137 in
  for _ = 1 to 10 do
    let t = random_run Online.Min_delta rng 30 in
    let drift = Result.get_ok (Online.drift t Solver.Minimize_storage) in
    (* online can never beat the offline optimum *)
    Alcotest.(check bool) "drift >= 1" true (drift >= 1.0 -. 1e-9);
    (* reoptimizing closes the gap entirely *)
    Result.get_ok (Online.reoptimize t Solver.Minimize_storage);
    let drift' = Result.get_ok (Online.drift t Solver.Minimize_storage) in
    Alcotest.(check (float 1e-6)) "drift eliminated" 1.0 drift'
  done

let test_reoptimize_preserves_validity () =
  let rng = Prng.create ~seed:139 in
  let t = random_run (Online.Bounded_max 400.0) rng 30 in
  Result.get_ok (Online.reoptimize t Solver.Minimize_storage);
  let sg = Online.to_storage_graph t in
  Fixtures.check_valid (Online.aux_graph t) sg;
  (* online decisions continue after a reoptimize *)
  let v =
    Result.get_ok
      (Online.add_version t ~materialization:(w 90. 90.)
         ~candidates:[ (1, w 9. 9.) ])
  in
  Alcotest.(check int) "continues" 31 v

let test_bounded_max_always_holds () =
  let rng = Prng.create ~seed:149 in
  for _ = 1 to 10 do
    let theta = 250.0 in
    let t = random_run (Online.Bounded_max theta) rng 40 in
    (* every version whose materialization fits theta respects it *)
    for v = 1 to Online.n_versions t do
      if Online.parent t v <> 0 then
        Alcotest.(check bool) "delta-stored versions respect theta" true
          (Online.recreation_cost t v <= theta +. 1e-9)
    done
  done

let test_drift_recreation_objectives () =
  (* drift is defined for every problem; recreation-objective problems
     compare the matching objective *)
  let rng = Prng.create ~seed:151 in
  let t = random_run Online.Min_delta rng 20 in
  let d_sum =
    Result.get_ok (Online.drift t (Solver.Min_sum_recreation_bounded_storage 1e12))
  in
  Alcotest.(check bool) "sum-objective drift >= ... defined" true
    (Float.is_finite d_sum && d_sum > 0.0);
  let d_max =
    Result.get_ok (Online.drift t (Solver.Min_max_recreation_bounded_storage 1e12))
  in
  Alcotest.(check bool) "max-objective drift defined" true
    (Float.is_finite d_max && d_max > 0.0);
  (* empty tracker: drift trivially 1 *)
  let empty = Online.create Online.Min_delta in
  Alcotest.(check (float 0.)) "empty drift" 1.0
    (Result.get_ok (Online.drift empty Solver.Minimize_storage))

let suite =
  [
    Alcotest.test_case "first version materialized" `Quick
      test_first_version_materialized;
    Alcotest.test_case "min-delta policy" `Quick test_min_delta_policy;
    Alcotest.test_case "bounded-max policy" `Quick test_bounded_max_policy;
    Alcotest.test_case "unknown source" `Quick test_unknown_source;
    Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency;
    Alcotest.test_case "drift vs offline" `Quick test_online_vs_offline_drift;
    Alcotest.test_case "reoptimize validity" `Quick
      test_reoptimize_preserves_validity;
    Alcotest.test_case "bounded-max holds" `Quick test_bounded_max_always_holds;
    Alcotest.test_case "drift on recreation objectives" `Quick
      test_drift_recreation_objectives;
  ]
