(* Backend equivalence: the filesystem, in-memory, and remote-peer
   backends must be observationally identical — same results for the
   same op sequence, same physical sizes (shared framing), and the
   same outcomes under injected write faults. *)

open Versioning_store
module Faults = Versioning_util.Faults

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let temp_dir () =
  let path = Filename.temp_file "dsvc_backend" "" in
  Sys.remove path;
  path

let digest_of = Content_hash.hex

(* ---- op sequences ---- *)

type op = Put of string | Get of string | Mem of string | Delete of string

(* Observed behaviour of one op: enough to compare backends without
   comparing error strings (those legitimately differ per backend). *)
let apply (b : Backend.t) op =
  match op with
  | Put content -> (
      match b.put ~digest:(digest_of content) content with
      | Ok () -> "put:ok"
      | Error _ -> "put:error")
  | Get content -> (
      match b.get ~digest:(digest_of content) with
      | Ok got -> "get:" ^ got
      | Error _ -> "get:absent")
  | Mem content ->
      if b.mem ~digest:(digest_of content) then "mem:yes" else "mem:no"
  | Delete content ->
      b.delete ~digest:(digest_of content);
      "deleted"

let final_state (b : Backend.t) =
  let listing = List.sort compare (b.list ()) in
  ( listing,
    b.total_bytes (),
    List.for_all (fun (d, _) -> b.mem ~digest:d) listing )

let run_sequence b ops = (List.map (apply b) ops, final_state b)

(* small closed universe of contents so ops collide meaningfully *)
let contents =
  [|
    "";
    "a";
    "alpha\nbeta\ngamma";
    String.make 400 'x';
    String.concat "\n" (List.init 40 (fun i -> "row " ^ string_of_int i));
    "\x00\x01\xff binary-ish \x7f";
  |]

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (pair (int_bound 3) (int_bound (Array.length contents - 1)))
    >|= List.map (fun (kind, i) ->
            let c = contents.(i) in
            match kind with
            | 0 -> Put c
            | 1 -> Get c
            | 2 -> Mem c
            | _ -> Delete c))

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | Put c -> "put " ^ String.escaped (String.sub c 0 (min 8 (String.length c)))
         | Get c -> "get " ^ string_of_int (String.length c)
         | Mem c -> "mem " ^ string_of_int (String.length c)
         | Delete c -> "del " ^ string_of_int (String.length c))
       ops)

let with_fs_backend k =
  let dir = temp_dir () in
  let b = ok (Backend.fs ~dir) in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> k b)

let qcheck_fs_memory_equivalent =
  QCheck.Test.make ~name:"fs and memory backends are observationally equal"
    ~count:60
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      Faults.reset ();
      with_fs_backend (fun fs ->
          let mem = Backend.memory () in
          run_sequence fs ops = run_sequence mem ops))

(* ---- equivalence under injected faults (deterministic cases) ---- *)

(* Both backends consult the ["object_store.write"] site only for a
   new digest (idempotent puts short-circuit), so arming the same
   fault before the same sequence must fail the same op and leave the
   same surviving state. *)
let fault_cases =
  [
    ("fail first write", Faults.Fail "disk full", 0);
    ("fail third write", Faults.Fail "disk full", 2);
    ("corrupt first write", Faults.Corrupt 1, 0);
    ("corrupt second write", Faults.Corrupt 5, 1);
  ]

let fault_ops =
  [
    Put contents.(2);
    Get contents.(2);
    Put contents.(3);
    Put contents.(2);
    (* idempotent: no site consult *)
    Put contents.(4);
    Get contents.(3);
    Get contents.(4);
    Mem contents.(2);
    Mem contents.(4);
  ]

let test_fault_equivalence () =
  List.iter
    (fun (label, action, after) ->
      let run b =
        Faults.reset ();
        Faults.arm ~site:"object_store.write" ~after action;
        let r = run_sequence b fault_ops in
        Faults.reset ();
        r
      in
      let from_fs = with_fs_backend run in
      let from_mem = run (Backend.memory ()) in
      Alcotest.(check bool)
        (label ^ ": identical observable behaviour")
        true
        (from_fs = from_mem))
    fault_cases

(* ---- the remote backend against a live peer ---- *)

let with_remote k =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let port = 19900 + (Unix.getpid () mod 800) in
  let server =
    Thread.create
      (fun () -> ignore (Server.serve repo ~port ~max_requests:64 ()))
      ()
  in
  Unix.sleepf 0.2;
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  let finally () =
    let rec drain n =
      if n > 0 then
        match Client.request client ~meth:"GET" ~path:"/health" () with
        | Ok _ -> drain (n - 1)
        | Error _ -> ()
    in
    drain 64;
    Thread.join server
  in
  Fun.protect ~finally (fun () -> k (Client.backend client))

let test_remote_matches_memory () =
  Faults.reset ();
  let ops =
    [
      Put contents.(2);
      Get contents.(2);
      Mem contents.(2);
      Put contents.(3);
      Put contents.(2);
      Get contents.(5);
      Delete contents.(3);
      Mem contents.(3);
      Get contents.(2);
    ]
  in
  with_remote (fun remote ->
      let mem = Backend.memory () in
      Alcotest.(check bool) "remote equals memory on the same ops" true
        (run_sequence remote ops = run_sequence mem ops))

let test_remote_put_rejects_wrong_digest () =
  with_remote (fun remote ->
      match remote.Backend.put ~digest:(digest_of "something else") "payload" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "peer must refuse a body that fails its digest")

let test_quarantine_hides_blob () =
  (* same observable effect on both local backends *)
  with_fs_backend (fun fs ->
      let mem = Backend.memory () in
      List.iter
        (fun (b : Backend.t) ->
          let c = contents.(2) in
          let digest = digest_of c in
          (match b.put ~digest c with
          | Ok () -> ()
          | Error e -> Alcotest.failf "put: %s" e);
          (match b.quarantine ~digest with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "quarantine: %s" e);
          Alcotest.(check bool) (b.name ^ ": gone after quarantine") false
            (b.mem ~digest);
          Alcotest.(check bool) (b.name ^ ": not listed") true
            (not (List.mem_assoc digest (b.list ()))))
        [ fs; mem ])

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_fs_memory_equivalent;
    Alcotest.test_case "equivalent under injected write faults" `Quick
      test_fault_equivalence;
    Alcotest.test_case "remote backend equals memory" `Quick
      test_remote_matches_memory;
    Alcotest.test_case "remote rejects digest mismatch" `Quick
      test_remote_put_rejects_wrong_digest;
    Alcotest.test_case "quarantine equivalence" `Quick
      test_quarantine_hides_blob;
  ]
