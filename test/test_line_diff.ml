module Line_diff = Versioning_delta.Line_diff
module Prng = Versioning_util.Prng

let test_roundtrip_basic () =
  let a = "one\ntwo\nthree" and b = "one\n2\nthree\nfour" in
  let d = Line_diff.diff a b in
  Alcotest.(check string) "apply" b (Line_diff.apply a d)

let test_trailing_newline_distinct () =
  let a = "x\ny" and b = "x\ny\n" in
  let d = Line_diff.diff a b in
  Alcotest.(check string) "trailing newline preserved" b (Line_diff.apply a d);
  let d' = Line_diff.diff b a in
  Alcotest.(check string) "and removed" a (Line_diff.apply b d')

let test_empty_documents () =
  let d = Line_diff.diff "" "" in
  Alcotest.(check string) "empty to empty" "" (Line_diff.apply "" d);
  let d = Line_diff.diff "" "a\nb" in
  Alcotest.(check string) "empty to doc" "a\nb" (Line_diff.apply "" d);
  let d = Line_diff.diff "a\nb" "" in
  Alcotest.(check string) "doc to empty" "" (Line_diff.apply "a\nb" d)

let test_invert () =
  let a = "a\nb\nc\nd" and b = "a\nX\nc" in
  let d = Line_diff.diff a b in
  let inv = Line_diff.invert a d in
  Alcotest.(check string) "inverse recovers a" a (Line_diff.apply b inv)

let test_changed_lines () =
  let d = Line_diff.diff "a\nb\nc" "a\nB\nc" in
  Alcotest.(check int) "1 del + 1 ins" 2 (Line_diff.n_changed_lines d);
  let d = Line_diff.diff "a" "a" in
  Alcotest.(check int) "identical" 0 (Line_diff.n_changed_lines d)

let test_encode_decode () =
  let a = "alpha\nbeta\ngamma\ndelta" and b = "alpha\nBETA\ngamma\nepsilon\nzeta" in
  let d = Line_diff.diff a b in
  let d' = Line_diff.decode (Line_diff.encode d) in
  Alcotest.(check bool) "decode . encode = id" true (Line_diff.equal d d');
  Alcotest.(check string) "decoded applies" b (Line_diff.apply a d')

let test_decode_malformed () =
  Alcotest.check_raises "garbage header"
    (Invalid_argument "Line_diff.decode: bad header") (fun () ->
      ignore (Line_diff.decode "nonsense\n"));
  Alcotest.check_raises "truncated payload"
    (Invalid_argument "Line_diff.decode: truncated insert payload") (fun () ->
      ignore (Line_diff.decode "I 5\nonly one line\n"))

let test_apply_wrong_source () =
  let d = Line_diff.diff "a\nb\nc\nd\ne" "a\nb" in
  Alcotest.(check bool) "wrong source rejected" true
    (match Line_diff.apply "a" d with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_size_positive () =
  let d = Line_diff.diff "a\nb" "a\nc" in
  Alcotest.(check bool) "size > 0" true (Line_diff.size d > 0);
  Alcotest.(check bool) "symmetric >= one way" true
    (Line_diff.symmetric_size d "a\nb" >= Line_diff.size d)

let gen_doc rng =
  let n = Prng.int rng 40 in
  String.concat "\n"
    (List.init n (fun _ -> Printf.sprintf "line-%d" (Prng.int rng 12)))

let test_random_roundtrips () =
  let rng = Prng.create ~seed:77 in
  for _ = 1 to 500 do
    let a = gen_doc rng and b = gen_doc rng in
    let d = Line_diff.diff a b in
    if Line_diff.apply a d <> b then Alcotest.fail "round trip failed";
    let inv = Line_diff.invert a d in
    if Line_diff.apply b inv <> a then Alcotest.fail "invert failed";
    let d' = Line_diff.decode (Line_diff.encode d) in
    if not (Line_diff.equal d d') then Alcotest.fail "codec failed"
  done

let suite =
  [
    Alcotest.test_case "roundtrip basic" `Quick test_roundtrip_basic;
    Alcotest.test_case "trailing newline" `Quick test_trailing_newline_distinct;
    Alcotest.test_case "empty documents" `Quick test_empty_documents;
    Alcotest.test_case "invert" `Quick test_invert;
    Alcotest.test_case "changed lines" `Quick test_changed_lines;
    Alcotest.test_case "encode / decode" `Quick test_encode_decode;
    Alcotest.test_case "decode malformed" `Quick test_decode_malformed;
    Alcotest.test_case "apply wrong source" `Quick test_apply_wrong_source;
    Alcotest.test_case "sizes" `Quick test_size_positive;
    Alcotest.test_case "random roundtrips" `Quick test_random_roundtrips;
  ]
