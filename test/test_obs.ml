(* Observability layer: exposition goldens, gate semantics, span
   nesting (including across Pool worker domains), and histogram
   accounting. Exposition tests use private registries so they are
   independent of DSVC_OBS. *)

module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Ctx = Versioning_obs.Context
module Flight = Versioning_obs.Flight
module Logctx = Versioning_obs.Logctx
module Pool = Versioning_util.Pool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* One registry exercising all three kinds, label canonicalization,
   and every escaping rule. Sample values are exact binary fractions
   so the formatted output is platform-independent. *)
let golden_registry () =
  let r = Metrics.create () in
  Metrics.counter ~registry:r ~help:"Total \"requests\"\nby route"
    ~labels:[ ("route", "/a\\b"); ("status", "200") ]
    "dsvc_test_requests_total";
  (* same series, labels in the opposite order: must merge *)
  Metrics.counter ~registry:r
    ~labels:[ ("status", "200"); ("route", "/a\\b") ]
    ~by:2.0 "dsvc_test_requests_total";
  Metrics.gauge ~registry:r "dsvc_test_jobs" 4.0;
  let buckets = [| 0.125; 1.0 |] in
  Metrics.observe ~registry:r ~buckets "dsvc_test_seconds" 0.0625;
  Metrics.observe ~registry:r ~buckets "dsvc_test_seconds" 0.5;
  Metrics.observe ~registry:r ~buckets "dsvc_test_seconds" 5.0;
  r

let test_prometheus_golden () =
  let expected =
    {|# TYPE dsvc_test_jobs gauge
dsvc_test_jobs 4
# HELP dsvc_test_requests_total Total "requests"\nby route
# TYPE dsvc_test_requests_total counter
dsvc_test_requests_total{route="/a\\b",status="200"} 3
# TYPE dsvc_test_seconds histogram
dsvc_test_seconds_bucket{le="0.125"} 1
dsvc_test_seconds_bucket{le="1"} 2
dsvc_test_seconds_bucket{le="+Inf"} 3
dsvc_test_seconds_sum 5.5625
dsvc_test_seconds_count 3
|}
  in
  Alcotest.(check string) "prometheus text"
    expected
    (Metrics.to_prometheus ~registry:(golden_registry ()) ())

let test_json_golden () =
  let expected =
    {|{"metrics":[{"name":"dsvc_test_jobs","type":"gauge","help":"","samples":[{"labels":{},"value":4}]},{"name":"dsvc_test_requests_total","type":"counter","help":"Total \"requests\"\nby route","samples":[{"labels":{"route":"/a\\b","status":"200"},"value":3}]},{"name":"dsvc_test_seconds","type":"histogram","help":"","samples":[{"labels":{},"count":3,"sum":5.5625,"buckets":[{"le":"0.125","count":1},{"le":"1","count":2},{"le":"+Inf","count":3}]}]}]}|}
  in
  Alcotest.(check string) "json exposition" expected
    (Metrics.to_json ~registry:(golden_registry ()) ())

let test_series_label_order () =
  (* insertion order spt-then-mca; exposition must sort by label key *)
  let r = Metrics.create () in
  Metrics.counter ~registry:r ~labels:[ ("algo", "spt") ] "dsvc_test_runs_total";
  Metrics.counter ~registry:r ~labels:[ ("algo", "mca") ] "dsvc_test_runs_total";
  let expected =
    {|# TYPE dsvc_test_runs_total counter
dsvc_test_runs_total{algo="mca"} 1
dsvc_test_runs_total{algo="spt"} 1
|}
  in
  Alcotest.(check string) "sorted series" expected
    (Metrics.to_prometheus ~registry:r ())

let test_type_conflict_rejected () =
  let r = Metrics.create () in
  Metrics.counter ~registry:r "dsvc_test_conflict";
  Alcotest.check_raises "re-registering with another type"
    (Invalid_argument "Metrics: dsvc_test_conflict already registered as a counter")
    (fun () -> Metrics.gauge ~registry:r "dsvc_test_conflict" 1.0)

let prop_hist_sum_count =
  QCheck.Test.make ~name:"histogram sum/count/+Inf match observations"
    ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun xs ->
      let r = Metrics.create () in
      List.iter
        (fun x ->
          Metrics.observe ~registry:r
            ~buckets:[| 1.0; 10.0; 100.0 |]
            "dsvc_test_hist" x)
        xs;
      match xs with
      | [] -> Metrics.snapshot_values ~registry:r () = []
      | _ ->
          let snap = Metrics.snapshot_values ~registry:r () in
          let expect_sum = List.fold_left ( +. ) 0.0 xs in
          let n = List.length xs in
          let sum_ok =
            match List.assoc_opt "dsvc_test_hist_sum" snap with
            | Some s ->
                Float.abs (s -. expect_sum)
                <= 1e-6 *. (1.0 +. Float.abs expect_sum)
            | None -> false
          in
          let count_ok =
            List.assoc_opt "dsvc_test_hist_count" snap = Some (float_of_int n)
          in
          (* the +Inf cumulative bucket must equal the sample count *)
          let inf_ok =
            contains
              (Metrics.to_prometheus ~registry:r ())
              (Printf.sprintf "dsvc_test_hist_bucket{le=\"+Inf\"} %d" n)
          in
          sum_ok && count_ok && inf_ok)

let test_default_registry_gated () =
  Obs.with_enabled false (fun () ->
      Metrics.reset ();
      Metrics.counter "dsvc_test_gated_total";
      Alcotest.(check (list string)) "disabled drops updates" []
        (Metrics.family_names ()));
  Obs.with_enabled true (fun () ->
      Metrics.reset ();
      Metrics.counter "dsvc_test_gated_total";
      Alcotest.(check (list string)) "enabled records"
        [ "dsvc_test_gated_total" ]
        (Metrics.family_names ());
      Metrics.reset ())

let test_time_runs_either_way () =
  let r = Metrics.create () in
  let v = Metrics.time ~registry:r "dsvc_test_timed_seconds" (fun () -> 41 + 1) in
  Alcotest.(check int) "explicit registry" 42 v;
  Alcotest.(check (list string)) "recorded" [ "dsvc_test_timed_seconds" ]
    (Metrics.family_names ~registry:r ());
  Obs.with_enabled false (fun () ->
      Metrics.reset ();
      let v = Metrics.time "dsvc_test_timed_seconds" (fun () -> 7) in
      Alcotest.(check int) "gated off still runs f" 7 v;
      Alcotest.(check (list string)) "nothing recorded" []
        (Metrics.family_names ()))

let test_span_disabled_noop () =
  Obs.with_enabled false (fun () ->
      Trace.reset ();
      let v = Trace.with_span "dead" (fun () -> 3) in
      Alcotest.(check int) "value" 3 v;
      Alcotest.(check int) "no spans" 0 (Trace.span_count ());
      Alcotest.(check (option int)) "no current id" None (Trace.current_id ()))

let test_span_nesting () =
  Obs.with_enabled true @@ fun () ->
  Trace.reset ();
  let v =
    Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> 7))
  in
  Alcotest.(check int) "value" 7 v;
  let spans = Trace.spans () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let find n = List.find (fun s -> s.Trace.name = n) spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check (option int)) "inner nests under outer"
    (Some outer.Trace.id) inner.Trace.parent;
  Alcotest.(check (option int)) "outer is a root" None outer.Trace.parent;
  Alcotest.(check bool) "durations are non-negative" true
    (outer.Trace.dur >= 0.0 && inner.Trace.dur >= 0.0)

let test_span_exception_recorded () =
  Obs.with_enabled true @@ fun () ->
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Trace.span_count ());
  (* the stack unwound: a new span is again a root *)
  Trace.with_span "after" (fun () -> ());
  let after = List.find (fun s -> s.Trace.name = "after") (Trace.spans ()) in
  Alcotest.(check (option int)) "stack popped" None after.Trace.parent

let test_span_across_pool () =
  Obs.with_enabled true @@ fun () ->
  Trace.reset ();
  let n = 64 in
  (* n >= min_parallel and jobs=2 force the parallel path *)
  let out =
    Trace.with_span "outer" (fun () ->
        Pool.parallel_init ~jobs:2 n (fun i ->
            Trace.with_span "task" (fun () -> i * 2)))
  in
  Alcotest.(check int) "results intact" (2 * (n - 1)) out.(n - 1);
  let spans = Trace.spans () in
  let pool_span =
    List.find (fun s -> s.Trace.name = "pool.parallel_init") spans
  in
  let outer = List.find (fun s -> s.Trace.name = "outer") spans in
  Alcotest.(check (option int)) "pool span under outer"
    (Some outer.Trace.id) pool_span.Trace.parent;
  let tasks = List.filter (fun s -> s.Trace.name = "task") spans in
  Alcotest.(check int) "every task recorded" n (List.length tasks);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check (option int)) "task nests under the pool span"
        (Some pool_span.Trace.id) s.Trace.parent)
    tasks

let test_chrome_export_and_summary () =
  Obs.with_enabled true @@ fun () ->
  Trace.reset ();
  Trace.with_span "phase" (fun () -> ());
  Trace.with_span "phase" (fun () -> ());
  let json = Trace.to_chrome_json () in
  Alcotest.(check bool) "trace_event envelope" true
    (contains json {|"displayTimeUnit":"ms","traceEvents":[|});
  Alcotest.(check bool) "complete events" true (contains json {|"ph":"X"|});
  match Trace.summarize () with
  | [ a ] ->
      Alcotest.(check string) "aggregated by name" "phase" a.Trace.agg_name;
      Alcotest.(check int) "both occurrences" 2 a.Trace.count
  | aggs -> Alcotest.failf "expected one aggregate, got %d" (List.length aggs)

(* ---- tracing: ring sizing, export shape, context, flight, logctx ---- *)

let test_trace_ring_capacity () =
  Alcotest.(check (result int string))
    "valid value" (Ok 64)
    (Trace.capacity_of_string "64");
  Alcotest.(check bool) "non-integer rejected" true
    (Result.is_error (Trace.capacity_of_string "abc"));
  Alcotest.(check bool) "too small rejected" true
    (Result.is_error (Trace.capacity_of_string "4"));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Trace.capacity_of_string ""));
  let old = Trace.capacity () in
  Fun.protect ~finally:(fun () -> Trace.set_capacity old) @@ fun () ->
  Obs.with_enabled true @@ fun () ->
  Trace.set_capacity 32;
  for i = 0 to 39 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "count survives truncation" 40 (Trace.span_count ());
  let spans = Trace.spans () in
  Alcotest.(check int) "ring bounded" 32 (List.length spans);
  (* 40 spans through a 32-slot ring: s0..s7 fell off the front *)
  Alcotest.(check string) "oldest survivor" "s8" (List.hd spans).Trace.name;
  Alcotest.check_raises "below minimum"
    (Invalid_argument "Trace.set_capacity: 4 outside [16, 1048576]") (fun () ->
      Trace.set_capacity 4)

let test_chrome_golden () =
  let tid = "0123456789abcdef0123456789abcdef" in
  let spans =
    [
      {
        Trace.id = 1;
        parent = None;
        name = {|solve "mca"|};
        start = 1.5;
        dur = 0.25;
        domain = 0;
        alloc = 2048.0;
        trace = Some tid;
      };
      {
        Trace.id = 2;
        parent = Some 1;
        name = "inner";
        start = 1.625;
        dur = 0.125;
        domain = 1;
        alloc = 0.0;
        trace = None;
      };
    ]
  in
  let expected =
    {|{"displayTimeUnit":"ms","traceEvents":[|}
    ^ {|{"name":"solve \"mca\"","cat":"dsvc","ph":"X","ts":1500000.0,"dur":250000.0,"pid":1,"tid":0,"args":{"id":1,"parent":null,"trace":"0123456789abcdef0123456789abcdef","alloc_bytes":2048}},|}
    ^ {|{"name":"inner","cat":"dsvc","ph":"X","ts":1625000.0,"dur":125000.0,"pid":1,"tid":1,"args":{"id":2,"parent":1,"trace":null,"alloc_bytes":0}}|}
    ^ "]}"
  in
  Alcotest.(check string) "trace_event golden" expected
    (Trace.chrome_json_of_spans spans)

let test_context_traceparent_roundtrip () =
  let ctx = Ctx.make ~sampled:true () in
  Alcotest.(check int) "trace id is 32 hex chars" 32
    (String.length ctx.Ctx.trace_id);
  Alcotest.(check int) "request id is 16 hex chars" 16
    (String.length ctx.Ctx.request_id);
  let hdr = Ctx.to_traceparent ~span:255 ctx in
  Alcotest.(check string) "w3c shape"
    ("00-" ^ ctx.Ctx.trace_id ^ "-00000000000000ff-01")
    hdr;
  (match Ctx.of_traceparent hdr with
  | None -> Alcotest.fail "valid header must parse"
  | Some c ->
      Alcotest.(check string) "trace id survives" ctx.Ctx.trace_id c.Ctx.trace_id;
      Alcotest.(check (option int)) "span id survives" (Some 255)
        c.Ctx.parent_span;
      Alcotest.(check bool) "sampled flag survives" true c.Ctx.sampled);
  (match Ctx.of_traceparent ("00-" ^ ctx.Ctx.trace_id ^ "-00000000000000ff-00") with
  | Some c -> Alcotest.(check bool) "unsampled flag survives" false c.Ctx.sampled
  | None -> Alcotest.fail "valid unsampled header must parse");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (Ctx.of_traceparent bad = None))
    [ ""; "zz-nope"; "00-abc-def-01"; "00-" ^ ctx.Ctx.trace_id ^ "-xyz-01" ];
  Alcotest.(check (option string)) "sanitize keeps clean ids"
    (Some "req-1.a_B") (Ctx.sanitize_id " req-1.a_B ");
  Alcotest.(check (option string)) "sanitize drops header injection" None
    (Ctx.sanitize_id "evil\r\nX-Other: 1")

let test_flight_gate_independent () =
  Obs.with_enabled false @@ fun () ->
  Fun.protect ~finally:(fun () -> Flight.reset ()) @@ fun () ->
  Flight.reset ();
  Trace.reset ();
  (* No ambient context: the off path records nowhere. *)
  Trace.with_span "dark" (fun () -> ());
  Alcotest.(check int) "no trace spans" 0 (Trace.span_count ());
  Alcotest.(check int) "no flight events" 0 (Flight.event_count ());
  (* A sampled context: flight only, trace ring still untouched. *)
  let ctx = Ctx.make ~sampled:true () in
  Ctx.with_context ctx (fun () -> Trace.with_span "lit" (fun () -> ()));
  Alcotest.(check int) "trace ring still empty" 0 (Trace.span_count ());
  Alcotest.(check int) "one flight event" 1 (Flight.event_count ());
  let json = Flight.to_json () in
  Alcotest.(check bool) "dump names the span" true (contains json {|"lit"|});
  Alcotest.(check bool) "dump carries the trace id" true
    (contains json ctx.Ctx.trace_id)

let test_logctx_stamps_ids () =
  let buf = Buffer.create 256 in
  let saved_level = Logs.level () in
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter Logs.nop_reporter;
      Logs.set_level saved_level;
      Unix.putenv "DSVC_LOG_FORMAT" "";
      Flight.reset ())
  @@ fun () ->
  Logs.set_reporter (Logctx.reporter ~out:(Buffer.add_string buf) ());
  Logs.set_level (Some Logs.Info);
  Flight.reset ();
  let ctx = Ctx.make ~sampled:false () in
  Ctx.with_context ctx (fun () -> Logs.info (fun m -> m "hello %d" 42));
  let line = Buffer.contents buf in
  Alcotest.(check bool) "message present" true (contains line "hello 42");
  Alcotest.(check bool) "request id stamped" true
    (contains line ctx.Ctx.request_id);
  Alcotest.(check bool) "trace id stamped" true (contains line ctx.Ctx.trace_id);
  Alcotest.(check int) "record mirrored into flight ring" 1
    (Flight.event_count ());
  Buffer.clear buf;
  Unix.putenv "DSVC_LOG_FORMAT" "json";
  Ctx.with_context ctx (fun () ->
      Logctx.with_fields
        [ ("op", "test") ]
        (fun () -> Logs.warn (fun m -> m "json line")));
  let line = Buffer.contents buf in
  Alcotest.(check bool) "json level" true (contains line {|"level":"warning"|});
  Alcotest.(check bool) "json message" true (contains line {|"msg":"json line"|});
  Alcotest.(check bool) "explicit field" true (contains line {|"op":"test"|});
  Alcotest.(check bool) "json request id" true
    (contains line ctx.Ctx.request_id)

let test_pool_trace_propagation () =
  Obs.with_enabled true @@ fun () ->
  Fun.protect ~finally:(fun () -> Flight.reset ()) @@ fun () ->
  Trace.reset ();
  Flight.reset ();
  let n = 64 in
  let ctx = Ctx.make ~sampled:true () in
  Ctx.with_context ctx @@ fun () ->
  let out =
    Trace.with_span "outer" (fun () ->
        Pool.parallel_init ~jobs:2 n (fun i ->
            Trace.with_span "task" (fun () -> i)))
  in
  Alcotest.(check int) "results intact" (n - 1) out.(n - 1);
  let spans = Trace.spans () in
  let pool_span =
    List.find (fun s -> s.Trace.name = "pool.parallel_init") spans
  in
  let tasks = List.filter (fun s -> s.Trace.name = "task") spans in
  Alcotest.(check int) "every task recorded" n (List.length tasks);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check (option int)) "parent survives the domain hop"
        (Some pool_span.Trace.id) s.Trace.parent;
      Alcotest.(check (option string)) "trace id survives the domain hop"
        (Some ctx.Ctx.trace_id) s.Trace.trace)
    tasks;
  Alcotest.(check bool) "sampled spans reached the flight ring" true
    (Flight.event_count () > 0)

let suite =
  [
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "series label order" `Quick test_series_label_order;
    Alcotest.test_case "type conflict rejected" `Quick
      test_type_conflict_rejected;
    QCheck_alcotest.to_alcotest prop_hist_sum_count;
    Alcotest.test_case "default registry gated" `Quick
      test_default_registry_gated;
    Alcotest.test_case "time runs either way" `Quick test_time_runs_either_way;
    Alcotest.test_case "span disabled noop" `Quick test_span_disabled_noop;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception recorded" `Quick
      test_span_exception_recorded;
    Alcotest.test_case "span across pool" `Quick test_span_across_pool;
    Alcotest.test_case "chrome export and summary" `Quick
      test_chrome_export_and_summary;
    Alcotest.test_case "trace ring capacity" `Quick test_trace_ring_capacity;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "traceparent roundtrip" `Quick
      test_context_traceparent_roundtrip;
    Alcotest.test_case "flight recorder gate-independent" `Quick
      test_flight_gate_independent;
    Alcotest.test_case "logctx stamps ids" `Quick test_logctx_stamps_ids;
    Alcotest.test_case "pool trace propagation" `Quick
      test_pool_trace_propagation;
  ]
