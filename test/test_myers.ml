module Myers = Versioning_delta.Myers

let apply_str a b script =
  let arr s = Array.init (String.length s) (String.get s) in
  let out = Myers.apply (arr a) (arr b) script in
  String.init (Array.length out) (Array.get out)

let diff_str a b =
  let arr s = Array.init (String.length s) (String.get s) in
  Myers.diff (arr a) (arr b)

let test_identity () =
  let s = diff_str "hello" "hello" in
  Alcotest.(check int) "no edits" 0 (Myers.edit_distance s);
  Alcotest.(check string) "round trip" "hello" (apply_str "hello" "hello" s)

let test_empty_cases () =
  Alcotest.(check string) "from empty" "abc" (apply_str "" "abc" (diff_str "" "abc"));
  Alcotest.(check string) "to empty" "" (apply_str "abc" "" (diff_str "abc" ""));
  Alcotest.(check int) "both empty" 0 (Myers.edit_distance (diff_str "" ""))

let test_known_distances () =
  (* classic examples with known shortest edit script lengths *)
  let check a b expected =
    Alcotest.(check int)
      (Printf.sprintf "d(%s, %s)" a b)
      expected
      (Myers.edit_distance (diff_str a b))
  in
  check "abcabba" "cbabac" 5;
  (* Myers' paper example *)
  check "kitten" "sitting" 5;
  (* 2 substitutions (=4 ops as del+ins) + 1 insert *)
  check "abc" "abc" 0;
  check "abc" "axc" 2;
  check "" "aaa" 3;
  check "aaa" "" 3

let test_coalescing () =
  let script = diff_str "aaaa" "aaaabbbb" in
  (* should be Keep 4 :: Insert(4,4), coalesced *)
  Alcotest.(check bool) "coalesced" true (List.length script <= 2)

let test_apply_validation () =
  let script = diff_str "abc" "abd" in
  let arr s = Array.init (String.length s) (String.get s) in
  Alcotest.check_raises "wrong source length"
    (Invalid_argument "Myers.apply: script does not consume the whole source")
    (fun () -> ignore (Myers.apply (arr "abcdef") (arr "abd") script))

let test_custom_equality () =
  let a = [| "A"; "b"; "C" |] and b = [| "a"; "B"; "c" |] in
  let script =
    Myers.diff
      ~equal:(fun x y -> String.lowercase_ascii x = String.lowercase_ascii y)
      a b
  in
  Alcotest.(check int) "case-insensitive equal" 0 (Myers.edit_distance script)

let gen_doc =
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (small_list (oneofl [ 'a'; 'b'; 'c' ])))

let arb_doc = QCheck.make ~print:Fun.id gen_doc

let qcheck_roundtrip =
  QCheck.Test.make ~name:"myers apply(diff a b) a = b" ~count:1000
    (QCheck.pair arb_doc arb_doc)
    (fun (a, b) -> apply_str a b (diff_str a b) = b)

let qcheck_minimality_vs_dp =
  (* compare against a textbook O(nm) edit-distance DP (insert/delete
     only, i.e. 2*(n - lcs) style) *)
  let dp_distance a b =
    let n = String.length a and m = String.length b in
    let d = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = 0 to n do
      d.(i).(0) <- i
    done;
    for j = 0 to m do
      d.(0).(j) <- j
    done;
    for i = 1 to n do
      for j = 1 to m do
        d.(i).(j) <-
          (if a.[i - 1] = b.[j - 1] then d.(i - 1).(j - 1)
           else 1 + min d.(i - 1).(j) d.(i).(j - 1))
      done
    done;
    d.(n).(m)
  in
  QCheck.Test.make ~name:"myers script length is minimal" ~count:500
    (QCheck.pair arb_doc arb_doc)
    (fun (a, b) -> Myers.edit_distance (diff_str a b) = dp_distance a b)

let qcheck_script_structure =
  QCheck.Test.make ~name:"insert offsets reference target accurately" ~count:500
    (QCheck.pair arb_doc arb_doc)
    (fun (a, b) ->
      let script = diff_str a b in
      (* replaying inserts must produce exactly the chars of b *)
      let out = apply_str a b script in
      String.length out = String.length b && out = b)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "empty cases" `Quick test_empty_cases;
    Alcotest.test_case "known distances" `Quick test_known_distances;
    Alcotest.test_case "coalescing" `Quick test_coalescing;
    Alcotest.test_case "apply validation" `Quick test_apply_validation;
    Alcotest.test_case "custom equality" `Quick test_custom_equality;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_minimality_vs_dp;
    QCheck_alcotest.to_alcotest qcheck_script_structure;
  ]
