(* Exact B&B vs brute force, and the Solver façade. *)

open Versioning_core
module Prng = Versioning_util.Prng

let test_exact_vs_brute_force () =
  let rng = Prng.create ~seed:103 in
  for _ = 1 to 40 do
    let g = Fixtures.random_graph ~n_min:2 ~n_max:6 rng in
    let dist = Spt.distances g in
    let maxd = Array.fold_left Float.max 0.0 dist in
    let theta = maxd *. (1.0 +. Prng.float rng 1.5) in
    let bf = Exact.brute_force_p6 g ~theta in
    let ex = Exact.solve_p6 g ~theta () in
    match (bf, ex.Exact.tree) with
    | Some b, Some e ->
        Alcotest.(check bool) "search exhausted" true ex.Exact.optimal;
        Alcotest.check Fixtures.float_eq "same optimum"
          (Storage_graph.storage_cost b)
          (Storage_graph.storage_cost e);
        Alcotest.(check bool) "theta respected" true
          (Storage_graph.max_recreation e <= theta +. 1e-9)
    | None, None -> ()
    | Some _, None -> Alcotest.fail "exact missed a feasible solution"
    | None, Some _ -> Alcotest.fail "exact fabricated a solution"
  done

let test_exact_figure1 () =
  let g = Fixtures.figure1 () in
  let r = Exact.solve_p6 g ~theta:13000.0 () in
  match r.Exact.tree with
  | Some sg ->
      Alcotest.(check bool) "optimal" true r.Exact.optimal;
      (* verified against brute force *)
      let bf = Option.get (Exact.brute_force_p6 g ~theta:13000.0) in
      Alcotest.check Fixtures.float_eq "figure 1 optimum"
        (Storage_graph.storage_cost bf)
        (Storage_graph.storage_cost sg);
      Alcotest.(check bool) "beats or meets MP" true
        (Storage_graph.storage_cost sg
        <= (match Mp.solve g ~theta:13000.0 with
           | { Mp.tree = Some m; _ } -> Storage_graph.storage_cost m
           | _ -> infinity)
           +. 1e-9)
  | None -> Alcotest.fail "feasible instance"

let test_exact_lower_bounds_mp () =
  let rng = Prng.create ~seed:107 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:3 ~n_max:8 rng in
    let dist = Spt.distances g in
    let maxd = Array.fold_left Float.max 0.0 dist in
    let theta = maxd *. 1.5 in
    match (Exact.solve_p6 g ~theta (), Mp.solve g ~theta) with
    | { Exact.tree = Some e; _ }, { Mp.tree = Some m; _ } ->
        Alcotest.(check bool) "exact <= MP" true
          (Storage_graph.storage_cost e
          <= Storage_graph.storage_cost m +. 1e-9)
    | _ -> ()
  done

let test_exact_node_budget () =
  let rng = Prng.create ~seed:109 in
  let g = Fixtures.random_graph ~n_min:8 ~n_max:12 ~density:0.8 rng in
  let dist = Spt.distances g in
  let maxd = Array.fold_left Float.max 0.0 dist in
  let r = Exact.solve_p6 g ~theta:(2.0 *. maxd) ~node_budget:5 () in
  Alcotest.(check bool) "budget exhausts" false r.Exact.optimal;
  (* the MP incumbent is still reported *)
  Alcotest.(check bool) "incumbent available" true (r.Exact.tree <> None);
  Alcotest.(check bool) "node count near budget" true (r.Exact.nodes <= 6)

let test_exact_infeasible () =
  let g = Fixtures.figure1 () in
  let r = Exact.solve_p6 g ~theta:10.0 () in
  Alcotest.(check bool) "no tree" true (r.Exact.tree = None)

(* ---- Solver façade ---- *)

let test_solver_p1_p2 () =
  let g = Fixtures.figure1 () in
  let p1 = Fixtures.ok (Solver.solve g Solver.Minimize_storage) in
  Alcotest.check Fixtures.float_eq "P1 = MCA optimum" 11450.0
    (Storage_graph.storage_cost p1);
  let p2 = Fixtures.ok (Solver.solve g Solver.Minimize_recreation) in
  Alcotest.check Fixtures.float_eq "P2 minimizes every Ri" 10120.0
    (Storage_graph.recreation_cost p2 5)

let test_solver_constraints_respected () =
  let rng = Prng.create ~seed:113 in
  for _ = 1 to 15 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:15 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let cmin = Storage_graph.storage_cost base in
    let beta = cmin *. 1.5 in
    (match Solver.solve g (Solver.Min_sum_recreation_bounded_storage beta) with
    | Ok sg ->
        Alcotest.(check bool) "P3 storage bound" true
          (Storage_graph.storage_cost sg <= beta +. 1e-9)
    | Error e -> Alcotest.failf "P3: %s" e);
    (match Solver.solve g (Solver.Min_max_recreation_bounded_storage beta) with
    | Ok sg ->
        Alcotest.(check bool) "P4 storage bound" true
          (Storage_graph.storage_cost sg <= beta +. 1e-9)
    | Error e -> Alcotest.failf "P4: %s" e);
    let sum_bound = Storage_graph.sum_recreation spt *. 1.3 in
    (match
       Solver.solve g (Solver.Min_storage_bounded_sum_recreation sum_bound)
     with
    | Ok sg ->
        Alcotest.(check bool) "P5 sum bound" true
          (Storage_graph.sum_recreation sg <= sum_bound +. 1e-6)
    | Error e -> Alcotest.failf "P5: %s" e);
    let dist = Spt.distances g in
    let theta = 1.5 *. Array.fold_left Float.max 0.0 dist in
    match Solver.solve g (Solver.Min_storage_bounded_max_recreation theta) with
    | Ok sg ->
        Alcotest.(check bool) "P6 max bound" true
          (Storage_graph.max_recreation sg <= theta +. 1e-9)
    | Error e -> Alcotest.failf "P6: %s" e
  done

let test_solver_undirected_dispatch () =
  let rng = Prng.create ~seed:127 in
  let g = Aux_graph.symmetrize (Fixtures.random_graph ~n_min:5 ~n_max:10 rng) in
  (* On a symmetric graph min_storage_tree routes to Prim's MST. *)
  let t = Fixtures.ok (Solver.min_storage_tree g) in
  let p = Fixtures.ok (Mst.prim g) in
  Alcotest.check Fixtures.float_eq "uses MST weight" (Mst.weight p)
    (Storage_graph.storage_cost t)

let test_solver_infeasible_budget () =
  let g = Fixtures.figure1 () in
  match Solver.solve g (Solver.Min_sum_recreation_bounded_storage 1.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "budget below minimum storage must fail"

let test_solver_weighted () =
  let g = Fixtures.figure1 () in
  let freqs = [| 0.; 1.; 1.; 1.; 1.; 100. |] in
  match
    Solver.solve_weighted g ~freqs
      (Solver.Min_sum_recreation_bounded_storage 13000.0)
  with
  | Ok sg ->
      Alcotest.(check bool) "storage bound respected" true
        (Storage_graph.storage_cost sg <= 13000.0 +. 1e-9)
  | Error e -> Alcotest.failf "weighted solve failed: %s" e

let suite =
  [
    Alcotest.test_case "exact = brute force" `Quick test_exact_vs_brute_force;
    Alcotest.test_case "exact figure 1" `Quick test_exact_figure1;
    Alcotest.test_case "exact <= MP" `Quick test_exact_lower_bounds_mp;
    Alcotest.test_case "exact node budget" `Quick test_exact_node_budget;
    Alcotest.test_case "exact infeasible" `Quick test_exact_infeasible;
    Alcotest.test_case "solver P1/P2" `Quick test_solver_p1_p2;
    Alcotest.test_case "solver constraints" `Quick
      test_solver_constraints_respected;
    Alcotest.test_case "solver undirected dispatch" `Quick
      test_solver_undirected_dispatch;
    Alcotest.test_case "solver infeasible budget" `Quick
      test_solver_infeasible_budget;
    Alcotest.test_case "solver weighted" `Quick test_solver_weighted;
  ]
