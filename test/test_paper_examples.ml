(* Golden tests against the paper's hand-worked examples. Figure 1's
   numbers are covered in Test_aux_storage and Test_trees; here:
   Example 5 (Modified Prim, Figures 8/10) and the quantitative claims
   of Examples 1-3. *)

open Versioning_core

(* Figure 8's directed graph, as reconstructed from the Example 5
   walkthrough: materializations V1 ⟨3,3⟩, V2 ⟨4,4⟩, V3 ⟨4,4⟩; deltas
   V1→V2 ⟨2,3⟩, V1→V3 ⟨1,4⟩, V2→V3 ⟨1,3⟩, V3→V2 ⟨1,2⟩. *)
let figure8 () =
  let g = Aux_graph.create ~n_versions:3 in
  Aux_graph.add_materialization g ~version:1 ~delta:3. ~phi:3.;
  Aux_graph.add_materialization g ~version:2 ~delta:4. ~phi:4.;
  Aux_graph.add_materialization g ~version:3 ~delta:4. ~phi:4.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:2. ~phi:3.;
  Aux_graph.add_delta g ~src:1 ~dst:3 ~delta:1. ~phi:4.;
  Aux_graph.add_delta g ~src:2 ~dst:3 ~delta:1. ~phi:3.;
  Aux_graph.add_delta g ~src:3 ~dst:2 ~delta:1. ~phi:2.;
  g

let test_example5_walkthrough () =
  (* θ = 6; the paper's Figure 10(d) answer: V1 and V3 materialized,
     V2 re-parented to V3 (the re-parenting of an in-tree version is
     the point of the example), total storage 3 + 4 + 1 = 8. *)
  let g = figure8 () in
  match Mp.solve g ~theta:6.0 with
  | { Mp.tree = Some sg; infeasible = [] } ->
      Alcotest.(check int) "V1 materialized" 0 (Storage_graph.parent sg 1);
      Alcotest.(check int) "V3 materialized" 0 (Storage_graph.parent sg 3);
      Alcotest.(check int) "V2 from V3 (figure 10d)" 3
        (Storage_graph.parent sg 2);
      Alcotest.check Fixtures.float_eq "storage 8" 8.0
        (Storage_graph.storage_cost sg);
      Alcotest.check Fixtures.float_eq "d(V2) = 6 = theta" 6.0
        (Storage_graph.recreation_cost sg 2);
      Alcotest.(check bool) "theta respected" true
        (Storage_graph.max_recreation sg <= 6.0)
  | _ -> Alcotest.fail "example 5 must be feasible"

let test_example5_walkthrough_steps () =
  (* Intermediate claims: before V3's turn, V2 hangs off V1 at
     recreation 6 (figure 10b). Verified indirectly: with the V3→V2
     edge removed, MP must keep V2 under V1 at cost 2 and d = 6. *)
  let g = Aux_graph.create ~n_versions:3 in
  Aux_graph.add_materialization g ~version:1 ~delta:3. ~phi:3.;
  Aux_graph.add_materialization g ~version:2 ~delta:4. ~phi:4.;
  Aux_graph.add_materialization g ~version:3 ~delta:4. ~phi:4.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:2. ~phi:3.;
  Aux_graph.add_delta g ~src:1 ~dst:3 ~delta:1. ~phi:4.;
  match Mp.solve g ~theta:6.0 with
  | { Mp.tree = Some sg; _ } ->
      Alcotest.(check int) "V2 under V1" 1 (Storage_graph.parent sg 2);
      Alcotest.check Fixtures.float_eq "d(V2) = 6" 6.0
        (Storage_graph.recreation_cost sg 2);
      (* V1→V3 is rejected at 3+4 > 6, exactly the walkthrough *)
      Alcotest.(check int) "V3 materialized" 0 (Storage_graph.parent sg 3)
  | _ -> Alcotest.fail "feasible"

let test_example1_tradeoff_claims () =
  (* Example 1: "the path V1→V3→V5 needs to be accessed to retrieve V5
     and the recreation cost is 10000 + 3000 + 550 = 13550 > 10120". *)
  let g = Fixtures.figure1 () in
  let iii =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  Alcotest.check Fixtures.float_eq "R5 along V1,V3,V5" 13550.0
    (Storage_graph.recreation_cost iii 5);
  Alcotest.(check bool) "worse than direct retrieval" true
    (Storage_graph.recreation_cost iii 5 > 10120.0);
  (* "(iv) exhibits higher storage cost than (ii)... lower than (iii)"
     — the paper means higher than (iii), lower than (ii); check the
     ordering it describes numerically. *)
  let ii =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ])
  in
  let iv =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (0, 3); (2, 4); (3, 5) ])
  in
  Alcotest.(check bool) "C(iii) < C(iv) < C(ii)" true
    (Storage_graph.storage_cost iii < Storage_graph.storage_cost iv
    && Storage_graph.storage_cost iv < Storage_graph.storage_cost ii);
  (* "significantly reduced retrieval costs for V3 and V5 over (iii)" —
     the paper's (ii) text; check (iv) improves both vs (iii). *)
  Alcotest.(check bool) "R3 improves" true
    (Storage_graph.recreation_cost iv 3 < Storage_graph.recreation_cost iii 3);
  Alcotest.(check bool) "R5 improves" true
    (Storage_graph.recreation_cost iv 5 < Storage_graph.recreation_cost iii 5)

let test_example3_feasible_storage_graph () =
  (* Figure 4: V1 and V3 materialized; V2 ← V1, V4 ← V2, V5 ← V3 —
     declared "a feasible storage graph given G in Figure 3". *)
  let g = Fixtures.figure1 () in
  match
    Storage_graph.of_parents g
      ~parents:[ (0, 1); (1, 2); (0, 3); (2, 4); (3, 5) ]
  with
  | Ok sg ->
      Alcotest.(check (list int)) "materialized set" [ 1; 3 ]
        (Storage_graph.materialized_versions sg)
  | Error e -> Alcotest.failf "figure 4 must be valid: %s" e

let test_lemma1_spanning_tree () =
  (* Lemma 1: every algorithm's output is a spanning arborescence —
     exactly n edges, all versions reachable from the dummy root.
     Checked across algorithms on the running example. *)
  let g = Fixtures.figure1 () in
  let solutions =
    [
      Fixtures.ok (Mca.solve g);
      Fixtures.ok (Spt.solve g);
      Fixtures.ok (Gith.solve g ~window:0 ~max_depth:10);
    ]
  in
  List.iter
    (fun sg ->
      Fixtures.check_valid g sg;
      Alcotest.(check int) "n parent edges" 5
        (List.length (Storage_graph.to_parents sg)))
    solutions

let test_table1_polytime_cases () =
  (* Table 1 row 1 and 2: Problems 1 and 2 are solved optimally.
     Optimality cross-checked by brute force on the running example. *)
  let g = Fixtures.figure1 () in
  let best_storage = ref infinity and best_sum = ref infinity in
  let parents = Array.make 6 0 in
  let rec go v =
    if v > 5 then begin
      match
        Storage_graph.of_parents g
          ~parents:(List.init 5 (fun i -> (parents.(i + 1), i + 1)))
      with
      | Ok sg ->
          best_storage := Float.min !best_storage (Storage_graph.storage_cost sg);
          best_sum := Float.min !best_sum (Storage_graph.sum_recreation sg)
      | Error _ -> ()
    end
    else
      for p = 0 to 5 do
        if p <> v then begin
          parents.(v) <- p;
          go (v + 1)
        end
      done
  in
  go 1;
  let p1 = Fixtures.ok (Solver.solve g Solver.Minimize_storage) in
  Alcotest.check Fixtures.float_eq "P1 optimal" !best_storage
    (Storage_graph.storage_cost p1);
  let p2 = Fixtures.ok (Solver.solve g Solver.Minimize_recreation) in
  Alcotest.check Fixtures.float_eq "P2 optimal on sum too" !best_sum
    (Storage_graph.sum_recreation p2)

let suite =
  [
    Alcotest.test_case "example 5 (figure 10d)" `Quick
      test_example5_walkthrough;
    Alcotest.test_case "example 5 intermediate state" `Quick
      test_example5_walkthrough_steps;
    Alcotest.test_case "example 1 tradeoff numbers" `Quick
      test_example1_tradeoff_claims;
    Alcotest.test_case "example 3 / figure 4" `Quick
      test_example3_feasible_storage_graph;
    Alcotest.test_case "lemma 1 spanning trees" `Quick
      test_lemma1_spanning_tree;
    Alcotest.test_case "table 1 polytime rows" `Quick
      test_table1_polytime_cases;
  ]
