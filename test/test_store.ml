(* Content hashing, the object store, and the prototype repository. *)

open Versioning_store
module Prng = Versioning_util.Prng

let temp_dir () =
  let path = Filename.temp_file "dsvc_test" "" in
  Sys.remove path;
  path

(* ---- Content_hash ---- *)

let test_hash_shape () =
  let h = Content_hash.hex "hello" in
  Alcotest.(check int) "32 hex chars" 32 (String.length h);
  Alcotest.(check bool) "valid" true (Content_hash.is_valid h);
  Alcotest.(check string) "deterministic" h (Content_hash.hex "hello");
  Alcotest.(check bool) "different content differs" true
    (Content_hash.hex "hello" <> Content_hash.hex "hellp");
  Alcotest.(check bool) "empty hashable" true
    (Content_hash.is_valid (Content_hash.hex ""))

let test_hash_validation () =
  Alcotest.(check bool) "short rejected" false (Content_hash.is_valid "abc");
  Alcotest.(check bool) "uppercase rejected" false
    (Content_hash.is_valid (String.make 32 'A'));
  Alcotest.(check bool) "nonhex rejected" false
    (Content_hash.is_valid (String.make 32 'g'))

(* ---- Object_store ---- *)

let test_object_store_roundtrip () =
  let store = Result.get_ok (Object_store.create ~dir:(temp_dir ())) in
  let content = "some\nbinary\x00ish content" in
  let digest = Result.get_ok (Object_store.put store content) in
  Alcotest.(check bool) "mem" true (Object_store.mem store digest);
  Alcotest.(check string) "get" content
    (Result.get_ok (Object_store.get store digest));
  (* idempotent put *)
  let digest2 = Result.get_ok (Object_store.put store content) in
  Alcotest.(check string) "dedup" digest digest2;
  Alcotest.(check int) "one object" 1
    (List.length (Object_store.list_digests store));
  (* framing adds one byte; compression may shrink below raw *)
  Alcotest.(check bool) "bytes accounted" true
    (Object_store.total_bytes store <= String.length content + 1
    && Object_store.total_bytes store > 0)

let test_object_store_delete_missing () =
  let store = Result.get_ok (Object_store.create ~dir:(temp_dir ())) in
  let digest = Result.get_ok (Object_store.put store "x") in
  Object_store.delete store digest;
  Alcotest.(check bool) "deleted" false (Object_store.mem store digest);
  Object_store.delete store digest;
  (* double delete ok *)
  (match Object_store.get store digest with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing object must error");
  match Object_store.get store "zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid digest must error"

(* ---- Repo ---- *)

let ok = function Ok v -> v | Error e -> Alcotest.failf "repo error: %s" e

let test_repo_commit_checkout () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  Alcotest.(check bool) "no head initially" true (Repo.head repo = None);
  let v1 = ok (Repo.commit repo ~message:"one" "a,b\n1,2") in
  let v2 = ok (Repo.commit repo ~message:"two" "a,b\n1,2\n3,4") in
  Alcotest.(check int) "ids sequential" (v1 + 1) v2;
  Alcotest.(check (option int)) "head advanced" (Some v2) (Repo.head repo);
  Alcotest.(check string) "checkout v1" "a,b\n1,2" (ok (Repo.checkout repo v1));
  Alcotest.(check string) "checkout v2" "a,b\n1,2\n3,4"
    (ok (Repo.checkout repo v2));
  match Repo.checkout repo 99 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown version must error"

let test_repo_persistence () =
  let dir = temp_dir () in
  let v2 =
    let repo = ok (Repo.init ~path:dir) in
    let _ = ok (Repo.commit repo ~message:"one" "alpha") in
    ok (Repo.commit repo ~message:"two" "alpha\nbeta")
  in
  let repo = ok (Repo.open_repo ~path:dir) in
  Alcotest.(check string) "reopened checkout" "alpha\nbeta"
    (ok (Repo.checkout repo v2));
  Alcotest.(check int) "log preserved" 2 (List.length (Repo.log repo));
  let info = Option.get (Repo.commit_info repo v2) in
  Alcotest.(check string) "message preserved" "two" info.Repo.message;
  (* double init fails *)
  match Repo.init ~path:dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double init must fail"

let test_repo_branches_and_merge () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let v1 = ok (Repo.commit repo "base") in
  ok (Repo.create_branch repo "feature" ());
  Alcotest.(check string) "switched" "feature" (Repo.current_branch repo);
  let v2 = ok (Repo.commit repo "base\nfeature-work") in
  ok (Repo.switch repo "main");
  let v3 = ok (Repo.commit repo "base\nmain-work") in
  (* user-performed merge with two parents *)
  let vm =
    ok (Repo.commit repo ~parents:[ v3; v2 ] "base\nmain-work\nfeature-work")
  in
  let info = Option.get (Repo.commit_info repo vm) in
  Alcotest.(check (list int)) "merge parents" [ v3; v2 ] info.Repo.parents;
  Alcotest.(check string) "merge content" "base\nmain-work\nfeature-work"
    (ok (Repo.checkout repo vm));
  Alcotest.(check bool) "v1 still retrievable" true
    (Repo.checkout repo v1 = Ok "base");
  (* duplicate branch and unknown switch fail *)
  (match Repo.create_branch repo "feature" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate branch");
  match Repo.switch repo "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown branch"

let test_repo_delta_storage () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let big = String.concat "\n" (List.init 100 (fun i -> Printf.sprintf "row %d" i)) in
  let _ = ok (Repo.commit repo big) in
  let _ = ok (Repo.commit repo (big ^ "\nrow 100")) in
  let stats = Repo.stats repo in
  Alcotest.(check int) "second version delta-stored" 1 stats.Repo.n_delta;
  Alcotest.(check bool) "storage far below two copies" true
    (stats.Repo.storage_bytes < 2 * String.length big)

let test_repo_optimize_strategies () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let rng = Prng.create ~seed:67 in
  let content = ref (String.concat "\n" (List.init 60 (fun i -> Printf.sprintf "line %d %d" i (Prng.int rng 10)))) in
  let ids = ref [] in
  for i = 1 to 12 do
    ids := ok (Repo.commit repo ~message:(string_of_int i) !content) :: !ids;
    content :=
      !content ^ Printf.sprintf "\nextra %d %d" i (Prng.int rng 100)
  done;
  let contents_before =
    List.map (fun v -> (v, ok (Repo.checkout repo v))) !ids
  in
  List.iter
    (fun strategy ->
      (* [~check:true] routes every strategy's plan through
         Solution_check before the rewrite. *)
      let stats = ok (Repo.optimize repo ~check:true strategy) in
      Alcotest.(check int) "versions preserved" 12 stats.Repo.n_versions;
      (* all contents identical after the rewrite *)
      List.iter
        (fun (v, before) ->
          Alcotest.(check string) "content preserved" before
            (ok (Repo.checkout repo v)))
        contents_before)
    [
      Repo.Min_storage;
      Repo.Min_recreation;
      Repo.Budgeted_sum 1.5;
      Repo.Bounded_max 3.0;
      Repo.Git_window (5, 10);
      Repo.Svn_skip;
    ];
  (* min-recreation materializes everything *)
  let stats = ok (Repo.optimize repo Repo.Min_recreation) in
  Alcotest.(check int) "all materialized" 12 stats.Repo.n_full;
  Alcotest.(check int) "no chains" 0 stats.Repo.max_chain;
  (* min-storage plan matches MCA on the same graph: storage strictly
     less than materializing everything *)
  let stats2 = ok (Repo.optimize repo Repo.Min_storage) in
  Alcotest.(check bool) "delta storage wins" true
    (stats2.Repo.storage_bytes < stats.Repo.storage_bytes)

let test_repo_storage_parents () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let _ = ok (Repo.commit repo "aaa") in
  let _ = ok (Repo.commit repo "aaa\nbbb") in
  let _ = ok (Repo.optimize repo Repo.Min_recreation) in
  Alcotest.(check (list (pair int int))) "all materialized"
    [ (0, 1); (0, 2) ]
    (Repo.storage_parents repo)

let test_repo_unknown_parent () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  match Repo.commit repo ~parents:[ 42 ] "content" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parent must fail"

let suite =
  [
    Alcotest.test_case "hash shape" `Quick test_hash_shape;
    Alcotest.test_case "hash validation" `Quick test_hash_validation;
    Alcotest.test_case "object store roundtrip" `Quick
      test_object_store_roundtrip;
    Alcotest.test_case "object store delete/missing" `Quick
      test_object_store_delete_missing;
    Alcotest.test_case "commit / checkout" `Quick test_repo_commit_checkout;
    Alcotest.test_case "persistence" `Quick test_repo_persistence;
    Alcotest.test_case "branches / merge" `Quick test_repo_branches_and_merge;
    Alcotest.test_case "delta storage on commit" `Quick test_repo_delta_storage;
    Alcotest.test_case "optimize strategies" `Quick
      test_repo_optimize_strategies;
    Alcotest.test_case "storage parents" `Quick test_repo_storage_parents;
    Alcotest.test_case "unknown parent" `Quick test_repo_unknown_parent;
  ]
