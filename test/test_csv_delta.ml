module Csv = Versioning_delta.Csv
module Delta = Versioning_delta.Delta

(* ---- Csv ---- *)

let test_parse_print_roundtrip () =
  let s = "a,b,c\n1,2,3\n4,5,6" in
  Alcotest.(check string) "roundtrip" s (Csv.print (Csv.parse s))

let test_empty () =
  Alcotest.(check int) "empty string = empty table" 0
    (Csv.n_rows (Csv.parse ""));
  Alcotest.(check string) "prints back to empty" "" (Csv.print [||])

let test_shape () =
  let t = Csv.parse "a,b\n1,2\n3,4" in
  Alcotest.(check int) "rows" 3 (Csv.n_rows t);
  Alcotest.(check int) "cols" 2 (Csv.n_cols t);
  Alcotest.(check bool) "rect" true (Csv.is_rect t);
  let ragged = [| [| "a" |]; [| "b"; "c" |] |] in
  Alcotest.(check bool) "ragged detected" false (Csv.is_rect ragged)

let test_field_ok () =
  Alcotest.(check bool) "plain ok" true (Csv.field_ok "hello world");
  Alcotest.(check bool) "comma rejected" false (Csv.field_ok "a,b");
  Alcotest.(check bool) "newline rejected" false (Csv.field_ok "a\nb");
  Alcotest.check_raises "print rejects bad field"
    (Invalid_argument "Csv.print: illegal field a,b") (fun () ->
      ignore (Csv.print [| [| "a,b" |] |]))

let test_single_cell () =
  let s = "x" in
  Alcotest.(check string) "single cell" s (Csv.print (Csv.parse s))

(* ---- Delta cost model ---- *)

let doc_a = "id,v\n1,alpha\n2,beta\n3,gamma\n4,delta\n5,epsilon"
let doc_b = "id,v\n1,alpha\n2,BETA\n3,gamma\n4,delta\n5,epsilon\n6,zeta"

let test_materialize_cost () =
  let d = Delta.materialize doc_a in
  Alcotest.(check (float 0.)) "storage = length"
    (float_of_int (String.length doc_a))
    (Delta.storage_cost d);
  Alcotest.(check bool) "is materialized" true (Delta.is_materialized d);
  Alcotest.(check string) "name" "full" (Delta.mechanism_name d)

let test_compressed_materialize_smaller () =
  let repetitive = String.concat "\n" (List.init 300 (fun _ -> "same,line")) in
  let plain = Delta.materialize repetitive in
  let compressed = Delta.materialize ~compress:true repetitive in
  Alcotest.(check bool) "compression shrinks" true
    (Delta.storage_cost compressed < Delta.storage_cost plain)

let test_line_delta_cheaper_than_full () =
  let d = Delta.line_delta doc_a doc_b in
  Alcotest.(check bool) "delta smaller than full" true
    (Delta.storage_cost d < float_of_int (String.length doc_b));
  Alcotest.(check string) "name" "line" (Delta.mechanism_name d);
  Alcotest.(check bool) "not materialized" false (Delta.is_materialized d)

let test_cell_and_xor_names () =
  let a = Csv.parse doc_a and b = Csv.parse doc_b in
  Alcotest.(check string) "cell" "cell"
    (Delta.mechanism_name (Delta.cell_delta a b));
  Alcotest.(check string) "xor" "xor"
    (Delta.mechanism_name (Delta.xor_delta doc_a doc_b))

let test_proportional_model () =
  let d = Delta.line_delta doc_a doc_b in
  Alcotest.(check (float 1e-9)) "phi = delta under proportional model"
    (Delta.storage_cost d)
    (Delta.recreation_cost Delta.proportional_model d
       ~output_bytes:(String.length doc_b))

let test_io_cpu_model_diverges () =
  let d = Delta.line_delta ~compress:true doc_a doc_b in
  let phi =
    Delta.recreation_cost Delta.io_cpu_model d
      ~output_bytes:(String.length doc_b)
  in
  Alcotest.(check bool) "phi > delta when CPU terms apply" true
    (phi > Delta.storage_cost d);
  (* a materialized uncompressed object pays only I/O *)
  let m = Delta.materialize doc_b in
  Alcotest.(check (float 1e-9)) "materialized pays only io"
    (Delta.storage_cost m)
    (Delta.recreation_cost Delta.io_cpu_model m
       ~output_bytes:(String.length doc_b))

let test_xor_compression_effective () =
  let plain = Delta.xor_delta doc_a (doc_a ^ "!") in
  let compressed = Delta.xor_delta ~compress:true doc_a (doc_a ^ "!") in
  Alcotest.(check bool) "zero-heavy xor compresses well" true
    (Delta.storage_cost compressed *. 3.0 < Delta.storage_cost plain)

let suite =
  [
    Alcotest.test_case "csv roundtrip" `Quick test_parse_print_roundtrip;
    Alcotest.test_case "csv empty" `Quick test_empty;
    Alcotest.test_case "csv shape" `Quick test_shape;
    Alcotest.test_case "csv field_ok" `Quick test_field_ok;
    Alcotest.test_case "csv single cell" `Quick test_single_cell;
    Alcotest.test_case "materialize cost" `Quick test_materialize_cost;
    Alcotest.test_case "compressed materialize" `Quick
      test_compressed_materialize_smaller;
    Alcotest.test_case "line delta cheaper" `Quick
      test_line_delta_cheaper_than_full;
    Alcotest.test_case "mechanism names" `Quick test_cell_and_xor_names;
    Alcotest.test_case "proportional model" `Quick test_proportional_model;
    Alcotest.test_case "io+cpu model" `Quick test_io_cpu_model_diverges;
    Alcotest.test_case "xor compression" `Quick test_xor_compression_effective;
  ]
