(* Retry policy: exponential backoff with jitter, transient-only
   retries, bounded attempts. *)

module Retry = Versioning_util.Retry

let test_delay_growth () =
  (* without jitter, delays grow by the multiplier and cap out *)
  let p =
    {
      Retry.max_attempts = 10;
      base_delay = 0.1;
      max_delay = 1.0;
      multiplier = 2.0;
      jitter = 0.0;
    }
  in
  let d n = Retry.delay p ~attempt:n ~rand:0.0 in
  Alcotest.(check (float 1e-9)) "attempt 0" 0.1 (d 0);
  Alcotest.(check (float 1e-9)) "attempt 1" 0.2 (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.4 (d 2);
  Alcotest.(check (float 1e-9)) "capped" 1.0 (d 5);
  Alcotest.(check (float 1e-9)) "still capped" 1.0 (d 9)

let test_delay_jitter () =
  (* full jitter with rand=1 halves nothing but scales down; delay is
     always within [(1-jitter)*base, base] and never negative *)
  let p = { Retry.default with base_delay = 1.0; multiplier = 1.0; jitter = 0.5 } in
  Alcotest.(check (float 1e-9)) "rand=0 keeps full delay" 1.0
    (Retry.delay p ~attempt:0 ~rand:0.0);
  Alcotest.(check (float 1e-9)) "rand=1 scales by 1-jitter" 0.5
    (Retry.delay p ~attempt:0 ~rand:1.0);
  let d = Retry.delay p ~attempt:0 ~rand:0.3 in
  Alcotest.(check bool) "within band" true (d >= 0.5 && d <= 1.0)

let no_sleep _ = ()

let test_retries_until_success () =
  let calls = ref 0 in
  let result =
    Retry.with_policy ~sleep:no_sleep
      ~rand:(fun () -> 0.0)
      ~retryable:(fun _ -> true)
      (fun ~attempt ->
        incr calls;
        if attempt < 2 then Error "transient" else Ok "done")
  in
  Alcotest.(check (result string string)) "succeeds" (Ok "done") result;
  Alcotest.(check int) "three attempts" 3 !calls

let test_exhausts_attempts () =
  let calls = ref 0 in
  let result =
    Retry.with_policy
      ~policy:{ Retry.default with max_attempts = 3 }
      ~sleep:no_sleep
      ~rand:(fun () -> 0.0)
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ ->
        incr calls;
        Error "still down")
  in
  Alcotest.(check (result string string)) "last error" (Error "still down") result;
  Alcotest.(check int) "exactly max_attempts" 3 !calls

let test_non_retryable_stops () =
  let calls = ref 0 in
  let result =
    Retry.with_policy ~sleep:no_sleep
      ~rand:(fun () -> 0.0)
      ~retryable:(fun e -> e = "transient")
      (fun ~attempt:_ ->
        incr calls;
        Error "fatal")
  in
  Alcotest.(check (result string string)) "fails fast" (Error "fatal") result;
  Alcotest.(check int) "one attempt" 1 !calls

let test_sleep_durations () =
  (* the sleeps actually follow the policy schedule *)
  let slept = ref [] in
  let _ =
    Retry.with_policy
      ~policy:
        {
          Retry.max_attempts = 4;
          base_delay = 0.1;
          max_delay = 10.0;
          multiplier = 2.0;
          jitter = 0.0;
        }
      ~sleep:(fun d -> slept := d :: !slept)
      ~rand:(fun () -> 0.0)
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> (Error "x" : (unit, string) result))
  in
  let slept = List.rev !slept in
  Alcotest.(check int) "three sleeps for four attempts" 3 (List.length slept);
  Alcotest.(check (list (float 1e-9))) "schedule" [ 0.1; 0.2; 0.4 ] slept

let test_on_retry_callback () =
  (* the callback fires exactly once per backoff — attempts minus one
     when every attempt fails — and sees the policy's delay *)
  let fired = ref [] in
  let result =
    Retry.with_policy
      ~policy:
        {
          Retry.max_attempts = 3;
          base_delay = 0.1;
          max_delay = 1.0;
          multiplier = 2.0;
          jitter = 0.0;
        }
      ~sleep:no_sleep
      ~rand:(fun () -> 0.0)
      ~on_retry:(fun ~attempt ~delay -> fired := (attempt, delay) :: !fired)
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> (Error "x" : (unit, string) result))
  in
  Alcotest.(check (result unit string)) "still fails" (Error "x") result;
  Alcotest.(check (list (pair int (float 1e-9))))
    "one callback per backoff, with the schedule's delays"
    [ (0, 0.1); (1, 0.2) ]
    (List.rev !fired)

let test_on_retry_not_called_on_success () =
  let fired = ref 0 in
  let result =
    Retry.with_policy ~sleep:no_sleep
      ~rand:(fun () -> 0.0)
      ~on_retry:(fun ~attempt:_ ~delay:_ -> incr fired)
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> Ok "fine")
  in
  Alcotest.(check (result string string)) "ok" (Ok "fine") result;
  Alcotest.(check int) "no callback without a retry" 0 !fired

let test_seeded_rand_reproducible () =
  (* two streams from the same seed agree exactly; a different seed
     diverges — jitter in tests and the chaos harness is replayable *)
  let take n f = List.init n (fun _ -> f ()) in
  let a = take 16 (Retry.seeded_rand ~seed:42) in
  let b = take 16 (Retry.seeded_rand ~seed:42) in
  let c = take 16 (Retry.seeded_rand ~seed:43) in
  Alcotest.(check (list (float 0.0))) "same seed, same stream" a b;
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  List.iter
    (fun v -> Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0))
    a

let suite =
  [
    Alcotest.test_case "delay growth" `Quick test_delay_growth;
    Alcotest.test_case "seeded jitter reproducible" `Quick
      test_seeded_rand_reproducible;
    Alcotest.test_case "on_retry fires once per backoff" `Quick
      test_on_retry_callback;
    Alcotest.test_case "on_retry silent on success" `Quick
      test_on_retry_not_called_on_success;
    Alcotest.test_case "delay jitter" `Quick test_delay_jitter;
    Alcotest.test_case "retries until success" `Quick test_retries_until_success;
    Alcotest.test_case "exhausts attempts" `Quick test_exhausts_attempts;
    Alcotest.test_case "non-retryable stops" `Quick test_non_retryable_stops;
    Alcotest.test_case "sleep durations" `Quick test_sleep_durations;
  ]
