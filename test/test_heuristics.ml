(* LMG, MP, LAST, GitH, Skip_delta: constraints respected, guarantees
   hold, and qualitative dominance relations from the paper. *)

open Versioning_core
module Prng = Versioning_util.Prng

let setup g =
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let spt = Fixtures.ok (Spt.solve g) in
  (base, spt)

(* ---- LMG ---- *)

let test_lmg_budget_respected () =
  let rng = Prng.create ~seed:41 in
  for _ = 1 to 40 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:20 ~density:0.4 rng in
    let base, spt = setup g in
    let cmin = Storage_graph.storage_cost base in
    let cmax = Storage_graph.storage_cost spt in
    let budget = cmin +. Prng.float rng (Float.max 1.0 (cmax -. cmin)) in
    let sg = Lmg.solve g ~base ~spt ~budget () in
    Fixtures.check_valid g sg;
    Alcotest.(check bool) "within budget" true
      (Storage_graph.storage_cost sg <= budget +. 1e-9);
    Alcotest.(check bool) "no worse than base on sumR" true
      (Storage_graph.sum_recreation sg
      <= Storage_graph.sum_recreation base +. 1e-9)
  done

let test_lmg_budget_monotone () =
  let rng = Prng.create ~seed:43 in
  let g = Fixtures.random_graph ~n_min:15 ~n_max:25 ~density:0.4 rng in
  let base, spt = setup g in
  let cmin = Storage_graph.storage_cost base in
  let results =
    List.map
      (fun f -> Storage_graph.sum_recreation (Lmg.solve g ~base ~spt ~budget:(f *. cmin) ()))
      [ 1.0; 1.5; 2.0; 4.0 ]
  in
  let rec decreasing = function
    | a :: (b :: _ as tl) -> a +. 1e-9 >= b && decreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "sumR non-increasing in budget" true
    (decreasing results)

let test_lmg_generous_budget_reaches_spt () =
  (* With an unbounded budget LMG should push sumR down to (or near)
     the SPT optimum. *)
  let rng = Prng.create ~seed:47 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:12 rng in
    let base, spt = setup g in
    let sg = Lmg.solve g ~base ~spt ~budget:infinity () in
    Alcotest.(check bool) "close to SPT optimum" true
      (Storage_graph.sum_recreation sg
      <= 1.05 *. Storage_graph.sum_recreation spt +. 1e-9)
  done

let test_lmg_tight_budget_is_base () =
  let g = Fixtures.figure1 () in
  let base, spt = setup g in
  let sg =
    Lmg.solve g ~base ~spt ~budget:(Storage_graph.storage_cost base) ()
  in
  Alcotest.(check (list (pair int int))) "no swaps fit"
    (Storage_graph.to_parents base) (Storage_graph.to_parents sg)

let test_lmg_workload_aware_never_worse () =
  let rng = Prng.create ~seed:53 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:10 ~n_max:20 ~density:0.4 rng in
    let n = Aux_graph.n_versions g in
    let base, spt = setup g in
    let freqs = Array.make (n + 1) 0.01 in
    freqs.(n) <- 1000.0;
    (* one hot version *)
    let budget = 1.3 *. Storage_graph.storage_cost base in
    let blind = Lmg.solve g ~base ~spt ~budget () in
    let aware = Lmg.solve g ~base ~spt ~budget ~freqs () in
    let wb = Storage_graph.weighted_recreation blind ~freqs in
    let wa = Storage_graph.weighted_recreation aware ~freqs in
    Alcotest.(check bool) "aware never much worse" true (wa <= wb +. 1e-6)
  done

let test_lmg_workload_aware_wins () =
  (* Crafted instance: two chains off V1; the budget affords exactly
     one materialization swap. Count-based LMG prefers the long chain
     (more descendants); frequency-aware LMG must prefer the hot leaf
     on the short chain. *)
  let g = Aux_graph.create ~n_versions:5 in
  for v = 1 to 5 do
    Aux_graph.add_materialization g ~version:v ~delta:100. ~phi:100.
  done;
  (* chain A: 1 -> 2 -> 3 -> 4; chain B: 1 -> 5 *)
  List.iter
    (fun (s, d) -> Aux_graph.add_delta g ~src:s ~dst:d ~delta:10. ~phi:10.)
    [ (1, 2); (2, 3); (3, 4); (1, 5) ];
  let base, spt = setup g in
  let budget = Storage_graph.storage_cost base +. 90.0 in
  let freqs = [| 0.; 0.01; 0.01; 0.01; 0.01; 1000. |] in
  let blind = Lmg.solve g ~base ~spt ~budget () in
  let aware = Lmg.solve g ~base ~spt ~budget ~freqs () in
  Alcotest.(check bool) "aware materializes the hot version" true
    (Storage_graph.is_materialized aware 5);
  Alcotest.(check bool) "aware beats blind on weighted recreation" true
    (Storage_graph.weighted_recreation aware ~freqs
    < Storage_graph.weighted_recreation blind ~freqs -. 1e-6)

let test_lmg_p5 () =
  let rng = Prng.create ~seed:59 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:15 rng in
    let base, spt = setup g in
    let spt_sum = Storage_graph.sum_recreation spt in
    let bound = spt_sum *. 1.5 in
    let sg = Fixtures.ok (Lmg.solve_p5 g ~base ~spt ~sum_bound:bound ()) in
    Alcotest.(check bool) "sum bound met" true
      (Storage_graph.sum_recreation sg <= bound +. 1e-6);
    (* infeasible bound reports an error *)
    match Lmg.solve_p5 g ~base ~spt ~sum_bound:(spt_sum /. 2.0) () with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "bound below SPT optimum must fail"
  done

(* ---- MP ---- *)

let test_mp_theta_respected () =
  (* MP is a heuristic: a tight theta can defeat it even when feasible
     (the paper runs it with generous bounds). The hard guarantees:
     any returned tree respects theta, and an unconstraining theta
     always succeeds. *)
  let rng = Prng.create ~seed:61 in
  let succeeded = ref 0 in
  for _ = 1 to 40 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:20 ~density:0.4 rng in
    let dist = Spt.distances g in
    let maxd = Array.fold_left Float.max 0.0 dist in
    let theta = maxd *. (1.5 +. Prng.float rng 2.0) in
    (match Mp.solve g ~theta with
    | { Mp.tree = Some sg; infeasible = [] } ->
        incr succeeded;
        Fixtures.check_valid g sg;
        Alcotest.(check bool) "max recreation within theta" true
          (Storage_graph.max_recreation sg <= theta +. 1e-9)
    | _ -> ());
    (* unconstraining theta always spans *)
    match Mp.solve g ~theta:1e12 with
    | { Mp.tree = Some sg; _ } -> Fixtures.check_valid g sg
    | _ -> Alcotest.fail "unconstrained MP must span"
  done;
  Alcotest.(check bool) "mostly succeeds at loose theta" true (!succeeded >= 30)

let test_mp_infeasible () =
  let g = Fixtures.figure1 () in
  (* No version can be recreated in under 9700. *)
  match Mp.solve g ~theta:100.0 with
  | { Mp.tree = None; infeasible } ->
      Alcotest.(check int) "all versions infeasible" 5 (List.length infeasible)
  | _ -> Alcotest.fail "expected infeasibility"

let test_mp_tight_theta_is_spt () =
  (* At theta = max SPT distance a solution exists (the SPT), but the
     greedy may or may not find it; when it does, the bound holds. *)
  let rng = Prng.create ~seed:67 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:4 ~n_max:10 rng in
    let dist = Spt.distances g in
    let maxd = Array.fold_left Float.max 0.0 dist in
    match Mp.solve g ~theta:maxd with
    | { Mp.tree = Some sg; _ } ->
        Alcotest.(check bool) "theta attained" true
          (Storage_graph.max_recreation sg <= maxd +. 1e-9)
    | { Mp.tree = None; infeasible } ->
        Alcotest.(check bool) "reports the stuck versions" true
          (infeasible <> [])
  done

let test_mp_storage_above_mca () =
  let rng = Prng.create ~seed:71 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:4 ~n_max:12 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let dist = Spt.distances g in
    let maxd = Array.fold_left Float.max 0.0 dist in
    match Mp.solve g ~theta:(2.0 *. maxd) with
    | { Mp.tree = Some sg; _ } ->
        Alcotest.(check bool) "storage lower-bounded by MCA" true
          (Storage_graph.storage_cost sg
          >= Storage_graph.storage_cost base -. 1e-9)
    | _ -> Alcotest.fail "feasible"
  done

let test_mp_p4 () =
  let rng = Prng.create ~seed:73 in
  for _ = 1 to 15 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:12 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let budget =
      Storage_graph.storage_cost base
      +. (0.5 *. (Storage_graph.storage_cost spt -. Storage_graph.storage_cost base))
    in
    (* MP's unconstrained storage is its floor: if that fits the
       budget, the binary search must succeed within budget. *)
    let unconstrained =
      match Mp.solve g ~theta:1e12 with
      | { Mp.tree = Some sg; _ } -> Storage_graph.storage_cost sg
      | _ -> infinity
    in
    match Mp.solve_p4 g ~budget () with
    | Ok sg ->
        Alcotest.(check bool) "budget respected" true
          (Storage_graph.storage_cost sg <= budget +. 1e-9)
    | Error _ ->
        Alcotest.(check bool) "only fails when even unconstrained MP is over budget"
          true
          (unconstrained > budget)
  done

(* ---- LAST ---- *)

let test_last_guarantees_undirected () =
  let rng = Prng.create ~seed:79 in
  for _ = 1 to 30 do
    let g = Aux_graph.symmetrize (Fixtures.random_graph ~n_min:5 ~n_max:15 rng) in
    let base = Fixtures.ok (Mst.prim g) in
    let alpha = 1.5 +. Prng.float rng 2.0 in
    let sg = Last.solve g ~base ~alpha in
    Fixtures.check_valid g sg;
    let dist = Spt.distances g in
    for v = 1 to Aux_graph.n_versions g do
      Alcotest.(check bool) "alpha bound" true
        (Storage_graph.recreation_cost sg v <= (alpha *. dist.(v)) +. 1e-6)
    done;
    let bound = (1.0 +. (2.0 /. (alpha -. 1.0))) *. Mst.weight base in
    Alcotest.(check bool) "storage bound" true
      (Storage_graph.storage_cost sg <= bound +. 1e-6)
  done

let test_last_directed_validity () =
  let rng = Prng.create ~seed:83 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:15 rng in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let sg = Last.solve g ~base ~alpha:2.0 in
    Fixtures.check_valid g sg
  done

let test_last_alpha_validation () =
  let g = Fixtures.figure1 () in
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  Alcotest.check_raises "alpha <= 1 rejected"
    (Invalid_argument "Last.solve: alpha must exceed 1") (fun () ->
      ignore (Last.solve g ~base ~alpha:1.0))

let test_last_large_alpha_is_mst () =
  (* With a huge alpha nothing is grafted: LAST returns the base tree's
     storage cost. *)
  let rng = Prng.create ~seed:89 in
  let g = Aux_graph.symmetrize (Fixtures.random_graph ~n_min:8 ~n_max:15 rng) in
  let base = Fixtures.ok (Mst.prim g) in
  let sg = Last.solve g ~base ~alpha:1e9 in
  Alcotest.check Fixtures.float_eq "storage equals MST" (Mst.weight base)
    (Storage_graph.storage_cost sg)

(* ---- GitH ---- *)

let test_gith_validity_and_depth () =
  let rng = Prng.create ~seed:97 in
  for _ = 1 to 30 do
    let g = Fixtures.random_graph ~n_min:5 ~n_max:20 rng in
    let max_depth = 1 + Prng.int rng 6 in
    let window = 1 + Prng.int rng 8 in
    let sg = Fixtures.ok (Gith.solve g ~window ~max_depth) in
    Fixtures.check_valid g sg;
    for v = 1 to Aux_graph.n_versions g do
      Alcotest.(check bool) "depth bounded" true
        (Storage_graph.depth sg v <= max_depth)
    done
  done

let test_gith_largest_materialized () =
  let g = Fixtures.figure1 () in
  let sg = Fixtures.ok (Gith.solve g ~window:0 ~max_depth:50) in
  (* The largest version (V5, 10120) is considered first and
     materialized. *)
  Alcotest.(check bool) "largest version materialized" true
    (Storage_graph.is_materialized sg 5)

let test_gith_window_effect () =
  (* A wider window can only see more candidates, so unbounded-window
     storage is never worse than window=1 given same depth. *)
  let rng = Prng.create ~seed:101 in
  let better = ref 0 in
  for _ = 1 to 20 do
    let g = Fixtures.random_graph ~n_min:10 ~n_max:25 ~density:0.5 rng in
    let wide = Fixtures.ok (Gith.solve g ~window:0 ~max_depth:20) in
    let narrow = Fixtures.ok (Gith.solve g ~window:1 ~max_depth:20) in
    if Storage_graph.storage_cost wide < Storage_graph.storage_cost narrow -. 1e-9
    then incr better
  done;
  Alcotest.(check bool) "wide window usually helps" true (!better >= 10)

let test_gith_missing_materialization () =
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:10. ~phi:10.;
  (* version 2: no materialization, no delta -> error *)
  match Gith.solve g ~window:0 ~max_depth:10 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* ---- Skip_delta ---- *)

let test_skip_base_values () =
  List.iter
    (fun (r, expected) ->
      Alcotest.(check int) (Printf.sprintf "base of %d" r) expected
        (Skip_delta.skip_base r))
    [ (1, 0); (2, 0); (3, 2); (4, 0); (5, 4); (6, 4); (7, 6); (8, 0); (12, 8) ];
  Alcotest.check_raises "r = 0 rejected"
    (Invalid_argument "Skip_delta.skip_base: r must be positive") (fun () ->
      ignore (Skip_delta.skip_base 0))

let test_chain_length_log () =
  (* chain length is the popcount, hence <= log2 r + 1 *)
  for r = 1 to 512 do
    let len = Skip_delta.chain_length r in
    let log2 = int_of_float (Float.log2 (float_of_int r)) + 1 in
    Alcotest.(check bool) "O(log n) chains" true (len <= log2)
  done

let test_skip_solve () =
  let n = 8 in
  let g = Aux_graph.create ~n_versions:n in
  for v = 1 to n do
    Aux_graph.add_materialization g ~version:v ~delta:100. ~phi:100.
  done;
  (* reveal exactly the skip edges *)
  let order = Array.init n (fun i -> i + 1) in
  List.iter
    (fun (p, v) ->
      if p <> 0 then Aux_graph.add_delta g ~src:p ~dst:v ~delta:7. ~phi:7.)
    (Skip_delta.parents ~order);
  let sg = Fixtures.ok (Skip_delta.solve g ~order) in
  Fixtures.check_valid g sg;
  (* storage: 1 materialization + 7 deltas *)
  Alcotest.check Fixtures.float_eq "storage" (100. +. (7. *. 7.))
    (Storage_graph.storage_cost sg);
  (* chain depth of version 8 (position 7 = 0b111) is 3 *)
  Alcotest.(check int) "depth is popcount" 3 (Storage_graph.depth sg 8)

let test_skip_solve_missing_edge () =
  let g = Aux_graph.create ~n_versions:3 in
  for v = 1 to 3 do
    Aux_graph.add_materialization g ~version:v ~delta:10. ~phi:10.
  done;
  match Skip_delta.solve g ~order:[| 1; 2; 3 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing skip edges must fail"

let suite =
  [
    Alcotest.test_case "lmg budget respected" `Quick test_lmg_budget_respected;
    Alcotest.test_case "lmg monotone in budget" `Quick test_lmg_budget_monotone;
    Alcotest.test_case "lmg generous budget -> spt" `Quick
      test_lmg_generous_budget_reaches_spt;
    Alcotest.test_case "lmg tight budget = base" `Quick
      test_lmg_tight_budget_is_base;
    Alcotest.test_case "lmg workload-aware never worse" `Quick
      test_lmg_workload_aware_never_worse;
    Alcotest.test_case "lmg workload-aware wins" `Quick
      test_lmg_workload_aware_wins;
    Alcotest.test_case "lmg p5 binary search" `Quick test_lmg_p5;
    Alcotest.test_case "mp theta respected" `Quick test_mp_theta_respected;
    Alcotest.test_case "mp infeasible" `Quick test_mp_infeasible;
    Alcotest.test_case "mp tight theta" `Quick test_mp_tight_theta_is_spt;
    Alcotest.test_case "mp storage >= mca" `Quick test_mp_storage_above_mca;
    Alcotest.test_case "mp p4 binary search" `Quick test_mp_p4;
    Alcotest.test_case "last guarantees (undirected)" `Quick
      test_last_guarantees_undirected;
    Alcotest.test_case "last directed validity" `Quick
      test_last_directed_validity;
    Alcotest.test_case "last alpha validation" `Quick test_last_alpha_validation;
    Alcotest.test_case "last huge alpha = mst" `Quick
      test_last_large_alpha_is_mst;
    Alcotest.test_case "gith validity + depth" `Quick
      test_gith_validity_and_depth;
    Alcotest.test_case "gith materializes largest" `Quick
      test_gith_largest_materialized;
    Alcotest.test_case "gith window effect" `Quick test_gith_window_effect;
    Alcotest.test_case "gith missing materialization" `Quick
      test_gith_missing_materialization;
    Alcotest.test_case "skip_base values" `Quick test_skip_base_values;
    Alcotest.test_case "skip chains are log" `Quick test_chain_length_log;
    Alcotest.test_case "skip solve" `Quick test_skip_solve;
    Alcotest.test_case "skip missing edge" `Quick test_skip_solve_missing_edge;
  ]
