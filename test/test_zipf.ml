module Zipf = Versioning_util.Zipf
module Prng = Versioning_util.Prng

let test_masses_sum () =
  let z = Zipf.create ~n:100 ~exponent:2.0 in
  let total = Array.fold_left ( +. ) 0.0 (Zipf.masses z) in
  Alcotest.(check (float 1e-9)) "masses sum to 1" 1.0 total

let test_monotone () =
  let z = Zipf.create ~n:50 ~exponent:1.5 in
  let m = Zipf.masses z in
  for i = 0 to 48 do
    Alcotest.(check bool) "non-increasing" true (m.(i) >= m.(i + 1))
  done

let test_prob () =
  let z = Zipf.create ~n:10 ~exponent:2.0 in
  (* P(1)/P(2) = 2^2 *)
  Alcotest.(check (float 1e-9)) "ratio of ranks" 4.0
    (Zipf.prob z 1 /. Zipf.prob z 2);
  Alcotest.check_raises "rank 0 rejected"
    (Invalid_argument "Zipf.prob: rank out of range") (fun () ->
      ignore (Zipf.prob z 0))

let test_sample_bounds () =
  let z = Zipf.create ~n:20 ~exponent:2.0 in
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 2000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in [1, 20]" true (r >= 1 && r <= 20)
  done

let test_sample_skew () =
  let z = Zipf.create ~n:100 ~exponent:2.0 in
  let rng = Prng.create ~seed:5 in
  let counts = Zipf.frequencies z rng ~draws:20_000 in
  (* rank 1 holds ~61% of the mass for exponent 2, n=100 *)
  Alcotest.(check bool) "rank 1 dominates" true (counts.(0) > 10_000);
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check int) "counts conserve draws" 20_000 total

let test_n1 () =
  let z = Zipf.create ~n:1 ~exponent:2.0 in
  Alcotest.(check (float 0.)) "single rank has all mass" 1.0 (Zipf.prob z 1);
  let rng = Prng.create ~seed:6 in
  Alcotest.(check int) "always rank 1" 1 (Zipf.sample z rng)

let test_invalid () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~exponent:1.0))

let suite =
  [
    Alcotest.test_case "masses sum to 1" `Quick test_masses_sum;
    Alcotest.test_case "monotone" `Quick test_monotone;
    Alcotest.test_case "probability ratios" `Quick test_prob;
    Alcotest.test_case "sample bounds" `Quick test_sample_bounds;
    Alcotest.test_case "sample skew" `Quick test_sample_skew;
    Alcotest.test_case "n = 1" `Quick test_n1;
    Alcotest.test_case "invalid n" `Quick test_invalid;
  ]
