(* Helper for the lock-exclusion test: try to open the repository at
   argv.(1) from a genuinely separate process (the test runner itself
   cannot fork once domains have been spawned). Exit codes: 0 = lock
   correctly refused, 1 = lock wrongly acquired, 2 = wrong error. *)
let () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  exit
    (match Versioning_store.Repo.open_repo ~path:Sys.argv.(1) with
    | Error e when contains e "locked" -> 0
    | Error _ -> 2
    | Ok _ -> 1)
