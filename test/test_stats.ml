module Stats = Versioning_util.Stats

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean [| 1.; 2.; 3.; 4.; 5. |]);
  Alcotest.(check (float 1e-9)) "stddev (sample)"
    (sqrt 2.5)
    (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  Alcotest.(check (float 0.)) "stddev of singleton" 0.0 (Stats.stddev [| 7. |])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 10.0 (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100 = max" 40.0 (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "median interpolates" 25.0
    (Stats.percentile xs 50.);
  (* unsorted input is fine *)
  Alcotest.(check (float 1e-9)) "unsorted" 25.0
    (Stats.percentile [| 40.; 10.; 30.; 20. |] 50.)

let test_summarize () =
  let s = Stats.summarize [| 4.; 1.; 3.; 2. |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Stats.median;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean

let test_errors () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize [||]));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1. |] 101.))

let test_human_bytes () =
  Alcotest.(check string) "bytes" "512.00B" (Stats.human_bytes 512.);
  Alcotest.(check string) "kb" "1.50KB" (Stats.human_bytes 1536.);
  Alcotest.(check string) "mb" "2.00MB" (Stats.human_bytes (2. *. 1024. *. 1024.));
  Alcotest.(check string) "tb caps"
    "2048.00TB"
    (Stats.human_bytes (2048. *. 1024. ** 4.))

let test_input_not_modified () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.summarize xs);
  ignore (Stats.percentile xs 50.);
  Alcotest.(check (array (float 0.))) "untouched" [| 3.; 1.; 2. |] xs

let suite =
  [
    Alcotest.test_case "mean / stddev" `Quick test_mean_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "human_bytes" `Quick test_human_bytes;
    Alcotest.test_case "input not modified" `Quick test_input_not_modified;
  ]
