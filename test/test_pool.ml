(* The domain pool: deterministic results at any [jobs], exception
   propagation, and byte-identical parallel vs sequential plans for
   the phases that fan out over it (cost generation, GitH, storage
   graphs, Repo.optimize) plus the checkout materialization cache. *)

open Versioning_core
open Versioning_workload
module Pool = Versioning_util.Pool
module Prng = Versioning_util.Prng
module Digraph = Versioning_graph.Digraph
module Repo = Versioning_store.Repo

let ok = Fixtures.ok

let temp_dir () =
  let path = Filename.temp_file "dsvc_pool" "" in
  Sys.remove path;
  path

(* ---- the pool itself ---- *)

let test_parallel_init_matches_sequential () =
  let f i = (i * 31) lxor (i / 7) in
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            (Array.init n f)
            (Pool.parallel_init ~jobs n f))
        [ 0; 1; 2; 7; 100; 1000 ])
    [ 1; 2; 8 ]

let test_parallel_map_matches_sequential () =
  let input = Array.init 500 (fun i -> Printf.sprintf "item-%d" i) in
  let f s = String.length s + Hashtbl.hash s in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.map f input)
        (Pool.parallel_map ~jobs f input))
    [ 1; 2; 8 ]

let test_parallel_init_negative () =
  Alcotest.check_raises "negative length"
    (Invalid_argument "Pool.parallel_init: negative length") (fun () ->
      ignore (Pool.parallel_init ~jobs:2 (-1) (fun i -> i)))

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "raises at jobs=%d" jobs)
        true
        (match
           Pool.parallel_init ~jobs 1000 (fun i ->
               if i = 613 then raise (Boom i) else i)
         with
        | _ -> false
        | exception Boom 613 -> true))
    [ 1; 2; 8 ]

let test_default_jobs_bounds () =
  let d = Pool.default_jobs () in
  Alcotest.(check bool) "within clamp" true (d >= 1 && d <= 128);
  Alcotest.(check bool) "recommended positive" true (Pool.recommended_jobs () >= 1)

(* ---- parallel phases produce identical results ---- *)

let edge_list g =
  List.map
    (fun (e : Aux_graph.weight Digraph.edge) ->
      (e.src, e.dst, e.label.Aux_graph.delta, e.label.Aux_graph.phi))
    (Digraph.edges (Aux_graph.graph g))

let gen_aux ~jobs =
  let rng = Prng.create ~seed:77 in
  let history =
    History_gen.generate (History_gen.flat_params ~n_commits:150) rng
  in
  Cost_gen.generate ~jobs history
    { Cost_gen.default_params with max_hops = 4; reveal_cap = 10 }
    rng

let test_cost_gen_parallel_identical () =
  let seq = gen_aux ~jobs:1 in
  List.iter
    (fun jobs ->
      let par = gen_aux ~jobs in
      Alcotest.(check int)
        (Printf.sprintf "edge count jobs=%d" jobs)
        (Digraph.n_edges (Aux_graph.graph seq))
        (Digraph.n_edges (Aux_graph.graph par));
      Alcotest.(check bool)
        (Printf.sprintf "edges identical jobs=%d" jobs)
        true
        (edge_list seq = edge_list par))
    [ 2; 4 ]

let test_gith_parallel_identical () =
  let g = gen_aux ~jobs:1 in
  let seq = ok (Gith.solve ~jobs:1 g ~window:10 ~max_depth:20) in
  List.iter
    (fun jobs ->
      let par = ok (Gith.solve ~jobs g ~window:10 ~max_depth:20) in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "tree identical jobs=%d" jobs)
        (Storage_graph.to_parents seq)
        (Storage_graph.to_parents par))
    [ 2; 4 ]

let test_of_parents_parallel_identical () =
  let g = gen_aux ~jobs:1 in
  let parents = Storage_graph.to_parents (ok (Mca.solve g)) in
  let seq = ok (Storage_graph.of_parents ~jobs:1 g ~parents) in
  let par = ok (Storage_graph.of_parents ~jobs:4 g ~parents) in
  Alcotest.(check (list (pair int int)))
    "parents identical"
    (Storage_graph.to_parents seq)
    (Storage_graph.to_parents par);
  Alcotest.(check (float 1e-9))
    "storage cost identical"
    (Storage_graph.storage_cost seq)
    (Storage_graph.storage_cost par);
  (* first error in order, as a sequential scan would report *)
  Alcotest.(check bool) "same error" true
    (Storage_graph.of_parents ~jobs:1 g ~parents:[ (0, 1); (99, 2) ]
    = Storage_graph.of_parents ~jobs:4 g ~parents:[ (0, 1); (99, 2) ])

(* A small repository with branchy content, built identically twice. *)
let build_repo () =
  let dir = temp_dir () in
  let repo = ok (Repo.init ~path:dir) in
  let rng = Prng.create ~seed:11 in
  let history =
    History_gen.generate (History_gen.flat_params ~n_commits:40) rng
  in
  let data =
    Dataset_gen.generate ~name:"pool" history
      { Dataset_gen.default_params with initial_rows = 40; max_hops = 1 }
      rng
  in
  let entries =
    List.init 40 (fun i ->
        let v = i + 1 in
        ( Printf.sprintf "v%d" v,
          (if v = 1 then [] else [ v - 1 ]),
          data.Dataset_gen.contents.(v) ))
  in
  ignore (ok (Repo.import_versions repo entries));
  (dir, repo)

let test_optimize_parallel_identical () =
  let dir1, repo1 = build_repo () in
  let dir2, repo2 = build_repo () in
  List.iter
    (fun strategy ->
      ignore (ok (Repo.optimize repo1 ~jobs:1 strategy));
      ignore (ok (Repo.optimize repo2 ~jobs:4 strategy));
      Alcotest.(check (list (pair int int)))
        "identical storage plan"
        (Repo.storage_parents repo1)
        (Repo.storage_parents repo2);
      for v = 1 to 40 do
        Alcotest.(check string)
          (Printf.sprintf "content v%d" v)
          (ok (Repo.checkout repo1 v))
          (ok (Repo.checkout repo2 v))
      done)
    [ Repo.Min_storage; Repo.Git_window (8, 16); Repo.Budgeted_sum 1.5 ];
  Repo.close repo1;
  Repo.close repo2;
  ignore (Sys.command (Printf.sprintf "rm -rf %s %s" dir1 dir2))

(* ---- the checkout materialization cache ---- *)

let test_cache_hits_and_content () =
  let dir, repo = build_repo () in
  let reference = Array.init 41 (fun v -> if v = 0 then "" else ok (Repo.checkout_uncached repo v)) in
  (* cold pass fills, second pass is pure hits, contents unchanged *)
  for v = 1 to 40 do
    Alcotest.(check string) "cold" reference.(v) (ok (Repo.checkout repo v))
  done;
  let s1 = Repo.cache_stats repo in
  for v = 26 to 40 do
    Alcotest.(check string) "warm" reference.(v) (ok (Repo.checkout repo v))
  done;
  let s2 = Repo.cache_stats repo in
  Alcotest.(check int) "warm tail all hits" (s1.Repo.hits + 15) s2.Repo.hits;
  (* a chain scan pays each delta once: versions 2..40 are partial
     hits off the previous version's cached content *)
  Alcotest.(check bool) "partial hits on the chain walk" true
    (s2.Repo.partial_hits >= 30);
  Repo.close repo;
  ignore (Sys.command ("rm -rf " ^ dir))

let test_cache_bound_and_disable () =
  let dir, repo = build_repo () in
  Repo.set_cache_slots repo 2;
  for v = 1 to 40 do
    ignore (ok (Repo.checkout repo v))
  done;
  (* correctness does not depend on the bound *)
  for v = 1 to 40 do
    Alcotest.(check string)
      (Printf.sprintf "bounded cache v%d" v)
      (ok (Repo.checkout_uncached repo v))
      (ok (Repo.checkout repo v))
  done;
  (* slots = 0 disables: repeat checkouts never hit *)
  Repo.set_cache_slots repo 0;
  let s0 = Repo.cache_stats repo in
  for _ = 1 to 3 do
    ignore (ok (Repo.checkout repo 40))
  done;
  let s1 = Repo.cache_stats repo in
  Alcotest.(check int) "no hits when disabled" s0.Repo.hits s1.Repo.hits;
  Alcotest.(check int) "no partial hits when disabled" s0.Repo.partial_hits
    s1.Repo.partial_hits;
  Alcotest.(check int) "all misses when disabled" (s0.Repo.misses + 3) s1.Repo.misses;
  Alcotest.check_raises "negative bound rejected"
    (Invalid_argument "Repo.set_cache_slots: negative bound") (fun () ->
      Repo.set_cache_slots repo (-1));
  Repo.close repo;
  ignore (Sys.command ("rm -rf " ^ dir))

let test_cache_survives_optimize () =
  (* optimize re-plans storage but never changes contents; cached
     strings stay valid and verify still passes afterwards *)
  let dir, repo = build_repo () in
  let before = Array.init 41 (fun v -> if v = 0 then "" else ok (Repo.checkout repo v)) in
  ignore (ok (Repo.optimize repo ~jobs:2 Repo.Min_storage));
  for v = 1 to 40 do
    Alcotest.(check string)
      (Printf.sprintf "v%d after optimize" v)
      before.(v)
      (ok (Repo.checkout repo v))
  done;
  (match Repo.verify repo with
  | Ok () -> ()
  | Error es -> Alcotest.failf "verify: %s" (String.concat "; " es));
  Repo.close repo;
  ignore (Sys.command ("rm -rf " ^ dir))

let suite =
  [
    Alcotest.test_case "parallel_init = sequential" `Quick
      test_parallel_init_matches_sequential;
    Alcotest.test_case "parallel_map = sequential" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "negative length rejected" `Quick
      test_parallel_init_negative;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagation;
    Alcotest.test_case "default jobs bounds" `Quick test_default_jobs_bounds;
    Alcotest.test_case "cost_gen parallel identical" `Quick
      test_cost_gen_parallel_identical;
    Alcotest.test_case "gith parallel identical" `Quick
      test_gith_parallel_identical;
    Alcotest.test_case "of_parents parallel identical" `Quick
      test_of_parents_parallel_identical;
    Alcotest.test_case "optimize parallel identical" `Quick
      test_optimize_parallel_identical;
    Alcotest.test_case "cache hits and content" `Quick
      test_cache_hits_and_content;
    Alcotest.test_case "cache bound and disable" `Quick
      test_cache_bound_and_disable;
    Alcotest.test_case "cache survives optimize" `Quick
      test_cache_survives_optimize;
  ]
