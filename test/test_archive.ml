(* Multi-file archives. *)

module Archive = Versioning_store.Archive
module Line_diff = Versioning_delta.Line_diff
module Prng = Versioning_util.Prng

let e path content = { Archive.path; content }

let test_roundtrip () =
  let entries =
    [ e "b.csv" "x,y\n1,2"; e "a/nested.txt" "hello"; e "a/z.bin" "\x00\x01\n\xff" ]
  in
  let packed = Result.get_ok (Archive.pack entries) in
  let back = Result.get_ok (Archive.unpack packed) in
  Alcotest.(check (list string)) "paths sorted"
    [ "a/nested.txt"; "a/z.bin"; "b.csv" ]
    (List.map (fun x -> x.Archive.path) back);
  List.iter
    (fun orig ->
      let found = List.find (fun x -> x.Archive.path = orig.Archive.path) back in
      Alcotest.(check string) "content exact" orig.Archive.content
        found.Archive.content)
    entries

let test_canonical () =
  let a = [ e "x" "1"; e "y" "2" ] in
  let b = [ e "y" "2"; e "x" "1" ] in
  Alcotest.(check string) "order-independent"
    (Result.get_ok (Archive.pack a))
    (Result.get_ok (Archive.pack b))

let test_empty_and_binary () =
  let packed = Result.get_ok (Archive.pack []) in
  Alcotest.(check (list string)) "empty archive" []
    (Result.get_ok (Archive.paths packed));
  (* content full of newlines and entry-like lines must not confuse
     the parser *)
  let tricky = "entry 4\nfoo\nbar\nentry 99\n" in
  let packed = Result.get_ok (Archive.pack [ e "t" tricky ]) in
  let back = Result.get_ok (Archive.unpack packed) in
  Alcotest.(check string) "tricky content survives" tricky
    (List.hd back).Archive.content

let test_path_validation () =
  let bad p =
    match Archive.pack [ e p "c" ] with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "absolute rejected" true (bad "/etc/passwd");
  Alcotest.(check bool) "dotdot rejected" true (bad "a/../b");
  Alcotest.(check bool) "empty rejected" true (bad "");
  Alcotest.(check bool) "newline rejected" true (bad "a\nb");
  Alcotest.(check bool) "duplicate rejected" true
    (match Archive.pack [ e "p" "1"; e "p" "2" ] with
    | Error _ -> true
    | Ok _ -> false)

let test_corrupt_rejected () =
  Alcotest.(check bool) "not an archive" true
    (match Archive.unpack "garbage" with Error _ -> true | Ok _ -> false);
  let good = Result.get_ok (Archive.pack [ e "f" "content" ]) in
  let truncated = String.sub good 0 (String.length good - 3) in
  Alcotest.(check bool) "truncation detected" true
    (match Archive.unpack truncated with Error _ -> true | Ok _ -> false)

let test_directory_roundtrip () =
  let root = Filename.temp_file "dsvc_arch" "" in
  Sys.remove root;
  let entries =
    [ e "data/train.csv" "a,b\n1,2\n3,4"; e "data/test.csv" "a,b\n5,6"; e "README" "docs" ]
  in
  Result.get_ok (Archive.to_directory root entries);
  let read = Result.get_ok (Archive.of_directory root) in
  Alcotest.(check int) "all files" 3 (List.length read);
  let repacked = Result.get_ok (Archive.pack read) in
  Alcotest.(check string) "filesystem roundtrip is canonical"
    (Result.get_ok (Archive.pack entries))
    repacked

let test_archives_diff_compactly () =
  (* similar trees produce small line deltas - the property that makes
     the whole optimization pipeline apply to directories *)
  let mk rows extra =
    let csv =
      String.concat "\n"
        (List.init rows (fun i -> Printf.sprintf "%d,val%d" i i))
    in
    Result.get_ok
      (Archive.pack
         ([ e "big.csv" csv; e "meta" "owner: team" ] @ extra))
  in
  let a = mk 300 [] in
  let b = mk 300 [ e "notes.txt" "one new small file" ] in
  let d = Line_diff.diff a b in
  Alcotest.(check string) "delta applies" b (Line_diff.apply a d);
  Alcotest.(check bool) "delta small vs archive" true
    (Line_diff.size d * 10 < String.length b)

let test_store_integration () =
  (* commit archives through the repo; optimize; contents survive *)
  let dir = Filename.temp_file "dsvc_arch_repo" "" in
  Sys.remove dir;
  let repo = Result.get_ok (Versioning_store.Repo.init ~path:dir) in
  let rng = Prng.create ~seed:241 in
  let mk_version i =
    Result.get_ok
      (Archive.pack
         [
           e "data.csv"
             (String.concat "\n"
                (List.init 50 (fun r ->
                     Printf.sprintf "%d,%d" r (Prng.int rng 10 + i))));
           e "version.txt" (string_of_int i);
         ])
  in
  let archives = List.init 6 mk_version in
  let ids =
    List.map
      (fun a -> Result.get_ok (Versioning_store.Repo.commit repo a))
      archives
  in
  let _ =
    Result.get_ok (Versioning_store.Repo.optimize repo Versioning_store.Repo.Min_storage)
  in
  List.iter2
    (fun id original ->
      let got = Result.get_ok (Versioning_store.Repo.checkout repo id) in
      Alcotest.(check string) "archive preserved" original got;
      (* still parses as an archive *)
      ignore (Result.get_ok (Archive.unpack got)))
    ids archives

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "canonical" `Quick test_canonical;
    Alcotest.test_case "empty + binary" `Quick test_empty_and_binary;
    Alcotest.test_case "path validation" `Quick test_path_validation;
    Alcotest.test_case "corrupt rejected" `Quick test_corrupt_rejected;
    Alcotest.test_case "directory roundtrip" `Quick test_directory_roundtrip;
    Alcotest.test_case "archives diff compactly" `Quick
      test_archives_diff_compactly;
    Alcotest.test_case "store integration" `Quick test_store_integration;
  ]
