(* In-process replication: quorum writes, hinted handoff, fan-out
   reads with verification and read-repair, the failure detector's
   probation machinery, and the anti-entropy sweep — all over memory
   backends, no sockets, no sleeping. *)

open Versioning_store

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e
let digest_of = Content_hash.hex

(* A memory backend with a kill switch: while [down] is set every
   operation fails like an unreachable peer. [inner] stays inspectable
   so tests can look at what the node physically holds. *)
let flaky name =
  let inner = Backend.memory () in
  let down = ref false in
  let guard f = if !down then Error (name ^ " unreachable") else f () in
  let b =
    {
      Backend.name;
      put = (fun ~digest content -> guard (fun () -> inner.Backend.put ~digest content));
      get = (fun ~digest -> guard (fun () -> inner.Backend.get ~digest));
      mem = (fun ~digest -> (not !down) && inner.Backend.mem ~digest);
      delete = (fun ~digest -> if not !down then inner.Backend.delete ~digest);
      list = (fun () -> if !down then [] else inner.Backend.list ());
      total_bytes = (fun () -> if !down then 0 else inner.Backend.total_bytes ());
      quarantine = (fun ~digest -> guard (fun () -> inner.Backend.quarantine ~digest));
      ping = (fun () -> guard (fun () -> inner.Backend.ping ()));
    }
  in
  (b, down, inner)

(* Three-node cluster viewed from "a", replicas=2. Returns the view,
   the ring (same parameters, for picking digests with known
   placement), and per-node handles. *)
let mk_cluster ?detector () =
  let a = Backend.memory () in
  let b, b_down, b_inner = flaky "b" in
  let c, c_down, c_inner = flaky "c" in
  let r =
    Replicated.create ?detector ~replicas:2 ~self:"a" ~self_backend:a
      ~peers:[ ("b", b); ("c", c) ]
      ()
  in
  let ring = Ring.create ~members:[ "a"; "b"; "c" ] () in
  (r, ring, [ ("a", a); ("b", b_inner); ("c", c_inner) ], b_down, c_down)

(* First content (from a deterministic family) whose owner list
   satisfies [pred]. *)
let find_content ring ~n pred =
  let rec go i =
    if i > 5000 then Alcotest.fail "no content with wanted placement"
    else
      let content = Printf.sprintf "payload-%d" i in
      if pred (Ring.owners ring (digest_of content) ~n) then content
      else go (i + 1)
  in
  go 0

let inner_of backends name : Backend.t = List.assoc name backends

let test_put_replicates_to_owners () =
  let r, ring, backends, _, _ = mk_cluster () in
  for i = 0 to 19 do
    let content = Printf.sprintf "blob-%d" i in
    let digest = digest_of content in
    ok (Replicated.put r ~digest content);
    let owners = Ring.owners ring digest ~n:2 in
    List.iter
      (fun (name, b) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s holds %d iff owner" name i)
          (List.mem name owners)
          (b.Backend.mem ~digest))
      backends
  done;
  Alcotest.(check int) "no hints parked" 0 (Replicated.pending_hints r)

let test_object_store_oblivious () =
  (* the repo-facing layer cannot tell the store is clustered *)
  let r, _, _, _, _ = mk_cluster () in
  let store = Object_store.of_backend (Replicated.backend r) in
  let digest = ok (Object_store.put store "alpha\nbeta") in
  Alcotest.(check string) "round trip" "alpha\nbeta"
    (ok (Object_store.get store digest));
  Alcotest.(check bool) "status ok" true (Object_store.status store digest = `Ok);
  Alcotest.(check (list string)) "listed once" [ digest ]
    (Object_store.list_digests store)

let test_handoff_and_hint_delivery () =
  let r, ring, backends, b_down, _ = mk_cluster () in
  let content = find_content ring ~n:2 (fun owners -> List.mem "b" owners) in
  let digest = digest_of content in
  b_down := true;
  ok (Replicated.put r ~digest content);
  Alcotest.(check int) "one hint parked" 1 (Replicated.pending_hints r);
  Alcotest.(check bool) "b missed the write" false
    ((inner_of backends "b").Backend.mem ~digest);
  (* two copies exist regardless (other owner + stand-in) *)
  let copies =
    List.length
      (List.filter (fun (_, b) -> b.Backend.mem ~digest) backends)
  in
  Alcotest.(check int) "quorum-many copies" 2 copies;
  (* owner returns: the parked copy is delivered and the debt cleared *)
  b_down := false;
  Alcotest.(check int) "one hint delivered" 1 (Replicated.deliver_hints r);
  Alcotest.(check bool) "b caught up" true
    ((inner_of backends "b").Backend.mem ~digest);
  Alcotest.(check int) "ledger empty" 0 (Replicated.pending_hints r)

let test_quorum_failure_when_both_owners_down () =
  let r, ring, _, b_down, c_down = mk_cluster () in
  let content =
    find_content ring ~n:2 (fun owners ->
        List.sort compare owners = [ "b"; "c" ])
  in
  b_down := true;
  c_down := true;
  (* only the stand-in copy on a can land: 1 < quorum of 2 *)
  match Replicated.put r ~digest:(digest_of content) content with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write quorum must fail with both owners down"

let test_read_repair_missing_primary () =
  let r, ring, backends, _, _ = mk_cluster () in
  let content = "repair me" in
  let digest = digest_of content in
  ok (Replicated.put r ~digest content);
  let primary = List.hd (Ring.sequence ring digest) in
  (inner_of backends primary).Backend.delete ~digest;
  Alcotest.(check string) "served from the surviving replica" content
    (ok (Replicated.get r ~digest));
  Alcotest.(check bool) "primary repaired inline" true
    ((inner_of backends primary).Backend.mem ~digest)

let test_corrupt_replica_loses_the_race () =
  let r, ring, backends, _, _ = mk_cluster () in
  let content = "precious bytes" in
  let digest = digest_of content in
  ok (Replicated.put r ~digest content);
  let primary = List.hd (Ring.sequence ring digest) in
  let pb = inner_of backends primary in
  (* plant a wrong blob under the right digest on the primary *)
  pb.Backend.delete ~digest;
  ok (pb.Backend.put ~digest "evil twin");
  Alcotest.(check string) "verification skips the corrupt copy" content
    (ok (Replicated.get r ~digest));
  Alcotest.(check string) "and read-repair replaced it" content
    (ok (pb.Backend.get ~digest))

let test_detector_probation_backoff () =
  let now = ref 0.0 in
  let d =
    Detector.create ~threshold:3 ~probation_base:0.5 ~probation_max:4.0
      ~now:(fun () -> !now)
      ()
  in
  let st () = Detector.state d ~name:"p" in
  Alcotest.(check bool) "unknown peer is up" true (st () = `Up);
  Detector.fail d ~name:"p" "boom";
  Detector.fail d ~name:"p" "boom";
  Alcotest.(check bool) "below threshold still up" true (st () = `Up);
  Detector.fail d ~name:"p" "boom";
  Alcotest.(check bool) "third strike trips probation" true (st () = `Down);
  Alcotest.(check bool) "not usable while down" false (Detector.usable d ~name:"p");
  now := 0.6;
  Alcotest.(check bool) "probation expiry allows a probe" true (st () = `Probe);
  Alcotest.(check bool) "probe counts as usable" true (Detector.usable d ~name:"p");
  (* relapse: cool-off doubles (0.5 → 1.0) *)
  Detector.fail d ~name:"p" "still dead";
  Alcotest.(check bool) "relapse re-enters probation" true (st () = `Down);
  now := 1.5;
  Alcotest.(check bool) "doubled cool-off still holds" true (st () = `Down);
  now := 1.7;
  Alcotest.(check bool) "expires at the doubled deadline" true (st () = `Probe);
  Detector.ok d ~name:"p";
  Alcotest.(check bool) "one success fully resets" true (st () = `Up);
  match Detector.report d with
  | [ ("p", `Up, "") ] -> ()
  | _ -> Alcotest.fail "report must show the reset peer"

let test_anti_entropy_restores_replication () =
  let r, ring, backends, b_down, _ = mk_cluster () in
  (* write a spread of blobs while b is dead: every one owned by b is
     parked elsewhere with a hint *)
  b_down := true;
  let contents = List.init 12 (Printf.sprintf "rejoin-%d") in
  List.iter
    (fun content -> ok (Replicated.put r ~digest:(digest_of content) content))
    contents;
  Alcotest.(check bool) "some writes were handed off" true
    (Replicated.pending_hints r > 0);
  (* node restarts; one sweep restores full replication *)
  b_down := false;
  let report =
    Replicated.anti_entropy r ~digests:(List.map digest_of contents)
  in
  Alcotest.(check (list string)) "no failures" [] report.Replicated.failed;
  Alcotest.(check int) "all digests checked" 12 report.Replicated.checked;
  Alcotest.(check bool) "sweep wrote copies" true (report.Replicated.repaired > 0);
  Alcotest.(check int) "ledger drained" 0 (Replicated.pending_hints r);
  List.iter
    (fun content ->
      let digest = digest_of content in
      List.iter
        (fun owner ->
          Alcotest.(check bool)
            (Printf.sprintf "%s holds its share of %s" owner digest)
            true
            ((inner_of backends owner).Backend.mem ~digest))
        (Ring.owners ring digest ~n:2))
    contents;
  (* a second sweep is a no-op: convergence, not churn *)
  let again =
    Replicated.anti_entropy r ~digests:(List.map digest_of contents)
  in
  Alcotest.(check int) "idempotent sweep" 0 again.Replicated.repaired

let test_anti_entropy_replaces_corrupt_copy () =
  let r, ring, backends, _, _ = mk_cluster () in
  let content = "bit rot victim" in
  let digest = digest_of content in
  ok (Replicated.put r ~digest content);
  let owner = List.hd (Ring.owners ring digest ~n:2) in
  let ob = inner_of backends owner in
  ob.Backend.delete ~digest;
  ok (ob.Backend.put ~digest "rotten");
  let report = Replicated.anti_entropy r ~digests:[ digest ] in
  Alcotest.(check (list string)) "sweep clean" [] report.Replicated.failed;
  Alcotest.(check string) "owner's copy replaced" content
    (ok (ob.Backend.get ~digest))

let test_quorum_metrics_observable () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Obs.with_enabled true @@ fun () ->
  Metrics.reset ();
  let r, ring, _, b_down, _ = mk_cluster () in
  let content = find_content ring ~n:2 (fun owners -> List.mem "b" owners) in
  b_down := true;
  ok (Replicated.put r ~digest:(digest_of content) content);
  let text = Metrics.to_prometheus () in
  (* the handoff copy keeps the write fully replicated — sloppy quorum
     reports "ok", and the parked hint records the placement debt *)
  Alcotest.(check bool) "quorum outcome counted" true
    (contains text {|dsvc_cluster_quorum_total{op="put",outcome="ok"} 1|});
  Alcotest.(check bool) "hint counted" true
    (contains text {|dsvc_cluster_hints_total{owner="b"} 1|});
  Metrics.reset ()

(* Replication-lag gauges (DESIGN.md §16): the ledger keeps each
   hint's park time, so with an injected clock the oldest-age gauge is
   exact; a drained owner is explicitly zeroed, not dropped, so the
   time-series records the recovery instead of a gap. *)
let test_lag_metrics () =
  let module Obs = Versioning_obs.Obs in
  let module Metrics = Versioning_obs.Metrics in
  let clock = ref 1000.0 in
  let a = Backend.memory () in
  let b, b_down, _ = flaky "b" in
  let c, _, _ = flaky "c" in
  let r =
    Replicated.create ~replicas:2
      ~now:(fun () -> !clock)
      ~self:"a" ~self_backend:a
      ~peers:[ ("b", b); ("c", c) ]
      ()
  in
  let ring = Ring.create ~members:[ "a"; "b"; "c" ] () in
  let content = find_content ring ~n:2 (fun owners -> List.mem "b" owners) in
  b_down := true;
  ok (Replicated.put r ~digest:(digest_of content) content);
  Obs.with_enabled true @@ fun () ->
  Metrics.reset ();
  clock := 1042.0;
  Replicated.export_lag_metrics r;
  let value name =
    match List.assoc_opt name (Metrics.snapshot_values ()) with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  Alcotest.(check (float 1e-9)) "queue depth" 1.0
    (value {|dsvc_cluster_hint_queue_depth{owner="b"}|});
  Alcotest.(check (float 1e-9)) "oldest age from the injected clock" 42.0
    (value {|dsvc_cluster_hint_oldest_age_seconds{owner="b"}|});
  b_down := false;
  Alcotest.(check int) "hint delivered" 1 (Replicated.deliver_hints r);
  Replicated.export_lag_metrics r;
  Alcotest.(check (float 1e-9)) "drained owner zeroed, not dropped" 0.0
    (value {|dsvc_cluster_hint_queue_depth{owner="b"}|});
  Alcotest.(check (float 1e-9)) "age zeroed too" 0.0
    (value {|dsvc_cluster_hint_oldest_age_seconds{owner="b"}|});
  Metrics.reset ()

let suite =
  [
    Alcotest.test_case "put replicates to ring owners" `Quick
      test_put_replicates_to_owners;
    Alcotest.test_case "object store is cluster-oblivious" `Quick
      test_object_store_oblivious;
    Alcotest.test_case "hinted handoff and delivery" `Quick
      test_handoff_and_hint_delivery;
    Alcotest.test_case "quorum failure surfaces" `Quick
      test_quorum_failure_when_both_owners_down;
    Alcotest.test_case "read-repair of a missing primary" `Quick
      test_read_repair_missing_primary;
    Alcotest.test_case "corrupt replica never wins" `Quick
      test_corrupt_replica_loses_the_race;
    Alcotest.test_case "detector probation backoff" `Quick
      test_detector_probation_backoff;
    Alcotest.test_case "anti-entropy after rejoin" `Quick
      test_anti_entropy_restores_replication;
    Alcotest.test_case "anti-entropy replaces corruption" `Quick
      test_anti_entropy_replaces_corrupt_copy;
    Alcotest.test_case "quorum and hints are observable" `Quick
      test_quorum_metrics_observable;
    Alcotest.test_case "hint-lag gauges track the ledger" `Quick
      test_lag_metrics;
  ]
