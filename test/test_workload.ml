(* History/table/dataset/fork/cost generators and subgraph sampling. *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng
module Csv = Versioning_delta.Csv

(* ---- History_gen ---- *)

let test_history_structure () =
  let rng = Prng.create ~seed:1 in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:200) rng in
  Alcotest.(check int) "exact commit count" 200 h.History_gen.n_versions;
  Alcotest.(check (list int)) "root has no parents" []
    h.History_gen.parents.(1);
  (* every non-root version's parents precede it (creation order is
     topological) and the graph is connected *)
  for v = 2 to 200 do
    let ps = h.History_gen.parents.(v) in
    Alcotest.(check bool) "has a parent" true (ps <> []);
    List.iter
      (fun p ->
        Alcotest.(check bool) "parents precede children" true (p >= 1 && p < v))
      ps
  done;
  (* children is the inverse of parents *)
  for v = 2 to 200 do
    List.iter
      (fun p ->
        Alcotest.(check bool) "child registered" true
          (List.mem v h.History_gen.children.(p)))
      h.History_gen.parents.(v)
  done

let test_history_determinism () =
  let h1 =
    History_gen.generate (History_gen.flat_params ~n_commits:100)
      (Prng.create ~seed:5)
  in
  let h2 =
    History_gen.generate (History_gen.flat_params ~n_commits:100)
      (Prng.create ~seed:5)
  in
  Alcotest.(check bool) "same structure" true
    (h1.History_gen.parents = h2.History_gen.parents)

let test_history_shapes_differ () =
  let rng = Prng.create ~seed:7 in
  let flat = History_gen.generate (History_gen.flat_params ~n_commits:300) rng in
  let rng = Prng.create ~seed:7 in
  let linear =
    History_gen.generate (History_gen.linear_params ~n_commits:300) rng
  in
  (* the flat history has many more branch points *)
  let branch_points h =
    let count = ref 0 in
    for v = 1 to h.History_gen.n_versions do
      if List.length h.History_gen.children.(v) > 1 then incr count
    done;
    !count
  in
  Alcotest.(check bool) "flat branches more" true
    (branch_points flat > 2 * branch_points linear)

let test_history_merges () =
  let rng = Prng.create ~seed:9 in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:400) rng in
  let merges = ref 0 in
  for v = 1 to 400 do
    if List.length h.History_gen.parents.(v) = 2 then incr merges
  done;
  Alcotest.(check bool) "merges occur" true (!merges > 0)

let test_hop_pairs () =
  let rng = Prng.create ~seed:11 in
  let h = History_gen.generate (History_gen.linear_params ~n_commits:50) rng in
  let pairs = History_gen.undirected_hop_pairs h ~max_hops:2 ~cap:100 in
  (* parent-child pairs are all present, both directions *)
  for v = 2 to 50 do
    List.iter
      (fun p ->
        Alcotest.(check bool) "derivation pair revealed" true
          (List.mem (p, v) pairs && List.mem (v, p) pairs))
      h.History_gen.parents.(v)
  done;
  (* no pair exceeds the hop bound: on a pure chain the id distance
     bounds the hop distance from below *)
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "pair sanity" true (u <> v && u >= 1 && v >= 1))
    pairs;
  (* cap limits per-source fanout *)
  let capped = History_gen.undirected_hop_pairs h ~max_hops:10 ~cap:3 in
  let per_source = Hashtbl.create 16 in
  List.iter
    (fun (u, _) ->
      Hashtbl.replace per_source u
        (1 + Option.value (Hashtbl.find_opt per_source u) ~default:0))
    capped;
  Hashtbl.iter
    (fun _ c -> Alcotest.(check bool) "cap respected" true (c <= 3))
    per_source

(* ---- Table_gen ---- *)

let test_fresh_table_shape () =
  let rng = Prng.create ~seed:13 in
  let tg = Table_gen.create rng in
  let t = Table_gen.fresh_table tg ~rows:10 ~cols:4 in
  Alcotest.(check int) "rows + header" 11 (Csv.n_rows t);
  Alcotest.(check int) "cols" 4 (Csv.n_cols t);
  Alcotest.(check bool) "rectangular" true (Csv.is_rect t);
  (* headers unique *)
  let header = Array.to_list t.(0) in
  Alcotest.(check int) "unique headers" 4
    (List.length (List.sort_uniq compare header))

let test_edits_apply () =
  let rng = Prng.create ~seed:17 in
  let tg = Table_gen.create rng in
  let t = Table_gen.fresh_table tg ~rows:10 ~cols:3 in
  let t1 = Table_gen.apply tg t [ Table_gen.Add_rows { at = 5; count = 3 } ] in
  Alcotest.(check int) "rows added" 14 (Csv.n_rows t1);
  let t2 = Table_gen.apply tg t [ Table_gen.Delete_rows { at = 2; count = 4 } ] in
  Alcotest.(check int) "rows deleted" 7 (Csv.n_rows t2);
  let t3 = Table_gen.apply tg t [ Table_gen.Add_column { at = 1 } ] in
  Alcotest.(check int) "column added" 4 (Csv.n_cols t3);
  Alcotest.(check bool) "still rect" true (Csv.is_rect t3);
  let t4 = Table_gen.apply tg t [ Table_gen.Remove_column { at = 0 } ] in
  Alcotest.(check int) "column removed" 2 (Csv.n_cols t4);
  (* header row survives modification *)
  let t5 = Table_gen.apply tg t [ Table_gen.Modify_cells { fraction = 1.0 } ] in
  Alcotest.(check (array string)) "header untouched" t.(0) t5.(0)

let test_edits_clamped () =
  let rng = Prng.create ~seed:19 in
  let tg = Table_gen.create rng in
  let t = Table_gen.fresh_table tg ~rows:3 ~cols:2 in
  (* absurd positions are clamped, never raise *)
  let t1 =
    Table_gen.apply tg t
      [
        Table_gen.Add_rows { at = 999; count = 2 };
        Table_gen.Delete_rows { at = 999; count = 999 };
        Table_gen.Remove_column { at = 999 };
        Table_gen.Add_column { at = 999 };
      ]
  in
  Alcotest.(check bool) "still valid" true (Csv.is_rect t1);
  (* a 1-column table refuses to drop its last column *)
  let narrow = Table_gen.fresh_table tg ~rows:2 ~cols:1 in
  let n2 = Table_gen.apply tg narrow [ Table_gen.Remove_column { at = 0 } ] in
  Alcotest.(check int) "last column kept" 1 (Csv.n_cols n2)

let test_random_edits_applicable () =
  let rng = Prng.create ~seed:23 in
  let tg = Table_gen.create rng in
  let t = ref (Table_gen.fresh_table tg ~rows:30 ~cols:5) in
  for _ = 1 to 100 do
    let edits = Table_gen.random_edits tg ~table:!t ~intensity:0.1 in
    t := Table_gen.apply tg !t edits;
    Alcotest.(check bool) "table stays rectangular" true (Csv.is_rect !t);
    Alcotest.(check bool) "csv-safe" true
      (Array.for_all (Array.for_all Csv.field_ok) !t)
  done

(* ---- Dataset_gen ---- *)

let mk_dataset ?(mode = Dataset_gen.Line_directed) ?(n = 60) seed =
  let rng = Prng.create ~seed in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:n) rng in
  Dataset_gen.generate h
    {
      Dataset_gen.default_params with
      initial_rows = 40;
      initial_cols = 4;
      max_hops = 3;
      reveal_cap = 8;
      mode;
    }
    rng

let test_dataset_complete () =
  let d = mk_dataset 29 in
  let g = d.Dataset_gen.aux in
  Alcotest.(check int) "versions" 60 (Aux_graph.n_versions g);
  Alcotest.(check bool) "all materializations revealed" true
    (Aux_graph.has_all_materializations g);
  (* contents are valid CSV matching the recorded sizes *)
  for v = 1 to 60 do
    let c = d.Dataset_gen.contents.(v) in
    Alcotest.(check bool) "non-empty" true (String.length c > 0);
    Alcotest.(check (float 0.)) "size recorded"
      (float_of_int (String.length c))
      d.Dataset_gen.version_sizes.(v)
  done;
  (* every problem is solvable on the generated graph *)
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let spt = Fixtures.ok (Spt.solve g) in
  Alcotest.(check bool) "mca below spt storage" true
    (Storage_graph.storage_cost base <= Storage_graph.storage_cost spt)

let test_dataset_delta_costs_match_diffs () =
  (* revealed Δ equals the actual encoded diff size between contents *)
  let d = mk_dataset 31 in
  let g = d.Dataset_gen.aux in
  let checked = ref 0 in
  for src = 1 to 20 do
    for dst = 1 to 20 do
      if src <> dst then
        match Aux_graph.delta g ~src ~dst with
        | Some w ->
            let expected =
              Versioning_delta.Line_diff.size
                (Versioning_delta.Line_diff.diff
                   d.Dataset_gen.contents.(src)
                   d.Dataset_gen.contents.(dst))
            in
            Alcotest.(check (float 0.)) "delta is real diff size"
              (float_of_int expected) w.Aux_graph.delta;
            incr checked
        | None -> ()
    done
  done;
  Alcotest.(check bool) "checked some pairs" true (!checked > 10)

let test_dataset_two_way_symmetric () =
  let d = mk_dataset ~mode:Dataset_gen.Two_way 37 in
  Alcotest.(check bool) "aux is symmetric" true
    (Aux_graph.is_symmetric d.Dataset_gen.aux)

let test_dataset_compressed_mode () =
  let d = mk_dataset ~mode:Dataset_gen.Line_compressed 41 in
  let g = d.Dataset_gen.aux in
  (* Φ ≠ Δ in the compressed regime *)
  Alcotest.(check bool) "not proportional" false (Aux_graph.is_proportional g)

let test_all_pairs () =
  let d = mk_dataset ~n:12 43 in
  let g =
    Dataset_gen.all_pairs_aux ~contents:d.Dataset_gen.contents
      ~mode:Dataset_gen.Line_directed
  in
  let dg = Aux_graph.graph g in
  (* 12 materializations + 12*11 deltas *)
  Alcotest.(check int) "complete graph" (12 + (12 * 11))
    (Versioning_graph.Digraph.n_edges dg)

(* ---- Fork_gen ---- *)

let test_forks () =
  let rng = Prng.create ~seed:47 in
  let f =
    Fork_gen.generate
      { Fork_gen.default_params with n_forks = 40; base_rows = 50 }
      rng
  in
  let g = f.Fork_gen.aux in
  Alcotest.(check int) "forks" 40 (Aux_graph.n_versions g);
  Alcotest.(check bool) "materializations" true
    (Aux_graph.has_all_materializations g);
  Alcotest.(check bool) "some deltas revealed" true (f.Fork_gen.n_deltas > 0);
  (* threshold respected: no delta between wildly different sizes *)
  let threshold =
    match Fork_gen.default_params.Fork_gen.reveal with
    | Fork_gen.Size_threshold t -> t
    | _ -> Alcotest.fail "default policy changed"
  in
  let size v = f.Fork_gen.version_sizes.(v) in
  Versioning_graph.Digraph.iter_edges (Aux_graph.graph g) (fun e ->
      if e.src >= 1 then
        Alcotest.(check bool) "size threshold respected" true
          (Float.abs (size e.src -. size e.dst) < threshold))

let test_forks_resemblance_policy () =
  let rng = Prng.create ~seed:48 in
  let f =
    Fork_gen.generate
      {
        Fork_gen.default_params with
        n_forks = 30;
        base_rows = 60;
        reveal = Fork_gen.Resemblance { threshold = 0.3; per_fork_cap = 5 };
      }
      rng
  in
  let g = f.Fork_gen.aux in
  Alcotest.(check bool) "some deltas revealed" true (f.Fork_gen.n_deltas > 0);
  (* cap: at most 5 partners per fork, each contributing both
     directions plus being chosen by others -> bounded by 2 * cap * n *)
  Alcotest.(check bool) "cap limits revealing" true
    (f.Fork_gen.n_deltas <= 2 * 5 * 30);
  (* graph still solvable *)
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  ignore (Storage_graph.storage_cost base)

(* ---- Cost_gen ---- *)

let test_cost_gen () =
  let rng = Prng.create ~seed:53 in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:150) rng in
  let g = Cost_gen.generate h Cost_gen.default_params rng in
  Alcotest.(check int) "versions" 150 (Aux_graph.n_versions g);
  Alcotest.(check bool) "materializations" true
    (Aux_graph.has_all_materializations g);
  Alcotest.(check bool) "proportional when phi_factor = 1" true
    (Aux_graph.is_proportional g);
  (* deltas never exceed the target's materialization *)
  Versioning_graph.Digraph.iter_edges (Aux_graph.graph g) (fun e ->
      if e.src >= 1 then
        match Aux_graph.materialization g e.dst with
        | Some m ->
            Alcotest.(check bool) "delta below materialization" true
              (e.label.Aux_graph.delta <= m.Aux_graph.delta)
        | None -> Alcotest.fail "materialization missing");
  (* solvable end to end *)
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  ignore (Storage_graph.storage_cost base)

let test_cost_gen_symmetric () =
  let rng = Prng.create ~seed:59 in
  let h = History_gen.generate (History_gen.linear_params ~n_commits:80) rng in
  let g =
    Cost_gen.generate h { Cost_gen.default_params with symmetric = true } rng
  in
  Alcotest.(check bool) "symmetric" true (Aux_graph.is_symmetric g)

(* ---- Subgraph ---- *)

let test_subgraph_sample () =
  let rng = Prng.create ~seed:61 in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:200) rng in
  let g = Cost_gen.generate h Cost_gen.default_params rng in
  let sub = Subgraph.bfs_sample g ~n:50 rng in
  Alcotest.(check int) "requested size" 50 (Aux_graph.n_versions sub);
  Alcotest.(check bool) "materializations kept" true
    (Aux_graph.has_all_materializations sub);
  (* still solvable *)
  let base = Fixtures.ok (Solver.min_storage_tree sub) in
  Fixtures.check_valid sub base;
  (* n larger than the graph: clamps *)
  let all = Subgraph.bfs_sample g ~n:10_000 rng in
  Alcotest.(check int) "clamped to full size" 200 (Aux_graph.n_versions all)

(* ---- Recipes ---- *)

let test_recipes_quick () =
  let ds = Recipes.all ~scale:Recipes.Quick ~seed:3 () in
  Alcotest.(check (list string)) "ids" [ "DC"; "LC"; "BF"; "LF" ]
    (List.map (fun (d : Recipes.dataset) -> d.id) ds);
  List.iter
    (fun (d : Recipes.dataset) ->
      Alcotest.(check bool) "deltas revealed" true (d.n_deltas > 0);
      Alcotest.(check bool) "contents present" true (d.contents <> None);
      Alcotest.(check bool) "avg size positive" true (d.avg_version_size > 0.);
      let base = Fixtures.ok (Solver.min_storage_tree d.aux) in
      let spt = Fixtures.ok (Spt.solve d.aux) in
      Alcotest.(check bool) "tradeoff exists" true
        (Storage_graph.storage_cost base < Storage_graph.storage_cost spt);
      let und = Recipes.undirected d in
      Alcotest.(check bool) "undirected variant symmetric" true
        (Aux_graph.is_symmetric und.aux))
    ds

let suite =
  [
    Alcotest.test_case "history structure" `Quick test_history_structure;
    Alcotest.test_case "history determinism" `Quick test_history_determinism;
    Alcotest.test_case "history shapes differ" `Quick test_history_shapes_differ;
    Alcotest.test_case "history merges" `Quick test_history_merges;
    Alcotest.test_case "hop pairs" `Quick test_hop_pairs;
    Alcotest.test_case "fresh table shape" `Quick test_fresh_table_shape;
    Alcotest.test_case "edits apply" `Quick test_edits_apply;
    Alcotest.test_case "edits clamped" `Quick test_edits_clamped;
    Alcotest.test_case "random edits applicable" `Quick
      test_random_edits_applicable;
    Alcotest.test_case "dataset complete" `Quick test_dataset_complete;
    Alcotest.test_case "dataset deltas are real" `Quick
      test_dataset_delta_costs_match_diffs;
    Alcotest.test_case "dataset two-way symmetric" `Quick
      test_dataset_two_way_symmetric;
    Alcotest.test_case "dataset compressed mode" `Quick
      test_dataset_compressed_mode;
    Alcotest.test_case "all-pairs graph" `Quick test_all_pairs;
    Alcotest.test_case "fork generation" `Quick test_forks;
    Alcotest.test_case "fork resemblance policy" `Quick
      test_forks_resemblance_policy;
    Alcotest.test_case "cost gen" `Quick test_cost_gen;
    Alcotest.test_case "cost gen symmetric" `Quick test_cost_gen_symmetric;
    Alcotest.test_case "subgraph sample" `Quick test_subgraph_sample;
    Alcotest.test_case "recipes (quick scale)" `Slow test_recipes_quick;
  ]
