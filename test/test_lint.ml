(* dsvc-lint: one known-bad and one suppressed/allowed fixture per
   rule, config-parser behaviour, and a scan of the real source tree
   (which must be clean — the same gate CI applies). *)

open Dsvc_lint

(* A config mirroring the checked-in lint.toml, built through the
   parser so the TOML subset is exercised too. *)
let config =
  match
    Lint_config.parse
      {|
# fixture config
[R1-raw-write]
allow = ["lib/util/fsutil.ml", "lib/store/fsutil.ml"]

[R2-unsafe-index]
allow = ["lib/delta/chunker.ml", "lib/delta/compress.ml", "lib/delta/binary_diff.ml"]

[R3-domain-spawn]
allow = ["lib/util/pool.ml"]

[R3-fork]
allow = ["test/lock_probe.ml"]

[R5-nondet]
scope = ["lib/core/", "lib/workload/"]
|}
  with
  | Ok c -> c
  | Error e -> failwith e

let rules_of ~file src =
  List.map
    (fun d -> d.Lint_rules.rule)
    (Lint_rules.check_source ~config ~filename:file src)

let check_rules msg ~file src expected =
  Alcotest.(check (list string)) msg expected (rules_of ~file src)

(* ---- R1: raw write primitives ---- *)

let test_r1 () =
  check_rules "open_out flagged" ~file:"lib/store/archive.ml"
    {|let f () = let oc = open_out "x" in close_out oc|} [ "R1-raw-write" ];
  check_rules "Out_channel opener flagged" ~file:"bin/dsvc.ml"
    {|let f () = Out_channel.with_open_bin "x" ignore|} [ "R1-raw-write" ];
  check_rules "openfile with write flags flagged" ~file:"lib/store/repo.ml"
    {|let f () = Unix.openfile "x" [ Unix.O_WRONLY ] 0o644|}
    [ "R1-raw-write" ];
  check_rules "read-only openfile fine" ~file:"lib/store/repo.ml"
    {|let f () = Unix.openfile "x" [ Unix.O_RDONLY ] 0|} [];
  check_rules "suppression comment honoured" ~file:"lib/store/archive.ml"
    {|(* lint: raw-write-ok scratch file *)
let f () = let oc = open_out "x" in close_out oc|}
    [];
  check_rules "allowlisted file clean" ~file:"lib/util/fsutil.ml"
    {|let f () = let oc = open_out "x" in close_out oc|} []

(* ---- R2: unsafe indexing ---- *)

let test_r2 () =
  check_rules "unsafe_get in allowlisted file needs a comment"
    ~file:"lib/delta/compress.ml"
    {|let f s = String.unsafe_get s 0|} [ "R2-unsafe-index" ];
  check_rules "unsafe-ok comment satisfies the rule"
    ~file:"lib/delta/compress.ml"
    {|(* lint: unsafe-ok caller guarantees s is non-empty *)
let f s = String.unsafe_get s 0|}
    [];
  check_rules "outside the allowlist no comment helps"
    ~file:"lib/core/exact.ml"
    {|(* lint: unsafe-ok nice try *)
let f a = Array.unsafe_get a 0|}
    [ "R2-unsafe-index" ];
  check_rules "unsafe_set flagged too" ~file:"lib/store/repo.ml"
    {|let f b = Bytes.unsafe_set b 0 'x'|} [ "R2-unsafe-index" ]

(* ---- R3: domains and forks ---- *)

let test_r3 () =
  check_rules "Domain.spawn outside Pool" ~file:"lib/core/exact.ml"
    {|let f () = Domain.spawn (fun () -> ())|} [ "R3-domain-spawn" ];
  check_rules "Domain.spawn in Pool fine" ~file:"lib/util/pool.ml"
    {|let f () = Domain.spawn (fun () -> ())|} [];
  check_rules "Unix.fork outside the probe" ~file:"lib/store/server.ml"
    {|let f () = Unix.fork ()|} [ "R3-fork" ];
  check_rules "Unix.fork in the probe fine" ~file:"test/lock_probe.ml"
    {|let f () = Unix.fork ()|} []

(* ---- R4: exception swallowing ---- *)

let test_r4 () =
  check_rules "catch-all wildcard flagged" ~file:"lib/store/server.ml"
    {|let f g = try g () with _ -> 0|} [ "R4-catch-all" ];
  check_rules "bound-but-dropped exception flagged"
    ~file:"lib/store/server.ml" {|let f g = try g () with e -> 0|}
    [ "R4-catch-all" ];
  check_rules "used exception fine" ~file:"lib/store/server.ml"
    {|let f g = try g () with e -> print_endline (Printexc.to_string e); 0|}
    [];
  check_rules "specific exception fine" ~file:"lib/store/server.ml"
    {|let f g = try g () with Not_found -> 0|} [];
  check_rules "swallow-ok suppression honoured" ~file:"lib/store/server.ml"
    {|let f g =
  (* lint: swallow-ok best-effort cleanup on shutdown *)
  try g () with _ -> 0|}
    []

(* ---- R5: nondeterminism in the solver tiers ---- *)

let test_r5 () =
  check_rules "gettimeofday in lib/core flagged" ~file:"lib/core/heur.ml"
    {|let f () = Unix.gettimeofday ()|} [ "R5-nondet" ];
  check_rules "Hashtbl.hash in lib/workload flagged"
    ~file:"lib/workload/gen.ml" {|let f x = Hashtbl.hash x|} [ "R5-nondet" ];
  check_rules "polymorphic compare on float literal flagged"
    ~file:"lib/core/heur.ml" {|let f x = compare x 1.0|} [ "R5-nondet" ];
  check_rules "same code outside the scope is fine" ~file:"lib/store/repo.ml"
    {|let f () = Unix.gettimeofday ()|} [];
  check_rules "nondet-ok suppression honoured" ~file:"lib/core/heur.ml"
    {|(* lint: nondet-ok wall-clock deadline only *)
let f () = Unix.gettimeofday ()|}
    []

(* ---- R6: module-level mutable state near Pool regions ---- *)

let test_r6 () =
  check_rules "toplevel Hashtbl in a Pool-using module flagged"
    ~file:"lib/store/par.ml"
    {|module Pool = Versioning_util.Pool
let cache = Hashtbl.create 8
let run xs = Pool.parallel_map (fun x -> x) xs|}
    [ "R6-toplevel-mutable" ];
  check_rules "same state without any Pool call site is fine"
    ~file:"lib/store/seq.ml"
    {|let cache = Hashtbl.create 8
let run xs = List.map (fun x -> x) xs|}
    [];
  check_rules "mutable-ok suppression honoured" ~file:"lib/store/par.ml"
    {|module Pool = Versioning_util.Pool
(* lint: mutable-ok guarded by a mutex *)
let cache = Hashtbl.create 8
let run xs = Pool.parallel_map (fun x -> x) xs|}
    [];
  (* cross-file reachability: A uses the pool and calls B; B's state
     is flagged even though B itself never mentions Pool *)
  let diags =
    Lint_rules.check_tree ~config
      [
        ( "lib/store/a.ml",
          {|module Pool = Versioning_util.Pool
let run xs = Pool.parallel_map B.work xs|} );
        ("lib/store/b.ml", {|let seen = ref 0
let work x = incr seen; x|});
        ("lib/store/c.ml", {|let alone = ref 0|});
      ]
  in
  Alcotest.(check (list (pair string string)))
    "B flagged, unreferenced C not"
    [ ("lib/store/b.ml", "R6-toplevel-mutable") ]
    (List.map (fun d -> (d.Lint_rules.file, d.Lint_rules.rule)) diags)

(* ---- parse errors and config errors ---- *)

let test_parse_error () =
  check_rules "unparseable source reported" ~file:"lib/store/bad.ml"
    "let let let" [ "parse-error" ]

let test_config_errors () =
  (match Lint_config.parse "[R1-raw-write]\nallow = nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed list must be rejected");
  (match Lint_config.parse "allow = [\"x\"]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key outside a section must be rejected");
  match Lint_config.parse "# only comments\n\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "empty config must parse: %s" e

let test_suppression_window () =
  (* a suppression covers its own lines and the line right after; two
     lines down it no longer applies *)
  check_rules "comment two lines above does not suppress"
    ~file:"lib/store/archive.ml"
    {|(* lint: raw-write-ok too far away *)

let f () = let oc = open_out "x" in close_out oc|}
    [ "R1-raw-write" ]

(* ---- the real tree is clean ---- *)

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_real_tree_clean () =
  (* The test binary runs in _build/default/test; the mirrored source
     tree sits one level up. Skip gracefully if the layout differs
     (e.g. a future out-of-tree runner). *)
  let roots =
    List.filter
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "../lib"; "../bin"; "../bench"; "../test" ]
  in
  if List.length roots < 4 then ()
  else begin
    let cfg =
      if Sys.file_exists "../lint.toml" then
        match Lint_config.load "../lint.toml" with
        | Ok c -> c
        | Error e -> Alcotest.failf "lint.toml: %s" e
      else config
    in
    let files = List.fold_left collect [] roots |> List.sort compare in
    Alcotest.(check bool) "scanned a real number of files" true
      (List.length files > 50);
    let sources = List.map (fun f -> (f, read_file f)) files in
    match Lint_rules.check_tree ~config:cfg sources with
    | [] -> ()
    | diags ->
        Alcotest.failf "source tree has lint diagnostics:\n%s"
          (String.concat "\n" (List.map Lint_rules.to_string diags))
  end

let suite =
  [
    Alcotest.test_case "R1 raw writes" `Quick test_r1;
    Alcotest.test_case "R2 unsafe indexing" `Quick test_r2;
    Alcotest.test_case "R3 domains and forks" `Quick test_r3;
    Alcotest.test_case "R4 exception swallowing" `Quick test_r4;
    Alcotest.test_case "R5 nondeterminism" `Quick test_r5;
    Alcotest.test_case "R6 toplevel mutable state" `Quick test_r6;
    Alcotest.test_case "parse errors surface" `Quick test_parse_error;
    Alcotest.test_case "config validation" `Quick test_config_errors;
    Alcotest.test_case "suppression window" `Quick test_suppression_window;
    Alcotest.test_case "real tree is clean" `Quick test_real_tree_clean;
  ]
