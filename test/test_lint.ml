(* dsvc-lint: one known-bad and one suppressed/allowed fixture per
   rule, config-parser behaviour, and a scan of the real source tree
   (which must be clean — the same gate CI applies). *)

open Dsvc_lint

(* A config mirroring the checked-in lint.toml, built through the
   parser so the TOML subset is exercised too. *)
let config =
  match
    Lint_config.parse
      {|
# fixture config
[R1-raw-write]
allow = ["lib/util/fsutil.ml", "lib/store/fsutil.ml"]

[R2-unsafe-index]
allow = ["lib/delta/chunker.ml", "lib/delta/compress.ml", "lib/delta/binary_diff.ml"]

[R3-domain-spawn]
allow = ["lib/util/pool.ml"]

[R3-fork]
allow = ["test/lock_probe.ml"]

[R5-nondet]
scope = ["lib/core/", "lib/workload/"]
|}
  with
  | Ok c -> c
  | Error e -> failwith e

let rules_of ~file src =
  List.map
    (fun d -> d.Lint_rules.rule)
    (Lint_rules.check_source ~config ~filename:file src)

let check_rules msg ~file src expected =
  Alcotest.(check (list string)) msg expected (rules_of ~file src)

(* ---- R1: raw write primitives ---- *)

let test_r1 () =
  check_rules "open_out flagged" ~file:"lib/store/archive.ml"
    {|let f () = let oc = open_out "x" in close_out oc|} [ "R1-raw-write" ];
  check_rules "Out_channel opener flagged" ~file:"bin/dsvc.ml"
    {|let f () = Out_channel.with_open_bin "x" ignore|} [ "R1-raw-write" ];
  check_rules "openfile with write flags flagged" ~file:"lib/store/repo.ml"
    {|let f () = Unix.openfile "x" [ Unix.O_WRONLY ] 0o644|}
    [ "R1-raw-write" ];
  check_rules "read-only openfile fine" ~file:"lib/store/repo.ml"
    {|let f () = Unix.openfile "x" [ Unix.O_RDONLY ] 0|} [];
  check_rules "suppression comment honoured" ~file:"lib/store/archive.ml"
    {|(* lint: raw-write-ok scratch file *)
let f () = let oc = open_out "x" in close_out oc|}
    [];
  check_rules "allowlisted file clean" ~file:"lib/util/fsutil.ml"
    {|let f () = let oc = open_out "x" in close_out oc|} []

(* ---- R2: unsafe indexing ---- *)

let test_r2 () =
  check_rules "unsafe_get in allowlisted file needs a comment"
    ~file:"lib/delta/compress.ml"
    {|let f s = String.unsafe_get s 0|} [ "R2-unsafe-index" ];
  check_rules "unsafe-ok comment satisfies the rule"
    ~file:"lib/delta/compress.ml"
    {|(* lint: unsafe-ok caller guarantees s is non-empty *)
let f s = String.unsafe_get s 0|}
    [];
  check_rules "outside the allowlist no comment helps"
    ~file:"lib/core/exact.ml"
    {|(* lint: unsafe-ok nice try *)
let f a = Array.unsafe_get a 0|}
    [ "R2-unsafe-index" ];
  check_rules "unsafe_set flagged too" ~file:"lib/store/repo.ml"
    {|let f b = Bytes.unsafe_set b 0 'x'|} [ "R2-unsafe-index" ]

(* ---- R3: domains and forks ---- *)

let test_r3 () =
  check_rules "Domain.spawn outside Pool" ~file:"lib/core/exact.ml"
    {|let f () = Domain.spawn (fun () -> ())|} [ "R3-domain-spawn" ];
  check_rules "Domain.spawn in Pool fine" ~file:"lib/util/pool.ml"
    {|let f () = Domain.spawn (fun () -> ())|} [];
  check_rules "Unix.fork outside the probe" ~file:"lib/store/server.ml"
    {|let f () = Unix.fork ()|} [ "R3-fork" ];
  check_rules "Unix.fork in the probe fine" ~file:"test/lock_probe.ml"
    {|let f () = Unix.fork ()|} []

(* ---- R4: exception swallowing ---- *)

let test_r4 () =
  check_rules "catch-all wildcard flagged" ~file:"lib/store/server.ml"
    {|let f g = try g () with _ -> 0|} [ "R4-catch-all" ];
  check_rules "bound-but-dropped exception flagged"
    ~file:"lib/store/server.ml" {|let f g = try g () with e -> 0|}
    [ "R4-catch-all" ];
  check_rules "used exception fine" ~file:"lib/store/server.ml"
    {|let f g = try g () with e -> print_endline (Printexc.to_string e); 0|}
    [];
  check_rules "specific exception fine" ~file:"lib/store/server.ml"
    {|let f g = try g () with Not_found -> 0|} [];
  check_rules "swallow-ok suppression honoured" ~file:"lib/store/server.ml"
    {|let f g =
  (* lint: swallow-ok best-effort cleanup on shutdown *)
  try g () with _ -> 0|}
    []

(* ---- R5: nondeterminism in the solver tiers ---- *)

let test_r5 () =
  check_rules "gettimeofday in lib/core flagged" ~file:"lib/core/heur.ml"
    {|let f () = Unix.gettimeofday ()|} [ "R5-nondet" ];
  check_rules "Hashtbl.hash in lib/workload flagged"
    ~file:"lib/workload/gen.ml" {|let f x = Hashtbl.hash x|} [ "R5-nondet" ];
  check_rules "polymorphic compare on float literal flagged"
    ~file:"lib/core/heur.ml" {|let f x = compare x 1.0|} [ "R5-nondet" ];
  check_rules "same code outside the scope is fine" ~file:"lib/store/repo.ml"
    {|let f () = Unix.gettimeofday ()|} [];
  (* telemetry lives in lib/obs on purpose: the identical clock read
     inside a solver tier must still trip, ledger or no ledger *)
  check_rules "telemetry-style clock read in lib/core still flagged"
    ~file:"lib/core/lmg.ml"
    {|let observe_recreation () =
  let t0 = Unix.gettimeofday () in
  t0|}
    [ "R5-nondet" ];
  check_rules "telemetry's own clock read in lib/obs is fine"
    ~file:"lib/obs/telemetry.ml"
    {|let clock () = if enabled () then Some (Unix.gettimeofday ()) else None|}
    [];
  check_rules "nondet-ok suppression honoured" ~file:"lib/core/heur.ml"
    {|(* lint: nondet-ok wall-clock deadline only *)
let f () = Unix.gettimeofday ()|}
    []

(* ---- R6: module-level mutable state near Pool regions ---- *)

let test_r6 () =
  check_rules "toplevel Hashtbl in a Pool-using module flagged"
    ~file:"lib/store/par.ml"
    {|module Pool = Versioning_util.Pool
let cache = Hashtbl.create 8
let run xs = Pool.parallel_map (fun x -> x) xs|}
    [ "R6-toplevel-mutable" ];
  check_rules "same state without any Pool call site is fine"
    ~file:"lib/store/seq.ml"
    {|let cache = Hashtbl.create 8
let run xs = List.map (fun x -> x) xs|}
    [];
  check_rules "mutable-ok suppression honoured" ~file:"lib/store/par.ml"
    {|module Pool = Versioning_util.Pool
(* lint: mutable-ok guarded by a mutex *)
let cache = Hashtbl.create 8
let run xs = Pool.parallel_map (fun x -> x) xs|}
    [];
  (* cross-file reachability: A uses the pool and calls B; B's state
     is flagged even though B itself never mentions Pool *)
  let diags =
    Lint_rules.check_tree ~config
      [
        ( "lib/store/a.ml",
          {|module Pool = Versioning_util.Pool
let run xs = Pool.parallel_map B.work xs|} );
        ("lib/store/b.ml", {|let seen = ref 0
let work x = incr seen; x|});
        ("lib/store/c.ml", {|let alone = ref 0|});
      ]
  in
  Alcotest.(check (list (pair string string)))
    "B flagged, unreferenced C not"
    [ ("lib/store/b.ml", "R6-toplevel-mutable") ]
    (List.map (fun d -> (d.Lint_rules.file, d.Lint_rules.rule)) diags)

(* ---- the interprocedural rules: R7/R8/R9 over the call graph ---- *)

(* check_tree runs every rule; the helpers below project the result
   down to one rule family so an R9 fixture's expected list is not
   polluted by the R6 diagnostics the same mutable binding earns. *)
let tree_rules ?(only = "") ?(cfg = config) files =
  Lint_rules.check_tree ~config:cfg files
  |> List.filter (fun d -> String.starts_with ~prefix:only d.Lint_rules.rule)
  |> List.map (fun d -> (d.Lint_rules.file, d.Lint_rules.rule))

let check_tree_rules msg ?only ?cfg files expected =
  Alcotest.(check (list (pair string string)))
    msg expected
    (tree_rules ?only ?cfg files)

let parse_cfg s =
  match Lint_config.parse s with Ok c -> c | Error e -> failwith e

(* The callgraph/effects engine itself: nested nodes get dotted names,
   Blocks propagates over direct calls but never over deferred ones,
   Locks stays below Blocks, and the transitive acquire set and the
   witness chain come out of the same fixpoint. *)
let test_callgraph_engine () =
  let g =
    Callgraph.build
      [
        ( "lib/store/eng.ml",
          {|let leaf () = Unix.sleepf 0.1
let mid () = leaf ()
let top () = mid ()
let handoff () = Thread.create (fun () -> leaf ()) ()
let locker m = Mutex.lock m; Mutex.unlock m|}
        );
      ]
  in
  let eff = Effects.compute g in
  let lvl id = Effects.level_name (Effects.node_level eff id) in
  Alcotest.(check string) "seeded leaf blocks" "blocks" (lvl "Eng.leaf");
  Alcotest.(check string) "one hop propagates" "blocks" (lvl "Eng.mid");
  Alcotest.(check string) "fixpoint reaches the top" "blocks" (lvl "Eng.top");
  Alcotest.(check string) "deferred body does not leak into the spawner"
    "pure" (lvl "Eng.handoff");
  Alcotest.(check string) "locking stays below blocking" "locks"
    (lvl "Eng.locker");
  Alcotest.(check (list string))
    "witness chain bottoms out at the external seed"
    [ "Eng.top"; "Eng.mid"; "Eng.leaf"; "Unix.sleepf" ]
    (Effects.chain g eff "Eng.top");
  Alcotest.(check (list string))
    "transitive acquire set" [ "Eng.m" ]
    (Effects.SS.elements (Effects.node_acq eff "Eng.locker"))

(* R7: the acceptance fixture — a reactor callback that calls the
   request handler directly (the executor dispatch deleted) must trip;
   routing the same call through the worker handoff must not. *)
let test_r7 () =
  let direct_dispatch =
    {|let handle fd = Repo.commit fd

let serve loop fd =
  Evloop.add loop fd ~read:true ~write:false (fun _ -> handle fd)|}
  in
  check_tree_rules "handler called directly from the reactor trips R7"
    ~only:"R7-"
    [ ("lib/store/srv.ml", direct_dispatch) ]
    [ ("lib/store/srv.ml", "R7-no-blocking-in-reactor") ];
  check_tree_rules "executor handoff keeps the reactor clean" ~only:"R7-"
    [
      ( "lib/store/srv.ml",
        {|let handle fd = Repo.commit fd

let serve loop fd =
  Evloop.add loop fd ~read:true ~write:false (fun _ ->
      submit (fun () -> handle fd))|}
      );
    ]
    [];
  (* blocking callee in another file: the finding lands on the call
     edge in the reactor's file, not inside the callee (which is fine
     for executor-side callers) *)
  check_tree_rules "cross-file blocking callee reported at the call edge"
    ~only:"R7-"
    [
      ( "lib/store/srv.ml",
        {|let serve loop fd =
  Evloop.add loop fd ~read:true ~write:false (fun _ -> Work.slow fd)|}
      );
      ("lib/store/work.ml", {|let slow fd = Unix.sleep fd|});
    ]
    [ ("lib/store/srv.ml", "R7-no-blocking-in-reactor") ];
  check_tree_rules "reactor-ok suppression honoured" ~only:"R7-"
    [
      ( "lib/store/srv.ml",
        {|(* lint: reactor-ok fixture justification *)
let handle fd = Repo.commit fd

let serve loop fd =
  Evloop.add loop fd ~read:true ~write:false (fun _ -> handle fd)|}
      );
    ]
    [];
  (* timer callbacks are reactor roots too (DESIGN.md §16): a sampler
     tick that persists the ring in-line blocks the loop and trips R7;
     handing the flush to the executor keeps the tick Locks-only. *)
  check_tree_rules "blocking sampler tick trips R7" ~only:"R7-"
    [
      ( "lib/store/srv.ml",
        {|let flush repo = Fsutil.write_file "ts" repo

let serve loop repo =
  ignore (Evloop.add_timer loop ~period:5.0 (fun () -> flush repo))|}
      );
    ]
    [ ("lib/store/srv.ml", "R7-no-blocking-in-reactor") ];
  check_tree_rules "sampler tick defers persistence to the executor"
    ~only:"R7-"
    [
      ( "lib/store/srv.ml",
        {|let flush repo = Fsutil.write_file "ts" repo

let serve loop repo =
  ignore
    (Evloop.add_timer loop ~period:5.0 (fun () ->
         submit (fun () -> flush repo)))|}
      );
    ]
    []

(* R8: unreleased locks, double acquisition (direct and through a
   callee), and the configured global lock order. *)
let test_r8 () =
  check_tree_rules "lock without unlock on some path" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
let f () = Mutex.lock m|} );
    ]
    [ ("lib/store/locky.ml", "R8-unreleased-lock") ];
  check_tree_rules "balanced lock/unlock is fine" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
let f () = Mutex.lock m; Mutex.unlock m|} );
    ]
    [];
  check_tree_rules "Fun.protect ~finally counts as the release" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
let f g =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) g|} );
    ]
    [];
  check_tree_rules "relock while held" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
let f () = Mutex.lock m; Mutex.lock m; Mutex.unlock m; Mutex.unlock m|}
      );
    ]
    [ ("lib/store/locky.ml", "R8-double-acquire") ];
  check_tree_rules "double acquire through a callee" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
let g () = Mutex.lock m; Mutex.unlock m
let f () = Mutex.lock m; g (); Mutex.unlock m|}
      );
    ]
    [ ("lib/store/locky.ml", "R8-double-acquire") ];
  let cfg_order =
    parse_cfg "[R8-lock-order]\norder = [\"Locky.outer\", \"Locky.inner\"]"
  in
  check_tree_rules "acquiring against the declared order" ~only:"R8-"
    ~cfg:cfg_order
    [
      ( "lib/store/locky.ml",
        {|let outer = Mutex.create ()
let inner = Mutex.create ()
let f () =
  Mutex.lock inner;
  Mutex.lock outer;
  Mutex.unlock outer;
  Mutex.unlock inner|}
      );
    ]
    [ ("lib/store/locky.ml", "R8-lock-order") ];
  check_tree_rules "acquiring along the declared order is fine" ~only:"R8-"
    ~cfg:cfg_order
    [
      ( "lib/store/locky.ml",
        {|let outer = Mutex.create ()
let inner = Mutex.create ()
let f () =
  Mutex.lock outer;
  Mutex.lock inner;
  Mutex.unlock inner;
  Mutex.unlock outer|}
      );
    ]
    [];
  check_tree_rules "lock-ok suppression honoured" ~only:"R8-"
    [
      ( "lib/store/locky.ml",
        {|let m = Mutex.create ()
(* lint: lock-ok fixture justification *)
let f () = Mutex.lock m|} );
    ]
    []

(* R9: a toplevel mutable binding reached from both the pool-task side
   and the thread side of the program, in a module with no mutex. *)
let r9_driver =
  {|let run xs =
  let t = Thread.create (fun () -> Shared.bump ()) () in
  let ys = Pool.parallel_map (fun x -> Shared.bump (); x) xs in
  Thread.join t;
  ys|}

let test_r9 () =
  check_tree_rules "unguarded state reached from both sides" ~only:"R9-"
    [
      ("lib/store/shared.ml", {|let seen = ref 0
let bump () = incr seen|});
      ("lib/store/drv.ml", r9_driver);
    ]
    [ ("lib/store/shared.ml", "R9-shared-state") ];
  check_tree_rules "a mutex in the module counts as guarded" ~only:"R9-"
    [
      ( "lib/store/shared.ml",
        {|let m = Mutex.create ()
let seen = ref 0
let bump () = Mutex.lock m; incr seen; Mutex.unlock m|}
      );
      ("lib/store/drv.ml", r9_driver);
    ]
    [];
  check_tree_rules "task-only access is not shared" ~only:"R9-"
    [
      ("lib/store/shared.ml", {|let seen = ref 0
let bump () = incr seen|});
      ( "lib/store/drv.ml",
        {|let run xs = Pool.parallel_map (fun x -> Shared.bump (); x) xs|}
      );
    ]
    [];
  check_tree_rules "shared-ok suppression honoured" ~only:"R9-"
    [
      ( "lib/store/shared.ml",
        {|(* lint: shared-ok fixture justification *)
let seen = ref 0
let bump () = incr seen|} );
      ("lib/store/drv.ml", r9_driver);
    ]
    []

(* ---- parse errors and config errors ---- *)

let test_parse_error () =
  check_rules "unparseable source reported" ~file:"lib/store/bad.ml"
    "let let let" [ "parse-error" ]

let test_config_errors () =
  (match Lint_config.parse "[R1-raw-write]\nallow = nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed list must be rejected");
  (match Lint_config.parse "allow = [\"x\"]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key outside a section must be rejected");
  (match Lint_config.parse "[R99-bogus]\nallow = [\"x\"]" with
  | Error e ->
      Alcotest.(check bool) "unknown section error names the section" true
        (let rec has i =
           i + 9 <= String.length e
           && (String.sub e i 9 = "R99-bogus" || has (i + 1))
         in
         has 0)
  | Ok _ -> Alcotest.fail "unknown section must be rejected");
  (match Lint_config.parse "[R1-raw-write]\nregister = [\"Evloop.add\"]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key invalid for its section must be rejected");
  (match
     Lint_config.parse "[R7-no-blocking-in-reactor]\nregister = [\"Evloop.add\"]"
   with
  | Ok c ->
      Alcotest.(check (list string))
        "register list round-trips" [ "Evloop.add" ]
        (Lint_config.names_for c ~rule:"R7-no-blocking-in-reactor"
           ~key:"register" ~default:[])
  | Error e -> Alcotest.failf "register in its own section must parse: %s" e);
  match Lint_config.parse "# only comments\n\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "empty config must parse: %s" e

let test_config_stale_path () =
  (* an allow entry pointing at nothing on disk is a hard config
     error, not a silently-dead exemption *)
  let stale = parse_cfg "[R1-raw-write]\nallow = [\"lib/nope/gone.ml\"]" in
  (match Lint_config.validate ~root:".." stale with
  | Error e ->
      Alcotest.(check bool) "error names the stale path" true
        (let needle = "gone.ml" in
         let rec has i =
           i + String.length needle <= String.length e
           && (String.sub e i (String.length needle) = needle || has (i + 1))
         in
         has 0)
  | Ok () -> Alcotest.fail "stale allow path must fail validation");
  (* the same check accepts a path that exists (run against the
     mirrored source tree when present) *)
  if Sys.file_exists "../lib/util/fsutil.ml" then
    let live = parse_cfg "[R1-raw-write]\nallow = [\"lib/util/fsutil.ml\"]" in
    match Lint_config.validate ~root:".." live with
    | Ok () -> ()
    | Error e -> Alcotest.failf "live path must validate: %s" e

let test_suppression_window () =
  (* a suppression covers its own lines and the line right after; two
     lines down it no longer applies *)
  check_rules "comment two lines above does not suppress"
    ~file:"lib/store/archive.ml"
    {|(* lint: raw-write-ok too far away *)

let f () = let oc = open_out "x" in close_out oc|}
    [ "R1-raw-write" ]

(* ---- the real tree is clean ---- *)

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_real_tree_clean () =
  (* The test binary runs in _build/default/test; the mirrored source
     tree sits one level up. Skip gracefully if the layout differs
     (e.g. a future out-of-tree runner). *)
  let roots =
    List.filter
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "../lib"; "../bin"; "../bench"; "../test"; "../tools" ]
  in
  if List.length roots < 5 then ()
  else begin
    let cfg =
      if Sys.file_exists "../lint.toml" then
        match Lint_config.load "../lint.toml" with
        | Ok c -> c
        | Error e -> Alcotest.failf "lint.toml: %s" e
      else config
    in
    let files = List.fold_left collect [] roots |> List.sort compare in
    Alcotest.(check bool) "scanned a real number of files" true
      (List.length files > 50);
    let sources = List.map (fun f -> (f, read_file f)) files in
    match Lint_rules.check_tree ~config:cfg sources with
    | [] -> ()
    | diags ->
        Alcotest.failf "source tree has lint diagnostics:\n%s"
          (String.concat "\n" (List.map Lint_rules.to_string diags))
  end

let suite =
  [
    Alcotest.test_case "R1 raw writes" `Quick test_r1;
    Alcotest.test_case "R2 unsafe indexing" `Quick test_r2;
    Alcotest.test_case "R3 domains and forks" `Quick test_r3;
    Alcotest.test_case "R4 exception swallowing" `Quick test_r4;
    Alcotest.test_case "R5 nondeterminism" `Quick test_r5;
    Alcotest.test_case "R6 toplevel mutable state" `Quick test_r6;
    Alcotest.test_case "callgraph and effect fixpoint" `Quick
      test_callgraph_engine;
    Alcotest.test_case "R7 blocking in the reactor" `Quick test_r7;
    Alcotest.test_case "R8 lock discipline" `Quick test_r8;
    Alcotest.test_case "R9 shared-state reachability" `Quick test_r9;
    Alcotest.test_case "parse errors surface" `Quick test_parse_error;
    Alcotest.test_case "config validation" `Quick test_config_errors;
    Alcotest.test_case "stale config paths rejected" `Quick
      test_config_stale_path;
    Alcotest.test_case "suppression window" `Quick test_suppression_window;
    Alcotest.test_case "real tree is clean" `Quick test_real_tree_clean;
  ]
