(* Shared test fixtures and helpers. *)

open Versioning_core
module Prng = Versioning_util.Prng

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected an error"

(* The paper's running example: Figure 1 / Figure 2 matrices. *)
let figure1 () =
  let g = Aux_graph.create ~n_versions:5 in
  List.iter
    (fun (v, c) -> Aux_graph.add_materialization g ~version:v ~delta:c ~phi:c)
    [ (1, 10000.); (2, 10100.); (3, 9700.); (4, 9800.); (5, 10120.) ];
  List.iter
    (fun (i, j, delta, phi) -> Aux_graph.add_delta g ~src:i ~dst:j ~delta ~phi)
    [
      (1, 2, 200., 200.);
      (1, 3, 1000., 3000.);
      (2, 1, 500., 600.);
      (2, 4, 50., 400.);
      (2, 5, 800., 2500.);
      (3, 2, 1100., 3200.);
      (3, 5, 200., 550.);
      (5, 4, 800., 2300.);
      (4, 5, 900., 2500.);
    ];
  g

(* Random proportional-cost graph; always has all materializations, so
   every problem is feasible. *)
let random_graph ?(n_min = 2) ?(n_max = 8) ?(density = 0.5) rng =
  let n = Prng.int_in rng n_min n_max in
  let g = Aux_graph.create ~n_versions:n in
  for v = 1 to n do
    let c = float_of_int (Prng.int_in rng 50 150) in
    Aux_graph.add_materialization g ~version:v ~delta:c ~phi:c
  done;
  for s = 1 to n do
    for d = 1 to n do
      if s <> d && Prng.bernoulli rng density then begin
        let c = float_of_int (Prng.int_in rng 1 40) in
        Aux_graph.add_delta g ~src:s ~dst:d ~delta:c ~phi:c
      end
    done
  done;
  g

(* Validity invariant, via the independent verifier: a storage graph
   is a spanning arborescence over revealed edges of [g] and its cost
   accounting matches a fresh recomputation (Lemma 1). Every solver
   test funnels its output through this. *)
let check_valid g sg =
  match Solution_check.check g sg with
  | Ok _ -> ()
  | Error problems ->
      Alcotest.failf "invalid storage solution:\n%s"
        (String.concat "\n" problems)

let float_eq = Alcotest.float 1e-6
