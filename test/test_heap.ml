module Heap = Versioning_util.Binary_heap
module Prng = Versioning_util.Prng

let test_empty () =
  let h = Heap.create ~capacity:4 in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop_min h))

let test_basic_order () =
  let h = Heap.create ~capacity:10 in
  List.iter (fun (v, k) -> Heap.insert h v k)
    [ (3, 5.0); (1, 2.0); (7, 9.0); (0, 4.0) ];
  Alcotest.(check (pair int (float 0.))) "min" (1, 2.0) (Heap.pop_min h);
  Alcotest.(check (pair int (float 0.))) "next" (0, 4.0) (Heap.pop_min h);
  Alcotest.(check (pair int (float 0.))) "next" (3, 5.0) (Heap.pop_min h);
  Alcotest.(check (pair int (float 0.))) "next" (7, 9.0) (Heap.pop_min h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_update_key () =
  let h = Heap.create ~capacity:4 in
  Heap.insert h 0 10.0;
  Heap.insert h 1 20.0;
  (* Re-insert acts as update, both directions. *)
  Heap.insert h 1 5.0;
  Alcotest.(check (pair int (float 0.))) "decreased wins" (1, 5.0) (Heap.min_elt h);
  Heap.insert h 1 30.0;
  Alcotest.(check (pair int (float 0.))) "increased loses" (0, 10.0) (Heap.min_elt h);
  Alcotest.(check int) "still 2 elements" 2 (Heap.length h)

let test_decrease_key () =
  let h = Heap.create ~capacity:4 in
  Heap.insert h 2 50.0;
  Heap.insert h 3 40.0;
  Heap.decrease_key h 2 1.0;
  Alcotest.(check (pair int (float 0.))) "decreased" (2, 1.0) (Heap.pop_min h);
  (* No-op when key is not lower. *)
  Heap.decrease_key h 3 99.0;
  Alcotest.(check (float 0.)) "unchanged" 40.0 (Heap.key_of h 3);
  Alcotest.check_raises "absent element" Not_found (fun () ->
      Heap.decrease_key h 0 1.0)

let test_mem_key_of () =
  let h = Heap.create ~capacity:4 in
  Heap.insert h 1 3.5;
  Alcotest.(check bool) "mem" true (Heap.mem h 1);
  Alcotest.(check bool) "not mem" false (Heap.mem h 0);
  Alcotest.(check bool) "out of range not mem" false (Heap.mem h 100);
  Alcotest.(check (float 0.)) "key_of" 3.5 (Heap.key_of h 1)

let test_remove () =
  let h = Heap.create ~capacity:8 in
  List.iter (fun v -> Heap.insert h v (float_of_int v)) [ 5; 2; 7; 1; 3 ];
  Heap.remove h 2;
  Heap.remove h 2;
  (* second remove is a no-op *)
  Alcotest.(check bool) "removed" false (Heap.mem h 2);
  let drained = ref [] in
  while not (Heap.is_empty h) do
    drained := fst (Heap.pop_min h) :: !drained
  done;
  Alcotest.(check (list int)) "rest in order" [ 7; 5; 3; 1 ] !drained

let test_tie_determinism () =
  let h = Heap.create ~capacity:8 in
  List.iter (fun v -> Heap.insert h v 1.0) [ 4; 2; 6; 0 ];
  Alcotest.(check int) "smallest id first on tie" 0 (fst (Heap.pop_min h));
  Alcotest.(check int) "then next" 2 (fst (Heap.pop_min h))

let test_range_check () =
  let h = Heap.create ~capacity:2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Binary_heap.insert: element out of range") (fun () ->
      Heap.insert h 2 1.0)

let qcheck_heapsort =
  QCheck.Test.make ~name:"heap drains in sorted key order" ~count:300
    QCheck.(small_list (pair (int_bound 200) (float_bound_inclusive 1000.0)))
    (fun pairs ->
      let h = Heap.create ~capacity:201 in
      let expected = Hashtbl.create 16 in
      List.iter
        (fun (v, k) ->
          Heap.insert h v k;
          Hashtbl.replace expected v k)
        pairs;
      let out = ref [] in
      while not (Heap.is_empty h) do
        out := Heap.pop_min h :: !out
      done;
      let out = List.rev !out in
      (* each element once, with its final key, in nondecreasing order *)
      List.length out = Hashtbl.length expected
      && List.for_all (fun (v, k) -> Hashtbl.find expected v = k) out
      && fst
           (List.fold_left
              (fun (okay, prev) (_, k) -> (okay && k >= prev, k))
              (true, neg_infinity) out))

let qcheck_decrease_key =
  QCheck.Test.make ~name:"decrease_key preserves heap order" ~count:200
    QCheck.(
      pair
        (small_list (pair (int_bound 50) (float_bound_inclusive 100.0)))
        (small_list (pair (int_bound 50) (float_bound_inclusive 100.0))))
    (fun (inserts, decreases) ->
      let h = Heap.create ~capacity:51 in
      List.iter (fun (v, k) -> Heap.insert h v k) inserts;
      List.iter
        (fun (v, k) -> if Heap.mem h v then Heap.decrease_key h v k)
        decreases;
      let prev = ref neg_infinity in
      let sorted = ref true in
      while not (Heap.is_empty h) do
        let _, k = Heap.pop_min h in
        if k < !prev then sorted := false;
        prev := k
      done;
      !sorted)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "insert as update" `Quick test_update_key;
    Alcotest.test_case "decrease_key" `Quick test_decrease_key;
    Alcotest.test_case "mem / key_of" `Quick test_mem_key_of;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "tie determinism" `Quick test_tie_determinism;
    Alcotest.test_case "range check" `Quick test_range_check;
    QCheck_alcotest.to_alcotest qcheck_heapsort;
    QCheck_alcotest.to_alcotest qcheck_decrease_key;
  ]
