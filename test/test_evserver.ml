(* The event-driven server core (DESIGN.md §13): incremental request
   parsing, HTTP/1.1 keep-alive and pipelining, the 408/503/idle
   backpressure limits, mid-stream blob faults, and the client's
   persistent-connection error semantics. *)

open Versioning_store
module Faults = Versioning_util.Faults
module Evloop = Versioning_util.Evloop

let temp_dir () =
  let path = Filename.temp_file "dsvc_evsrv" "" in
  Sys.remove path;
  path

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let mk_repo () =
  let repo = ok (Repo.init ~path:(temp_dir ())) in
  let _ = ok (Repo.commit repo ~message:"first" "alpha\nbeta") in
  let _ = ok (Repo.commit repo ~message:"second" "alpha\nbeta\ngamma") in
  repo

(* ---- percent-coding properties ---- *)

let unreserved c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '.' || c = '_' || c = '~'

(* A conforming encoder: every reserved byte becomes %XX; in query
   mode a space becomes '+' (x-www-form-urlencoded). *)
let percent_encode ?(space_plus = false) s =
  let buf = Buffer.create (String.length s * 3) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char buf c
      else if space_plus && c = ' ' then Buffer.add_char buf '+'
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let arbitrary_bytes = QCheck.string_gen QCheck.Gen.char

let qcheck_path_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"percent path encode/decode roundtrip"
    arbitrary_bytes
    (fun s -> Http.percent_decode (percent_encode s) = s)

let qcheck_query_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"percent query encode/decode roundtrip"
    arbitrary_bytes
    (fun s -> Http.percent_decode_query (percent_encode ~space_plus:true s) = s)

(* Decoding arbitrary (possibly malformed) input never raises and
   never grows the string — malformed escapes pass through. *)
let qcheck_decode_total =
  QCheck.Test.make ~count:1000 ~name:"percent decode total and bounded"
    arbitrary_bytes
    (fun s ->
      String.length (Http.percent_decode s) <= String.length s
      && String.length (Http.percent_decode_query s) <= String.length s)

(* ---- incremental parser framing ---- *)

let test_parser_pipelined () =
  let p = Http.Parser.create () in
  Http.Parser.feed_string p
    ("GET /a?x=1 HTTP/1.1\r\nHost: h\r\n\r\n"
   ^ "POST /b HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
   ^ "GET /c HTTP/1.1\r\nHost: h\r\n\r\n");
  (match Http.Parser.next p with
  | `Request r ->
      Alcotest.(check string) "first path" "/a" r.Http.path;
      Alcotest.(check (option string)) "first query" (Some "1")
        (List.assoc_opt "x" r.Http.query)
  | _ -> Alcotest.fail "first request expected");
  (match Http.Parser.next p with
  | `Request r ->
      Alcotest.(check string) "second meth" "POST" r.Http.meth;
      Alcotest.(check string) "second body" "hello" r.Http.body
  | _ -> Alcotest.fail "second request expected");
  (match Http.Parser.next p with
  | `Request r -> Alcotest.(check string) "third path" "/c" r.Http.path
  | _ -> Alcotest.fail "third request expected");
  (match Http.Parser.next p with
  | `Partial -> ()
  | _ -> Alcotest.fail "drained parser must report partial");
  Alcotest.(check int) "no leftover bytes" 0 (Http.Parser.buffered p)

let test_parser_split_reads () =
  let raw =
    "POST /commit HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello\nworld"
  in
  let p = Http.Parser.create () in
  (* byte at a time: the request must complete exactly once, at the
     last byte, never early and never as a rejection *)
  String.iter
    (fun c ->
      (match Http.Parser.next p with
      | `Partial -> ()
      | `Request _ -> Alcotest.fail "request completed early"
      | `Reject _ -> Alcotest.fail "split request rejected");
      Http.Parser.feed_string p (String.make 1 c))
    (String.sub raw 0 (String.length raw - 1));
  Alcotest.(check bool) "mid-request flag" true (Http.Parser.in_request p);
  Http.Parser.feed_string p
    (String.sub raw (String.length raw - 1) 1);
  match Http.Parser.next p with
  | `Request r ->
      Alcotest.(check string) "body reassembled" "hello\nworld" r.Http.body;
      Alcotest.(check bool) "no longer mid-request" false
        (Http.Parser.in_request p)
  | _ -> Alcotest.fail "request expected after final byte"

let test_parser_limits () =
  let limits = { Http.Parser.max_header_bytes = 64; max_body_bytes = 32 } in
  let p = Http.Parser.create ~limits () in
  Http.Parser.feed_string p ("GET /" ^ String.make 200 'a');
  (match Http.Parser.next p with
  | `Reject r ->
      Alcotest.(check int) "oversize header is 413" 413
        r.Http.Parser.reject_status
  | _ -> Alcotest.fail "oversize header must reject");
  (* rejection is sticky: a later well-formed request cannot
     resurrect the connection *)
  Http.Parser.feed_string p " HTTP/1.1\r\n\r\nGET /ok HTTP/1.1\r\n\r\n";
  (match Http.Parser.next p with
  | `Reject _ -> ()
  | _ -> Alcotest.fail "rejection must be sticky");
  let p = Http.Parser.create ~limits () in
  Http.Parser.feed_string p "POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
  match Http.Parser.next p with
  | `Reject r ->
      Alcotest.(check int) "oversize body is 413" 413
        r.Http.Parser.reject_status
  | _ -> Alcotest.fail "oversize body must reject"

let test_parser_content_length_hygiene () =
  let reject_of s =
    let p = Http.Parser.create () in
    Http.Parser.feed_string p s;
    match Http.Parser.next p with
    | `Reject r -> r.Http.Parser.reject_status
    | `Request _ -> Alcotest.failf "accepted %S" s
    | `Partial -> Alcotest.failf "no verdict for %S" s
  in
  Alcotest.(check int) "duplicate CL" 400
    (reject_of
       "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc");
  Alcotest.(check int) "conflicting CL" 400
    (reject_of
       "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd");
  Alcotest.(check int) "list-valued CL" 400
    (reject_of "POST /x HTTP/1.1\r\nContent-Length: 3, 3\r\n\r\nabc");
  Alcotest.(check int) "negative CL" 400
    (reject_of "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  Alcotest.(check int) "garbage CL" 400
    (reject_of "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

(* ---- socket plumbing ---- *)

(* Serve on an ephemeral port; the on_listen handshake hands the
   actual port back before the first connect. Every test server gets a
   max_requests so it shuts itself down once the expected responses
   have been enqueued (503 rejections don't count — they never reach
   the response path). *)
let start_server ?request_timeout ?idle_timeout ?max_connections ?backend
    ~max_requests repo =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let port = ref 0 in
  let th =
    Thread.create
      (fun () ->
        match
          Server.serve repo ~port:0 ?request_timeout ?idle_timeout
            ?max_connections ?backend ~max_requests
            ~on_listen:(fun p ->
              Mutex.lock mu;
              port := p;
              Condition.signal cv;
              Mutex.unlock mu)
            ()
        with
        | Ok () -> ()
        | Error e -> Printf.eprintf "test server failed: %s\n%!" e)
      ()
  in
  Mutex.lock mu;
  while !port = 0 do
    Condition.wait cv mu
  done;
  Mutex.unlock mu;
  (!port, th)

let tcp_connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let close_sock sock = try Unix.close sock with Unix.Unix_error _ -> ()

let send oc s =
  output_string oc s;
  flush oc

let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

(* One Content-Length-framed response off a keep-alive connection. *)
let read_response ic =
  let status_line = strip_cr (input_line ic) in
  let status =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> Alcotest.failf "bad status line %S" status_line)
    | _ -> Alcotest.failf "bad status line %S" status_line
  in
  let content_length = ref 0 in
  let rec headers () =
    let l = strip_cr (input_line ic) in
    if l <> "" then begin
      (match String.index_opt l ':' with
      | Some i ->
          if String.lowercase_ascii (String.sub l 0 i) = "content-length" then
            content_length :=
              int_of_string
                (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
      | None -> ());
      headers ()
    end
  in
  headers ();
  (status, really_input_string ic !content_length)

let read_to_eof ic =
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let expect_eof name ic =
  Alcotest.(check int) name 0 (input ic (Bytes.create 1) 0 1)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* ---- keep-alive, pipelining and the limit responses ---- *)

let test_keepalive_then_close () =
  let repo = mk_repo () in
  let port, server = start_server ~max_requests:3 repo in
  let sock, ic, oc = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock) @@ fun () ->
  send oc "GET /stats HTTP/1.1\r\nHost: h\r\n\r\n";
  let s1, b1 = read_response ic in
  Alcotest.(check int) "first 200" 200 s1;
  Alcotest.(check bool) "stats body" true (String.length b1 > 0);
  (* second request on the same connection: keep-alive *)
  send oc "GET /versions HTTP/1.1\r\nHost: h\r\n\r\n";
  let s2, _ = read_response ic in
  Alcotest.(check int) "second 200 on same connection" 200 s2;
  (* Connection: close is honoured *)
  send oc "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  let s3, _ = read_response ic in
  Alcotest.(check int) "third 200" 200 s3;
  expect_eof "closed after Connection: close" ic;
  Thread.join server

let test_socket_pipelining () =
  let repo = mk_repo () in
  let port, server = start_server ~max_requests:2 repo in
  let sock, ic, oc = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock) @@ fun () ->
  (* both requests on the wire before either response: responses must
     come back complete and in order *)
  send oc
    ("GET /checkout/1 HTTP/1.1\r\nHost: h\r\n\r\n"
   ^ "GET /checkout/2 HTTP/1.1\r\nHost: h\r\n\r\n");
  let s1, b1 = read_response ic in
  let s2, b2 = read_response ic in
  Alcotest.(check int) "first 200" 200 s1;
  Alcotest.(check string) "first body" "alpha\nbeta" b1;
  Alcotest.(check int) "second 200" 200 s2;
  Alcotest.(check string) "second body in order" "alpha\nbeta\ngamma" b2;
  Thread.join server

let test_request_timeout_408 () =
  let repo = mk_repo () in
  let port, server = start_server ~request_timeout:0.3 ~max_requests:1 repo in
  let sock, ic, oc = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock) @@ fun () ->
  (* a request that never finishes: mid-request silence is a 408 *)
  send oc "GET /stats HTT";
  let s, _ = read_response ic in
  Alcotest.(check int) "408 on stalled request" 408 s;
  expect_eof "closed after 408" ic;
  Thread.join server

let test_idle_close_silent () =
  let repo = mk_repo () in
  let port, server = start_server ~idle_timeout:0.25 ~max_requests:2 repo in
  let sock, ic, oc = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock) @@ fun () ->
  send oc "GET /stats HTTP/1.1\r\nHost: h\r\n\r\n";
  let s, _ = read_response ic in
  Alcotest.(check int) "served" 200 s;
  (* between requests an idle connection is closed silently — EOF, no
     408 on the wire *)
  expect_eof "idle connection closed with no bytes" ic;
  let sock2, ic2, oc2 = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock2) @@ fun () ->
  send oc2 "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  let s2, _ = read_response ic2 in
  Alcotest.(check int) "fresh connection still served" 200 s2;
  Thread.join server

let test_max_connections_503 () =
  let repo = mk_repo () in
  let port, server = start_server ~max_connections:1 ~max_requests:1 repo in
  let sock1, ic1, oc1 = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock1) @@ fun () ->
  Unix.sleepf 0.05;
  let sock2, ic2, _ = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock2) @@ fun () ->
  let s, body = read_response ic2 in
  Alcotest.(check int) "over capacity is 503" 503 s;
  Alcotest.(check bool) "capacity message" true (String.length body > 0);
  expect_eof "overload connection closed" ic2;
  (* the admitted connection is unaffected *)
  send oc1 "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  let s1, _ = read_response ic1 in
  Alcotest.(check int) "admitted connection still served" 200 s1;
  Thread.join server

(* ---- backend matrix: the three pollers must agree ---- *)

(* One probe run against a server pinned to [backend], collecting the
   status codes of the three limit behaviors: oversized headers (413),
   an over-capacity connect (503), and a mid-request stall (408). The
   server core is backend-agnostic, so the triples must be identical
   whatever poller drives the loop. *)
let probe_backend backend =
  let repo = mk_repo () in
  (* max_requests:2 — the 413 and the 408 go through the response
     path; the 503 is written straight to the fresh socket and does
     not count. *)
  let port, server =
    start_server ~backend ~request_timeout:0.4 ~max_connections:1
      ~max_requests:2 repo
  in
  (* 413: a request line that blows the 16 KiB header cap *)
  let sock1, ic1, oc1 = tcp_connect port in
  let s413 =
    Fun.protect ~finally:(fun () -> close_sock sock1) @@ fun () ->
    send oc1 ("GET /" ^ String.make 20_000 'a');
    let s, _ = read_response ic1 in
    expect_eof (backend ^ ": closed after 413") ic1;
    s
  in
  (* let the loop retire the closed connection before filling the
     single connection slot again *)
  Unix.sleepf 0.05;
  let sock2, ic2, oc2 = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock2) @@ fun () ->
  Unix.sleepf 0.05;
  (* 503: sock2 holds the only slot, so a second connect is rejected *)
  let sock3, ic3, _ = tcp_connect port in
  let s503 =
    Fun.protect ~finally:(fun () -> close_sock sock3) @@ fun () ->
    let s, _ = read_response ic3 in
    expect_eof (backend ^ ": overload connection closed") ic3;
    s
  in
  (* 408: the admitted connection stalls mid-request *)
  send oc2 "GET /stats HTT";
  let s408, _ = read_response ic2 in
  expect_eof (backend ^ ": closed after 408") ic2;
  Thread.join server;
  (s413, s503, s408)

let test_backend_matrix () =
  let backends =
    [ "select"; "poll" ] @ (if Evloop.has_epoll () then [ "epoll" ] else [])
  in
  List.iter
    (fun backend ->
      let s413, s503, s408 = probe_backend backend in
      Alcotest.(check int) (backend ^ ": oversized header is 413") 413 s413;
      Alcotest.(check int) (backend ^ ": over capacity is 503") 503 s503;
      Alcotest.(check int) (backend ^ ": stalled request is 408") 408 s408)
    backends

(* ---- streamed blob bodies under fault ---- *)

let test_streamed_blob_fault () =
  Faults.reset ();
  Fun.protect ~finally:(fun () -> Faults.reset ()) @@ fun () ->
  let repo = mk_repo () in
  let port, server = start_server ~max_requests:2 repo in
  (* several 64 KiB chunks' worth of blob *)
  let content =
    String.init 200_000 (fun i -> Char.chr (((i * 131) + (i / 7)) land 0xff))
  in
  let digest = Content_hash.hex content in
  let sock, ic, oc = tcp_connect port in
  Fun.protect ~finally:(fun () -> close_sock sock) @@ fun () ->
  send oc
    (Printf.sprintf "POST /blob/%s HTTP/1.1\r\nHost: h\r\nContent-Length: %d\r\n\r\n"
       digest (String.length content)
    ^ content);
  let s, _ = read_response ic in
  Alcotest.(check int) "blob stored" 201 s;
  (* first chunk passes, then the connection dies mid-body: the client
     must never see a complete-looking 200 *)
  Faults.arm ~site:"http.write_chunk" ~after:1 Faults.Drop;
  send oc (Printf.sprintf "GET /blob/%s HTTP/1.1\r\nHost: h\r\n\r\n" digest);
  let raw = read_to_eof ic in
  Alcotest.(check bool) "fault fired" false
    (Faults.armed ~site:"http.write_chunk");
  let complete =
    match find_sub raw "\r\n\r\n" with
    | Some i ->
        String.length raw >= 12
        && String.sub raw 0 12 = "HTTP/1.1 200"
        && String.length raw - i - 4 >= String.length content
    | None -> false
  in
  Alcotest.(check bool) "mid-stream drop leaves an incomplete response" false
    complete;
  (* whatever body bytes did arrive are a prefix of the blob, not
     garbage *)
  (match find_sub raw "\r\n\r\n" with
  | Some i ->
      let got = String.length raw - i - 4 in
      Alcotest.(check string) "partial body is a prefix"
        (String.sub content 0 got)
        (String.sub raw (i + 4) got)
  | None -> ());
  Thread.join server

(* ---- client connection reuse and the typed stale error ---- *)

let test_client_reuse_and_stale () =
  Faults.reset ();
  Fun.protect ~finally:(fun () -> Faults.reset ()) @@ fun () ->
  let repo = mk_repo () in
  let port, server = start_server ~max_requests:3 repo in
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  (match Client.stats client with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first request: %s" e);
  (* the server drops the kept-alive connection instead of responding:
     a GET is idempotent, so the client reconnects and retries *)
  Faults.arm ~site:"http.write_response" Faults.Drop;
  (match Client.stats client with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "idempotent retry should succeed: %s" e);
  Alcotest.(check bool) "drop consumed by retry test" false
    (Faults.armed ~site:"http.write_response");
  (* the same failure on a POST surfaces as a typed non-transient
     stale-connection error — a retried POST could apply twice *)
  Faults.arm ~site:"http.write_response" Faults.Drop;
  (match
     Client.request_detailed client ~meth:"POST" ~path:"/tag/evtest" ()
   with
  | Ok _ -> Alcotest.fail "dropped POST must not report success"
  | Error e ->
      Alcotest.(check bool) "stale kind" true
        (e.Client.kind = Client.Stale_connection);
      Alcotest.(check bool) "not transient for POST" false e.Client.transient;
      Alcotest.(check string) "stage" "reuse" e.Client.stage);
  (* the client recovers: the next request opens a fresh connection *)
  (match Client.stats client with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recovery request: %s" e);
  Client.close client;
  Thread.join server

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_path_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_query_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_decode_total;
    Alcotest.test_case "parser pipelined requests" `Quick test_parser_pipelined;
    Alcotest.test_case "parser split across reads" `Quick
      test_parser_split_reads;
    Alcotest.test_case "parser size limits" `Quick test_parser_limits;
    Alcotest.test_case "parser content-length hygiene" `Quick
      test_parser_content_length_hygiene;
    Alcotest.test_case "keep-alive then close" `Quick test_keepalive_then_close;
    Alcotest.test_case "pipelining over a socket" `Quick test_socket_pipelining;
    Alcotest.test_case "stalled request gets 408" `Quick
      test_request_timeout_408;
    Alcotest.test_case "idle connection closed silently" `Quick
      test_idle_close_silent;
    Alcotest.test_case "connection cap gets 503" `Quick
      test_max_connections_503;
    Alcotest.test_case "backend matrix agrees on 408/413/503" `Quick
      test_backend_matrix;
    Alcotest.test_case "streamed blob cut mid-body" `Quick
      test_streamed_blob_fault;
    Alcotest.test_case "client reuse and stale error" `Quick
      test_client_reuse_and_stale;
  ]
