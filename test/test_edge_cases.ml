(* Edge cases across the optimization layer: degenerate sizes,
   zero-cost deltas (identical versions), parallel reveals, and very
   deep chains. *)

open Versioning_core
module Prng = Versioning_util.Prng

let test_single_version () =
  let g = Aux_graph.create ~n_versions:1 in
  Aux_graph.add_materialization g ~version:1 ~delta:42. ~phi:42.;
  let check name sg =
    Alcotest.(check int) (name ^ " parent") 0 (Storage_graph.parent sg 1);
    Alcotest.check Fixtures.float_eq (name ^ " storage") 42.0
      (Storage_graph.storage_cost sg)
  in
  check "mca" (Fixtures.ok (Mca.solve g));
  check "spt" (Fixtures.ok (Spt.solve g));
  check "gith" (Fixtures.ok (Gith.solve g ~window:0 ~max_depth:5));
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let spt = Fixtures.ok (Spt.solve g) in
  check "lmg" (Lmg.solve g ~base ~spt ~budget:100. ());
  check "last" (Last.solve g ~base ~alpha:2.0);
  (match Mp.solve g ~theta:42.0 with
  | { Mp.tree = Some sg; _ } -> check "mp" sg
  | _ -> Alcotest.fail "mp single");
  match (Exact.solve_p6 g ~theta:42.0 ()).Exact.tree with
  | Some sg -> check "exact" sg
  | None -> Alcotest.fail "exact single"

let test_zero_version_graph () =
  let g = Aux_graph.create ~n_versions:0 in
  let sg = Fixtures.ok (Mca.solve g) in
  Alcotest.(check int) "no versions" 0 (Storage_graph.n_versions sg);
  Alcotest.check Fixtures.float_eq "no storage" 0.0
    (Storage_graph.storage_cost sg);
  let sg = Fixtures.ok (Spt.solve g) in
  Alcotest.check Fixtures.float_eq "no recreation" 0.0
    (Storage_graph.sum_recreation sg)

let zero_delta_graph () =
  (* identical versions: zero-cost deltas in both directions *)
  let g = Aux_graph.create ~n_versions:3 in
  for v = 1 to 3 do
    Aux_graph.add_materialization g ~version:v ~delta:50. ~phi:50.
  done;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:0. ~phi:0.;
  Aux_graph.add_delta g ~src:2 ~dst:1 ~delta:0. ~phi:0.;
  Aux_graph.add_delta g ~src:2 ~dst:3 ~delta:0. ~phi:0.;
  Aux_graph.add_delta g ~src:3 ~dst:2 ~delta:0. ~phi:0.;
  g

let test_zero_cost_deltas () =
  let g = zero_delta_graph () in
  (* MCA must store one copy + two free deltas, and stay acyclic
     despite the zero-cost two-cycles *)
  let sg = Fixtures.ok (Mca.solve g) in
  Fixtures.check_valid g sg;
  Alcotest.check Fixtures.float_eq "one copy" 50.0
    (Storage_graph.storage_cost sg);
  (* every algorithm must avoid the 1<->2 cycle *)
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let spt = Fixtures.ok (Spt.solve g) in
  Fixtures.check_valid g (Lmg.solve g ~base ~spt ~budget:1e9 ());
  Fixtures.check_valid g (Last.solve g ~base ~alpha:2.0);
  (match Mp.solve g ~theta:100.0 with
  | { Mp.tree = Some sg; _ } -> Fixtures.check_valid g sg
  | _ -> Alcotest.fail "mp zero-delta");
  match (Exact.solve_p6 g ~theta:100.0 ()).Exact.tree with
  | Some e ->
      Fixtures.check_valid g e;
      Alcotest.check Fixtures.float_eq "exact finds one-copy optimum" 50.0
        (Storage_graph.storage_cost e)
  | None -> Alcotest.fail "exact zero-delta"

let test_parallel_reveals () =
  (* two delta mechanisms for the same pair: a compact/slow one and a
     bulky/fast one (the paper's "multiple delta mechanisms") *)
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:100. ~phi:100.;
  Aux_graph.add_materialization g ~version:2 ~delta:100. ~phi:100.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:5. ~phi:60.;
  (* compact, slow *)
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:40. ~phi:10.;
  (* bulky, fast *)
  let mca = Fixtures.ok (Mca.solve g) in
  Alcotest.check Fixtures.float_eq "mca picks compact" 105.0
    (Storage_graph.storage_cost mca);
  let spt = Fixtures.ok (Spt.solve g) in
  Alcotest.check Fixtures.float_eq "spt picks materialization" 100.0
    (Storage_graph.recreation_cost spt 2);
  (* under theta between the two, MP must use the fast delta *)
  match Mp.solve g ~theta:115.0 with
  | { Mp.tree = Some sg; _ } ->
      Alcotest.(check int) "delta stored" 1 (Storage_graph.parent sg 2);
      Alcotest.(check bool) "fast variant chosen" true
        ((Storage_graph.edge_weight sg 2).Aux_graph.phi <= 10.0)
  | _ -> Alcotest.fail "mp parallel"

let test_deep_chain_no_overflow () =
  (* 30k-deep chain: iterative traversals must not blow the stack *)
  let n = 30_000 in
  let g = Aux_graph.create ~n_versions:n in
  for v = 1 to n do
    Aux_graph.add_materialization g ~version:v ~delta:1000. ~phi:1000.
  done;
  for v = 2 to n do
    Aux_graph.add_delta g ~src:(v - 1) ~dst:v ~delta:1. ~phi:1.
  done;
  let sg = Fixtures.ok (Mca.solve g) in
  Alcotest.(check int) "depth" (n - 1) (Storage_graph.depth sg n);
  Alcotest.check Fixtures.float_eq "chain recreation"
    (1000.0 +. float_of_int (n - 1))
    (Storage_graph.recreation_cost sg n);
  (* LMG on the deep chain (tight budget: a few materializations) *)
  let spt = Fixtures.ok (Spt.solve g) in
  let lmg =
    Lmg.solve g ~base:sg ~spt ~budget:(Storage_graph.storage_cost sg +. 5000.)
      ()
  in
  Alcotest.(check bool) "lmg improved the chain" true
    (Storage_graph.sum_recreation lmg < Storage_graph.sum_recreation sg)

let test_mp_theta_zero () =
  let g = Fixtures.figure1 () in
  match Mp.solve g ~theta:0.0 with
  | { Mp.tree = None; infeasible } ->
      Alcotest.(check int) "nothing fits" 5 (List.length infeasible)
  | _ -> Alcotest.fail "theta 0 must be infeasible"

let test_lmg_infinite_budget_idempotent () =
  let rng = Prng.create ~seed:271 in
  let g = Fixtures.random_graph ~n_min:6 ~n_max:12 rng in
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  let spt = Fixtures.ok (Spt.solve g) in
  let a = Lmg.solve g ~base ~spt ~budget:infinity () in
  let b = Lmg.solve g ~base ~spt ~budget:infinity () in
  Alcotest.(check (list (pair int int))) "deterministic"
    (Storage_graph.to_parents a) (Storage_graph.to_parents b)

let test_gith_window_one () =
  (* window 1 still produces a valid plan *)
  let rng = Prng.create ~seed:277 in
  let g = Fixtures.random_graph ~n_min:10 ~n_max:20 rng in
  let sg = Fixtures.ok (Gith.solve g ~window:1 ~max_depth:3) in
  Fixtures.check_valid g sg;
  for v = 1 to Aux_graph.n_versions g do
    Alcotest.(check bool) "depth bound" true (Storage_graph.depth sg v <= 3)
  done

let test_hop_cost_on_zero_deltas () =
  let g = zero_delta_graph () in
  let sg = Fixtures.ok (Hop_cost.solve_bounded_depth g ~max_depth:1) in
  Fixtures.check_valid g sg;
  Alcotest.(check bool) "depth bound" true (Hop_cost.max_depth sg <= 1)

let test_huge_costs () =
  (* near-max-float costs must not overflow comparisons *)
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:1e300 ~phi:1e300;
  Aux_graph.add_materialization g ~version:2 ~delta:1e300 ~phi:1e300;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:1e299 ~phi:1e299;
  let sg = Fixtures.ok (Mca.solve g) in
  Alcotest.(check bool) "finite storage" true
    (Float.is_finite (Storage_graph.storage_cost sg));
  Alcotest.(check int) "delta chosen" 1 (Storage_graph.parent sg 2)

let suite =
  [
    Alcotest.test_case "single version" `Quick test_single_version;
    Alcotest.test_case "zero versions" `Quick test_zero_version_graph;
    Alcotest.test_case "zero-cost deltas" `Quick test_zero_cost_deltas;
    Alcotest.test_case "parallel reveals" `Quick test_parallel_reveals;
    Alcotest.test_case "deep chain (30k)" `Slow test_deep_chain_no_overflow;
    Alcotest.test_case "mp theta 0" `Quick test_mp_theta_zero;
    Alcotest.test_case "lmg deterministic" `Quick
      test_lmg_infinite_budget_idempotent;
    Alcotest.test_case "gith window 1" `Quick test_gith_window_one;
    Alcotest.test_case "hop cost on zero deltas" `Quick
      test_hop_cost_on_zero_deltas;
    Alcotest.test_case "huge costs" `Quick test_huge_costs;
  ]
