module Digraph = Versioning_graph.Digraph

let mk_graph () =
  let g = Digraph.create ~n:5 in
  Digraph.add_edge g ~src:0 ~dst:1 "a";
  Digraph.add_edge g ~src:0 ~dst:2 "b";
  Digraph.add_edge g ~src:1 ~dst:3 "c";
  Digraph.add_edge g ~src:2 ~dst:3 "d";
  Digraph.add_edge g ~src:3 ~dst:4 "e";
  g

let test_basic () =
  let g = mk_graph () in
  Alcotest.(check int) "vertices" 5 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 5 (Digraph.n_edges g);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 2 (Digraph.in_degree g 3);
  let outs = List.map (fun (e : _ Digraph.edge) -> e.dst) (Digraph.out_edges g 0) in
  Alcotest.(check (list int)) "out edges in insertion order" [ 1; 2 ] outs;
  let ins = List.map (fun (e : _ Digraph.edge) -> e.src) (Digraph.in_edges g 3) in
  Alcotest.(check (list int)) "in edges" [ 1; 2 ] ins

let test_validation () =
  let g = Digraph.create ~n:3 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.add_edge: self-loop") (fun () ->
      Digraph.add_edge g ~src:1 ~dst:1 ());
  Alcotest.check_raises "range"
    (Invalid_argument "Digraph.add_edge: vertex 3 out of range") (fun () ->
      Digraph.add_edge g ~src:3 ~dst:0 ())

let test_parallel_edges () =
  let g = Digraph.create ~n:2 in
  Digraph.add_edge g ~src:0 ~dst:1 "x";
  Digraph.add_edge g ~src:0 ~dst:1 "y";
  Alcotest.(check int) "both kept" 2 (Digraph.n_edges g);
  (* find_edge returns the first inserted *)
  match Digraph.find_edge g ~src:0 ~dst:1 with
  | Some e -> Alcotest.(check string) "first wins" "x" e.label
  | None -> Alcotest.fail "edge not found"

let test_iter_fold () =
  let g = mk_graph () in
  let n = ref 0 in
  Digraph.iter_edges g (fun _ -> incr n);
  Alcotest.(check int) "iter_edges visits all" 5 !n;
  let labels =
    Digraph.fold_edges g ~init:[] ~f:(fun acc e -> e.Digraph.label :: acc)
  in
  Alcotest.(check int) "fold over all" 5 (List.length labels);
  Alcotest.(check int) "edges list" 5 (List.length (Digraph.edges g))

let test_map_reverse () =
  let g = mk_graph () in
  let g2 = Digraph.map g ~f:(fun e -> String.uppercase_ascii e.Digraph.label) in
  (match Digraph.find_edge g2 ~src:3 ~dst:4 with
  | Some e -> Alcotest.(check string) "mapped" "E" e.label
  | None -> Alcotest.fail "edge lost by map");
  let r = Digraph.reverse g in
  Alcotest.(check int) "reverse keeps count" 5 (Digraph.n_edges r);
  Alcotest.(check bool) "reversed edge" true
    (Digraph.find_edge r ~src:4 ~dst:3 <> None);
  Alcotest.(check bool) "original direction gone" true
    (Digraph.find_edge r ~src:3 ~dst:4 = None)

let test_topological () =
  let g = mk_graph () in
  (match Digraph.topological_order g with
  | None -> Alcotest.fail "DAG misclassified"
  | Some order ->
      Alcotest.(check int) "complete order" 5 (List.length order);
      let pos = Hashtbl.create 8 in
      List.iteri (fun i v -> Hashtbl.replace pos v i) order;
      Digraph.iter_edges g (fun e ->
          Alcotest.(check bool) "edge respects order" true
            (Hashtbl.find pos e.src < Hashtbl.find pos e.dst)));
  Alcotest.(check bool) "is_dag" true (Digraph.is_dag g);
  (* introduce a cycle *)
  Digraph.add_edge g ~src:4 ~dst:0 "back";
  Alcotest.(check bool) "cycle detected" false (Digraph.is_dag g);
  Alcotest.(check bool) "no topo order" true (Digraph.topological_order g = None)

let test_reachability () =
  let g = mk_graph () in
  let from0 = Digraph.reachable_from g 0 in
  Alcotest.(check (array bool)) "everything reachable from 0"
    [| true; true; true; true; true |]
    from0;
  let from3 = Digraph.reachable_from g 3 in
  Alcotest.(check (array bool)) "only 3 and 4 from 3"
    [| false; false; false; true; true |]
    from3;
  let to4 = Digraph.transpose_reachable g 4 in
  Alcotest.(check (array bool)) "all lead to 4"
    [| true; true; true; true; true |]
    to4;
  let to1 = Digraph.transpose_reachable g 1 in
  Alcotest.(check (array bool)) "only 0 leads to 1"
    [| true; true; false; false; false |]
    to1

let test_empty_graph () =
  let g = Digraph.create ~n:0 in
  Alcotest.(check int) "no vertices" 0 (Digraph.n_vertices g);
  Alcotest.(check bool) "vacuous DAG" true (Digraph.is_dag g)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
    Alcotest.test_case "iter / fold" `Quick test_iter_fold;
    Alcotest.test_case "map / reverse" `Quick test_map_reverse;
    Alcotest.test_case "topological order" `Quick test_topological;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
  ]
