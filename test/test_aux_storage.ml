open Versioning_core
module Prng = Versioning_util.Prng

(* ---- Aux_graph ---- *)

let test_construction () =
  let g = Fixtures.figure1 () in
  Alcotest.(check int) "versions" 5 (Aux_graph.n_versions g);
  Alcotest.(check bool) "all materializations" true
    (Aux_graph.has_all_materializations g);
  (match Aux_graph.materialization g 3 with
  | Some w -> Alcotest.(check (float 0.)) "diag 3" 9700.0 w.Aux_graph.delta
  | None -> Alcotest.fail "missing diagonal");
  (match Aux_graph.delta g ~src:1 ~dst:3 with
  | Some w ->
      Alcotest.(check (float 0.)) "delta" 1000.0 w.Aux_graph.delta;
      Alcotest.(check (float 0.)) "phi" 3000.0 w.Aux_graph.phi
  | None -> Alcotest.fail "missing delta");
  Alcotest.(check bool) "unrevealed is None" true
    (Aux_graph.delta g ~src:4 ~dst:1 = None)

let test_validation () =
  let g = Aux_graph.create ~n_versions:2 in
  Alcotest.(check bool) "incomplete materializations" false
    (Aux_graph.has_all_materializations g);
  Alcotest.check_raises "version out of range"
    (Invalid_argument "Aux_graph.add_materialization: version 3 out of range")
    (fun () -> Aux_graph.add_materialization g ~version:3 ~delta:1. ~phi:1.);
  Aux_graph.add_materialization g ~version:1 ~delta:5. ~phi:5.;
  Alcotest.check_raises "double reveal"
    (Invalid_argument
       "Aux_graph.add_materialization: version 1 already revealed") (fun () ->
      Aux_graph.add_materialization g ~version:1 ~delta:5. ~phi:5.);
  Alcotest.check_raises "self delta" (Invalid_argument "Aux_graph.add_delta: src = dst")
    (fun () -> Aux_graph.add_delta g ~src:1 ~dst:1 ~delta:1. ~phi:1.);
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Aux_graph.add_delta: negative cost") (fun () ->
      Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:(-1.) ~phi:1.)

let test_scenarios () =
  let g = Fixtures.figure1 () in
  Alcotest.(check bool) "figure1 is directed" false (Aux_graph.is_symmetric g);
  Alcotest.(check bool) "figure1 is not proportional" false
    (Aux_graph.is_proportional g);
  (match Aux_graph.scenario g with
  | `Directed_indep -> ()
  | _ -> Alcotest.fail "expected Directed_indep");
  let sym = Aux_graph.symmetrize g in
  Alcotest.(check bool) "symmetrize symmetric" true (Aux_graph.is_symmetric sym);
  (* original untouched *)
  Alcotest.(check bool) "input unchanged" false (Aux_graph.is_symmetric g);
  (* symmetrize is idempotent on edge count *)
  let sym2 = Aux_graph.symmetrize sym in
  Alcotest.(check int) "idempotent"
    (Versioning_graph.Digraph.n_edges (Aux_graph.graph sym))
    (Versioning_graph.Digraph.n_edges (Aux_graph.graph sym2))

let test_proportional_detection () =
  let g = Aux_graph.create ~n_versions:2 in
  Aux_graph.add_materialization g ~version:1 ~delta:5. ~phi:5.;
  Aux_graph.add_materialization g ~version:2 ~delta:6. ~phi:6.;
  Aux_graph.add_delta g ~src:1 ~dst:2 ~delta:2. ~phi:2.;
  Alcotest.(check bool) "proportional" true (Aux_graph.is_proportional g);
  match Aux_graph.scenario g with
  | `Directed_prop -> ()
  | _ -> Alcotest.fail "expected Directed_prop"

(* ---- Storage_graph ---- *)

let test_figure1_solutions () =
  let g = Fixtures.figure1 () in
  (* Figure 1(iii): only V1 materialized; the paper computes
     C = 11450 and R5 = 13550. *)
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  Alcotest.check Fixtures.float_eq "C (paper: 11450)" 11450.0
    (Storage_graph.storage_cost sg);
  Alcotest.check Fixtures.float_eq "R5 (paper: 13550)" 13550.0
    (Storage_graph.recreation_cost sg 5);
  Alcotest.check Fixtures.float_eq "R1 = full recreation" 10000.0
    (Storage_graph.recreation_cost sg 1);
  Alcotest.(check (list int)) "materialized" [ 1 ]
    (Storage_graph.materialized_versions sg);
  Alcotest.(check int) "depth of V5" 2 (Storage_graph.depth sg 5);
  Alcotest.(check int) "depth of V1" 0 (Storage_graph.depth sg 1);
  Alcotest.(check (list int)) "children of V1" [ 2; 3 ]
    (Storage_graph.children sg 1);
  (* Figure 1(ii): everything materialized, C = 49720. *)
  let all =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ])
  in
  Alcotest.check Fixtures.float_eq "C all materialized (paper: 49720)" 49720.0
    (Storage_graph.storage_cost all);
  Alcotest.check Fixtures.float_eq "sumR = C here" 49720.0
    (Storage_graph.sum_recreation all)

let test_invalid_solutions () =
  let g = Fixtures.figure1 () in
  let expect_err parents =
    Fixtures.err (Storage_graph.of_parents g ~parents)
  in
  (* missing version *)
  Alcotest.(check bool) "missing version" true
    (String.length (expect_err [ (0, 1); (1, 2); (1, 3); (2, 4) ]) > 0);
  (* two parents *)
  Alcotest.(check bool) "duplicate" true
    (String.length
       (expect_err [ (0, 1); (1, 2); (3, 2); (1, 3); (2, 4); (3, 5) ])
    > 0);
  (* cycle: 4 <- 5 <- 4 is impossible here, build 2 <- 3 <- 2 style *)
  let e = expect_err [ (0, 1); (3, 2); (2, 3); (2, 4); (3, 5) ] in
  Alcotest.(check bool) "cycle reported" true
    (String.length e > 0);
  (* unrevealed edge *)
  let e = expect_err [ (0, 1); (1, 2); (1, 3); (1, 4); (3, 5) ] in
  Alcotest.(check bool) "unrevealed edge rejected" true
    (String.length e > 0)

let test_weighted_recreation () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  let freqs = [| 0.; 0.; 1.; 0.; 0.; 2. |] in
  (* R2 = 10200, R5 = 13550 *)
  Alcotest.check Fixtures.float_eq "weighted"
    ((1. *. 10200.) +. (2. *. 13550.))
    (Storage_graph.weighted_recreation sg ~freqs);
  Alcotest.check_raises "short freqs rejected"
    (Invalid_argument "Storage_graph.weighted_recreation: freqs too short")
    (fun () -> ignore (Storage_graph.weighted_recreation sg ~freqs:[| 0. |]))

let test_to_parents_roundtrip () =
  let g = Fixtures.figure1 () in
  let parents = [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ] in
  let sg = Fixtures.ok (Storage_graph.of_parents g ~parents) in
  Alcotest.(check (list (pair int int))) "roundtrip" parents
    (Storage_graph.to_parents sg)

let test_random_consistency () =
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 50 do
    let g = Fixtures.random_graph ~n_min:3 ~n_max:10 rng in
    match Mca.solve g with
    | Ok sg -> Fixtures.check_valid g sg
    | Error _ -> ()
  done

let suite =
  [
    Alcotest.test_case "aux construction" `Quick test_construction;
    Alcotest.test_case "aux validation" `Quick test_validation;
    Alcotest.test_case "scenarios" `Quick test_scenarios;
    Alcotest.test_case "proportional detection" `Quick
      test_proportional_detection;
    Alcotest.test_case "figure 1 solutions" `Quick test_figure1_solutions;
    Alcotest.test_case "invalid solutions" `Quick test_invalid_solutions;
    Alcotest.test_case "weighted recreation" `Quick test_weighted_recreation;
    Alcotest.test_case "to_parents roundtrip" `Quick test_to_parents_roundtrip;
    Alcotest.test_case "random consistency" `Quick test_random_consistency;
  ]
