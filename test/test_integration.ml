(* End-to-end integration: generated workloads flow through diffing,
   optimization, and the store, and the cross-algorithm invariants of
   the paper hold on real (generated) data. *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng
module Csv = Versioning_delta.Csv

let small_dataset seed =
  let rng = Prng.create ~seed in
  let h = History_gen.generate (History_gen.flat_params ~n_commits:50) rng in
  Dataset_gen.generate h
    {
      Dataset_gen.default_params with
      initial_rows = 50;
      initial_cols = 5;
      max_hops = 3;
      reveal_cap = 10;
    }
    rng

let test_pipeline_invariants () =
  (* On generated data: SPT <= every algorithm per version; MCA <=
     every algorithm on storage; bounds of every heuristic hold. *)
  for seed = 1 to 5 do
    let d = small_dataset seed in
    let g = d.Dataset_gen.aux in
    let n = Aux_graph.n_versions g in
    let base = Fixtures.ok (Solver.min_storage_tree g) in
    let spt = Fixtures.ok (Spt.solve g) in
    let dist = Spt.distances g in
    let cmin = Storage_graph.storage_cost base in
    let solutions =
      List.filter_map
        (fun (name, r) ->
          match r with Ok sg -> Some (name, sg) | Error _ -> None)
        [
          ("mca", Ok base);
          ("spt", Ok spt);
          ("lmg", Ok (Lmg.solve g ~base ~spt ~budget:(1.5 *. cmin) ()));
          ("last", Ok (Last.solve g ~base ~alpha:2.0));
          ("gith", Gith.solve g ~window:10 ~max_depth:20);
          ( "mp",
            match Mp.solve g ~theta:(3.0 *. Array.fold_left Float.max 0. dist) with
            | { Mp.tree = Some sg; _ } -> Ok sg
            | { Mp.tree = None; _ } -> Error "infeasible" );
        ]
    in
    List.iter
      (fun (name, sg) ->
        Fixtures.check_valid g sg;
        Alcotest.(check bool) (name ^ " storage >= MCA") true
          (Storage_graph.storage_cost sg >= cmin -. 1e-6);
        for v = 1 to n do
          Alcotest.(check bool) (name ^ " recreation >= SPT") true
            (Storage_graph.recreation_cost sg v >= dist.(v) -. 1e-6)
        done)
      solutions
  done

let test_store_roundtrip_generated_history () =
  (* Import every generated version into the store, re-plan with each
     strategy, and confirm byte-exact retrieval throughout. *)
  let d = small_dataset 42 in
  let n = Array.length d.Dataset_gen.contents - 1 in
  let dir = Filename.temp_file "dsvc_integration" "" in
  Sys.remove dir;
  let repo = Fixtures.ok (Versioning_store.Repo.init ~path:dir) in
  let entries =
    List.init n (fun i ->
        let v = i + 1 in
        let parents =
          match History_gen.first_parent d.Dataset_gen.history v with
          | None -> []
          | Some p -> [ p ]
        in
        (Printf.sprintf "version %d" v, parents, d.Dataset_gen.contents.(v)))
  in
  let ids = Fixtures.ok (Versioning_store.Repo.import_versions repo entries) in
  Alcotest.(check int) "all imported" n (List.length ids);
  let check_all () =
    for v = 1 to n do
      Alcotest.(check string)
        (Printf.sprintf "content %d" v)
        d.Dataset_gen.contents.(v)
        (Fixtures.ok (Versioning_store.Repo.checkout repo v))
    done
  in
  check_all ();
  List.iter
    (fun strategy ->
      let _ = Fixtures.ok (Versioning_store.Repo.optimize repo strategy) in
      check_all ();
      match Versioning_store.Repo.verify repo with
      | Ok () -> ()
      | Error ps ->
          Alcotest.failf "verify failed after optimize: %s"
            (String.concat "; " ps))
    [
      Versioning_store.Repo.Min_storage;
      Versioning_store.Repo.Budgeted_sum 1.3;
      Versioning_store.Repo.Git_window (8, 20);
    ]

let test_contents_parse_as_tables () =
  let d = small_dataset 7 in
  Array.iteri
    (fun v c ->
      if v >= 1 then begin
        let t = Csv.parse c in
        Alcotest.(check bool) "rectangular" true (Csv.is_rect t);
        Alcotest.(check bool) "has header + rows" true (Csv.n_rows t >= 1)
      end)
    d.Dataset_gen.contents

let test_dedup_vs_delta_storage () =
  (* The related-work comparison (§6): chunk-level dedup vs the
     paper's delta plans on the same version collection. Delta chains
     capture fine-grained redundancy that fixed chunks miss, so MCA
     should never lose; dedup must still beat storing everything. *)
  let d = small_dataset 11 in
  let n = Array.length d.Dataset_gen.contents - 1 in
  let raw_total = ref 0 in
  let store = Versioning_delta.Chunker.store_create () in
  let recipes =
    List.init n (fun i ->
        let c = d.Dataset_gen.contents.(i + 1) in
        raw_total := !raw_total + String.length c;
        Versioning_delta.Chunker.store_add store c)
  in
  (* every version rebuilds from its recipe *)
  List.iteri
    (fun i recipe ->
      Alcotest.(check string) "dedup rebuild"
        d.Dataset_gen.contents.(i + 1)
        (Result.get_ok (Versioning_delta.Chunker.store_get store recipe)))
    recipes;
  let dedup_bytes = Versioning_delta.Chunker.store_bytes store in
  let base = Fixtures.ok (Solver.min_storage_tree d.Dataset_gen.aux) in
  let mca_bytes = Storage_graph.storage_cost base in
  Alcotest.(check bool) "dedup beats raw" true (dedup_bytes < !raw_total);
  Alcotest.(check bool) "delta plan beats dedup" true
    (mca_bytes < float_of_int dedup_bytes)

let test_online_follows_history () =
  (* Feed the generated history to the online policy in commit order,
     revealing each version's parent delta - the DATAHUB arrival
     pattern. *)
  let d = small_dataset 13 in
  let g = d.Dataset_gen.aux in
  let n = Aux_graph.n_versions g in
  let t = Online.create (Online.Min_delta) in
  for v = 1 to n do
    let materialization =
      Option.get (Aux_graph.materialization g v)
    in
    let candidates =
      match History_gen.first_parent d.Dataset_gen.history v with
      | None -> []
      | Some p -> (
          match Aux_graph.delta g ~src:p ~dst:v with
          | Some w -> [ (p, w) ]
          | None -> [])
    in
    ignore (Result.get_ok (Online.add_version t ~materialization ~candidates))
  done;
  let sg = Online.to_storage_graph t in
  Alcotest.(check int) "all placed" n (Storage_graph.n_versions sg);
  (* online with parent-only candidates cannot beat offline MCA with
     the full reveal set *)
  let base = Fixtures.ok (Solver.min_storage_tree g) in
  Alcotest.(check bool) "online >= offline optimum" true
    (Online.storage_cost t >= Storage_graph.storage_cost base -. 1e-6)

let suite =
  [
    Alcotest.test_case "pipeline invariants" `Quick test_pipeline_invariants;
    Alcotest.test_case "store roundtrip on generated history" `Quick
      test_store_roundtrip_generated_history;
    Alcotest.test_case "contents parse as tables" `Quick
      test_contents_parse_as_tables;
    Alcotest.test_case "dedup vs delta storage" `Quick
      test_dedup_vs_delta_storage;
    Alcotest.test_case "online follows history" `Quick
      test_online_follows_history;
  ]
