module Xor = Versioning_delta.Xor_delta
module Compress = Versioning_delta.Compress
module Prng = Versioning_util.Prng

(* ---- XOR deltas ---- *)

let test_xor_symmetry () =
  let a = "hello world" and b = "hello brave new world" in
  let d = Xor.make a b in
  let d' = Xor.make b a in
  Alcotest.(check string) "payload order-independent" (Xor.payload d)
    (Xor.payload d');
  Alcotest.(check string) "recover b from a" b (Xor.recover d a);
  Alcotest.(check string) "recover a from b" a (Xor.recover d b)

let test_xor_equal_lengths () =
  let a = "abcd" and b = "wxyz" in
  let d = Xor.make a b in
  Alcotest.(check string) "recover b" b (Xor.recover d a);
  Alcotest.(check string) "recover a" a (Xor.recover d b)

let test_xor_identical () =
  let d = Xor.make "same" "same" in
  Alcotest.(check string) "self-inverse" "same" (Xor.recover d "same");
  (* payload should be all zeros: great for compression *)
  Alcotest.(check bool) "zero payload" true
    (String.for_all (fun c -> c = '\x00') (Xor.payload d))

let test_xor_length_mismatch () =
  let d = Xor.make "abc" "defgh" in
  Alcotest.(check bool) "wrong length rejected" true
    (match Xor.recover d "xx" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_xor_codec () =
  let a = "line1\nline2" and b = "line1\nLINE2 plus" in
  let d = Xor.make a b in
  let d' = Xor.decode (Xor.encode d) in
  Alcotest.(check string) "decoded recovers" b (Xor.recover d' a);
  Alcotest.(check int) "size = encode length" (String.length (Xor.encode d))
    (Xor.size d);
  Alcotest.(check bool) "corrupt rejected" true
    (match Xor.decode "zzz" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_xor_empty () =
  let d = Xor.make "" "xyz" in
  Alcotest.(check string) "from empty" "xyz" (Xor.recover d "");
  Alcotest.(check string) "to empty" "" (Xor.recover d "xyz")

(* ---- compression ---- *)

let arb_bytes =
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(
      map
        (fun l -> String.concat "" (List.map (String.make 1) l))
        (list_size (int_bound 400) (map Char.chr (int_bound 255))))

let qcheck_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrip" ~count:500 arb_bytes (fun s ->
      Compress.unlz77 (Compress.lz77 s) = s)

(* Repetition-heavy inputs drive the matcher through long [match_len]
   runs and overlapping matches — the guard for its unchecked-access
   fast path. Built from repeated blocks, byte runs, and noise. *)
let arb_repetitive =
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(
      let block =
        oneof
          [
            (* a small block tiled many times *)
            map2
              (fun b reps -> String.concat "" (List.init reps (fun _ -> b)))
              (string_size ~gen:printable (int_range 1 12))
              (int_range 2 80);
            (* a single-byte run *)
            map2
              (fun c len -> String.make len c)
              (map Char.chr (int_bound 255))
              (int_range 1 300);
            (* incompressible filler between repeats *)
            string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 40);
          ]
      in
      map (String.concat "") (list_size (int_bound 8) block))

let qcheck_lz77_repetitive_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrip (repetitive)" ~count:500
    arb_repetitive (fun s -> Compress.unlz77 (Compress.lz77 s) = s)

let qcheck_rle_roundtrip =
  QCheck.Test.make ~name:"rle roundtrip" ~count:500 arb_bytes (fun s ->
      Compress.un_rle_zeros (Compress.rle_zeros s) = s)

(* The unchecked scan in [Compress.match_len] against a bounds-checked
   reference, driven over repetition-heavy inputs (long common runs
   that push right up to the end of the string) with adversarial
   index pairs: j near i, i near the end, runs ending exactly at n. *)
let match_len_reference input ~i ~j =
  let n = String.length input in
  let len = ref 0 in
  while i + !len < n && input.[j + !len] = input.[i + !len] do
    incr len
  done;
  !len

let qcheck_match_len_agrees =
  let arb =
    QCheck.make
      ~print:(fun (s, i, j) -> Printf.sprintf "(%S, i=%d, j=%d)" s i j)
      QCheck.Gen.(
        (* Non-empty repetitive string, then 0 <= j < i <= n. *)
        let gen_s =
          map
            (fun s -> if s = "" then "x" else s)
            (graft_corners
               (map (fun s -> s ^ s ^ s) (string_size (int_range 1 60)))
               [ "aaaa"; "abab"; "\x00\x00\x00\x00" ] ())
        in
        gen_s >>= fun s ->
        let n = String.length s in
        int_range 1 n >>= fun i ->
        int_range 0 (i - 1) >>= fun j -> return (s, i, j))
  in
  QCheck.Test.make ~name:"match_len agrees with checked reference"
    ~count:2000 arb (fun (s, i, j) ->
      Compress.match_len s ~i ~j = match_len_reference s ~i ~j)

let test_match_len_bounds () =
  (* run ending exactly at the end of the string *)
  Alcotest.(check int) "run to end" 3 (Compress.match_len "abcabc" ~i:3 ~j:0);
  (* overlapping self-match: j + len crosses i *)
  Alcotest.(check int) "overlap" 5 (Compress.match_len "aaaaaa" ~i:1 ~j:0);
  (* i = n is legal and matches nothing *)
  Alcotest.(check int) "i at end" 0 (Compress.match_len "ab" ~i:2 ~j:1);
  (* precondition violations rejected, not read out of bounds *)
  List.iter
    (fun (i, j) ->
      match Compress.match_len "abc" ~i ~j with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "expected Invalid_argument, got %d" v)
    [ (0, 0); (1, 1); (2, 3); (4, 0); (1, -1) ]

let test_lz77_compresses_repetition () =
  let s = String.concat "" (List.init 200 (fun _ -> "abcdefgh")) in
  let c = Compress.lz77 s in
  Alcotest.(check bool) "10x smaller" true
    (String.length c * 10 < String.length s);
  Alcotest.(check string) "roundtrip" s (Compress.unlz77 c)

let test_lz77_overlapping_match () =
  (* runs encode as matches with dist < len *)
  let s = String.make 5000 'x' in
  let c = Compress.lz77 s in
  Alcotest.(check bool) "tiny" true (String.length c < 32);
  Alcotest.(check string) "roundtrip" s (Compress.unlz77 c)

let test_lz77_incompressible_bounded () =
  let rng = Prng.create ~seed:9 in
  let s = String.init 1000 (fun _ -> Char.chr (Prng.int rng 256)) in
  let c = Compress.lz77 s in
  Alcotest.(check bool) "bounded expansion" true
    (String.length c <= String.length s + 32);
  Alcotest.(check string) "roundtrip" s (Compress.unlz77 c)

let test_rle_zero_heavy () =
  let s = String.make 4096 '\x00' ^ "tail" in
  let c = Compress.rle_zeros s in
  Alcotest.(check bool) "tiny" true (String.length c < 16);
  Alcotest.(check string) "roundtrip" s (Compress.un_rle_zeros c)

let test_corrupt_streams () =
  Alcotest.(check bool) "unlz77 rejects junk tag" true
    (match Compress.unlz77 "\x07garbage" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unlz77 rejects truncation" true
    (match Compress.unlz77 "\x00\x10ab" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "un_rle rejects junk" true
    (match Compress.un_rle_zeros "\x09" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5
    (Compress.ratio ~original:100 ~compressed:50);
  Alcotest.(check (float 1e-9)) "empty original" 1.0
    (Compress.ratio ~original:0 ~compressed:0)

let test_xor_plus_rle_pipeline () =
  (* the intended pipeline: xor two similar versions, rle the zeros *)
  let a = String.concat "\n" (List.init 100 (fun i -> Printf.sprintf "row %d" i)) in
  let b = a ^ "!" in
  let d = Xor.make a b in
  let compressed = Compress.rle_zeros (Xor.encode d) in
  Alcotest.(check bool) "much smaller than raw xor" true
    (String.length compressed * 4 < Xor.size d);
  let d' = Xor.decode (Compress.un_rle_zeros compressed) in
  Alcotest.(check string) "pipeline recovers" b (Xor.recover d' a)

let suite =
  [
    Alcotest.test_case "xor symmetry" `Quick test_xor_symmetry;
    Alcotest.test_case "xor equal lengths" `Quick test_xor_equal_lengths;
    Alcotest.test_case "xor identical inputs" `Quick test_xor_identical;
    Alcotest.test_case "xor length mismatch" `Quick test_xor_length_mismatch;
    Alcotest.test_case "xor codec" `Quick test_xor_codec;
    Alcotest.test_case "xor empty side" `Quick test_xor_empty;
    QCheck_alcotest.to_alcotest qcheck_lz77_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_lz77_repetitive_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_rle_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_match_len_agrees;
    Alcotest.test_case "match_len bounds" `Quick test_match_len_bounds;
    Alcotest.test_case "lz77 compresses repetition" `Quick
      test_lz77_compresses_repetition;
    Alcotest.test_case "lz77 overlapping matches" `Quick
      test_lz77_overlapping_match;
    Alcotest.test_case "lz77 bounded expansion" `Quick
      test_lz77_incompressible_bounded;
    Alcotest.test_case "rle zero-heavy" `Quick test_rle_zero_heavy;
    Alcotest.test_case "corrupt streams rejected" `Quick test_corrupt_streams;
    Alcotest.test_case "ratio" `Quick test_ratio;
    Alcotest.test_case "xor+rle pipeline" `Quick test_xor_plus_rle_pipeline;
  ]
