(* The cluster health observatory (DESIGN.md §16): the tiered
   time-series ring (aggregation, tier selection, bounded retention,
   persistence roundtrip), the alert state machine (threshold holds,
   burn rates, suppression), the sampler's derived SLIs over a private
   registry, the env_float knob parser, and the reactor timer that
   drives the whole thing. Every module under test takes ~now, so the
   histories here are replayed on a hand-cranked clock. *)

module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Timeseries = Versioning_obs.Timeseries
module Alerts = Versioning_obs.Alerts
module Sampler = Versioning_obs.Sampler
module Evloop = Versioning_util.Evloop

let ts ?(step = 1.0) ?(cap = 360) ?max_series () =
  Timeseries.create ~step ~cap ?max_series ()

(* ---- recording and aggregation ---- *)

let test_record_aggregates () =
  let t = ts () in
  Alcotest.(check bool) "fresh ring is empty" true (Timeseries.is_empty t);
  (* three observations into the same 1 s bucket *)
  Timeseries.record t ~now:100.1 ~metric:"m" 4.0;
  Timeseries.record t ~now:100.5 ~metric:"m" 2.0;
  Timeseries.record t ~now:100.9 ~metric:"m" 6.0;
  (match Timeseries.query t ~metric:"m" ~now:101.0 () with
  | [ s ] ->
      Alcotest.(check int) "count" 3 s.Timeseries.s_count;
      Alcotest.(check (float 1e-9)) "avg" 4.0 s.Timeseries.s_avg;
      Alcotest.(check (float 1e-9)) "min" 2.0 s.Timeseries.s_min;
      Alcotest.(check (float 1e-9)) "max" 6.0 s.Timeseries.s_max;
      Alcotest.(check (float 1e-9)) "last" 6.0 s.Timeseries.s_last;
      Alcotest.(check (float 1e-9)) "bucket start" 100.0 s.Timeseries.s_time
  | l -> Alcotest.failf "expected one bucket, got %d" (List.length l));
  Alcotest.(check (option (float 1e-9))) "latest" (Some 6.0)
    (Timeseries.latest t ~metric:"m");
  Alcotest.(check (option (float 1e-9))) "unknown metric has no latest" None
    (Timeseries.latest t ~metric:"nope");
  Alcotest.(check (list string)) "series listing sorted" [ "m" ]
    (Timeseries.metrics t);
  (* NaN observations are dropped, not folded in *)
  Timeseries.record t ~now:100.95 ~metric:"m" Float.nan;
  match Timeseries.query t ~metric:"m" ~now:101.0 () with
  | [ s ] -> Alcotest.(check int) "NaN dropped" 3 s.Timeseries.s_count
  | _ -> Alcotest.fail "bucket vanished"

let test_tier_selection_and_trim () =
  let t = ts ~cap:10 () in
  (* 500 one-per-second observations: the fine tier (cap 10) keeps the
     last 10 s, the 10x tier the last 100 s, the 100x tier all 500 *)
  for i = 0 to 499 do
    Timeseries.record t ~now:(float_of_int i +. 0.5) ~metric:"m" 1.0
  done;
  let now = 500.0 in
  let fine = Timeseries.query t ~metric:"m" ~since:(now -. 8.0) ~now () in
  Alcotest.(check int) "short span from the fine tier" 8 (List.length fine);
  List.iter
    (fun s -> Alcotest.(check int) "fine buckets hold 1 obs" 1 s.Timeseries.s_count)
    fine;
  let mid = Timeseries.query t ~metric:"m" ~since:(now -. 80.0) ~now () in
  Alcotest.(check int) "medium span falls back to the 10x tier" 8
    (List.length mid);
  List.iter
    (fun s ->
      Alcotest.(check int) "10x buckets aggregate 10 obs" 10
        s.Timeseries.s_count)
    mid;
  let coarse = Timeseries.query t ~metric:"m" ~since:(now -. 450.0) ~now () in
  Alcotest.(check bool) "long span served by the 100x tier" true
    (List.length coarse >= 4
    && List.for_all (fun s -> s.Timeseries.s_count = 100) coarse);
  (* retention is bounded: no tier can return more than cap buckets *)
  let all = Timeseries.query t ~metric:"m" ~since:(-1e9) ~now () in
  Alcotest.(check bool) "rings bounded by cap" true (List.length all <= 10);
  (* samples come oldest-first and strictly increasing *)
  let times = List.map (fun s -> s.Timeseries.s_time) all in
  Alcotest.(check bool) "oldest first" true
    (List.sort compare times = times)

let test_max_series_cap () =
  let t = ts ~max_series:3 () in
  for i = 0 to 9 do
    Timeseries.record t ~now:1.0 ~metric:(Printf.sprintf "m%d" i) 1.0
  done;
  Alcotest.(check int) "cardinality capped" 3 (Timeseries.series_count t);
  Alcotest.(check (list Alcotest.string)) "first names won" [ "m0"; "m1"; "m2" ]
    (Timeseries.metrics t)

let test_windowed_avg () =
  let t = ts () in
  Timeseries.record t ~now:10.5 ~metric:"m" 1.0;
  Timeseries.record t ~now:11.5 ~metric:"m" 2.0;
  Timeseries.record t ~now:12.5 ~metric:"m" 2.0;
  Timeseries.record t ~now:12.7 ~metric:"m" 4.0;
  (* window covers the last two buckets: (2+4+2)/3 over 3 obs *)
  Alcotest.(check (option (float 1e-9))) "observation-weighted mean"
    (Some (8.0 /. 3.0))
    (Timeseries.avg t ~metric:"m" ~window:2.0 ~now:13.0);
  Alcotest.(check (option (float 1e-9))) "empty window" None
    (Timeseries.avg t ~metric:"m" ~window:2.0 ~now:100.0);
  Alcotest.(check (option (float 1e-9))) "unknown series" None
    (Timeseries.avg t ~metric:"zzz" ~window:2.0 ~now:13.0)

(* ---- persistence ---- *)

let test_render_parse_roundtrip () =
  let t = ts ~step:5.0 () in
  Timeseries.record t ~now:100.0 ~metric:"plain" 0.1;
  Timeseries.record t ~now:105.0 ~metric:"plain" (-3.5);
  (* names with spaces and label syntax must survive the text form *)
  Timeseries.record t ~now:100.0 ~metric:{|odd name{peer="x y"}|} 1e-300;
  Timeseries.record t ~now:200.0 ~metric:"plain" infinity;
  let text = Timeseries.render t in
  let t' =
    match Timeseries.parse text with
    | Ok t' -> t'
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check bool) "roundtrip equal" true (Timeseries.equal t t');
  Alcotest.(check string) "render is deterministic" text
    (Timeseries.render t');
  Alcotest.(check bool) "trailer present" true
    (String.length text >= 4 && String.sub text (String.length text - 4) 4 = "end\n")

let test_parse_rejects_garbage () =
  let bad s =
    match Timeseries.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse accepted %S" s
  in
  bad "";
  bad "not a timeseries\n";
  (* a torn write: valid prefix, missing [end] trailer *)
  let t = ts () in
  Timeseries.record t ~now:1.0 ~metric:"m" 1.0;
  let text = Timeseries.render t in
  bad (String.sub text 0 (String.length text - 4));
  bad (text ^ "trailing junk\n")

let qcheck_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 60)
        (triple (int_range 0 2000) (int_range 0 4) (float_range (-1e6) 1e6)))
  in
  QCheck.Test.make ~count:200 ~name:"timeseries render/parse roundtrip"
    (QCheck.make gen) (fun obs ->
      let t = ts ~step:2.0 ~cap:20 () in
      List.iter
        (fun (tick, series, v) ->
          Timeseries.record t
            ~now:(float_of_int tick /. 2.0)
            ~metric:(Printf.sprintf "series %d" series)
            v)
        obs;
      match Timeseries.parse (Timeseries.render t) with
      | Ok t' -> Timeseries.equal t t'
      | Error _ -> false)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Timeseries.sparkline []);
  let line = Timeseries.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
  (* each glyph is a 3-byte UTF-8 block element *)
  Alcotest.(check int) "one glyph per value" 12 (String.length line);
  Alcotest.(check string) "ramp ends at full block" "\xe2\x96\x88"
    (String.sub line 9 3);
  Alcotest.(check string) "ramp starts at the lowest block" "\xe2\x96\x81"
    (String.sub line 0 3);
  let flat = Timeseries.sparkline [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check string) "flat series renders mid-height"
    "\xe2\x96\x84\xe2\x96\x84\xe2\x96\x84" flat

(* ---- alert rules ---- *)

let threshold_rule =
  Alerts.Threshold
    { metric = "m"; cmp = Alerts.Gt; bound = 10.0; hold = 5.0; window = 0.0 }

let state_of alerts name =
  match
    List.find_opt (fun i -> i.Alerts.i_name = name) (Alerts.report alerts)
  with
  | Some i -> Alerts.state_name i.Alerts.i_state
  | None -> Alcotest.failf "rule %s missing from report" name

let test_threshold_state_machine () =
  let t = ts () in
  let a = Alerts.create ~rules:[ ("hot", threshold_rule) ] in
  Alcotest.(check (list string)) "rule registered" [ "hot" ]
    (Alerts.rule_names a);
  Alerts.eval a ~ts:t ~now:0.0;
  Alcotest.(check string) "no data, inactive" "inactive" (state_of a "hot");
  (* bad values: pending until the hold elapses, then firing *)
  Timeseries.record t ~now:10.0 ~metric:"m" 50.0;
  Alerts.eval a ~ts:t ~now:10.0;
  Alcotest.(check string) "first breach is pending" "pending"
    (state_of a "hot");
  Timeseries.record t ~now:13.0 ~metric:"m" 50.0;
  Alerts.eval a ~ts:t ~now:13.0;
  Alcotest.(check string) "inside the hold, still pending" "pending"
    (state_of a "hot");
  Timeseries.record t ~now:16.0 ~metric:"m" 50.0;
  Alerts.eval a ~ts:t ~now:16.0;
  Alcotest.(check string) "hold elapsed, firing" "firing" (state_of a "hot");
  (* the render line carries the incident start, not the page time *)
  let line =
    List.find
      (fun l -> String.length l > 3 && String.sub l 0 3 = "hot")
      (String.split_on_char '\n' (Alerts.render a))
  in
  Alcotest.(check bool) "since names the pending start" true
    (let rec contains i =
       i + 8 <= String.length line
       && (String.sub line i 8 = "since=10" || contains (i + 1))
     in
     contains 0);
  (* recovery: one good evaluation resolves *)
  Timeseries.record t ~now:20.0 ~metric:"m" 1.0;
  Alerts.eval a ~ts:t ~now:20.0;
  Alcotest.(check string) "good value resolves" "resolved" (state_of a "hot");
  (* a pending blip that recovers never fired, so it goes back to
     inactive rather than claiming a resolution *)
  Timeseries.record t ~now:30.0 ~metric:"m" 50.0;
  Alerts.eval a ~ts:t ~now:30.0;
  Timeseries.record t ~now:32.0 ~metric:"m" 1.0;
  Alerts.eval a ~ts:t ~now:32.0;
  Alcotest.(check string) "blip stays un-fired" "inactive" (state_of a "hot")

let test_zero_hold_fires_immediately () =
  let t = ts () in
  let a =
    Alerts.create
      ~rules:
        [
          ( "up",
            Alerts.Threshold
              {
                metric = "sli:scrape_up";
                cmp = Alerts.Lt;
                bound = 1.0;
                hold = 0.0;
                window = 0.0;
              } );
        ]
  in
  Timeseries.record t ~now:5.0 ~metric:"sli:scrape_up" 0.5;
  Alerts.eval a ~ts:t ~now:5.0;
  Alcotest.(check string) "hold 0 fires on the first breach" "firing"
    (state_of a "up")

let test_burn_rate_needs_both_windows () =
  let t = ts () in
  let rule =
    Alerts.Burn_rate
      {
        metric = "sli";
        objective = 0.9;
        short_window = 10.0;
        long_window = 100.0;
        factor = 2.0;
      }
  in
  let a = Alerts.create ~rules:[ ("burn", rule) ] in
  (* a long healthy history, then a sharp error burst: the short
     window burns hot long before the long window catches up *)
  for i = 0 to 89 do
    Timeseries.record t ~now:(float_of_int i +. 0.5) ~metric:"sli" 1.0
  done;
  for i = 90 to 99 do
    Timeseries.record t ~now:(float_of_int i +. 0.5) ~metric:"sli" 0.0
  done;
  (* short window: SLI 0.0 -> burn 10; long window: SLI 0.9 -> burn 1,
     under the factor — the blip alone must not fire *)
  Alerts.eval a ~ts:t ~now:100.0;
  Alcotest.(check string) "short-only breach stays quiet" "inactive"
    (state_of a "burn");
  (* sustained burst: now both windows exceed the factor *)
  for i = 100 to 169 do
    Timeseries.record t ~now:(float_of_int i +. 0.5) ~metric:"sli" 0.0
  done;
  Alerts.eval a ~ts:t ~now:170.0;
  Alcotest.(check string) "sustained burn fires" "firing" (state_of a "burn")

let test_suppression_annotates () =
  let t = ts () in
  let a = Alerts.create ~rules:[ ("hot", threshold_rule) ] in
  Alerts.suppress a ~name:"hot" ~reason:"maintenance window";
  Timeseries.record t ~now:10.0 ~metric:"m" 50.0;
  Alerts.eval a ~ts:t ~now:10.0;
  (* suppression never masks the true state *)
  Alcotest.(check string) "suppressed rule keeps evaluating" "pending"
    (state_of a "hot");
  let text = Alerts.render a in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "annotation rendered" true
    (contains text {|suppressed="maintenance window"|});
  Alerts.unsuppress a ~name:"hot";
  Alcotest.(check bool) "annotation removed" false
    (contains (Alerts.render a) "suppressed")

let test_default_rules_scrape_up () =
  let t = ts () in
  let a = Alerts.create ~rules:(Alerts.default_rules ()) in
  (* the kill-a-node path CI exercises: one bad up-fraction sample and
     the immediate threshold is already firing *)
  Timeseries.record t ~now:5.0 ~metric:"sli:scrape_up" 0.66;
  Alerts.eval a ~ts:t ~now:5.0;
  Alcotest.(check string) "dead peer fires within one step" "firing"
    (state_of a "cluster_scrape_up");
  Timeseries.record t ~now:10.0 ~metric:"sli:scrape_up" 1.0;
  Alerts.eval a ~ts:t ~now:10.0;
  Alcotest.(check string) "recovery resolves it" "resolved"
    (state_of a "cluster_scrape_up")

(* ---- the sampler over a private registry ---- *)

let test_sampler_derives_slis () =
  Obs.with_enabled true @@ fun () ->
  let r = Metrics.create () in
  let t = ts ~step:5.0 () in
  let a = Alerts.create ~rules:(Alerts.default_rules ()) in
  let up = ref (Some 1.0) in
  let s =
    Sampler.create ~registry:r ~alerts:a ~up_fraction:(fun () -> !up) ~ts:t ()
  in
  Alcotest.(check bool) "sampler exposes its ring" true
    (Sampler.timeseries s == t);
  Metrics.gauge ~registry:r
    ~labels:[ ("repo", "/tmp/x") ]
    "dsvc_store_drift_score" 0.25;
  Metrics.counter ~registry:r
    ~labels:[ ("op", "put"); ("outcome", "ok") ]
    ~by:8.0 "dsvc_cluster_quorum_total";
  Sampler.tick s ~now:10.0;
  (* raw registry samples land under their exposition names *)
  Alcotest.(check (option (float 1e-9))) "gauge sampled" (Some 0.25)
    (Timeseries.latest t ~metric:{|dsvc_store_drift_score{repo="/tmp/x"}|});
  Alcotest.(check (option (float 1e-9))) "drift SLI strips the label"
    (Some 0.25)
    (Timeseries.latest t ~metric:"sli:drift_score");
  Alcotest.(check (option (float 1e-9))) "up fraction recorded" (Some 1.0)
    (Timeseries.latest t ~metric:"sli:scrape_up");
  (* second window: 2 ok, 1 failed -> 2/3 success since last tick *)
  Metrics.counter ~registry:r
    ~labels:[ ("op", "put"); ("outcome", "ok") ]
    ~by:2.0 "dsvc_cluster_quorum_total";
  Metrics.counter ~registry:r
    ~labels:[ ("op", "put"); ("outcome", "failed") ]
    "dsvc_cluster_quorum_total";
  up := Some 0.5;
  Sampler.tick s ~now:15.0;
  Alcotest.(check (option (float 1e-9))) "quorum success is the window diff"
    (Some (2.0 /. 3.0))
    (Timeseries.latest t ~metric:"sli:quorum_write_success");
  (* an idle window is healthy, not an error *)
  Sampler.tick s ~now:20.0;
  Alcotest.(check (option (float 1e-9))) "idle window counts as success"
    (Some 1.0)
    (Timeseries.latest t ~metric:"sli:quorum_write_success");
  (* the degraded up-fraction already fired the immediate rule *)
  Alcotest.(check string) "sampler drives the alert engine" "firing"
    (state_of a "cluster_scrape_up")

let test_sampler_p99_from_histogram_diff () =
  Obs.with_enabled true @@ fun () ->
  let r = Metrics.create () in
  let t = ts ~step:5.0 () in
  let s = Sampler.create ~registry:r ~ts:t () in
  let observe v =
    Metrics.observe ~registry:r
      ~labels:[ ("route", "/checkout/:name") ]
      "dsvc_server_request_seconds" v
  in
  for _ = 1 to 100 do
    observe 0.003
  done;
  Sampler.tick s ~now:5.0;
  let p99_first = Timeseries.latest t ~metric:"sli:checkout_p99_seconds" in
  Alcotest.(check bool) "first window p99 is small" true
    (match p99_first with Some v -> v <= 0.01 | None -> false);
  (* the next window is all slow requests: the cumulative histogram
     grew, and the p99 must reflect only the diff *)
  for _ = 1 to 100 do
    observe 0.8
  done;
  Sampler.tick s ~now:10.0;
  (match Timeseries.latest t ~metric:"sli:checkout_p99_seconds" with
  | Some v ->
      Alcotest.(check bool) "windowed p99 sees only the new samples" true
        (v >= 0.5)
  | None -> Alcotest.fail "p99 series missing");
  (* an idle window derives nothing rather than repeating stale data *)
  Sampler.tick s ~now:15.0;
  let n =
    List.length
      (Timeseries.query t ~metric:"sli:checkout_p99_seconds" ~since:0.0
         ~now:15.0 ())
  in
  Alcotest.(check int) "no p99 bucket for an idle window" 2 n

(* ---- the env knob parser ---- *)

let test_env_float () =
  let with_env name v f =
    let old = Sys.getenv_opt name in
    Unix.putenv name v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv name (match old with Some s -> s | None -> ""))
      f
  in
  let get () = Obs.env_float "DSVC_TEST_KNOB" ~default:5.0 in
  Alcotest.(check (float 1e-9)) "unset yields default" 5.0 (get ());
  with_env "DSVC_TEST_KNOB" "2.5" (fun () ->
      Alcotest.(check (float 1e-9)) "well-formed value wins" 2.5 (get ()));
  with_env "DSVC_TEST_KNOB" "banana" (fun () ->
      Alcotest.(check (float 1e-9)) "garbage falls back" 5.0 (get ()));
  with_env "DSVC_TEST_KNOB" "-1" (fun () ->
      Alcotest.(check (float 1e-9)) "negative rejected by default min" 5.0
        (get ()));
  with_env "DSVC_TEST_KNOB" "0" (fun () ->
      Alcotest.(check (float 1e-9)) "zero rejected by default min" 5.0 (get ()));
  with_env "DSVC_TEST_KNOB" "nan" (fun () ->
      Alcotest.(check (float 1e-9)) "NaN rejected" 5.0 (get ()));
  with_env "DSVC_TEST_KNOB" "100" (fun () ->
      Alcotest.(check (float 1e-9)) "max bound enforced" 5.0
        (Obs.env_float "DSVC_TEST_KNOB" ~max:10.0 ~default:5.0));
  with_env "DSVC_TEST_KNOB" "" (fun () ->
      Alcotest.(check (float 1e-9)) "blank treated as unset" 5.0 (get ()))

(* ---- the reactor timer ---- *)

let test_evloop_timer () =
  let loop = Evloop.create () in
  Fun.protect ~finally:(fun () -> Evloop.close loop) @@ fun () ->
  (match Evloop.add_timer loop ~period:0.0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive period must be rejected");
  let fired = ref 0 in
  let id = Evloop.add_timer loop ~period:0.02 (fun () -> incr fired) in
  let deadline = Unix.gettimeofday () +. 2.0 in
  while !fired < 3 && Unix.gettimeofday () < deadline do
    ignore (Evloop.wait loop ~timeout:0.5)
  done;
  Alcotest.(check bool) "periodic timer keeps firing" true (!fired >= 3);
  (* a long gap yields at most one catch-up firing per wait, never a
     burst that replays the backlog *)
  let before = !fired in
  Unix.sleepf 0.1;
  ignore (Evloop.wait loop ~timeout:0.01);
  Alcotest.(check bool) "no backlog replay" true (!fired - before <= 1);
  Evloop.cancel_timer loop id;
  let before = !fired in
  ignore (Evloop.wait loop ~timeout:0.05);
  ignore (Evloop.wait loop ~timeout:0.05);
  Alcotest.(check int) "cancelled timer stays quiet" before !fired

let suite =
  [
    Alcotest.test_case "bucket aggregation" `Quick test_record_aggregates;
    Alcotest.test_case "tier selection and bounded retention" `Quick
      test_tier_selection_and_trim;
    Alcotest.test_case "series-cardinality cap" `Quick test_max_series_cap;
    Alcotest.test_case "windowed average" `Quick test_windowed_avg;
    Alcotest.test_case "render/parse roundtrip" `Quick
      test_render_parse_roundtrip;
    Alcotest.test_case "torn or foreign files rejected" `Quick
      test_parse_rejects_garbage;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "sparkline glyphs" `Quick test_sparkline;
    Alcotest.test_case "threshold hold state machine" `Quick
      test_threshold_state_machine;
    Alcotest.test_case "zero hold fires immediately" `Quick
      test_zero_hold_fires_immediately;
    Alcotest.test_case "burn rate needs both windows" `Quick
      test_burn_rate_needs_both_windows;
    Alcotest.test_case "suppression annotates, never masks" `Quick
      test_suppression_annotates;
    Alcotest.test_case "stock scrape-up rule round-trips an outage" `Quick
      test_default_rules_scrape_up;
    Alcotest.test_case "sampler derives the SLI series" `Quick
      test_sampler_derives_slis;
    Alcotest.test_case "sampler p99 reads the histogram diff" `Quick
      test_sampler_p99_from_histogram_diff;
    Alcotest.test_case "env_float knob parsing" `Quick test_env_float;
    Alcotest.test_case "reactor timer fires, clamps, cancels" `Quick
      test_evloop_timer;
  ]
