(* Resemblance, Dot, Migration, Retrieval_sim. *)

open Versioning_core
module Resemblance = Versioning_delta.Resemblance
module Retrieval_sim = Versioning_workload.Retrieval_sim
module Prng = Versioning_util.Prng

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---- Resemblance ---- *)

let test_resemblance_identity () =
  let doc = String.concat "\n" (List.init 100 (fun i -> Printf.sprintf "row %d" i)) in
  let s = Resemblance.sketch doc in
  Alcotest.(check (float 1e-9)) "self similarity" 1.0
    (Resemblance.similarity s s);
  Alcotest.(check (float 1e-9)) "equal docs" 1.0
    (Resemblance.similarity s (Resemblance.sketch doc))

let test_resemblance_orders () =
  let base = String.concat "\n" (List.init 200 (fun i -> Printf.sprintf "line %d" i)) in
  let near = base ^ "\nextra line" in
  let rng = Prng.create ~seed:223 in
  let far = String.init (String.length base) (fun _ -> Char.chr (33 + Prng.int rng 90)) in
  let sb = Resemblance.sketch base in
  let sn = Resemblance.sketch near in
  let sf = Resemblance.sketch far in
  let sim_near = Resemblance.similarity sb sn in
  let sim_far = Resemblance.similarity sb sf in
  Alcotest.(check bool) "near similar" true (sim_near > 0.8);
  Alcotest.(check bool) "far dissimilar" true (sim_far < 0.2);
  Alcotest.(check bool) "ordering" true (sim_near > sim_far)

let test_resemblance_estimates_jaccard () =
  (* half-overlapping documents should land near 1/3 Jaccard (shared /
     union of shingles) *)
  let mk lines = String.concat "\n" lines in
  let a = mk (List.init 400 (fun i -> Printf.sprintf "alpha %06d" i)) in
  let b =
    mk
      (List.init 400 (fun i ->
           if i < 200 then Printf.sprintf "alpha %06d" i
           else Printf.sprintf "beta %06d" i))
  in
  let sim =
    Resemblance.similarity
      (Resemblance.sketch ~k:256 a)
      (Resemblance.sketch ~k:256 b)
  in
  Alcotest.(check bool) "roughly a third" true (sim > 0.18 && sim < 0.5)

let test_candidate_pairs () =
  let base = String.concat "\n" (List.init 150 (fun i -> Printf.sprintf "r %d" i)) in
  let rng = Prng.create ~seed:227 in
  let noise () = String.init 1200 (fun _ -> Char.chr (33 + Prng.int rng 90)) in
  let docs = [| base; base ^ "\ntail"; noise (); noise () |] in
  let sketches = Array.map (fun d -> Resemblance.sketch d) docs in
  let pairs = Resemblance.candidate_pairs ~threshold:0.5 sketches in
  Alcotest.(check (list (pair int int))) "only the true pair"
    [ (0, 1) ]
    (List.map (fun (i, j, _) -> (i, j)) pairs);
  let top = Resemblance.top_candidates ~k:1 sketches 0 in
  Alcotest.(check (list int)) "top candidate" [ 1 ] (List.map fst top)

let test_sketch_mismatch () =
  let a = Resemblance.sketch ~k:32 "x" and b = Resemblance.sketch ~k:64 "x" in
  Alcotest.(check bool) "k mismatch rejected" true
    (match Resemblance.similarity a b with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Dot ---- *)

let test_dot_storage_graph () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (0, 3); (2, 4); (3, 5) ])
  in
  let dot = Dot.of_storage_graph sg in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph storage_plan" dot);
  Alcotest.(check bool) "materialized doubled" true
    (contains ~needle:"peripheries=2" dot);
  Alcotest.(check bool) "edge rendered" true (contains ~needle:"n1 -> n2" dot);
  Alcotest.(check bool) "root edge" true (contains ~needle:"n0 -> n1" dot);
  Alcotest.(check bool) "cost labels" true (contains ~needle:"d=200" dot)

let test_dot_custom_labels () =
  let g = Fixtures.figure1 () in
  let sg = Fixtures.ok (Solver.min_storage_tree g) in
  let dot =
    Dot.of_storage_graph ~name:"plan"
      ~labels:(fun v -> if v = 0 then "root" else Printf.sprintf "dataset-%d" v)
      sg
  in
  Alcotest.(check bool) "custom name" true (contains ~needle:"digraph plan" dot);
  Alcotest.(check bool) "custom label" true (contains ~needle:"dataset-3" dot);
  (* labels with quotes are escaped, keeping the DOT well-formed *)
  let dot =
    Dot.of_storage_graph ~labels:(fun v -> Printf.sprintf "v\"%d" v) sg
  in
  Alcotest.(check bool) "quotes escaped" true
    (not (contains ~needle:"\"v\"1\"" dot))

let test_dot_aux_graph_truncation () =
  let g = Fixtures.figure1 () in
  let dot = Dot.of_aux_graph ~max_edges:3 g in
  Alcotest.(check bool) "truncation noted" true (contains ~needle:"truncated" dot);
  let full = Dot.of_aux_graph g in
  Alcotest.(check bool) "no truncation note when small" true
    (not (contains ~needle:"truncated" full))

(* ---- Migration ---- *)

let test_migration_plan () =
  let g = Fixtures.figure1 () in
  let a =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  let b =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (0, 3); (2, 4); (3, 5) ])
  in
  let p = Migration.plan ~from_:a ~to_:b in
  (* only V3 changes: delta(1->3) dropped, materialization written *)
  Alcotest.(check int) "four unchanged" 4 p.Migration.unchanged;
  Alcotest.(check (float 1e-9)) "bytes written" 9700.0 p.Migration.bytes_written;
  Alcotest.(check (float 1e-9)) "bytes freed" 1000.0 p.Migration.bytes_freed;
  Alcotest.(check (float 1e-9)) "net" 8700.0 (Migration.net_bytes p);
  Alcotest.(check bool) "actions shape" true
    (p.Migration.actions
    = [ Migration.Materialize 3; Migration.Drop_delta { parent = 1; child = 3 } ]);
  (* identity migration is empty *)
  let id = Migration.plan ~from_:a ~to_:a in
  Alcotest.(check int) "identity unchanged" 5 id.Migration.unchanged;
  Alcotest.(check (list int)) "identity no actions" []
    (List.map (fun _ -> 0) id.Migration.actions)

let test_migration_mismatch () =
  let g5 = Fixtures.figure1 () in
  let sg5 = Fixtures.ok (Solver.min_storage_tree g5) in
  let rng = Prng.create ~seed:229 in
  let g3 = Fixtures.random_graph ~n_min:3 ~n_max:3 rng in
  let sg3 = Fixtures.ok (Solver.min_storage_tree g3) in
  Alcotest.(check bool) "size mismatch rejected" true
    (match Migration.plan ~from_:sg5 ~to_:sg3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Retrieval_sim ---- *)

let test_sim_no_cache_equals_model () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  let accesses = [ 5; 4; 1; 5 ] in
  let r = Retrieval_sim.run sg ~cache_slots:0 ~accesses in
  let expected =
    List.fold_left
      (fun acc v -> acc +. Storage_graph.recreation_cost sg v)
      0.0 accesses
  in
  Alcotest.(check (float 1e-6)) "matches paper cost model" expected
    r.Retrieval_sim.total_cost;
  Alcotest.(check int) "no hits without cache" 0 r.Retrieval_sim.hits

let test_sim_cache_helps () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  let accesses = [ 5; 5; 5; 5 ] in
  let cold = Retrieval_sim.run sg ~cache_slots:0 ~accesses in
  let warm = Retrieval_sim.run sg ~cache_slots:4 ~accesses in
  Alcotest.(check int) "three hits" 3 warm.Retrieval_sim.hits;
  Alcotest.(check bool) "cache reduces cost" true
    (warm.Retrieval_sim.total_cost < cold.Retrieval_sim.total_cost /. 2.0)

let test_sim_partial_hits () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ])
  in
  (* access the parent (3) then the child (5): the child's chain is
     cut at the cached parent and pays only its own edge *)
  let r = Retrieval_sim.run sg ~cache_slots:4 ~accesses:[ 3; 5 ] in
  Alcotest.(check int) "one partial" 1 r.Retrieval_sim.partial_hits;
  let expected =
    Storage_graph.recreation_cost sg 3
    +. (Storage_graph.edge_weight sg 5).Aux_graph.phi
  in
  Alcotest.(check (float 1e-6)) "chain cut cost" expected r.Retrieval_sim.total_cost

let test_sim_lru_eviction () =
  let g = Fixtures.figure1 () in
  let sg =
    Fixtures.ok
      (Storage_graph.of_parents g
         ~parents:[ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ])
  in
  (* slot for one: second distinct access evicts the first *)
  let r = Retrieval_sim.run sg ~cache_slots:1 ~accesses:[ 1; 2; 1 ] in
  Alcotest.(check int) "no hits after eviction" 0 r.Retrieval_sim.hits

let test_zipf_stream () =
  let rng = Prng.create ~seed:233 in
  let stream = Retrieval_sim.zipf_stream ~n_versions:20 ~length:5000 ~exponent:2.0 rng in
  Alcotest.(check int) "length" 5000 (List.length stream);
  List.iter
    (fun v -> Alcotest.(check bool) "range" true (v >= 1 && v <= 20))
    stream;
  (* skew: the most frequent version dominates *)
  let counts = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
    stream;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "zipf head heavy" true (top > 2000)

let suite =
  [
    Alcotest.test_case "resemblance identity" `Quick test_resemblance_identity;
    Alcotest.test_case "resemblance ordering" `Quick test_resemblance_orders;
    Alcotest.test_case "resemblance jaccard" `Quick
      test_resemblance_estimates_jaccard;
    Alcotest.test_case "candidate pairs" `Quick test_candidate_pairs;
    Alcotest.test_case "sketch size mismatch" `Quick test_sketch_mismatch;
    Alcotest.test_case "dot storage graph" `Quick test_dot_storage_graph;
    Alcotest.test_case "dot custom labels" `Quick test_dot_custom_labels;
    Alcotest.test_case "dot truncation" `Quick test_dot_aux_graph_truncation;
    Alcotest.test_case "migration plan" `Quick test_migration_plan;
    Alcotest.test_case "migration mismatch" `Quick test_migration_mismatch;
    Alcotest.test_case "sim = cost model w/o cache" `Quick
      test_sim_no_cache_equals_model;
    Alcotest.test_case "sim cache helps" `Quick test_sim_cache_helps;
    Alcotest.test_case "sim partial hits" `Quick test_sim_partial_hits;
    Alcotest.test_case "sim lru eviction" `Quick test_sim_lru_eviction;
    Alcotest.test_case "zipf stream" `Quick test_zipf_stream;
  ]
