(* Intro scenario 1 ("Intermediate Result Datasets"): many analysis
   pipelines store intermediate results that are near-identical across
   pipelines — small transformations of shared inputs. This example
   models a fan of pipelines over a common input and shows (a) how the
   version graph's ⟨Δ, Φ⟩ structure is built from real diffs, and
   (b) what each point of the storage/recreation spectrum costs.

     dune exec examples/intermediate_results.exe *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng

let () =
  let rng = Prng.create ~seed:7 in
  (* A branchy history: one input dataset, many pipelines forking off
     and mutating it slightly at each step — exactly the paper's
     "massive redundancy and duplication" setting. *)
  let history =
    History_gen.generate
      {
        History_gen.n_commits = 120;
        branch_interval = 2;
        branch_probability = 0.8;
        branch_limit = 3;
        branch_length = 5;
        merge_probability = 0.1;
      }
      rng
  in
  let data =
    Dataset_gen.generate ~name:"pipelines" history
      {
        Dataset_gen.default_params with
        initial_rows = 250;
        initial_cols = 8;
        edit_intensity = 0.02;
        max_hops = 4;
        reveal_cap = 16;
      }
      rng
  in
  let g = data.Dataset_gen.aux in
  let n = Aux_graph.n_versions g in
  Printf.printf "%d intermediate datasets, %d revealed deltas, avg size %.0f B\n"
    n data.Dataset_gen.n_deltas
    (Dataset_gen.avg_version_size data);

  let total_raw =
    Array.fold_left ( +. ) 0.0 (Array.sub data.Dataset_gen.version_sizes 1 n)
  in
  Printf.printf "storing every version in full: %.0f B\n\n" total_raw;

  let base = Result.get_ok (Solver.min_storage_tree g) in
  let spt = Result.get_ok (Spt.solve g) in
  let cmin = Storage_graph.storage_cost base in

  Printf.printf "%-24s %12s %14s %12s\n" "plan" "storage" "sum recreation"
    "max recreation";
  let row name sg =
    Printf.printf "%-24s %12.0f %14.0f %12.0f\n" name
      (Storage_graph.storage_cost sg)
      (Storage_graph.sum_recreation sg)
      (Storage_graph.max_recreation sg)
  in
  row "MCA (min storage)" base;
  List.iter
    (fun f ->
      let sg = Lmg.solve g ~base ~spt ~budget:(f *. cmin) () in
      row (Printf.sprintf "LMG budget %.1fx" f) sg)
    [ 1.1; 1.5; 2.0 ];
  (match Gith.solve g ~window:10 ~max_depth:50 with
  | Ok sg -> row "GitH (w=10,d=50)" sg
  | Error e -> Printf.printf "GitH failed: %s\n" e);
  row "SPT (min recreation)" spt;

  (* The punchline the paper's Figure 13 makes: a 10% storage premium
     over the minimum collapses total recreation cost. *)
  let lmg11 = Lmg.solve g ~base ~spt ~budget:(1.1 *. cmin) () in
  Printf.printf
    "\nwith a 1.1x storage budget, sum recreation drops from %.0f to %.0f \
     (%.1fx reduction) while storage grows only %.0f -> %.0f\n"
    (Storage_graph.sum_recreation base)
    (Storage_graph.sum_recreation lmg11)
    (Storage_graph.sum_recreation base /. Storage_graph.sum_recreation lmg11)
    cmin
    (Storage_graph.storage_cost lmg11)
