(* Online ingestion (the paper's §7 future work, implemented as an
   extension): versions arrive one at a time and must be placed
   immediately; drift against the offline optimum accumulates until a
   scheduled repack re-plans the store. A retrieval simulation shows
   what each phase costs to serve under a skewed checkout workload.

     dune exec examples/online_ingestion.exe *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng

let () =
  let rng = Prng.create ~seed:314 in
  (* A stream of versions with parent deltas plus occasional extra
     candidates (a similarity service suggesting more pairs). *)
  let history =
    History_gen.generate (History_gen.flat_params ~n_commits:300) rng
  in
  let offline_view =
    Cost_gen.generate history
      { Cost_gen.default_params with max_hops = 4; reveal_cap = 10 }
      rng
  in
  let online = Online.create (Online.Bounded_max 40_000.0) in
  let drift_log = ref [] in
  for v = 1 to History_gen.(history.n_versions) do
    let materialization = Option.get (Aux_graph.materialization offline_view v) in
    (* the online system only sees deltas against already-ingested
       versions *)
    let candidates =
      Versioning_graph.Digraph.in_edges (Aux_graph.graph offline_view) v
      |> List.filter_map (fun (e : _ Versioning_graph.Digraph.edge) ->
             if e.src >= 1 && e.src < v then Some (e.src, e.label) else None)
    in
    ignore
      (Result.get_ok (Online.add_version online ~materialization ~candidates));
    if v mod 60 = 0 then begin
      let drift = Result.get_ok (Online.drift online Solver.Minimize_storage) in
      drift_log := (v, drift) :: !drift_log
    end
  done;

  print_endline "online ingestion drift (online storage / offline optimum):";
  List.iter
    (fun (v, d) -> Printf.printf "  after %3d versions: %.3fx\n" v d)
    (List.rev !drift_log);

  (* Scheduled repack: adopt the offline plan, measure the migration. *)
  let before = Online.to_storage_graph online in
  Result.get_ok (Online.reoptimize online Solver.Minimize_storage);
  let after = Online.to_storage_graph online in
  let plan = Migration.plan ~from_:before ~to_:after in
  Format.printf "@.repack migration: %a@." Migration.pp plan;
  Printf.printf "drift after repack: %.3fx\n"
    (Result.get_ok (Online.drift online Solver.Minimize_storage));

  (* What retrieval actually costs before/after, with a small cache. *)
  let stream =
    Retrieval_sim.zipf_stream
      ~n_versions:(Online.n_versions online)
      ~length:4000 ~exponent:2.0 rng
  in
  let report label sg =
    let cold = Retrieval_sim.run sg ~cache_slots:0 ~accesses:stream in
    let warm = Retrieval_sim.run sg ~cache_slots:16 ~accesses:stream in
    Printf.printf
      "%-18s storage=%10.0f  retrieval cost: no cache %12.0f, 16-slot cache \
       %12.0f (%d hits, %d chain cuts)\n"
      label
      (Storage_graph.storage_cost sg)
      cold.Retrieval_sim.total_cost warm.Retrieval_sim.total_cost
      warm.Retrieval_sim.hits warm.Retrieval_sim.partial_hits
  in
  print_newline ();
  report "online (greedy)" before;
  report "after repack" after;

  (* Export the final plan for inspection. *)
  let dot = Dot.of_storage_graph after in
  let path = Filename.temp_file "storage_plan" ".dot" in
  (match Versioning_util.Fsutil.write_file path dot with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf "\nfinal storage plan written to %s (render with `dot -Tsvg`)\n"
    path
