(* Fork-style workloads (the paper's BF/LF real-world datasets): many
   checked-out fork tips of one artifact, no derivation chain, deltas
   revealed only between similarly-sized pairs. Compares the version
   control strategies of §5.2 plus the paper's algorithms, and shows
   workload-aware optimization under a Zipfian access pattern
   (Figure 16's setting).

     dune exec examples/fork_analysis.exe *)

open Versioning_core
open Versioning_workload
module Prng = Versioning_util.Prng
module Zipf = Versioning_util.Zipf

let () =
  let rng = Prng.create ~seed:99 in
  let forks =
    Fork_gen.generate ~name:"forks"
      {
        Fork_gen.default_params with
        n_forks = 80;
        base_rows = 300;
        divergence = 0.05;
        reveal = Fork_gen.Size_threshold 2500.0;
      }
      rng
  in
  let g = forks.Fork_gen.aux in
  let n = Aux_graph.n_versions g in
  Printf.printf "%d forks, %d revealed deltas\n\n" n forks.Fork_gen.n_deltas;

  let base = Result.get_ok (Solver.min_storage_tree g) in
  let spt = Result.get_ok (Spt.solve g) in
  let cmin = Storage_graph.storage_cost base in

  Printf.printf "%-26s %12s %14s %10s\n" "strategy" "storage" "sum recreation"
    "max chain";
  let depth sg =
    let d = ref 0 in
    for v = 1 to n do
      if Storage_graph.depth sg v > !d then d := Storage_graph.depth sg v
    done;
    !d
  in
  let row name sg =
    Printf.printf "%-26s %12.0f %14.0f %10d\n" name
      (Storage_graph.storage_cost sg)
      (Storage_graph.sum_recreation sg)
      (depth sg)
  in
  row "MCA (min storage)" base;
  (match Gith.solve g ~window:10 ~max_depth:50 with
  | Ok sg -> row "GitH (w=10, d=50)" sg
  | Error e -> Printf.printf "GitH: %s\n" e);
  (match Skip_delta.solve g ~order:(Array.init n (fun i -> i + 1)) with
  | Ok sg -> row "SVN skip-deltas" sg
  | Error _ ->
      (* Skip pairs are usually unrevealed under the size threshold —
         the realistic outcome: SVN's fixed chain ignores similarity. *)
      print_endline
        "SVN skip-deltas           : needs deltas the threshold never \
         revealed (SVN ignores similarity structure)");
  row "LMG budget 1.2x" (Lmg.solve g ~base ~spt ~budget:(1.2 *. cmin) ());
  row "SPT (all materialized)" spt;

  (* Workload-aware planning: a few forks get nearly all checkouts. *)
  let zipf = Zipf.create ~n ~exponent:2.0 in
  let freqs = Array.make (n + 1) 0.0 in
  let masses = Zipf.masses zipf in
  (* Rank forks by id: fork 1 (upstream) most accessed. *)
  for v = 1 to n do
    freqs.(v) <- masses.(v - 1) *. 10_000.0
  done;
  let budget = 1.2 *. cmin in
  let uniform = Lmg.solve g ~base ~spt ~budget () in
  let aware = Lmg.solve g ~base ~spt ~budget ~freqs () in
  Printf.printf
    "\nZipf(2) checkout workload, LMG budget 1.2x:\n\
    \  workload-blind : weighted recreation %.0f\n\
    \  workload-aware : weighted recreation %.0f  (%.1f%% better)\n"
    (Storage_graph.weighted_recreation uniform ~freqs)
    (Storage_graph.weighted_recreation aware ~freqs)
    (100.0
    *. (1.0
       -. Storage_graph.weighted_recreation aware ~freqs
          /. Storage_graph.weighted_recreation uniform ~freqs))
