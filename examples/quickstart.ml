(* Quickstart: the paper's running example (Figure 1 / Figure 2),
   solved for all six problem formulations.

     dune exec examples/quickstart.exe

   Five versions; V2 and V3 derive from V1 and merge into V5; V4
   derives from V2. The ⟨Δ, Φ⟩ matrices are the ones printed in
   Figure 2 of the paper (including the extra revealed entries). *)

open Versioning_core

let () =
  (* Versions 1..5; the dummy root V0 is implicit. *)
  let g = Aux_graph.create ~n_versions:5 in
  (* Diagonal entries ⟨Δi,i, Φi,i⟩: full-version storage/recreation. *)
  List.iter
    (fun (v, c) -> Aux_graph.add_materialization g ~version:v ~delta:c ~phi:c)
    [ (1, 10000.); (2, 10100.); (3, 9700.); (4, 9800.); (5, 10120.) ];
  (* Off-diagonal entries ⟨Δi,j, Φi,j⟩ from Figure 2. *)
  List.iter
    (fun (i, j, delta, phi) -> Aux_graph.add_delta g ~src:i ~dst:j ~delta ~phi)
    [
      (1, 2, 200., 200.);
      (1, 3, 1000., 3000.);
      (2, 1, 500., 600.);
      (2, 4, 50., 400.);
      (2, 5, 800., 2500.);
      (3, 2, 1100., 3200.);
      (3, 5, 200., 550.);
      (5, 4, 800., 2300.);
      (4, 5, 900., 2500.);
    ];

  let report name = function
    | Error e -> Printf.printf "%-42s : infeasible (%s)\n" name e
    | Ok sg ->
        let mats =
          Storage_graph.materialized_versions sg
          |> List.map (fun v -> "V" ^ string_of_int v)
          |> String.concat ","
        in
        Printf.printf
          "%-42s : C=%7.0f  sumR=%7.0f  maxR=%6.0f  materialized={%s}\n" name
          (Storage_graph.storage_cost sg)
          (Storage_graph.sum_recreation sg)
          (Storage_graph.max_recreation sg)
          mats
  in

  print_endline "Figure 1 example — all six problems:";
  report "P1 min storage (MCA)" (Solver.solve g Solver.Minimize_storage);
  report "P2 min recreation (SPT)" (Solver.solve g Solver.Minimize_recreation);
  report "P3 min sumR s.t. C<=13000 (LMG)"
    (Solver.solve g (Solver.Min_sum_recreation_bounded_storage 13000.));
  report "P4 min maxR s.t. C<=13000 (MP)"
    (Solver.solve g (Solver.Min_max_recreation_bounded_storage 13000.));
  report "P5 min C s.t. sumR<=35000 (LMG)"
    (Solver.solve g (Solver.Min_storage_bounded_sum_recreation 35000.));
  report "P6 min C s.t. maxR<=13000 (MP)"
    (Solver.solve g (Solver.Min_storage_bounded_max_recreation 13000.));

  (* The paper's three hand-worked solutions, for comparison. *)
  print_endline "\nFigure 1's three storage graphs, re-costed by the library:";
  let show name parents =
    match Storage_graph.of_parents g ~parents with
    | Ok sg ->
        Printf.printf "%-42s : C=%7.0f  sumR=%7.0f  maxR=%6.0f\n" name
          (Storage_graph.storage_cost sg)
          (Storage_graph.sum_recreation sg)
          (Storage_graph.max_recreation sg)
    | Error e -> Printf.printf "%-42s : invalid (%s)\n" name e
  in
  show "(ii) everything materialized"
    [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ];
  show "(iii) only V1 materialized"
    [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 5) ];
  show "(iv) V1 and V3 materialized"
    [ (0, 1); (1, 2); (0, 3); (2, 4); (3, 5) ];

  (* Exact solution for Problem 6 on this toy instance. *)
  let exact = Exact.solve_p6 g ~theta:13000. () in
  (match exact.Exact.tree with
  | Some sg ->
      Printf.printf
        "\nExact P6 (theta=13000): C=%.0f (optimal=%b, %d B&B nodes)\n"
        (Storage_graph.storage_cost sg)
        exact.Exact.optimal exact.Exact.nodes
  | None -> print_endline "\nExact P6: infeasible")
