(* Intro scenario 2 ("Data Science Dataset Versions"): a group shares
   a dataset; each scientist copies it, cleans/extends it on a branch,
   and stores the result back. Without delta storage the shared folder
   holds near-duplicates; dsvc stores one materialized root plus small
   deltas, and `optimize` rebalances retrieval latency on demand.

     dune exec examples/data_science_pipeline.exe *)

module Repo = Versioning_store.Repo
module Prng = Versioning_util.Prng
module Csv = Versioning_delta.Csv
open Versioning_workload

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let dir = Filename.temp_file "dsvc_pipeline" "" in
  Sys.remove dir;
  let repo = ok (Repo.init ~path:dir) in
  let rng = Prng.create ~seed:2025 in
  let tg = Table_gen.create rng in

  (* The shared source dataset. *)
  let base_table = Table_gen.fresh_table tg ~rows:400 ~cols:10 in
  let v0 = ok (Repo.commit repo ~message:"shared source data" (Csv.print base_table)) in
  Printf.printf "committed shared dataset as version %d (%d bytes)\n" v0
    (String.length (Csv.print base_table));

  (* Three scientists branch off and work independently. *)
  let branch_tips =
    List.map
      (fun (who, n_steps) ->
        ok (Repo.create_branch repo who ~at:v0 ());
        let table = ref base_table in
        let tip = ref v0 in
        for step = 1 to n_steps do
          let edits = Table_gen.random_edits tg ~table:!table ~intensity:0.03 in
          table := Table_gen.apply tg !table edits;
          tip :=
            ok
              (Repo.commit repo
                 ~message:(Printf.sprintf "%s: step %d" who step)
                 (Csv.print !table))
        done;
        Printf.printf "%s made %d commits, tip = version %d\n" who n_steps !tip;
        (!tip, !table))
      [ ("alice-cleaning", 4); ("bob-normalization", 3); ("carol-features", 5) ]
  in

  (* Alice and Bob merge their work (user-performed merge: pick one
     table and append the other's new columns would be domain logic;
     here we just record the merge relationship). *)
  (match branch_tips with
  | (tip_a, table_a) :: (tip_b, _) :: _ ->
      ok (Repo.switch repo "main");
      let merged =
        Table_gen.apply tg table_a
          [ Table_gen.Add_rows { at = 0; count = 5 } ]
      in
      let vm =
        ok
          (Repo.commit repo ~message:"merge alice + bob"
             ~parents:[ tip_a; tip_b ] (Csv.print merged))
      in
      Printf.printf "merged versions %d and %d into version %d\n" tip_a tip_b vm
  | _ -> ());

  (* Compare storage strategies on the accumulated repository. *)
  let naive_bytes =
    List.fold_left
      (fun acc (c : Repo.commit_info) ->
        acc + String.length (ok (Repo.checkout repo c.id)))
      0 (Repo.log repo)
  in
  Printf.printf "\nnaive copies (every version in full): %d bytes\n" naive_bytes;
  List.iter
    (fun (label, strategy) ->
      let s = ok (Repo.optimize repo strategy) in
      Printf.printf
        "%-28s: storage=%7d B  materialized=%d/%d  longest chain=%d  sumR=%8.0f B\n"
        label s.Repo.storage_bytes s.Repo.n_full s.Repo.n_versions
        s.Repo.max_chain s.Repo.sum_recreation_bytes)
    [
      ("optimize min-storage (MCA)", Repo.Min_storage);
      ("optimize balanced (LMG x1.3)", Repo.Budgeted_sum 1.3);
      ("optimize bounded-max (MP x2)", Repo.Bounded_max 2.0);
      ("optimize min-recreation(SPT)", Repo.Min_recreation);
    ];

  (* Retrieval still works after each re-plan. *)
  let everything_ok =
    List.for_all
      (fun (c : Repo.commit_info) ->
        match Repo.checkout repo c.id with Ok _ -> true | Error _ -> false)
      (Repo.log repo)
  in
  Printf.printf "\nall %d versions retrievable: %b\n"
    (List.length (Repo.log repo))
    everything_ok
