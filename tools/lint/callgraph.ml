(* Whole-program call graph over the scanned tree.

   Nodes are named functions: every top-level `let f = fun ...` in a
   scanned file, every named function nested inside one
   (`Server.serve.on_readable`), and one synthetic node per deferred
   lambda (`Server.serve.dispatch.<async:LINE>` for the argument of
   `submit` / `Thread.create` / `Evloop.post`). Edges are calls,
   classified by how the callee runs relative to the caller:

     Direct    the caller waits for the callee (ordinary application,
               and function values passed to ordinary calls — List.iter
               etc. may invoke them synchronously)
     Deferred  the callee runs later on another thread; the caller does
               not wait (submit / Thread.create / Evloop.post / the
               Evloop.add callback registration)
     Task      the callee runs on a pool domain but the caller joins
               before returning (Pool.parallel_init / parallel_map)

   Module resolution is purely syntactic: a per-file alias table
   (`module E = Versioning_util.Evloop` makes `E.add` resolve through
   the last path component), local `let` scopes shadow module-level
   names, and anything else becomes an Ext target keyed by the callee's
   module path. `open` is not tracked and calls through record fields
   (`s.read_chunk ()`) produce no edge; DESIGN.md section 14 lists the
   resulting imprecision.

   Each call edge also records the set of mutexes held at the call
   site. Held sets are tracked through `Mutex.lock` / `Mutex.unlock`
   sequencing, `Mutex.protect`, the `Mutex.lock m; Fun.protect
   ~finally:(fun () -> Mutex.unlock m) ...` idiom, and — via a second
   build pass — the `with_lock t (fun () -> ...)` wrapper idiom: a
   lambda passed to a callee that itself acquires a mutex is re-walked
   with that mutex added to the held set. *)

module SS = Set.Make (String)
open Parsetree

type edge_kind = Direct | Deferred | Task

type target =
  | Node of string  (* a scanned function, by node id *)
  | Ext of string * string  (* module path ("" when bare) and name *)

type call = {
  ct : target;
  ckind : edge_kind;
  cheld : string list;  (* mutex names held at the call site *)
  cline : int;
  ccol : int;
}

type acquire = {
  am : string;  (* mutex name, "Module.ident" *)
  aprotected : bool;  (* via Mutex.protect: released by construction *)
  aheld : string list;  (* held before this acquire *)
  aline : int;
  acol : int;
}

type node = {
  id : string;
  nd_file : string;
  nd_module : string;
  nd_line : int;
  mutable calls : call list;
  mutable acquires : acquire list;
  mutable releases : SS.t;  (* mutexes visibly unlocked in this body *)
  mutable mut_refs : (string * int * int) list;  (* mutable id, line, col *)
}

type mutable_binding = {
  mb_id : string;  (* "Module.name" *)
  mb_file : string;
  mb_module : string;
  mb_ctor : string;
  mb_line : int;
  mb_col : int;
}

type root = { r_id : string; r_file : string; r_line : int }

type t = {
  nodes : (string, node) Hashtbl.t;
  mutables : (string, mutable_binding) Hashtbl.t;
  guarded : (string, unit) Hashtbl.t;  (* modules that use Mutex at all *)
  mutable reactor_roots : root list;
      (* Evloop.add / Evloop.post / Evloop.add_timer callbacks *)
  mutable thread_roots : root list;  (* submit / Thread.create bodies *)
  mutable task_roots : root list;  (* Pool.parallel_* task bodies *)
}

let default_register = [ "Evloop.add"; "Evloop.post"; "Evloop.add_timer" ]
let default_defer = [ "Thread.create"; "Domain.spawn"; "submit" ]
let default_pool = [ "Pool.parallel_init"; "Pool.parallel_map" ]

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* lint: swallow-ok Longident.flatten fatals on Lapply paths, which
   cannot name a function we track; an empty path is the right answer *)
let flatten lid = try Longident.flatten lid with _ -> []

let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

let module_name_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

(* Match a callee path against a configured name list: "Evloop.add"
   matches on the last two components (so aliased and fully qualified
   spellings both hit), a bare "submit" on the last component only. *)
let path_matches_name names path =
  let last1 = last_of path in
  let last2 =
    match List.rev path with
    | f :: m :: _ -> m ^ "." ^ f
    | _ -> last1
  in
  List.exists (fun n -> if String.contains n '.' then n = last2 else n = last1)
    names

let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

let rec strip_wrappers e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
      strip_wrappers e
  | _ -> e

let is_function_expr e =
  match (strip_wrappers e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let mutable_ctors =
  [
    ("Hashtbl", "create"); ("Buffer", "create"); ("Queue", "create");
    ("Stack", "create"); ("Array", "make"); ("Array", "init");
    ("Array", "create_float"); ("Bytes", "create"); ("Bytes", "make");
    ("Weak", "create");
  ]

let is_mutable_ctor path =
  last_of path = "ref"
  || List.exists
       (fun (m, f) -> List.mem m path && last_of path = f)
       mutable_ctors

(* ------------------------------------------------------------------ *)
(* Phase 1: per-file tables (names, aliases, mutables)                 *)
(* ------------------------------------------------------------------ *)

type file_info = {
  fi_file : string;
  fi_module : string;
  fi_aliases : (string, string) Hashtbl.t;  (* alias -> target module name *)
  fi_funs : (string, unit) Hashtbl.t;  (* top-level function names *)
  fi_vals : (string, unit) Hashtbl.t;  (* every top-level value name *)
  fi_muts : (string, unit) Hashtbl.t;  (* top-level mutable value names *)
  fi_subfuns : (string, unit) Hashtbl.t;  (* "Sub.name" in submodules *)
  fi_ast : structure;
}

let scan_file (fname, src) =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf fname;
  match Parse.implementation lexbuf with
  | exception _ ->
      (* lint: swallow-ok unparseable files are reported by the per-file
         pass; the graph simply omits them *)
      None
  | ast ->
      let fi =
        {
          fi_file = fname;
          fi_module = module_name_of_file fname;
          fi_aliases = Hashtbl.create 8;
          fi_funs = Hashtbl.create 32;
          fi_vals = Hashtbl.create 32;
          fi_muts = Hashtbl.create 8;
          fi_subfuns = Hashtbl.create 8;
          fi_ast = ast;
        }
      in
      let record_binding ~sub vb =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ }
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _)
          -> (
            match sub with
            | Some prefix ->
                if is_function_expr vb.pvb_expr then
                  Hashtbl.replace fi.fi_subfuns (prefix ^ "." ^ name) ()
            | None ->
                Hashtbl.replace fi.fi_vals name ();
                if is_function_expr vb.pvb_expr then
                  Hashtbl.replace fi.fi_funs name ()
                else
                  let body = strip_wrappers vb.pvb_expr in
                  (match body.pexp_desc with
                  | Pexp_apply
                      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                    when is_mutable_ctor (flatten txt) ->
                      Hashtbl.replace fi.fi_muts name ()
                  | _ -> ()))
        | _ -> ()
      in
      let rec scan ~sub items =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) -> List.iter (record_binding ~sub) vbs
            | Pstr_module
                {
                  pmb_name = { txt = Some mname; _ };
                  pmb_expr = { pmod_desc = Pmod_structure inner; _ };
                  _;
                } ->
                let prefix =
                  match sub with
                  | None -> mname
                  | Some p -> p ^ "." ^ mname
                in
                scan ~sub:(Some prefix) inner
            | Pstr_module
                {
                  pmb_name = { txt = Some mname; _ };
                  pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
                  _;
                } ->
                if sub = None then
                  Hashtbl.replace fi.fi_aliases mname (last_of (flatten txt))
            | _ -> ())
          items
      in
      scan ~sub:None ast;
      Some fi

(* ------------------------------------------------------------------ *)
(* Phase 2: body walk, edges, held-mutex tracking                      *)
(* ------------------------------------------------------------------ *)

type flow = FNone | FLock of string | FUnlock of string list

type binding_kind = EShadow | ENode of string

let build ?(register = default_register) ?(defer = default_defer)
    ?(pool = default_pool) files =
  let infos = List.filter_map scan_file files in
  let by_module = Hashtbl.create 32 in
  List.iter
    (fun fi ->
      if not (Hashtbl.mem by_module fi.fi_module) then
        Hashtbl.add by_module fi.fi_module fi)
    infos;
  (* does the file mention Mutex anywhere? coarse "guarded" bit for R9 *)
  let guarded = Hashtbl.create 16 in
  List.iter
    (fun fi ->
      let found = ref false in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; _ } when List.mem "Mutex" (flatten txt) ->
                  found := true
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.structure it fi.fi_ast;
      if !found then Hashtbl.replace guarded fi.fi_module ())
    infos;
  let mutables = Hashtbl.create 32 in
  List.iter
    (fun fi ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = name; _ }
                    when Hashtbl.mem fi.fi_muts name ->
                      let body = strip_wrappers vb.pvb_expr in
                      let ctor =
                        match body.pexp_desc with
                        | Pexp_apply
                            ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
                            String.concat "." (flatten txt)
                        | _ -> "?"
                      in
                      let line, col = loc_pos vb.pvb_loc in
                      let id = fi.fi_module ^ "." ^ name in
                      Hashtbl.replace mutables id
                        {
                          mb_id = id;
                          mb_file = fi.fi_file;
                          mb_module = fi.fi_module;
                          mb_ctor = ctor;
                          mb_line = line;
                          mb_col = col;
                        }
                  | _ -> ())
                vbs
          | _ -> ())
        fi.fi_ast)
    infos;

  (* One full body-walk pass. [wrapper] maps node ids to the mutexes a
     callee acquires directly; pass 1 runs with an empty table, pass 2
     re-runs with pass 1's acquire sets so `with_lock t (fun () -> ..)`
     lambdas carry the wrapper's mutex in their held set. *)
  let run_pass wrapper =
    let g =
      {
        nodes = Hashtbl.create 256;
        mutables;
        guarded;
        reactor_roots = [];
        thread_roots = [];
        task_roots = [];
      }
    in
    let fresh_node fi id line =
      let rec uniq id n =
        let id' = if n = 0 then id else Printf.sprintf "%s~%d" id n in
        if Hashtbl.mem g.nodes id' then uniq id (n + 1) else id'
      in
      let id = uniq id 0 in
      let nd =
        {
          id;
          nd_file = fi.fi_file;
          nd_module = fi.fi_module;
          nd_line = line;
          calls = [];
          acquires = [];
          releases = SS.empty;
          mut_refs = [];
        }
      in
      Hashtbl.add g.nodes id nd;
      nd
    in
    let walk_file fi =
      let add_call nd target kind held loc =
        let line, col = loc_pos loc in
        nd.calls <-
          { ct = target; ckind = kind; cheld = SS.elements held; cline = line;
            ccol = col }
          :: nd.calls
      in
      (* resolve a value path to something edge-worthy *)
      let resolve env path =
        match path with
        | [] -> `None
        | [ x ] -> (
            match List.assoc_opt x env with
            | Some EShadow -> `None
            | Some (ENode id) -> `Node id
            | None ->
                if Hashtbl.mem fi.fi_funs x then
                  `Node (fi.fi_module ^ "." ^ x)
                else if Hashtbl.mem fi.fi_muts x then
                  `Mut (fi.fi_module ^ "." ^ x)
                else if Hashtbl.mem fi.fi_vals x then `None
                else `Ext ("", x))
        | _ -> (
            let x = last_of path in
            let mods = List.rev path |> List.tl |> List.rev in
            (* within-file submodule? *)
            let subkey = String.concat "." mods ^ "." ^ x in
            if Hashtbl.mem fi.fi_subfuns subkey then
              `Node (fi.fi_module ^ "." ^ subkey)
            else
              let m = last_of mods in
              let m =
                match Hashtbl.find_opt fi.fi_aliases m with
                | Some target -> target
                | None -> m
              in
              match Hashtbl.find_opt by_module m with
              | Some fi' ->
                  if Hashtbl.mem fi'.fi_funs x then `Node (m ^ "." ^ x)
                  else if Hashtbl.mem fi'.fi_muts x then `Mut (m ^ "." ^ x)
                  else if Hashtbl.mem fi'.fi_vals x then `None
                  else `Ext (String.concat "." mods, x)
              | None -> `Ext (String.concat "." mods, x))
      in
      (* Name of the mutex in `Mutex.lock <e>`, module-qualified. A
         function-local mutex shares the namespace of its module's
         top-level ones — acceptable conflation for a linter. *)
      let mutex_name e =
        match (strip_wrappers e).pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } ->
            Some (fi.fi_module ^ "." ^ x)
        | Pexp_ident { txt; _ } -> (
            match flatten txt with
            | [] -> None
            | path ->
                let x = last_of path in
                let mods = List.rev path |> List.tl |> List.rev in
                let m = last_of mods in
                let m =
                  match Hashtbl.find_opt fi.fi_aliases m with
                  | Some t -> t
                  | None -> m
                in
                if Hashtbl.mem by_module m then Some (m ^ "." ^ x)
                else Some (fi.fi_module ^ "." ^ x))
        | Pexp_field (_, { txt; _ }) -> (
            match flatten txt with
            | [] -> None
            | path -> Some (fi.fi_module ^ "." ^ last_of path))
        | _ -> None
      in
      let unlocks_in e =
        (* mutex names passed to Mutex.unlock anywhere inside [e] *)
        let acc = ref SS.empty in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e' ->
                (match e'.pexp_desc with
                | Pexp_apply
                    ( { pexp_desc = Pexp_ident { txt; _ }; _ },
                      (_, arg) :: _ )
                  when flatten txt = [ "Mutex"; "unlock" ] -> (
                    match mutex_name arg with
                    | Some m -> acc := SS.add m !acc
                    | None -> ())
                | _ -> ());
                Ast_iterator.default_iterator.expr it e');
          }
        in
        it.expr it e;
        !acc
      in
      let wrapper_mutexes target =
        match target with
        | `Node id -> (
            match Hashtbl.find_opt wrapper id with
            | Some ms -> ms
            | None -> SS.empty)
        | _ -> SS.empty
      in
      (* the walker proper; returns the lock-flow of the expression so
         sequences can thread held sets *)
      let rec walk nd env held e : flow =
        match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match resolve env (flatten txt) with
            | `Node id ->
                add_call nd (Node id) Direct held loc;
                FNone
            | `Mut id ->
                let line, col = loc_pos loc in
                nd.mut_refs <- (id, line, col) :: nd.mut_refs;
                FNone
            | `Ext (m, x) ->
                add_call nd (Ext (m, x)) Direct held loc;
                FNone
            | `None -> FNone)
        | Pexp_apply _ -> walk_apply nd env held e
        | Pexp_sequence (e1, e2) ->
            let held' = apply_flow held (walk nd env held e1) in
            walk nd env held' e2
        | Pexp_let (_, vbs, body) ->
            let fun_vbs, val_vbs =
              List.partition (fun vb -> is_function_expr vb.pvb_expr) vbs
            in
            let named =
              List.filter_map
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = name; _ } ->
                      let line, _ = loc_pos vb.pvb_loc in
                      Some (name, fresh_node fi (nd.id ^ "." ^ name) line, vb)
                  | _ -> None)
                fun_vbs
            in
            (* a recursive group sees its own names; a non-recursive one
               technically does not, but over-approximating is fine *)
            let env' =
              List.fold_left
                (fun env (name, child, _) -> (name, ENode child.id) :: env)
                env named
            in
            List.iter
              (fun (_, child, vb) -> walk_body child env' vb.pvb_expr)
              named;
            let held_after =
              List.fold_left
                (fun held vb ->
                  apply_flow held (walk nd env' held vb.pvb_expr))
                held val_vbs
            in
            let env'' =
              List.fold_left
                (fun env vb ->
                  List.fold_left
                    (fun env v -> (v, EShadow) :: env)
                    env
                    (pat_vars vb.pvb_pat))
                env' val_vbs
            in
            walk nd env'' held_after body
        | Pexp_fun (_, default, pat, body) ->
            (match default with
            | Some d -> ignore (walk nd env held d)
            | None -> ());
            let env' =
              List.fold_left (fun env v -> (v, EShadow) :: env) env
                (pat_vars pat)
            in
            ignore (walk nd env' held body);
            FNone
        | Pexp_function cases ->
            walk_cases nd env held cases;
            FNone
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            ignore (walk nd env held scrut);
            walk_cases nd env held cases;
            FNone
        | Pexp_ifthenelse (c, t, f) ->
            ignore (walk nd env held c);
            ignore (walk nd env held t);
            (match f with
            | Some f -> ignore (walk nd env held f)
            | None -> ());
            FNone
        | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
          ->
            walk nd env held e
        | Pexp_open (_, e) | Pexp_letexception (_, e) ->
            walk nd env held e
        | Pexp_letmodule (_, _, e) -> walk nd env held e
        | Pexp_while (c, body) ->
            ignore (walk nd env held c);
            ignore (walk nd env held body);
            FNone
        | Pexp_for ({ ppat_desc = Ppat_var { txt = v; _ }; _ }, a, b, _, body)
          ->
            ignore (walk nd env held a);
            ignore (walk nd env held b);
            ignore (walk nd ((v, EShadow) :: env) held body);
            FNone
        | _ ->
            shallow_children nd env held e;
            FNone
      and walk_cases nd env held cases =
        List.iter
          (fun c ->
            let env' =
              List.fold_left (fun env v -> (v, EShadow) :: env) env
                (pat_vars c.pc_lhs)
            in
            (match c.pc_guard with
            | Some gd -> ignore (walk nd env' held gd)
            | None -> ());
            ignore (walk nd env' held c.pc_rhs))
          cases
      and shallow_children nd env held e =
        let root = ref true in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e' ->
                if !root then begin
                  root := false;
                  Ast_iterator.default_iterator.expr it e'
                end
                else ignore (walk nd env held e'));
          }
        in
        it.expr it e
      and apply_flow held = function
        | FNone -> held
        | FLock m -> SS.add m held
        | FUnlock ms -> List.fold_left (fun h m -> SS.remove m h) held ms
      and walk_body nd env e =
        (* peel the parameter prefix of a function body *)
        let rec peel env e =
          match e.pexp_desc with
          | Pexp_fun (_, default, pat, body) ->
              (match default with
              | Some d -> ignore (walk nd env SS.empty d)
              | None -> ());
              let env' =
                List.fold_left (fun env v -> (v, EShadow) :: env) env
                  (pat_vars pat)
              in
              peel env' body
          | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
              peel env body
          | Pexp_function cases -> walk_cases nd env SS.empty cases
          | _ -> ignore (walk nd env SS.empty e)
        in
        peel env e
      (* applications: flatten @@ / |> and nested applies, then dispatch
         on the callee *)
      and normalize_apply e args =
        match e.pexp_desc with
        | Pexp_apply (f, more) -> (
            match (f.pexp_desc, more) with
            | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, g); x ] ->
                normalize_apply g (x :: args)
            | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ x; (_, g) ] ->
                normalize_apply g (x :: args)
            | _ -> normalize_apply f (more @ args))
        | _ -> (e, args)
      and walk_fun_arg nd env held ~kind ~as_root arg =
        (* an argument in a "runs elsewhere" position: a lambda becomes
           a synthetic node, a function reference becomes an edge *)
        let arg = strip_wrappers arg in
        match arg.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
            let line, _ = loc_pos arg.pexp_loc in
            let child =
              fresh_node fi (Printf.sprintf "%s.<async:%d>" nd.id line) line
            in
            add_call nd (Node child.id) kind held arg.pexp_loc;
            (match as_root with
            | Some which ->
                add_root which
                  { r_id = child.id; r_file = fi.fi_file; r_line = line }
            | None -> ());
            walk_body child env arg
        | Pexp_ident { txt; loc } -> (
            match resolve env (flatten txt) with
            | `Node id ->
                add_call nd (Node id) kind held loc;
                (match as_root with
                | Some which ->
                    let line, _ = loc_pos loc in
                    add_root which
                      { r_id = id; r_file = fi.fi_file; r_line = line }
                | None -> ())
            | _ -> ignore (walk nd env held arg))
        | _ -> ignore (walk nd env held arg)
      and add_root which r =
        match which with
        | `Reactor -> g.reactor_roots <- r :: g.reactor_roots
        | `Thread -> g.thread_roots <- r :: g.thread_roots
        | `Task -> g.task_roots <- r :: g.task_roots
      and walk_apply nd env held e =
        let callee, args = normalize_apply e [] in
        match callee.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            let path = flatten txt in
            match (path, args) with
            | [ "Mutex"; "lock" ], (_, m) :: _ -> (
                add_call nd (Ext ("Mutex", "lock")) Direct held loc;
                match mutex_name m with
                | Some name ->
                    let line, col = loc_pos loc in
                    nd.acquires <-
                      { am = name; aprotected = false;
                        aheld = SS.elements held; aline = line; acol = col }
                      :: nd.acquires;
                    FLock name
                | None -> FNone)
            | [ "Mutex"; "unlock" ], (_, m) :: _ -> (
                match mutex_name m with
                | Some name ->
                    nd.releases <- SS.add name nd.releases;
                    FUnlock [ name ]
                | None -> FNone)
            | [ "Mutex"; "protect" ], (_, m) :: rest -> (
                add_call nd (Ext ("Mutex", "protect")) Direct held loc;
                match mutex_name m with
                | Some name ->
                    let line, col = loc_pos loc in
                    nd.acquires <-
                      { am = name; aprotected = true;
                        aheld = SS.elements held; aline = line; acol = col }
                      :: nd.acquires;
                    let held' = SS.add name held in
                    List.iter
                      (fun (_, a) -> walk_inline_arg nd env held' a)
                      rest;
                    FNone
                | None ->
                    List.iter (fun (_, a) -> ignore (walk nd env held a)) rest;
                    FNone)
            | [ "Fun"; "protect" ], _ ->
                let finally =
                  List.find_opt
                    (fun (lbl, _) ->
                      match lbl with
                      | Asttypes.Labelled "finally" -> true
                      | _ -> false)
                    args
                in
                let released =
                  match finally with
                  | Some (_, fin) -> unlocks_in fin
                  | None -> SS.empty
                in
                List.iter (fun (_, a) -> walk_inline_arg nd env held a) args;
                if SS.is_empty released then FNone
                else FUnlock (SS.elements released)
            | _, _ when path_matches_name register path ->
                add_call_for_callee nd env held callee loc;
                List.iter
                  (fun (_, a) ->
                    walk_fun_arg nd env SS.empty ~kind:Deferred
                      ~as_root:(Some `Reactor) a)
                  args;
                FNone
            | _, _ when path_matches_name defer path ->
                add_call_for_callee nd env held callee loc;
                List.iter
                  (fun (_, a) ->
                    walk_fun_arg nd env SS.empty ~kind:Deferred
                      ~as_root:(Some `Thread) a)
                  args;
                FNone
            | _, _ when path_matches_name pool path ->
                add_call_for_callee nd env held callee loc;
                List.iter
                  (fun (_, a) ->
                    walk_fun_arg nd env held ~kind:Task ~as_root:(Some `Task)
                      a)
                  args;
                FNone
            | _ ->
                let target = resolve env path in
                (match target with
                | `Node id -> add_call nd (Node id) Direct held loc
                | `Ext (m, x) -> add_call nd (Ext (m, x)) Direct held loc
                | `Mut id ->
                    let line, col = loc_pos loc in
                    nd.mut_refs <- (id, line, col) :: nd.mut_refs
                | `None -> ());
                let held_args = SS.union held (wrapper_mutexes target) in
                List.iter
                  (fun (_, a) -> walk_inline_arg nd env held_args a)
                  args;
                FNone)
        | _ ->
            ignore (walk nd env held callee);
            List.iter (fun (_, a) -> walk_inline_arg nd env held a) args;
            FNone
      and walk_inline_arg nd env held a =
        (* ordinary argument: lambdas are inlined into the current node
           (the callee may invoke them synchronously), idents resolve to
           Direct edges via the generic walk *)
        let a' = strip_wrappers a in
        match a'.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
            let rec peel env e =
              match e.pexp_desc with
              | Pexp_fun (_, d, pat, body) ->
                  (match d with
                  | Some d -> ignore (walk nd env held d)
                  | None -> ());
                  let env' =
                    List.fold_left (fun env v -> (v, EShadow) :: env) env
                      (pat_vars pat)
                  in
                  peel env' body
              | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
                  peel env body
              | Pexp_function cases -> walk_cases nd env held cases
              | _ -> ignore (walk nd env held e)
            in
            peel env a'
        | _ -> ignore (walk nd env held a)
      and add_call_for_callee nd env held callee loc =
        match callee.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match resolve env (flatten txt) with
            | `Node id -> add_call nd (Node id) Direct held loc
            | `Ext (m, x) -> add_call nd (Ext (m, x)) Direct held loc
            | _ -> ())
        | _ -> ()
      in
      (* walk the file's top level *)
      let init = fresh_node fi (fi.fi_module ^ ".<init>") 1 in
      let rec walk_items ~prefix items =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { txt = name; _ }
                    | Ppat_constraint
                        ( { ppat_desc = Ppat_var { txt = name; _ }; _ }, _ )
                      when is_function_expr vb.pvb_expr ->
                        let line, _ = loc_pos vb.pvb_loc in
                        let id =
                          match prefix with
                          | None -> fi.fi_module ^ "." ^ name
                          | Some p -> fi.fi_module ^ "." ^ p ^ "." ^ name
                        in
                        let node = fresh_node fi id line in
                        walk_body node [] vb.pvb_expr
                    | _ -> ignore (walk init [] SS.empty vb.pvb_expr))
                  vbs
            | Pstr_eval (e, _) -> ignore (walk init [] SS.empty e)
            | Pstr_module
                {
                  pmb_name = { txt = Some mname; _ };
                  pmb_expr = { pmod_desc = Pmod_structure inner; _ };
                  _;
                } ->
                let p =
                  match prefix with
                  | None -> mname
                  | Some p -> p ^ "." ^ mname
                in
                walk_items ~prefix:(Some p) inner
            | _ -> ())
          items
      in
      walk_items ~prefix:None fi.fi_ast
    in
    List.iter walk_file infos;
    g
  in
  let g1 = run_pass (Hashtbl.create 0) in
  let wrapper = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id nd ->
      let ms =
        List.fold_left (fun s a -> SS.add a.am s) SS.empty nd.acquires
      in
      if not (SS.is_empty ms) then Hashtbl.replace wrapper id ms)
    g1.nodes;
  run_pass wrapper

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let find_node g id = Hashtbl.find_opt g.nodes id

let node_ids g =
  Hashtbl.fold (fun id _ acc -> id :: acc) g.nodes [] |> List.sort compare
