(* Fixpoint effect propagation over the call graph.

   Every node gets a level in the lattice

       Pure  <  Locks  <  Blocks

   seeded from external calls (Unix.read blocks, Mutex.lock only
   locks, ...) and joined over Direct and Task edges: if f calls g and
   g may block, f may block. Deferred edges do not propagate — handing
   a closure to the executor or a thread is exactly how blocking work
   is kept off the caller's thread, and R7 checks the deferred body
   from its own root instead.

   The distinction between Locks and Blocks is what keeps R7 usable:
   the reactor may take short mutex-protected critical sections
   (metrics counters, the executor's job-queue push), so only Blocks —
   operations with unbounded wait: file and socket I/O, sleeps,
   condition waits, joins — is an R7 finding.

   The same fixpoint also computes each node's transitive acquire set
   (every mutex a call into it may take, itself released or not),
   which R8 uses for double-acquire and lock-order checks. *)

module SS = Set.Make (String)

type level = Pure | Locks | Blocks

let level_rank = function Pure -> 0 | Locks -> 1 | Blocks -> 2
let level_max a b = if level_rank a >= level_rank b then a else b
let level_name = function Pure -> "pure" | Locks -> "locks" | Blocks -> "blocks"

(* ------------------------------------------------------------------ *)
(* Seed sets                                                           *)
(* ------------------------------------------------------------------ *)

let blocking_ext =
  [
    ( "Unix",
      [
        "read"; "write"; "write_substring"; "single_write"; "select";
        "sleep"; "sleepf"; "connect"; "accept"; "recv"; "send"; "sendto";
        "recvfrom"; "getaddrinfo"; "gethostbyname"; "system"; "waitpid";
        "wait"; "openfile";
      ] );
    ("Thread", [ "delay"; "join" ]);
    ("Condition", [ "wait" ]);
    ("Domain", [ "join" ]);
    ("Pool", [ "parallel_init"; "parallel_map" ]);
    ( "In_channel",
      [
        "open_bin"; "open_text"; "open_gen"; "with_open_bin";
        "with_open_text"; "with_open_gen"; "input"; "input_char";
        "input_line"; "input_all"; "really_input"; "really_input_string";
      ] );
    ( "Out_channel",
      [
        "open_bin"; "open_text"; "open_gen"; "with_open_bin";
        "with_open_text"; "with_open_gen"; "output"; "output_string";
        "output_bytes"; "flush";
      ] );
    ( "",
      [
        "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "input_line";
        "input_value"; "really_input"; "really_input_string";
        "output_string"; "output_bytes"; "output_value"; "flush";
      ] );
  ]

(* Whole modules whose *unresolved* externals count as blocking: every
   Fsutil entry point touches the filesystem and every Repo entry point
   may. Calls that resolve to scanned nodes get their real level from
   their bodies instead. *)
let blocking_modules = [ "Fsutil"; "Repo" ]
let locks_ext = [ ("Mutex", [ "lock"; "protect" ]) ]

let ext_level ~modpath ~name =
  let m =
    match List.rev (String.split_on_char '.' modpath) with
    | last :: _ -> last
    | [] -> ""
  in
  if List.mem m blocking_modules then Blocks
  else if
    List.exists (fun (em, ns) -> em = m && List.mem name ns) blocking_ext
  then Blocks
  else if List.exists (fun (em, ns) -> em = m && List.mem name ns) locks_ext
  then Locks
  else Pure

let target_name = function
  | Callgraph.Node id -> id
  | Callgraph.Ext ("", x) -> x
  | Callgraph.Ext (m, x) -> m ^ "." ^ x

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  level : (string, level) Hashtbl.t;
  acq : (string, SS.t) Hashtbl.t;  (* transitive acquires *)
}

let node_level t id =
  match Hashtbl.find_opt t.level id with Some l -> l | None -> Pure

let node_acq t id =
  match Hashtbl.find_opt t.acq id with Some s -> s | None -> SS.empty

let call_level t (c : Callgraph.call) =
  match c.Callgraph.ct with
  | Callgraph.Node id -> node_level t id
  | Callgraph.Ext (m, x) -> ext_level ~modpath:m ~name:x

let call_acq t (c : Callgraph.call) =
  match c.Callgraph.ct with
  | Callgraph.Node id -> node_acq t id
  | Callgraph.Ext _ -> SS.empty

let compute (g : Callgraph.t) =
  let t = { level = Hashtbl.create 256; acq = Hashtbl.create 256 } in
  let propagating (c : Callgraph.call) =
    match c.Callgraph.ckind with
    | Callgraph.Direct | Callgraph.Task -> true
    | Callgraph.Deferred -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun id (nd : Callgraph.node) ->
        let lvl = if nd.Callgraph.acquires = [] then Pure else Locks in
        let lvl =
          List.fold_left
            (fun lvl c ->
              if propagating c then level_max lvl (call_level t c) else lvl)
            lvl nd.Callgraph.calls
        in
        let acq =
          List.fold_left
            (fun s (a : Callgraph.acquire) -> SS.add a.Callgraph.am s)
            SS.empty nd.Callgraph.acquires
        in
        let acq =
          List.fold_left
            (fun s c -> if propagating c then SS.union s (call_acq t c) else s)
            acq nd.Callgraph.calls
        in
        if node_level t id <> lvl then begin
          Hashtbl.replace t.level id lvl;
          changed := true
        end;
        if not (SS.equal (node_acq t id) acq) then begin
          Hashtbl.replace t.acq id acq;
          changed := true
        end)
      g.Callgraph.nodes
  done;
  t

(* A witness chain for a node's level: follow, at each step, the first
   call (in source order) that carries the level, down to the external
   seed. Bounded — the graph may have cycles. *)
let chain (g : Callgraph.t) t id0 =
  let rec go id depth acc =
    if depth > 8 then List.rev ("..." :: acc)
    else
      match Hashtbl.find_opt g.Callgraph.nodes id with
      | None -> List.rev acc
      | Some nd -> (
          let lvl = node_level t id in
          let candidates =
            List.filter
              (fun c ->
                (match c.Callgraph.ckind with
                | Callgraph.Direct | Callgraph.Task -> true
                | Callgraph.Deferred -> false)
                && level_rank (call_level t c) >= level_rank lvl)
              nd.Callgraph.calls
          in
          let first =
            List.sort
              (fun a b -> compare a.Callgraph.cline b.Callgraph.cline)
              candidates
          in
          match first with
          | [] -> List.rev acc
          | c :: _ -> (
              let name = target_name c.Callgraph.ct in
              match c.Callgraph.ct with
              | Callgraph.Ext _ -> List.rev (name :: acc)
              | Callgraph.Node id' ->
                  if List.mem name acc then List.rev acc
                  else go id' (depth + 1) (name :: acc)))
  in
  go id0 0 [ id0 ]
