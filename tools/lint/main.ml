(* dsvc-lint CLI: scan .ml files / trees and report invariant
   violations as file:line:col [rule-id] message.

   Usage: dsvc_lint [--config lint.toml] PATH...
   Exit:  0 clean, 1 diagnostics emitted, 2 usage/config error. *)

open Dsvc_lint

let usage = "usage: dsvc_lint [--config FILE] PATH..."

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Collect .ml files under [path] (or [path] itself), skipping _build
   and dot-directories. Sorted for stable output. *)
let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let config_path = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: file :: rest ->
        config_path := Some file;
        parse_args rest
    | "--config" :: [] ->
        prerr_endline usage;
        exit 2
    | ("-h" | "--help") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let config =
    let explicit = !config_path in
    let path =
      match explicit with
      | Some p -> Some p
      | None -> if Sys.file_exists "lint.toml" then Some "lint.toml" else None
    in
    match path with
    | None -> Lint_config.empty
    | Some p -> (
        match Lint_config.load p with
        | Ok c -> c
        | Error e ->
            Printf.eprintf "dsvc_lint: %s: %s\n" p e;
            exit 2)
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) !paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "dsvc_lint: no such path: %s\n") missing;
    exit 2
  end;
  let files =
    List.fold_left collect [] (List.rev !paths) |> List.sort_uniq compare
  in
  let sources = List.map (fun f -> (f, read_file f)) files in
  let diags = Lint_rules.check_tree ~config sources in
  List.iter (fun d -> print_endline (Lint_rules.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf "dsvc_lint: %d diagnostic%s in %d file%s scanned\n"
      (List.length diags)
      (if List.length diags = 1 then "" else "s")
      (List.length files)
      (if List.length files = 1 then "" else "s");
    exit 1
  end
