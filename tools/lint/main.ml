(* dsvc-lint CLI: scan .ml files / trees and report invariant
   violations. Also reachable as `dsvc lint` (bin/dsvc.ml) and via the
   `dune build @lint` alias.

   Usage: dsvc_lint [--config FILE] [--format text|json|github]
                    [--json-out FILE] PATH...
   Exit:  0 clean, 1 diagnostics emitted, 2 usage/config error. *)

open Dsvc_lint

let usage =
  "usage: dsvc_lint [--config FILE] [--format text|json|github] [--json-out \
   FILE] PATH..."

let () =
  let opts = ref Lint_driver.default_opts in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: file :: rest ->
        opts := { !opts with Lint_driver.config_path = Some file };
        parse_args rest
    | "--format" :: fmt :: rest -> (
        match Lint_report.format_of_string fmt with
        | Some f ->
            opts := { !opts with Lint_driver.format = f };
            parse_args rest
        | None ->
            Printf.eprintf "dsvc_lint: unknown format %S\n%s\n" fmt usage;
            exit 2)
    | "--json-out" :: file :: rest ->
        opts := { !opts with Lint_driver.json_out = Some file };
        parse_args rest
    | [ ("--config" | "--format" | "--json-out") ] ->
        prerr_endline usage;
        exit 2
    | ("-h" | "--help") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        opts :=
          { !opts with Lint_driver.paths = !opts.Lint_driver.paths @ [ p ] };
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !opts.Lint_driver.paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  exit (Lint_driver.run !opts)
