(* Configuration for dsvc-lint: a checked-in TOML-subset file mapping
   rule ids to per-file allowlists, path scopes, and the callgraph
   rules' name lists.

   Grammar (one entry per line):

     # comment
     [rule-id]
     allow    = ["path", "path", ...]   files exempted from the rule
     scope    = ["path-fragment", ...]  files the rule applies to
     register = ["Evloop.add", ...]     R7: callback-registration fns
     defer    = ["submit", ...]         R7: fns whose fn-args run later
     order    = ["Mod.mutex", ...]      R8: global lock order

   Section names and their keys are validated against the rule table —
   a typo in either is a hard error, not a silently ignored entry.
   [validate] additionally checks that every allow/scope path still
   names something on disk, so entries cannot go stale.

   Paths match by *containment* after separator normalization, so the
   same entry matches a file whether the tool is invoked from the repo
   root ("lib/util/pool.ml") or a sandbox ("../lib/util/pool.ml"). *)

type t = {
  allow : (string * string list) list;  (* rule id -> path fragments *)
  scope : (string * string list) list;  (* rule id -> path fragments *)
  names : (string * string * string list) list;  (* rule, key, names *)
}

let empty = { allow = []; scope = []; names = [] }

(* Which keys each section may carry. Path-valued keys (allow/scope)
   are legal everywhere; name lists only where a rule consumes them. *)
let known_sections =
  [
    ("R1-raw-write", []);
    ("R2-unsafe-index", []);
    ("R3-domain-spawn", []);
    ("R3-fork", []);
    ("R4-catch-all", []);
    ("R5-nondet", []);
    ("R6-toplevel-mutable", []);
    ("R7-no-blocking-in-reactor", [ "register"; "defer" ]);
    ("R8-lock-discipline", []);
    ("R8-lock-order", [ "order" ]);
    ("R9-shared-state", []);
  ]

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

(* Substring search, returns true when [needle] occurs in [hay]. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let path_matches ~fragment file = contains (normalize file) (normalize fragment)

let strip s = String.trim s

(* Parse a ["a", "b"] list literal (no escapes needed for paths). *)
let parse_string_list line =
  let line = strip line in
  let n = String.length line in
  if n < 2 || line.[0] <> '[' || line.[n - 1] <> ']' then None
  else begin
    let body = String.sub line 1 (n - 2) in
    let items = String.split_on_char ',' body |> List.map strip in
    let items = List.filter (fun s -> s <> "") items in
    let unquote s =
      let n = String.length s in
      if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
        Some (String.sub s 1 (n - 2))
      else None
    in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | it :: tl -> (
          match unquote it with Some v -> go (v :: acc) tl | None -> None)
    in
    go [] items
  end

let parse source =
  let lines = String.split_on_char '\n' source in
  let section = ref None in
  let allow = ref [] and scope = ref [] and names = ref [] in
  let err = ref None in
  List.iteri
    (fun idx raw ->
      if !err = None then begin
        let lineno = idx + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some i when not (contains raw "\"#") -> String.sub raw 0 i
          | _ -> raw
        in
        let line = strip line in
        if line = "" then ()
        else if
          String.length line >= 2
          && line.[0] = '['
          && line.[String.length line - 1] = ']'
        then begin
          let sect = strip (String.sub line 1 (String.length line - 2)) in
          if not (List.mem_assoc sect known_sections) then
            err :=
              Some
                (Printf.sprintf
                   "line %d: unknown rule section [%s] (known: %s)" lineno
                   sect
                   (String.concat ", " (List.map fst known_sections)))
          else section := Some sect
        end
        else
          match (String.index_opt line '=', !section) with
          | Some eq, Some sect -> (
              let key = strip (String.sub line 0 eq) in
              let value =
                strip (String.sub line (eq + 1) (String.length line - eq - 1))
              in
              let extra_keys =
                try List.assoc sect known_sections with Not_found -> []
              in
              let key_ok =
                List.mem key [ "allow"; "scope" ] || List.mem key extra_keys
              in
              match (key, parse_string_list value) with
              | _, _ when not key_ok ->
                  err :=
                    Some
                      (Printf.sprintf "line %d: key %S is not valid in [%s]"
                         lineno key sect)
              | _, None ->
                  err :=
                    Some
                      (Printf.sprintf "line %d: expected a [\"...\"] list"
                         lineno)
              | "allow", Some vs -> allow := (sect, vs) :: !allow
              | "scope", Some vs -> scope := (sect, vs) :: !scope
              | k, Some vs -> names := (sect, k, vs) :: !names)
          | Some _, None ->
              err :=
                Some
                  (Printf.sprintf "line %d: key outside a [rule] section"
                     lineno)
          | None, _ ->
              err := Some (Printf.sprintf "line %d: cannot parse %S" lineno line)
      end)
    lines;
  match !err with
  | Some e -> Error ("lint config: " ^ e)
  | None ->
      Ok
        {
          allow = List.rev !allow;
          scope = List.rev !scope;
          names = List.rev !names;
        }

let load path =
  try
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse content
  with Sys_error e -> Error e

(* Every allow/scope entry must still point at something on disk under
   [root] (the directory the config file lives in): a renamed file
   would otherwise leave a stale exemption silently matching nothing. *)
let validate ~root t =
  let check_entry (rule, fragments) =
    List.filter_map
      (fun fragment ->
        let frag = normalize fragment in
        let frag =
          let n = String.length frag in
          if n > 0 && frag.[n - 1] = '/' then String.sub frag 0 (n - 1)
          else frag
        in
        let path = Filename.concat root frag in
        if Sys.file_exists path then None
        else
          Some
            (Printf.sprintf "[%s]: path %S does not exist (under %s)" rule
               fragment root))
      fragments
  in
  match List.concat_map check_entry (t.allow @ t.scope) with
  | [] -> Ok ()
  | e :: _ -> Error ("lint config: stale entry " ^ e)

let fragments_for entries rule =
  List.concat_map (fun (r, fs) -> if r = rule then fs else []) entries

let allowed t ~rule ~file =
  List.exists (fun f -> path_matches ~fragment:f file) (fragments_for t.allow rule)

(* A rule with a scope applies only to files matching a fragment; with
   no scope configured, [default] decides (R5 ships with a built-in
   scope so an empty config stays meaningful). *)
let in_scope t ~rule ~file ~default =
  match fragments_for t.scope rule with
  | [] -> List.exists (fun f -> path_matches ~fragment:f file) default
  | fs -> List.exists (fun f -> path_matches ~fragment:f file) fs

(* Name lists for the callgraph rules ([default] when unset). *)
let names_for t ~rule ~key ~default =
  match
    List.concat_map
      (fun (r, k, vs) -> if r = rule && k = key then vs else [])
      t.names
  with
  | [] -> default
  | vs -> vs
