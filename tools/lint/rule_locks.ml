(* R8 lock discipline, three checks over the call graph:

   R8-unreleased-lock   a raw `Mutex.lock m` whose function body shows
                        no `Mutex.unlock m` on any exit — neither
                        inline nor in a `Fun.protect ~finally`. Use
                        Mutex.protect, or pair the lock with a finally.

   R8-double-acquire    a call made while holding m into code whose
                        transitive acquire set contains m again (OCaml
                        mutexes are not reentrant: this is a guaranteed
                        deadlock on the path that reaches it), or a
                        literal re-lock of a held mutex.

   R8-lock-order        the checked-in global order (lint.toml
                        [R8-lock-order] order = [...]) is violated: a
                        mutex earlier in the list is acquired while a
                        later one is held. Only mutexes named in the
                        order list participate; everything else is
                        unordered by design.

   Held sets come from the builder: Mutex.lock/unlock sequencing,
   Mutex.protect bodies, Fun.protect finallys, and the with_lock
   wrapper inference (a lambda handed to a callee that itself acquires
   a mutex is analyzed with that mutex held). *)

module SS = Set.Make (String)

let rule_release = "R8-unreleased-lock"
let rule_double = "R8-double-acquire"
let rule_order = "R8-lock-order"

let check (g : Callgraph.t) (eff : Effects.t) ~(order : string list) :
    Lint_diag.t list =
  let diags = ref [] in
  let add (nd : Callgraph.node) line col rule msg =
    diags :=
      { Lint_diag.file = nd.Callgraph.nd_file; line; col; rule; msg }
      :: !diags
  in
  let idx m =
    let rec go i = function
      | [] -> None
      | x :: tl -> if x = m then Some i else go (i + 1) tl
    in
    go 0 order
  in
  let order_violation ~held ~acquired =
    (* acquiring [acquired] while holding [held]: out of order when the
       acquired mutex sorts strictly before a held one *)
    List.filter_map
      (fun h ->
        match (idx h, idx acquired) with
        | Some ih, Some ia when ia < ih -> Some h
        | _ -> None)
      held
  in
  Hashtbl.iter
    (fun _ (nd : Callgraph.node) ->
      (* R8a: raw locks need a visible release in the same function *)
      List.iter
        (fun (a : Callgraph.acquire) ->
          if
            (not a.Callgraph.aprotected)
            && not (SS.mem a.Callgraph.am nd.Callgraph.releases)
          then
            add nd a.Callgraph.aline a.Callgraph.acol rule_release
              (Printf.sprintf
                 "Mutex.lock %s with no Mutex.unlock on this function's \
                  exits; use Mutex.protect or Fun.protect ~finally:(fun () \
                  -> Mutex.unlock ...)"
                 a.Callgraph.am);
          (* literal re-lock of a held mutex *)
          if List.mem a.Callgraph.am a.Callgraph.aheld then
            add nd a.Callgraph.aline a.Callgraph.acol rule_double
              (Printf.sprintf
                 "%s is re-acquired while already held (OCaml mutexes are \
                  not reentrant: this deadlocks)"
                 a.Callgraph.am);
          List.iter
            (fun h ->
              add nd a.Callgraph.aline a.Callgraph.acol rule_order
                (Printf.sprintf
                   "%s is acquired while %s is held, violating the declared \
                    lock order (lint.toml [R8-lock-order])"
                   a.Callgraph.am h))
            (order_violation ~held:a.Callgraph.aheld
               ~acquired:a.Callgraph.am))
        nd.Callgraph.acquires;
      (* R8b/R8c across calls: what might the callee acquire while we
         hold something? *)
      List.iter
        (fun (c : Callgraph.call) ->
          match c.Callgraph.ckind with
          | Callgraph.Deferred -> ()
          | Callgraph.Direct | Callgraph.Task ->
              if c.Callgraph.cheld <> [] then begin
                let callee_acq = Effects.call_acq eff c in
                if not (SS.is_empty callee_acq) then begin
                  let name = Effects.target_name c.Callgraph.ct in
                  List.iter
                    (fun h ->
                      if SS.mem h callee_acq then
                        add nd c.Callgraph.cline c.Callgraph.ccol rule_double
                          (Printf.sprintf
                             "call into %s may re-acquire %s, already held \
                              here (deadlock on that path)"
                             name h))
                    c.Callgraph.cheld;
                  SS.iter
                    (fun acquired ->
                      List.iter
                        (fun h ->
                          add nd c.Callgraph.cline c.Callgraph.ccol
                            rule_order
                            (Printf.sprintf
                               "call into %s acquires %s while %s is held, \
                                violating the declared lock order \
                                (lint.toml [R8-lock-order])"
                               name acquired h))
                        (order_violation ~held:c.Callgraph.cheld ~acquired))
                    callee_acq
                end
              end)
        nd.Callgraph.calls)
    g.Callgraph.nodes;
  List.sort Lint_diag.compare_diag !diags
