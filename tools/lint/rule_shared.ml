(* R9-shared-state: the interprocedural upgrade of R6.

   A module-level mutable binding (ref / Hashtbl / Buffer / ...) is a
   finding when, in a module that never touches Mutex, it is reachable
   from BOTH sides of a concurrency boundary:

     - from a Pool task body (code handed to Pool.parallel_init /
       parallel_map, running on a worker domain), and
     - from thread/reactor code (bodies handed to Thread.create,
       submit, Domain.spawn, or registered as Evloop callbacks).

   R6 flags any mutable state in a module referenced from a
   Pool-using file — syntactic, so it cannot tell a read-only lookup
   table from genuinely shared state. R9 walks the call graph instead:
   only state that concurrent executors can actually reach, in a
   module with no mutex to guard it, is reported. The finding sits on
   the binding; (* lint: shared-ok <reason> *) suppresses it there. *)

module SS = Set.Make (String)

let rule = "R9-shared-state"

(* Direct+Task closure from a root set. Deferred targets are their own
   roots, collected by the builder, so following Direct edges is
   enough to stay on one executor's side of the boundary. *)
let closure (g : Callgraph.t) roots =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt g.Callgraph.nodes id with
      | None -> ()
      | Some nd ->
          List.iter
            (fun (c : Callgraph.call) ->
              match (c.Callgraph.ckind, c.Callgraph.ct) with
              | (Callgraph.Direct | Callgraph.Task), Callgraph.Node id' ->
                  visit id'
              | _ -> ())
            nd.Callgraph.calls
    end
  in
  List.iter (fun (r : Callgraph.root) -> visit r.Callgraph.r_id) roots;
  seen

let check (g : Callgraph.t) : Lint_diag.t list =
  let task_side = closure g g.Callgraph.task_roots in
  let thread_side =
    closure g (g.Callgraph.thread_roots @ g.Callgraph.reactor_roots)
  in
  let refs_from side mb_id =
    Hashtbl.fold
      (fun id (nd : Callgraph.node) acc ->
        if Hashtbl.mem side id then
          List.fold_left
            (fun acc (m, line, _) ->
              if m = mb_id then (nd.Callgraph.id, line) :: acc else acc)
            acc nd.Callgraph.mut_refs
        else acc)
      g.Callgraph.nodes []
    |> List.sort compare
  in
  let diags = ref [] in
  Hashtbl.iter
    (fun _ (mb : Callgraph.mutable_binding) ->
      if not (Hashtbl.mem g.Callgraph.guarded mb.Callgraph.mb_module) then begin
        let from_task = refs_from task_side mb.Callgraph.mb_id in
        let from_thread = refs_from thread_side mb.Callgraph.mb_id in
        match (from_task, from_thread) with
        | (t_id, t_line) :: _, (th_id, th_line) :: _ ->
            diags :=
              {
                Lint_diag.file = mb.Callgraph.mb_file;
                line = mb.Callgraph.mb_line;
                col = mb.Callgraph.mb_col;
                rule;
                msg =
                  Printf.sprintf
                    "module-level mutable state %s (%s) is reached from a \
                     Pool task (%s, line %d) and from thread/reactor code \
                     (%s, line %d) but %s has no mutex; guard it or \
                     justify with (* lint: shared-ok <reason> *)"
                    mb.Callgraph.mb_id mb.Callgraph.mb_ctor t_id t_line
                    th_id th_line mb.Callgraph.mb_module;
              }
              :: !diags
        | _ -> ()
      end)
    g.Callgraph.mutables;
  List.sort Lint_diag.compare_diag !diags
