(* The dsvc-lint rule engine: parses .ml files into a Parsetree with
   compiler-libs and enforces the repository's static invariants.

   R1-raw-write        raw file-writing primitives confined to Fsutil
   R2-unsafe-index     unsafe_* reads: allowlisted files only, each
                       use justified by an adjacent lint: unsafe-ok
   R3-domain-spawn     Domain.spawn confined to the Pool module
   R3-fork             Unix.fork confined to the lock probe
   R4-catch-all        `with _ ->` / dropped-exception handlers need
                       a lint: swallow-ok justification
   R5-nondet           nondeterminism sources banned in solver and
                       generator tiers (deterministic-plan invariant)
   R6-toplevel-mutable module-level mutable state in any module
                       reachable from a Pool-parallel call site

   The interprocedural rules live in their own modules on top of the
   Callgraph/Effects engine and run from [check_tree]:

   R7-no-blocking-in-reactor   rule_reactor.ml   (reactor-ok)
   R8-unreleased-lock /
   R8-double-acquire /
   R8-lock-order               rule_locks.ml     (lock-ok)
   R9-shared-state             rule_shared.ml    (shared-ok)

   Diagnostics carry file:line:col and a rule id; suppression comments
   ([lint: <key> <reason>]) on the same line or the line above silence
   a single finding, and lint.toml carries the per-file allowlists. *)

type diagnostic = Lint_diag.t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let compare_diag = Lint_diag.compare_diag
let to_string = Lint_diag.to_string

(* ------------------------------------------------------------------ *)
(* Comment scanning: suppressions live in comments, which the parser
   discards, so a small scanner recovers them with line spans. It
   understands nested comments, string literals (inside and outside
   comments — the OCaml lexer does too), {|quoted|} strings and char
   literals well enough for syntactically valid source. *)
(* ------------------------------------------------------------------ *)

type suppression = { key : string; s_line : int; e_line : int }

let scan_comments src =
  let n = String.length src in
  let res = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then incr line;
      incr i
    end
  in
  let skip_string () =
    (* at the opening quote *)
    let b = Buffer.create 16 in
    Buffer.add_char b src.[!i];
    advance ();
    while !i < n && src.[!i] <> '"' do
      if src.[!i] = '\\' && !i + 1 < n then begin
        Buffer.add_char b src.[!i];
        advance ();
        Buffer.add_char b src.[!i];
        advance ()
      end
      else begin
        Buffer.add_char b src.[!i];
        advance ()
      end
    done;
    if !i < n then begin
      Buffer.add_char b src.[!i];
      advance ()
    end;
    Buffer.contents b
  in
  let skip_quoted_string () =
    (* at '{'; only consumes a {id|...|id} form, else just the brace *)
    let j = ref (!i + 1) in
    while
      !j < n && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let close = "|" ^ id ^ "}" in
      let len = String.length close in
      while !i <= !j do
        advance ()
      done;
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + len <= n && String.sub src !i len = close then begin
          for _ = 1 to len do
            advance ()
          done;
          closed := true
        end
        else advance ()
      done
    end
    else advance ()
  in
  let skip_comment () =
    (* at the '(' of an opening "(*" *)
    let start = !line in
    let b = Buffer.create 64 in
    advance ();
    advance ();
    let depth = ref 1 in
    while !i < n && !depth > 0 do
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        incr depth;
        Buffer.add_string b "(*";
        advance ();
        advance ()
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        decr depth;
        if !depth > 0 then Buffer.add_string b "*)";
        advance ();
        advance ()
      end
      else if src.[!i] = '"' then Buffer.add_string b (skip_string ())
      else begin
        Buffer.add_char b src.[!i];
        advance ()
      end
    done;
    res := (Buffer.contents b, start, !line) :: !res
  in
  while !i < n do
    match src.[!i] with
    | '"' -> ignore (skip_string ())
    | '(' when !i + 1 < n && src.[!i + 1] = '*' -> skip_comment ()
    | '{' -> skip_quoted_string ()
    | '\'' ->
        (* char literal or type variable *)
        if !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\' then begin
          advance ();
          advance ();
          advance ()
        end
        else if !i + 1 < n && src.[!i + 1] = '\\' then begin
          advance ();
          advance ();
          while !i < n && src.[!i] <> '\'' do
            advance ()
          done;
          advance ()
        end
        else advance ()
    | _ -> advance ()
  done;
  List.rev !res

(* "lint: <key>" anywhere in a comment, key of the form [a-z-]+. *)
let suppression_of_comment (text, s_line, e_line) =
  let marker = "lint:" in
  let mn = String.length marker and n = String.length text in
  let rec find i =
    if i + mn > n then None
    else if String.sub text i mn = marker then Some (i + mn)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
      let j = ref j in
      while !j < n && text.[!j] = ' ' do
        incr j
      done;
      let k = ref !j in
      while
        !k < n
        && match text.[!k] with 'a' .. 'z' | '-' -> true | _ -> false
      do
        incr k
      done;
      if !k > !j then Some { key = String.sub text !j (!k - !j); s_line; e_line }
      else None

let suppressions src = List.filter_map suppression_of_comment (scan_comments src)

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)
(* ------------------------------------------------------------------ *)

open Parsetree

(* lint: swallow-ok Longident.flatten fatals on Lapply paths, which
   cannot name an identifier any rule tracks; an empty path is right *)
let flatten lid = try Longident.flatten lid with _ -> []

let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

let has_module m path = List.mem m path

(* Is [name] referenced as a plain identifier anywhere in [body]? *)
let var_used name body =
  let used = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident v; _ } when v = name ->
              used := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  !used

(* Peel wrappers off a top-level binding body to find what value the
   module actually retains. *)
let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _)
  | Pexp_open (_, e)
  | Pexp_sequence (_, e)
  | Pexp_let (_, _, e) ->
      peel e
  | _ -> e

let mutable_ctors =
  [
    ("Hashtbl", "create");
    ("Buffer", "create");
    ("Queue", "create");
    ("Stack", "create");
    ("Array", "make");
    ("Array", "init");
    ("Array", "create_float");
    ("Bytes", "create");
    ("Bytes", "make");
    ("Weak", "create");
  ]

let is_mutable_ctor path =
  last_of path = "ref"
  || List.exists
       (fun (m, f) -> has_module m path && last_of path = f)
       mutable_ctors

let nondet_idents =
  [
    (("Random", "self_init"), "seeds from the environment");
    (("Random", "make_self_init"), "seeds from the environment");
    (("Sys", "time"), "wall-clock dependent");
    (("Unix", "gettimeofday"), "wall-clock dependent");
    (("Unix", "time"), "wall-clock dependent");
    (("Hashtbl", "hash"), "polymorphic hash is representation-dependent");
    (("Hashtbl", "seeded_hash"), "polymorphic hash is representation-dependent");
    (("Hashtbl", "hash_param"), "polymorphic hash is representation-dependent");
  ]

let raw_open_idents = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let out_channel_openers =
  [ "open_bin"; "open_text"; "open_gen"; "with_open_bin"; "with_open_text";
    "with_open_gen" ]

let write_flags = [ "O_WRONLY"; "O_RDWR"; "O_CREAT"; "O_APPEND"; "O_TRUNC" ]

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)
(* ------------------------------------------------------------------ *)

type facts = {
  fdiags : diagnostic list;  (* R1-R5, suppression-filtered *)
  fmodule : string;
  frefs : string list;  (* module names referenced by this file *)
  fuses_pool : bool;  (* contains a Pool.parallel_* call site *)
  fmutables : diagnostic list;  (* R6 candidates, suppression-filtered *)
}

let module_name_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let r5_default_scope = [ "lib/core/"; "lib/workload/" ]

let analyze ~config ~filename source =
  let sup = suppressions source in
  let suppressed key line =
    List.exists
      (fun s -> s.key = key && s.s_line <= line && line <= s.e_line + 1)
      sup
  in
  let diags = ref [] and mutables = ref [] in
  let refs = ref [] and uses_pool = ref false in
  let add ?(store = diags) ~rule ~sup_key loc msg =
    let line, col = loc_pos loc in
    if sup_key = "" || not (suppressed sup_key line) then
      store := { file = filename; line; col; rule; msg } :: !store
  in
  let record_path path =
    List.iter
      (fun c ->
        if c <> "" && c.[0] >= 'A' && c.[0] <= 'Z' then refs := c :: !refs)
      path
  in
  let r5_active =
    Lint_config.in_scope config ~rule:"R5-nondet" ~file:filename
      ~default:r5_default_scope
  in
  let check_ident path loc =
    let last = last_of path in
    (* R1: raw write primitives *)
    if
      List.mem last raw_open_idents
      || (has_module "Out_channel" path && List.mem last out_channel_openers)
    then
      if not (Lint_config.allowed config ~rule:"R1-raw-write" ~file:filename)
      then
        add ~rule:"R1-raw-write" ~sup_key:"raw-write-ok" loc
          (Printf.sprintf
             "raw file-writing primitive %s: route persistent writes \
              through Fsutil.write_file_atomic (or Fsutil.write_file for \
              exports)"
             (String.concat "." path));
    (* R2: unsafe indexing *)
    if
      String.length last > 7
      && String.sub last 0 7 = "unsafe_"
      && (has_module "String" path || has_module "Bytes" path
        || has_module "Array" path || has_module "Bigarray" path)
    then begin
      if Lint_config.allowed config ~rule:"R2-unsafe-index" ~file:filename then
        add ~rule:"R2-unsafe-index" ~sup_key:"unsafe-ok" loc
          (Printf.sprintf
             "%s needs an adjacent (* lint: unsafe-ok <bounds proof> *) \
              comment"
             (String.concat "." path))
      else
        (* outside the allowlist no comment can justify it *)
        add ~rule:"R2-unsafe-index" ~sup_key:"" loc
          (Printf.sprintf
             "%s is forbidden outside the audited delta fast paths \
              (lint.toml [R2-unsafe-index])"
             (String.concat "." path))
    end;
    (* R3: domain spawns and forks *)
    if has_module "Domain" path && last = "spawn" then begin
      if not (Lint_config.allowed config ~rule:"R3-domain-spawn" ~file:filename)
      then
        add ~rule:"R3-domain-spawn" ~sup_key:"" loc
          "Domain.spawn outside the Pool module: all parallelism goes \
           through Versioning_util.Pool"
    end;
    if has_module "Unix" path && last = "fork" then begin
      if not (Lint_config.allowed config ~rule:"R3-fork" ~file:filename) then
        add ~rule:"R3-fork" ~sup_key:"" loc
          "Unix.fork is illegal once domains may have spawned; use a \
           spawned probe executable instead"
    end;
    (* R5: nondeterminism sources in deterministic tiers *)
    if r5_active then
      List.iter
        (fun ((m, f), why) ->
          if has_module m path && last = f then
            add ~rule:"R5-nondet" ~sup_key:"nondet-ok" loc
              (Printf.sprintf
                 "%s in a deterministic-plan module (%s); derive from the \
                  seeded Prng or plumb the value in"
                 (String.concat "." path) why))
        nondet_idents;
    (* R6 roots: Pool call sites *)
    if
      has_module "Pool" path
      && (last = "parallel_init" || last = "parallel_map")
    then uses_pool := true
  in
  let expr_hook it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let path = flatten txt in
        record_path path;
        check_ident path loc
    | Pexp_construct ({ txt; _ }, _) -> record_path (flatten txt)
    | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) ->
        record_path (flatten txt)
    | Pexp_record (fields, _) ->
        List.iter (fun ({ Location.txt; _ }, _) -> record_path (flatten txt)) fields
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let path = flatten txt in
        (* R1: Unix.openfile with write flags *)
        if has_module "Unix" path && last_of path = "openfile" then begin
          let found_write = ref false in
          let scan =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun it e ->
                  (match e.pexp_desc with
                  | Pexp_construct ({ txt; _ }, _)
                    when List.mem (last_of (flatten txt)) write_flags ->
                      found_write := true
                  | _ -> ());
                  Ast_iterator.default_iterator.expr it e);
            }
          in
          List.iter (fun (_, a) -> scan.expr scan a) args;
          if
            !found_write
            && not
                 (Lint_config.allowed config ~rule:"R1-raw-write"
                    ~file:filename)
          then
            add ~rule:"R1-raw-write" ~sup_key:"raw-write-ok" loc
              "Unix.openfile with write flags: route writes through \
               Fsutil.write_file_atomic"
        end;
        (* R5: polymorphic compare applied to float literals *)
        if r5_active && (match txt with Longident.Lident "compare" -> true | _ -> false)
        then begin
          let is_float_lit (_, a) =
            match a.pexp_desc with
            | Pexp_constant (Pconst_float _) -> true
            | _ -> false
          in
          if List.exists is_float_lit args then
            add ~rule:"R5-nondet" ~sup_key:"nondet-ok" loc
              "polymorphic compare on floats: use Float.compare (NaN \
               ordering is unspecified under polymorphic compare)"
        end
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                add ~rule:"R4-catch-all" ~sup_key:"swallow-ok" c.pc_lhs.ppat_loc
                  "catch-all `with _ ->` swallows every exception \
                   (including Out_of_memory and Stack_overflow); match \
                   specific exceptions or justify with (* lint: \
                   swallow-ok <reason> *)"
            | Ppat_var { txt = v; _ } when not (var_used v c.pc_rhs) ->
                add ~rule:"R4-catch-all" ~sup_key:"swallow-ok" c.pc_lhs.ppat_loc
                  (Printf.sprintf
                     "handler binds %s but drops it; log it, re-raise it, \
                      or justify with (* lint: swallow-ok <reason> *)"
                     v)
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let pat_hook it p =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> record_path (flatten txt)
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let typ_hook it t =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> record_path (flatten txt)
    | _ -> ());
    Ast_iterator.default_iterator.typ it t
  in
  let module_expr_hook it m =
    (match m.pmod_desc with
    | Pmod_ident { txt; _ } -> record_path (flatten txt)
    | _ -> ());
    Ast_iterator.default_iterator.module_expr it m
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      pat = pat_hook;
      typ = typ_hook;
      module_expr = module_expr_hook;
    }
  in
  (* R6: module-level mutable state. Collected for every file; the
     cross-file pass keeps only modules reachable from Pool regions. *)
  let rec scan_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let body = peel vb.pvb_expr in
                match body.pexp_desc with
                | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                  when is_mutable_ctor (flatten txt) ->
                    add ~store:mutables ~rule:"R6-toplevel-mutable"
                      ~sup_key:"mutable-ok" vb.pvb_loc
                      (Printf.sprintf
                         "module-level mutable state (%s) in a module \
                          reachable from a Pool-parallel region; make it \
                          domain-local or justify with (* lint: mutable-ok \
                          <reason> *)"
                         (String.concat "." (flatten txt)))
                | _ -> ())
              vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ }
          ->
            scan_structure sub
        | _ -> ())
      items
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  (match Parse.implementation lexbuf with
  | ast ->
      iter.structure iter ast;
      scan_structure ast
  | exception e ->
      let line, col, detail =
        match Location.error_of_exn e with
        | Some (`Ok err) ->
            let main = err.Location.main in
            let l, c = loc_pos main.Location.loc in
            (l, c, Format.asprintf "%t" main.Location.txt)
        | _ -> (1, 0, Printexc.to_string e)
      in
      add ~rule:"parse-error" ~sup_key:""
        {
          Location.loc_start =
            { Lexing.pos_fname = filename; pos_lnum = line; pos_bol = 0;
              pos_cnum = col };
          loc_end =
            { Lexing.pos_fname = filename; pos_lnum = line; pos_bol = 0;
              pos_cnum = col };
          loc_ghost = false;
        }
        ("cannot parse: " ^ detail));
  {
    fdiags = List.rev !diags;
    fmodule = module_name_of_file filename;
    frefs = List.sort_uniq compare !refs;
    fuses_pool = !uses_pool;
    fmutables = List.rev !mutables;
  }

(* ------------------------------------------------------------------ *)
(* Cross-file passes: R6 reachability, then the callgraph rules        *)
(* ------------------------------------------------------------------ *)

(* Suppression key for a tree-rule diagnostic, by rule-id prefix. *)
let tree_sup_key rule =
  let has_prefix p =
    String.length rule >= String.length p
    && String.sub rule 0 (String.length p) = p
  in
  if has_prefix "R7-" then Some "reactor-ok"
  else if has_prefix "R8-" then Some "lock-ok"
  else if has_prefix "R9-" then Some "shared-ok"
  else None

let check_callgraph ~config files =
  let names key default =
    Lint_config.names_for config ~rule:"R7-no-blocking-in-reactor" ~key
      ~default
  in
  let register = names "register" Callgraph.default_register in
  let defer = names "defer" Callgraph.default_defer in
  let order =
    Lint_config.names_for config ~rule:"R8-lock-order" ~key:"order"
      ~default:[]
  in
  let g = Callgraph.build ~register ~defer files in
  let eff = Effects.compute g in
  let diags =
    Rule_reactor.check g eff
    @ Rule_locks.check g eff ~order
    @ Rule_shared.check g
  in
  (* suppression comments filter here: the per-file pass never saw
     these rules *)
  let sups = Hashtbl.create 32 in
  List.iter (fun (file, src) -> Hashtbl.replace sups file (suppressions src))
    files;
  List.filter
    (fun (d : Lint_diag.t) ->
      match tree_sup_key d.rule with
      | None -> true
      | Some key ->
          let file_sups =
            match Hashtbl.find_opt sups d.file with
            | Some s -> s
            | None -> []
          in
          not
            (List.exists
               (fun s ->
                 s.key = key && s.s_line <= d.line && d.line <= s.e_line + 1)
               file_sups))
    diags

let check_tree ~config files =
  let facts =
    List.map (fun (file, src) -> analyze ~config ~filename:file src) files
  in
  let by_name = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.add by_name f.fmodule f) facts;
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.add reachable name ();
      List.iter
        (fun f -> List.iter visit f.frefs)
        (Hashtbl.find_all by_name name)
    end
  in
  List.iter (fun f -> if f.fuses_pool then visit f.fmodule) facts;
  List.concat_map
    (fun f ->
      f.fdiags
      @ (if Hashtbl.mem reachable f.fmodule then f.fmutables else []))
    facts
  @ check_callgraph ~config files
  |> List.sort compare_diag

let check_source ~config ~filename source =
  check_tree ~config [ (filename, source) ]
