(* R7-no-blocking-in-reactor: nothing transitively blocking may run on
   the event-loop thread.

   Roots are every closure registered as an Evloop callback
   (`Evloop.add` fd handlers, `Evloop.post` jobs). From each root we
   walk Direct (and Task) edges — the code the reactor itself executes
   — and report the first frontier where it crosses into Blocks
   territory:

     - an external blocking call (`Unix.read`) is reported at its own
       site, where a (* lint: reactor-ok <reason> *) comment can sit
       next to the evidence that the fd is nonblocking;
     - a call into a *scanned* blocking function in the same file is
       descended into, so the finding again lands on the primitive;
     - a call into a blocking function in another module (the
       handler-called-directly-from-the-callback mistake) is reported
       at the call site with the witness chain, because the callee is
       legitimately blocking for its executor-side callers and must
       not be the thing annotated.

   Locks-level calls (short mutex sections: metrics counters, the
   executor's queue push) pass — that is the flag's designed
   threshold, documented in DESIGN.md section 14. *)

let rule = "R7-no-blocking-in-reactor"

let check (g : Callgraph.t) (eff : Effects.t) : Lint_diag.t list =
  let diags = ref [] in
  let visited = Hashtbl.create 64 in
  let add (nd : Callgraph.node) (c : Callgraph.call) (root : Callgraph.root)
      msg =
    diags :=
      {
        Lint_diag.file = nd.Callgraph.nd_file;
        line = c.Callgraph.cline;
        col = c.Callgraph.ccol;
        rule;
        msg =
          Printf.sprintf
            "%s [reactor callback registered at %s:%d]; defer the work \
             (submit / Evloop.post) or justify with (* lint: reactor-ok \
             <reason> *)"
            msg root.Callgraph.r_file root.Callgraph.r_line;
      }
      :: !diags
  in
  let rec visit root id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      match Hashtbl.find_opt g.Callgraph.nodes id with
      | None -> ()
      | Some nd ->
          List.iter
            (fun (c : Callgraph.call) ->
              match c.Callgraph.ckind with
              | Callgraph.Deferred -> ()
              | Callgraph.Direct | Callgraph.Task -> (
                  let lvl = Effects.call_level eff c in
                  match c.Callgraph.ct with
                  | Callgraph.Ext (m, x) ->
                      if lvl = Effects.Blocks then
                        add nd c root
                          (Printf.sprintf "blocking call %s on the reactor \
                                           thread"
                             (if m = "" then x else m ^ "." ^ x))
                  | Callgraph.Node id' -> (
                      match Hashtbl.find_opt g.Callgraph.nodes id' with
                      | None -> ()
                      | Some tgt ->
                          if lvl <> Effects.Blocks then visit root id'
                          else if
                            tgt.Callgraph.nd_file = nd.Callgraph.nd_file
                          then visit root id'
                          else
                            add nd c root
                              (Printf.sprintf
                                 "call into %s, which may block (%s), on \
                                  the reactor thread"
                                 id'
                                 (String.concat " -> "
                                    (Effects.chain g eff id'))))))
            nd.Callgraph.calls
    end
  in
  let seen_roots = Hashtbl.create 16 in
  List.iter
    (fun (r : Callgraph.root) ->
      if not (Hashtbl.mem seen_roots r.Callgraph.r_id) then begin
        Hashtbl.replace seen_roots r.Callgraph.r_id ();
        visit r r.Callgraph.r_id
      end)
    g.Callgraph.reactor_roots;
  List.rev !diags
