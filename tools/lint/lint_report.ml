(* Output formats for dsvc-lint diagnostics.

   text    file:line:col [rule] message            (human, default)
   json    {"version":1,"files_scanned":N,
            "diagnostics":[{file,line,col,rule,msg}]}
   github  ::error file=F,line=L,col=C::[rule] msg (CI annotations)

   The JSON form is the machine interface: CI turns it into ::error
   annotations and archives it as an artifact, so its field names are
   part of the tool's contract. *)

type format = Text | Json | Github

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "github" -> Some Github
  | _ -> None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json (d : Lint_diag.t) =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
    (json_escape d.Lint_diag.file)
    d.Lint_diag.line d.Lint_diag.col
    (json_escape d.Lint_diag.rule)
    (json_escape d.Lint_diag.msg)

let to_json ~files_scanned diags =
  Printf.sprintf "{\"version\":1,\"files_scanned\":%d,\"diagnostics\":[%s]}\n"
    files_scanned
    (String.concat "," (List.map diag_json diags))

(* One physical line per annotation: GitHub's parser stops at the
   first newline. *)
let oneline s = String.map (fun c -> if c = '\n' then ' ' else c) s

let github_line (d : Lint_diag.t) =
  Printf.sprintf "::error file=%s,line=%d,col=%d::[%s] %s" d.Lint_diag.file
    d.Lint_diag.line d.Lint_diag.col d.Lint_diag.rule
    (oneline d.Lint_diag.msg)

let print format ~files_scanned diags =
  match format with
  | Text -> List.iter (fun d -> print_endline (Lint_diag.to_string d)) diags
  | Github -> List.iter (fun d -> print_endline (github_line d)) diags
  | Json -> print_string (to_json ~files_scanned diags)
