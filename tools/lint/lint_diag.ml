(* The diagnostic record shared by every dsvc-lint rule, per-file and
   interprocedural alike: file:line:col, a stable rule id, and a
   human-oriented message. Kept in its own module so the callgraph
   rules (R7-R9) and the Parsetree rules (R1-R6) can both emit without
   a dependency cycle. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let compare_diag a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.col b.col with 0 -> compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.msg
