(* Shared driver for the two dsvc-lint front ends (tools/lint/main.exe
   and `dsvc lint`): file collection, config loading + validation,
   running the rules, and rendering the report.

   Exit codes (the tool's contract, used by CI and the @lint alias):
     0  clean
     1  diagnostics emitted
     2  usage error, unreadable path, or invalid lint.toml *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Collect .ml files under [path] (or [path] itself), skipping _build
   and dot-directories. Sorted for stable output. *)
let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

type opts = {
  config_path : string option;  (* None: ./lint.toml when present *)
  format : Lint_report.format;
  json_out : string option;  (* also write a JSON report here *)
  paths : string list;
}

let default_opts =
  { config_path = None; format = Lint_report.Text; json_out = None; paths = [] }

(* Returns the exit code; all output goes to stdout/stderr. *)
let run opts =
  if opts.paths = [] then begin
    prerr_endline "dsvc-lint: no paths to scan";
    2
  end
  else begin
    let config_file =
      match opts.config_path with
      | Some p -> Some p
      | None -> if Sys.file_exists "lint.toml" then Some "lint.toml" else None
    in
    let config_result =
      match config_file with
      | None -> Ok Lint_config.empty
      | Some p -> (
          match Lint_config.load p with
          | Error e -> Error (Printf.sprintf "%s: %s" p e)
          | Ok c -> (
              (* allow/scope paths are resolved relative to the config
                 file's directory, so `--config ../lint.toml` works
                 from a dune sandbox *)
              match Lint_config.validate ~root:(Filename.dirname p) c with
              | Ok () -> Ok c
              | Error e -> Error (Printf.sprintf "%s: %s" p e)))
    in
    match config_result with
    | Error e ->
        Printf.eprintf "dsvc-lint: %s\n" e;
        2
    | Ok config -> (
        let missing =
          List.filter (fun p -> not (Sys.file_exists p)) opts.paths
        in
        if missing <> [] then begin
          List.iter (Printf.eprintf "dsvc-lint: no such path: %s\n") missing;
          2
        end
        else
          let files =
            List.fold_left collect [] opts.paths |> List.sort_uniq compare
          in
          let sources = List.map (fun f -> (f, read_file f)) files in
          let diags = Lint_rules.check_tree ~config sources in
          let files_scanned = List.length files in
          Lint_report.print opts.format ~files_scanned diags;
          (match opts.json_out with
          | None -> ()
          | Some path ->
              (* lint: raw-write-ok CI report artifact, not repository
                 state: atomicity and fsync would buy nothing here *)
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  output_string oc (Lint_report.to_json ~files_scanned diags)));
          match diags with
          | [] -> 0
          | _ :: _ ->
              Printf.eprintf "dsvc-lint: %d diagnostic%s in %d file%s scanned\n"
                (List.length diags)
                (if List.length diags = 1 then "" else "s")
                files_scanned
                (if files_scanned = 1 then "" else "s");
              1)
  end
