(* Request-correlated structured logging.

   A [Logs] reporter that stamps every line with the ambient
   [Context]'s request/trace ids (plus any explicit [with_fields]
   tags), renders either human text or one JSON object per line
   (DSVC_LOG_FORMAT=json), and taps every record into the [Flight]
   ring so the last few log lines survive for post-mortems.

   The reporter writes to stderr by default; tests pass their own
   [out] sink. The JSON timestamp is a clock read, which is fine
   here: lib/obs is outside the R5 determinism scope, and a log line
   only exists once a reporter is installed and the level passes. *)

let fields_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_fields fs f =
  let cell = Domain.DLS.get fields_key in
  let saved = !cell in
  cell := saved @ fs;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* Explicit fields first, then the ambient context's ids (unless an
   explicit field already names them). *)
let fields () =
  let explicit = !(Domain.DLS.get fields_key) in
  let ambient =
    match Context.current () with
    | None -> []
    | Some c ->
        let add key value acc =
          if List.mem_assoc key explicit then acc else (key, value) :: acc
        in
        add "request" c.Context.request_id
          (add "trace" c.Context.trace_id [])
  in
  explicit @ ambient

let json_mode () =
  match Sys.getenv_opt "DSVC_LOG_FORMAT" with
  | Some s -> String.lowercase_ascii (String.trim s) = "json"
  | None -> false

let level_string = function
  | Logs.App -> "app"
  | Logs.Error -> "error"
  | Logs.Warning -> "warning"
  | Logs.Info -> "info"
  | Logs.Debug -> "debug"

let format_line ~level ~src msg =
  let fs = fields () in
  if json_mode () then begin
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf {|{"ts":%.6f,"level":"%s","src":"%s","msg":"%s"|}
         (Unix.gettimeofday ())
         (Metrics.json_escape (level_string level))
         (Metrics.json_escape src) (Metrics.json_escape msg));
    List.iter
      (fun (k, v) ->
        Buffer.add_string b
          (Printf.sprintf {|,"%s":"%s"|} (Metrics.json_escape k)
             (Metrics.json_escape v)))
      fs;
    Buffer.add_char b '}';
    Buffer.contents b
  end
  else
    Printf.sprintf "%s [%s] %s%s"
      (String.uppercase_ascii (level_string level))
      src msg
      (match fs with
      | [] -> ""
      | fs ->
          " ("
          ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fs)
          ^ ")")

(* Reporters may be hit from several threads (the server thread and
   the test runner share one process); serialize the sink. *)
let out_mutex = Mutex.create ()

let reporter ?out () =
  let out =
    match out with
    | Some f -> f
    | None ->
        fun line ->
          output_string stderr line;
          flush stderr
  in
  let report src level ~over k msgf =
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    Format.kasprintf
      (fun msg ->
        let src_name = Logs.Src.name src in
        let line = format_line ~level ~src:src_name msg in
        Mutex.lock out_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock out_mutex)
          (fun () -> out (line ^ "\n"));
        Flight.record_log ~level:(level_string level) ~src:src_name msg;
        over ();
        k ())
      fmt
  in
  { Logs.report }

let install ?(level = Logs.Warning) () =
  Logs.set_reporter (reporter ());
  Logs.set_level (Some level)
