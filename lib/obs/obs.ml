(* Global on/off gate for the observability layer.

   The contract (DESIGN.md §10): instrumentation reads state, it never
   feeds decisions. When the gate is off — the default — every metric
   update and span is a no-op, including the clock and allocation
   reads, so optimize plans and fault-injection traffic stay
   byte-identical to an uninstrumented build. *)

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "on" | "true" | "yes" -> true
  | _ -> false

let trace_path_of_env () =
  match Sys.getenv_opt "DSVC_TRACE" with
  | Some p when String.trim p <> "" -> Some (String.trim p)
  | _ -> None

(* DSVC_OBS wins when set; otherwise asking for a trace file implies
   the instrumentation that produces it. *)
let env_default =
  match Sys.getenv_opt "DSVC_OBS" with
  | Some s -> parse_bool s
  | None -> trace_path_of_env () <> None

let state = Atomic.make env_default

let enabled () = Atomic.get state
let set_enabled b = Atomic.set state b
let enable () = set_enabled true
let disable () = set_enabled false

let trace_path = trace_path_of_env

(* Re-read the environment on every call: [Server.serve] force-enables
   the gate for scrape data, and this is how an operator still vetoes
   the background sampler (DSVC_OBS=0 dsvc serve). *)
let forced_off () =
  match Sys.getenv_opt "DSVC_OBS" with
  | Some s when String.trim s <> "" -> not (parse_bool s)
  | _ -> false

let with_enabled b f =
  let saved = Atomic.get state in
  Atomic.set state b;
  Fun.protect ~finally:(fun () -> Atomic.set state saved) f

(* Validated integer environment knobs (DSVC_FLIGHT_SAMPLE,
   DSVC_TRACE_RING, DSVC_MAX_CONNS, ...). Unset or blank means the
   default; garbage, or a value outside [min..max], is rejected out
   loud — one line on stderr naming the variable, the constraint and
   the offending value — rather than silently falling back and leaving
   an operator's typo undiagnosed. *)
let env_int ?(min = 1) ?max ~default name =
  match Sys.getenv_opt name with
  | None -> default
  | Some raw when String.trim raw = "" -> default
  | Some raw -> (
      let reject msg =
        Printf.eprintf "dsvc: %s; using default %d\n%!" msg default;
        default
      in
      match int_of_string_opt (String.trim raw) with
      | None -> reject (Printf.sprintf "%s must be an integer (got %S)" name raw)
      | Some n -> (
          match max with
          | Some hi when n < min || n > hi ->
              reject
                (Printf.sprintf "%s must be between %d and %d (got %d)" name
                   min hi n)
          | _ when n < min ->
              reject
                (Printf.sprintf "%s must be at least %d (got %d)" name min n)
          | _ -> n))

(* The float/duration sibling of [env_int], same contract: unset or
   blank yields the default, anything unparsable or out of range
   complains once on stderr and yields the default. Durations
   (DSVC_TS_STEP, alert windows) go through here so a typo'd knob
   never silently disables sampling. *)
let env_float ?(min = 1e-6) ?max ~default name =
  match Sys.getenv_opt name with
  | None -> default
  | Some raw when String.trim raw = "" -> default
  | Some raw -> (
      let reject msg =
        Printf.eprintf "dsvc: %s; using default %g\n%!" msg default;
        default
      in
      match float_of_string_opt (String.trim raw) with
      | None -> reject (Printf.sprintf "%s must be a number (got %S)" name raw)
      | Some v when Float.is_nan v ->
          reject (Printf.sprintf "%s must be a number (got %S)" name raw)
      | Some v -> (
          match max with
          | Some hi when v < min || v > hi ->
              reject
                (Printf.sprintf "%s must be between %g and %g (got %g)" name
                   min hi v)
          | _ when v < min ->
              reject
                (Printf.sprintf "%s must be at least %g (got %g)" name min v)
          | _ -> v))
