(* Global on/off gate for the observability layer.

   The contract (DESIGN.md §10): instrumentation reads state, it never
   feeds decisions. When the gate is off — the default — every metric
   update and span is a no-op, including the clock and allocation
   reads, so optimize plans and fault-injection traffic stay
   byte-identical to an uninstrumented build. *)

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "on" | "true" | "yes" -> true
  | _ -> false

let trace_path_of_env () =
  match Sys.getenv_opt "DSVC_TRACE" with
  | Some p when String.trim p <> "" -> Some (String.trim p)
  | _ -> None

(* DSVC_OBS wins when set; otherwise asking for a trace file implies
   the instrumentation that produces it. *)
let env_default =
  match Sys.getenv_opt "DSVC_OBS" with
  | Some s -> parse_bool s
  | None -> trace_path_of_env () <> None

let state = Atomic.make env_default

let enabled () = Atomic.get state
let set_enabled b = Atomic.set state b
let enable () = set_enabled true
let disable () = set_enabled false

let trace_path = trace_path_of_env

let with_enabled b f =
  let saved = Atomic.get state in
  Atomic.set state b;
  Fun.protect ~finally:(fun () -> Atomic.set state saved) f
