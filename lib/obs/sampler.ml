(* Periodic metrics sampler (DESIGN.md §16).

   One [tick] snapshots the metrics registry into the time-series
   (every counter/gauge sample, histograms as _sum/_count), derives
   the SLI series the alert rules watch under the reserved "sli:"
   prefix, and runs one alert evaluation:

   - sli:checkout_p99_seconds — windowed p99 of checkout latency,
     interpolated from the diff of consecutive cumulative histogram
     snapshots (the registry's histograms are process-lifetime; the
     diff is exactly the window between ticks);
   - sli:quorum_write_success — fraction of quorum writes since the
     previous tick that reached quorum (idle windows count as healthy:
     no writes means no errors, and the burn-rate math needs the
     series to keep flowing);
   - sli:drift_score — the max dsvc_store_drift_score gauge, freed of
     its repo-path label so alert rules have a stable name;
   - sli:scrape_up — the injected cluster scrape-up fraction, when
     serving with peers (the prober runs on its own thread, never
     here — the injection point is how this module stays clock- and
     socket-free).

   Effect discipline (lint R7): [tick] runs inside the server's
   reactor timer, so everything here is Pure/Locks — registry and
   time-series mutexes only; no I/O, no clock (the caller passes
   [~now]), no blocking. Persistence is the server's job, dispatched
   to the executor. *)

type t = {
  registry : Metrics.t option; (* None = the implicit default registry *)
  ts : Timeseries.t;
  alerts : Alerts.t option;
  up_fraction : (unit -> float option) option;
  mutex : Mutex.t;
  mutable prev_values : (string * float) list;
  mutable prev_hists : Metrics.hist_snapshot list;
}

let create ?registry ?alerts ?up_fraction ~ts () =
  {
    registry;
    ts;
    alerts;
    up_fraction;
    mutex = Mutex.create ();
    prev_values = [];
    prev_hists = [];
  }

let timeseries t = t.ts

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* p99 over the observations that arrived since the previous
   snapshot, merged across every series of [family] that passes
   [keep] (same family = same bounds). The quantile is read from the
   cumulative bucket diff: the smallest bound whose cumulative count
   reaches 99% of the window's total (the +Inf bucket reports the
   highest finite bound — a floor, but a stable one). *)
let p99_diff ~prev ~cur ~family ~keep =
  let key h = (h.Metrics.hs_name, h.Metrics.hs_labels) in
  let in_scope h = h.Metrics.hs_name = family && keep h.Metrics.hs_labels in
  let relevant = List.filter in_scope cur in
  match relevant with
  | [] -> None
  | first :: _ ->
      let bounds = first.Metrics.hs_bounds in
      let nb = Array.length bounds + 1 in
      let diff = Array.make nb 0 in
      List.iter
        (fun h ->
          if Array.length h.Metrics.hs_counts = nb then begin
            let old =
              List.find_opt (fun p -> key p = key h) (List.filter in_scope prev)
            in
            Array.iteri
              (fun i c ->
                let o =
                  match old with
                  | Some p -> p.Metrics.hs_counts.(i)
                  | None -> 0
                in
                diff.(i) <- diff.(i) + max 0 (c - o))
              h.Metrics.hs_counts
          end)
        relevant;
      let total = Array.fold_left ( + ) 0 diff in
      if total = 0 then None
      else begin
        let target =
          int_of_float (Float.ceil (0.99 *. float_of_int total))
        in
        let acc = ref 0 and answer = ref None in
        Array.iteri
          (fun i c ->
            acc := !acc + c;
            if !answer = None && !acc >= target then
              answer :=
                Some
                  (if i < Array.length bounds then bounds.(i)
                   else bounds.(Array.length bounds - 1)))
          diff;
        !answer
      end

(* The window's quorum-write success ratio from the counter diffs.
   [None] when the counters do not exist at all (not a cluster);
   [Some 1.0] when they exist but nothing happened in the window. *)
let quorum_success ~prev ~cur =
  let value l name = Option.value (List.assoc_opt name l) ~default:0.0 in
  let series outcome =
    Printf.sprintf "dsvc_cluster_quorum_total{op=\"put\",outcome=\"%s\"}"
      outcome
  in
  let exists =
    List.exists
      (fun (n, _) ->
        String.length n >= 24 && String.sub n 0 24 = "dsvc_cluster_quorum_tota")
      cur
  in
  if not exists then None
  else begin
    let d outcome =
      Float.max 0.0 (value cur (series outcome) -. value prev (series outcome))
    in
    let ok = d "ok" +. d "degraded" in
    let total = ok +. d "failed" in
    if total <= 0.0 then Some 1.0 else Some (ok /. total)
  end

let drift_max values =
  let prefix = "dsvc_store_drift_score" in
  let plen = String.length prefix in
  List.fold_left
    (fun acc (n, v) ->
      if String.length n >= plen && String.sub n 0 plen = prefix then
        match acc with Some m -> Some (Float.max m v) | None -> Some v
      else acc)
    None values

let checkout_route = [ ("route", "/checkout/:name") ]

let tick t ~now =
  let registry = t.registry in
  let values = Metrics.snapshot_values ?registry () in
  let hists = Metrics.histograms ?registry () in
  let derived =
    with_lock t (fun () ->
        let prev_values = t.prev_values and prev_hists = t.prev_hists in
        t.prev_values <- values;
        t.prev_hists <- hists;
        let p99 =
          match
            p99_diff ~prev:prev_hists ~cur:hists
              ~family:"dsvc_server_request_seconds"
              ~keep:(fun labels -> labels = checkout_route)
          with
          | Some v -> Some v
          | None ->
              p99_diff ~prev:prev_hists ~cur:hists
                ~family:"dsvc_obs_recreation_seconds" ~keep:(fun _ -> true)
        in
        List.filter_map
          (fun (name, v) -> Option.map (fun v -> (name, v)) v)
          [
            ("sli:checkout_p99_seconds", p99);
            ( "sli:quorum_write_success",
              quorum_success ~prev:prev_values ~cur:values );
            ("sli:drift_score", drift_max values);
          ])
  in
  List.iter (fun (metric, v) -> Timeseries.record t.ts ~now ~metric v) values;
  List.iter (fun (metric, v) -> Timeseries.record t.ts ~now ~metric v) derived;
  (match t.up_fraction with
  | Some f -> (
      match f () with
      | Some up -> Timeseries.record t.ts ~now ~metric:"sli:scrape_up" up
      | None -> ())
  | None -> ());
  match t.alerts with
  | Some alerts -> Alerts.eval alerts ~ts:t.ts ~now
  | None -> ()
