(** Per-operation trace context, propagated across the client/server
    boundary as [traceparent] / [X-Dsvc-Request-Id] headers and inside
    a process as per-domain ambient state.

    A context is created once per client operation (or per server
    request when the client sent none), carries the head-based
    sampling decision for the {!Flight} recorder, and is read by
    {!Trace} to stamp every span with the active trace id. Contexts
    never feed program decisions: like the rest of lib/obs, this
    module is outside the R5 determinism scope (lint.toml) and is the
    sanctioned home for the randomness its ids need. *)

type t = {
  trace_id : string;  (** 32 lowercase hex chars *)
  request_id : string;
      (** 16 lowercase hex chars, or the (sanitized) client-sent id *)
  parent_span : int option;
      (** span id this operation continues; only meaningful within the
          process that allocated it — cross-process it is best-effort *)
  sampled : bool;  (** head-based flight-recorder sampling decision *)
}

val make : ?sampled:bool -> ?request_id:string -> unit -> t
(** Fresh context with random trace/request ids. [sampled] defaults to
    the head-based decision: every Nth call is sampled, where N is
    [DSVC_FLIGHT_SAMPLE] (default 8; 0 disables sampling). *)

val to_traceparent : ?span:int -> t -> string
(** W3C trace-context header value,
    [00-<trace id>-<16-hex span id>-<01|00>]. [span] (default
    [parent_span] or 0) is the sender's current span id, so the
    receiver's spans can attach under it. *)

val of_traceparent : string -> t option
(** Parse a [traceparent] header. Returns [None] on anything
    malformed; the resulting context gets a fresh request id (the
    request id travels in [X-Dsvc-Request-Id], not [traceparent]). *)

val sanitize_id : string -> string option
(** Validate a client-sent request id before it reaches log lines and
    the /trace lookup table: trimmed, at most 64 chars, alphanumeric
    plus [-_.] only. *)

val with_context : t -> (unit -> 'a) -> 'a
(** Run with the given context as this domain's ambient context,
    restoring the previous one afterwards. *)

val with_current : t option -> (unit -> 'a) -> 'a
(** Like {!with_context} but can also clear the ambient context; used
    by [Pool] to re-seed worker domains with the caller's context. *)

val current : unit -> t option
val current_trace_id : unit -> string option
val current_request_id : unit -> string option

val sampled_now : unit -> bool
(** Whether the ambient context (if any) is flight-sampled. One DLS
    read — cheap enough for the hot path even when everything is
    off. *)

val sample_interval : unit -> int
(** The configured 1-in-N sampling interval ([DSVC_FLIGHT_SAMPLE],
    default 8; 0 = never sample). *)
