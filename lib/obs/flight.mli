(** Always-on flight recorder: a bounded in-memory ring of recent
    spans and log records, independent of the {!Obs} gate, so
    post-mortems work even when full tracing was off.

    Spans land here only when the ambient {!Context} was head-sampled
    (default 1 in 8 operations, [DSVC_FLIGHT_SAMPLE]); log records are
    always kept. The ring is invisible in normal operation — it is
    only ever serialized by {!to_json} when a caller dumps it on
    crash, SIGTERM, or [dsvc flight-dump]. Like the rest of lib/obs,
    this module never touches disk. *)

type kind = Span | Log

type event = {
  ev_ts : float;  (** seconds since epoch *)
  ev_kind : kind;
  ev_name : string;  (** span name, or log source *)
  ev_detail : string;  (** empty for spans; the message for logs *)
  ev_dur : float;  (** seconds; 0 for logs *)
  ev_level : string;  (** ["span"] for spans; the log level otherwise *)
  ev_trace : string;  (** empty when no ambient context was active *)
  ev_request : string;
}

val capacity : int
(** Ring size (last-K events kept). *)

val record_span : name:string -> start:float -> dur:float -> unit
(** Record a completed span, stamping the ambient trace/request ids.
    Called by {!Trace.with_span} when the context is sampled. *)

val record_log : level:string -> src:string -> string -> unit
(** Record a log line (called by the {!Logctx} reporter). *)

val events : unit -> event list
(** Recorded events, oldest first (bounded: most recent {!capacity}). *)

val event_count : unit -> int
(** Total events recorded since start/reset (may exceed the ring). *)

val reset : unit -> unit

val to_json : unit -> string
(** Serialize the ring as a JSON document. The caller writes the file
    (via [Fsutil]); this library never touches disk. *)

val default_path : unit -> string
(** Dump destination: [DSVC_FLIGHT_PATH], or [dsvc-flight.json]. *)
