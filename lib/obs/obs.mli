(** Global on/off gate for the observability layer.

    Enabled by [DSVC_OBS=on|1|true|yes] (or implicitly by setting
    [DSVC_TRACE]); default off. When off, every metric update and span
    in the tree is a no-op — no clock or allocation reads happen — so
    instrumented code behaves byte-identically to uninstrumented
    code. Instrumentation must only ever read state, never feed
    decisions. *)

val enabled : unit -> bool
(** Current gate state. Checked by every {!Metrics} and {!Trace}
    entry point before doing any work. *)

val set_enabled : bool -> unit
val enable : unit -> unit
val disable : unit -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** [with_enabled b f] runs [f] with the gate forced to [b], restoring
    the previous state afterwards (used by tests and [--profile]). *)

val trace_path : unit -> string option
(** The [DSVC_TRACE] destination, if set to a non-empty path. The
    library never writes the file itself — callers dump
    {!Trace.to_chrome_json} through [Fsutil]. *)

val forced_off : unit -> bool
(** True when the environment {e explicitly} vetoes observability
    ([DSVC_OBS] set to a falsy value). Read fresh on every call —
    [Server.serve] force-enables the gate so scrapes have data, and
    this is how [DSVC_OBS=0 dsvc serve] still keeps the background
    metrics sampler (and the [.dsvc/timeseries] ledger it feeds)
    disarmed. *)

val env_int : ?min:int -> ?max:int -> default:int -> string -> int
(** [env_int name ~default] reads an integer knob from the
    environment. Unset or blank yields [default]; a non-integer or a
    value outside [[min] .. [max]] (default [min] 1, so zero and
    negatives are rejected; no upper bound unless given) prints a
    clear one-line complaint to stderr and yields [default]. The one
    shared parser behind [DSVC_FLIGHT_SAMPLE], [DSVC_TRACE_RING],
    [DSVC_MAX_CONNS] and [DSVC_SERVER_WORKERS]. *)

val env_float : ?min:float -> ?max:float -> default:float -> string -> float
(** [env_float name ~default] — the float/duration sibling of
    {!env_int}, same validation contract ([min] defaults to [1e-6] so
    zero, negatives and NaN are rejected). Behind [DSVC_TS_STEP],
    [DSVC_IDLE_TIMEOUT] and the alert-rule windows. *)
