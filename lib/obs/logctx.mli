(** Request-correlated structured logging.

    A {!Logs} reporter that stamps every log line with the ambient
    {!Context}'s request/trace ids plus any explicit {!with_fields}
    tags, in either human-readable text or one-JSON-object-per-line
    form ([DSVC_LOG_FORMAT=json]). Every record is also copied into
    the {!Flight} ring, so the last few log lines are available for
    post-mortem dumps even when nothing was watching stderr. *)

val with_fields : (string * string) list -> (unit -> 'a) -> 'a
(** Add explicit [key=value] tags to every log line emitted by [f] on
    this domain (on top of the ambient context's ids). *)

val fields : unit -> (string * string) list
(** The tags the reporter would stamp right now: explicit fields
    first, then [request]/[trace] from the ambient context. *)

val json_mode : unit -> bool
(** Whether [DSVC_LOG_FORMAT=json] is set (read per call, so tests
    can flip it with [Unix.putenv]). *)

val level_string : Logs.level -> string

val format_line : level:Logs.level -> src:string -> string -> string
(** Render one log line (without trailing newline) in the current
    mode, stamped with {!fields}. *)

val reporter : ?out:(string -> unit) -> unit -> Logs.reporter
(** A reporter writing newline-terminated {!format_line} output to
    [out] (default stderr) under an internal lock, and tapping every
    record into {!Flight}. *)

val install : ?level:Logs.level -> unit -> unit
(** [Logs.set_reporter (reporter ())] plus [Logs.set_level] (default
    [Warning]) — the one-call setup used by [bin/dsvc.ml]. *)
