(** Per-version workload telemetry: the access ledger behind the
    cost-model drift observatory (DESIGN.md §15).

    A ledger records, per version id, how often the version was
    checked out, how often the checkout was served from the
    materialization cache, a decayed access frequency, and — only
    while {!Obs.enabled} — the observed recreation cost (wall-clock
    seconds and bytes materialized along the delta chain) with an
    exemplar trace id. A bounded ring of recent cost samples supports
    p50/p99 observed-vs-predicted views.

    Determinism: frequency decay is indexed by the ledger's own event
    counter, never by a clock, so counting is byte-deterministic and
    runs unconditionally. The only clock in this module is {!clock},
    which returns [None] while the gate is off — cost observation is
    therefore impossible to trigger from an un-instrumented run, and
    plans stay byte-identical (the DESIGN.md §10 contract: telemetry
    reads state; only an explicit [--weights observed] feeds it back).

    Concurrency: a ledger is not internally synchronized. [Repo]
    owns one per handle and serializes access exactly as it does its
    own mutable caches (repository lock / server executor).

    Persistence: the module renders and parses strings only; file I/O
    stays with the caller ([Repo] uses [Fsutil.write_file_atomic
    ~site:"telemetry.save"]), keeping lib/obs free of raw writes. *)

type entry = private {
  mutable checkouts : int;  (** total checkout requests for the version *)
  mutable cache_hits : int;  (** of which served whole from the LRU cache *)
  mutable freq : float;
      (** decayed access weight as of [freq_at]; read it via
          {!freq_of}, which settles it to the current event count *)
  mutable freq_at : int;  (** event index of the last [freq] update *)
  mutable observations : int;  (** gated cost observations recorded *)
  mutable seconds : float;  (** Σ observed recreation wall-clock *)
  mutable bytes : float;  (** Σ observed bytes materialized *)
  mutable exemplar : string;  (** one trace id to pivot into, [""] if none *)
}

type sample = {
  version : int;
  s_seconds : float;
  s_bytes : float;
  s_predicted : float;  (** the plan's Φ for the version at observation time *)
}

type t

val default_decay : float
(** Per-event frequency decay (0.995): an access half-lives after
    ~139 subsequent ledger events. *)

val default_max_entries : int
(** Bound on tracked versions (4096); beyond it the coldest entry is
    evicted. *)

val default_ring : int
(** Bound on retained recent cost samples (512). *)

val create : ?decay:float -> ?max_entries:int -> ?ring:int -> unit -> t

val events : t -> int
(** Total accesses the ledger has counted. *)

val decay : t -> float
val is_empty : t -> bool

val entry : t -> int -> entry option
val entries : t -> (int * entry) list
(** All tracked versions, ascending id. *)

val samples : t -> sample list
(** Recent cost samples, newest first, bounded by the ring size. *)

val freq_of : t -> int -> float
(** The version's decayed access weight settled to the current event
    count; [0.] for untracked versions. *)

val hot : t -> k:int -> (int * entry) list
(** The [k] highest-frequency versions, hottest first (ties by id). *)

val bump_checkout : t -> int -> cached:bool -> unit
(** Count one checkout. Unconditional, clock-free, allocation-light —
    this is the single counter increment the checkout hot path pays
    while observability is off. *)

val clock : unit -> float option
(** [Some (now)] while {!Obs.enabled}, else [None]. The only clock
    read in the telemetry layer; callers time a recreation as
    [match clock () with None -> ... | Some t0 -> ...] so the off
    path never reaches a time syscall. *)

val record_recreation :
  t ->
  int ->
  seconds:float ->
  bytes:float ->
  predicted:float ->
  ?trace:string ->
  unit ->
  unit
(** Record one observed recreation: cost sums, the sample ring, the
    exemplar trace id, and (to the default metrics registry) the
    [dsvc_obs_recreation_*] histograms plus the calibration-error
    histogram [|bytes − predicted| / predicted]. Callers only reach
    this with a [Some] from {!clock}, i.e. while the gate is on. *)

val drift : t -> costs:(int * float) list -> float
(** The drift score [D] (DESIGN.md §15): with [p̂(v)] the ledger's
    normalized decayed frequencies and [Φ(v)] the given per-version
    recreation costs over [n] versions,

    {v D = Σ_v |p̂(v) − 1/n| · Φ(v)  /  ((1/n) · Σ_v Φ(v)) v}

    — the cost-weighted total-variation distance between the observed
    access distribution and the uniform one every [optimize] run
    assumes. [0.] when the ledger is empty or [costs] is. *)

val merge : t -> t -> t
(** Commutative union: event counts and cost sums add, each side's
    frequencies are settled to its own event count before adding,
    exemplars keep the lexicographic max, sample rings union
    deterministically. Bounds are the max of the two sides'. *)

val equal : t -> t -> bool

val render : t -> string
(** Deterministic line format ([telemetry 1] header, [end] trailer);
    floats as hex so {!parse} is an exact inverse. *)

val parse : string -> (t, string) result

val export : ?registry:Metrics.t -> t -> repo:string -> drift:float -> unit
(** Push ledger-level gauges ([dsvc_obs_ledger_*],
    [dsvc_store_drift_score]) labelled with the repository root. *)
