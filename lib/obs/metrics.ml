(* Process-global metrics registry: counters, gauges and fixed-bucket
   histograms with Prometheus-text and JSON exposition.

   Concurrency: one mutex per registry; every read and write goes
   through it. Series are keyed by (family name, sorted labels) so
   exposition order is deterministic regardless of update order.

   Determinism: updates against the implicit default registry are
   dropped entirely while [Obs.enabled] is false; an explicitly passed
   registry always records (tests use private registries so they
   don't depend on the global gate). *)

type hist = {
  bounds : float array; (* strictly increasing upper bounds; +Inf implicit *)
  buckets : int array; (* length bounds + 1, non-cumulative *)
  mutable sum : float;
  mutable count : int;
}

type series = SCounter of float ref | SGauge of float ref | SHist of hist

type family = {
  fname : string;
  help : string;
  ftype : string; (* "counter" | "gauge" | "histogram" *)
  bounds : float array; (* empty unless histogram *)
  series : (string, (string * string) list * series) Hashtbl.t;
}

type t = {
  mutex : Mutex.t;
  families : (string, family) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); families = Hashtbl.create 64 }

(* lint: mutable-ok process-global registry; every access below takes
   [t.mutex], and updates are dropped unless the Obs gate is on *)
let default = create ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The implicit registry obeys the global gate; an explicit one does
   not, so exposition tests stay independent of DSVC_OBS. *)
let target = function
  | Some r -> Some r
  | None -> if Obs.enabled () then Some default else None

(* Latency buckets in seconds: 100µs .. ~16s, powers of 4ish. *)
let default_buckets =
  [| 0.0001; 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 4.0; 16.0 |]

let size_buckets =
  [| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576.; 4194304. |]

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       n

let canon_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let label_key labels =
  String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let family t ~name ~help ~ftype ~bounds =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.ftype <> ftype then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name f.ftype);
      f
  | None ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
      let f = { fname = name; help; ftype; bounds; series = Hashtbl.create 8 } in
      Hashtbl.add t.families name f;
      f

let series f labels mk =
  let labels = canon_labels labels in
  let key = label_key labels in
  match Hashtbl.find_opt f.series key with
  | Some (_, s) -> s
  | None ->
      let s = mk () in
      Hashtbl.add f.series key (labels, s);
      s

let counter ?registry ?(help = "") ?(labels = []) ?(by = 1.0) name =
  match target registry with
  | None -> ()
  | Some t ->
      with_lock t (fun () ->
          let f = family t ~name ~help ~ftype:"counter" ~bounds:[||] in
          match series f labels (fun () -> SCounter (ref 0.0)) with
          | SCounter r -> r := !r +. by
          | SGauge _ | SHist _ -> ())

let gauge ?registry ?(help = "") ?(labels = []) name v =
  match target registry with
  | None -> ()
  | Some t ->
      with_lock t (fun () ->
          let f = family t ~name ~help ~ftype:"gauge" ~bounds:[||] in
          match series f labels (fun () -> SGauge (ref 0.0)) with
          | SGauge r -> r := v
          | SCounter _ | SHist _ -> ())

let observe ?registry ?(help = "") ?(labels = []) ?(buckets = default_buckets)
    name v =
  match target registry with
  | None -> ()
  | Some t ->
      with_lock t (fun () ->
          let f = family t ~name ~help ~ftype:"histogram" ~bounds:buckets in
          let mk () =
            SHist
              {
                bounds = f.bounds;
                buckets = Array.make (Array.length f.bounds + 1) 0;
                sum = 0.0;
                count = 0;
              }
          in
          match series f labels mk with
          | SHist h ->
              let n = Array.length h.bounds in
              let i = ref 0 in
              while !i < n && v > h.bounds.(!i) do
                incr i
              done;
              h.buckets.(!i) <- h.buckets.(!i) + 1;
              h.sum <- h.sum +. v;
              h.count <- h.count + 1
          | SCounter _ | SGauge _ -> ())

(* Timing helper: the only place instrumented code should read a
   clock. Runs [f] untimed when the gate is off, so callers inside the
   R5 determinism scope (lib/core, lib/workload) never mention a clock
   primitive and stay deterministic by construction. *)
let time ?registry ?help ?labels ?buckets name f =
  let record =
    match registry with Some _ -> true | None -> Obs.enabled ()
  in
  if not record then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      observe ?registry ?help ?labels ?buckets name (Unix.gettimeofday () -. t0)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let reset ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () -> Hashtbl.reset t.families)

(* ---- exposition ---- *)

(* Integral values print without a fraction ("17"), everything else
   as shortest-roundish decimal — deterministic across runs. *)
let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b {|\\|}
      | '"' -> Buffer.add_string b {|\"|}
      | '\n' -> Buffer.add_string b {|\n|}
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b {|\\|}
      | '\n' -> Buffer.add_string b {|\n|}
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

(* A deterministic snapshot: families sorted by name, series by
   canonical label key. *)
let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
  |> List.sort (fun a b -> compare a.fname b.fname)

let sorted_series f =
  Hashtbl.fold (fun key s acc -> (key, s) :: acc) f.series []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let cumulative h =
  let n = Array.length h.buckets in
  let acc = ref 0 in
  Array.init n (fun i ->
      acc := !acc + h.buckets.(i);
      !acc)

let le_string bounds i =
  if i >= Array.length bounds then "+Inf" else format_value bounds.(i)

let to_prometheus ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () ->
      let b = Buffer.create 4096 in
      List.iter
        (fun f ->
          if f.help <> "" then
            Buffer.add_string b
              (Printf.sprintf "# HELP %s %s\n" f.fname (escape_help f.help));
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.fname f.ftype);
          List.iter
            (fun (labels, s) ->
              match s with
              | SCounter r | SGauge r ->
                  Buffer.add_string b
                    (Printf.sprintf "%s%s %s\n" f.fname (render_labels labels)
                       (format_value !r))
              | SHist h ->
                  let cum = cumulative h in
                  Array.iteri
                    (fun i c ->
                      let ls =
                        canon_labels (("le", le_string h.bounds i) :: labels)
                      in
                      Buffer.add_string b
                        (Printf.sprintf "%s_bucket%s %d\n" f.fname
                           (render_labels ls) c))
                    cum;
                  Buffer.add_string b
                    (Printf.sprintf "%s_sum%s %s\n" f.fname
                       (render_labels labels) (format_value h.sum));
                  Buffer.add_string b
                    (Printf.sprintf "%s_count%s %d\n" f.fname
                       (render_labels labels) h.count))
            (sorted_series f))
        (sorted_families t);
      Buffer.contents b)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b {|\"|}
      | '\\' -> Buffer.add_string b {|\\|}
      | '\n' -> Buffer.add_string b {|\n|}
      | '\r' -> Buffer.add_string b {|\r|}
      | '\t' -> Buffer.add_string b {|\t|}
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf {|\u%04x|} (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_json ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b {|{"metrics":[|};
      List.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf {|{"name":"%s","type":"%s","help":"%s","samples":[|}
               (json_escape f.fname) f.ftype (json_escape f.help));
          List.iteri
            (fun j (labels, s) ->
              if j > 0 then Buffer.add_char b ',';
              match s with
              | SCounter r | SGauge r ->
                  Buffer.add_string b
                    (Printf.sprintf {|{"labels":%s,"value":%s}|}
                       (json_labels labels) (format_value !r))
              | SHist h ->
                  let cum = cumulative h in
                  let buckets =
                    Array.to_list
                      (Array.mapi
                         (fun k c ->
                           Printf.sprintf {|{"le":"%s","count":%d}|}
                             (le_string h.bounds k) c)
                         cum)
                  in
                  Buffer.add_string b
                    (Printf.sprintf
                       {|{"labels":%s,"count":%d,"sum":%s,"buckets":[%s]}|}
                       (json_labels labels) h.count (format_value h.sum)
                       (String.concat "," buckets)))
            (sorted_series f);
          Buffer.add_string b "]}")
        (sorted_families t);
      Buffer.add_string b "]}";
      Buffer.contents b)

(* Flat (sample name, value) pairs for embedding into bench JSON and
   the profile table: counters and gauges directly, histograms as
   _sum/_count. *)
let snapshot_values ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () ->
      List.concat_map
        (fun f ->
          List.concat_map
            (fun (labels, s) ->
              let n = f.fname ^ render_labels labels in
              match s with
              | SCounter r | SGauge r -> [ (n, !r) ]
              | SHist h ->
                  [
                    (f.fname ^ "_sum" ^ render_labels labels, h.sum);
                    ( f.fname ^ "_count" ^ render_labels labels,
                      float_of_int h.count );
                  ])
            (sorted_series f))
        (sorted_families t))

(* Raw histogram snapshots for the metrics sampler: windowed quantiles
   need the per-bucket counts, which the flat [snapshot_values] view
   collapses to _sum/_count. Counts are non-cumulative, matching the
   in-memory representation; arrays are copied so the caller can diff
   two snapshots without racing later observations. *)
type hist_snapshot = {
  hs_name : string;
  hs_labels : (string * string) list;
  hs_bounds : float array;
  hs_counts : int array; (* length bounds + 1 (+Inf), non-cumulative *)
  hs_sum : float;
  hs_count : int;
}

let histograms ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () ->
      List.concat_map
        (fun f ->
          List.filter_map
            (fun (labels, s) ->
              match s with
              | SCounter _ | SGauge _ -> None
              | SHist h ->
                  Some
                    {
                      hs_name = f.fname;
                      hs_labels = labels;
                      hs_bounds = Array.copy h.bounds;
                      hs_counts = Array.copy h.buckets;
                      hs_sum = h.sum;
                      hs_count = h.count;
                    })
            (sorted_series f))
        (sorted_families t))

let family_names ?registry () =
  let t = match registry with Some r -> r | None -> default in
  with_lock t (fun () -> List.map (fun f -> f.fname) (sorted_families t))
