(** Alert rules evaluated over the {!Timeseries} history
    (DESIGN.md §16).

    Static thresholds with a hold period, and multi-window SLO
    burn-rate rules: for a success-ratio SLI in [0,1], the burn rate
    over a window is [(1 − avg SLI) / (1 − objective)] — how many
    times faster than budget the error budget is burning — and the
    rule fires only when both the short and the long window exceed the
    factor (fast on incidents, quiet on blips).

    Deterministic: {!eval} takes [~now] and reads only the
    time-series; no clock or I/O anywhere in the module. Suppression
    annotates, it does not mask — a suppressed rule keeps evaluating
    and reporting its true state. *)

type cmp = Lt | Gt

type rule =
  | Threshold of {
      metric : string;
      cmp : cmp;
      bound : float;
      hold : float;
          (** seconds the condition must persist before firing; 0
              fires on the first bad evaluation *)
      window : float;
          (** averaging window for the observed value; 0 uses the
              latest sample *)
    }
  | Burn_rate of {
      metric : string;  (** a success-ratio SLI series in [0,1] *)
      objective : float;  (** e.g. 0.99 *)
      short_window : float;
      long_window : float;
      factor : float;
    }

type state = Inactive | Pending of float | Firing of float | Resolved of float
(** [Pending]/[Firing]/[Resolved] carry the evaluation time that
    entered the state ([Firing] keeps its pending-start, so "since"
    names the beginning of the incident, not of the page). *)

type t

type info = {
  i_name : string;
  i_rule : rule;
  i_state : state;
  i_value : float option;  (** last evaluated value, if data existed *)
  i_suppressed : string option;
}

val create : rules:(string * rule) list -> t
(** The rule set is fixed at creation; only states and suppression
    annotations mutate afterwards (mutex-guarded). *)

val default_rules : unit -> (string * rule) list
(** The stock set over the sampler's derived SLI series: checkout p99
    latency and drift-score thresholds, quorum-write and scrape-up
    burn rates, plus an immediate [cluster_scrape_up] threshold so a
    dead peer fires within one sampling step. Windows/bounds read
    [DSVC_ALERT_WINDOW_SHORT]/[_LONG]/[_HOLD]/[_CHECKOUT_P99]/[_DRIFT]
    via {!Obs.env_float}. *)

val rule_names : t -> string list

val suppress : t -> name:string -> reason:string -> unit
val unsuppress : t -> name:string -> unit

val eval : t -> ts:Timeseries.t -> now:float -> unit
(** One evaluation pass. A series with no data in scope cannot fire
    its rule (and resolves it if it was firing). Time-series values
    are read before this module's mutex is taken, so the two locks
    never nest. *)

val report : t -> info list
val render : t -> string
(** One grep-friendly line per rule:
    [<name> <state> since=<t|-> value=<v|-> [suppressed="reason"]] —
    the [GET /alerts] body. *)

val state_name : state -> string
