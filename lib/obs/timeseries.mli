(** Bounded, tiered ring of periodic metric samples (DESIGN.md §16).

    The durable half of the cluster health observatory: the background
    sampler records one value per live metric series per step into
    three downsampling tiers (step, 10·step, 100·step), each a bounded
    ring, so a 5 s step retains ~30 min at full resolution, ~5 h at
    10× and ~2 days at 100× in constant memory. {!query} serves the
    finest tier whose retention covers the requested span.

    Determinism: every operation that needs a time takes [~now] — the
    module never reads a clock. Persistence is string-level only
    ({!render}/{!parse}, hex floats, [end] trailer); [Repo] owns the
    [.dsvc/timeseries] file via Fsutil ([~site:"timeseries.save"]).
    All entry points are mutex-guarded: the reactor-timer tick records
    while server handler threads query. *)

type t

type sample = {
  s_time : float;  (** bucket start, absolute seconds *)
  s_count : int;  (** observations aggregated into the bucket *)
  s_avg : float;
  s_min : float;
  s_max : float;
  s_last : float;
}

val default_step : unit -> float
(** The sampling step: [DSVC_TS_STEP] through {!Obs.env_float}
    (min 0.01 s), default 5 s. *)

val create : ?step:float -> ?cap:int -> ?max_series:int -> unit -> t
(** [cap] bounds each tier's ring (default 360 buckets); [max_series]
    (default 512) hard-caps distinct series — records for new names
    beyond it are dropped, so an upstream label-cardinality explosion
    costs data, never memory. [step] defaults to {!default_step}.
    Raises [Invalid_argument] on non-positive values. *)

val step : t -> float

val record : t -> now:float -> metric:string -> float -> unit
(** Fold one observation into the series' current bucket in every
    tier (count/sum/min/max/last). NaN values are dropped. *)

val metrics : t -> string list
(** Sorted names of every live series. *)

val series_count : t -> int
val is_empty : t -> bool

val query :
  t -> metric:string -> ?since:float -> now:float -> unit -> sample list
(** Samples oldest-first from the finest tier whose retention covers
    [now - since] (default [since]: one fine-tier retention back);
    buckets ending at or before [since] are excluded. Unknown metrics
    yield []. *)

val avg : t -> metric:string -> window:float -> now:float -> float option
(** Observation-weighted mean over the trailing window — what the
    alert rules evaluate. [None] when the window holds no samples. *)

val latest : t -> metric:string -> float option
(** The newest recorded value of a series, if any. *)

val render : t -> string
(** Deterministic text form (hex floats, series sorted by name,
    buckets oldest-first, [end] trailer). *)

val parse : string -> (t, string) result
(** Inverse of {!render}; any malformed or truncated input is an
    [Error] so a torn file is detected, never half-adopted. *)

val equal : t -> t -> bool

val sparkline : float list -> string
(** Render values as a row of U+2581..U+2588 block glyphs scaled to
    the list's min/max (flat series render mid-height). The dash
    TUI's plotting primitive, kept here so it is testable. *)
