(* Per-version workload telemetry (DESIGN.md §15).

   Counting is unconditional but clock-free: the decayed frequency is
   indexed by the ledger's own event counter, so two runs replaying
   the same accesses produce byte-identical ledgers. Everything that
   needs a clock goes through [clock], which yields nothing while the
   Obs gate is off.

   No file I/O here (lib/obs never opens files — lint.toml R1): the
   ledger renders to and parses from strings, and [Repo] persists
   them through Fsutil. *)

type entry = {
  mutable checkouts : int;
  mutable cache_hits : int;
  mutable freq : float;
  mutable freq_at : int;
  mutable observations : int;
  mutable seconds : float;
  mutable bytes : float;
  mutable exemplar : string;
}

type sample = {
  version : int;
  s_seconds : float;
  s_bytes : float;
  s_predicted : float;
}

type t = {
  decay : float;
  max_entries : int;
  ring : int;
  mutable events : int;
  table : (int, entry) Hashtbl.t;
  mutable recent : sample list; (* newest first, length ≤ ring *)
}

let default_decay = 0.995
let default_max_entries = 4096
let default_ring = 512

let create ?(decay = default_decay) ?(max_entries = default_max_entries)
    ?(ring = default_ring) () =
  if not (decay > 0.0 && decay <= 1.0) then
    invalid_arg "Telemetry.create: decay must be in (0, 1]";
  if max_entries < 1 then
    invalid_arg "Telemetry.create: max_entries must be positive";
  if ring < 0 then invalid_arg "Telemetry.create: ring must be non-negative";
  {
    decay;
    max_entries;
    ring;
    events = 0;
    table = Hashtbl.create 64;
    recent = [];
  }

let events t = t.events
let decay t = t.decay
let is_empty t = t.events = 0 && Hashtbl.length t.table = 0
let entry t v = Hashtbl.find_opt t.table v

let entries t =
  Hashtbl.fold (fun v e acc -> (v, e) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let samples t = t.recent

(* The decayed weight of [e] as of event index [at]. *)
let settled t e ~at = e.freq *. (t.decay ** float_of_int (at - e.freq_at))

let freq_of t v =
  match Hashtbl.find_opt t.table v with
  | None -> 0.0
  | Some e -> settled t e ~at:t.events

let hot t ~k =
  entries t
  |> List.sort (fun (va, a) (vb, b) ->
         match compare (settled t b ~at:t.events) (settled t a ~at:t.events) with
         | 0 -> compare va vb
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

(* Evict the coldest entry (lowest settled frequency, ties to the
   highest id) when a new version would push the table past its
   bound. O(entries), paid only at the bound. *)
let evict_coldest t =
  let victim =
    Hashtbl.fold
      (fun v e acc ->
        let f = settled t e ~at:t.events in
        match acc with
        | Some (_, bf) when bf < f || (bf = f && fst (Option.get acc) > v) ->
            acc
        | _ -> Some (v, f))
      t.table None
  in
  match victim with Some (v, _) -> Hashtbl.remove t.table v | None -> ()

let bump_checkout t v ~cached =
  t.events <- t.events + 1;
  match Hashtbl.find_opt t.table v with
  | Some e ->
      e.checkouts <- e.checkouts + 1;
      if cached then e.cache_hits <- e.cache_hits + 1;
      e.freq <- settled t e ~at:t.events +. 1.0;
      e.freq_at <- t.events
  | None ->
      if Hashtbl.length t.table >= t.max_entries then evict_coldest t;
      Hashtbl.replace t.table v
        {
          checkouts = 1;
          cache_hits = (if cached then 1 else 0);
          freq = 1.0;
          freq_at = t.events;
          observations = 0;
          seconds = 0.0;
          bytes = 0.0;
          exemplar = "";
        }

let clock () = if Obs.enabled () then Some (Unix.gettimeofday ()) else None

(* Relative calibration error |observed − predicted| / predicted. *)
let calibration_buckets = [| 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 |]

let record_recreation t v ~seconds ~bytes ~predicted ?(trace = "") () =
  (match Hashtbl.find_opt t.table v with
  | Some e ->
      e.observations <- e.observations + 1;
      e.seconds <- e.seconds +. seconds;
      e.bytes <- e.bytes +. bytes;
      if trace > e.exemplar then e.exemplar <- trace
  | None -> ());
  if t.ring > 0 then begin
    let s = { version = v; s_seconds = seconds; s_bytes = bytes;
              s_predicted = predicted }
    in
    t.recent <- s :: t.recent;
    (match List.filteri (fun i _ -> i < t.ring) t.recent with
    | r when List.length t.recent > t.ring -> t.recent <- r
    | _ -> ())
  end;
  Metrics.observe "dsvc_obs_recreation_seconds" seconds
    ~help:"Observed checkout recreation wall-clock";
  Metrics.observe "dsvc_obs_recreation_bytes" bytes
    ~buckets:Metrics.size_buckets
    ~help:"Observed bytes materialized along the delta chain";
  if predicted > 0.0 then
    Metrics.observe "dsvc_obs_calibration_error"
      (Float.abs (bytes -. predicted) /. predicted)
      ~buckets:calibration_buckets
      ~help:"Relative error of observed recreation bytes vs the plan's \u{03a6}"

let drift t ~costs =
  let n = List.length costs in
  if n = 0 || is_empty t then 0.0
  else begin
    let weights = List.map (fun (v, _) -> freq_of t v) costs in
    let wsum = List.fold_left ( +. ) 0.0 weights in
    let phisum = List.fold_left (fun acc (_, phi) -> acc +. phi) 0.0 costs in
    if wsum <= 0.0 || phisum <= 0.0 then 0.0
    else begin
      let uniform = 1.0 /. float_of_int n in
      let num =
        List.fold_left2
          (fun acc (_, phi) w ->
            acc +. (Float.abs ((w /. wsum) -. uniform) *. phi))
          0.0 costs weights
      in
      num /. (uniform *. phisum)
    end
  end

(* ---- merge ---- *)

let copy_entry e =
  {
    checkouts = e.checkouts;
    cache_hits = e.cache_hits;
    freq = e.freq;
    freq_at = e.freq_at;
    observations = e.observations;
    seconds = e.seconds;
    bytes = e.bytes;
    exemplar = e.exemplar;
  }

(* Commutative union. Each side's frequency is first settled to its
   own event horizon; the merged weight is their sum, stamped at the
   merged event count — so merge (a, b) = merge (b, a) exactly. *)
let merge a b =
  let t =
    create ~decay:(Float.max a.decay b.decay)
      ~max_entries:(max a.max_entries b.max_entries)
      ~ring:(max a.ring b.ring) ()
  in
  t.events <- a.events + b.events;
  let add side e0 =
    let settled_freq = settled side e0 ~at:side.events in
    fun acc ->
      match acc with
      | None ->
          let e = copy_entry e0 in
          e.freq <- settled_freq;
          e.freq_at <- t.events;
          Some e
      | Some e ->
          e.checkouts <- e.checkouts + e0.checkouts;
          e.cache_hits <- e.cache_hits + e0.cache_hits;
          e.freq <- e.freq +. settled_freq;
          e.observations <- e.observations + e0.observations;
          e.seconds <- e.seconds +. e0.seconds;
          e.bytes <- e.bytes +. e0.bytes;
          if e0.exemplar > e.exemplar then e.exemplar <- e0.exemplar;
          Some e
  in
  let fold side =
    List.iter
      (fun (v, e) ->
        match add side e (Hashtbl.find_opt t.table v) with
        | Some e -> Hashtbl.replace t.table v e
        | None -> ())
      (entries side)
  in
  fold a;
  fold b;
  while Hashtbl.length t.table > t.max_entries do
    evict_coldest t
  done;
  (* Deterministic sample union: sort the concatenation (samples carry
     no wall-clock order across ledgers) and keep the first [ring]. *)
  t.recent <-
    List.sort compare (a.recent @ b.recent)
    |> List.filteri (fun i _ -> i < t.ring);
  t

(* ---- rendering / parsing ----

   Line format, space-delimited like the repository metadata:

     telemetry 1
     decay <%h> <max_entries> <ring>
     events <int>
     v <id> <checkouts> <cache_hits> <freq %h> <freq_at> <obs> <sec %h> <bytes %h> <exemplar|->
     s <version> <seconds %h> <bytes %h> <predicted %h>
     end

   Floats are hex so parse ∘ render is the identity; the trailer makes
   a torn file detectable. *)

let fh = Printf.sprintf "%h"

(* Exemplars are trace ids (hex), but a hostile value must not corrupt
   the line format. *)
let clean_token s =
  let ok = String.for_all (fun c -> c > ' ' && c <> '\x7f') s in
  if s <> "" && ok then s else "-"

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "telemetry 1\n";
  Buffer.add_string buf
    (Printf.sprintf "decay %s %d %d\n" (fh t.decay) t.max_entries t.ring);
  Buffer.add_string buf (Printf.sprintf "events %d\n" t.events);
  List.iter
    (fun (v, e) ->
      Buffer.add_string buf
        (Printf.sprintf "v %d %d %d %s %d %d %s %s %s\n" v e.checkouts
           e.cache_hits (fh e.freq) e.freq_at e.observations (fh e.seconds)
           (fh e.bytes) (clean_token e.exemplar)))
    (entries t);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "s %d %s %s %s\n" s.version (fh s.s_seconds)
           (fh s.s_bytes) (fh s.s_predicted)))
    (List.rev t.recent);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let parse content =
  let fail msg = Error (Printf.sprintf "corrupt telemetry ledger: %s" msg) in
  let ( let* ) = Result.bind in
  let int s = Option.to_result ~none:() (int_of_string_opt s) in
  let flt s = Option.to_result ~none:() (float_of_string_opt s) in
  let t = ref (create ()) in
  let parse_line line =
    if line = "" then Ok ()
    else
      match String.split_on_char ' ' line with
      | "telemetry" :: _ -> Ok ()
      | [ "decay"; d; m; r ] -> (
          match (flt d, int m, int r) with
          | Ok d, Ok m, Ok r when d > 0.0 && d <= 1.0 && m >= 1 && r >= 0 ->
              let cur = !t in
              t :=
                {
                  (create ~decay:d ~max_entries:m ~ring:r ()) with
                  events = cur.events;
                };
              Ok ()
          | _ -> fail "bad decay line")
      | [ "events"; n ] -> (
          match int n with
          | Ok n when n >= 0 ->
              !t.events <- n;
              Ok ()
          | _ -> fail "bad events line")
      | [ "v"; v; co; ch; fr; fa; ob; se; by; ex ] -> (
          match (int v, int co, int ch, flt fr, int fa, int ob, flt se, flt by)
          with
          | Ok v, Ok co, Ok ch, Ok fr, Ok fa, Ok ob, Ok se, Ok by ->
              Hashtbl.replace !t.table v
                {
                  checkouts = co;
                  cache_hits = ch;
                  freq = fr;
                  freq_at = fa;
                  observations = ob;
                  seconds = se;
                  bytes = by;
                  exemplar = (if ex = "-" then "" else ex);
                };
              Ok ()
          | _ -> fail "bad version line")
      | [ "s"; v; se; by; pr ] -> (
          match (int v, flt se, flt by, flt pr) with
          | Ok v, Ok se, Ok by, Ok pr ->
              !t.recent <-
                { version = v; s_seconds = se; s_bytes = by; s_predicted = pr }
                :: !t.recent;
              Ok ()
          | _ -> fail "bad sample line")
      | _ -> fail ("unknown line: " ^ line)
  in
  let rec body acc = function
    | [] -> fail "truncated ledger (missing end marker)"
    | "end" :: rest ->
        if List.for_all (fun l -> l = "") rest then Ok (List.rev acc)
        else fail "content after end marker"
    | l :: rest -> body (l :: acc) rest
  in
  let* lines = body [] (String.split_on_char '\n' content) in
  let rec go = function
    | [] -> Ok !t
    | l :: tl -> ( match parse_line l with Ok () -> go tl | Error _ as e -> e)
  in
  go lines

let equal a b = render a = render b

(* ---- metric export ---- *)

let export ?registry t ~repo ~drift:d =
  let labels = [ ("repo", repo) ] in
  let totals =
    Hashtbl.fold
      (fun _ e (co, ch) -> (co + e.checkouts, ch + e.cache_hits))
      t.table (0, 0)
  in
  let checkouts, hits = totals in
  Metrics.gauge ?registry "dsvc_obs_ledger_versions" ~labels
    ~help:"Versions the access ledger tracks"
    (float_of_int (Hashtbl.length t.table));
  Metrics.gauge ?registry "dsvc_obs_ledger_events" ~labels
    ~help:"Accesses the ledger has counted"
    (float_of_int t.events);
  Metrics.gauge ?registry "dsvc_obs_ledger_checkouts" ~labels
    ~help:"Checkouts recorded in the ledger"
    (float_of_int checkouts);
  if checkouts > 0 then
    Metrics.gauge ?registry "dsvc_obs_cache_hit_ratio" ~labels
      ~help:"Whole-checkout cache hits / checkouts, from the ledger"
      (float_of_int hits /. float_of_int checkouts);
  Metrics.gauge ?registry "dsvc_store_drift_score" ~labels
    ~help:
      "Cost-weighted total-variation distance between observed and \
       uniform access distributions"
    d
