(* Per-operation trace context: a 128-bit trace id, a short request
   id, the parent span id (when the operation continues a span opened
   elsewhere), and the head-based sampling decision for the flight
   recorder.

   The context rides W3C-style headers across the client/server
   boundary ([traceparent] + [X-Dsvc-Request-Id]) and rides
   [Domain.DLS] inside a process, so spans and log lines opened
   anywhere under [with_context] can be tied back to the request that
   caused them.

   Id generation needs randomness and the sampling decision needs a
   counter; both live here, in lib/obs, which is deliberately outside
   the lint's R5 determinism scope (lint.toml) — solver and workload
   code never sees either. *)

type t = {
  trace_id : string;  (* 32 lowercase hex chars *)
  request_id : string;  (* 16 lowercase hex chars, or a client-sent id *)
  parent_span : int option;
  sampled : bool;
}

(* ---- id generation (splitmix64) ---- *)

let rand_mutex = Mutex.create ()

(* lint: mutable-ok splitmix64 state for trace/request id generation;
   guarded by [rand_mutex], never read by decision-making code *)
let rand_state : int64 ref = ref 0L

(* lint: mutable-ok lazily seeded flag, same mutex *)
let seeded = ref false

let next_word () =
  Mutex.lock rand_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock rand_mutex)
    (fun () ->
      if not !seeded then begin
        seeded := true;
        rand_state :=
          Int64.logxor
            (Int64.of_float (Unix.gettimeofday () *. 1e6))
            (Int64.shift_left (Int64.of_int (Unix.getpid ())) 32)
      end;
      rand_state := Int64.add !rand_state 0x9E3779B97F4A7C15L;
      let z = !rand_state in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      Int64.logxor z (Int64.shift_right_logical z 31))

let fresh_trace_id () = Printf.sprintf "%016Lx%016Lx" (next_word ()) (next_word ())
let fresh_request_id () = Printf.sprintf "%016Lx" (next_word ())

(* ---- head-based sampling for the flight recorder ---- *)

let default_sample_interval = 8

(* [min:0]: zero is meaningful here (sampling off); negatives and
   garbage are rejected with a message by the shared parser. *)
let sample_interval () =
  Obs.env_int "DSVC_FLIGHT_SAMPLE" ~min:0 ~default:default_sample_interval

let sample_counter = Atomic.make 0

(* One decision per operation head: every Nth context is sampled, so
   the flight recorder has material without tracing every request.
   N = 0 disables sampling entirely. *)
let decide () =
  let n = sample_interval () in
  if n <= 0 then false
  else if n = 1 then true
  else Atomic.fetch_and_add sample_counter 1 mod n = 0

let make ?sampled ?request_id () =
  let sampled = match sampled with Some b -> b | None -> decide () in
  let request_id =
    match request_id with Some r -> r | None -> fresh_request_id ()
  in
  { trace_id = fresh_trace_id (); request_id; parent_span = None; sampled }

(* ---- traceparent encoding (W3C trace-context, version 00) ---- *)

let is_hex s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let to_traceparent ?span t =
  let span =
    match span with
    | Some s -> s
    | None -> ( match t.parent_span with Some s -> s | None -> 0)
  in
  Printf.sprintf "00-%s-%016x-%s" t.trace_id (span land max_int)
    (if t.sampled then "01" else "00")

let of_traceparent s =
  match String.split_on_char '-' (String.trim (String.lowercase_ascii s)) with
  | [ "00"; trace_id; span; flags ]
    when String.length trace_id = 32
         && is_hex trace_id
         && String.length span = 16
         && is_hex span
         && String.length flags = 2
         && is_hex flags ->
      let parent_span =
        match Int64.of_string_opt ("0x" ^ span) with
        | Some 0L | None -> None
        | Some v -> Some (Int64.to_int v)
      in
      Some
        {
          trace_id;
          request_id = fresh_request_id ();
          parent_span;
          sampled = (match Int64.of_string_opt ("0x" ^ flags) with
                    | Some f -> Int64.logand f 1L = 1L
                    | None -> false);
        }
  | _ -> None

(* Client-sent request ids end up in log lines and the /trace lookup
   table: keep them to a boring alphabet and a bounded length. *)
let sanitize_id s =
  let s = String.trim s in
  let s = if String.length s > 64 then String.sub s 0 64 else s in
  if
    s <> ""
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
           | _ -> false)
         s
  then Some s
  else None

(* ---- ambient context (per-domain) ---- *)

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get key)

let with_current ctx f =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := ctx;
  Fun.protect ~finally:(fun () -> cell := saved) f

let with_context ctx f = with_current (Some ctx) f

let current_trace_id () =
  match current () with Some c -> Some c.trace_id | None -> None

let current_request_id () =
  match current () with Some c -> Some c.request_id | None -> None

let sampled_now () =
  match current () with Some c -> c.sampled | None -> false
