(* Always-on flight recorder: a small bounded ring of recent spans and
   log records, kept regardless of the DSVC_OBS gate so a crash or
   SIGTERM can be explained after the fact even when full tracing was
   off.

   Cost discipline: spans only land here when their operation's
   context was head-sampled (Context.decide, default 1-in-8), so the
   steady-state overhead is one DLS read per span. Log records are
   rare and always kept. The ring is memory-only; like Trace, this
   module never opens files — dumping [to_json] through Fsutil is the
   caller's job (bin/dsvc.ml on crash, Server.serve on SIGTERM, `dsvc
   flight-dump` on demand). *)

type kind = Span | Log

type event = {
  ev_ts : float;  (* seconds since epoch *)
  ev_kind : kind;
  ev_name : string;  (* span name, or log source *)
  ev_detail : string;  (* "" for spans; the message for logs *)
  ev_dur : float;  (* seconds; 0 for logs *)
  ev_level : string;  (* "span" for spans; the log level otherwise *)
  ev_trace : string;  (* "" when no ambient context *)
  ev_request : string;
}

let capacity = 512

let mutex = Mutex.create ()

(* lint: mutable-ok bounded ring of recent events; writes take [mutex]
   above, and nothing ever reads it to make a decision *)
let ring : event option array = Array.make capacity None

(* lint: mutable-ok ring cursor + total counter, same mutex *)
let cursor = ref 0

(* lint: mutable-ok same ring bookkeeping *)
let recorded = ref 0

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let record ev =
  with_lock (fun () ->
      ring.(!cursor) <- Some ev;
      cursor := (!cursor + 1) mod capacity;
      incr recorded)

let ambient_ids () =
  match Context.current () with
  | Some c -> (c.Context.trace_id, c.Context.request_id)
  | None -> ("", "")

let record_span ~name ~start ~dur =
  let trace, request = ambient_ids () in
  record
    {
      ev_ts = start;
      ev_kind = Span;
      ev_name = name;
      ev_detail = "";
      ev_dur = dur;
      ev_level = "span";
      ev_trace = trace;
      ev_request = request;
    }

let record_log ~level ~src message =
  let trace, request = ambient_ids () in
  record
    {
      ev_ts = Unix.gettimeofday ();
      ev_kind = Log;
      ev_name = src;
      ev_detail = message;
      ev_dur = 0.0;
      ev_level = level;
      ev_trace = trace;
      ev_request = request;
    }

let events () =
  with_lock (fun () ->
      let n = min !recorded capacity in
      let first = if !recorded <= capacity then 0 else !cursor in
      List.init n (fun i ->
          match ring.((first + i) mod capacity) with
          | Some e -> e
          | None -> assert false))

let event_count () = with_lock (fun () -> !recorded)

let reset () =
  with_lock (fun () ->
      Array.fill ring 0 capacity None;
      cursor := 0;
      recorded := 0)

let default_path () =
  match Sys.getenv_opt "DSVC_FLIGHT_PATH" with
  | Some p when String.trim p <> "" -> String.trim p
  | _ -> "dsvc-flight.json"

let to_json () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"flight":[|};
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"ts":%.6f,"kind":"%s","name":"%s","detail":"%s","dur_s":%.6f,"level":"%s","trace":"%s","request":"%s"}|}
           e.ev_ts
           (match e.ev_kind with Span -> "span" | Log -> "log")
           (Metrics.json_escape e.ev_name)
           (Metrics.json_escape e.ev_detail)
           e.ev_dur
           (Metrics.json_escape e.ev_level)
           (Metrics.json_escape e.ev_trace)
           (Metrics.json_escape e.ev_request)))
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b
