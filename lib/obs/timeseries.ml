(* Bounded, tiered ring of periodic metric samples (DESIGN.md §16).

   Every recorded value lands in three downsampling tiers per series —
   buckets of step, 10·step and 100·step seconds — each a ring of at
   most [cap] buckets, so memory is O(series · tiers · cap) whatever
   the process uptime. A bucket aggregates count/sum/min/max/last, so
   a coarse tier answers the same questions as the fine one, just at
   lower resolution; [query] picks the finest tier whose retention
   still covers the asked-for span.

   Clocks are injected: [record]/[query] take [~now], so tests replay
   deterministic histories and the only wall-clock reads live with the
   caller (the server-tier sampler). No file I/O here (lint R1): the
   series render to and parse from strings, and [Repo] persists them
   through Fsutil at the "timeseries.save" fault site.

   Concurrency: one mutex per store; the reactor-timer tick records
   while handler threads query, so every entry point locks. *)

type point = {
  p_bucket : int; (* floor(sample time / tier step) *)
  mutable p_count : int;
  mutable p_sum : float;
  mutable p_min : float;
  mutable p_max : float;
  mutable p_last : float;
}

type tier = {
  t_step : float;
  t_cap : int;
  mutable t_points : point list; (* newest first, length ≤ t_cap *)
}

type t = {
  step : float;
  cap : int;
  max_series : int;
  mutex : Mutex.t;
  series : (string, tier array) Hashtbl.t;
}

type sample = {
  s_time : float; (* bucket start, absolute seconds *)
  s_count : int;
  s_avg : float;
  s_min : float;
  s_max : float;
  s_last : float;
}

let tier_multipliers = [| 1; 10; 100 |]
let default_cap = 360

let default_step () = Obs.env_float "DSVC_TS_STEP" ~min:0.01 ~default:5.0

let create ?step ?(cap = default_cap) ?(max_series = 512) () =
  let step = match step with Some s -> s | None -> default_step () in
  if not (step > 0.0) then invalid_arg "Timeseries.create: step must be > 0";
  if cap < 1 then invalid_arg "Timeseries.create: cap must be positive";
  if max_series < 1 then
    invalid_arg "Timeseries.create: max_series must be positive";
  { step; cap; max_series; mutex = Mutex.create (); series = Hashtbl.create 64 }

let step t = t.step

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let mk_tiers t =
  Array.map
    (fun m -> { t_step = t.step *. float_of_int m; t_cap = t.cap; t_points = [] })
    tier_multipliers

let bucket_of tier now = int_of_float (Float.floor (now /. tier.t_step))

let trim tier =
  if List.length tier.t_points > tier.t_cap then
    tier.t_points <- List.filteri (fun i _ -> i < tier.t_cap) tier.t_points

let record_tier tier ~now v =
  let bucket = bucket_of tier now in
  match tier.t_points with
  | p :: _ when p.p_bucket = bucket ->
      p.p_count <- p.p_count + 1;
      p.p_sum <- p.p_sum +. v;
      if v < p.p_min then p.p_min <- v;
      if v > p.p_max then p.p_max <- v;
      p.p_last <- v
  | _ ->
      tier.t_points <-
        { p_bucket = bucket; p_count = 1; p_sum = v; p_min = v; p_max = v;
          p_last = v }
        :: tier.t_points;
      trim tier

let record t ~now ~metric v =
  if Float.is_nan v then ()
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.series metric with
        | Some tiers -> Array.iter (fun tier -> record_tier tier ~now v) tiers
        | None ->
            (* The series bound is a hard cap: a label-cardinality
               explosion upstream must cost new names, never memory. *)
            if Hashtbl.length t.series < t.max_series then begin
              let tiers = mk_tiers t in
              Hashtbl.add t.series metric tiers;
              Array.iter (fun tier -> record_tier tier ~now v) tiers
            end)

let metrics t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.series []
      |> List.sort compare)

let series_count t = with_lock t (fun () -> Hashtbl.length t.series)

let is_empty t = with_lock t (fun () -> Hashtbl.length t.series = 0)

let sample_of tier p =
  {
    s_time = float_of_int p.p_bucket *. tier.t_step;
    s_count = p.p_count;
    s_avg = (if p.p_count = 0 then 0.0 else p.p_sum /. float_of_int p.p_count);
    s_min = p.p_min;
    s_max = p.p_max;
    s_last = p.p_last;
  }

(* The finest tier whose full retention (step · cap) covers the span;
   the coarsest one when nothing does. *)
let pick_tier tiers ~span =
  let n = Array.length tiers in
  let rec go i =
    if i >= n - 1 then tiers.(n - 1)
    else if tiers.(i).t_step *. float_of_int tiers.(i).t_cap >= span then
      tiers.(i)
    else go (i + 1)
  in
  go 0

let query t ~metric ?since ~now () =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.series metric with
      | None -> []
      | Some tiers ->
          let since =
            match since with Some s -> s | None -> now -. (t.step *. float_of_int t.cap)
          in
          let tier = pick_tier tiers ~span:(now -. since) in
          List.filter_map
            (fun p ->
              let bucket_end = float_of_int (p.p_bucket + 1) *. tier.t_step in
              if bucket_end > since then Some (sample_of tier p) else None)
            (List.rev tier.t_points))

let avg t ~metric ~window ~now =
  let samples = query t ~metric ~since:(now -. window) ~now () in
  let count, sum =
    List.fold_left
      (fun (c, s) sm -> (c + sm.s_count, s +. (sm.s_avg *. float_of_int sm.s_count)))
      (0, 0.0) samples
  in
  if count = 0 then None else Some (sum /. float_of_int count)

let latest t ~metric =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.series metric with
      | None -> None
      | Some tiers -> (
          match tiers.(0).t_points with
          | p :: _ -> Some p.p_last
          | [] -> None))

(* ---- rendering / parsing ----

   Same idiom as the telemetry ledger: space-delimited lines, hex
   floats so parse ∘ render is the identity, an [end] trailer so a
   torn file is detectable. The series name is the LAST field and may
   contain spaces (rendered label values can), so parsing rejoins the
   tail:

     timeseries 1
     conf <step %h> <cap>
     m <tier> <bucket> <count> <sum %h> <min %h> <max %h> <last %h> <name>
     end *)

let fh = Printf.sprintf "%h"

let render t =
  with_lock t (fun () ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "timeseries 1\n";
      Buffer.add_string buf (Printf.sprintf "conf %s %d\n" (fh t.step) t.cap);
      let names =
        Hashtbl.fold (fun name _ acc -> name :: acc) t.series []
        |> List.sort compare
      in
      List.iter
        (fun name ->
          let tiers = Hashtbl.find t.series name in
          Array.iteri
            (fun ti tier ->
              List.iter
                (fun p ->
                  Buffer.add_string buf
                    (Printf.sprintf "m %d %d %d %s %s %s %s %s\n" ti p.p_bucket
                       p.p_count (fh p.p_sum) (fh p.p_min) (fh p.p_max)
                       (fh p.p_last) name))
                (List.rev tier.t_points))
            tiers)
        names;
      Buffer.add_string buf "end\n";
      Buffer.contents buf)

let parse content =
  let fail msg = Error (Printf.sprintf "corrupt timeseries ledger: %s" msg) in
  let ( let* ) = Result.bind in
  let int s = Option.to_result ~none:() (int_of_string_opt s) in
  let flt s = Option.to_result ~none:() (float_of_string_opt s) in
  let t = ref (create ~step:1.0 ()) in
  let parse_line line =
    if line = "" then Ok ()
    else
      match String.split_on_char ' ' line with
      | "timeseries" :: _ -> Ok ()
      | [ "conf"; s; c ] -> (
          match (flt s, int c) with
          | Ok s, Ok c when s > 0.0 && c >= 1 ->
              t := create ~step:s ~cap:c ();
              Ok ()
          | _ -> fail "bad conf line")
      | "m" :: ti :: bucket :: count :: sum :: mn :: mx :: last :: name_parts
        -> (
          let name = String.concat " " name_parts in
          match (int ti, int bucket, int count, flt sum, flt mn, flt mx, flt last)
          with
          | Ok ti, Ok bucket, Ok count, Ok sum, Ok mn, Ok mx, Ok last
            when name <> "" && ti >= 0 && ti < Array.length tier_multipliers
                 && count >= 1 ->
              let tiers =
                match Hashtbl.find_opt !t.series name with
                | Some tiers -> tiers
                | None ->
                    let tiers = mk_tiers !t in
                    Hashtbl.add !t.series name tiers;
                    tiers
              in
              let tier = tiers.(ti) in
              (* file order is oldest first; pushing keeps newest first *)
              tier.t_points <-
                { p_bucket = bucket; p_count = count; p_sum = sum; p_min = mn;
                  p_max = mx; p_last = last }
                :: tier.t_points;
              trim tier;
              Ok ()
          | _ -> fail "bad point line")
      | _ -> fail ("unknown line: " ^ line)
  in
  let rec body acc = function
    | [] -> fail "truncated ledger (missing end marker)"
    | "end" :: rest ->
        if List.for_all (fun l -> l = "") rest then Ok (List.rev acc)
        else fail "content after end marker"
    | l :: rest -> body (l :: acc) rest
  in
  let* lines = body [] (String.split_on_char '\n' content) in
  let rec go = function
    | [] -> Ok !t
    | l :: tl -> ( match parse_line l with Ok () -> go tl | Error _ as e -> e)
  in
  go lines

let equal a b = render a = render b

(* ---- sparklines (dsvc dash) ----

   Pure string rendering, kept here so the TUI's one interesting
   computation is unit-testable without a terminal. *)

let spark_blocks = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let buf = Buffer.create (List.length values * 3) in
      List.iter
        (fun v ->
          let i =
            if hi <= lo then 3
            else
              let f = (v -. lo) /. (hi -. lo) in
              int_of_float (f *. 7.0 +. 0.5)
          in
          Buffer.add_string buf spark_blocks.(max 0 (min 7 i)))
        values;
      Buffer.contents buf
