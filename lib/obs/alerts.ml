(* Alert rules over the metrics time-series (DESIGN.md §16).

   Two rule shapes: static thresholds (value vs bound, with a hold
   period so a single spike does not page) and multi-window SLO
   burn-rate rules in the SRE-workbook style — the SLI is a success
   ratio in [0,1]; the burn rate over a window is
   (1 − avg SLI) / (1 − objective), i.e. how many times faster than
   budget the error budget is being spent; the rule fires only when
   BOTH a short and a long window exceed the factor, so it is fast on
   real incidents and quiet on noise.

   Evaluation is deterministic under an injectable clock: [eval] takes
   [~now] and reads only the time-series, so tests replay exact
   histories. Suppression is an annotation, not a mask — a suppressed
   rule still tracks state, it just says so in the report (an operator
   silencing a known condition must not blind the record).

   Lock discipline: rule values are computed from the time-series
   BEFORE taking this module's mutex, so the two locks never nest. *)

type cmp = Lt | Gt

type rule =
  | Threshold of {
      metric : string;
      cmp : cmp;
      bound : float;
      hold : float; (* seconds the condition must persist; 0 = immediate *)
      window : float; (* averaging window; 0 = latest sample *)
    }
  | Burn_rate of {
      metric : string; (* a success-ratio SLI series in [0,1] *)
      objective : float; (* e.g. 0.99 *)
      short_window : float;
      long_window : float;
      factor : float; (* fire when both windows burn above this *)
    }

type state = Inactive | Pending of float | Firing of float | Resolved of float

type alert = {
  a_name : string;
  a_rule : rule;
  mutable a_state : state;
  mutable a_value : float option; (* last evaluated value *)
  mutable a_suppressed : string option;
}

type t = { mutex : Mutex.t; alerts : alert array }

type info = {
  i_name : string;
  i_rule : rule;
  i_state : state;
  i_value : float option;
  i_suppressed : string option;
}

let create ~rules =
  {
    mutex = Mutex.create ();
    alerts =
      Array.of_list
        (List.map
           (fun (name, rule) ->
             { a_name = name; a_rule = rule; a_state = Inactive;
               a_value = None; a_suppressed = None })
           rules);
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rule_names t = Array.to_list (Array.map (fun a -> a.a_name) t.alerts)

let suppress t ~name ~reason =
  with_lock t (fun () ->
      Array.iter
        (fun a -> if a.a_name = name then a.a_suppressed <- Some reason)
        t.alerts)

let unsuppress t ~name =
  with_lock t (fun () ->
      Array.iter
        (fun a -> if a.a_name = name then a.a_suppressed <- None)
        t.alerts)

(* The rule's observed value and whether the firing condition holds.
   [None] means the series has no data in scope — a rule cannot fire
   on absence. *)
let evaluate_rule rule ~ts ~now =
  match rule with
  | Threshold { metric; cmp; bound; window; _ } -> (
      let value =
        if window > 0.0 then Timeseries.avg ts ~metric ~window ~now
        else Timeseries.latest ts ~metric
      in
      match value with
      | None -> (None, false)
      | Some v ->
          (Some v, (match cmp with Lt -> v < bound | Gt -> v > bound)))
  | Burn_rate { metric; objective; short_window; long_window; factor } -> (
      let budget = 1.0 -. objective in
      if budget <= 0.0 then (None, false)
      else
        let burn window =
          Option.map
            (fun sli -> (1.0 -. sli) /. budget)
            (Timeseries.avg ts ~metric ~window ~now)
        in
        match (burn short_window, burn long_window) with
        | Some s, Some l -> (Some s, s > factor && l > factor)
        | Some s, None -> (Some s, false)
        | None, _ -> (None, false))

let hold_of = function
  | Threshold { hold; _ } -> hold
  | Burn_rate _ -> 0.0 (* the long window is already the damper *)

let step_state state ~cond ~hold ~now =
  if cond then
    match state with
    | Firing _ -> state
    | Pending since -> if now -. since >= hold then Firing since else state
    | Inactive | Resolved _ ->
        if hold <= 0.0 then Firing now else Pending now
  else
    match state with
    | Firing _ -> Resolved now
    | Pending _ -> Inactive
    | Inactive | Resolved _ -> state

let eval t ~ts ~now =
  (* values first, lock second: the Timeseries mutex and ours must
     never be held together *)
  let results =
    Array.map (fun a -> evaluate_rule a.a_rule ~ts ~now) t.alerts
  in
  with_lock t (fun () ->
      Array.iteri
        (fun i a ->
          let value, cond = results.(i) in
          a.a_value <- value;
          a.a_state <-
            step_state a.a_state ~cond ~hold:(hold_of a.a_rule) ~now)
        t.alerts)

let report t =
  with_lock t (fun () ->
      Array.to_list
        (Array.map
           (fun a ->
             { i_name = a.a_name; i_rule = a.a_rule; i_state = a.a_state;
               i_value = a.a_value; i_suppressed = a.a_suppressed })
           t.alerts))

let state_name = function
  | Inactive -> "inactive"
  | Pending _ -> "pending"
  | Firing _ -> "firing"
  | Resolved _ -> "resolved"

(* One line per rule, grep-friendly: name state since value [suppressed]. *)
let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun i ->
      let since =
        match i.i_state with
        | Inactive -> "-"
        | Pending s | Firing s | Resolved s -> Printf.sprintf "%.3f" s
      in
      let value =
        match i.i_value with Some v -> Printf.sprintf "%.6g" v | None -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s since=%s value=%s%s\n" i.i_name
           (state_name i.i_state) since value
           (match i.i_suppressed with
           | Some reason ->
               Printf.sprintf " suppressed=%S"
                 (String.map (fun c -> if c = '\n' then ' ' else c) reason)
           | None -> "")))
    (report t);
  Buffer.contents buf

(* ---- the stock rule set ----

   Windows and bounds are env-tunable through the validated parsers;
   the metric names are the derived SLI series the Sampler maintains
   (reserved "sli:" prefix), so rules survive label churn in the raw
   registry. *)

let default_rules () =
  let short =
    Obs.env_float "DSVC_ALERT_WINDOW_SHORT" ~min:0.01 ~default:300.0
  in
  let long =
    Obs.env_float "DSVC_ALERT_WINDOW_LONG" ~min:0.01 ~default:3600.0
  in
  let hold = Obs.env_float "DSVC_ALERT_HOLD" ~min:0.0 ~default:60.0 in
  [
    ( "checkout_p99",
      Threshold
        {
          metric = "sli:checkout_p99_seconds";
          cmp = Gt;
          bound = Obs.env_float "DSVC_ALERT_CHECKOUT_P99" ~default:2.0;
          hold;
          window = 0.0;
        } );
    ( "drift_score",
      Threshold
        {
          metric = "sli:drift_score";
          cmp = Gt;
          bound = Obs.env_float "DSVC_ALERT_DRIFT" ~default:1.0;
          hold;
          window = 0.0;
        } );
    ( "quorum_write_burn",
      Burn_rate
        {
          metric = "sli:quorum_write_success";
          objective = 0.99;
          short_window = short;
          long_window = long;
          factor = 2.0;
        } );
    ( "scrape_up_burn",
      Burn_rate
        {
          metric = "sli:scrape_up";
          objective = 0.99;
          short_window = short;
          long_window = long;
          factor = 2.0;
        } );
    (* The fast path for the chaos drill: any peer unscrapeable right
       now fires on the next evaluation — burn-rate math alone would
       take a large slice of the short window to cross its factor. *)
    ( "cluster_scrape_up",
      Threshold
        {
          metric = "sli:scrape_up";
          cmp = Lt;
          bound = 1.0;
          hold = 0.0;
          window = 0.0;
        } );
  ]
