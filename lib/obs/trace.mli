(** Scoped spans with a bounded in-memory ring buffer and optional
    Chrome trace_event export.

    All entry points are no-ops while {!Obs.enabled} is false — no
    clock or [Gc.allocated_bytes] reads happen. Nesting is per-domain;
    {!Pool} plumbs the caller's span id into worker domains with
    {!with_parent} so parallel spans attach to the right parent. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;  (** seconds since epoch *)
  dur : float;  (** seconds *)
  domain : int;
  alloc : float;  (** bytes allocated by this domain during the span *)
}

val with_span : ?parent:int -> string -> (unit -> 'a) -> 'a
(** Run the function inside a span. The parent defaults to the
    innermost open span on the current domain. Exceptions propagate;
    the span is recorded either way. *)

val current_id : unit -> int option
(** Innermost open span id on this domain ([None] when disabled). *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Run with the domain's span stack re-seeded to the given parent —
    used by [Pool] workers so their spans nest under the caller's. *)

val spans : unit -> span list
(** Completed spans, oldest first (bounded: most recent 8192). *)

val span_count : unit -> int
(** Total spans recorded since start/reset (may exceed the ring). *)

val reset : unit -> unit

val to_chrome_json : unit -> string
(** Render the ring as Chrome [trace_event] JSON. The caller writes
    the file (via [Fsutil]); this library never touches disk. *)

type agg = {
  agg_name : string;
  count : int;
  total_s : float;
  total_alloc : float;
}

val summarize : unit -> agg list
(** Aggregate completed spans by name, sorted by total time
    descending — the [dsvc optimize --profile] table. *)
