(** Scoped spans with a bounded in-memory ring buffer and optional
    Chrome trace_event export.

    All entry points are no-ops while {!Obs.enabled} is false — no
    clock or [Gc.allocated_bytes] reads happen — with one deliberate
    exception: when the ambient {!Context} was head-sampled for the
    flight recorder, {!with_span} still times the call and records it
    to {!Flight} (and nowhere else). Nesting is per-domain; {!Pool}
    plumbs the caller's span id into worker domains with
    {!with_parent} so parallel spans attach to the right parent. Each
    recorded span is stamped with the ambient context's trace id,
    tying client- and server-side spans of one request into a single
    trace. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;  (** seconds since epoch *)
  dur : float;  (** seconds *)
  domain : int;
  alloc : float;  (** bytes allocated by this domain during the span *)
  trace : string option;  (** ambient {!Context} trace id, if any *)
}

val with_span : ?parent:int -> string -> (unit -> 'a) -> 'a
(** Run the function inside a span. The parent defaults to the
    innermost open span on the current domain. Exceptions propagate;
    the span is recorded either way. *)

val current_id : unit -> int option
(** Innermost open span id on this domain ([None] when disabled). *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Run with the domain's span stack re-seeded to the given parent —
    used by [Pool] workers so their spans nest under the caller's. *)

val spans : unit -> span list
(** Completed spans, oldest first (bounded: most recent
    {!capacity}). *)

val span_count : unit -> int
(** Total spans recorded since start/reset (may exceed the ring). *)

val reset : unit -> unit

val capacity : unit -> int
(** Current ring capacity: [DSVC_TRACE_RING] at startup (default
    8192), or the last {!set_capacity}. *)

val default_capacity : int

val capacity_of_string : string -> (int, string) result
(** Validate a [DSVC_TRACE_RING] value: an integer within
    [[16, 1048576]]. The env path falls back to {!default_capacity}
    (with a stderr warning) on anything else. *)

val set_capacity : int -> unit
(** Replace the ring with an empty one of the given capacity
    (resetting recorded spans). Raises [Invalid_argument] outside the
    bounds {!capacity_of_string} accepts. Primarily a test hook —
    production configuration goes through [DSVC_TRACE_RING]. *)

val to_chrome_json : unit -> string
(** Render the ring as Chrome [trace_event] JSON. The caller writes
    the file (via [Fsutil]); this library never touches disk. *)

val chrome_json_of_spans : span list -> string
(** {!to_chrome_json} over an explicit span list (golden tests, or
    exporting a filtered trace). *)

type agg = {
  agg_name : string;
  count : int;
  total_s : float;
  total_alloc : float;
}

val summarize : unit -> agg list
(** Aggregate completed spans by name, sorted by total time
    descending — the [dsvc optimize --profile] table. *)

val summarize_spans : span list -> agg list
(** {!summarize} over an explicit span list (e.g. the spans of one
    trace id, for the server's [/trace/:request_id] endpoint). *)
