(* Scoped spans with a bounded in-memory ring of completed spans.

   Span nesting is tracked with a per-domain stack (Domain.DLS);
   [Pool] captures the caller's current span id before spawning and
   re-seeds the worker domains with [with_parent], so spans opened
   inside parallel regions still attach to the optimize phase that
   spawned them. Every span is stamped with the ambient [Context]
   trace id, which is how client and server spans of one request end
   up in one trace.

   The ring keeps the most recent [capacity ()] completed spans
   (DSVC_TRACE_RING, default 8192); [to_chrome_json] renders them in
   Chrome trace_event format. The caller is responsible for writing
   the file (through Fsutil — this library never opens files).

   Independent of the Obs gate, a completed span is copied into the
   [Flight] ring when the ambient context was head-sampled: that path
   reads the clock even with DSVC_OBS off, but only for the sampled
   1-in-N operations, and it never feeds a decision (DESIGN.md §11). *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float; (* seconds since epoch *)
  dur : float; (* seconds *)
  domain : int;
  alloc : float; (* bytes allocated by this domain during the span *)
  trace : string option; (* ambient Context trace id, if any *)
}

(* ---- ring capacity (DSVC_TRACE_RING) ---- *)

let default_capacity = 8192
let min_capacity = 16
let max_capacity = 1 lsl 20

let capacity_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= min_capacity && n <= max_capacity -> Ok n
  | Some n ->
      Error
        (Printf.sprintf "DSVC_TRACE_RING must be between %d and %d (got %d)"
           min_capacity max_capacity n)
  | None ->
      Error (Printf.sprintf "DSVC_TRACE_RING must be an integer (got %S)" s)

(* Same validation as [capacity_of_string] (kept as the test hook /
   [set_capacity] guard), through the shared env parser. *)
let env_capacity =
  Obs.env_int "DSVC_TRACE_RING" ~min:min_capacity ~max:max_capacity
    ~default:default_capacity

let mutex = Mutex.create ()

(* lint: mutable-ok bounded ring of completed spans; writes take
   [mutex] above, and nothing ever reads it to make a decision *)
let ring : span option array ref = ref (Array.make env_capacity None)

(* lint: mutable-ok ring cursor + total counter, same mutex *)
let cursor = ref 0

(* lint: mutable-ok same ring bookkeeping *)
let recorded = ref 0

let next_id = Atomic.make 1

let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let capacity () = with_lock (fun () -> Array.length !ring)

let set_capacity n =
  if n < min_capacity || n > max_capacity then
    invalid_arg
      (Printf.sprintf "Trace.set_capacity: %d outside [%d, %d]" n min_capacity
         max_capacity);
  with_lock (fun () ->
      ring := Array.make n None;
      cursor := 0;
      recorded := 0)

let record s =
  with_lock (fun () ->
      let ring = !ring in
      ring.(!cursor) <- Some s;
      cursor := (!cursor + 1) mod Array.length ring;
      incr recorded)

let current_id () =
  if not (Obs.enabled ()) then None
  else
    match !(Domain.DLS.get stack_key) with [] -> None | id :: _ -> Some id

(* Flight-only span: the Obs gate is off but the ambient context was
   head-sampled. Time the call and drop it into the flight ring; no
   ids, no stack, no span ring. *)
let with_span_flight name f =
  let t0 = Unix.gettimeofday () in
  let finish () =
    Flight.record_span ~name ~start:t0 ~dur:(Unix.gettimeofday () -. t0)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt

let with_span ?parent name f =
  if not (Obs.enabled ()) then
    if Context.sampled_now () then with_span_flight name f else f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent =
      match parent with
      | Some _ as p -> p
      | None -> ( match !stack with [] -> None | id :: _ -> Some id)
    in
    let id = Atomic.fetch_and_add next_id 1 in
    stack := id :: !stack;
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    let finish () =
      let dur = Unix.gettimeofday () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      (match !stack with
      | top :: rest when top = id -> stack := rest
      | _ -> () (* unbalanced pop: a nested span escaped; drop silently *));
      record
        {
          id;
          parent;
          name;
          start = t0;
          dur;
          domain = (Domain.self () :> int);
          alloc;
          trace = Context.current_trace_id ();
        };
      if Context.sampled_now () then
        Flight.record_span ~name ~start:t0 ~dur
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

(* Seed a fresh domain's span stack so spans it opens nest under the
   caller's span. Restores the previous stack on exit (the calling
   domain doubles as pool worker). *)
let with_parent parent f =
  if not (Obs.enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let saved = !stack in
    stack := (match parent with None -> [] | Some id -> [ id ]);
    Fun.protect ~finally:(fun () -> stack := saved) f
  end

let spans () =
  with_lock (fun () ->
      let ring = !ring in
      let capacity = Array.length ring in
      let n = min !recorded capacity in
      let first = if !recorded <= capacity then 0 else !cursor in
      List.init n (fun i ->
          match ring.((first + i) mod capacity) with
          | Some s -> s
          | None -> assert false))

let span_count () = with_lock (fun () -> !recorded)

let reset () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      cursor := 0;
      recorded := 0)

(* ---- Chrome trace_event ---- *)

let chrome_json_of_spans ss =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"displayTimeUnit":"ms","traceEvents":[|};
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"name":"%s","cat":"dsvc","ph":"X","ts":%.1f,"dur":%.1f,"pid":1,"tid":%d,"args":{"id":%d,"parent":%s,"trace":%s,"alloc_bytes":%.0f}}|}
           (Metrics.json_escape s.name)
           (s.start *. 1e6) (s.dur *. 1e6) s.domain s.id
           (match s.parent with None -> "null" | Some p -> string_of_int p)
           (match s.trace with
           | None -> "null"
           | Some t -> "\"" ^ Metrics.json_escape t ^ "\"")
           s.alloc))
    ss;
  Buffer.add_string b "]}";
  Buffer.contents b

let to_chrome_json () = chrome_json_of_spans (spans ())

(* ---- aggregation for `dsvc optimize --profile` ---- *)

type agg = {
  agg_name : string;
  count : int;
  total_s : float;
  total_alloc : float;
}

let summarize_spans ss =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev =
        Option.value
          (Hashtbl.find_opt tbl s.name)
          ~default:{ agg_name = s.name; count = 0; total_s = 0.; total_alloc = 0. }
      in
      Hashtbl.replace tbl s.name
        {
          prev with
          count = prev.count + 1;
          total_s = prev.total_s +. s.dur;
          total_alloc = prev.total_alloc +. s.alloc;
        })
    ss;
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare (b.total_s, a.agg_name) (a.total_s, b.agg_name))

let summarize () = summarize_spans (spans ())
