(** Process-global metrics: counters, gauges, fixed-bucket histograms,
    with Prometheus-text and JSON exposition.

    Metric names follow [dsvc_<tier>_<name>] (DESIGN.md §10). All
    operations are mutex-guarded and safe to call from any domain.

    Updates routed at the implicit default registry are dropped while
    {!Obs.enabled} is false; passing an explicit [?registry] always
    records, which is what the exposition tests use. *)

type t
(** A registry. *)

val create : unit -> t
val default : t

val default_buckets : float array
(** Latency buckets in seconds (100µs .. 16s). *)

val size_buckets : float array
(** Byte-size buckets (64 B .. 4 MiB). *)

val counter :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?by:float ->
  string ->
  unit
(** Add [by] (default 1) to a counter series. *)

val gauge :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  float ->
  unit
(** Set a gauge series to the given value. *)

val observe :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  float ->
  unit
(** Record one sample into a histogram series. Bucket bounds are fixed
    by the first observation of the family. *)

val time :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  (unit -> 'a) ->
  'a
(** [time name f] runs [f], recording its wall-clock duration into the
    histogram [name]. When recording is off the clock is never read
    and [f] runs untouched — this is the only sanctioned way for code
    inside the R5 determinism scope to obtain timings. *)

val reset : ?registry:t -> unit -> unit

val to_prometheus : ?registry:t -> unit -> string
(** Prometheus text format, families sorted by name, series by label
    key; histogram buckets are cumulative with an implicit [+Inf]. *)

val to_json : ?registry:t -> unit -> string
(** Same snapshot as JSON:
    [{"metrics":[{"name":..,"type":..,"help":..,"samples":[..]}]}]. *)

val snapshot_values : ?registry:t -> unit -> (string * float) list
(** Flat [(sample, value)] pairs — counters/gauges directly,
    histograms as [_sum]/[_count] — for bench JSON embedding. *)

val family_names : ?registry:t -> unit -> string list
(** Sorted distinct metric family names. *)

type hist_snapshot = {
  hs_name : string;  (** family name *)
  hs_labels : (string * string) list;  (** canonical (sorted) labels *)
  hs_bounds : float array;  (** strictly increasing upper bounds *)
  hs_counts : int array;
      (** per-bucket counts, non-cumulative; length [bounds + 1], the
          last entry being the implicit [+Inf] bucket *)
  hs_sum : float;
  hs_count : int;
}

val histograms : ?registry:t -> unit -> hist_snapshot list
(** Copied snapshots of every histogram series, families sorted by
    name and series by label key. The {!Versioning_obs.Sampler} diffs
    consecutive snapshots to derive windowed quantiles (e.g. checkout
    p99) from the cumulative process-lifetime histograms. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared
    with {!Trace.to_chrome_json} and the bench emitter). *)

val escape_label : string -> string
(** Escape a label {e value} per the Prometheus text exposition spec
    (backslash, double quote, and newline). Exposed for code that splices labels
    into an exposition by hand — the server's cluster-scrape
    relabeler must not invent its own quoting. *)
