(** Periodic metrics sampler: one {!tick} snapshots the registry into
    the {!Timeseries}, derives the SLI series the {!Alerts} rules
    watch (reserved ["sli:"] prefix), and runs one alert evaluation
    (DESIGN.md §16).

    Derived series: [sli:checkout_p99_seconds] (windowed p99 from
    consecutive cumulative-histogram diffs — checkout route latency,
    falling back to observed recreation wall-clock outside a server),
    [sli:quorum_write_success] (quorum writes reaching quorum since
    the last tick; an idle window is healthy), [sli:drift_score]
    (max drift gauge, label-free), and [sli:scrape_up] via the
    injected [up_fraction] (measured elsewhere — the server's
    dedicated probe thread — never here).

    Reactor-safe by construction (lint R7): no clock ([~now] is
    injected), no I/O, no blocking — mutex-guarded reads and writes
    only. Persisting the time-series is the caller's job. *)

type t

val create :
  ?registry:Metrics.t ->
  ?alerts:Alerts.t ->
  ?up_fraction:(unit -> float option) ->
  ts:Timeseries.t ->
  unit ->
  t
(** Without [?registry] the implicit default registry is sampled
    (tests pass a private one). [up_fraction] must be non-blocking:
    it runs inside the reactor tick — return the last fraction some
    other thread measured, never measure here. *)

val timeseries : t -> Timeseries.t

val tick : t -> now:float -> unit
(** Sample, derive, evaluate. Deterministic for a given registry
    state, previous-tick state and [now]. *)
