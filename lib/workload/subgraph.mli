(** BFS-sampled subproblems — the paper's Figure 17 methodology: "for
    a given number of versions n, we randomly choose a node and
    traverse the graph starting at that node in breadth-first manner
    till we construct a subgraph with n versions". *)

val bfs_sample :
  Versioning_core.Aux_graph.t ->
  n:int ->
  Versioning_util.Prng.t ->
  Versioning_core.Aux_graph.t
(** [bfs_sample g ~n rng] picks a random start version and BFS-grows
    (over revealed delta edges, ignoring direction) a set of up to [n]
    versions, then returns the induced auxiliary subgraph (versions
    renumbered [1..k], all their materializations, and every revealed
    delta between kept versions). If the component is smaller than
    [n], additional BFS trees are grown from fresh random starts. *)
