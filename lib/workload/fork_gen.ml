module Prng = Versioning_util.Prng
module Csv = Versioning_delta.Csv
module Zipf = Versioning_util.Zipf

type reveal_policy =
  | Size_threshold of float
  | Resemblance of { threshold : float; per_fork_cap : int }
  | All_pairs

type params = {
  n_forks : int;
  base_rows : int;
  base_cols : int;
  divergence : float;
  reveal : reveal_policy;
  mode : Dataset_gen.delta_mode;
}

let default_params =
  {
    n_forks = 120;
    base_rows = 220;
    base_cols = 8;
    divergence = 0.06;
    reveal = Size_threshold 2200.0;
    mode = Dataset_gen.Line_directed;
  }

type t = {
  name : string;
  contents : string array;
  aux : Versioning_core.Aux_graph.t;
  n_deltas : int;
  version_sizes : float array;
  delta_sizes : float array;
}

let generate ?name params rng =
  if params.n_forks < 1 then invalid_arg "Fork_gen.generate";
  let tg = Table_gen.create rng in
  let base =
    Table_gen.fresh_table tg ~rows:params.base_rows ~cols:params.base_cols
  in
  let zipf = Zipf.create ~n:params.n_forks ~exponent:1.5 in
  let n = params.n_forks in
  let contents = Array.make (n + 1) "" in
  (* Fork 1 is the pristine upstream; others diverge by a Zipfian
     amount (rank resampled per fork). *)
  contents.(1) <- Csv.print base;
  for v = 2 to n do
    let rank = Zipf.sample zipf rng in
    let intensity =
      params.divergence *. float_of_int rank /. float_of_int params.n_forks
      *. 4.0
    in
    let intensity = min 0.8 (max 0.005 intensity) in
    let rounds = Prng.int_in rng 1 3 in
    let table = ref base in
    for _ = 1 to rounds do
      let edits = Table_gen.random_edits tg ~table:!table ~intensity in
      table := Table_gen.apply tg !table edits
    done;
    contents.(v) <- Csv.print !table
  done;
  (* Revealing. *)
  let size v = float_of_int (String.length contents.(v)) in
  let wanted =
    match params.reveal with
    | Size_threshold threshold ->
        fun u v -> Float.abs (size u -. size v) < threshold
    | All_pairs -> fun _ _ -> true
    | Resemblance { threshold; per_fork_cap } ->
        (* Sketch once, then keep each fork's most similar partners. *)
        let sketches =
          Array.init (n + 1) (fun v ->
              if v = 0 then Versioning_delta.Resemblance.sketch ""
              else Versioning_delta.Resemblance.sketch contents.(v))
        in
        let allowed = Hashtbl.create (n * 4) in
        for u = 1 to n do
          let ranked =
            List.init n (fun i -> i + 1)
            |> List.filter (fun v -> v <> u)
            |> List.map (fun v ->
                   (v, Versioning_delta.Resemblance.similarity sketches.(u) sketches.(v)))
            |> List.filter (fun (_, s) -> s >= threshold)
            |> List.sort (fun (_, a) (_, b) -> compare b a)
          in
          List.iteri
            (fun i (v, _) ->
              if i < per_fork_cap then Hashtbl.replace allowed (u, v) ())
            ranked
        done;
        fun u v -> Hashtbl.mem allowed (u, v) || Hashtbl.mem allowed (v, u)
  in
  let pairs = ref [] in
  for u = 1 to n do
    for v = 1 to n do
      let keep = if params.mode = Dataset_gen.Two_way then u < v else u <> v in
      if keep && wanted u v then pairs := (u, v) :: !pairs
    done
  done;
  let aux, n_deltas, delta_sizes =
    Dataset_gen.build_aux ~contents ~mode:params.mode ~pairs:!pairs
  in
  let version_sizes = Array.init (n + 1) (fun v -> if v = 0 then 0.0 else size v) in
  {
    name = Option.value name ~default:"forks";
    contents;
    aux;
    n_deltas;
    version_sizes;
    delta_sizes;
  }
