(** Random tabular data and the paper's six edit commands (§5.1):
    add / delete a set of consecutive rows, add / remove a column, and
    modify a subset of rows / columns.

    Tables are headered {!Versioning_delta.Csv.table}s; generated
    fields are short alphanumeric tokens (CSV-safe by construction).
    Column names are globally unique per generator so that column
    adds never collide with previously removed names. *)

type t
(** Generator state: the naming counter and field vocabulary. *)

val create : Versioning_util.Prng.t -> t

val fresh_table : t -> rows:int -> cols:int -> Versioning_delta.Csv.table
(** A random rectangular table with a header row plus [rows] data
    rows. *)

type edit =
  | Add_rows of { at : int; count : int }
      (** insert [count] random rows before data-row index [at] *)
  | Delete_rows of { at : int; count : int }
      (** delete [count] consecutive data rows at [at] *)
  | Add_column of { at : int }
      (** insert a fresh named column at column index [at] *)
  | Remove_column of { at : int }  (** drop column [at] *)
  | Modify_cells of { fraction : float }
      (** resample roughly [fraction] of all data cells *)

val pp_edit : Format.formatter -> edit -> unit

val random_edits :
  t ->
  table:Versioning_delta.Csv.table ->
  intensity:float ->
  edit list
(** A plausible edit batch for one derivation step. [intensity]
    roughly scales how much of the table changes (0.01 = light-touch
    cleaning, 0.3 = heavy restructuring). Row edits dominate; schema
    changes are occasional, mirroring data-science practice. *)

val apply : t -> Versioning_delta.Csv.table -> edit list -> Versioning_delta.Csv.table
(** Apply edits left to right. Out-of-range positions are clamped, so
    any edit list is applicable to any headered table. *)
