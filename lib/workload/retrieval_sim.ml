module Storage_graph = Versioning_core.Storage_graph
module Prng = Versioning_util.Prng
module Zipf = Versioning_util.Zipf

type result = {
  accesses : int;
  total_cost : float;
  hits : int;
  partial_hits : int;
}

(* Tiny LRU over version ids: association list, most recent first —
   cache sizes in this setting are tens of entries. *)
type lru = { mutable items : int list; slots : int }

let lru_create slots = { items = []; slots }

let lru_mem c v = List.mem v c.items

let lru_touch c v =
  if c.slots > 0 then begin
    let rest = List.filter (fun x -> x <> v) c.items in
    let items = v :: rest in
    c.items <-
      (if List.length items > c.slots then List.filteri (fun i _ -> i < c.slots) items
       else items)
  end

let run sg ~cache_slots ~accesses =
  if cache_slots < 0 then invalid_arg "Retrieval_sim.run: negative cache";
  let n = Storage_graph.n_versions sg in
  let cache = lru_create cache_slots in
  let total = ref 0.0 and hits = ref 0 and partial = ref 0 in
  List.iter
    (fun v ->
      if v < 1 || v > n then
        invalid_arg (Printf.sprintf "Retrieval_sim.run: version %d" v);
      if lru_mem cache v then begin
        incr hits;
        lru_touch cache v
      end
      else begin
        (* Walk up to a cached ancestor or the chain's root edge. *)
        let cost = ref 0.0 in
        let cut = ref false in
        let u = ref v in
        let stop = ref false in
        while not !stop do
          let w = Storage_graph.edge_weight sg !u in
          cost := !cost +. w.Versioning_core.Aux_graph.phi;
          let p = Storage_graph.parent sg !u in
          if p = 0 then stop := true
          else if lru_mem cache p then begin
            cut := true;
            lru_touch cache p;
            stop := true
          end
          else u := p
        done;
        if !cut then incr partial;
        total := !total +. !cost;
        lru_touch cache v
      end)
    accesses;
  {
    accesses = List.length accesses;
    total_cost = !total;
    hits = !hits;
    partial_hits = !partial;
  }

let zipf_stream ~n_versions ~length ~exponent rng =
  if n_versions < 1 || length < 0 then invalid_arg "Retrieval_sim.zipf_stream";
  let zipf = Zipf.create ~n:n_versions ~exponent in
  (* ranks -> versions by a random permutation *)
  let perm = Array.init n_versions (fun i -> i + 1) in
  Prng.shuffle rng perm;
  List.init length (fun _ -> perm.(Zipf.sample zipf rng - 1))
