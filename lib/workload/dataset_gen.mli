(** Stage two of the synthetic suite (§5.1): walk a version history,
    materialize every version's tabular content by replaying edit
    commands, then reveal ⟨Δ, Φ⟩ entries by differencing versions
    within a hop distance of each other — producing the
    {!Versioning_core.Aux_graph.t} the optimization algorithms
    consume.

    Four delta regimes cover the paper's three scenarios:
    - [Line_directed]: uncompressed UNIX-style line diffs; directed,
      Φ = Δ (scenario 2);
    - [Line_compressed]: LZ-compressed line diffs with an I/O + CPU
      recreation model; directed, Φ ≠ Δ (scenario 3);
    - [Cell_directed]: cell-level tabular deltas; directed, Φ = Δ;
    - [Two_way]: both directional line diffs stored together;
      symmetric, Φ = Δ (scenario 1, the paper's §5.3 construction
      "undirected deltas were obtained by concatenating the two
      directional deltas"). *)

type delta_mode = Line_directed | Line_compressed | Cell_directed | Two_way

type params = {
  initial_rows : int;  (** data rows of the root version *)
  initial_cols : int;
  edit_intensity : float;  (** see {!Table_gen.random_edits} *)
  max_hops : int;  (** reveal deltas within this hop distance *)
  reveal_cap : int;  (** at most this many reveals per version *)
  mode : delta_mode;
}

val default_params : params
(** 120×8 root, intensity 0.05, 4 hops, cap 24, [Line_directed]. *)

type t = {
  name : string;
  history : History_gen.t;
  contents : string array;  (** CSV text per version, index [1..n] *)
  aux : Versioning_core.Aux_graph.t;
  n_deltas : int;  (** revealed off-diagonal entries *)
  version_sizes : float array;  (** bytes per version, index [1..n] *)
  delta_sizes : float array;  (** Δ of every revealed delta *)
}

val generate :
  ?name:string -> History_gen.t -> params -> Versioning_util.Prng.t -> t

val avg_version_size : t -> float

val build_aux :
  contents:string array ->
  mode:delta_mode ->
  pairs:(int * int) list ->
  Versioning_core.Aux_graph.t * int * float array
(** Reveal materializations for every version plus the given ordered
    delta pairs; returns the graph, the revealed-delta count, and the
    Δ of each revealed delta. Under [Two_way] each pair is mirrored
    (pass each unordered pair once). *)

val all_pairs_aux :
  contents:string array ->
  mode:delta_mode ->
  Versioning_core.Aux_graph.t
(** Reveal {e every} pairwise delta — used for the small Table 2
    instances (v15/v25/v50), where the paper also computes deltas
    between all pairs. [contents] is indexed [1..n] like
    {!t.contents}. *)
