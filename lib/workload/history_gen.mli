(** Synthetic version-history (derivation DAG) generator — the first
    stage of the paper's two-step synthetic dataset suite (§5.1),
    driven by the same parameters:

    - [n_commits]: total number of versions;
    - [branch_interval] / [branch_probability]: how many consecutive
      trunk commits pass between branching opportunities, and the
      chance one is taken;
    - [branch_limit]: maximum simultaneous branches from one point
      (the actual count is uniform in [1..branch_limit]);
    - [branch_length]: maximum commits per branch (actual length
      uniform in [1..branch_length]);
    - [merge_probability]: chance a finished branch is merged back
      into the trunk, creating a two-parent version (DATAHUB-style
      user-driven merges).

    Version ids are [1..n] in creation order; version 1 is the root.
    The result is always a connected DAG. *)

type params = {
  n_commits : int;
  branch_interval : int;
  branch_probability : float;
  branch_limit : int;
  branch_length : int;
  merge_probability : float;
}

val flat_params : n_commits:int -> params
(** The paper's "densely connected" (DC) shape: branches are frequent,
    numerous, and short. *)

val linear_params : n_commits:int -> params
(** The paper's "linear chain" (LC) shape: branches are rare, spaced
    out, and long. *)

type t = {
  n_versions : int;
  parents : int list array;
      (** index [1..n]; derivation parents (2 for merges), creation
          order; [parents.(1) = []]. *)
  children : int list array;  (** inverse of [parents]. *)
}

val generate : params -> Versioning_util.Prng.t -> t
(** @raise Invalid_argument on non-positive [n_commits] or
    nonsensical parameters. *)

val undirected_hop_pairs : t -> max_hops:int -> cap:int -> (int * int) list
(** All ordered pairs [(u, v)], [u ≠ v], whose undirected hop distance
    in the DAG is ≤ [max_hops] — the paper's rule for choosing which
    Δ/Φ entries to reveal. At most [cap] pairs per source version
    (nearest first), keeping dense histories tractable. *)

val first_parent : t -> int -> int option
(** The primary derivation parent (first in the list), [None] for the
    root. *)

val topological_order : t -> int array
(** Creation order is already topological; returned as an array
    [1..n]. *)
