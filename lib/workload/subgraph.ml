module Digraph = Versioning_graph.Digraph
module Prng = Versioning_util.Prng
module Aux_graph = Versioning_core.Aux_graph

let bfs_sample g ~n rng =
  let total = Aux_graph.n_versions g in
  let n = min n total in
  if n < 1 then invalid_arg "Subgraph.bfs_sample: n must be >= 1";
  let dg = Aux_graph.graph g in
  let keep = Array.make (total + 1) false in
  let kept = ref 0 in
  let q = Queue.create () in
  let visit v =
    if not keep.(v) then begin
      keep.(v) <- true;
      incr kept;
      Queue.add v q
    end
  in
  while !kept < n do
    (* Fresh random start among unkept versions. *)
    let start =
      let candidate = ref (1 + Prng.int rng total) in
      while keep.(!candidate) do
        candidate := 1 + Prng.int rng total
      done;
      !candidate
    in
    visit start;
    while (not (Queue.is_empty q)) && !kept < n do
      let u = Queue.pop q in
      Digraph.iter_out dg u (fun e ->
          if e.dst <> 0 && !kept < n then visit e.dst);
      Digraph.iter_in dg u (fun e ->
          if e.src <> 0 && !kept < n then visit e.src)
    done;
    Queue.clear q
  done;
  (* Renumber kept versions 1..n in ascending original id. *)
  let remap = Array.make (total + 1) 0 in
  let next = ref 0 in
  for v = 1 to total do
    if keep.(v) then begin
      incr next;
      remap.(v) <- !next
    end
  done;
  let sub = Aux_graph.create ~n_versions:!next in
  Digraph.iter_edges dg (fun e ->
      if e.src = 0 then begin
        if keep.(e.dst) then
          Aux_graph.add_materialization sub ~version:remap.(e.dst)
            ~delta:e.label.Aux_graph.delta ~phi:e.label.Aux_graph.phi
      end
      else if keep.(e.src) && keep.(e.dst) then
        Aux_graph.add_delta sub ~src:remap.(e.src) ~dst:remap.(e.dst)
          ~delta:e.label.Aux_graph.delta ~phi:e.label.Aux_graph.phi);
  sub
