(** Simulated repository-fork workloads — stand-ins for the paper's
    real-world datasets (986 Twitter Bootstrap forks, 100 Linux
    forks).

    The paper built BF/LF by checking out the latest version of every
    fork, concatenating its files, and computing deltas between all
    pairs of versions whose size difference was under a threshold.
    The resulting cost structure — which is what the algorithms see —
    has three key properties this generator reproduces:

    - {e no derivation chain}: every fork is one hop from a common
      ancestor, so the version graph gives no delta hints;
    - {e clustered similarity}: forks diverge by different amounts;
      most pairs are similar, some drastically different;
    - {e thresholded revealing}: deltas exist only between versions
      whose sizes differ by less than a threshold.

    Forks are produced by replaying random edit batches of
    Zipf-distributed intensity on a common base document. *)

type reveal_policy =
  | Size_threshold of float
      (** reveal a delta only when the two versions' sizes differ by
          less than this many bytes (the paper's 100 KB / 10 MB
          rule) *)
  | Resemblance of { threshold : float; per_fork_cap : int }
      (** reveal pairs whose MinHash-estimated similarity is at least
          [threshold], keeping at most [per_fork_cap] per fork — the
          §2.1 hashing-based alternative ({!Versioning_delta.Resemblance}) *)
  | All_pairs  (** reveal everything (small collections only) *)

type params = {
  n_forks : int;
  base_rows : int;
  base_cols : int;
  divergence : float;
      (** mean fraction of the base a fork rewrites; per-fork
          intensity is this scaled by a Zipf(1.5) rank, so a few forks
          diverge wildly and most barely *)
  reveal : reveal_policy;
  mode : Dataset_gen.delta_mode;
}

val default_params : params

type t = {
  name : string;
  contents : string array;  (** index [1..n_forks] *)
  aux : Versioning_core.Aux_graph.t;
  n_deltas : int;
  version_sizes : float array;
  delta_sizes : float array;
}

val generate : ?name:string -> params -> Versioning_util.Prng.t -> t
