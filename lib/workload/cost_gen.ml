module Prng = Versioning_util.Prng
module Pool = Versioning_util.Pool
module Aux_graph = Versioning_core.Aux_graph

(* Per-domain scratch for the hop-distance BFS: the distance array is
   reused across sources (reset via the touched list), so the parallel
   path allocates one array per domain instead of one per source. The
   invariant between uses is "every entry is -1". *)
let dist_scratch : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let dist_array size =
  let slot = Domain.DLS.get dist_scratch in
  if Array.length !slot < size then slot := Array.make size (-1);
  !slot

type params = {
  base_size : float;
  size_jitter : float;
  delta_per_hop : float;
  phi_factor : float;
  max_hops : int;
  reveal_cap : int;
  symmetric : bool;
}

let default_params =
  {
    base_size = 10_000.0;
    size_jitter = 0.05;
    delta_per_hop = 400.0;
    phi_factor = 1.0;
    max_hops = 6;
    reveal_cap = 16;
    symmetric = false;
  }

let generate ?(jobs = Pool.default_jobs ()) history params rng =
  let n = history.History_gen.n_versions in
  let aux = Aux_graph.create ~n_versions:n in
  (* Sizes drift multiplicatively along the derivation graph. *)
  let sizes = Array.make (n + 1) params.base_size in
  for v = 1 to n do
    match History_gen.first_parent history v with
    | None ->
        sizes.(v) <-
          params.base_size *. (1.0 +. (Prng.float rng 0.2 -. 0.1))
    | Some p ->
        let drift = 1.0 +. (Prng.float rng (2.0 *. params.size_jitter) -. params.size_jitter) in
        sizes.(v) <- Float.max 64.0 (sizes.(p) *. drift)
  done;
  for v = 1 to n do
    Aux_graph.add_materialization aux ~version:v ~delta:sizes.(v)
      ~phi:(params.phi_factor *. sizes.(v))
  done;
  (* Hop distances for revealed pairs: recompute lazily per source by
     reusing the generator's pair enumeration, which yields pairs in
     BFS order; track the hop count by re-running a bounded BFS. *)
  let pairs =
    History_gen.undirected_hop_pairs history ~max_hops:params.max_hops
      ~cap:params.reveal_cap
  in
  (* Distance map per source: rebuild cheaply with a BFS identical to
     the enumeration's. Each source's BFS is independent of every
     other, so the sweep fans out over the domain pool; the results
     are merged in source order, making the table (and everything
     derived from it) identical for any [jobs]. *)
  let dist_of =
    let tbl = Hashtbl.create (List.length pairs) in
    let bfs src =
      let dist = dist_array (n + 1) in
      let touched = ref [ src ] in
      let found = ref [] in
      dist.(src) <- 0;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        if dist.(u) < params.max_hops then
          List.iter
            (fun w ->
              if dist.(w) = -1 then begin
                dist.(w) <- dist.(u) + 1;
                touched := w :: !touched;
                found := (w, dist.(w)) :: !found;
                Queue.add w q
              end)
            (history.History_gen.parents.(u) @ history.History_gen.children.(u))
      done;
      List.iter (fun w -> dist.(w) <- -1) !touched;
      !found
    in
    let per_source = Pool.parallel_init ~jobs n (fun i -> bfs (i + 1)) in
    Array.iteri
      (fun i found ->
        List.iter (fun (w, d) -> Hashtbl.replace tbl (i + 1, w) d) found)
      per_source;
    fun u v -> match Hashtbl.find_opt tbl (u, v) with Some d -> d | None -> params.max_hops
  in
  let seen = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (u, v) ->
      let consider =
        if params.symmetric then
          let key = (min u v, max u v) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end
        else true
      in
      if consider then begin
        let hops = float_of_int (dist_of u v) in
        let noise = 0.5 +. Prng.float rng 1.0 in
        let raw =
          (params.delta_per_hop *. hops *. noise)
          +. (0.5 *. Float.abs (sizes.(v) -. sizes.(u)))
        in
        let delta = Float.min raw (0.95 *. sizes.(v)) in
        let delta = Float.max 1.0 delta in
        let phi = params.phi_factor *. delta in
        Aux_graph.add_delta aux ~src:u ~dst:v ~delta ~phi;
        (* Symmetric payload: the same weight serves both directions. *)
        if params.symmetric then
          Aux_graph.add_delta aux ~src:v ~dst:u ~delta ~phi
      end)
    pairs;
  aux
