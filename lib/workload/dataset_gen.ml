module Csv = Versioning_delta.Csv
module Line_diff = Versioning_delta.Line_diff
module Cell_diff = Versioning_delta.Cell_diff
module Delta = Versioning_delta.Delta
module Aux_graph = Versioning_core.Aux_graph

type delta_mode = Line_directed | Line_compressed | Cell_directed | Two_way

type params = {
  initial_rows : int;
  initial_cols : int;
  edit_intensity : float;
  max_hops : int;
  reveal_cap : int;
  mode : delta_mode;
}

let default_params =
  {
    initial_rows = 120;
    initial_cols = 8;
    edit_intensity = 0.05;
    max_hops = 4;
    reveal_cap = 24;
    mode = Line_directed;
  }

type t = {
  name : string;
  history : History_gen.t;
  contents : string array;
  aux : Aux_graph.t;
  n_deltas : int;
  version_sizes : float array;
  delta_sizes : float array;
}

let io_model = Delta.io_cpu_model

(* ⟨Δ, Φ⟩ of one directed delta between two contents. *)
let delta_costs mode a b =
  match mode with
  | Line_directed ->
      let s = float_of_int (Line_diff.size (Line_diff.diff a b)) in
      (s, s)
  | Line_compressed ->
      let d = Delta.line_delta ~compress:true a b in
      ( Delta.storage_cost d,
        Delta.recreation_cost io_model d ~output_bytes:(String.length b) )
  | Cell_directed ->
      let s =
        float_of_int (Cell_diff.size (Cell_diff.diff (Csv.parse a) (Csv.parse b)))
      in
      (s, s)
  | Two_way ->
      let d = Line_diff.diff a b in
      let s = float_of_int (Line_diff.symmetric_size d a) in
      (s, s)

let materialization_costs mode content =
  let raw = float_of_int (String.length content) in
  match mode with
  | Line_directed | Cell_directed | Two_way -> (raw, raw)
  | Line_compressed ->
      let d = Delta.materialize ~compress:true content in
      ( Delta.storage_cost d,
        Delta.recreation_cost io_model d ~output_bytes:(String.length content) )

let build_aux ~contents ~mode ~pairs =
  let n = Array.length contents - 1 in
  let aux = Aux_graph.create ~n_versions:n in
  for v = 1 to n do
    let delta, phi = materialization_costs mode contents.(v) in
    Aux_graph.add_materialization aux ~version:v ~delta ~phi
  done;
  let n_deltas = ref 0 in
  let delta_sizes = ref [] in
  List.iter
    (fun (u, v) ->
      let delta, phi = delta_costs mode contents.(u) contents.(v) in
      Aux_graph.add_delta aux ~src:u ~dst:v ~delta ~phi;
      incr n_deltas;
      delta_sizes := delta :: !delta_sizes;
      if mode = Two_way then begin
        (* The symmetric payload serves both directions. *)
        Aux_graph.add_delta aux ~src:v ~dst:u ~delta ~phi;
        incr n_deltas;
        delta_sizes := delta :: !delta_sizes
      end)
    pairs;
  (aux, !n_deltas, Array.of_list !delta_sizes)

let generate ?name history params rng =
  let n = history.History_gen.n_versions in
  let tg = Table_gen.create rng in
  let tables = Array.make (n + 1) [||] in
  let contents = Array.make (n + 1) "" in
  for v = 1 to n do
    let table =
      match History_gen.first_parent history v with
      | None ->
          Table_gen.fresh_table tg ~rows:params.initial_rows
            ~cols:params.initial_cols
      | Some p ->
          let base = tables.(p) in
          let edits =
            Table_gen.random_edits tg ~table:base
              ~intensity:params.edit_intensity
          in
          Table_gen.apply tg base edits
    in
    tables.(v) <- table;
    contents.(v) <- Csv.print table
  done;
  let pairs =
    if params.mode = Two_way then
      (* Keep one orientation; build_aux mirrors it. *)
      List.filter
        (fun (u, v) -> u < v)
        (History_gen.undirected_hop_pairs history ~max_hops:params.max_hops
           ~cap:params.reveal_cap)
    else
      History_gen.undirected_hop_pairs history ~max_hops:params.max_hops
        ~cap:params.reveal_cap
  in
  let aux, n_deltas, delta_sizes = build_aux ~contents ~mode:params.mode ~pairs in
  let version_sizes =
    Array.init (n + 1) (fun v ->
        if v = 0 then 0.0 else float_of_int (String.length contents.(v)))
  in
  {
    name = Option.value name ~default:"synthetic";
    history;
    contents;
    aux;
    n_deltas;
    version_sizes;
    delta_sizes;
  }

let avg_version_size t =
  let n = Array.length t.version_sizes - 1 in
  if n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for v = 1 to n do
      sum := !sum +. t.version_sizes.(v)
    done;
    !sum /. float_of_int n
  end

let all_pairs_aux ~contents ~mode =
  let n = Array.length contents - 1 in
  let pairs = ref [] in
  for u = 1 to n do
    for v = 1 to n do
      if u <> v && (mode <> Two_way || u < v) then pairs := (u, v) :: !pairs
    done
  done;
  let aux, _, _ = build_aux ~contents ~mode ~pairs:!pairs in
  aux
