(** Retrieval simulation: what a storage plan actually costs to serve
    a checkout workload, with and without a materialization cache.

    The paper's recreation cost [Ri] assumes every retrieval replays
    the full chain. Real systems keep recently materialized versions
    in a cache, so a hot version's chain is paid once — which is why
    access frequencies (Figure 16) and adaptive re-planning (§7)
    matter. This simulator replays an access stream against a storage
    plan:

    - a cache hit costs nothing;
    - otherwise the chain is walked towards the root until a cached
      ancestor (or the materialized root of the chain) is found and
      replayed from there, paying the Φ of each traversed edge plus
      the materialization Φ if the walk reaches one;
    - materialized results enter an LRU cache evicted by version
      count.

    [cache_slots = 0] reproduces the paper's cost model exactly:
    total cost = Σ accesses' full recreation costs. *)

type result = {
  accesses : int;
  total_cost : float;  (** Σ paid Φ over the stream *)
  hits : int;  (** full cache hits *)
  partial_hits : int;  (** chains cut short by a cached ancestor *)
}

val run :
  Versioning_core.Storage_graph.t ->
  cache_slots:int ->
  accesses:int list ->
  result
(** @raise Invalid_argument on an out-of-range version in the
    stream. *)

val zipf_stream :
  n_versions:int ->
  length:int ->
  exponent:float ->
  Versioning_util.Prng.t ->
  int list
(** A Zipf-skewed access stream over versions [1..n] with ranks
    assigned by a random shuffle — the Figure 16 workload shape. *)
