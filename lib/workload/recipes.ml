module Prng = Versioning_util.Prng

type scale = Quick | Full

type dataset = {
  id : string;
  aux : Versioning_core.Aux_graph.t;
  contents : string array option;
  n_deltas : int;
  avg_version_size : float;
  delta_sizes : float array;
}

let of_dataset_gen id (d : Dataset_gen.t) =
  {
    id;
    aux = d.aux;
    contents = Some d.contents;
    n_deltas = d.n_deltas;
    avg_version_size = Dataset_gen.avg_version_size d;
    delta_sizes = d.delta_sizes;
  }

let of_fork_gen id (f : Fork_gen.t) =
  let n = Array.length f.version_sizes - 1 in
  let avg =
    if n = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for v = 1 to n do
        s := !s +. f.version_sizes.(v)
      done;
      !s /. float_of_int n
    end
  in
  {
    id;
    aux = f.aux;
    contents = Some f.contents;
    n_deltas = f.n_deltas;
    avg_version_size = avg;
    delta_sizes = f.delta_sizes;
  }

let dc ?(scale = Full) ~seed () =
  let rng = Prng.create ~seed in
  let n_commits = match scale with Quick -> 180 | Full -> 900 in
  let history = History_gen.generate (History_gen.flat_params ~n_commits) rng in
  let params =
    {
      Dataset_gen.default_params with
      initial_rows = 250;
      max_hops = 4;
      reveal_cap = 20;
      edit_intensity = 0.01;
    }
  in
  of_dataset_gen "DC" (Dataset_gen.generate ~name:"DC" history params rng)

let lc ?(scale = Full) ~seed () =
  let rng = Prng.create ~seed in
  let n_commits = match scale with Quick -> 180 | Full -> 900 in
  let history =
    History_gen.generate (History_gen.linear_params ~n_commits) rng
  in
  let params =
    {
      Dataset_gen.default_params with
      initial_rows = 250;
      max_hops = 8;
      reveal_cap = 18;
      edit_intensity = 0.01;
    }
  in
  of_dataset_gen "LC" (Dataset_gen.generate ~name:"LC" history params rng)

let bf ?(scale = Full) ~seed () =
  let rng = Prng.create ~seed in
  let n_forks = match scale with Quick -> 60 | Full -> 240 in
  let params =
    {
      Fork_gen.default_params with
      n_forks;
      base_rows = 120;
      base_cols = 6;
      divergence = 0.05;
      reveal = Fork_gen.Size_threshold 900.0;
    }
  in
  of_fork_gen "BF" (Fork_gen.generate ~name:"BF" params rng)

let lf ?(scale = Full) ~seed () =
  let rng = Prng.create ~seed in
  let n_forks = match scale with Quick -> 30 | Full -> 100 in
  let params =
    {
      Fork_gen.default_params with
      n_forks;
      base_rows = 600;
      base_cols = 10;
      divergence = 0.05;
      reveal = Fork_gen.Size_threshold 9000.0;
    }
  in
  of_fork_gen "LF" (Fork_gen.generate ~name:"LF" params rng)

let all ?(scale = Full) ~seed () =
  [ dc ~scale ~seed (); lc ~scale ~seed:(seed + 1) ();
    bf ~scale ~seed:(seed + 2) (); lf ~scale ~seed:(seed + 3) () ]

let undirected d =
  { d with aux = Versioning_core.Aux_graph.symmetrize d.aux }
