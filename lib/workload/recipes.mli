(** The four evaluation datasets of §5.1, reproduced at laptop scale.

    | id | paper                          | here                                  |
    |----|--------------------------------|---------------------------------------|
    | DC | 100k versions, flat history,   | flat history, deltas within 4 hops    |
    |    | deltas within 10 hops          |                                       |
    | LC | 100k versions, near-linear     | near-linear history, deltas within    |
    |    | history, deltas within 25 hops | 8 hops                                |
    | BF | 986 Bootstrap forks, 100 KB    | simulated forks, thresholded          |
    |    | delta threshold                | all-pairs deltas                      |
    | LF | 100 Linux forks, 10 MB         | simulated forks, larger artifacts,    |
    |    | threshold                      | wider threshold                       |

    The absolute scale is reduced (see DESIGN.md §2); the cost
    structure — branchy vs. chain-like vs. star-like similarity, and
    sparse revealed matrices — is what the algorithms respond to, and
    is preserved. Every recipe is deterministic in the given seed. *)

type scale = Quick | Full
(** [Quick] shrinks every dataset (~4× fewer versions) for fast test
    and CI runs; [Full] is the default bench scale. *)

type dataset = {
  id : string;  (** "DC", "LC", "BF" or "LF" *)
  aux : Versioning_core.Aux_graph.t;
  contents : string array option;
      (** per-version artifacts when the recipe materializes them
          (DC/LC/BF/LF do; cost-only recipes don't) *)
  n_deltas : int;
  avg_version_size : float;
  delta_sizes : float array;
}

val dc : ?scale:scale -> seed:int -> unit -> dataset
(** Densely connected: flat/branchy synthetic history. *)

val lc : ?scale:scale -> seed:int -> unit -> dataset
(** Linear chain: mostly-linear synthetic history. *)

val bf : ?scale:scale -> seed:int -> unit -> dataset
(** Bootstrap-forks analogue: many small forked artifacts. *)

val lf : ?scale:scale -> seed:int -> unit -> dataset
(** Linux-forks analogue: fewer, larger forked artifacts. *)

val all : ?scale:scale -> seed:int -> unit -> dataset list
(** [DC; LC; BF; LF]. *)

val undirected : dataset -> dataset
(** Symmetrized variant (the §5.3 undirected experiments): deltas
    mirrored via {!Versioning_core.Aux_graph.symmetrize}. *)
