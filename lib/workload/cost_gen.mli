(** Content-free ⟨Δ, Φ⟩ generation — for experiments that only probe
    the optimization layer at scales where materializing real tabular
    contents would dominate (the Figure 17 running-time curves go to
    tens of thousands of versions).

    Costs follow the structure real differencing produces: version
    sizes random-walk along the history; a delta between versions [u]
    and [v] costs roughly the edit distance accumulated between them
    (here: proportional to their hop distance with noise, plus the
    size difference), never exceeding the full version size. The
    triangle-inequality spirit of §3 is preserved by construction. *)

type params = {
  base_size : float;  (** mean materialized size *)
  size_jitter : float;  (** per-step multiplicative drift, e.g. 0.05 *)
  delta_per_hop : float;  (** mean delta cost per hop of distance *)
  phi_factor : float;
      (** Φ = phi_factor × Δ (1.0 gives the Φ = Δ scenarios) *)
  max_hops : int;
  reveal_cap : int;
  symmetric : bool;  (** mirror every delta (undirected case) *)
}

val default_params : params

val generate :
  ?jobs:int ->
  History_gen.t ->
  params ->
  Versioning_util.Prng.t ->
  Versioning_core.Aux_graph.t
(** [jobs] (default {!Versioning_util.Pool.default_jobs}) fans the
    per-source hop-distance BFS out over a domain pool; the generated
    graph is identical for every [jobs] value (the PRNG is consumed
    only on the sequential passes). *)
