module Prng = Versioning_util.Prng
module Csv = Versioning_delta.Csv

type t = { rng : Prng.t; mutable next_col : int }

let create rng = { rng; next_col = 0 }

let fresh_field t =
  (* Short tokens drawn from a modest vocabulary: realistic tabular
     data repeats values, which gives deltas something to exploit. *)
  Printf.sprintf "v%04d" (Prng.int t.rng 8000)

let fresh_col_name t =
  let id = t.next_col in
  t.next_col <- t.next_col + 1;
  Printf.sprintf "col_%d" id

let fresh_row t width = Array.init width (fun _ -> fresh_field t)

let fresh_table t ~rows ~cols =
  if rows < 0 || cols < 1 then invalid_arg "Table_gen.fresh_table";
  let header = Array.init cols (fun _ -> fresh_col_name t) in
  Array.init (rows + 1) (fun r -> if r = 0 then header else fresh_row t cols)

type edit =
  | Add_rows of { at : int; count : int }
  | Delete_rows of { at : int; count : int }
  | Add_column of { at : int }
  | Remove_column of { at : int }
  | Modify_cells of { fraction : float }

let pp_edit ppf = function
  | Add_rows { at; count } -> Format.fprintf ppf "add %d rows @%d" count at
  | Delete_rows { at; count } ->
      Format.fprintf ppf "delete %d rows @%d" count at
  | Add_column { at } -> Format.fprintf ppf "add column @%d" at
  | Remove_column { at } -> Format.fprintf ppf "remove column @%d" at
  | Modify_cells { fraction } ->
      Format.fprintf ppf "modify %.1f%% of cells" (100.0 *. fraction)

let random_edits t ~table ~intensity =
  let rng = t.rng in
  let data_rows = max 0 (Csv.n_rows table - 1) in
  let scale = max 1 (int_of_float (float_of_int data_rows *. intensity)) in
  let n_edits = Prng.int_in rng 1 3 in
  List.init n_edits (fun _ ->
      let roll = Prng.float rng 1.0 in
      (* Row and cell edits dominate; schema changes are rare (they
         rewrite every line of the serialized table, so their rate
         governs how often delta chains are "broken" by a
         near-full-size delta). *)
      if roll < 0.36 then
        Add_rows
          { at = Prng.int rng (data_rows + 1); count = Prng.int_in rng 1 scale }
      else if roll < 0.62 then
        Delete_rows
          { at = Prng.int rng (max 1 data_rows); count = Prng.int_in rng 1 scale }
      else if roll < 0.97 then Modify_cells { fraction = intensity /. 2.0 }
      else if roll < 0.985 then Add_column { at = Prng.int rng (Csv.n_cols table + 1) }
      else Remove_column { at = Prng.int rng (max 1 (Csv.n_cols table)) })

let clamp lo hi x = max lo (min hi x)

let apply t table edits =
  let apply_one table edit =
    let n_rows = Csv.n_rows table in
    let data_rows = max 0 (n_rows - 1) in
    let width = Csv.n_cols table in
    match edit with
    | Add_rows { at; count } ->
        let at = clamp 0 data_rows at in
        let added = Array.init count (fun _ -> fresh_row t width) in
        Array.concat
          [
            Array.sub table 0 (at + 1);
            added;
            Array.sub table (at + 1) (n_rows - at - 1);
          ]
    | Delete_rows { at; count } ->
        if data_rows = 0 then table
        else begin
          let at = clamp 0 (data_rows - 1) at in
          let count = clamp 0 (data_rows - at) count in
          Array.concat
            [
              Array.sub table 0 (at + 1);
              Array.sub table (at + 1 + count) (n_rows - at - 1 - count);
            ]
        end
    | Add_column { at } ->
        let at = clamp 0 width at in
        let name = fresh_col_name t in
        Array.mapi
          (fun r row ->
            let v = if r = 0 then name else fresh_field t in
            Array.concat
              [ Array.sub row 0 at; [| v |]; Array.sub row at (width - at) ])
          table
    | Remove_column { at } ->
        if width <= 1 then table
        else begin
          let at = clamp 0 (width - 1) at in
          Array.map
            (fun row ->
              Array.concat
                [ Array.sub row 0 at; Array.sub row (at + 1) (width - at - 1) ])
            table
        end
    | Modify_cells { fraction } ->
        Array.mapi
          (fun r row ->
            if r = 0 then row
            else
              Array.map
                (fun cell ->
                  if Prng.bernoulli t.rng fraction then fresh_field t else cell)
                row)
          table
  in
  List.fold_left apply_one table edits
