module Prng = Versioning_util.Prng

type params = {
  n_commits : int;
  branch_interval : int;
  branch_probability : float;
  branch_limit : int;
  branch_length : int;
  merge_probability : float;
}

let flat_params ~n_commits =
  {
    n_commits;
    branch_interval = 2;
    branch_probability = 0.7;
    branch_limit = 4;
    branch_length = 4;
    merge_probability = 0.3;
  }

let linear_params ~n_commits =
  {
    n_commits;
    branch_interval = 25;
    branch_probability = 0.4;
    branch_limit = 2;
    branch_length = 25;
    merge_probability = 0.2;
  }

type t = {
  n_versions : int;
  parents : int list array;
  children : int list array;
}

let generate params rng =
  if params.n_commits < 1 then invalid_arg "History_gen.generate: n_commits";
  if params.branch_interval < 1 || params.branch_limit < 1
     || params.branch_length < 1
  then invalid_arg "History_gen.generate: bad branch parameters";
  let n = params.n_commits in
  let parents = Array.make (n + 1) [] in
  let next = ref 1 in
  let fresh parent_list =
    if !next > n then None
    else begin
      let v = !next in
      incr next;
      parents.(v) <- parent_list;
      Some v
    end
  in
  (* Root. *)
  (match fresh [] with Some 1 -> () | _ -> assert false);
  let trunk_tip = ref 1 in
  let since_branch = ref 0 in
  let continue = ref true in
  while !continue && !next <= n do
    (* Advance the trunk. *)
    (match fresh [ !trunk_tip ] with
    | Some v ->
        trunk_tip := v;
        incr since_branch
    | None -> continue := false);
    if !continue && !since_branch >= params.branch_interval then begin
      since_branch := 0;
      if Prng.bernoulli rng params.branch_probability then begin
        let n_branches = Prng.int_in rng 1 params.branch_limit in
        let fork_point = !trunk_tip in
        for _ = 1 to n_branches do
          let len = Prng.int_in rng 1 params.branch_length in
          let tip = ref fork_point in
          let alive = ref true in
          for _ = 1 to len do
            if !alive then
              match fresh [ !tip ] with
              | Some v -> tip := v
              | None -> alive := false
          done;
          if !alive && !tip <> fork_point
             && Prng.bernoulli rng params.merge_probability
          then begin
            (* Merge the branch tip with the current trunk tip. *)
            match fresh [ !trunk_tip; !tip ] with
            | Some v -> trunk_tip := v
            | None -> ()
          end
        done
      end
    end
  done;
  let children = Array.make (n + 1) [] in
  for v = n downto 1 do
    List.iter (fun p -> children.(p) <- v :: children.(p)) parents.(v)
  done;
  { n_versions = n; parents; children }

let undirected_hop_pairs t ~max_hops ~cap =
  let n = t.n_versions in
  let acc = ref [] in
  let dist = Array.make (n + 1) (-1) in
  for src = 1 to n do
    (* BFS in the undirected version graph, collecting up to [cap]
       nearest targets. *)
    let touched = ref [] in
    dist.(src) <- 0;
    touched := src :: !touched;
    let q = Queue.create () in
    Queue.add src q;
    let taken = ref 0 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      if dist.(u) < max_hops then begin
        let neighbors = t.parents.(u) @ t.children.(u) in
        List.iter
          (fun w ->
            if dist.(w) = -1 then begin
              dist.(w) <- dist.(u) + 1;
              touched := w :: !touched;
              if !taken < cap then begin
                incr taken;
                acc := (src, w) :: !acc;
                Queue.add w q
              end
            end)
          neighbors
      end
    done;
    List.iter (fun w -> dist.(w) <- -1) !touched
  done;
  List.rev !acc

let first_parent t v =
  match t.parents.(v) with [] -> None | p :: _ -> Some p

let topological_order t = Array.init t.n_versions (fun i -> i + 1)
