(** Directed graph with integer vertices and arbitrary edge labels.

    Vertices are [0 .. n-1], fixed at creation. Parallel edges are
    permitted (the versioning setting can expose several delta
    mechanisms between the same pair of versions); self-loops are
    rejected since neither a version graph nor a storage graph can use
    them. Adjacency is kept in growable arrays on both endpoints, so
    [out_edges]/[in_edges] are O(degree) and edge insertion is
    amortized O(1). *)

type 'a t

type 'a edge = { src : int; dst : int; label : 'a }

val create : n:int -> 'a t
(** [create ~n] is an edgeless graph on vertices [0..n-1]. *)

val n_vertices : 'a t -> int
val n_edges : 'a t -> int

val add_edge : 'a t -> src:int -> dst:int -> 'a -> unit
(** @raise Invalid_argument on out-of-range endpoints or a self-loop. *)

val out_edges : 'a t -> int -> 'a edge list
(** Edges leaving a vertex, in insertion order. *)

val in_edges : 'a t -> int -> 'a edge list
(** Edges entering a vertex, in insertion order. *)

val out_degree : 'a t -> int -> int
val in_degree : 'a t -> int -> int

val iter_out : 'a t -> int -> ('a edge -> unit) -> unit
(** Allocation-light iteration over out-edges. *)

val iter_in : 'a t -> int -> ('a edge -> unit) -> unit

val iter_edges : 'a t -> ('a edge -> unit) -> unit
(** Every edge exactly once, grouped by source vertex. *)

val fold_edges : 'a t -> init:'b -> f:('b -> 'a edge -> 'b) -> 'b

val edges : 'a t -> 'a edge list
(** All edges as a list (grouped by source). *)

val map : 'a t -> f:('a edge -> 'b) -> 'b t
(** Same structure, relabelled edges. *)

val reverse : 'a t -> 'a t
(** Graph with every edge flipped. *)

val find_edge : 'a t -> src:int -> dst:int -> 'a edge option
(** First inserted edge [src -> dst], if any. O(out-degree). *)

val is_dag : 'a t -> bool
(** True iff the graph has no directed cycle (Kahn's algorithm). *)

val topological_order : 'a t -> int list option
(** A topological order of the vertices, or [None] on a cyclic
    graph. *)

val reachable_from : 'a t -> int -> bool array
(** [reachable_from g v] marks every vertex reachable from [v]
    (including [v]) following edge direction; DFS, O(V+E). *)

val transpose_reachable : 'a t -> int -> bool array
(** Vertices from which [v] is reachable. *)
