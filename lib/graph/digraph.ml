type 'a edge = { src : int; dst : int; label : 'a }

(* Growable edge buckets: one out-bucket and one in-bucket per vertex.
   Buckets are plain arrays doubled on demand; [lengths] track fill. *)
type 'a bucket = { mutable data : 'a edge array; mutable len : int }

type 'a t = {
  n : int;
  mutable m : int;
  out : 'a bucket array;
  inc : 'a bucket array;
}

let empty_bucket () = { data = [||]; len = 0 }

let bucket_push b e =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let ndata = Array.make ncap e in
    Array.blit b.data 0 ndata 0 b.len;
    b.data <- ndata
  end;
  b.data.(b.len) <- e;
  b.len <- b.len + 1

let create ~n =
  if n < 0 then invalid_arg "Digraph.create";
  {
    n;
    m = 0;
    out = Array.init n (fun _ -> empty_bucket ());
    inc = Array.init n (fun _ -> empty_bucket ());
  }

let n_vertices g = g.n
let n_edges g = g.m

let check_vertex g v name =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: vertex %d out of range" name v)

let add_edge g ~src ~dst label =
  check_vertex g src "add_edge";
  check_vertex g dst "add_edge";
  if src = dst then invalid_arg "Digraph.add_edge: self-loop";
  let e = { src; dst; label } in
  bucket_push g.out.(src) e;
  bucket_push g.inc.(dst) e;
  g.m <- g.m + 1

let iter_bucket b f =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

let iter_out g v f =
  check_vertex g v "iter_out";
  iter_bucket g.out.(v) f

let iter_in g v f =
  check_vertex g v "iter_in";
  iter_bucket g.inc.(v) f

let bucket_to_list b =
  let rec go i acc = if i < 0 then acc else go (i - 1) (b.data.(i) :: acc) in
  go (b.len - 1) []

let out_edges g v =
  check_vertex g v "out_edges";
  bucket_to_list g.out.(v)

let in_edges g v =
  check_vertex g v "in_edges";
  bucket_to_list g.inc.(v)

let out_degree g v =
  check_vertex g v "out_degree";
  g.out.(v).len

let in_degree g v =
  check_vertex g v "in_degree";
  g.inc.(v).len

let iter_edges g f =
  for v = 0 to g.n - 1 do
    iter_bucket g.out.(v) f
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun e -> acc := f !acc e);
  !acc

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc e -> e :: acc))

let map g ~f =
  let g' = create ~n:g.n in
  iter_edges g (fun e -> add_edge g' ~src:e.src ~dst:e.dst (f e));
  g'

let reverse g =
  let g' = create ~n:g.n in
  iter_edges g (fun e -> add_edge g' ~src:e.dst ~dst:e.src e.label);
  g'

let find_edge g ~src ~dst =
  check_vertex g src "find_edge";
  let b = g.out.(src) in
  let rec go i =
    if i >= b.len then None
    else if b.data.(i).dst = dst then Some b.data.(i)
    else go (i + 1)
  in
  go 0

let topological_order g =
  (* Kahn's algorithm; smallest-id-first for a deterministic order. *)
  let indeg = Array.init g.n (fun v -> g.inc.(v).len) in
  let heap = Versioning_util.Binary_heap.create ~capacity:g.n in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Versioning_util.Binary_heap.insert heap v 0.0
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Versioning_util.Binary_heap.is_empty heap) do
    let v, _ = Versioning_util.Binary_heap.pop_min heap in
    order := v :: !order;
    incr seen;
    iter_bucket g.out.(v) (fun e ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then
          Versioning_util.Binary_heap.insert heap e.dst 0.0)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_dag g = topological_order g <> None

let dfs_mark buckets n start =
  let mark = Array.make n false in
  let stack = ref [ start ] in
  mark.(start) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        iter_bucket buckets.(v) (fun e ->
            let w = if e.src = v then e.dst else e.src in
            if not mark.(w) then begin
              mark.(w) <- true;
              stack := w :: !stack
            end)
  done;
  mark

let reachable_from g v =
  check_vertex g v "reachable_from";
  dfs_mark g.out g.n v

let transpose_reachable g v =
  check_vertex g v "transpose_reachable";
  (* Follow in-edges backwards: from each in-edge of the frontier. *)
  let mark = Array.make g.n false in
  let stack = ref [ v ] in
  mark.(v) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | w :: rest ->
        stack := rest;
        iter_bucket g.inc.(w) (fun e ->
            if not mark.(e.src) then begin
              mark.(e.src) <- true;
              stack := e.src :: !stack
            end)
  done;
  mark
