module Digraph = Versioning_graph.Digraph

let big_m g problem =
  match problem with
  | Solver.Min_storage_bounded_max_recreation theta -> 2.0 *. theta
  | Solver.Min_storage_bounded_sum_recreation theta -> 2.0 *. theta
  | _ ->
      2.0
      *. Digraph.fold_edges (Aux_graph.graph g) ~init:0.0 ~f:(fun acc e ->
             acc +. e.label.Aux_graph.phi)

(* Edge variable names: x_<i>_<j>; several parallel reveals of the
   same (i, j) get a disambiguating suffix. *)
let edge_vars g =
  let counts = Hashtbl.create 64 in
  Digraph.fold_edges (Aux_graph.graph g) ~init:[] ~f:(fun acc e ->
      let k = (e.src, e.dst) in
      let idx = Option.value (Hashtbl.find_opt counts k) ~default:0 in
      Hashtbl.replace counts k (idx + 1);
      let name =
        if idx = 0 then Printf.sprintf "x_%d_%d" e.src e.dst
        else Printf.sprintf "x_%d_%d__%d" e.src e.dst idx
      in
      (name, e) :: acc)
  |> List.rev

let emit g problem =
  (match problem with
  | Solver.Minimize_recreation ->
      invalid_arg
        "Ilp.emit: Problem 2 has no single-objective ILP; use Spt.solve"
  | _ -> ());
  let n = Aux_graph.n_versions g in
  let vars = edge_vars g in
  let m = big_m g problem in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let storage_terms =
    vars
    |> List.map (fun (name, (e : Aux_graph.weight Digraph.edge)) ->
           Printf.sprintf "%g %s" e.label.Aux_graph.delta name)
    |> String.concat " + "
  in
  let sum_r_terms =
    List.init n (fun i -> Printf.sprintf "r_%d" (i + 1)) |> String.concat " + "
  in
  (* Objective. *)
  (match problem with
  | Solver.Minimize_storage
  | Solver.Min_storage_bounded_sum_recreation _
  | Solver.Min_storage_bounded_max_recreation _ ->
      addf "Minimize\n obj: %s\n" storage_terms
  | Solver.Min_sum_recreation_bounded_storage _ ->
      addf "Minimize\n obj: %s\n" sum_r_terms
  | Solver.Min_max_recreation_bounded_storage _ ->
      (* minimize the auxiliary max variable *)
      addf "Minimize\n obj: rmax\n"
  | Solver.Minimize_recreation -> assert false);
  addf "Subject To\n";
  (* One parent per version. *)
  for j = 1 to n do
    let terms =
      vars
      |> List.filter_map (fun (name, (e : _ Digraph.edge)) ->
             if e.dst = j then Some name else None)
    in
    if terms <> [] then
      addf " parent_%d: %s = 1\n" j (String.concat " + " terms)
    else
      (* no revealed in-edge: the model is infeasible, surfaced as an
         explicitly impossible constraint rather than silence *)
      addf " parent_%d: 0 x_0_0_dummy = 1\n" j
  done;
  (* Recreation ordering: phi + r_i - r_j <= (1 - x) * M, i.e.
     r_i - r_j + M x <= M - phi. For i = 0, r_0 = 0 is folded in. *)
  List.iter
    (fun (name, (e : Aux_graph.weight Digraph.edge)) ->
      let phi = e.label.Aux_graph.phi in
      if e.src = 0 then
        addf " rec_%s: - r_%d + %g %s <= %g\n" name e.dst m name (m -. phi)
      else
        addf " rec_%s: r_%d - r_%d + %g %s <= %g\n" name e.src e.dst m name
          (m -. phi))
    vars;
  (* Problem-specific constraints. *)
  (match problem with
  | Solver.Min_storage_bounded_max_recreation theta ->
      for i = 1 to n do
        addf " theta_%d: r_%d <= %g\n" i i theta
      done
  | Solver.Min_storage_bounded_sum_recreation theta ->
      addf " theta_sum: %s <= %g\n" sum_r_terms theta
  | Solver.Min_sum_recreation_bounded_storage beta ->
      addf " beta: %s <= %g\n" storage_terms beta
  | Solver.Min_max_recreation_bounded_storage beta ->
      addf " beta: %s <= %g\n" storage_terms beta;
      for i = 1 to n do
        addf " maxdef_%d: r_%d - rmax <= 0\n" i i
      done
  | Solver.Minimize_storage -> ()
  | Solver.Minimize_recreation -> assert false);
  (* Bounds. *)
  addf "Bounds\n";
  for i = 1 to n do
    addf " 0 <= r_%d\n" i
  done;
  (match problem with
  | Solver.Min_max_recreation_bounded_storage _ -> addf " 0 <= rmax\n"
  | _ -> ());
  (* Binaries. *)
  addf "Binary\n";
  List.iter (fun (name, _) -> addf " %s\n" name) vars;
  addf "End\n";
  Buffer.contents buf
