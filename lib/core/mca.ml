module Digraph = Versioning_graph.Digraph

(* Chu–Liu/Edmonds with explicit contraction history.

   Levels: level 0 is the input graph. Each round selects the
   cheapest in-edge of every non-root vertex; if the selection is
   acyclic it is the arborescence of that level, otherwise every
   selected cycle is contracted into a fresh supernode and edge
   weights entering a cycle are reduced by the weight of the selected
   in-edge of their target (the classic reduced costs), producing
   level k+1. Each rebuilt edge keeps a pointer to the level-k edge it
   came from, so the final selection can be unwound level by level:
   the edge chosen into a supernode displaces exactly one cycle edge —
   the one entering the vertex that the underlying edge enters. *)

type redge = {
  src : int;
  dst : int;
  w : float;
  below : redge option;  (* the edge this one was rebuilt from *)
  level : int;  (* contraction round that rebuilt it; 0 = original *)
  choice : int * int * Aux_graph.weight;  (* original (parent, child, weight) *)
}

type cycle_record = {
  supernode : int;
  members : (int * redge) list;  (* (vertex, its selected cycle in-edge) *)
}

let weight = Storage_graph.storage_cost

let solve g =
  Solver_obs.timed ~algo:"mca" @@ fun () ->
  let dg = Aux_graph.graph g in
  let n_orig = Digraph.n_vertices dg in
  let root = 0 in
  (* Each contraction round removes at least one vertex net of the
     supernode it adds, so ids stay below 2 * n_orig + 1. *)
  let max_ids = (2 * n_orig) + 1 in
  let edges0 =
    Digraph.fold_edges dg ~init:[] ~f:(fun acc e ->
        {
          src = e.src;
          dst = e.dst;
          w = e.label.Aux_graph.delta;
          below = None;
          level = 0;
          choice = (e.src, e.dst, e.label);
        }
        :: acc)
  in
  let active = Array.make max_ids false in
  let active_list = ref [] in
  for v = n_orig - 1 downto 0 do
    active.(v) <- true;
    active_list := v :: !active_list
  done;
  let next_id = ref n_orig in
  let round = ref 0 in
  let history : cycle_record list list ref = ref [] in
  let edges = ref edges0 in
  let final_selection = ref None in
  let error = ref None in
  while !final_selection = None && !error = None do
    (* Cheapest in-edge per active non-root vertex. *)
    let best : redge option array = Array.make max_ids None in
    List.iter
      (fun e ->
        if e.dst <> root && active.(e.src) && active.(e.dst) && e.src <> e.dst
        then
          match best.(e.dst) with
          | None -> best.(e.dst) <- Some e
          | Some b ->
              if e.w < b.w || (e.w = b.w && e.src < b.src) then
                best.(e.dst) <- Some e)
      !edges;
    let missing = ref None in
    List.iter
      (fun v ->
        if v <> root && best.(v) = None && !missing = None then
          missing := Some v)
      !active_list;
    (match !missing with
    | Some _ ->
        error :=
          Some "some version has no revealed in-edge: no valid solution exists"
    | None -> ());
    if !error = None then begin
      (* Find cycles among selected edges by pointer-chasing. *)
      let color = Array.make max_ids 0 in
      (* 0 unvisited / 1 on current path / 2 done *)
      let cycles = ref [] in
      color.(root) <- 2;
      List.iter
        (fun start ->
        if active.(start) && color.(start) = 0 then begin
          let path = ref [] in
          let v = ref start in
          while active.(!v) && color.(!v) = 0 do
            color.(!v) <- 1;
            path := !v :: !path;
            match best.(!v) with
            | Some e -> v := e.src
            | None -> (* root only *) ()
          done;
          if color.(!v) = 1 then begin
            (* Extract the cycle: the suffix of [path] from !v. *)
            let cycle_start = !v in
            let members = ref [] in
            let collecting = ref false in
            List.iter
              (fun u ->
                if u = cycle_start then collecting := true;
                if !collecting then
                  match best.(u) with
                  | Some e -> members := (u, e) :: !members
                  | None -> assert false)
              (List.rev !path);
            cycles := !members :: !cycles
          end;
          List.iter (fun u -> color.(u) <- 2) !path
        end)
        !active_list;
      if !cycles = [] then begin
        let selection = ref [] in
        List.iter
          (fun v ->
            if v <> root then
              match best.(v) with
              | Some e -> selection := (v, e) :: !selection
              | None -> assert false)
          !active_list;
        final_selection := Some !selection
      end
      else begin
        (* Contract every cycle. *)
        let comp = Array.make max_ids (-1) in
        List.iter (fun v -> comp.(v) <- v) !active_list;
        let records =
          List.map
            (fun members ->
              let s = !next_id in
              incr next_id;
              assert (s < max_ids);
              List.iter (fun (v, _) -> comp.(v) <- s) members;
              { supernode = s; members })
            !cycles
        in
        (* Reduced cost for edges entering a contracted vertex. *)
        let reduced e =
          match best.(e.dst) with
          | Some b when comp.(e.dst) <> e.dst -> e.w -. b.w
          | _ -> e.w
        in
        incr round;
        (* Only edges touching a contracted vertex are rebuilt; the
           rest survive untouched (their [level] stays older, so the
           unwind skips them until their own round). *)
        let new_edges =
          List.filter_map
            (fun e ->
              let s = comp.(e.src) and d = comp.(e.dst) in
              if s = d then None
              else if s = e.src && d = e.dst then Some e
              else
                Some
                  { src = s; dst = d; w = reduced e; below = Some e;
                    level = !round; choice = e.choice })
            !edges
        in
        List.iter
          (fun r ->
            List.iter (fun (v, _) -> active.(v) <- false) r.members;
            active.(r.supernode) <- true)
          records;
        active_list :=
          List.map (fun r -> r.supernode) records
          @ List.filter (fun v -> active.(v)) !active_list;
        history := records :: !history;
        edges := new_edges
      end
    end
  done;
  Solver_obs.count ~algo:"mca" "dsvc_solver_iterations_total" (!round + 1)
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"mca" "dsvc_solver_cycles_contracted_total"
    (List.fold_left (fun acc r -> acc + List.length r) 0 !history)
    ~help:"Cycles contracted by Chu-Liu/Edmonds rounds";
  match !error with
  | Some e -> Error e
  | None -> (
      let selection = Option.get !final_selection in
      (* Unwind the contraction history. [m] maps each vertex at the
         current level to its selected in-edge (an edge of that same
         level). Each transition unwraps every surviving edge exactly
         one level and replaces each supernode by its members. *)
      let m = Hashtbl.create (2 * n_orig) in
      List.iter (fun (v, e) -> Hashtbl.replace m v e) selection;
      (* [history] lists transitions newest first; unwrap an edge only
         when processing the round that rebuilt it. *)
      let level = ref !round in
      let unwrap e =
        if e.level = !level then
          match e.below with Some u -> u | None -> assert false
        else e
      in
      List.iter
        (fun records ->
          (* pull out this transition's supernode entries first *)
          let super_edges =
            List.map
              (fun r ->
                let e =
                  match Hashtbl.find_opt m r.supernode with
                  | Some e -> e
                  | None -> assert false
                in
                Hashtbl.remove m r.supernode;
                (r, e))
              records
          in
          (* every surviving entry rebuilt at this round moves down *)
          let snapshot = Hashtbl.fold (fun v e acc -> (v, e) :: acc) m [] in
          List.iter
            (fun (v, e) ->
              if e.level = !level then Hashtbl.replace m v (unwrap e))
            snapshot;
          (* expand each cycle: the member the incoming edge really
             enters keeps it, all other members keep their cycle
             edges *)
          List.iter
            (fun (r, e) ->
              let under = unwrap e in
              List.iter
                (fun (v, cyc_edge) ->
                  if v = under.dst then Hashtbl.replace m v under
                  else Hashtbl.replace m v cyc_edge)
                r.members)
            super_edges;
          decr level)
        !history;
      let choices =
        List.init (n_orig - 1) (fun i ->
            let v = i + 1 in
            match Hashtbl.find_opt m v with
            | Some e -> e.choice
            | None -> assert false)
      in
      Storage_graph.of_parent_edges ~n:(n_orig - 1) choices)
