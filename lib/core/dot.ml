module Digraph = Versioning_graph.Digraph

let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let default_label v = if v = 0 then "V0 (root)" else Printf.sprintf "V%d" v

let of_storage_graph ?(name = "storage_plan") ?(labels = default_label) sg =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "digraph %s {\n" name;
  addf "  rankdir=TB;\n";
  addf "  n0 [label=%s shape=point];\n" (quote (labels 0));
  for v = 1 to Storage_graph.n_versions sg do
    let shape =
      if Storage_graph.is_materialized sg v then
        "shape=box peripheries=2"
      else "shape=ellipse"
    in
    addf "  n%d [label=%s %s];\n" v (quote (labels v)) shape
  done;
  for v = 1 to Storage_graph.n_versions sg do
    let p = Storage_graph.parent sg v in
    let w = Storage_graph.edge_weight sg v in
    addf "  n%d -> n%d [label=%s];\n" p v
      (quote (Printf.sprintf "d=%.0f, f=%.0f" w.Aux_graph.delta w.Aux_graph.phi))
  done;
  addf "}\n";
  Buffer.contents buf

let of_aux_graph ?(name = "aux_graph") ?(labels = default_label)
    ?(max_edges = 2000) g =
  let dg = Aux_graph.graph g in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "digraph %s {\n" name;
  let total = Digraph.n_edges dg in
  if total > max_edges then
    addf "  // %d of %d edges shown (truncated)\n" max_edges total;
  addf "  n0 [label=%s shape=point];\n" (quote (labels 0));
  for v = 1 to Aux_graph.n_versions g do
    addf "  n%d [label=%s shape=ellipse];\n" v (quote (labels v))
  done;
  let emitted = ref 0 in
  Digraph.iter_edges dg (fun e ->
      if !emitted < max_edges then begin
        incr emitted;
        let style = if e.src = 0 then " style=bold" else "" in
        addf "  n%d -> n%d [label=%s%s];\n" e.src e.dst
          (quote
             (Printf.sprintf "d=%.0f, f=%.0f" e.label.Aux_graph.delta
                e.label.Aux_graph.phi))
          style
      end);
  addf "}\n";
  Buffer.contents buf
