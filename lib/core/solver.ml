type problem =
  | Minimize_storage
  | Minimize_recreation
  | Min_sum_recreation_bounded_storage of float
  | Min_max_recreation_bounded_storage of float
  | Min_storage_bounded_sum_recreation of float
  | Min_storage_bounded_max_recreation of float

let min_storage_tree g =
  if Aux_graph.is_symmetric g then Mst.prim g else Mca.solve g

let dispatch g ?freqs problem =
  match problem with
  | Minimize_storage -> min_storage_tree g
  | Minimize_recreation -> Spt.solve g
  | Min_sum_recreation_bounded_storage budget -> (
      match (min_storage_tree g, Spt.solve g) with
      | Ok base, Ok spt ->
          if Storage_graph.storage_cost base > budget then
            Error
              (Printf.sprintf
                 "storage budget %.1f is below the minimum %.1f" budget
                 (Storage_graph.storage_cost base))
          else Ok (Lmg.solve g ~base ~spt ~budget ?freqs ())
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Min_storage_bounded_sum_recreation bound -> (
      match (min_storage_tree g, Spt.solve g) with
      | Ok base, Ok spt -> Lmg.solve_p5 g ~base ~spt ~sum_bound:bound ?freqs ()
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Min_max_recreation_bounded_storage budget -> Mp.solve_p4 g ~budget ()
  | Min_storage_bounded_max_recreation theta -> (
      match Mp.solve g ~theta with
      | { tree = Some sg; _ } -> Ok sg
      | { tree = None; infeasible } ->
          Error
            (Printf.sprintf
               "%d versions cannot meet the recreation bound %.1f (first: %d)"
               (List.length infeasible) theta
               (match infeasible with v :: _ -> v | [] -> -1)))

let solve g problem = dispatch g problem

let solve_weighted g ~freqs problem = dispatch g ~freqs problem
