(** GitH — the Git repack heuristic (§4.4, Appendix A).

    Versions are considered in non-increasing order of their full
    (materialized) size. The first becomes the materialized root. A
    sliding window of at most [window] recently seen versions is
    maintained; each new version [Vi] is stored as a delta from the
    window member [Vl] minimizing the depth-biased size

    {v Δ(l,i) / (max_depth − depth(l)) v}

    among members with [depth < max_depth] and a revealed delta
    — shallow bases are preferred over slightly smaller, deeper
    deltas. The chosen base is moved to the window's end (it stays
    longer), the new version is appended, and the oldest member is
    dropped (Appendix A, Step 3). A version with no candidate is
    materialized.

    GitH optimizes neither bound explicitly; the paper uses it as the
    practically-minded baseline (it achieves good total recreation
    cost at materially higher storage, Figure 13). *)

val solve :
  ?depth_bias:bool ->
  ?jobs:int ->
  Aux_graph.t ->
  window:int ->
  max_depth:int ->
  (Storage_graph.t, string) result
(** [window <= 0] or [window = max_int] means an unbounded window
    (the paper's "infinite window" runs). [depth_bias] (default true)
    applies the [Δ/(max_depth − depth)] scoring; [false] reverts to
    git's original raw-Δ rule (Appendix A notes the bias "was added at
    a later point"), exposed for the ablation bench. [jobs] (default
    {!Versioning_util.Pool.default_jobs}) parallelizes the per-version
    candidate gather; the selection pass stays sequential (each choice
    updates the window and depths the next depends on), and the
    resulting tree is identical for every [jobs]. [Error] if some
    version has neither a candidate delta nor a revealed
    materialization. *)
