(* Shared solver instrumentation.

   Solvers count events (relaxations, swaps, rounds) in plain local
   refs — cheap, allocation-free and identical whether or not the
   observability gate is on — and report the totals through this
   module on exit. Every function here is a no-op while DSVC_OBS is
   off, and timing goes through [Metrics.time] / [Trace.with_span] so
   no clock primitive is ever mentioned inside the R5 determinism
   scope (lib/core). Metric values never feed back into solver
   decisions. *)

module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace

let enabled = Obs.enabled

(* Wrap a solver entry point: bumps the per-algorithm run counter and
   records a span + wall-time histogram around [f]. *)
let timed ~algo f =
  if not (Obs.enabled ()) then f ()
  else begin
    Metrics.counter "dsvc_solver_runs_total" ~labels:[ ("algo", algo) ]
      ~help:"Solver invocations, by algorithm";
    Trace.with_span ("solve." ^ algo) (fun () ->
        Metrics.time "dsvc_solver_seconds" ~labels:[ ("algo", algo) ]
          ~help:"Solver wall time, by algorithm" f)
  end

(* Report an event total counted locally by a solver run. *)
let count ~algo ~help name n =
  if n > 0 && Obs.enabled () then
    Metrics.counter name ~labels:[ ("algo", algo) ] ~by:(float_of_int n) ~help
