module Digraph = Versioning_graph.Digraph

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "dsvc-graph 1 %d\n" (Aux_graph.n_versions g));
  Digraph.iter_edges (Aux_graph.graph g) (fun e ->
      if e.src = 0 then
        Buffer.add_string buf
          (Printf.sprintf "m %d %h %h\n" e.dst e.label.Aux_graph.delta
             e.label.Aux_graph.phi)
      else
        Buffer.add_string buf
          (Printf.sprintf "d %d %d %h %h\n" e.src e.dst
             e.label.Aux_graph.delta e.label.Aux_graph.phi));
  Buffer.contents buf

let of_string s =
  let fail msg = Error ("Graph_io: " ^ msg) in
  match String.split_on_char '\n' s with
  | [] -> fail "empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "dsvc-graph"; "1"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> (
              let g = Aux_graph.create ~n_versions:n in
              let parse_line line =
                if line = "" then Ok ()
                else
                  match String.split_on_char ' ' line with
                  | [ "m"; v; delta; phi ] -> (
                      match
                        ( int_of_string_opt v,
                          float_of_string_opt delta,
                          float_of_string_opt phi )
                      with
                      | Some v, Some delta, Some phi -> (
                          try
                            Aux_graph.add_materialization g ~version:v ~delta
                              ~phi;
                            Ok ()
                          with Invalid_argument e -> fail e)
                      | _ -> fail ("bad materialization line: " ^ line))
                  | [ "d"; src; dst; delta; phi ] -> (
                      match
                        ( int_of_string_opt src,
                          int_of_string_opt dst,
                          float_of_string_opt delta,
                          float_of_string_opt phi )
                      with
                      | Some src, Some dst, Some delta, Some phi -> (
                          try
                            Aux_graph.add_delta g ~src ~dst ~delta ~phi;
                            Ok ()
                          with Invalid_argument e -> fail e)
                      | _ -> fail ("bad delta line: " ^ line))
                  | _ -> fail ("unknown line: " ^ line)
              in
              let rec go = function
                | [] -> Ok g
                | l :: tl -> (
                    match parse_line l with Ok () -> go tl | Error _ as e -> e)
              in
              go rest)
          | _ -> fail "bad version count")
      | _ -> fail "not a dsvc-graph file")

let save g ~path = Versioning_util.Fsutil.write_file path (to_string g)

let load ~path =
  try
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string content
  with Sys_error e -> Error e
