module Digraph = Versioning_graph.Digraph
module Heap = Versioning_util.Binary_heap
module Uf = Versioning_util.Union_find

(* Both algorithms view the auxiliary graph as undirected: an edge in
   either direction connects its endpoints, with its own label. On
   symmetric graphs (the intended use) direction is immaterial. *)

let weight = Storage_graph.storage_cost

let prim g =
  Solver_obs.timed ~algo:"mst-prim" @@ fun () ->
  let dg = Aux_graph.graph g in
  let n = Digraph.n_vertices dg in
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  let pred = Array.make n (-1) in
  let pred_w = Array.make n ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight) in
  let heap = Heap.create ~capacity:n in
  best.(0) <- 0.0;
  Heap.insert heap 0 0.0;
  let pops = ref 0 in
  let relaxed = ref 0 in
  let relax v other (label : Aux_graph.weight) =
    if (not in_tree.(other)) && label.delta < best.(other) then begin
      incr relaxed;
      best.(other) <- label.delta;
      pred.(other) <- v;
      pred_w.(other) <- label;
      Heap.insert heap other label.delta
    end
  in
  while not (Heap.is_empty heap) do
    let v, _ = Heap.pop_min heap in
    incr pops;
    if not in_tree.(v) then begin
      in_tree.(v) <- true;
      Digraph.iter_out dg v (fun e -> relax v e.dst e.label);
      Digraph.iter_in dg v (fun e -> relax v e.src e.label)
    end
  done;
  Solver_obs.count ~algo:"mst-prim" "dsvc_solver_iterations_total" !pops
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"mst-prim" "dsvc_solver_edges_relaxed_total" !relaxed
    ~help:"Successful edge relaxations, by algorithm";
  let rec missing v =
    if v >= n then None else if not in_tree.(v) then Some v else missing (v + 1)
  in
  match missing 1 with
  | Some v -> Error (Printf.sprintf "graph is disconnected at version %d" v)
  | None ->
      let choices =
        List.init (n - 1) (fun i ->
            let v = i + 1 in
            (pred.(v), v, pred_w.(v)))
      in
      Storage_graph.of_parent_edges ~n:(n - 1) choices

let kruskal g =
  Solver_obs.timed ~algo:"mst-kruskal" @@ fun () ->
  let dg = Aux_graph.graph g in
  let n = Digraph.n_vertices dg in
  let edges =
    Digraph.fold_edges dg ~init:[] ~f:(fun acc e -> e :: acc)
    |> List.sort (fun (a : _ Digraph.edge) b ->
           compare
             (a.label.Aux_graph.delta, a.src, a.dst)
             (b.label.Aux_graph.delta, b.src, b.dst))
  in
  let uf = Uf.create n in
  let chosen = ref [] in
  List.iter
    (fun (e : Aux_graph.weight Digraph.edge) ->
      if Uf.union uf e.src e.dst then chosen := e :: !chosen)
    edges;
  Solver_obs.count ~algo:"mst-kruskal" "dsvc_solver_iterations_total"
    (List.length edges)
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"mst-kruskal" "dsvc_solver_edges_relaxed_total"
    (List.length !chosen)
    ~help:"Successful edge relaxations, by algorithm";
  if Uf.count_sets uf <> 1 then Error "graph is disconnected"
  else begin
    (* Orient the undirected tree away from the root by BFS. *)
    let adj = Array.make n [] in
    List.iter
      (fun (e : Aux_graph.weight Digraph.edge) ->
        adj.(e.src) <- (e.dst, e.label) :: adj.(e.src);
        adj.(e.dst) <- (e.src, e.label) :: adj.(e.dst))
      !chosen;
    let pred = Array.make n (-1) in
    let pred_w = Array.make n ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight) in
    let visited = Array.make n false in
    visited.(0) <- true;
    let queue = Queue.create () in
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun (u, label) ->
          if not visited.(u) then begin
            visited.(u) <- true;
            pred.(u) <- v;
            pred_w.(u) <- label;
            Queue.add u queue
          end)
        adj.(v)
    done;
    let choices =
      List.init (n - 1) (fun i ->
          let v = i + 1 in
          (pred.(v), v, pred_w.(v)))
    in
    Storage_graph.of_parent_edges ~n:(n - 1) choices
  end
