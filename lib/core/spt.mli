(** Shortest-path tree rooted at the dummy vertex [V0] — the optimal
    storage graph for Problem 2 (minimize every recreation cost,
    Lemma 3). Dijkstra over the Φ weights, O(E log V). *)

val distances : Aux_graph.t -> float array
(** [distances g] is the array of shortest Φ-distances from [V0];
    index [v ∈ 0..n], [infinity] for unreachable versions. These are
    the per-version lower bounds on any solution's recreation cost. *)

val solve : Aux_graph.t -> (Storage_graph.t, string) result
(** The shortest-path tree as a storage solution. [Error] when some
    version is unreachable from [V0] (i.e. not every version can be
    recreated). Ties are broken toward the smaller predecessor id, so
    the result is deterministic. *)
