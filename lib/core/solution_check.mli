(** Independent verifier for storage solutions.

    Lemma 1 says every optimal solution of Problems 1–6 is a spanning
    arborescence of the auxiliary graph rooted at the dummy vertex
    [V0], with storage cost [C = Σ Δ] over the chosen edges and
    recreation cost [Ri = Σ Φ] along each root path. The solvers all
    promise to produce exactly that; this module re-derives the claim
    from scratch so tests (and [dsvc optimize --check-solutions]) can
    distinguish "the solver said so" from "it is so".

    The checks, in order:
    - the solution covers versions [1..n] of the graph, each with
      exactly one parent — a spanning arborescence (cycle-free, every
      root path ends at [V0]);
    - every chosen edge corresponds to a {e revealed} entry of the
      auxiliary graph with a matching ⟨Δ, Φ⟩ weight (for delta edges a
      reverse-revealed edge of equal weight is accepted, which is how
      undirected solutions of the symmetric scenarios are encoded);
    - the solution's cached cost accounting ([storage_cost],
      [recreation_cost], [sum_recreation], [max_recreation]) agrees
      with an independent recomputation from the parent choices and
      the graph's weights. *)

type report = {
  n_versions : int;
  storage : float;  (** independently recomputed [C] *)
  sum_recreation : float;  (** independently recomputed [Σ Ri] *)
  max_recreation : float;  (** independently recomputed [max Ri] *)
}

val check :
  Aux_graph.t -> Storage_graph.t -> (report, string list) result
(** [check g sg] verifies [sg] against [g] and returns the recomputed
    totals, or every violation found (never an empty error list). *)

val check_exn : Aux_graph.t -> Storage_graph.t -> unit
(** Like {!check} but raises [Failure] with the violations joined by
    newlines — the form used by the test suite and the CLI. *)
