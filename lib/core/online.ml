type policy =
  | Min_delta
  | Bounded_max of float

type t = {
  policy : policy;
  mutable n : int;
  mutable capacity : int;
  mutable parents : int array;  (* index 1.. *)
  mutable weights : Aux_graph.weight array;
  mutable recreation : float array;
  mutable storage : float;
  mutable entries :
    (int * Aux_graph.weight * (int * Aux_graph.weight) list) list;
      (* reveal log, newest first: (version, diag, candidates) *)
}

let create policy =
  {
    policy;
    n = 0;
    capacity = 8;
    parents = Array.make 9 0;
    weights = Array.make 9 ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight);
    recreation = Array.make 9 0.0;
    storage = 0.0;
    entries = [];
  }

let n_versions t = t.n

let grow t =
  if t.n >= t.capacity then begin
    let cap = 2 * t.capacity in
    let parents = Array.make (cap + 1) 0 in
    let weights =
      Array.make (cap + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
    in
    let recreation = Array.make (cap + 1) 0.0 in
    Array.blit t.parents 0 parents 0 (t.n + 1);
    Array.blit t.weights 0 weights 0 (t.n + 1);
    Array.blit t.recreation 0 recreation 0 (t.n + 1);
    t.parents <- parents;
    t.weights <- weights;
    t.recreation <- recreation;
    t.capacity <- cap
  end

let add_version t ~materialization ~candidates =
  let bad =
    List.find_opt (fun (src, _) -> src < 1 || src > t.n) candidates
  in
  match bad with
  | Some (src, _) ->
      Error (Printf.sprintf "unknown candidate source version %d" src)
  | None ->
      grow t;
      let v = t.n + 1 in
      t.n <- v;
      let choose_min_delta ok =
        (* cheapest Δ among the admissible in-edges, materialization
           included; ties to materialization, then smaller source *)
        let best = ref (0, materialization) in
        List.iter
          (fun (src, (w : Aux_graph.weight)) ->
            let _, bw = !best in
            if ok src w && w.delta < bw.Aux_graph.delta then best := (src, w))
          candidates;
        !best
      in
      let parent, weight =
        match t.policy with
        | Min_delta -> choose_min_delta (fun _ _ -> true)
        | Bounded_max theta ->
            let fits src (w : Aux_graph.weight) =
              t.recreation.(src) +. w.phi <= theta
            in
            let p, w = choose_min_delta fits in
            (* materialization itself might violate θ; store it anyway
               (there is no better option for a mandatory version) *)
            (p, w)
      in
      t.parents.(v) <- parent;
      t.weights.(v) <- weight;
      t.recreation.(v) <-
        (if parent = 0 then weight.phi
         else t.recreation.(parent) +. weight.phi);
      t.storage <- t.storage +. weight.Aux_graph.delta;
      t.entries <- (v, materialization, candidates) :: t.entries;
      Ok v

let parent t v =
  if v < 1 || v > t.n then invalid_arg "Online.parent";
  t.parents.(v)

let recreation_cost t v =
  if v < 1 || v > t.n then invalid_arg "Online.recreation_cost";
  t.recreation.(v)

let storage_cost t = t.storage

let max_recreation t =
  let m = ref 0.0 in
  for v = 1 to t.n do
    if t.recreation.(v) > !m then m := t.recreation.(v)
  done;
  !m

let sum_recreation t =
  let s = ref 0.0 in
  for v = 1 to t.n do
    s := !s +. t.recreation.(v)
  done;
  !s

let aux_graph t =
  let g = Aux_graph.create ~n_versions:t.n in
  List.iter
    (fun (v, diag, candidates) ->
      Aux_graph.add_materialization g ~version:v
        ~delta:diag.Aux_graph.delta ~phi:diag.Aux_graph.phi;
      List.iter
        (fun (src, (w : Aux_graph.weight)) ->
          Aux_graph.add_delta g ~src ~dst:v ~delta:w.delta ~phi:w.phi)
        candidates)
    t.entries;
  g

let to_storage_graph t =
  let choices =
    List.init t.n (fun i ->
        let v = i + 1 in
        (t.parents.(v), v, t.weights.(v)))
  in
  match Storage_graph.of_parent_edges ~n:t.n choices with
  | Ok sg -> sg
  | Error e -> invalid_arg ("Online: corrupt state: " ^ e)

let reoptimize t problem =
  if t.n = 0 then Ok ()
  else
    match Solver.solve (aux_graph t) problem with
    | Error _ as e -> Result.map (fun _ -> ()) e
    | Ok sg ->
        for v = 1 to t.n do
          t.parents.(v) <- Storage_graph.parent sg v;
          t.weights.(v) <- Storage_graph.edge_weight sg v;
          t.recreation.(v) <- Storage_graph.recreation_cost sg v
        done;
        t.storage <- Storage_graph.storage_cost sg;
        Ok ()

let drift t problem =
  if t.n = 0 then Ok 1.0
  else
    match Solver.solve (aux_graph t) problem with
    | Error _ as e -> Result.map (fun _ -> 1.0) e
    | Ok sg ->
        let objective online offline =
          if offline <= 0.0 then 1.0 else online /. offline
        in
        Ok
          (match problem with
          | Solver.Minimize_storage
          | Solver.Min_storage_bounded_sum_recreation _
          | Solver.Min_storage_bounded_max_recreation _ ->
              objective t.storage (Storage_graph.storage_cost sg)
          | Solver.Minimize_recreation
          | Solver.Min_sum_recreation_bounded_storage _ ->
              objective (sum_recreation t) (Storage_graph.sum_recreation sg)
          | Solver.Min_max_recreation_bounded_storage _ ->
              objective (max_recreation t) (Storage_graph.max_recreation sg))
