module Digraph = Versioning_graph.Digraph

type weight = { delta : float; phi : float }

type t = { n : int; g : weight Digraph.t }

let create ~n_versions =
  if n_versions < 0 then invalid_arg "Aux_graph.create";
  { n = n_versions; g = Digraph.create ~n:(n_versions + 1) }

let n_versions t = t.n
let graph t = t.g

let check_version t v name =
  if v < 1 || v > t.n then
    invalid_arg (Printf.sprintf "Aux_graph.%s: version %d out of range" name v)

let check_cost c name =
  if c < 0.0 || Float.is_nan c then
    invalid_arg ("Aux_graph." ^ name ^ ": negative cost")

let add_materialization t ~version ~delta ~phi =
  check_version t version "add_materialization";
  check_cost delta "add_materialization";
  check_cost phi "add_materialization";
  (match Digraph.find_edge t.g ~src:0 ~dst:version with
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Aux_graph.add_materialization: version %d already revealed" version)
  | None -> ());
  Digraph.add_edge t.g ~src:0 ~dst:version { delta; phi }

let add_delta t ~src ~dst ~delta ~phi =
  check_version t src "add_delta";
  check_version t dst "add_delta";
  if src = dst then invalid_arg "Aux_graph.add_delta: src = dst";
  check_cost delta "add_delta";
  check_cost phi "add_delta";
  Digraph.add_edge t.g ~src ~dst { delta; phi }

let materialization t v =
  check_version t v "materialization";
  Option.map
    (fun (e : weight Digraph.edge) -> e.label)
    (Digraph.find_edge t.g ~src:0 ~dst:v)

let delta t ~src ~dst =
  check_version t src "delta";
  check_version t dst "delta";
  Option.map
    (fun (e : weight Digraph.edge) -> e.label)
    (Digraph.find_edge t.g ~src ~dst)

let has_all_materializations t =
  let ok = ref true in
  for v = 1 to t.n do
    if Digraph.find_edge t.g ~src:0 ~dst:v = None then ok := false
  done;
  !ok

let weight_equal (a : weight) (b : weight) = a.delta = b.delta && a.phi = b.phi

let is_symmetric t =
  let ok = ref true in
  Digraph.iter_edges t.g (fun e ->
      if e.src >= 1 then begin
        let mirrored =
          List.exists
            (fun (r : weight Digraph.edge) ->
              r.dst = e.src && weight_equal r.label e.label)
            (Digraph.out_edges t.g e.dst)
        in
        if not mirrored then ok := false
      end);
  !ok

let is_proportional t =
  let ok = ref true in
  Digraph.iter_edges t.g (fun e -> if e.label.delta <> e.label.phi then ok := false);
  !ok

let symmetrize t =
  let t' = create ~n_versions:t.n in
  Digraph.iter_edges t.g (fun e ->
      Digraph.add_edge t'.g ~src:e.src ~dst:e.dst e.label);
  Digraph.iter_edges t.g (fun e ->
      if e.src >= 1 then begin
        let mirrored =
          List.exists
            (fun (r : weight Digraph.edge) ->
              r.dst = e.src && weight_equal r.label e.label)
            (Digraph.out_edges t.g e.dst)
        in
        if not mirrored then
          Digraph.add_edge t'.g ~src:e.dst ~dst:e.src e.label
      end);
  t'

let scenario t =
  match (is_symmetric t, is_proportional t) with
  | true, true -> `Undirected_prop
  | _, true -> `Directed_prop
  | _, false -> `Directed_indep


let triangle_violation t =
  (* first-revealed weight per ordered pair, diagonal at (v, v) *)
  let w = Hashtbl.create (Digraph.n_edges t.g) in
  Digraph.iter_edges t.g (fun e ->
      let key = if e.src = 0 then (e.dst, e.dst) else (e.src, e.dst) in
      if not (Hashtbl.mem w key) then Hashtbl.replace w key e.label.delta);
  let get p q = Hashtbl.find_opt w (p, q) in
  let violation = ref None in
  (* path rule: delta(p,w) <= delta(p,q) + delta(q,w) *)
  Hashtbl.iter
    (fun (p, q) d_pq ->
      if !violation = None && p <> q then
        for x = 1 to t.n do
          if !violation = None && x <> p && x <> q then
            match (get q x, get p x) with
            | Some d_qx, Some d_px ->
                if d_px > d_pq +. d_qx +. 1e-9 then violation := Some (p, q, x)
            | _ -> ()
        done)
    w;
  (* diagonal rule: |delta(p,p) - delta(p,q)| <= delta(q,q) <= delta(p,p) + delta(p,q) *)
  if !violation = None then
    Hashtbl.iter
      (fun (p, q) d_pq ->
        if !violation = None && p <> q then
          match (get p p, get q q) with
          | Some d_pp, Some d_qq ->
              if
                d_qq > d_pp +. d_pq +. 1e-9
                || d_qq < Float.abs (d_pp -. d_pq) -. 1e-9
              then violation := Some (0, p, q)
          | _ -> ())
      w;
  !violation
