(** The §2.3 integer linear program, exported in CPLEX LP format.

    The paper solves its formulation with Gurobi; this repository
    solves the same model natively with {!Exact}. For users who do
    have an external solver, this module writes the model out exactly
    as the paper states it:

    - binary [x_i_j] per revealed edge (is edge (Vi, Vj) in the
      storage graph?);
    - continuous [r_j ≥ 0] per version (its recreation cost);
    - [Σ_i x_i_j = 1] for every version [j] (one parent each);
    - the conditional [r_j − r_i ≥ Φ_i_j if x_i_j = 1] linearized with
      the big-M constant [C] the paper describes
      ([Φij + ri − rj ≤ (1 − xij)·C]);
    - per-problem objective and bound ([r_i ≤ θ] for Problem 6, etc.).

    Subtour elimination beyond the recreation-variable ordering is not
    needed: as the paper's Lemma 4 argues, the [r] ordering constraints
    already rule out cycles for Φ > 0. *)

val emit : Aux_graph.t -> Solver.problem -> string
(** LP-format text for the given problem instance.
    @raise Invalid_argument for {!Solver.Minimize_recreation}
    (Problem 2 has no single linear objective; it is solved per-version
    by Dijkstra, and the paper's ILP section likewise targets the
    constrained problems). *)

val big_m : Aux_graph.t -> Solver.problem -> float
(** The "sufficiently large" constant used in the linearization: twice
    the recreation bound when one is given (the paper suggests [2θ]),
    otherwise twice the sum of all revealed Φ. *)
