let skip_base r =
  if r <= 0 then invalid_arg "Skip_delta.skip_base: r must be positive";
  r land (r - 1)

let chain_length r =
  let rec go r acc = if r = 0 then acc else go (r land (r - 1)) (acc + 1) in
  if r < 0 then invalid_arg "Skip_delta.chain_length" else go r 0

let parents ~order =
  Array.to_list
    (Array.mapi
       (fun p v -> if p = 0 then (0, v) else (order.(skip_base p), v))
       order)

let solve g ~order =
  let n = Aux_graph.n_versions g in
  if Array.length order <> n then
    Error
      (Printf.sprintf "order lists %d versions, graph has %d"
         (Array.length order) n)
  else Storage_graph.of_parents g ~parents:(parents ~order)
