(** The hop-based variant of §3: recreation cost as chain length.

    Setting [Φij = 1] for every edge makes a version's recreation cost
    the {e number of deltas} applied to rebuild it — meaningful when
    each application has roughly constant cost (e.g. one network round
    trip per object). Problem 6 then becomes the bounded-diameter
    minimum spanning tree / d-MinimumSteinerTree special case whose
    hardness (and ln n inapproximability) the paper cites from
    Kortsarz & Peleg.

    This module derives the hop-cost twin of any auxiliary graph and
    offers the natural solvers: MP for a bound on chain length, and a
    direct greedy for the common "depth ≤ d" policy that version
    control systems expose (git's [--depth], SVN's skip-delta design
    target). *)

val of_aux : Aux_graph.t -> Aux_graph.t
(** Same revealed entries and Δ weights; every Φ replaced by 1 (the
    materialization edges keep Φ = 1 as well: one retrieval). *)

val solve_bounded_depth :
  Aux_graph.t -> max_depth:int -> (Storage_graph.t, string) result
(** Minimize storage subject to every version's delta-chain length
    being ≤ [max_depth]: Problem 6 on the hop graph via MP.
    [max_depth = 0] forces full materialization. *)

val max_depth : Storage_graph.t -> int
(** Longest delta chain in a solution. *)
