module Digraph = Versioning_graph.Digraph

let solve g ~base ~alpha =
  if alpha <= 1.0 then invalid_arg "Last.solve: alpha must exceed 1";
  Solver_obs.timed ~algo:"last" @@ fun () ->
  let n = Aux_graph.n_versions g in
  let spt =
    match Spt.solve g with
    | Ok s -> s
    | Error e -> invalid_arg ("Last.solve: " ^ e)
  in
  let sp_dist = Array.make (n + 1) 0.0 in
  for v = 1 to n do
    sp_dist.(v) <- Storage_graph.recreation_cost spt v
  done;
  let d = Array.make (n + 1) infinity in
  let parent = Array.make (n + 1) (-1) in
  let weight =
    Array.make (n + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
  in
  d.(0) <- 0.0;
  (* Children lists of the base tree, for the DFS. *)
  let children = Array.make (n + 1) [] in
  for v = n downto 1 do
    let p = Storage_graph.parent base v in
    children.(p) <- v :: children.(p)
  done;
  (* Root path of [v] in the SPT, root end first. *)
  let spt_path v =
    let rec go v acc = if v = 0 then acc else go (Storage_graph.parent spt v) (v :: acc) in
    go v []
  in
  let grafts = ref 0 in
  let relaxed = ref 0 in
  let graft v =
    incr grafts;
    List.iter
      (fun y ->
        if sp_dist.(y) < d.(y) then begin
          d.(y) <- sp_dist.(y);
          parent.(y) <- Storage_graph.parent spt y;
          weight.(y) <- Storage_graph.edge_weight spt y
        end)
      (spt_path v)
  in
  let dg = Aux_graph.graph g in
  let relax ~src ~dst (w : Aux_graph.weight) =
    if d.(src) +. w.phi < d.(dst) then begin
      incr relaxed;
      d.(dst) <- d.(src) +. w.phi;
      parent.(dst) <- src;
      weight.(dst) <- w
    end
  in
  (* Cheapest-Φ edge [src → dst], honoring parallel reveals. *)
  let min_phi_edge src dst =
    let best = ref None in
    Digraph.iter_out dg src (fun e ->
        if e.dst = dst then
          match !best with
          | Some (b : Aux_graph.weight) when b.phi <= e.label.phi -> ()
          | _ -> best := Some e.label);
    !best
  in
  (* DFS over the base tree. On entering child [c] from [u]: relax the
     tree edge (with the tree's own chosen weight), then check the α
     bound; after the subtree returns, relax the reverse edge (the
     paper's "back-edge" step, Example 6) — for directed graphs it may
     be absent. *)
  let rec dfs u =
    List.iter
      (fun c ->
        relax ~src:u ~dst:c (Storage_graph.edge_weight base c);
        if d.(c) > alpha *. sp_dist.(c) then graft c;
        dfs c;
        match min_phi_edge c u with
        | Some w ->
            if u <> 0 && d.(c) +. w.phi < d.(u) then begin
              (* Guard against cycles through zero-cost edges: only
                 re-parent [u] to [c] when [c]'s current root path
                 does not pass through [u]. *)
              let rec through x = x <> -1 && x <> 0 && (x = u || through parent.(x)) in
              if not (through c) then relax ~src:c ~dst:u w
            end
        | None -> ())
      children.(u)
  in
  dfs 0;
  Solver_obs.count ~algo:"last" "dsvc_solver_edges_relaxed_total" !relaxed
    ~help:"Successful edge relaxations, by algorithm";
  Solver_obs.count ~algo:"last" "dsvc_solver_grafts_total" !grafts
    ~help:"SPT root paths grafted when the alpha bound was exceeded";
  let choices =
    List.init n (fun i ->
        let v = i + 1 in
        (parent.(v), v, weight.(v)))
  in
  match Storage_graph.of_parent_edges ~n choices with
  | Ok sg -> sg
  | Error e -> invalid_arg ("Last.solve: internal tree corrupt: " ^ e)
