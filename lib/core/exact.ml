module Digraph = Versioning_graph.Digraph

type result = {
  tree : Storage_graph.t option;
  optimal : bool;
  nodes : int;
}

type in_edge = { src : int; w : Aux_graph.weight }

exception Budget_exhausted

let solve_p6 g ~theta ?(node_budget = 2_000_000) ?time_budget () =
  let deadline =
    (* lint: nondet-ok the deadline only cuts the anytime search short;
       any incumbent returned is still optimal-so-far and validated, and
       node_budget gives the reproducible bound *)
    Option.map (fun s -> Unix.gettimeofday () +. s) time_budget
  in
  let n = Aux_graph.n_versions g in
  let dg = Aux_graph.graph g in
  (* In-edges per version, ascending Δ; source 0 is materialization. *)
  let in_edges = Array.make (n + 1) [] in
  Digraph.iter_edges dg (fun e ->
      in_edges.(e.dst) <- { src = e.src; w = e.label } :: in_edges.(e.dst));
  for v = 1 to n do
    in_edges.(v) <-
      List.sort
        (fun a b -> compare (a.w.Aux_graph.delta, a.src) (b.w.Aux_graph.delta, b.src))
        in_edges.(v)
  done;
  (* Dijkstra distances: lower bounds on any achievable recreation. *)
  let spt_min = Spt.distances g in
  (* Incumbent: MP's solution for the same θ. *)
  let best_cost = ref infinity in
  let best_choices = ref None in
  (match Mp.solve g ~theta with
  | { tree = Some sg; _ } ->
      best_cost := Storage_graph.storage_cost sg;
      best_choices :=
        Some
          (List.map
             (fun (p, v) -> (p, v, Storage_graph.edge_weight sg v))
             (Storage_graph.to_parents sg))
  | _ -> ());
  let nodes = ref 0 in
  let attached = Array.make (n + 1) false in
  let r = Array.make (n + 1) infinity in
  attached.(0) <- true;
  r.(0) <- 0.0;
  (* [allowed.(v) = None] means unrestricted; [Some l] restricts v's
     parent to sources in l (the defer bookkeeping). *)
  let allowed : int list option array = Array.make (n + 1) None in
  let edge_allowed v (e : in_edge) =
    match allowed.(v) with
    | None -> true
    | Some l -> List.mem e.src l
  in
  (* Optimistic feasibility: can edge e into v possibly respect θ? *)
  let optimistic v (e : in_edge) =
    edge_allowed v e
    &&
    if attached.(e.src) then r.(e.src) +. e.w.phi <= theta
    else spt_min.(e.src) +. e.w.phi <= theta
  in
  let lower_bound () =
    let lb = ref 0.0 in
    let feasible = ref true in
    for v = 1 to n do
      if !feasible && not attached.(v) then begin
        (* in_edges are Δ-ascending: the first optimistic one is the
           cheapest. *)
        let rec first = function
          | [] -> None
          | e :: tl -> if optimistic v e then Some e else first tl
        in
        match first in_edges.(v) with
        | Some e -> lb := !lb +. e.w.Aux_graph.delta
        | None -> feasible := false
      end
    done;
    if !feasible then Some !lb else None
  in
  let rec search cost choices n_attached =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    (match deadline with
    (* lint: nondet-ok deadline polling, see the note at [deadline] *)
    | Some d when !nodes land 1023 = 0 && Unix.gettimeofday () > d ->
        raise Budget_exhausted
    | _ -> ());
    if n_attached = n then begin
      if cost < !best_cost then begin
        best_cost := cost;
        best_choices := Some choices
      end
    end
    else
      match lower_bound () with
      | None -> ()
      | Some lb ->
          if cost +. lb < !best_cost -. 1e-9 then begin
            (* Branch vertex: smallest unattached with a feasible
               attached-source edge. *)
            let v = ref 0 in
            (try
               for u = 1 to n do
                 if
                   (not attached.(u))
                   && List.exists
                        (fun e ->
                          edge_allowed u e && attached.(e.src)
                          && r.(e.src) +. e.w.Aux_graph.phi <= theta)
                        in_edges.(u)
                 then begin
                   v := u;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !v <> 0 then begin
              let v = !v in
              (* Attach branches, cheapest Δ first. *)
              List.iter
                (fun (e : in_edge) ->
                  if
                    edge_allowed v e && attached.(e.src)
                    && r.(e.src) +. e.w.phi <= theta
                  then begin
                    attached.(v) <- true;
                    r.(v) <- r.(e.src) +. e.w.phi;
                    search
                      (cost +. e.w.Aux_graph.delta)
                      ((e.src, v, e.w) :: choices)
                      (n_attached + 1);
                    attached.(v) <- false;
                    r.(v) <- infinity
                  end)
                in_edges.(v);
              (* Defer branch: v's parent must be one of the currently
                 unattached sources. Strictly shrinks v's allowed set
                 (the attached feasible source just found is dropped),
                 so the search terminates. *)
              let unattached_sources =
                List.filter_map
                  (fun (e : in_edge) ->
                    if edge_allowed v e && not attached.(e.src) then Some e.src
                    else None)
                  in_edges.(v)
              in
              if unattached_sources <> [] then begin
                let saved = allowed.(v) in
                allowed.(v) <- Some unattached_sources;
                search cost choices n_attached;
                allowed.(v) <- saved
              end
            end
            (* No vertex attachable now and not all attached: dead
               end (deferred constraints made this branch infeasible). *)
          end
  in
  let optimal =
    try
      search 0.0 [] 0;
      true
    with Budget_exhausted -> false
  in
  let tree =
    match !best_choices with
    | None -> None
    | Some choices -> (
        match Storage_graph.of_parent_edges ~n choices with
        | Ok sg -> Some sg
        | Error e -> invalid_arg ("Exact: corrupt incumbent: " ^ e))
  in
  { tree; optimal; nodes = !nodes }

let brute_force_p6 g ~theta =
  let n = Aux_graph.n_versions g in
  let best = ref None in
  let parents = Array.make (n + 1) 0 in
  let rec go v =
    if v > n then begin
      let choice = List.init n (fun i -> (parents.(i + 1), i + 1)) in
      match Storage_graph.of_parents g ~parents:choice with
      | Ok sg when Storage_graph.max_recreation sg <= theta -> (
          match !best with
          | Some b when Storage_graph.storage_cost b <= Storage_graph.storage_cost sg
            ->
              ()
          | _ -> best := Some sg)
      | Ok _ | Error _ -> ()
    end
    else
      for p = 0 to n do
        if p <> v then begin
          parents.(v) <- p;
          go (v + 1)
        end
      done
  in
  go 1;
  !best


(* ---- Problem 3: min Σ R s.t. C <= budget ---- *)

let solve_p3 g ~budget ?(node_budget = 2_000_000) ?time_budget () =
  (* lint: nondet-ok wall-clock deadline for the anytime search only;
     node_budget gives the reproducible bound *)
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) time_budget in
  let n = Aux_graph.n_versions g in
  let dg = Aux_graph.graph g in
  let in_edges = Array.make (n + 1) [] in
  Digraph.iter_edges dg (fun e ->
      in_edges.(e.dst) <- { src = e.src; w = e.label } :: in_edges.(e.dst));
  for v = 1 to n do
    (* ascending Δ: cheapest storage first gives good first incumbents
       under the budget *)
    in_edges.(v) <-
      List.sort
        (fun a b ->
          compare (a.w.Aux_graph.delta, a.src) (b.w.Aux_graph.delta, b.src))
        in_edges.(v)
  done;
  let spt_min = Spt.distances g in
  (* Incumbent: LMG at the same budget (mirroring the MP seed for P6). *)
  let best_obj = ref infinity in
  let best_choices = ref None in
  (match (Solver.min_storage_tree g, Spt.solve g) with
  | Ok base, Ok spt when Storage_graph.storage_cost base <= budget ->
      let sg = Lmg.solve g ~base ~spt ~budget () in
      best_obj := Storage_graph.sum_recreation sg;
      best_choices :=
        Some
          (List.map
             (fun (p, v) -> (p, v, Storage_graph.edge_weight sg v))
             (Storage_graph.to_parents sg))
  | _ -> ());
  let nodes = ref 0 in
  let attached = Array.make (n + 1) false in
  let r = Array.make (n + 1) infinity in
  attached.(0) <- true;
  r.(0) <- 0.0;
  let allowed : int list option array = Array.make (n + 1) None in
  let edge_allowed v (e : in_edge) =
    match allowed.(v) with None -> true | Some l -> List.mem e.src l
  in
  (* Admissible bounds for the unattached set: Σ of min Δ (for the
     budget check) and Σ of best-possible R (for the objective). *)
  let bounds () =
    let lb_delta = ref 0.0 and lb_r = ref 0.0 in
    let feasible = ref true in
    for v = 1 to n do
      if !feasible && not attached.(v) then begin
        let best_d = ref infinity in
        List.iter
          (fun (e : in_edge) ->
            if edge_allowed v e && e.w.Aux_graph.delta < !best_d then
              best_d := e.w.Aux_graph.delta)
          in_edges.(v);
        if !best_d = infinity then feasible := false
        else begin
          lb_delta := !lb_delta +. !best_d;
          lb_r := !lb_r +. spt_min.(v)
        end
      end
    done;
    if !feasible then Some (!lb_delta, !lb_r) else None
  in
  let rec search storage obj choices n_attached =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    (match deadline with
    (* lint: nondet-ok deadline polling, see the note at [deadline] *)
    | Some d when !nodes land 1023 = 0 && Unix.gettimeofday () > d ->
        raise Budget_exhausted
    | _ -> ());
    if n_attached = n then begin
      (* the admissible bound uses each vertex's cheapest edge, so the
         real storage must be re-checked at the leaf *)
      if obj < !best_obj && storage <= budget +. 1e-9 then begin
        best_obj := obj;
        best_choices := Some choices
      end
    end
    else
      match bounds () with
      | None -> ()
      | Some (lb_delta, lb_r) ->
          if
            storage +. lb_delta <= budget +. 1e-9
            && obj +. lb_r < !best_obj -. 1e-9
          then begin
            let v = ref 0 in
            (try
               for u = 1 to n do
                 if
                   (not attached.(u))
                   && List.exists
                        (fun e -> edge_allowed u e && attached.(e.src))
                        in_edges.(u)
                 then begin
                   v := u;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !v <> 0 then begin
              let v = !v in
              List.iter
                (fun (e : in_edge) ->
                  if edge_allowed v e && attached.(e.src) then begin
                    attached.(v) <- true;
                    r.(v) <- r.(e.src) +. e.w.phi;
                    search
                      (storage +. e.w.Aux_graph.delta)
                      (obj +. r.(v))
                      ((e.src, v, e.w) :: choices)
                      (n_attached + 1);
                    attached.(v) <- false;
                    r.(v) <- infinity
                  end)
                in_edges.(v);
              let unattached_sources =
                List.filter_map
                  (fun (e : in_edge) ->
                    if edge_allowed v e && not attached.(e.src) then Some e.src
                    else None)
                  in_edges.(v)
              in
              if unattached_sources <> [] then begin
                let saved = allowed.(v) in
                allowed.(v) <- Some unattached_sources;
                search storage obj choices n_attached;
                allowed.(v) <- saved
              end
            end
          end
  in
  let optimal =
    try
      search 0.0 0.0 [] 0;
      true
    with Budget_exhausted -> false
  in
  let tree =
    match !best_choices with
    | None -> None
    | Some choices -> (
        match Storage_graph.of_parent_edges ~n choices with
        | Ok sg -> Some sg
        | Error e -> invalid_arg ("Exact: corrupt incumbent: " ^ e))
  in
  { tree; optimal; nodes = !nodes }

let brute_force_p3 g ~budget =
  let n = Aux_graph.n_versions g in
  let best = ref None in
  let parents = Array.make (n + 1) 0 in
  let rec go v =
    if v > n then begin
      let choice = List.init n (fun i -> (parents.(i + 1), i + 1)) in
      match Storage_graph.of_parents g ~parents:choice with
      | Ok sg when Storage_graph.storage_cost sg <= budget +. 1e-9 -> (
          match !best with
          | Some b
            when Storage_graph.sum_recreation b
                 <= Storage_graph.sum_recreation sg ->
              ()
          | _ -> best := Some sg)
      | Ok _ | Error _ -> ()
    end
    else
      for p = 0 to n do
        if p <> v then begin
          parents.(v) <- p;
          go (v + 1)
        end
      done
  in
  go 1;
  !best
