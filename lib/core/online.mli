(** Online storage decisions — the paper's announced future work
    (§7: "we plan to develop online algorithms for making the
    optimization decisions as new datasets or versions are being
    created"), implemented here as an extension.

    Versions arrive one at a time with their revealed in-edges; each
    must be assigned a parent immediately (materialize, or delta from
    an already-stored version), and earlier choices are not revisited
    except through an explicit {!reoptimize}. Two greedy policies:

    - {!Min_delta}: always the cheapest in-edge — the online analogue
      of Problem 1. Chains can grow without bound.
    - {!Bounded_max}: cheapest in-edge whose recreation cost stays
      within θ, materializing when none qualifies — the online
      analogue of Problem 6 (MP's invariant, applied greedily).

    {!reoptimize} re-solves the accumulated graph offline with any
    {!Solver.problem} and adopts that solution, modelling the
    "repack" a production system would schedule; {!drift} quantifies
    how far the online tree has fallen behind the offline optimum —
    the measurement motivating such repacks. *)

type policy =
  | Min_delta
  | Bounded_max of float  (** θ on every version's recreation cost *)

type t

val create : policy -> t

val n_versions : t -> int

val add_version :
  t ->
  materialization:Aux_graph.weight ->
  candidates:(int * Aux_graph.weight) list ->
  (int, string) result
(** [add_version t ~materialization ~candidates] registers the next
    version (ids are assigned 1, 2, … in arrival order) with its
    revealed diagonal entry and delta candidates [(source, weight)];
    sources must be already-registered versions. Returns the new
    version's id. The parent chosen by the policy is readable via
    {!parent}. [Error] on an unknown source. *)

val parent : t -> int -> int
(** Current parent of a version (0 = materialized). *)

val recreation_cost : t -> int -> float
val storage_cost : t -> float
val max_recreation : t -> float
val sum_recreation : t -> float

val to_storage_graph : t -> Storage_graph.t
(** Snapshot of the current decisions. *)

val aux_graph : t -> Aux_graph.t
(** The accumulated auxiliary graph (all revealed entries so far). *)

val reoptimize : t -> Solver.problem -> (unit, string) result
(** Re-solve offline over everything revealed so far and adopt the
    result; subsequent online decisions continue from it. *)

val drift : t -> Solver.problem -> (float, string) result
(** [storage_cost t /. storage_cost offline_optimum] for storage-
    objective problems (how much the online greedy overpays); uses
    the corresponding objective for the recreation-objective
    problems. 1.0 = no drift. *)
