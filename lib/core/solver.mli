(** One-stop façade over the six problem formulations of Table 1.

    Picks the right algorithm for the graph's scenario: minimum
    spanning tree (Prim) for undirected Problem 1 vs. minimum-cost
    arborescence (Edmonds) for directed; LMG for the sum-recreation
    problems; MP for the max-recreation problems (with LAST available
    separately as the undirected Δ = Φ alternative the paper marks
    with †). *)

type problem =
  | Minimize_storage  (** Problem 1 *)
  | Minimize_recreation  (** Problem 2 *)
  | Min_sum_recreation_bounded_storage of float
      (** Problem 3: [C ≤ β] *)
  | Min_max_recreation_bounded_storage of float
      (** Problem 4: [C ≤ β] *)
  | Min_storage_bounded_sum_recreation of float
      (** Problem 5: [Σ Ri ≤ θ] *)
  | Min_storage_bounded_max_recreation of float
      (** Problem 6: [max Ri ≤ θ] *)

val min_storage_tree : Aux_graph.t -> (Storage_graph.t, string) result
(** MST (via Prim) when the graph is symmetric, MCA (via Edmonds)
    otherwise — the Problem 1 optimum and the canonical "base" tree
    for the heuristics. *)

val solve : Aux_graph.t -> problem -> (Storage_graph.t, string) result
(** Dispatch. Problems 1 and 2 are solved optimally; 3 and 5 by LMG
    (binary search for 5), 4 and 6 by MP (binary search for 4). *)

val solve_weighted :
  Aux_graph.t ->
  freqs:float array ->
  problem ->
  (Storage_graph.t, string) result
(** Workload-aware variant: Problems 3 and 5 optimize the
    frequency-weighted sum of recreation costs (only LMG supports
    this; other problems ignore the weights, matching the paper's
    observation that MP/LAST do not adapt naturally). *)
