(** Minimum spanning tree over the Δ weights — the optimal storage
    graph for Problem 1 in the {e undirected} case (Lemma 2).

    The auxiliary graph must be symmetric on version–version edges
    (see {!Aux_graph.symmetrize}); materialization edges [0 → i] are
    treated as undirected edges to the root. Two classical algorithms
    are provided; they return trees of equal total weight (possibly
    differing on cost ties), which the test suite exploits as an
    invariant. *)

val prim : Aux_graph.t -> (Storage_graph.t, string) result
(** Prim's algorithm from the root, O(E log V) with a binary heap.
    [Error] when the graph is disconnected. *)

val kruskal : Aux_graph.t -> (Storage_graph.t, string) result
(** Kruskal's algorithm with union–find, O(E log E). The resulting
    undirected tree is oriented away from the root to produce the
    storage solution. [Error] when the graph is disconnected. *)

val weight : Storage_graph.t -> float
(** Alias for {!Storage_graph.storage_cost} — the tree weight. *)
