module Digraph = Versioning_graph.Digraph

let of_aux g =
  let n = Aux_graph.n_versions g in
  let g' = Aux_graph.create ~n_versions:n in
  Digraph.iter_edges (Aux_graph.graph g) (fun e ->
      if e.src = 0 then
        Aux_graph.add_materialization g' ~version:e.dst
          ~delta:e.label.Aux_graph.delta ~phi:1.0
      else
        Aux_graph.add_delta g' ~src:e.src ~dst:e.dst
          ~delta:e.label.Aux_graph.delta ~phi:1.0);
  g'

let solve_bounded_depth g ~max_depth =
  if max_depth < 0 then invalid_arg "Hop_cost.solve_bounded_depth";
  let hop = of_aux g in
  (* Recreation cost on the hop graph = 1 (materialization) + chain
     length, so depth <= d means theta = d + 1. *)
  match Mp.solve hop ~theta:(float_of_int (max_depth + 1)) with
  | { Mp.tree = Some sg; _ } ->
      (* Re-cost the chosen tree on the original graph so recreation
         costs are real again. *)
      Storage_graph.of_parents g ~parents:(Storage_graph.to_parents sg)
  | { Mp.tree = None; infeasible } ->
      Error
        (Printf.sprintf "%d versions cannot meet depth %d (first: %d)"
           (List.length infeasible) max_depth
           (match infeasible with v :: _ -> v | [] -> -1))

let max_depth sg =
  let m = ref 0 in
  for v = 1 to Storage_graph.n_versions sg do
    let d = Storage_graph.depth sg v in
    if d > !m then m := d
  done;
  !m
