module Digraph = Versioning_graph.Digraph
module Heap = Versioning_util.Binary_heap

type outcome = { tree : Storage_graph.t option; infeasible : int list }

(* Is [anc] an ancestor of [v] (or equal)? Used as a cycle guard when
   re-parenting in-tree versions: the paper's conditions already make
   a cycle impossible for strictly positive Φ, but zero-cost deltas
   (identical versions) do occur in real workloads. *)
let is_ancestor parent ~anc v =
  let u = ref v in
  let found = ref false in
  while (not !found) && !u <> -1 do
    if !u = anc then found := true else u := parent.(!u)
  done;
  !found

let solve g ~theta =
  Solver_obs.timed ~algo:"mp" @@ fun () ->
  let dg = Aux_graph.graph g in
  let n = Aux_graph.n_versions g in
  let in_tree = Array.make (n + 1) false in
  let parent = Array.make (n + 1) (-1) in
  let weight =
    Array.make (n + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
  in
  let l = Array.make (n + 1) infinity in
  (* marginal storage *)
  let d = Array.make (n + 1) infinity in
  (* recreation; an overestimate for in-tree versions after upstream
     re-parenting, which only strengthens the θ check *)
  let heap = Heap.create ~capacity:(n + 1) in
  l.(0) <- 0.0;
  d.(0) <- 0.0;
  Heap.insert heap 0 0.0;
  let pops = ref 0 in
  let relaxed = ref 0 in
  while not (Heap.is_empty heap) do
    let vi, _ = Heap.pop_min heap in
    incr pops;
    if not in_tree.(vi) then begin
      in_tree.(vi) <- true;
      Digraph.iter_out dg vi (fun e ->
          let vj = e.dst in
          let w = e.label in
          if in_tree.(vj) then begin
            (* Possible improvement for an in-tree version: cheaper
               storage, no worse recreation. *)
            if
              w.Aux_graph.phi +. d.(vi) <= d.(vj)
              && w.Aux_graph.delta < l.(vj)
              && not (is_ancestor parent ~anc:vj vi)
            then begin
              incr relaxed;
              parent.(vj) <- vi;
              weight.(vj) <- w;
              d.(vj) <- w.Aux_graph.phi +. d.(vi);
              l.(vj) <- w.Aux_graph.delta
            end
          end
          else if
            w.Aux_graph.phi +. d.(vi) <= theta && w.Aux_graph.delta < l.(vj)
          then begin
            incr relaxed;
            parent.(vj) <- vi;
            weight.(vj) <- w;
            d.(vj) <- w.Aux_graph.phi +. d.(vi);
            l.(vj) <- w.Aux_graph.delta;
            Heap.insert heap vj l.(vj)
          end)
    end
  done;
  Solver_obs.count ~algo:"mp" "dsvc_solver_iterations_total" !pops
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"mp" "dsvc_solver_edges_relaxed_total" !relaxed
    ~help:"Successful edge relaxations, by algorithm";
  let infeasible = ref [] in
  for v = n downto 1 do
    if not in_tree.(v) then infeasible := v :: !infeasible
  done;
  if !infeasible <> [] then { tree = None; infeasible = !infeasible }
  else begin
    let choices =
      List.init n (fun i ->
          let v = i + 1 in
          (parent.(v), v, weight.(v)))
    in
    match Storage_graph.of_parent_edges ~n choices with
    | Ok sg -> { tree = Some sg; infeasible = [] }
    | Error e -> invalid_arg ("Mp: internal tree corrupt: " ^ e)
  end

let solve_p4 g ~budget ?(iterations = 40) () =
  let n = Aux_graph.n_versions g in
  let spt_dist = Spt.distances g in
  let lo0 = ref 0.0 in
  for v = 1 to n do
    if spt_dist.(v) > !lo0 then lo0 := spt_dist.(v)
  done;
  (* A θ that never constrains MP: the sum of every revealed Φ (no
     root path can exceed it). *)
  let hi0 =
    Versioning_graph.Digraph.fold_edges (Aux_graph.graph g) ~init:!lo0
      ~f:(fun acc e -> acc +. e.label.Aux_graph.phi)
  in
  let lo = ref !lo0 and hi = ref hi0 in
  let best = ref None in
  let try_theta theta =
    match solve g ~theta with
    | { tree = Some sg; _ } when Storage_graph.storage_cost sg <= budget ->
        Some sg
    | _ -> None
  in
  (match try_theta !hi with
  | Some sg -> best := Some sg
  | None -> ());
  if !best = None then
    Error
      (Printf.sprintf "storage budget %.1f is below what MP can reach" budget)
  else begin
    for _ = 1 to iterations do
      let mid = (!lo +. !hi) /. 2.0 in
      match try_theta mid with
      | Some sg ->
          (match !best with
          | Some b
            when Storage_graph.max_recreation b
                 <= Storage_graph.max_recreation sg ->
              ()
          | _ -> best := Some sg);
          hi := mid
      | None -> lo := mid
    done;
    match !best with Some sg -> Ok sg | None -> assert false
  end
