(** LAST — light approximate shortest-path tree (§4.3, Algorithm 3,
    after Khuller, Raghavachari & Young 1995).

    Depth-first traversal of the minimum-storage tree, maintaining
    tentative root distances [d]; whenever a node's distance exceeds
    [α ×] its shortest-path distance, the shortest path to it is
    grafted into the tree. On undirected graphs with Δ = Φ the result
    satisfies, for every version [i]:

    - [Ri ≤ α · SP(V0, Vi)], and
    - total storage ≤ [(1 + 2/(α−1)) ×] the MST weight.

    Following the paper, the same procedure is applied to directed
    graphs without the guarantees. *)

val solve :
  Aux_graph.t ->
  base:Storage_graph.t ->
  alpha:float ->
  Storage_graph.t
(** [solve g ~base ~alpha] where [base] is the MST/MCA.
    @raise Invalid_argument if [alpha <= 1.0] (the tradeoff parameter
    must exceed 1) or if the graph has unreachable versions. *)
