(** LMG — the Local Move Greedy heuristic (§4.1), for the problems
    with an {e average/sum} recreation-cost criterion (Problems 3
    and 5).

    Start from the minimum-storage tree (MST or MCA); while the
    storage budget allows, greedily replace the in-edge of some
    version [v] by [v]'s SPT in-edge, picking each round the
    replacement maximizing

    {v ρ = (reduction in Σ recreation) / (increase in storage) v}

    The numerator is [subtree(v) × (old Rv − new Rv)] — a swap at [v]
    shifts every descendant equally — or its access-frequency-weighted
    analogue in the workload-aware variant (Figure 16). Swaps whose
    storage increase is non-positive but that reduce recreation are
    always taken. O(|V|²) after the O(1) per-candidate bookkeeping. *)

val solve :
  Aux_graph.t ->
  base:Storage_graph.t ->
  spt:Storage_graph.t ->
  budget:float ->
  ?freqs:float array ->
  unit ->
  Storage_graph.t
(** [solve g ~base ~spt ~budget ()] — [base] is the minimum-storage
    tree (its storage cost should be ≤ [budget]; otherwise it is
    returned unchanged), [spt] the shortest-path tree over Φ.
    [freqs], when given (indexed [1..n]), switches the numerator to
    weighted recreation. *)

val solve_p5 :
  Aux_graph.t ->
  base:Storage_graph.t ->
  spt:Storage_graph.t ->
  sum_bound:float ->
  ?freqs:float array ->
  ?iterations:int ->
  unit ->
  (Storage_graph.t, string) result
(** Problem 5: minimize storage subject to [Σ Ri ≤ sum_bound], by
    binary search on the budget handed to {!solve} ([iterations]
    halvings, default 40). [Error] when even the SPT violates the
    bound (no LMG-reachable solution satisfies it). *)
