(** Shared solver instrumentation (see DESIGN.md §10).

    Solvers count events in local refs and report through these
    helpers; everything is a no-op while [DSVC_OBS] is off, and no
    clock primitive is mentioned inside the R5 determinism scope. *)

val enabled : unit -> bool

val timed : algo:string -> (unit -> 'a) -> 'a
(** Bump [dsvc_solver_runs_total{algo}] and run the function under a
    [solve.<algo>] span feeding [dsvc_solver_seconds{algo}]. *)

val count : algo:string -> help:string -> string -> int -> unit
(** [count ~algo ~help name n] adds [n] (when positive) to the counter
    [name{algo}]. *)
