module Digraph = Versioning_graph.Digraph
module Pool = Versioning_util.Pool

(* Candidate search is driven by the new version's revealed in-edges
   checked against a window membership table (O(in-degree) per
   version) rather than by scanning window members. Window recency is
   a lazy-deletion queue: each touch enqueues a fresh (stamp, v) and
   bumps the member's current stamp; stale queue entries are skipped
   at eviction time. *)

type window = {
  bound : int;  (* max_int = unbounded *)
  stamps : (int, int) Hashtbl.t;  (* member -> latest stamp *)
  queue : (int * int) Queue.t;  (* (stamp, member), oldest first *)
  mutable clock : int;
  mutable size : int;
}

let window_create bound =
  { bound; stamps = Hashtbl.create 64; queue = Queue.create (); clock = 0; size = 0 }

let window_mem w v = Hashtbl.mem w.stamps v

let window_touch w v =
  w.clock <- w.clock + 1;
  if not (window_mem w v) then w.size <- w.size + 1;
  Hashtbl.replace w.stamps v w.clock;
  Queue.add (w.clock, v) w.queue;
  (* Evict the genuinely oldest members down to the bound. *)
  while w.size > w.bound do
    match Queue.take_opt w.queue with
    | None -> w.size <- w.bound (* unreachable; defensive *)
    | Some (stamp, u) -> (
        match Hashtbl.find_opt w.stamps u with
        | Some s when s = stamp ->
            Hashtbl.remove w.stamps u;
            w.size <- w.size - 1
        | _ -> () (* stale entry *))
  done

let solve ?(depth_bias = true) ?(jobs = Pool.default_jobs ()) g ~window
    ~max_depth =
  if max_depth < 1 then invalid_arg "Gith.solve: max_depth must be >= 1";
  Solver_obs.timed ~algo:"gith" @@ fun () ->
  let n = Aux_graph.n_versions g in
  let bound = if window <= 0 then max_int else window in
  let size v =
    match Aux_graph.materialization g v with
    | Some w -> w.Aux_graph.delta
    | None -> 0.0
  in
  let order = Array.init n (fun i -> i + 1) in
  Array.sort
    (fun a b ->
      match compare (size b) (size a) with 0 -> compare a b | c -> c)
    order;
  let dg = Aux_graph.graph g in
  (* The candidate ⟨Δ,Φ⟩ gather per version is a pure read of the aux
     graph, so it fans out over the domain pool; only the selection
     below is sequential (each choice mutates the window and the
     depths the next choice depends on). Candidates keep [iter_in]
     order, so selection sees exactly the sequential stream. *)
  let candidates =
    Pool.parallel_init ~jobs n (fun i ->
        let acc = ref [] in
        Digraph.iter_in dg (i + 1) (fun e ->
            if e.src <> 0 then acc := (e.src, e.label) :: !acc);
        Array.of_list (List.rev !acc))
  in
  let depth = Array.make (n + 1) 0 in
  let parent = Array.make (n + 1) 0 in
  let weight =
    Array.make (n + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
  in
  let win = window_create bound in
  let error = ref None in
  let materialized = ref 0 in
  let deltas = ref 0 in
  let scanned = ref 0 in
  let materialize v =
    match Aux_graph.materialization g v with
    | Some w ->
        incr materialized;
        parent.(v) <- 0;
        weight.(v) <- w;
        depth.(v) <- 0;
        window_touch win v
    | None ->
        if !error = None then
          error :=
            Some
              (Printf.sprintf
                 "version %d has no delta candidate and no materialization" v)
  in
  Array.iteri
    (fun idx v ->
      if !error = None then
        if idx = 0 then materialize v
        else begin
          let best = ref None in
          Array.iter
            (fun (l, label) ->
              incr scanned;
              if window_mem win l && depth.(l) < max_depth then begin
                let score =
                  if depth_bias then
                    label.Aux_graph.delta
                    /. float_of_int (max_depth - depth.(l))
                  else label.Aux_graph.delta
                in
                match !best with
                | Some (s, l', _) when s < score || (s = score && l' <= l) -> ()
                | _ -> best := Some (score, l, label)
              end)
            candidates.(v - 1);
          match !best with
          | Some (_, l, w) ->
              incr deltas;
              parent.(v) <- l;
              weight.(v) <- w;
              depth.(v) <- depth.(l) + 1;
              (* Newcomer enters, the base is kept fresh (Appendix A
                 Step 3 moves it to the window's end). *)
              window_touch win v;
              window_touch win l
          | None -> materialize v
        end)
    order;
  Solver_obs.count ~algo:"gith" "dsvc_solver_candidates_scanned_total" !scanned
    ~help:"Window candidates scanned by the GitH selection loop";
  Solver_obs.count ~algo:"gith" "dsvc_solver_deltas_chosen_total" !deltas
    ~help:"Versions GitH stored as deltas against a window member";
  Solver_obs.count ~algo:"gith" "dsvc_solver_materializations_total"
    !materialized
    ~help:"Versions GitH materialized in full";
  match !error with
  | Some e -> Error e
  | None ->
      let choices =
        List.init n (fun i ->
            let v = i + 1 in
            (parent.(v), v, weight.(v)))
      in
      Storage_graph.of_parent_edges ~n choices
