(** The auxiliary graph [G] of §2.2.

    Versions are numbered [1..n]; vertex [0] is the dummy root [V0].
    An edge [0 → i] with weight [⟨Δi,i, Φi,i⟩] represents materializing
    version [i]; an edge [i → j] with weight [⟨Δi,j, Φi,j⟩] represents
    storing [j] as a delta from [i]. Only {e revealed} matrix entries
    become edges — the structure is inherently sparse (computing all
    pairwise deltas is infeasible, §2.1).

    Every storage solution is a spanning arborescence of this graph
    rooted at [0] (Lemma 1); all algorithms in this library consume
    and produce exactly that. *)

type weight = { delta : float; phi : float }

type t

val create : n_versions:int -> t
(** A graph over versions [1..n_versions] with no revealed entries. *)

val n_versions : t -> int

val graph : t -> weight Versioning_graph.Digraph.t
(** The underlying digraph on [n_versions + 1] vertices (vertex 0 is
    the root). Treat as read-only. *)

val add_materialization : t -> version:int -> delta:float -> phi:float -> unit
(** Reveal the diagonal entry for [version].
    @raise Invalid_argument on a version outside [1..n], a repeated
    reveal, or a negative cost. *)

val add_delta : t -> src:int -> dst:int -> delta:float -> phi:float -> unit
(** Reveal the off-diagonal entry [⟨Δsrc,dst, Φsrc,dst⟩].
    @raise Invalid_argument on out-of-range versions, [src = dst], or
    a negative cost. Parallel reveals are permitted (several delta
    mechanisms may exist); algorithms consider all of them. *)

val materialization : t -> int -> weight option
(** The [0 → i] weight, if revealed. First reveal wins for lookups. *)

val delta : t -> src:int -> dst:int -> weight option
(** The first-revealed [src → dst] weight, if any. *)

val has_all_materializations : t -> bool
(** True when every version has a revealed diagonal entry — required
    for feasibility of every problem (some version must be stored in
    its entirety). *)

val is_symmetric : t -> bool
(** True iff for every edge [i → j] ([i, j ≥ 1]) there is a reverse
    edge [j → i] with equal weight — the undirected case. *)

val is_proportional : t -> bool
(** True iff [phi = delta] on every edge — the Φ = Δ scenarios. *)

val symmetrize : t -> t
(** Undirected closure: for each delta edge [i → j] without an equal
    reverse, add [j → i] with the same weight. Materialization edges
    are untouched. The input is not modified. *)

val scenario : t -> [ `Undirected_prop | `Directed_prop | `Directed_indep ]
(** Classify per the paper's three scenarios. *)

val triangle_violation : t -> (int * int * int) option
(** §3's realism constraint: deltas represent actual modifications, so
    over revealed entries [Δp,w ≤ Δp,q + Δq,w] (two-hop paths never
    beat the direct delta) and [Δq,q ≤ Δp,p + Δp,q] (materializing via
    a neighbour bounds the diagonal). Returns the first violating
    triple [(p, q, w)] ([p = 0] encodes a diagonal-rule violation), or
    [None]. Only triples whose legs are all revealed are checked;
    first-revealed weights are used. O(E·V). *)
