(** SVN-style skip-deltas — the baseline behind the §5.2 comparison.

    Subversion's FSFS backend stores revision [r] as a delta against
    revision [skip_base r], chosen so that any revision is
    reconstructible through O(log n) deltas: the base of [r] is [r]
    with its lowest set bit cleared ([r land (r-1)]), and revision 0
    is stored in full. The price is storage redundancy — the same
    changes are re-encoded by many skip deltas — which is exactly the
    behaviour the paper measures against Git's heuristic and MCA. *)

val skip_base : int -> int
(** [skip_base r = r land (r - 1)]. @raise Invalid_argument for
    [r <= 0] (revision 0 is materialized, not delta'd). *)

val chain_length : int -> int
(** Number of deltas applied to reconstruct revision [r] (its popcount
    — O(log r)). *)

val parents : order:int array -> (int * int) list
(** [(parent, child)] pairs over versions: [order] lists version ids
    in revision order; position 0 is materialized (parent 0), position
    [p > 0] gets parent [order.(skip_base p)]. *)

val solve :
  Aux_graph.t -> order:int array -> (Storage_graph.t, string) result
(** Evaluate the skip-delta plan against revealed edges of [g] —
    [Error] when a required skip edge or the root materialization is
    missing. *)
