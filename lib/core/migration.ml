type action =
  | Materialize of int
  | Write_delta of { parent : int; child : int }
  | Drop_materialization of int
  | Drop_delta of { parent : int; child : int }

type plan = {
  actions : action list;
  unchanged : int;
  bytes_written : float;
  bytes_freed : float;
}

let plan ~from_ ~to_ =
  let n = Storage_graph.n_versions from_ in
  if Storage_graph.n_versions to_ <> n then
    invalid_arg "Migration.plan: version counts differ";
  let writes = ref [] and drops = ref [] in
  let written = ref 0.0 and freed = ref 0.0 and unchanged = ref 0 in
  for v = 1 to n do
    let pf = Storage_graph.parent from_ v in
    let pt = Storage_graph.parent to_ v in
    if pf = pt then incr unchanged
    else begin
      (let w = Storage_graph.edge_weight to_ v in
       written := !written +. w.Aux_graph.delta;
       writes :=
         (if pt = 0 then Materialize v else Write_delta { parent = pt; child = v })
         :: !writes);
      let w = Storage_graph.edge_weight from_ v in
      freed := !freed +. w.Aux_graph.delta;
      drops :=
        (if pf = 0 then Drop_materialization v
         else Drop_delta { parent = pf; child = v })
        :: !drops
    end
  done;
  {
    actions = List.rev !writes @ List.rev !drops;
    unchanged = !unchanged;
    bytes_written = !written;
    bytes_freed = !freed;
  }

let net_bytes p = p.bytes_written -. p.bytes_freed

let pp ppf p =
  let writes =
    List.length
      (List.filter
         (function Materialize _ | Write_delta _ -> true | _ -> false)
         p.actions)
  in
  Format.fprintf ppf
    "@[migration: %d rewrites, %d kept; +%.0f written, -%.0f freed (net %+.0f)@]"
    writes p.unchanged p.bytes_written p.bytes_freed (net_bytes p)
