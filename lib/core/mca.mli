(** Minimum-cost arborescence (directed MST) rooted at [V0] — the
    optimal storage graph for Problem 1 in the {e directed} cases
    (Lemma 2 / Table 1), computed with Edmonds' algorithm
    (Chu–Liu/Edmonds with cycle contraction), O(EV).

    This is the minimum-storage extreme of the tradeoff: no other
    valid solution stores fewer bytes, but recreation costs are
    unbounded (§5.3 reports them orders of magnitude above the SPT
    minimum — the motivation for LMG/MP/LAST). *)

val solve : Aux_graph.t -> (Storage_graph.t, string) result
(** [Error] when some version has no revealed in-edge reachable from
    the root (no valid solution exists). Deterministic: weight ties
    are broken toward smaller source ids. *)

val weight : Storage_graph.t -> float
(** Alias for {!Storage_graph.storage_cost}. *)
