type report = {
  n_versions : int;
  storage : float;
  sum_recreation : float;
  max_recreation : float;
}

(* Sums of per-edge costs accumulate rounding differently depending on
   association order, so equality is up to a relative tolerance. *)
let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-6 *. scale

let weight_eq (a : Aux_graph.weight) (b : Aux_graph.weight) =
  close a.delta b.delta && close a.phi b.phi

(* All revealed weights per edge — [Aux_graph.delta] only reports the
   first-revealed one, but solvers may legitimately pick any parallel
   reveal, so the check accepts a match against any of them. *)
let revealed_table g =
  let tbl = Hashtbl.create 256 in
  Versioning_graph.Digraph.iter_edges (Aux_graph.graph g) (fun e ->
      Hashtbl.add tbl (e.src, e.dst) e.label);
  tbl

let check g sg =
  let errors = ref [] in
  let report = ref None in
  let error fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Aux_graph.n_versions g in
  let sn = Storage_graph.n_versions sg in
  if sn <> n then
    error "solution covers %d versions but the graph has %d" sn n;
  let m = min n sn in
  (* Spanning arborescence: [to_parents] is the solution [P]; walk
     every root path with a step budget so a cycle cannot loop us. *)
  let parents = Array.make (m + 1) (-1) in
  List.iter
    (fun (p, v) ->
      if v < 1 || v > m then error "parent choice for out-of-range version %d" v
      else if parents.(v) <> -1 then error "version %d chosen twice" v
      else parents.(v) <- p)
    (Storage_graph.to_parents sg);
  for v = 1 to m do
    if parents.(v) = -1 then error "version %d has no parent choice" v
    else if parents.(v) < 0 || parents.(v) > m then
      error "version %d has out-of-range parent %d" v parents.(v)
  done;
  if !errors = [] then begin
    for v = 1 to m do
      let steps = ref 0 and u = ref v in
      while !u <> 0 && !steps <= m do
        incr steps;
        u := parents.(!u)
      done;
      if !u <> 0 then
        error "version %d's root path does not reach V0 (cycle)" v
    done
  end;
  if !errors = [] then begin
    (* Every chosen edge must be a revealed matrix entry with the
       weight the solution claims. Delta edges may be used in either
       direction: the symmetric scenarios treat ⟨i, j⟩ as undirected. *)
    let revealed = revealed_table g in
    for v = 1 to m do
      let p = parents.(v) in
      let w = Storage_graph.edge_weight sg v in
      let candidates =
        if p = 0 then Option.to_list (Aux_graph.materialization g v)
        else
          Hashtbl.find_all revealed (p, v) @ Hashtbl.find_all revealed (v, p)
      in
      if candidates = [] then
        error "edge %d -> %d is not revealed in the graph" p v
      else if not (List.exists (weight_eq w) candidates) then
        error
          "edge %d -> %d weight <%.9g, %.9g> matches no revealed entry" p v
          w.Aux_graph.delta w.Aux_graph.phi
    done;
    (* Lemma 1 accounting, recomputed from the parent choices alone. *)
    let storage = ref 0.0 in
    let recreation = Array.make (m + 1) Float.nan in
    recreation.(0) <- 0.0;
    let rec recreation_of v =
      if Float.is_nan recreation.(v) then
        recreation.(v) <-
          recreation_of parents.(v)
          +. (Storage_graph.edge_weight sg v).Aux_graph.phi;
      recreation.(v)
    in
    let sum = ref 0.0 and maxr = ref 0.0 in
    for v = 1 to m do
      storage := !storage +. (Storage_graph.edge_weight sg v).Aux_graph.delta;
      let r = recreation_of v in
      sum := !sum +. r;
      if r > !maxr then maxr := r;
      if not (close r (Storage_graph.recreation_cost sg v)) then
        error "R%d: cached %.9g, recomputed %.9g" v
          (Storage_graph.recreation_cost sg v)
          r
    done;
    if not (close !storage (Storage_graph.storage_cost sg)) then
      error "storage cost: cached %.9g, recomputed %.9g"
        (Storage_graph.storage_cost sg)
        !storage;
    if not (close !sum (Storage_graph.sum_recreation sg)) then
      error "sum recreation: cached %.9g, recomputed %.9g"
        (Storage_graph.sum_recreation sg)
        !sum;
    if not (close !maxr (Storage_graph.max_recreation sg)) then
      error "max recreation: cached %.9g, recomputed %.9g"
        (Storage_graph.max_recreation sg)
        !maxr;
    if !errors = [] then
      report :=
        Some
          {
            n_versions = m;
            storage = !storage;
            sum_recreation = !sum;
            max_recreation = !maxr;
          }
  end;
  match (!errors, !report) with
  | [], Some r -> Ok r
  | [], None -> Error [ "internal: verification did not complete" ]
  | es, _ -> Error (List.rev es)

let check_exn g sg =
  match check g sg with
  | Ok _ -> ()
  | Error es -> failwith ("invalid storage solution:\n" ^ String.concat "\n" es)
