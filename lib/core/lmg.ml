(* Mutable tree state for the greedy loop: parent/weight per version,
   children lists, exact recreation costs, and per-round subtree
   weights (node counts, or frequency sums in the workload-aware
   variant). *)

type state = {
  n : int;
  parent : int array;
  weight : Aux_graph.weight array;
  children : int list array;
  recreation : float array;
  freq : float array;  (* all-ones when unweighted *)
  subtree : float array;  (* Σ freq over the subtree, refreshed per round *)
  tin : int array;  (* Euler-tour entry times, refreshed per round *)
  tout : int array;  (* Euler-tour exit times *)
}

let init_state g base ~freqs =
  let n = Aux_graph.n_versions g in
  let parent = Array.make (n + 1) (-1) in
  let weight =
    Array.make (n + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
  in
  let children = Array.make (n + 1) [] in
  for v = 1 to n do
    parent.(v) <- Storage_graph.parent base v;
    weight.(v) <- Storage_graph.edge_weight base v;
    children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  let recreation = Storage_graph.recreation_costs base in
  let freq =
    match freqs with
    | Some f ->
        if Array.length f < n + 1 then invalid_arg "Lmg: freqs too short";
        Array.copy f
    | None -> Array.make (n + 1) 1.0
  in
  {
    n;
    parent;
    weight;
    children;
    recreation;
    freq;
    subtree = Array.make (n + 1) 0.0;
    tin = Array.make (n + 1) 0;
    tout = Array.make (n + 1) 0;
  }

(* Refresh subtree weights and Euler-tour intervals in one iterative
   DFS. After this, [u] lies in the subtree of [v] iff
   [tin v <= tin u && tout u <= tout v]. *)
let refresh_subtrees st =
  for v = 0 to st.n do
    st.subtree.(v) <- (if v = 0 then 0.0 else st.freq.(v))
  done;
  let clock = ref 0 in
  let stack = ref [ `Enter 0 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | `Enter v :: rest ->
        incr clock;
        st.tin.(v) <- !clock;
        stack := List.fold_left (fun acc c -> `Enter c :: acc) (`Exit v :: rest) st.children.(v)
    | `Exit v :: rest ->
        st.tout.(v) <- !clock;
        if v <> 0 then
          st.subtree.(st.parent.(v)) <- st.subtree.(st.parent.(v)) +. st.subtree.(v);
        stack := rest
  done

let is_descendant st ~anc v =
  st.tin.(anc) <= st.tin.(v) && st.tout.(v) <= st.tout.(anc)

(* Apply the swap: re-parent [v] to [u] with weight [w], shifting the
   recreation cost of every vertex in v's subtree by the same amount. *)
let apply_swap st ~u ~v ~(w : Aux_graph.weight) =
  let shift = st.recreation.(u) +. w.phi -. st.recreation.(v) in
  let old_parent = st.parent.(v) in
  st.children.(old_parent) <- List.filter (fun c -> c <> v) st.children.(old_parent);
  st.parent.(v) <- u;
  st.weight.(v) <- w;
  st.children.(u) <- v :: st.children.(u);
  let stack = ref [ v ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
        stack := rest;
        st.recreation.(x) <- st.recreation.(x) +. shift;
        List.iter (fun c -> stack := c :: !stack) st.children.(x)
  done

let to_storage_graph st =
  let choices =
    List.init st.n (fun i ->
        let v = i + 1 in
        (st.parent.(v), v, st.weight.(v)))
  in
  match Storage_graph.of_parent_edges ~n:st.n choices with
  | Ok sg -> sg
  | Error e -> invalid_arg ("Lmg: internal tree corrupt: " ^ e)

let solve g ~base ~spt ~budget ?freqs () =
  Solver_obs.timed ~algo:"lmg" @@ fun () ->
  let st = init_state g base ~freqs in
  let storage = ref (Storage_graph.storage_cost base) in
  (* Candidate pool ξ: SPT in-edges that differ from the current tree.
     Entries are (spt_parent, v, weight); consumed when used. *)
  let candidates = ref [] in
  for v = 1 to st.n do
    let pu = Storage_graph.parent spt v in
    if pu <> st.parent.(v) then
      candidates := (pu, v, Storage_graph.edge_weight spt v) :: !candidates
  done;
  let rounds = ref 0 in
  let considered = ref 0 in
  let accepted = ref 0 in
  let continue = ref true in
  while !continue && !candidates <> [] do
    incr rounds;
    refresh_subtrees st;
    (* Score every candidate; keep the best applicable one. *)
    let best = ref None in
    List.iter
      (fun (u, v, (w : Aux_graph.weight)) ->
        incr considered;
        let gain =
          st.subtree.(v) *. (st.recreation.(v) -. (st.recreation.(u) +. w.phi))
        in
        let cost = w.delta -. st.weight.(v).delta in
        if
          gain > 0.0
          && !storage +. cost <= budget
          && u <> st.parent.(v)
          && not (is_descendant st ~anc:v u)
        then begin
          let rho = if cost <= 0.0 then infinity else gain /. cost in
          match !best with
          | Some (rho', _, _, _, _) when rho' >= rho -> ()
          | _ -> best := Some (rho, u, v, w, cost)
        end)
      !candidates;
    match !best with
    | None -> continue := false
    | Some (_, u, v, w, cost) ->
        incr accepted;
        apply_swap st ~u ~v ~w;
        storage := !storage +. cost;
        candidates :=
          List.filter (fun (_, v', _) -> v' <> v) !candidates
  done;
  Solver_obs.count ~algo:"lmg" "dsvc_solver_iterations_total" !rounds
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"lmg" "dsvc_solver_swaps_considered_total" !considered
    ~help:"Candidate swaps scored by the greedy loop";
  Solver_obs.count ~algo:"lmg" "dsvc_solver_swaps_accepted_total" !accepted
    ~help:"Candidate swaps actually applied by the greedy loop";
  to_storage_graph st

let solve_p5 g ~base ~spt ~sum_bound ?freqs ?(iterations = 40) () =
  let measure sg =
    match freqs with
    | Some f -> Storage_graph.weighted_recreation sg ~freqs:f
    | None -> Storage_graph.sum_recreation sg
  in
  if measure spt > sum_bound then
    Error
      (Printf.sprintf
         "sum-recreation bound %.1f is below the SPT optimum %.1f" sum_bound
         (measure spt))
  else begin
    let lo = ref (Storage_graph.storage_cost base) in
    let hi = ref (Storage_graph.storage_cost spt) in
    let best = ref None in
    (* Check the cheap end first: the base tree may already satisfy
       the bound. *)
    if measure base <= sum_bound then best := Some base
    else begin
      for _ = 1 to iterations do
        let mid = (!lo +. !hi) /. 2.0 in
        let sg = solve g ~base ~spt ~budget:mid ?freqs () in
        if measure sg <= sum_bound then begin
          (match !best with
          | Some b when Storage_graph.storage_cost b <= Storage_graph.storage_cost sg
            ->
              ()
          | _ -> best := Some sg);
          hi := mid
        end
        else lo := mid
      done;
      (* The SPT itself is always a fallback. *)
      if !best = None then best := Some spt
    end;
    match !best with Some sg -> Ok sg | None -> assert false
  end
