(** Plain-text serialization of auxiliary graphs.

    Lets problem instances be saved, shared, and re-solved — e.g.
    exporting a repository's revealed ⟨Δ, Φ⟩ graph for offline
    analysis, or checking experiment inputs into a repo. The format is
    line-oriented and stable:

    {v
    dsvc-graph 1 <n_versions>
    m <version> <delta> <phi>         (materialization)
    d <src> <dst> <delta> <phi>       (delta edge)
    v}

    Costs print with enough precision to round-trip exactly. *)

val to_string : Aux_graph.t -> string

val of_string : string -> (Aux_graph.t, string) result
(** Rebuilds the graph; edge insertion order is preserved, so
    first-revealed lookup semantics survive the round trip. *)

val save : Aux_graph.t -> path:string -> (unit, string) result
val load : path:string -> (Aux_graph.t, string) result
