(** Storage solutions: spanning arborescences of the auxiliary graph.

    A solution assigns every version [v ∈ 1..n] a parent — either [0]
    (the version is {e materialized}) or another version [u] ([v] is
    stored as the delta from [u]) — together with the ⟨Δ, Φ⟩ weight of
    the chosen edge. By Lemma 1 this captures every optimal solution
    of Problems 1–6.

    All cost queries are computed from the tree:
    - total storage [C = Σ Δ over chosen edges];
    - recreation cost [Ri = Σ Φ] along the root path of [i];
    - aggregates [Σ Ri], [max Ri], and the workload-weighted
      [Σ freq(i)·Ri] used by the Figure 16 experiment. *)

type t

val of_parents :
  ?jobs:int -> Aux_graph.t -> parents:(int * int) list -> (t, string) result
(** [of_parents g ~parents] builds a solution from [(parent, child)]
    choices, one per version, looking up each edge's weight in [g]
    (first-revealed weight wins). Returns [Error] describing the first
    violation if the choices are not a spanning arborescence rooted at
    0 or use unrevealed edges. [jobs] (default
    {!Versioning_util.Pool.default_jobs}) parallelizes the weight
    lookups; the result is identical for every value. *)

val of_parent_edges :
  n:int ->
  (int * int * Aux_graph.weight) list ->
  (t, string) result
(** Like {!of_parents} but with explicit weights
    [(parent, child, weight)] — used by algorithms that already hold
    the chosen edges. *)

val n_versions : t -> int

val parent : t -> int -> int
(** [parent t v] for [v ∈ 1..n]; [0] means materialized. *)

val edge_weight : t -> int -> Aux_graph.weight
(** Weight of the edge into [v]. *)

val is_materialized : t -> int -> bool

val materialized_versions : t -> int list

val children : t -> int -> int list
(** Children of a vertex ([0..n]); ascending. *)

val depth : t -> int -> int
(** Number of deltas applied to recreate [v]: 0 when materialized. *)

val storage_cost : t -> float
(** [C]. *)

val recreation_costs : t -> float array
(** Array of length [n+1]; index [v] holds [Rv], index 0 holds 0. *)

val recreation_cost : t -> int -> float

val sum_recreation : t -> float
val max_recreation : t -> float

val weighted_recreation : t -> freqs:float array -> float
(** [Σ freqs.(v) · Rv] with [freqs] indexed [1..n] (index 0
    ignored). *)

val to_parents : t -> (int * int) list
(** [(parent, child)] pairs, child-ascending — the solution [P] in the
    paper's notation, with [(0, v)] encoding materialization. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary (materialized set, C, ΣR, maxR). *)
