type t = {
  parents : int array;  (* index 1..n; parents.(0) unused (-1) *)
  weights : Aux_graph.weight array;  (* weight of edge into v *)
  child_lists : int list array;  (* index 0..n, ascending children *)
  recreation : float array;  (* index 0..n, R0 = 0 *)
}

let n_versions t = Array.length t.parents - 1

let build_internal n (choices : (int * int * Aux_graph.weight) array) =
  (* choices.(v-1) = (parent, v, weight); validate arborescence. *)
  let parents = Array.make (n + 1) (-1) in
  let weights =
    Array.make (n + 1) ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight)
  in
  let seen = Array.make (n + 1) false in
  let error = ref None in
  Array.iter
    (fun (p, v, w) ->
      if !error = None then begin
        if v < 1 || v > n then
          error := Some (Printf.sprintf "version %d out of range" v)
        else if seen.(v) then
          error := Some (Printf.sprintf "version %d has two parents" v)
        else if p < 0 || p > n then
          error := Some (Printf.sprintf "parent %d out of range" p)
        else if p = v then
          error := Some (Printf.sprintf "version %d is its own parent" v)
        else begin
          seen.(v) <- true;
          parents.(v) <- p;
          weights.(v) <- w
        end
      end)
    choices;
  (match !error with
  | Some _ -> ()
  | None ->
      for v = 1 to n do
        if not seen.(v) then
          error := Some (Printf.sprintf "version %d has no parent" v)
      done);
  match !error with
  | Some e -> Error e
  | None -> (
      (* Cycle check: walk up from each vertex, marking the path; a
         revisit of an in-progress vertex is a cycle. Iterative to
         stay safe on very deep chains. *)
      let state = Array.make (n + 1) `White in
      state.(0) <- `Black;
      let acyclic = ref true in
      for start = 1 to n do
        if state.(start) = `White && !acyclic then begin
          (* Ascend, graying the path. *)
          let path = ref [] in
          let v = ref start in
          while state.(!v) = `White do
            state.(!v) <- `Gray;
            path := !v :: !path;
            v := parents.(!v)
          done;
          if state.(!v) = `Gray then acyclic := false;
          List.iter (fun u -> state.(u) <- `Black) !path
        end
      done;
      if not !acyclic then Error "parent choices contain a cycle"
      else begin
        let child_lists = Array.make (n + 1) [] in
        for v = n downto 1 do
          child_lists.(parents.(v)) <- v :: child_lists.(parents.(v))
        done;
        (* Recreation costs by preorder from the root (iterative). *)
        let recreation = Array.make (n + 1) 0.0 in
        let stack = ref [ 0 ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | v :: rest ->
              stack := rest;
              List.iter
                (fun c ->
                  recreation.(c) <- recreation.(v) +. weights.(c).phi;
                  stack := c :: !stack)
                child_lists.(v)
        done;
        Ok { parents; weights; child_lists; recreation }
      end)

let of_parent_edges ~n choices =
  if List.length choices <> n then
    Error
      (Printf.sprintf "expected %d parent choices, got %d" n
         (List.length choices))
  else build_internal n (Array.of_list choices)

let of_parents ?(jobs = Versioning_util.Pool.default_jobs ()) g ~parents =
  let n = Aux_graph.n_versions g in
  let lookup (p, v) =
    if v < 1 || v > n then
      Error (Printf.sprintf "version %d out of range" v)
    else if p = 0 then
      match Aux_graph.materialization g v with
      | Some w -> Ok (0, v, w)
      | None ->
          Error (Printf.sprintf "materialization of %d is not revealed" v)
    else if p < 1 || p > n then
      Error (Printf.sprintf "parent %d out of range" p)
    else
      match Aux_graph.delta g ~src:p ~dst:v with
      | Some w -> Ok (p, v, w)
      | None -> Error (Printf.sprintf "delta %d -> %d is not revealed" p v)
  in
  (* Each lookup is an independent read of the (frozen) aux graph, so
     they run on the domain pool; the first error in list order wins,
     exactly as a sequential scan would report. *)
  let resolved =
    Versioning_util.Pool.parallel_map ~jobs lookup (Array.of_list parents)
  in
  let rec collect i acc =
    if i = Array.length resolved then of_parent_edges ~n (List.rev acc)
    else
      match resolved.(i) with
      | Ok c -> collect (i + 1) (c :: acc)
      | Error e -> Error e
  in
  collect 0 []

let parent t v =
  if v < 1 || v > n_versions t then invalid_arg "Storage_graph.parent";
  t.parents.(v)

let edge_weight t v =
  if v < 1 || v > n_versions t then invalid_arg "Storage_graph.edge_weight";
  t.weights.(v)

let is_materialized t v = parent t v = 0

let materialized_versions t =
  let n = n_versions t in
  let rec go v acc =
    if v < 1 then acc else go (v - 1) (if t.parents.(v) = 0 then v :: acc else acc)
  in
  go n []

let children t v =
  if v < 0 || v > n_versions t then invalid_arg "Storage_graph.children";
  t.child_lists.(v)

let depth t v =
  let rec go v acc = if v = 0 then acc else go t.parents.(v) (acc + 1) in
  if v < 1 || v > n_versions t then invalid_arg "Storage_graph.depth";
  go t.parents.(v) 0

let storage_cost t =
  let acc = ref 0.0 in
  for v = 1 to n_versions t do
    acc := !acc +. t.weights.(v).delta
  done;
  !acc

let recreation_costs t = Array.copy t.recreation

let recreation_cost t v =
  if v < 1 || v > n_versions t then invalid_arg "Storage_graph.recreation_cost";
  t.recreation.(v)

let sum_recreation t =
  let acc = ref 0.0 in
  for v = 1 to n_versions t do
    acc := !acc +. t.recreation.(v)
  done;
  !acc

let max_recreation t =
  let acc = ref 0.0 in
  for v = 1 to n_versions t do
    if t.recreation.(v) > !acc then acc := t.recreation.(v)
  done;
  !acc

let weighted_recreation t ~freqs =
  if Array.length freqs < n_versions t + 1 then
    invalid_arg "Storage_graph.weighted_recreation: freqs too short";
  let acc = ref 0.0 in
  for v = 1 to n_versions t do
    acc := !acc +. (freqs.(v) *. t.recreation.(v))
  done;
  !acc

let to_parents t =
  List.init (n_versions t) (fun i -> (t.parents.(i + 1), i + 1))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>storage graph: %d versions, %d materialized@,\
     C = %.1f, sum R = %.1f, max R = %.1f@]"
    (n_versions t)
    (List.length (materialized_versions t))
    (storage_cost t) (sum_recreation t) (max_recreation t)
