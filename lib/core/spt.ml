module Digraph = Versioning_graph.Digraph
module Heap = Versioning_util.Binary_heap

(* Dijkstra, also recording the chosen in-edge (predecessor and
   weight) per settled vertex. *)
let run g =
  let dg = Aux_graph.graph g in
  let n = Digraph.n_vertices dg in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let pred_w = Array.make n ({ delta = 0.0; phi = 0.0 } : Aux_graph.weight) in
  let heap = Heap.create ~capacity:n in
  dist.(0) <- 0.0;
  Heap.insert heap 0 0.0;
  let settled = Array.make n false in
  let pops = ref 0 in
  let relaxed = ref 0 in
  while not (Heap.is_empty heap) do
    let v, dv = Heap.pop_min heap in
    incr pops;
    if not settled.(v) then begin
      settled.(v) <- true;
      Digraph.iter_out dg v (fun e ->
          let alt = dv +. e.label.phi in
          if
            alt < dist.(e.dst)
            || (alt = dist.(e.dst) && pred.(e.dst) > v && not settled.(e.dst))
          then begin
            incr relaxed;
            dist.(e.dst) <- alt;
            pred.(e.dst) <- v;
            pred_w.(e.dst) <- e.label;
            Heap.insert heap e.dst alt
          end)
    end
  done;
  Solver_obs.count ~algo:"spt" "dsvc_solver_iterations_total" !pops
    ~help:"Main-loop iterations (heap pops, rounds), by algorithm";
  Solver_obs.count ~algo:"spt" "dsvc_solver_edges_relaxed_total" !relaxed
    ~help:"Successful edge relaxations, by algorithm";
  (dist, pred, pred_w)

let distances g =
  let dist, _, _ = run g in
  dist

let solve g =
  Solver_obs.timed ~algo:"spt" @@ fun () ->
  let n = Aux_graph.n_versions g in
  let dist, pred, pred_w = run g in
  let rec unreachable v =
    if v > n then None
    else if dist.(v) = infinity then Some v
    else unreachable (v + 1)
  in
  match unreachable 1 with
  | Some v ->
      Error
        (Printf.sprintf "version %d cannot be recreated from the root" v)
  | None ->
      let choices =
        List.init n (fun i ->
            let v = i + 1 in
            (pred.(v), v, pred_w.(v)))
      in
      Storage_graph.of_parent_edges ~n choices
