(** Graphviz DOT rendering of version structures — for inspecting
    storage plans and auxiliary graphs ([dot -Tsvg] downstream).

    Materialized versions are drawn as doubled boxes, delta-stored
    versions as ellipses; edges carry ⟨Δ, Φ⟩ labels. Output is
    deterministic (vertices ascending). *)

val of_storage_graph :
  ?name:string -> ?labels:(int -> string) -> Storage_graph.t -> string
(** The storage plan as a tree rooted at [V0]. [labels] overrides the
    default ["V<i>"] naming. *)

val of_aux_graph :
  ?name:string ->
  ?labels:(int -> string) ->
  ?max_edges:int ->
  Aux_graph.t ->
  string
(** The full revealed graph; [max_edges] (default 2000) truncates very
    dense graphs, noting the truncation in a graph comment. *)
