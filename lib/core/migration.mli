(** Migration planning between storage solutions.

    When a repository re-plans its storage (a new budget, new access
    pattern, or simply more versions), moving from plan [A] to plan
    [B] is itself work: new deltas must be computed and written, and
    obsolete objects deleted. This module diffs two plans into the
    minimal action list and estimates the transition's cost — the
    operational face of the paper's "adaptive algorithms that
    reevaluate the optimization decisions" (§7).

    Actions reference versions by id; executing them against a store
    is the caller's job ({!Versioning_store.Repo.optimize} follows
    exactly this shape). *)

type action =
  | Materialize of int  (** write version in full *)
  | Write_delta of { parent : int; child : int }
      (** compute and store the delta [parent → child] *)
  | Drop_materialization of int
  | Drop_delta of { parent : int; child : int }

type plan = {
  actions : action list;  (** writes first, then drops *)
  unchanged : int;  (** versions whose storage entry is kept *)
  bytes_written : float;  (** Σ Δ of new entries *)
  bytes_freed : float;  (** Σ Δ of dropped entries *)
}

val plan : from_:Storage_graph.t -> to_:Storage_graph.t -> plan
(** @raise Invalid_argument when the two solutions cover different
    version counts. *)

val net_bytes : plan -> float
(** [bytes_written − bytes_freed] — the storage delta of migrating. *)

val pp : Format.formatter -> plan -> unit
