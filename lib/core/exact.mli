(** Exact solver for Problem 6 (minimize storage under a max-recreation
    bound) — the reproduction's substitute for the paper's Gurobi ILP
    (§2.3, Table 2).

    The model is identical to the paper's integer program: binary
    parent choices [x(i,j)], one parent per version, recreation
    variables [r(j) ≥ r(i) + Φ(i,j)] when [x(i,j) = 1], [r(i) ≤ θ];
    minimize [Σ x(i,j)·Δ(i,j)]. It is solved by branch-and-bound over
    root-down tree growth:

    - branch: the smallest unattached version with a θ-feasible edge
      from the attached set is attached via each such edge (cheapest
      first), plus one "defer" branch restricting its parent to
      currently-unattached versions (needed for completeness, since
      its optimal parent may not be attached yet);
    - bound: each unattached version contributes the cheapest
      Δ among its optimistically-feasible in-edges (using Dijkstra
      distances as lower bounds on unattached sources' recreation);
    - the incumbent is initialized with MP's solution, matching the
      paper's comparison setup.

    Like the paper's runs (where "the optimizer did not finish" on
    larger instances), the search is budgeted: an exhausted node
    budget yields the best incumbent with [optimal = false]. *)

type result = {
  tree : Storage_graph.t option;  (** best solution found, if any *)
  optimal : bool;  (** true iff the search space was exhausted *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val solve_p6 :
  Aux_graph.t ->
  theta:float ->
  ?node_budget:int ->
  ?time_budget:float ->
  unit ->
  result
(** [node_budget] defaults to 2_000_000 B&B nodes; [time_budget] is an
    optional wall-clock cap in seconds (checked every 1024 nodes).
    Exhausting either returns the incumbent with [optimal = false]. *)

val solve_p3 :
  Aux_graph.t ->
  budget:float ->
  ?node_budget:int ->
  ?time_budget:float ->
  unit ->
  result
(** Exact Problem 3: minimize [Σ Ri] subject to [C ≤ budget]. Same
    branch-and-bound skeleton with the roles of the two costs swapped:
    the bound sums each unattached version's Dijkstra distance (its
    best possible recreation cost) and prunes on the storage budget.
    Extends the paper's Table 2 comparison to the sum-recreation side
    (LMG vs optimal); subject to the same search budgets. *)

val brute_force_p3 :
  Aux_graph.t -> budget:float -> Storage_graph.t option
(** Exhaustive Problem 3 for tiny instances, for cross-validation. *)

val brute_force_p6 : Aux_graph.t -> theta:float -> Storage_graph.t option
(** Exhaustive enumeration of all parent vectors — O((n+1)!)-ish; for
    cross-validation on tiny instances (n ≤ 8) in tests. *)
