(** MP — the Modified Prim heuristic (§4.2, Algorithm 2), for the
    problems with a {e maximum} recreation-cost criterion (Problems 4
    and 6).

    A Prim-style greedy grows the tree from [V0], always dequeuing the
    version with the smallest marginal storage cost [l(Vi)] whose
    recreation cost [d(Vi)] stays within the threshold θ. Unlike
    Prim's algorithm, a version already in the tree may later be
    re-parented when a newly added version offers a strictly cheaper
    delta without worsening its recreation cost (the paper's lines
    10–17). O(E log V). *)

type outcome = {
  tree : Storage_graph.t option;
      (** [None] when some version cannot meet θ at all. *)
  infeasible : int list;
      (** Versions that could not be attached within θ (empty on
          success). *)
}

val solve : Aux_graph.t -> theta:float -> outcome
(** Problem 6: minimize storage s.t. [max Ri ≤ theta]. *)

val solve_p4 :
  Aux_graph.t ->
  budget:float ->
  ?iterations:int ->
  unit ->
  (Storage_graph.t, string) result
(** Problem 4: minimize [max Ri] s.t. [C ≤ budget], by binary search
    on θ over [\[max SPT distance, Σ materialization Φ\]] (the paper's
    "solution for Problem 4 is similar"). [iterations] defaults
    to 40. [Error] when even θ = ∞ cannot meet the budget (budget
    below minimum storage). *)
