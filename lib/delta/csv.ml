type table = string array array

let field_ok s =
  let ok = ref true in
  String.iter
    (fun c -> if c = ',' || c = '\n' || c = '\r' then ok := false)
    s;
  !ok

let parse s =
  if s = "" then [||]
  else
    String.split_on_char '\n' s
    |> List.map (fun row ->
           Array.of_list (String.split_on_char ',' row))
    |> Array.of_list

let print table =
  Array.iter
    (Array.iter (fun f ->
         if not (field_ok f) then
           invalid_arg ("Csv.print: illegal field " ^ String.escaped f)))
    table;
  String.concat "\n"
    (Array.to_list
       (Array.map (fun row -> String.concat "," (Array.to_list row)) table))

let n_rows t = Array.length t
let n_cols t = if Array.length t = 0 then 0 else Array.length t.(0)

let is_rect t =
  let w = n_cols t in
  Array.for_all (fun row -> Array.length row = w) t

let equal (a : table) (b : table) = a = b
