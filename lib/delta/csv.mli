(** Minimal CSV handling for the tabular datasets used throughout the
    experiments.

    Deliberately restricted: fields must not contain commas, newlines,
    or carriage returns (the workload generator guarantees this; see
    {!Versioning_workload.Dataset_gen}). No quoting or escaping — the
    format is a strict round-tripping bijection between well-formed
    tables and strings, which the delta machinery relies on. *)

type table = string array array
(** Rows of fields. Rows may have differing widths mid-edit, but
    {!print} accepts any table and {!parse} returns what was
    printed. *)

val field_ok : string -> bool
(** True iff the string is usable as a field (no [','], ['\n'],
    ['\r']). *)

val parse : string -> table
(** [parse s] splits rows on ['\n'] and fields on [',']. The empty
    string is the empty table; a trailing newline is not expected
    (tables are printed without one). *)

val print : table -> string
(** @raise Invalid_argument if some field violates {!field_ok}. *)

val n_rows : table -> int
val n_cols : table -> int
(** Width of the first row, or 0 for an empty table. *)

val is_rect : table -> bool
(** All rows the same width. *)

val equal : table -> table -> bool
