type sketch = { k : int; mins : int array }

(* Each slot s applies an independent tabulation-free mixer to the
   shingle hash: splitmix64's finalizer over (hash lxor seed_s). Slot
   seeds come from a fixed splitmix stream, so sketches are stable
   across runs and processes. *)

let slot_seeds k =
  let rng = Versioning_util.Prng.create ~seed:0x7265_73656d626c65 in
  Array.init k (fun _ -> Int64.to_int (Versioning_util.Prng.next_int64 rng) land max_int)

let seeds_cache : (int, int array) Hashtbl.t = Hashtbl.create 4

let seeds k =
  match Hashtbl.find_opt seeds_cache k with
  | Some s -> s
  | None ->
      let s = slot_seeds k in
      Hashtbl.replace seeds_cache k s;
      s

let mix64 z =
  (* splitmix64 finalizer on the native-int ring *)
  let z = z * 0x9E3779B97F4A7C1 in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B in
  let z = (z lxor (z lsr 27)) * 0x94D049BB133111E in
  (z lxor (z lsr 31)) land max_int

(* Polynomial rolling hash of the shingle window. *)
let shingle_hashes ~w doc =
  let n = String.length doc in
  if n = 0 then [ 0 ]
  else if n < w then [ mix64 (Hashtbl.hash doc) ]
  else begin
    let base = 1000003 in
    let pow_top = ref 1 in
    for _ = 1 to w - 1 do
      pow_top := !pow_top * base
    done;
    let h = ref 0 in
    for i = 0 to w - 1 do
      h := (!h * base) + Char.code doc.[i]
    done;
    let acc = ref [ !h land max_int ] in
    for i = w to n - 1 do
      h := ((!h - (Char.code doc.[i - w] * !pow_top)) * base) + Char.code doc.[i];
      acc := (!h land max_int) :: !acc
    done;
    !acc
  end

let sketch ?(shingle = 16) ?(k = 64) doc =
  if shingle < 1 || k < 1 then invalid_arg "Resemblance.sketch";
  let seeds = seeds k in
  let mins = Array.make k max_int in
  List.iter
    (fun h ->
      for s = 0 to k - 1 do
        let v = mix64 (h lxor seeds.(s)) in
        if v < mins.(s) then mins.(s) <- v
      done)
    (shingle_hashes ~w:shingle doc);
  { k; mins }

let similarity a b =
  if a.k <> b.k then invalid_arg "Resemblance.similarity: sketch sizes differ";
  let agree = ref 0 in
  for s = 0 to a.k - 1 do
    if a.mins.(s) = b.mins.(s) then incr agree
  done;
  float_of_int !agree /. float_of_int a.k

let candidate_pairs ?(threshold = 0.25) sketches =
  let n = Array.length sketches in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let sim = similarity sketches.(i) sketches.(j) in
      if sim >= threshold then acc := (i, j, sim) :: !acc
    done
  done;
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) !acc

let top_candidates ~k sketches i =
  let n = Array.length sketches in
  if i < 0 || i >= n then invalid_arg "Resemblance.top_candidates";
  let others =
    List.init n (fun j -> j)
    |> List.filter (fun j -> j <> i)
    |> List.map (fun j -> (j, similarity sketches.(i) sketches.(j)))
  in
  List.sort (fun (_, a) (_, b) -> compare b a) others
  |> List.filteri (fun idx _ -> idx < k)
