(** Myers O(ND) shortest-edit-script algorithm over arrays.

    This is the differencing engine behind UNIX-style line diffs
    ({!Line_diff}); it works on any element type given an equality.
    The output is a minimal-length script of keep/insert/delete
    operations transforming the first array into the second. *)

type op =
  | Keep of int
      (** [Keep k]: copy the next [k] elements of the source. *)
  | Delete of int
      (** [Delete k]: skip the next [k] elements of the source. *)
  | Insert of int * int
      (** [Insert (off, k)]: emit [k] elements of the {e target}
          starting at target offset [off]. Offsets refer to the target
          array passed to {!diff}, so scripts remain compact without
          copying payloads. *)

val diff : ?equal:('a -> 'a -> bool) -> 'a array -> 'a array -> op list
(** [diff a b] is a minimal edit script turning [a] into [b].
    Consecutive operations of one kind are coalesced. Uses the
    linear-space divide-and-conquer refinement (Myers 1986, §4b), so
    memory is O(a+b) while time stays O((a+b)·D). *)

val apply : 'a array -> 'a array -> op list -> 'a array
(** [apply a b script] replays [script] against source [a], taking
    inserted payloads from [b]. When [script = diff a b] the result
    equals [b]. @raise Invalid_argument on a script that overruns
    either array or fails to consume the whole source. *)

val edit_distance : op list -> int
(** Total number of inserted plus deleted elements. *)
