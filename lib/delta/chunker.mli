(** Content-defined chunking (CDC) — the deduplication baseline of the
    paper's related work (§6: Quinlan & Dorward's Venti, Kulkarni
    et al.'s redundancy elimination).

    A document is split at positions where a Gear rolling hash hits a
    boundary mask, so equal content regions chunk identically even
    after insertions shift offsets. Storing each distinct chunk once
    gives block-level dedup across a version collection — an
    alternative storage strategy to delta chains, with O(1) recreation
    depth but coarser redundancy capture. The ablation bench compares
    it against the paper's delta-based plans. *)

type chunk = { offset : int; length : int; digest : string }

val chunk :
  ?min_size:int -> ?avg_size:int -> ?max_size:int -> string -> chunk list
(** Split a document; defaults 128 / 512 / 4096 bytes. Chunks cover
    the input exactly (offsets contiguous, lengths sum to the total).
    @raise Invalid_argument unless [min_size <= avg_size <= max_size],
    [min_size >= 16], and [avg_size] is a power of two. *)

val reassemble : string -> chunk list -> (string, string) result
(** [reassemble doc chunks] checks contiguity against [doc] and
    returns it — a self-test helper. *)

type store
(** A chunk store: digest → bytes, reference-counted. *)

val store_create : unit -> store

val store_add : store -> string -> chunk list
(** Chunk a document and add its chunks (deduplicating by digest);
    returns the document's chunk list (its "recipe"). *)

val store_get : store -> chunk list -> (string, string) result
(** Rebuild a document from its recipe. *)

val store_bytes : store -> int
(** Total bytes of distinct chunks held — the dedup storage cost. *)

val store_chunks : store -> int
(** Number of distinct chunks. *)

val dedup_ratio : store -> originals:int -> float
(** [originals / stored] — how many times the raw bytes were
    shrunk. *)
