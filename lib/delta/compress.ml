(* LZ77 wire format: a sequence of tokens.
     0x00 varint(len) <len bytes>        literal run
     0x01 varint(len) varint(dist)       copy [len] bytes from [dist] back
   Varints are LEB128. Matches may overlap their output (dist < len),
   which encodes runs. Minimum match length 4. *)

let window_size = 32768
let min_match = 4
let max_chain = 32

let add_varint = Varint.add

let read_varint s pos =
  try Varint.read s pos
  with Invalid_argument _ -> invalid_arg "Compress: truncated varint"

let hash4 s i =
  (* Multiplicative hash of 4 bytes; table size 2^15. *)
  (* lint: unsafe-ok every caller guards i + min_match <= length s and
     min_match = 4, so i + 3 is the largest index read *)
  let b k = Char.code (String.unsafe_get s (i + k)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 2654435761) lsr 17 land 0x7fff

(* Length of the common run [input[i..] = input[j..]] for [j < i].
   Exposed so the test suite can check the unchecked scan against a
   bounds-checked reference on adversarial inputs. *)
let match_len input ~i ~j =
  let n = String.length input in
  if not (0 <= j && j < i && i <= n) then
    invalid_arg "Compress.match_len: requires 0 <= j < i <= length input";
  let limit = n - i in
  let len = ref 0 in
  while
    !len < limit
    (* lint: unsafe-ok the precondition check above plus [!len < limit]
       give i + len < n, and j < i gives j + len < i + len < n *)
    && String.unsafe_get input (j + !len) = String.unsafe_get input (i + !len)
  do
    incr len
  done;
  !len

let lz77 input =
  let n = String.length input in
  let buf = Buffer.create (n / 2) in
  if n = 0 then ""
  else begin
    let heads = Array.make 0x8000 (-1) in
    let chains = Array.make n (-1) in
    let lit_start = ref 0 in
    let flush_literals upto =
      if upto > !lit_start then begin
        Buffer.add_char buf '\x00';
        add_varint buf (upto - !lit_start);
        Buffer.add_substring buf input !lit_start (upto - !lit_start)
      end
    in
    let insert_pos i =
      if i + min_match <= n then begin
        let h = hash4 input i in
        chains.(i) <- heads.(h);
        heads.(h) <- i
      end
    in
    let i = ref 0 in
    while !i < n do
      let best_len = ref 0 and best_dist = ref 0 in
      if !i + min_match <= n then begin
        let h = hash4 input !i in
        let cand = ref heads.(h) in
        let tries = ref 0 in
        while !cand >= 0 && !tries < max_chain do
          if !i - !cand <= window_size then begin
            let len = match_len input ~i:!i ~j:!cand in
            if len > !best_len then begin
              best_len := len;
              best_dist := !i - !cand
            end;
            cand := chains.(!cand);
            incr tries
          end
          else begin
            (* Beyond the window: the chain only gets older. *)
            cand := -1
          end
        done
      end;
      (* A match must beat its own framing: the token costs 1 tag byte
         plus the two varints, and taking it may split a literal run
         (≈2 bytes of extra header). *)
      let profitable =
        !best_len >= min_match
        && !best_len >= 3 + Varint.size !best_len + Varint.size !best_dist
      in
      if profitable then begin
        flush_literals !i;
        Buffer.add_char buf '\x01';
        add_varint buf !best_len;
        add_varint buf !best_dist;
        (* Index every covered position so later matches can refer
           into this region; the next cursor position is indexed when
           its own turn comes. *)
        for j = !i to !i + !best_len - 1 do
          insert_pos j
        done;
        i := !i + !best_len;
        lit_start := !i
      end
      else begin
        insert_pos !i;
        incr i
      end
    done;
    flush_literals n;
    let out = Buffer.contents buf in
    if Versioning_obs.Obs.enabled () then begin
      let module M = Versioning_obs.Metrics in
      M.counter "dsvc_delta_lz77_calls_total"
        ~help:"lz77 compressions performed";
      M.counter "dsvc_delta_lz77_in_bytes_total" ~by:(float_of_int n)
        ~help:"Bytes fed to the lz77 compressor";
      M.counter "dsvc_delta_lz77_out_bytes_total"
        ~by:(float_of_int (String.length out))
        ~help:"Bytes produced by the lz77 compressor"
    end;
    out
  end

let unlz77 s =
  let out = Buffer.create (String.length s * 2) in
  let pos = ref 0 in
  let n = String.length s in
  while !pos < n do
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | '\x00' ->
        let len, p = read_varint s !pos in
        pos := p;
        if !pos + len > n then invalid_arg "Compress.unlz77: truncated literal";
        Buffer.add_substring out s !pos len;
        pos := !pos + len
    | '\x01' ->
        let len, p = read_varint s !pos in
        let dist, p = read_varint s p in
        pos := p;
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then
          invalid_arg "Compress.unlz77: bad match distance";
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
    | _ -> invalid_arg "Compress.unlz77: unknown token"
  done;
  Buffer.contents out

(* Zero-RLE wire format: tokens
     0x00 varint(len)                    a run of [len] zero bytes
     0x01 varint(len) <len bytes>        verbatim bytes *)

let rle_zeros input =
  (* Zero runs shorter than this stay verbatim: a zero token costs ≥2
     bytes itself and splits the surrounding verbatim run (≥2 more),
     so short runs would expand the output. *)
  let min_zero_run = 5 in
  let n = String.length input in
  let buf = Buffer.create (n / 4) in
  let zero_run_at i =
    let j = ref i in
    while !j < n && input.[!j] = '\x00' do
      incr j
    done;
    !j - i
  in
  let i = ref 0 in
  while !i < n do
    let run = if input.[!i] = '\x00' then zero_run_at !i else 0 in
    if run >= min_zero_run then begin
      Buffer.add_char buf '\x00';
      add_varint buf run;
      i := !i + run
    end
    else begin
      (* Verbatim until the next long-enough zero run. *)
      let j = ref !i in
      let stop = ref false in
      while !j < n && not !stop do
        if input.[!j] = '\x00' && zero_run_at !j >= min_zero_run then
          stop := true
        else incr j
      done;
      Buffer.add_char buf '\x01';
      add_varint buf (!j - !i);
      Buffer.add_substring buf input !i (!j - !i);
      i := !j
    end
  done;
  Buffer.contents buf

let un_rle_zeros s =
  let out = Buffer.create (String.length s * 2) in
  let pos = ref 0 in
  let n = String.length s in
  while !pos < n do
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | '\x00' ->
        let len, p = read_varint s !pos in
        pos := p;
        for _ = 1 to len do
          Buffer.add_char out '\x00'
        done
    | '\x01' ->
        let len, p = read_varint s !pos in
        pos := p;
        if !pos + len > n then
          invalid_arg "Compress.un_rle_zeros: truncated run";
        Buffer.add_substring out s !pos len;
        pos := !pos + len
    | _ -> invalid_arg "Compress.un_rle_zeros: unknown token"
  done;
  Buffer.contents out

let ratio ~original ~compressed =
  if original = 0 then 1.0
  else float_of_int compressed /. float_of_int original
