type t = { len_a : int; len_b : int; payload : string }

let byte s i = if i < String.length s then Char.code s.[i] else 0

let make a b =
  let n = max (String.length a) (String.length b) in
  let payload =
    String.init n (fun i -> Char.chr (byte a i lxor byte b i))
  in
  { len_a = String.length a; len_b = String.length b; payload }

let xor_trunc payload x out_len =
  String.init out_len (fun i -> Char.chr (byte x i lxor byte payload i))

let recover t x =
  let n = String.length x in
  if n = t.len_a then xor_trunc t.payload x t.len_b
  else if n = t.len_b then xor_trunc t.payload x t.len_a
  else
    invalid_arg
      (Printf.sprintf
         "Xor_delta.recover: input length %d matches neither side (%d, %d)" n
         t.len_a t.len_b)

let payload t = t.payload
let len_a t = t.len_a
let len_b t = t.len_b

let encode t = Printf.sprintf "%d %d\n%s" t.len_a t.len_b t.payload

let decode s =
  match String.index_opt s '\n' with
  | None -> invalid_arg "Xor_delta.decode: missing header"
  | Some nl -> (
      let header = String.sub s 0 nl in
      let payload = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ la; lb ] -> (
          match (int_of_string_opt la, int_of_string_opt lb) with
          | Some len_a, Some len_b
            when len_a >= 0 && len_b >= 0
                 && String.length payload = max len_a len_b ->
              { len_a; len_b; payload }
          | _ -> invalid_arg "Xor_delta.decode: bad header")
      | _ -> invalid_arg "Xor_delta.decode: bad header")

let size t = String.length (encode t)
