(** Byte-string compression for stored deltas.

    The paper distinguishes deltas stored compressed from uncompressed
    ones — compression decouples the storage cost Δ from the
    recreation cost Φ (a compressed delta is smaller but costs CPU to
    expand). Two codecs are provided:

    - {!lz77}/{!unlz77}: a greedy LZ77 with a 32 KiB window and
      hash-chain match finding — the general-purpose codec, in the
      spirit of the gzip/xdelta family the paper references.
    - {!rle_zeros}/{!un_rle_zeros}: zero-run-length coding, a cheap
      fast path for the zero-heavy payloads of {!Xor_delta}.

    Both are self-describing: decoding needs no out-of-band length. *)

val lz77 : string -> string
(** Compress. Output is never catastrophically larger than the input
    (worst-case overhead is the token framing, ≈ 1/255 + O(1)). *)

val unlz77 : string -> string
(** Inverse of {!lz77}. @raise Invalid_argument on corrupt input. *)

val rle_zeros : string -> string
(** Zero-run-length encode. *)

val un_rle_zeros : string -> string
(** Inverse of {!rle_zeros}. @raise Invalid_argument on corrupt
    input. *)

val ratio : original:int -> compressed:int -> float
(** [compressed / original]; 1.0 when [original = 0]. *)

val match_len : string -> i:int -> j:int -> int
(** Length of the longest common run [input.[i ..] = input.[j ..]],
    capped at [length input - i]. The scan is the unchecked fast path
    of {!lz77}'s match finder; it is exposed so tests can compare it
    against a bounds-checked reference.
    @raise Invalid_argument unless [0 <= j < i <= length input]. *)
