(** XOR deltas — the paper's canonical {e symmetric} differencing
    mechanism (§2.1): the delta from [a] to [b] is identical to the
    delta from [b] to [a], so one stored payload serves both
    directions and the resulting Δ matrix is symmetric.

    The payload XORs the two byte strings padded to the longer length;
    both original lengths are recorded so either side can be recovered
    exactly. XOR deltas of similar artifacts are zero-heavy, which is
    what makes them compress well (see {!Compress.rle_zeros}). *)

type t

val make : string -> string -> t
(** [make a b] — order-independent up to the recorded direction:
    [make a b] and [make b a] have equal payloads. *)

val recover : t -> string -> string
(** [recover d x] returns the {e other} document: given [a] it yields
    [b], given [b] it yields [a]. The side is chosen by length match
    against the recorded lengths; when both lengths are equal the
    payload is its own inverse so either answer is the same
    computation. @raise Invalid_argument if [x] matches neither
    recorded length. *)

val payload : t -> string
(** Raw XOR bytes (length = max of the two document lengths). *)

val len_a : t -> int
val len_b : t -> int

val size : t -> int
(** Encoded size in bytes: payload plus the two length headers. *)

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input. *)
