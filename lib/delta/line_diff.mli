(** UNIX-style line-based deltas between text documents.

    A delta records, for an ordered pair of documents [(a, b)], a
    minimal line-level edit script (via {!Myers}) together with the
    inserted line payloads, so it is self-contained: applying it needs
    only [a]. This is the paper's "UNIX-style diff" delta variant —
    inherently {e directed} (the reverse direction needs the deleted
    payloads instead); {!invert} builds the reverse delta, and
    {!symmetric_size} gives the storage cost of keeping both
    directions, the construction used for the undirected experiments
    (§5.3, "undirected deltas were obtained by concatenating the two
    directional deltas"). *)

type t

type op =
  | Keep of int  (** copy [k] source lines *)
  | Delete of int  (** drop [k] source lines *)
  | Insert of string array  (** add these lines *)

val diff : string -> string -> t
(** [diff a b] is the delta from document [a] to document [b]. Lines
    are separated by ['\n']; a trailing newline and its absence are
    distinguished. *)

val apply : string -> t -> string
(** [apply a d] reconstructs [b]. @raise Invalid_argument when [a] is
    not the document the delta was built against (detected by script
    overrun; content drift on equal shape is not detectable). *)

val ops : t -> op list
(** The script, for inspection. *)

val invert : string -> t -> t
(** [invert a d] is the delta from [b = apply a d] back to [a]. *)

val size : t -> int
(** Storage cost in bytes of the encoded delta ({!encode}). *)

val symmetric_size : t -> string -> int
(** [symmetric_size d a] is [size d + size (invert a d)]: the cost of
    an undirected (two-way) delta. *)

val n_changed_lines : t -> int
(** Inserted + deleted line count — the "edit distance" in lines. *)

val encode : t -> string
(** Compact, line-oriented wire format (headers [K n]/[D n]/[I n]
    followed by payload lines). *)

val decode : string -> t
(** Inverse of {!encode}. @raise Invalid_argument on malformed
    input. *)

val equal : t -> t -> bool
