type op =
  | Keep of int
  | Delete of int
  | Insert of int * int

(* Linear-space Myers: find the "middle snake" of an optimal edit path
   with forward and reverse furthest-reaching D-paths, then recurse on
   the two halves. Reverse paths are realized as forward paths over
   the reversed ranges; a reversed-space point (xr, yr) corresponds to
   the original-space point (n - xr, m - yr) and reversed-space
   diagonal kr to original diagonal (n - m) - kr. *)

let diff ?(equal = ( = )) a b =
  let total = Array.length a + Array.length b in
  let vsize = (2 * total) + 3 in
  let center = total + 1 in
  let vf = Array.make vsize 0 in
  let vr = Array.make vsize 0 in
  let ops = ref [] in
  let emit op = ops := op :: !ops in

  (* Middle snake of the subproblem a[alo..ahi) / b[blo..bhi), returned
     in local coordinates (x1, y1, x2, y2). Requires n > 0 && m > 0. *)
  let find_mid alo ahi blo bhi =
    let n = ahi - alo and m = bhi - blo in
    let delta = n - m in
    let odd = delta land 1 = 1 in
    vf.(center + 1) <- 0;
    vr.(center + 1) <- 0;
    let dmax = ((n + m) / 2) + 1 in
    let result = ref None in
    let d = ref 0 in
    while !result = None && !d <= dmax do
      let dd = !d in
      (* Forward D-paths. *)
      let k = ref (-dd) in
      while !result = None && !k <= dd do
        let kk = !k in
        let x =
          if
            kk = -dd
            || (kk <> dd && vf.(center + kk - 1) < vf.(center + kk + 1))
          then vf.(center + kk + 1)
          else vf.(center + kk - 1) + 1
        in
        let y = x - kk in
        let x0 = x and y0 = y in
        let x = ref x and y = ref y in
        while !x < n && !y < m && equal a.(alo + !x) b.(blo + !y) do
          incr x;
          incr y
        done;
        vf.(center + kk) <- !x;
        if odd then begin
          let kr = delta - kk in
          if kr >= -(dd - 1) && kr <= dd - 1 then begin
            let x_rev = n - vr.(center + kr) in
            if !x >= x_rev then result := Some (x0, y0, !x, !y)
          end
        end;
        k := !k + 2
      done;
      (* Reverse D-paths (forward over reversed ranges). *)
      let k = ref (-dd) in
      while !result = None && !k <= dd do
        let kk = !k in
        let xr =
          if
            kk = -dd
            || (kk <> dd && vr.(center + kk - 1) < vr.(center + kk + 1))
          then vr.(center + kk + 1)
          else vr.(center + kk - 1) + 1
        in
        let yr = xr - kk in
        let xr0 = xr and yr0 = yr in
        let xr = ref xr and yr = ref yr in
        while
          !xr < n && !yr < m
          && equal a.(alo + n - 1 - !xr) b.(blo + m - 1 - !yr)
        do
          incr xr;
          incr yr
        done;
        vr.(center + kk) <- !xr;
        if not odd then begin
          let ko = delta - kk in
          if ko >= -dd && ko <= dd then begin
            if n - !xr <= vf.(center + ko) then
              result := Some (n - !xr, m - !yr, n - xr0, m - yr0)
          end
        end;
        k := !k + 2
      done;
      incr d
    done;
    match !result with
    | Some r -> r
    | None ->
        (* Unreachable: a middle snake always exists for n, m > 0. *)
        assert false
  in

  let rec solve alo ahi blo bhi =
    (* Strip common prefix and suffix first; they become Keep runs and
       guarantee the middle-snake recursion always makes progress. *)
    let alo = ref alo and blo = ref blo in
    let ahi = ref ahi and bhi = ref bhi in
    let prefix = ref 0 in
    while
      !alo < !ahi && !blo < !bhi && equal a.(!alo) b.(!blo)
    do
      incr alo;
      incr blo;
      incr prefix
    done;
    if !prefix > 0 then emit (Keep !prefix);
    let suffix = ref 0 in
    while
      !alo < !ahi && !blo < !bhi && equal a.(!ahi - 1) b.(!bhi - 1)
    do
      decr ahi;
      decr bhi;
      incr suffix
    done;
    let alo = !alo and ahi = !ahi and blo = !blo and bhi = !bhi in
    if alo = ahi then begin
      if blo < bhi then emit (Insert (blo, bhi - blo))
    end
    else if blo = bhi then emit (Delete (ahi - alo))
    else begin
      let x1, y1, x2, y2 = find_mid alo ahi blo bhi in
      solve alo (alo + x1) blo (blo + y1);
      if x2 > x1 then emit (Keep (x2 - x1));
      solve (alo + x2) ahi (blo + y2) bhi
    end;
    if !suffix > 0 then emit (Keep !suffix)
  in

  solve 0 (Array.length a) 0 (Array.length b);
  (* Coalesce adjacent same-kind operations. *)
  let coalesced =
    List.fold_left
      (fun acc op ->
        match (op, acc) with
        | Keep k, Keep k' :: rest -> Keep (k + k') :: rest
        | Delete k, Delete k' :: rest -> Delete (k + k') :: rest
        | Insert (off, k), Insert (off', k') :: rest when off' + k' = off ->
            Insert (off', k' + k) :: rest
        | _ -> op :: acc)
      []
      (List.rev !ops)
  in
  List.rev coalesced

let apply a b script =
  let out = ref [] in
  let out_len = ref 0 in
  let pos = ref 0 in
  let push src off len =
    out := (src, off, len) :: !out;
    out_len := !out_len + len
  in
  List.iter
    (fun op ->
      match op with
      | Keep k ->
          if !pos + k > Array.length a then
            invalid_arg "Myers.apply: Keep overruns source";
          push `A !pos k;
          pos := !pos + k
      | Delete k ->
          if !pos + k > Array.length a then
            invalid_arg "Myers.apply: Delete overruns source";
          pos := !pos + k
      | Insert (off, k) ->
          if off < 0 || off + k > Array.length b then
            invalid_arg "Myers.apply: Insert overruns payload";
          push `B off k)
    script;
  if !pos <> Array.length a then
    invalid_arg "Myers.apply: script does not consume the whole source";
  if !out_len = 0 then [||]
  else begin
    let any =
      match List.rev !out with
      | (`A, off, _) :: _ -> a.(off)
      | (`B, off, _) :: _ -> b.(off)
      | [] -> assert false
    in
    let result = Array.make !out_len any in
    let cursor = ref 0 in
    List.iter
      (fun (src, off, len) ->
        let arr = match src with `A -> a | `B -> b in
        Array.blit arr off result !cursor len;
        cursor := !cursor + len)
      (List.rev !out);
    result
  end

let edit_distance script =
  List.fold_left
    (fun acc op ->
      match op with
      | Keep _ -> acc
      | Delete k -> acc + k
      | Insert (_, k) -> acc + k)
    0 script
