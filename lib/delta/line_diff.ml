type op =
  | Keep of int
  | Delete of int
  | Insert of string array

type t = { script : op list }

(* A document is its '\n'-separated pieces: n newlines yield n+1
   pieces, so a trailing newline is represented by a final empty piece
   and [String.concat "\n"] is an exact inverse. *)
let split_lines s = Array.of_list (String.split_on_char '\n' s)

let diff a b =
  let la = split_lines a and lb = split_lines b in
  let raw = Myers.diff ~equal:String.equal la lb in
  let script =
    List.map
      (function
        | Myers.Keep k -> Keep k
        | Myers.Delete k -> Delete k
        | Myers.Insert (off, k) -> Insert (Array.sub lb off k))
      raw
  in
  { script }

let apply a { script } =
  let la = split_lines a in
  let out = ref [] in
  let pos = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Keep k ->
          if !pos + k > Array.length la then
            invalid_arg "Line_diff.apply: source too short";
          for i = !pos to !pos + k - 1 do
            out := la.(i) :: !out
          done;
          pos := !pos + k
      | Delete k ->
          if !pos + k > Array.length la then
            invalid_arg "Line_diff.apply: source too short";
          pos := !pos + k
      | Insert lines -> Array.iter (fun l -> out := l :: !out) lines)
    script;
  if !pos <> Array.length la then
    invalid_arg "Line_diff.apply: script does not consume the whole source";
  String.concat "\n" (List.rev !out)

let ops { script } = script

let invert a { script } =
  let la = split_lines a in
  let pos = ref 0 in
  let inv =
    List.map
      (fun op ->
        match op with
        | Keep k ->
            pos := !pos + k;
            Keep k
        | Delete k ->
            let payload = Array.sub la !pos k in
            pos := !pos + k;
            Insert payload
        | Insert lines -> Delete (Array.length lines))
      script
  in
  { script = inv }

let n_changed_lines { script } =
  List.fold_left
    (fun acc op ->
      match op with
      | Keep _ -> acc
      | Delete k -> acc + k
      | Insert lines -> acc + Array.length lines)
    0 script

let encode { script } =
  let buf = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | Keep k -> Buffer.add_string buf (Printf.sprintf "K %d\n" k)
      | Delete k -> Buffer.add_string buf (Printf.sprintf "D %d\n" k)
      | Insert lines ->
          Buffer.add_string buf (Printf.sprintf "I %d\n" (Array.length lines));
          Array.iter
            (fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            lines)
    script;
  let out = Buffer.contents buf in
  (* Observability only: the store's payload path and the graph
     construction's size probes both funnel through here. *)
  if Versioning_obs.Obs.enabled () then begin
    Versioning_obs.Metrics.counter "dsvc_delta_line_encode_total"
      ~help:"Line-diff scripts serialized (includes size probes)";
    Versioning_obs.Metrics.counter "dsvc_delta_line_encode_bytes_total"
      ~by:(float_of_int (String.length out))
      ~help:"Serialized line-diff bytes produced"
  end;
  out

let decode s =
  if Versioning_obs.Obs.enabled () then
    Versioning_obs.Metrics.counter "dsvc_delta_line_decode_total"
      ~help:"Line-diff scripts parsed back from storage";
  let lines = String.split_on_char '\n' s in
  let fail msg = invalid_arg ("Line_diff.decode: " ^ msg) in
  let parse_header line =
    match String.split_on_char ' ' line with
    | [ tag; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> (tag, n)
        | _ -> fail "bad count")
    | _ -> fail "bad header"
  in
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> fail "truncated insert payload"
      | l :: tl -> take (k - 1) (l :: acc) tl
  in
  let rec go acc = function
    | [] | [ "" ] -> List.rev acc
    | line :: rest -> (
        match parse_header line with
        | "K", n -> go (Keep n :: acc) rest
        | "D", n -> go (Delete n :: acc) rest
        | "I", n ->
            let payload, rest = take n [] rest in
            go (Insert (Array.of_list payload) :: acc) rest
        | _ -> fail "unknown op")
  in
  { script = go [] lines }

let size t = String.length (encode t)
let symmetric_size t a = size t + size (invert a t)

let equal t1 t2 =
  let op_eq o1 o2 =
    match (o1, o2) with
    | Keep a, Keep b | Delete a, Delete b -> a = b
    | Insert a, Insert b -> a = b
    | _ -> false
  in
  List.length t1.script = List.length t2.script
  && List.for_all2 op_eq t1.script t2.script
