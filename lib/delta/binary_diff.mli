(** Binary deltas in the xdelta/vcdiff family the paper cites (§6):
    COPY/ADD instructions against the source, found by block hashing.

    Unlike {!Line_diff}, this differ is line-agnostic: it works on
    arbitrary byte strings (images, columnar files, archives) and
    tolerates unaligned moves. The source is indexed in fixed-size
    blocks by a 64-bit hash; the target is scanned with a rolling
    window, extending block hits forwards and backwards — essentially
    rsync's algorithm applied to delta storage, and the same
    construction as git's pack deltas.

    The result is a self-contained script: [Copy] ranges refer to the
    source, [Add] carries literal bytes. Directed (the reverse
    direction needs its own delta), like the paper's asymmetric
    scenario. *)

type op =
  | Copy of { src_off : int; len : int }
  | Add of string

type t

val block_size : int
(** The indexing granularity (64 bytes). Matches below this length
    are not detected unless adjacent to a block hit. *)

val diff : string -> string -> t
(** [diff source target] — O(|source| + |target|) expected. *)

val apply : string -> t -> string
(** [apply source d] reconstructs the target.
    @raise Invalid_argument if a [Copy] exceeds the source bounds. *)

val ops : t -> op list

val size : t -> int
(** Encoded byte size. *)

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input. *)

val copy_ratio : t -> float
(** Fraction of the target bytes produced by [Copy] (1.0 = pure
    reuse); a cheap similarity signal, usable to decide which Δ
    entries to reveal (§2.1 mentions resemblance detection). *)
