let add buf n =
  if n < 0 then invalid_arg "Varint.add: negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read s pos =
  let n = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    if !p >= String.length s then invalid_arg "Varint.read: truncated";
    let b = Char.code s.[!p] in
    incr p;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  (!n, !p)

let size n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go (max n 0) 1
