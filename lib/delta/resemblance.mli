(** Resemblance detection — the reveal-policy mechanism the paper
    points to in §2.1 ("prior work has also suggested mechanisms
    (e.g., based on hashing) to find versions that are close to each
    other", citing Douglis & Iyengar's application-specific
    delta-encoding via resemblance detection).

    Documents are shingled (w-byte sliding windows), each shingle
    hashed, and a MinHash sketch of [k] minima kept per document. The
    fraction of agreeing sketch slots is an unbiased estimate of the
    Jaccard similarity of the shingle sets, so candidate pairs for
    delta revealing can be found in O(n·k log n) instead of computing
    O(n²) real deltas — exactly what fork-style collections (no
    derivation hints) need. *)

type sketch

val sketch : ?shingle:int -> ?k:int -> string -> sketch
(** [sketch doc] with shingle width [shingle] (default 16 bytes) and
    [k] hash slots (default 64). Deterministic. Documents shorter
    than the shingle width get a degenerate single-shingle sketch. *)

val similarity : sketch -> sketch -> float
(** Estimated Jaccard similarity in [\[0, 1\]].
    @raise Invalid_argument when the sketches have different [k]. *)

val candidate_pairs :
  ?threshold:float -> sketch array -> (int * int * float) list
(** [candidate_pairs sketches] — all index pairs [(i, j, sim)] with
    [i < j] and estimated similarity ≥ [threshold] (default 0.25),
    most similar first. O(n²·k) pair scan with an early slot-count
    cutoff; n here is collection size (hundreds–thousands), which is
    the regime the paper's reveal step runs in. *)

val top_candidates : k:int -> sketch array -> int -> (int * float) list
(** [top_candidates ~k sketches i]: the [k] most similar other
    documents to document [i], most similar first. *)
