(** Cell-level deltas for tabular (relational) data — the paper's
    fourth delta variant (§2.1): "for tabular data, recording the
    differences at the cell level".

    Tables are {!Csv.table}s whose first row is a header of unique
    column names; columns are aligned by name, rows by a Myers diff
    refined with per-cell patches. The delta from [a] to [b] records:

    - names of columns of [a] dropped in [b] (tiny forward, making the
      delta naturally {e asymmetric} — recovering the dropped contents
      needs the inverse delta, exactly the paper's "delete all tuples
      with age > 60" asymmetry);
    - full contents of columns added in [b];
    - a row script over the shared columns, where rows that changed in
      only a few cells are stored as cell patches rather than full
      replacements.

    Non-rectangular or headerless tables degrade gracefully to a
    whole-table row script. *)

type t

val diff : Csv.table -> Csv.table -> t
(** [diff a b] is the delta from [a] to [b]. *)

val apply : Csv.table -> t -> Csv.table
(** [apply a d] reconstructs [b]. @raise Invalid_argument when [a]'s
    shape is incompatible with the recorded script. *)

val size : t -> int
(** Storage cost in bytes of {!encode}. *)

val n_cell_edits : t -> int
(** Number of individual cell patches (not counting whole-row or
    whole-column operations). *)

val encode : t -> string
val decode : string -> t
(** @raise Invalid_argument on malformed input. *)
