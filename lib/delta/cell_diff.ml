type row_op =
  | Keep of int
  | Delete of int
  | Insert of string array array
  | Modify of (int * string) list list
      (* [Modify patches] consumes (length patches) source rows; row i
         of the run gets cells (col, value) overwritten. *)

type alignment =
  | Raw  (* headerless fallback: row script over the whole table *)
  | Inherited  (* shared columns = source order minus dropped *)
  | Explicit of string list  (* b's ordering of the shared columns *)

type t = {
  dropped : string list;  (* header names of a-columns absent from b *)
  added : (int * string array) list;
      (* (position in b, full column incl. header), ascending position *)
  alignment : alignment;
  rows : row_op list;  (* script over the shared-column projection *)
}

(* ---- helpers ---- *)

let header t = if Array.length t = 0 then [||] else t.(0)

let headers_unique h =
  let module SS = Set.Make (String) in
  let rec go seen = function
    | [] -> true
    | x :: tl -> (not (SS.mem x seen)) && go (SS.add x seen) tl
  in
  go SS.empty (Array.to_list h)

let headered t =
  Array.length t > 0 && Csv.is_rect t && headers_unique (header t)
  && Array.length (header t) > 0

let find_col h name =
  let rec go i =
    if i >= Array.length h then None
    else if h.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let project table cols =
  Array.map (fun row -> Array.map (fun c -> row.(c)) cols) table

let column table c = Array.map (fun row -> row.(c)) table

(* ---- row script construction ---- *)

let row_equal (r1 : string array) (r2 : string array) = r1 = r2

let cell_patch_cost patches =
  List.fold_left
    (fun acc (_, v) -> acc + String.length v + 8)
    0 patches

let row_cost row =
  Array.fold_left (fun acc f -> acc + String.length f + 1) 2 row

(* Patches turning [old_row] into [new_row], or [None] when the rows
   have different widths or outright replacement is cheaper. *)
let patchable old_row new_row =
  if Array.length old_row <> Array.length new_row then None
  else begin
    let patches = ref [] in
    Array.iteri
      (fun c v -> if old_row.(c) <> v then patches := (c, v) :: !patches)
      new_row;
    let patches = List.rev !patches in
    if cell_patch_cost patches < row_cost new_row then Some patches
    else None
  end

(* Turn paired delete/insert runs into cell patches when cheaper. The
   source offset of each run is tracked while walking the script. *)
let refine a_rows b_rows script =
  let rec go acc src_pos = function
    | [] -> List.rev acc
    | Myers.Delete dk :: Myers.Insert (off, ik) :: rest ->
        let paired = min dk ik in
        let patches =
          List.init paired (fun i ->
              patchable a_rows.(src_pos + i) b_rows.(off + i))
        in
        if paired > 0 && List.for_all Option.is_some patches then begin
          let modify = Modify (List.filter_map Fun.id patches) in
          let acc = modify :: acc in
          let acc = if dk > paired then Delete (dk - paired) :: acc else acc in
          let acc =
            if ik > paired then
              Insert (Array.sub b_rows (off + paired) (ik - paired)) :: acc
            else acc
          in
          go acc (src_pos + dk) rest
        end
        else
          go
            (Insert (Array.sub b_rows off ik) :: Delete dk :: acc)
            (src_pos + dk) rest
    | Myers.Keep k :: rest -> go (Keep k :: acc) (src_pos + k) rest
    | Myers.Delete k :: rest -> go (Delete k :: acc) (src_pos + k) rest
    | Myers.Insert (off, k) :: rest ->
        go (Insert (Array.sub b_rows off k) :: acc) src_pos rest
  in
  go [] 0 script

let diff_rows a_rows b_rows =
  let script = Myers.diff ~equal:row_equal a_rows b_rows in
  refine a_rows b_rows script

let apply_rows a_rows script =
  let out = ref [] in
  let pos = ref 0 in
  let n = Array.length a_rows in
  List.iter
    (fun op ->
      match op with
      | Keep k ->
          if !pos + k > n then invalid_arg "Cell_diff.apply: Keep overrun";
          for i = !pos to !pos + k - 1 do
            out := a_rows.(i) :: !out
          done;
          pos := !pos + k
      | Delete k ->
          if !pos + k > n then invalid_arg "Cell_diff.apply: Delete overrun";
          pos := !pos + k
      | Insert rows -> Array.iter (fun r -> out := r :: !out) rows
      | Modify patch_rows ->
          List.iter
            (fun patches ->
              if !pos >= n then invalid_arg "Cell_diff.apply: Modify overrun";
              let row = Array.copy a_rows.(!pos) in
              List.iter
                (fun (c, v) ->
                  if c < 0 || c >= Array.length row then
                    invalid_arg "Cell_diff.apply: cell index out of range";
                  row.(c) <- v)
                patches;
              out := row :: !out;
              incr pos)
            patch_rows)
    script;
  if !pos <> n then
    invalid_arg "Cell_diff.apply: script does not consume the whole source";
  Array.of_list (List.rev !out)

(* ---- public diff / apply ---- *)

let diff a b =
  if headered a && headered b then begin
    let ha = header a and hb = header b in
    let shared =
      Array.to_list hb
      |> List.filter (fun name -> find_col ha name <> None)
    in
    let dropped =
      Array.to_list ha
      |> List.filter (fun name -> find_col hb name = None)
    in
    let added =
      Array.to_list hb
      |> List.mapi (fun i name -> (i, name))
      |> List.filter (fun (_, name) -> find_col ha name = None)
      |> List.map (fun (i, _) -> (i, column b i))
    in
    let a_cols =
      Array.of_list
        (List.map
           (fun name ->
             match find_col ha name with
             | Some c -> c
             | None -> assert false)
           shared)
    in
    let b_cols =
      Array.of_list
        (List.map
           (fun name ->
             match find_col hb name with
             | Some c -> c
             | None -> assert false)
           shared)
    in
    let a_proj = project a a_cols in
    let b_proj = project b b_cols in
    (* Most deltas keep the surviving columns in source order; storing
       the name list is only needed on reorder. *)
    let inherited_order =
      Array.to_list ha |> List.filter (fun n -> find_col hb n <> None)
    in
    let alignment = if shared = inherited_order then Inherited else Explicit shared in
    { dropped; added; alignment; rows = diff_rows a_proj b_proj }
  end
  else
    (* Headerless / ragged fallback: whole-table row script. *)
    { dropped = []; added = []; alignment = Raw; rows = diff_rows a b }

let apply a t =
  match t.alignment with
  | Raw -> apply_rows a t.rows
  | Inherited | Explicit _ ->
      if not (headered a) then
        invalid_arg "Cell_diff.apply: source table lost its header";
      let ha = header a in
      let shared_order =
        match t.alignment with
        | Explicit names -> names
        | Inherited | Raw ->
            Array.to_list ha
            |> List.filter (fun n -> not (List.mem n t.dropped))
      in
      let a_cols =
        Array.of_list
          (List.map
             (fun name ->
               match find_col ha name with
               | Some c -> c
               | None ->
                   invalid_arg
                     ("Cell_diff.apply: source misses column " ^ name))
             shared_order)
      in
      let a_proj = project a a_cols in
      let b_shared = apply_rows a_proj t.rows in
      let n_out = Array.length b_shared in
      List.iter
        (fun (_, col) ->
          if Array.length col <> n_out then
            invalid_arg "Cell_diff.apply: added-column length mismatch")
        t.added;
      (* Weave added columns (ascending positions) into each row. *)
      let added = t.added in
      Array.mapi
        (fun r row ->
          let width = Array.length row + List.length added in
          let out = Array.make width "" in
          let next_add = ref added in
          let src = ref 0 in
          for c = 0 to width - 1 do
            match !next_add with
            | (pos, col) :: tl when pos = c ->
                out.(c) <- col.(r);
                next_add := tl
            | _ ->
                out.(c) <- row.(!src);
                incr src
          done;
          out)
        b_shared

(* ---- size model & encoding ---- *)

let n_cell_edits t =
  List.fold_left
    (fun acc op ->
      match op with
      | Modify rows ->
          acc + List.fold_left (fun a p -> a + List.length p) 0 rows
      | Keep _ | Delete _ | Insert _ -> acc)
    0 t.rows

let encode t =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "drop %d\n" (List.length t.dropped);
  List.iter (fun name -> addf "%s\n" name) t.dropped;
  (match t.alignment with
  | Raw -> addf "align raw\n"
  | Inherited -> addf "align inherited\n"
  | Explicit names ->
      addf "align %d\n" (List.length names);
      List.iter (fun name -> addf "%s\n" name) names);
  addf "add %d\n" (List.length t.added);
  List.iter
    (fun (pos, col) ->
      addf "@ %d %d\n" pos (Array.length col);
      Array.iter (fun v -> addf "%s\n" v) col)
    t.added;
  addf "rows %d\n" (List.length t.rows);
  List.iter
    (fun op ->
      match op with
      | Keep k -> addf "K %d\n" k
      | Delete k -> addf "D %d\n" k
      | Insert rows ->
          addf "I %d\n" (Array.length rows);
          Array.iter
            (fun row ->
              addf "%s\n" (String.concat "," (Array.to_list row)))
            rows
      | Modify patch_rows ->
          addf "M %d\n" (List.length patch_rows);
          List.iter
            (fun patches ->
              addf "%d" (List.length patches);
              List.iter (fun (c, v) -> addf " %d:%s" c v) patches;
              addf "\n")
            patch_rows)
    t.rows;
  Buffer.contents buf

let decode s =
  let fail msg = invalid_arg ("Cell_diff.decode: " ^ msg) in
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> fail "truncated"
    | l :: tl ->
        lines := tl;
        l
  in
  let expect_header tag =
    let line = next () in
    match String.split_on_char ' ' line with
    | [ t; n ] when t = tag -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ -> fail ("bad count in " ^ tag))
    | _ -> fail ("expected header " ^ tag ^ ", got " ^ line)
  in
  let read_n n = List.init n (fun _ -> next ()) in
  let n_drop = expect_header "drop" in
  let dropped = read_n n_drop in
  let alignment =
    let line = next () in
    match String.split_on_char ' ' line with
    | [ "align"; "raw" ] -> Raw
    | [ "align"; "inherited" ] -> Inherited
    | [ "align"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Explicit (read_n n)
        | _ -> fail "bad alignment count")
    | _ -> fail "bad alignment line"
  in
  let n_add = expect_header "add" in
  let added =
    List.init n_add (fun _ ->
        let line = next () in
        match String.split_on_char ' ' line with
        | [ "@"; pos; len ] -> (
            match (int_of_string_opt pos, int_of_string_opt len) with
            | Some pos, Some len when pos >= 0 && len >= 0 ->
                (pos, Array.of_list (read_n len))
            | _ -> fail "bad added-column header")
        | _ -> fail "bad added-column header")
  in
  let n_ops = expect_header "rows" in
  let rows =
    List.init n_ops (fun _ ->
        let line = next () in
        match String.split_on_char ' ' line with
        | [ "K"; k ] -> Keep (int_of_string k)
        | [ "D"; k ] -> Delete (int_of_string k)
        | [ "I"; k ] ->
            let k = int_of_string k in
            Insert
              (Array.of_list
                 (List.map
                    (fun row ->
                      Array.of_list (String.split_on_char ',' row))
                    (read_n k)))
        | [ "M"; k ] ->
            let k = int_of_string k in
            Modify
              (List.init k (fun _ ->
                   let line = next () in
                   match String.split_on_char ' ' line with
                   | count :: cells -> (
                       match int_of_string_opt count with
                       | Some c when c = List.length cells ->
                           List.map
                             (fun cell ->
                               match String.index_opt cell ':' with
                               | Some i ->
                                   ( int_of_string (String.sub cell 0 i),
                                     String.sub cell (i + 1)
                                       (String.length cell - i - 1) )
                               | None -> fail "bad cell patch")
                             cells
                       | _ -> fail "bad patch count")
                   | [] -> fail "bad patch line"))
        | _ -> fail ("bad row op " ^ line))
  in
  { dropped; added; alignment; rows }

let size t = String.length (encode t)
