type chunk = { offset : int; length : int; digest : string }

(* Gear hashing: h = (h << 1) + gear[byte]; a boundary is declared
   when the top bits selected by [mask] are all zero. The gear table
   is a fixed pseudo-random permutation derived from splitmix64 so
   chunking is fully deterministic across runs. *)
let gear =
  let rng = Versioning_util.Prng.create ~seed:0x6765617268617368 in
  Array.init 256 (fun _ -> Int64.to_int (Versioning_util.Prng.next_int64 rng) land max_int)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let chunk ?(min_size = 128) ?(avg_size = 512) ?(max_size = 4096) input =
  if min_size < 16 || min_size > avg_size || avg_size > max_size then
    invalid_arg "Chunker.chunk: need 16 <= min_size <= avg_size <= max_size";
  if not (is_pow2 avg_size) then
    invalid_arg "Chunker.chunk: avg_size must be a power of two";
  let mask = (avg_size - 1) lsl 16 in
  let n = String.length input in
  let chunks = ref [] in
  let start = ref 0 in
  let emit stop =
    let length = stop - !start in
    if length > 0 then begin
      let digest =
        (* content digest via the store-grade hash, straight off the
           input — no per-chunk copy *)
        Digest.substring input !start length
      in
      chunks := { offset = !start; length; digest } :: !chunks;
      start := stop
    end
  in
  let h = ref 0 in
  let i = ref 0 in
  while !i < n do
    (* lint: unsafe-ok the loop condition gives !i < n = length input,
       and Char.code is always a valid gear index (0..255) *)
    h := ((!h lsl 1) + gear.(Char.code (String.unsafe_get input !i))) land max_int;
    incr i;
    let len = !i - !start in
    if
      (len >= min_size && !h land mask = 0) || len >= max_size
    then begin
      emit !i;
      h := 0
    end
  done;
  emit n;
  let out = List.rev !chunks in
  if Versioning_obs.Obs.enabled () then begin
    let module M = Versioning_obs.Metrics in
    M.counter "dsvc_delta_chunks_total"
      ~by:(float_of_int (List.length out))
      ~help:"Content-defined chunks emitted by the gear chunker";
    List.iter
      (fun c ->
        M.observe "dsvc_delta_chunk_bytes" ~buckets:M.size_buckets
          (float_of_int c.length)
          ~help:"Size distribution of emitted chunks")
      out
  end;
  out

let reassemble doc chunks =
  let rec go pos = function
    | [] ->
        if pos = String.length doc then Ok doc
        else Error "chunks do not cover the document"
    | { offset; length; _ } :: tl ->
        if offset <> pos then Error "chunks are not contiguous"
        else go (pos + length) tl
  in
  go 0 chunks

type store = {
  blobs : (string, string) Hashtbl.t;  (* digest -> bytes *)
  mutable bytes : int;
}

let store_create () = { blobs = Hashtbl.create 256; bytes = 0 }

let store_add store doc =
  let chunks = chunk doc in
  List.iter
    (fun { offset; length; digest } ->
      if not (Hashtbl.mem store.blobs digest) then begin
        Hashtbl.replace store.blobs digest (String.sub doc offset length);
        store.bytes <- store.bytes + length
      end)
    chunks;
  chunks

let store_get store chunks =
  let buf = Buffer.create 256 in
  let rec go = function
    | [] -> Ok (Buffer.contents buf)
    | { digest; length; _ } :: tl -> (
        match Hashtbl.find_opt store.blobs digest with
        | Some bytes when String.length bytes = length ->
            Buffer.add_string buf bytes;
            go tl
        | Some _ -> Error "chunk length mismatch"
        | None -> Error ("missing chunk " ^ Digest.to_hex digest))
  in
  go chunks

let store_bytes store = store.bytes
let store_chunks store = Hashtbl.length store.blobs

let dedup_ratio store ~originals =
  if store.bytes = 0 then 1.0
  else float_of_int originals /. float_of_int store.bytes
