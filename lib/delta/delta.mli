(** Unified delta representation and the ⟨Δ, Φ⟩ cost model.

    The optimization layer ({!Versioning_core}) works purely on cost
    matrices; this module is where those numbers come from. A stored
    object is either a fully {e materialized} version or a delta of
    one of the supported mechanisms (line diff, cell diff, XOR),
    optionally compressed.

    Storage cost [Δ] is the byte size of the encoded (and, if
    requested, compressed) object. Recreation cost [Φ] is produced by
    a {!cost_model} combining I/O transfer time, decompression CPU
    time, and patch-application CPU time — this is what lets the
    library represent all three of the paper's scenarios:

    - [proportional_model]: Φ equals Δ (scenario Φ = Δ, e.g. when I/O
      is the bottleneck);
    - [io_cpu_model]: Φ and Δ diverge (scenario Φ ≠ Δ): a compressed
      delta is small on disk but pays decompression and apply costs,
      and a "command"-style column drop is tiny yet expensive to
      reverse. *)

type mechanism =
  | Line of Line_diff.t
  | Cell of Cell_diff.t
  | Xor of Xor_delta.t

type t =
  | Materialized of { bytes : int; compressed : int option }
      (** A full version: its raw size and, when stored compressed,
          the compressed size. *)
  | Delta of { mech : mechanism; bytes : int; compressed : int option }
      (** A delta: its encoded size and optional compressed size. *)

type cost_model = {
  io_weight : float;
      (** cost per stored byte read (network or disk transfer) *)
  decompress_weight : float;
      (** extra cost per {e output} byte of decompression *)
  apply_weight : float;
      (** extra cost per byte of patch output when replaying a
          delta *)
}

val proportional_model : cost_model
(** [io_weight = 1.0], no CPU terms: Φ = Δ for uncompressed objects —
    the paper's scenarios 1 and 2. *)

val io_cpu_model : cost_model
(** A model with non-trivial decompression and apply weights,
    realizing scenario 3 (Φ ≠ Δ). *)

(* Constructors. [compress] defaults to false. *)

val materialize : ?compress:bool -> string -> t
val line_delta : ?compress:bool -> string -> string -> t
val cell_delta : ?compress:bool -> Csv.table -> Csv.table -> t
val xor_delta : ?compress:bool -> string -> string -> t

val storage_cost : t -> float
(** Δ: compressed size when compressed, raw encoded size otherwise. *)

val recreation_cost : cost_model -> t -> output_bytes:int -> float
(** Φ under a model. [output_bytes] is the size of the version being
    produced (the patch/decompression output), which the CPU terms
    scale with. *)

val is_materialized : t -> bool

val mechanism_name : t -> string
(** ["full"], ["line"], ["cell"] or ["xor"] — for reporting. *)
