type mechanism =
  | Line of Line_diff.t
  | Cell of Cell_diff.t
  | Xor of Xor_delta.t

type t =
  | Materialized of { bytes : int; compressed : int option }
  | Delta of { mech : mechanism; bytes : int; compressed : int option }

type cost_model = {
  io_weight : float;
  decompress_weight : float;
  apply_weight : float;
}

let proportional_model =
  { io_weight = 1.0; decompress_weight = 0.0; apply_weight = 0.0 }

let io_cpu_model =
  (* Transfer dominates, decompression costs ~1/4 of transfer per
     output byte, patch application ~1/2: plausible ratios for a
     disk-backed store, and enough to decouple Φ from Δ. *)
  { io_weight = 1.0; decompress_weight = 0.25; apply_weight = 0.5 }

let maybe_compress compress payload =
  if compress then Some (String.length (Compress.lz77 payload)) else None

let stored_bytes = function
  | Materialized { bytes; compressed } | Delta { bytes; compressed; _ } -> (
      match compressed with Some c -> c | None -> bytes)

(* Observability only — metric values never feed back into delta
   choice, and every call is a no-op while DSVC_OBS is off. *)
let ratio_buckets = [| 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0; 1.25 |]

(* [input] is a thunk so the off-mode path never pays for sizing the
   encoder input (tables need a fold over their cells). *)
let record_encode ~codec ~input t =
  if Versioning_obs.Obs.enabled () then begin
    let module M = Versioning_obs.Metrics in
    let labels = [ ("codec", codec) ] in
    let input = input () in
    let stored = stored_bytes t in
    M.counter "dsvc_delta_encode_total" ~labels
      ~help:"Delta encodings performed, by codec";
    M.counter "dsvc_delta_input_bytes_total" ~labels
      ~by:(float_of_int input)
      ~help:"Bytes presented to delta encoders, by codec";
    M.counter "dsvc_delta_output_bytes_total" ~labels
      ~by:(float_of_int stored)
      ~help:"Bytes a delta encoding would store, by codec";
    if input > 0 then
      M.observe "dsvc_delta_compress_ratio" ~labels ~buckets:ratio_buckets
        (float_of_int stored /. float_of_int input)
        ~help:"stored/input byte ratio per encoding"
  end;
  t

let materialize ?(compress = false) content =
  record_encode ~codec:"full" ~input:(fun () -> String.length content)
    (Materialized
       {
         bytes = String.length content;
         compressed = maybe_compress compress content;
       })

let line_delta ?(compress = false) a b =
  let d = Line_diff.diff a b in
  let encoded = Line_diff.encode d in
  record_encode ~codec:"line" ~input:(fun () -> String.length b)
    (Delta
       {
         mech = Line d;
         bytes = String.length encoded;
         compressed = maybe_compress compress encoded;
       })

let cell_delta ?(compress = false) a b =
  let d = Cell_diff.diff a b in
  let encoded = Cell_diff.encode d in
  record_encode ~codec:"cell"
    ~input:(fun () ->
      Array.fold_left
        (fun acc row ->
          Array.fold_left (fun acc cell -> acc + String.length cell + 1) acc row)
        0 b)
    (Delta
       {
         mech = Cell d;
         bytes = String.length encoded;
         compressed = maybe_compress compress encoded;
       })

let xor_delta ?(compress = false) a b =
  let d = Xor_delta.make a b in
  let encoded = Xor_delta.encode d in
  (* XOR payloads are zero-heavy: RLE them before LZ for the size. *)
  let compressed =
    if compress then
      Some (String.length (Compress.lz77 (Compress.rle_zeros encoded)))
    else None
  in
  record_encode ~codec:"xor" ~input:(fun () -> String.length b)
    (Delta { mech = Xor d; bytes = String.length encoded; compressed })

let storage_cost t = float_of_int (stored_bytes t)

let recreation_cost model t ~output_bytes =
  let stored = float_of_int (stored_bytes t) in
  let out = float_of_int output_bytes in
  let io = model.io_weight *. stored in
  let decompress =
    match t with
    | Materialized { compressed = Some _; _ } | Delta { compressed = Some _; _ }
      ->
        model.decompress_weight *. out
    | _ -> 0.0
  in
  let apply =
    match t with
    | Delta _ -> model.apply_weight *. out
    | Materialized _ -> 0.0
  in
  io +. decompress +. apply

let is_materialized = function Materialized _ -> true | Delta _ -> false

let mechanism_name = function
  | Materialized _ -> "full"
  | Delta { mech = Line _; _ } -> "line"
  | Delta { mech = Cell _; _ } -> "cell"
  | Delta { mech = Xor _; _ } -> "xor"
