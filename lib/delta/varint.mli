(** LEB128 variable-length integers — the shared wire primitive of the
    delta codecs ({!Compress}, {!Binary_diff}). *)

val add : Buffer.t -> int -> unit
(** Append the encoding of a non-negative integer. *)

val read : string -> int -> int * int
(** [read s pos] returns [(value, next_pos)].
    @raise Invalid_argument on truncated input. *)

val size : int -> int
(** Encoded length in bytes. *)
